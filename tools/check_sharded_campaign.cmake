# CTest driver for the sharded-campaign determinism pin: the default
# 200-cell fault sweep, run (1) single-process, (2) as explicit
# --shard k/N workers merged with --merge, and (3) through the
# one-command subprocess backend — all three JSON artifacts must be
# byte-identical.
#
#   cmake -DREFEREECTL=<path> -DWORK_DIR=<dir> -P check_sharded_campaign.cmake
if(NOT REFEREECTL OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DREFEREECTL=... -DWORK_DIR=... -P check_sharded_campaign.cmake")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_refereectl out_file)
  execute_process(
    COMMAND ${REFEREECTL} ${ARGN} --out ${out_file}
    RESULT_VARIABLE rv
    OUTPUT_QUIET)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "refereectl ${ARGN} failed (exit ${rv})")
  endif()
endfunction()

run_refereectl(${WORK_DIR}/single.json campaign --fault-sweep)

set(shard_files "")
foreach(k RANGE 3)
  run_refereectl(${WORK_DIR}/shard${k}.json campaign --fault-sweep --shard ${k}/4)
  list(APPEND shard_files ${WORK_DIR}/shard${k}.json)
endforeach()
list(JOIN shard_files "," shard_list)
run_refereectl(${WORK_DIR}/merged.json campaign --merge ${shard_list})

run_refereectl(${WORK_DIR}/subprocess.json campaign --fault-sweep
  --backend subprocess --shards 4)

file(READ ${WORK_DIR}/single.json single)
file(READ ${WORK_DIR}/merged.json merged)
file(READ ${WORK_DIR}/subprocess.json subprocess)
if(NOT single STREQUAL merged)
  message(FATAL_ERROR "merged shard report differs from single-process run")
endif()
if(NOT single STREQUAL subprocess)
  message(FATAL_ERROR "subprocess-backend report differs from single-process run")
endif()
message(STATUS "sharded campaign reports are byte-identical (4 shards, merge + subprocess backend)")
