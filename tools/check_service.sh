#!/usr/bin/env bash
# Service smoke: boot `refereectl serve` on a throwaway socket, drive it
# through the `call` client (encode, decode, campaign, stats), assert the
# served campaign bytes match the batch CLI byte-for-byte, assert the
# stats counters are monotone across calls, then SIGTERM the daemon and
# require a clean drain (exit 0, socket unlinked).
#
# Usage: check_service.sh /path/to/refereectl
set -euo pipefail

REFEREECTL=${1:?usage: check_service.sh /path/to/refereectl}

workdir=$(mktemp -d)
socket="$workdir/referee.sock"
cleanup() {
  if [[ -n "${serve_pid:-}" ]] && kill -0 "$serve_pid" 2>/dev/null; then
    kill -TERM "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

"$REFEREECTL" serve --socket "$socket" --workers 2 --queue 32 \
  2> "$workdir/serve.log" &
serve_pid=$!

for _ in $(seq 1 100); do
  [[ -S "$socket" ]] && break
  kill -0 "$serve_pid" || { cat "$workdir/serve.log"; exit 1; }
  sleep 0.05
done
[[ -S "$socket" ]] || { echo "socket never appeared"; exit 1; }

call() { "$REFEREECTL" call --socket "$socket" "$@"; }

echo "== gen over the socket"
call gen path --n 6 --seed 1 > "$workdir/path.txt"
head -1 "$workdir/path.txt" | grep -qx "6 5"

echo "== capture + decode round trip over the socket"
call gen kdeg --n 48 --k 3 --seed 7 > "$workdir/graph.txt"
call capture --k 3 --out "$workdir/t.rft" < "$workdir/graph.txt"
call decode-transcript --k 3 --in "$workdir/t.rft" > "$workdir/decoded.txt"
# The decode returns a graph on the same vertex count.
head -1 "$workdir/decoded.txt" | grep -q "^48 "

echo "== served campaign bytes match the batch CLI"
campaign_args=(campaign --generators kdeg,tree --sizes 16,24
  --protocols degeneracy,forest --seeds 2 --json)
"$REFEREECTL" "${campaign_args[@]}" > "$workdir/local.json"
call "${campaign_args[@]}" > "$workdir/served.json"
cmp "$workdir/local.json" "$workdir/served.json"

echo "== stats counters are monotone"
call service stats > "$workdir/stats1.json"
call service stats > "$workdir/stats2.json"
python3 - "$workdir/stats1.json" "$workdir/stats2.json" <<'PY'
import json, sys
first = json.load(open(sys.argv[1]))
second = json.load(open(sys.argv[2]))
assert first["referee-service-stats"] == 1
rows1 = {row["name"]: row for row in first["procedures"]}
rows2 = {row["name"]: row for row in second["procedures"]}
assert set(rows1) == set(rows2), "procedure inventory changed between snapshots"
for name, row in rows1.items():
    for key in ("requests", "ok", "errors", "shed", "batches", "batched",
                "total_micros"):
        assert rows2[name][key] >= row[key], f"{name}.{key} went backwards"
assert rows1["gen"]["ok"] == 2, rows1["gen"]
assert rows1["campaign"]["ok"] == 1, rows1["campaign"]
assert rows2["service stats"]["requests"] > rows1["service stats"]["requests"]
print("stats monotone across", len(rows1), "procedures")
PY

echo "== SIGTERM drains cleanly"
kill -TERM "$serve_pid"
wait "$serve_pid"
status=$?
[[ $status -eq 0 ]] || { echo "serve exited $status"; cat "$workdir/serve.log"; exit 1; }
grep -q "drained" "$workdir/serve.log"
[[ ! -e "$socket" ]] || { echo "socket not unlinked"; exit 1; }
serve_pid=""

echo "service smoke OK"
