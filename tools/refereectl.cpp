// refereectl — command-line driver for the refereed library.
//
// Graphs travel as the edge-list text format ("n m" header then "u v"
// lines, 0-based) on stdin/stdout, so commands compose with pipes:
//
//   refereectl gen apollonian --n 80 --seed 7 |
//   refereectl reconstruct --k 3
//
// Commands:
//   gen <family> [--n N] [--m M] [--k K] [--p P] [--seed S] [--arity A]
//       families: path cycle complete star grid torus hypercube tree forest
//                 gnp gnm kdeg ktree apollonian fattree bipartite squarefree
//   info                         structural report (degeneracy, diameter, ...)
//   reconstruct --k K [--decoder newton|fast|table] [--threads T]
//   recognize  --k K             one-round "degeneracy <= K?" decision
//   adaptive                     multi-round reconstruction, k discovered
//   stats                        what 2 log n bits/node buy (degree stats)
//   connectivity [--copies C] [--seed S]
//   kconn --k K [--copies C]     k-edge-connectivity via sketch peeling
//   bipartite    [--copies C] [--seed S]
//   reduce --via square|triangle|diameter
//   capture --k K --out FILE     run the local phase, save the transcript
//   decode-transcript --k K --in FILE   referee decode, offline
//   campaign [--generators a,b] [--sizes 24,48] [--protocols x,y]
//            [--seeds N] [--seed-list 5,9] [--flips 0,0.01] [--truncs 0]
//            [--drops 0,0.25] [--dups 0,2] [--swaps 0,2] [--stales 0,2]
//            [--adaptive-budget 0,3] [--rounds R]
//            [--k K] [--p P] [--threads T] [--json] [--out FILE]
//            [--fault-sweep] [--shard k/N] [--backend pool|subprocess]
//            [--shards N]
//            run a scenario grid; deterministic (same flags -> same bytes).
//            Fault-plan axes take the cartesian product; --adaptive-budget
//            arms the transcript-aware adversary with that strike budget;
//            --fault-sweep runs the default 200-cell correlated+adaptive
//            contract sweep (multi-round cells included; --rounds caps
//            their round count). Protocols may include multi-round names
//            (adaptive-degeneracy). Generators may also be file:<path>
//            binary edge lists (see `graph pack`). --shard k/N runs only
//            shard k of N and emits a mergeable shard report; --backend
//            subprocess --shards N forks N shard workers of this binary
//            and merges their streams — the merged bytes equal a
//            single-process run. To reproduce one failing cell from its
//            JSON record, feed the row's fields back as single-valued axes
//            (see README).
//            Reports stream: rows flow straight from workers to the
//            output sink, so coordinator memory is O(shards), not O(grid).
//            --capture-dir DIR seals every cell's post-injection wire
//            transcript to DIR/cell-<id>.rtr for offline replay
//            (multi-round cells add cell-<id>.r<round>.rtr per later round).
//   campaign --merge s0.json,s1.json,... [--json] [--out FILE]
//            k-way streaming merge of shard reports (from --shard runs,
//            any shard count or nesting) into one report; byte-identical
//            to the unsharded run once every shard is present, without
//            ever holding a full report in memory.
//   transcript capture --generator G --protocol P [cell axes + fault
//            knobs --flip --trunc --drop --dup --swap --stale] --out FILE
//            run one campaign cell, seal its wire transcript (reftrn1)
//   transcript decode --in FILE [same cell axes]
//            re-open a sealed transcript offline and grade it against the
//            cell's deterministic ground truth; reproduces the live
//            outcome, loud refusals included
//   graph pack --out FILE        stdin edge-list text -> binary edge file
//   graph gen <family> [gen flags] -o FILE   generate straight to binary
//   selftest                     quick end-to-end sanity run
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "campaign/backend.hpp"
#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/scenario.hpp"
#include "campaign/stream.hpp"
#include "campaign/subprocess.hpp"
#include "graph/algorithms.hpp"
#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/subgraphs.hpp"
#include "graph/mincut.hpp"
#include "model/simulator.hpp"
#include "model/transcript.hpp"
#include "numth/lookup.hpp"
#include "protocols/adaptive_degeneracy.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/recognition.hpp"
#include "protocols/statistics.hpp"
#include "reductions/oracles.hpp"
#include "reductions/reductions.hpp"
#include "sketch/bipartiteness.hpp"
#include "sketch/connectivity.hpp"
#include "sketch/k_connectivity.hpp"

namespace {

using namespace referee;

struct Options {
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const { return values.count(key) > 0; }

  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }

  std::uint64_t num(const std::string& key, std::uint64_t fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stoull(it->second);
  }

  double real(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stod(it->second);
  }
};

Options parse_options(int argc, char** argv, int first) {
  Options opts;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o") {
      arg = "--out";  // the conventional short spelling for output files
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      opts.values[arg] = argv[++i];
    } else {
      opts.values[arg] = "1";
    }
  }
  return opts;
}

Graph read_graph_stdin() {
  std::ostringstream buffer;
  buffer << std::cin.rdbuf();
  return from_edge_list(buffer.str());
}

Graph gen_family(const std::string& family, const Options& opts) {
  const auto n = static_cast<std::size_t>(opts.num("n", 32));
  const auto k = static_cast<unsigned>(opts.num("k", 3));
  const double p = opts.real("p", 0.1);
  Rng rng(opts.num("seed", 1));
  Graph g;
  if (family == "path") {
    g = gen::path(n);
  } else if (family == "cycle") {
    g = gen::cycle(n);
  } else if (family == "complete") {
    g = gen::complete(n);
  } else if (family == "star") {
    g = gen::star(n - 1);
  } else if (family == "grid") {
    const auto rows = static_cast<std::size_t>(opts.num("rows", 4));
    g = gen::grid(rows, (n + rows - 1) / rows);
  } else if (family == "torus") {
    const auto rows = static_cast<std::size_t>(opts.num("rows", 4));
    g = gen::torus(rows, std::max<std::size_t>(3, n / rows));
  } else if (family == "hypercube") {
    g = gen::hypercube(static_cast<unsigned>(opts.num("dims", 4)));
  } else if (family == "tree") {
    g = gen::random_tree(n, rng);
  } else if (family == "forest") {
    g = gen::random_forest(n, opts.real("drop", 0.2), rng);
  } else if (family == "gnp") {
    g = gen::gnp(n, p, rng);
  } else if (family == "gnm") {
    g = gen::gnm(n, opts.num("m", 2 * n), rng);
  } else if (family == "kdeg") {
    g = gen::random_k_degenerate(n, k, rng, opts.has("exact"));
  } else if (family == "ktree") {
    g = gen::random_k_tree(n, k, rng);
  } else if (family == "apollonian") {
    g = gen::random_apollonian(n, rng);
  } else if (family == "fattree") {
    g = gen::fat_tree(static_cast<unsigned>(opts.num("arity", 4)),
                      opts.has("hosts"));
  } else if (family == "bipartite") {
    g = gen::random_bipartite(n / 2, n - n / 2, p, rng);
  } else if (family == "squarefree") {
    g = gen::random_square_free(n, opts.num("attempts", 30 * n), rng);
  } else {
    throw CheckError("unknown family: " + family);
  }
  return g;
}

int cmd_gen(const std::string& family, const Options& opts) {
  std::fputs(to_edge_list(gen_family(family, opts)).c_str(), stdout);
  return 0;
}

int cmd_graph(const std::string& sub, int argc, char** argv, int first) {
  if (sub == "pack") {
    const Options opts = parse_options(argc, argv, first);
    if (!opts.has("out")) {
      std::fprintf(stderr, "graph pack needs --out FILE (or -o FILE)\n");
      return 2;
    }
    const Graph g = read_graph_stdin();
    const auto edges = g.edges();
    write_edge_file(opts.str("out", ""), g.vertex_count(), edges);
    std::fprintf(stderr, "packed %zu vertices / %zu edges to %s\n",
                 g.vertex_count(), edges.size(), opts.str("out", "").c_str());
    return 0;
  }
  if (sub == "gen") {
    if (first >= argc) {
      std::fprintf(stderr, "graph gen needs a family\n");
      return 2;
    }
    const std::string family = argv[first];
    const Options opts = parse_options(argc, argv, first + 1);
    if (!opts.has("out")) {
      std::fprintf(stderr, "graph gen writes binary: needs --out FILE "
                           "(use plain `gen` for text)\n");
      return 2;
    }
    const Graph g = gen_family(family, opts);
    const auto edges = g.edges();
    write_edge_file(opts.str("out", ""), g.vertex_count(), edges);
    std::fprintf(stderr, "generated %s: %zu vertices / %zu edges to %s\n",
                 family.c_str(), g.vertex_count(), edges.size(),
                 opts.str("out", "").c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown graph subcommand: %s (pack, gen)\n",
               sub.c_str());
  return 2;
}

int cmd_info(const Graph& g) {
  std::printf("vertices        %zu\n", g.vertex_count());
  std::printf("edges           %zu\n", g.edge_count());
  std::printf("min/max degree  %zu / %zu\n", g.min_degree(), g.max_degree());
  const auto deg = degeneracy(g);
  std::printf("degeneracy      %zu\n", deg.degeneracy);
  std::printf("components      %zu\n", component_count(g));
  const auto diam = diameter(g);
  std::printf("diameter        %s\n",
              diam ? std::to_string(*diam).c_str() : "inf (disconnected)");
  const auto gi = girth(g);
  std::printf("girth           %s\n",
              gi ? std::to_string(*gi).c_str() : "inf (forest)");
  std::printf("bipartite       %s\n", is_bipartite(g) ? "yes" : "no");
  std::printf("triangles       %llu\n",
              static_cast<unsigned long long>(count_triangles(g)));
  std::printf("squares (C4)    %llu\n",
              static_cast<unsigned long long>(count_squares(g)));
  std::printf("treewidth <=    %zu (min-degree heuristic)\n",
              treewidth_upper_bound_min_degree(g));
  return 0;
}

std::shared_ptr<const NeighborhoodDecoder> pick_decoder(
    const std::string& kind, std::uint32_t n, unsigned k) {
  if (kind == "table") {
    return std::make_shared<TableDecoder>(
        std::make_shared<NeighborhoodTable>(n, k));
  }
  if (kind == "fast") {
    return std::make_shared<SmallNewtonDecoder>(n, k);
  }
  return std::make_shared<NewtonDecoder>();
}

int cmd_reconstruct(const Graph& g, const Options& opts) {
  const auto k = static_cast<unsigned>(opts.num("k", 3));
  const auto threads = static_cast<std::size_t>(opts.num("threads", 0));
  const auto decoder =
      pick_decoder(opts.str("decoder", "newton"),
                   static_cast<std::uint32_t>(g.vertex_count()), k);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  const Simulator sim(pool.get());
  const DegeneracyReconstruction protocol(k, decoder);
  FrugalityReport report;
  try {
    const Graph h = sim.run_reconstruction(g, protocol, &report);
    std::fprintf(stderr,
                 "reconstructed %zu vertices / %zu edges; "
                 "max message %zu bits (%.2f x log2(n+1)); exact: %s\n",
                 h.vertex_count(), h.edge_count(), report.max_bits,
                 report.constant(), h == g ? "yes" : "NO");
    std::fputs(to_edge_list(h).c_str(), stdout);
    return h == g ? 0 : 1;
  } catch (const DecodeError& e) {
    std::fprintf(stderr, "reconstruction failed: %s\n", e.what());
    return 1;
  }
}

int cmd_recognize(const Graph& g, const Options& opts) {
  const auto k = static_cast<unsigned>(opts.num("k", 3));
  const Simulator sim;
  const bool accepted = sim.run_decision(g, *make_degeneracy_recognizer(k));
  std::printf("degeneracy <= %u: %s\n", k, accepted ? "yes" : "no");
  return 0;
}

int cmd_adaptive(const Graph& g) {
  const Simulator sim;
  const AdaptiveDegeneracyReconstruction protocol;
  MultiRoundReport report;
  const Graph h = sim.run_multi_round(g, protocol, &report);
  std::fprintf(stderr,
               "adaptive reconstruction: %u round(s), final guess k=%u, "
               "max message %zu bits, %zu broadcast bit(s); exact: %s\n",
               report.rounds_used,
               AdaptiveDegeneracyReconstruction::k_for_round(
                   report.rounds_used - 1),
               report.max_bits, report.broadcast_bits,
               h == g ? "yes" : "NO");
  std::fputs(to_edge_list(h).c_str(), stdout);
  return h == g ? 0 : 1;
}

int cmd_connectivity(const Graph& g, const Options& opts) {
  const SketchParams params{
      .seed = opts.num("seed", 0xC0FFEE),
      .rounds = 0,
      .copies = static_cast<unsigned>(opts.num("copies", 3))};
  const Simulator sim;
  const SketchConnectivityProtocol protocol(params);
  FrugalityReport report;
  const auto msgs = sim.run_local_phase(g, protocol);
  report = audit_frugality(static_cast<std::uint32_t>(g.vertex_count()), msgs);
  const auto result =
      protocol.decode(static_cast<std::uint32_t>(g.vertex_count()), msgs);
  std::printf("components      %zu (truth: %zu)\n", result.component_count,
              component_count(g));
  std::printf("forest edges    %zu\n", result.forest.size());
  std::printf("bits per node   %zu (%.1f x log2(n+1))\n", report.max_bits,
              report.constant());
  return result.component_count == component_count(g) ? 0 : 1;
}

int cmd_bipartite(const Graph& g, const Options& opts) {
  const SketchParams params{
      .seed = opts.num("seed", 0xB1B),
      .rounds = 0,
      .copies = static_cast<unsigned>(opts.num("copies", 3))};
  const Simulator sim;
  const bool answer = sim.run_decision(g, SketchBipartitenessProtocol(params));
  std::printf("bipartite       %s (truth: %s)\n", answer ? "yes" : "no",
              is_bipartite(g) ? "yes" : "no");
  return answer == is_bipartite(g) ? 0 : 1;
}

int cmd_reduce(const Graph& g, const Options& opts) {
  const std::string via = opts.str("via", "diameter");
  const Simulator sim;
  std::unique_ptr<ReconstructionProtocol> delta;
  if (via == "square") {
    delta = std::make_unique<SquareReduction>(make_square_oracle());
  } else if (via == "triangle") {
    delta = std::make_unique<TriangleReduction>(make_triangle_oracle());
  } else if (via == "diameter") {
    delta = std::make_unique<DiameterReduction>(make_diameter_oracle(3));
  } else {
    std::fprintf(stderr, "unknown reduction: %s\n", via.c_str());
    return 2;
  }
  const Graph h = sim.run_reconstruction(g, *delta);
  std::fprintf(stderr, "Δ[%s] output %s the input\n", via.c_str(),
               h == g ? "MATCHES" : "differs from");
  std::fputs(to_edge_list(h).c_str(), stdout);
  return h == g ? 0 : 1;
}

int cmd_stats(const Graph& g) {
  const Simulator sim;
  const DegreeStatistics protocol;
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto msgs = sim.run_local_phase(g, protocol);
  const auto report = audit_frugality(n, msgs);
  std::printf("edges           %llu\n",
              static_cast<unsigned long long>(
                  DegreeStatistics::edge_count(n, msgs)));
  std::printf("max degree      %u\n", DegreeStatistics::max_degree(n, msgs));
  std::printf("min degree      %u\n", DegreeStatistics::min_degree(n, msgs));
  std::printf("erdos-gallai    %s\n",
              DegreeStatistics::erdos_gallai_feasible(n, msgs)
                  ? "feasible"
                  : "INFEASIBLE (corrupt transcript)");
  std::printf("connectivity    %s\n",
              DegreeStatistics::connectivity_possible(n, msgs)
                  ? "possible (necessary conditions hold)"
                  : "impossible (isolated vertex or m < n-1)");
  std::printf("bits per node   %zu (%.1f x log2(n+1))\n", report.max_bits,
              report.constant());
  return 0;
}

int cmd_kconn(const Graph& g, const Options& opts) {
  const auto k = static_cast<unsigned>(opts.num("k", 2));
  const SketchParams params{
      .seed = opts.num("seed", 0xC0DE),
      .rounds = 0,
      .copies = static_cast<unsigned>(opts.num("copies", 4))};
  const auto result = sketch_k_edge_connectivity(g, k, params);
  std::printf("lambda >= %u     %s (certificate bound: %llu; truth: %llu)\n",
              k, result.k_connected ? "yes" : "no",
              static_cast<unsigned long long>(
                  result.connectivity_lower_bound),
              static_cast<unsigned long long>(edge_connectivity(g)));
  std::printf("certificate     %zu edges across %zu forests\n",
              result.certificate.edge_count(), result.forests.size());
  return 0;
}

int cmd_capture(const Graph& g, const Options& opts) {
  const auto k = static_cast<unsigned>(opts.num("k", 3));
  const std::string out = opts.str("out", "transcript.rft");
  const Simulator sim;
  const DegeneracyReconstruction protocol(k);
  Transcript t;
  t.n = static_cast<std::uint32_t>(g.vertex_count());
  t.messages = sim.run_local_phase(g, protocol);
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  write_transcript(os, t);
  const auto report = audit_frugality(t.n, t.messages);
  std::fprintf(stderr, "captured %u messages (%zu bits total) to %s\n", t.n,
               report.total_bits, out.c_str());
  return 0;
}

int cmd_decode_transcript(const Options& opts) {
  const auto k = static_cast<unsigned>(opts.num("k", 3));
  const std::string in = opts.str("in", "transcript.rft");
  std::ifstream is(in, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", in.c_str());
    return 1;
  }
  const Transcript t = read_transcript(is);
  const DegeneracyReconstruction protocol(k);
  try {
    const Graph h = protocol.reconstruct(t.n, t.messages);
    std::fprintf(stderr, "decoded %u nodes -> %zu edges\n", t.n,
                 h.edge_count());
    std::fputs(to_edge_list(h).c_str(), stdout);
    return 0;
  } catch (const DecodeError& e) {
    std::fprintf(stderr, "decode failed: %s\n", e.what());
    return 1;
  }
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Swallows streamed bytes when neither --json nor --out wants them; the
/// table is printed from the writer's folded aggregates instead.
struct NullBuffer final : std::streambuf {
  int overflow(int c) override { return c; }
};

/// Print the human table / replay the JSON per the output flags, using
/// only the writer's incremental fold — never the materialized report —
/// and derive the exit code from the loud-failure contract: any
/// silent-wrong cell fails the run. `note_partial` mentions incomplete
/// coverage on stderr (the merge path's courtesy note).
int finish_streamed(const StreamingReportWriter& writer, const Options& opts,
                    bool note_partial) {
  const AggregateFolder& folder = writer.folder();
  if (note_partial && folder.rows() < writer.plan_cells()) {
    std::fprintf(stderr,
                 "note: merged %zu of %zu cells — emitting a partial "
                 "(shard) report\n",
                 folder.rows(), writer.plan_cells());
  }
  if (opts.has("out") && opts.has("json")) {
    // The canonical bytes streamed to the file; replay them to stdout
    // without rebuilding the report in memory.
    std::ifstream is(opts.str("out", ""), std::ios::binary);
    std::cout << is.rdbuf();
  }
  if (!opts.has("json")) {
    std::printf("%-14s %-22s %9s %4s %5s %7s %9s %7s\n", "generator",
                "protocol", "scenarios", "ok", "loud", "silent", "max_bits",
                "c");
    for (const auto& a : folder.aggregates()) {
      std::printf("%-14s %-22s %9zu %4zu %5zu %7zu %9zu %7.2f\n",
                  a.generator.c_str(), a.protocol.c_str(), a.scenarios, a.ok,
                  a.loud, a.silent_wrong, a.max_bits, a.max_constant);
    }
    std::printf("total scenarios %zu/%zu, silent-wrong %zu\n", folder.rows(),
                writer.plan_cells(), folder.silent_wrong());
  }
  return folder.silent_wrong() == 0 ? 0 : 1;
}

/// Run `produce` against a StreamingReportWriter wired to the right
/// destination (--out file, --json stdout, else a null sink): report rows
/// flow straight from the producer to bytes, so the CLI's peak memory is
/// independent of the grid size.
int run_campaign_streamed(const std::function<void(ReportSink&)>& produce,
                          const Options& opts, bool note_partial = false) {
  NullBuffer null_buffer;
  std::ostream null_stream(&null_buffer);
  std::ofstream file;
  std::ostream* out = &null_stream;
  if (opts.has("out")) {
    file.open(opts.str("out", "campaign.json"), std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", opts.str("out", "").c_str());
      return 1;
    }
    out = &file;
  } else if (opts.has("json")) {
    out = &std::cout;
  }
  StreamingReportWriter writer(*out);
  produce(writer);
  if (file.is_open()) file.close();
  return finish_streamed(writer, opts, note_partial);
}

int cmd_campaign_merge(const Options& opts) {
  const auto paths = split_list(opts.str("merge", ""));
  if (paths.empty()) {
    std::fprintf(stderr, "--merge needs a comma-separated shard file list\n");
    return 2;
  }
  std::vector<std::ifstream> files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    files.emplace_back(path, std::ios::binary);
    if (!files.back()) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
  }
  std::vector<std::istream*> inputs;
  inputs.reserve(files.size());
  for (auto& file : files) inputs.push_back(&file);
  // K-way streaming merge: rows flow shard-file → writer one at a time,
  // so merging a million-cell campaign needs O(shards) memory.
  return run_campaign_streamed(
      [&](ReportSink& sink) { merge_report_streams(inputs, sink); }, opts,
      /*note_partial=*/true);
}

/// The worker argv for subprocess shards: this campaign invocation's grid
/// flags, minus everything that controls execution or output — the worker
/// re-expands the same deterministic grid and adds its own --shard/--json.
std::vector<std::string> shard_worker_args(int argc, char** argv) {
  static const std::set<std::string> kControlFlags{
      "--backend", "--shards", "--shard", "--merge",
      "--threads", "--json",   "--out",   "-o"};
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool control = kControlFlags.count(arg) > 0;
    const bool has_value =
        i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
    if (!control) args.push_back(arg);
    if (has_value) {
      if (!control) args.push_back(argv[i + 1]);
      ++i;
    }
  }
  return args;
}

/// Path of this very binary, for forking shard workers of ourselves.
std::string self_exe(const char* argv0) {
#if defined(__linux__)
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    buf[len] = '\0';
    return buf;
  }
#endif
  return argv0;
}

int cmd_campaign(const Options& opts, int argc, char** argv) {
  if (opts.has("merge")) return cmd_campaign_merge(opts);
  CampaignConfig config;
  if (opts.has("fault-sweep")) config = default_fault_sweep_config();
  if (opts.has("generators")) config.generators = split_list(opts.str("generators", ""));
  if (opts.has("protocols")) config.protocols = split_list(opts.str("protocols", ""));
  if (opts.has("sizes")) {
    config.sizes.clear();
    for (const auto& s : split_list(opts.str("sizes", ""))) {
      config.sizes.push_back(std::stoull(s));
    }
  }
  if (opts.has("seeds")) {
    config.seeds.clear();
    for (std::uint64_t s = 1; s <= opts.num("seeds", 4); ++s) {
      config.seeds.push_back(s);
    }
  }
  if (opts.has("seed-list")) {
    config.seeds.clear();
    for (const auto& s : split_list(opts.str("seed-list", ""))) {
      config.seeds.push_back(std::stoull(s));
    }
  }
  config.k = static_cast<unsigned>(opts.num("k", config.k));
  config.p = opts.real("p", config.p);
  const auto real_axis = [&](const char* key) {
    std::vector<double> values{0.0};
    if (opts.has(key)) {
      values.clear();
      for (const auto& s : split_list(opts.str(key, ""))) {
        values.push_back(std::stod(s));
      }
    }
    return values;
  };
  const auto count_axis = [&](const char* key) {
    std::vector<unsigned> values{0};
    if (opts.has(key)) {
      values.clear();
      for (const auto& s : split_list(opts.str(key, ""))) {
        values.push_back(static_cast<unsigned>(std::stoul(s)));
      }
    }
    return values;
  };
  const auto flips = real_axis("flips");
  const auto truncs = real_axis("truncs");
  const auto drops = real_axis("drops");
  const auto dups = count_axis("dups");
  const auto swaps = count_axis("swaps");
  const auto stales = count_axis("stales");
  const auto adaptives = count_axis("adaptive-budget");
  config.rounds = static_cast<unsigned>(opts.num("rounds", config.rounds));
  const bool any_fault_axis = opts.has("flips") || opts.has("truncs") ||
                              opts.has("drops") || opts.has("dups") ||
                              opts.has("swaps") || opts.has("stales") ||
                              opts.has("adaptive-budget");
  if (any_fault_axis || !opts.has("fault-sweep")) {
    config.fault_plans.clear();
    for (const double flip : flips) {
      for (const double trunc : truncs) {
        for (const double drop : drops) {
          for (const unsigned dup : dups) {
            for (const unsigned swap : swaps) {
              for (const unsigned stale : stales) {
                for (const unsigned adaptive : adaptives) {
                  config.fault_plans.push_back(FaultPlan{
                      .bit_flip_chance = flip,
                      .truncate_chance = trunc,
                      .correlated =
                          CorrelatedFaults{.drop_fraction = drop,
                                           .duplicate_ids = dup,
                                           .payload_swaps = swap,
                                           .stale_replays = stale},
                      .adaptive = AdaptiveFaults{.budget = adaptive}});
                }
              }
            }
          }
        }
      }
    }
  }

  for (const auto& generator : config.generators) {
    const auto& known = campaign_generators();
    if (!is_file_generator(generator) &&
        std::find(known.begin(), known.end(), generator) == known.end()) {
      std::fprintf(stderr, "unknown generator: %s\n", generator.c_str());
      return 2;
    }
  }
  for (const auto& protocol : config.protocols) {
    const auto& known = campaign_protocols();
    if (std::find(known.begin(), known.end(), protocol) == known.end() &&
        !is_multi_round_protocol(protocol)) {
      std::fprintf(stderr, "unknown protocol: %s\n", protocol.c_str());
      return 2;
    }
  }

  CampaignPlan plan(config);
  if (opts.has("shard")) {
    const std::string shard = opts.str("shard", "");
    const auto slash = shard.find('/');
    if (slash == std::string::npos) {
      std::fprintf(stderr, "--shard wants k/N (e.g. --shard 0/4)\n");
      return 2;
    }
    const auto k = static_cast<unsigned>(std::stoul(shard.substr(0, slash)));
    const auto count =
        static_cast<unsigned>(std::stoul(shard.substr(slash + 1)));
    if (count == 0 || k >= count) {
      std::fprintf(stderr, "--shard index out of range: %s\n", shard.c_str());
      return 2;
    }
    plan = plan.shard(k, count);
  }

  const std::string backend_name = opts.str("backend", "pool");
  if (backend_name == "subprocess") {
    if (opts.has("shard")) {
      std::fprintf(stderr,
                   "--backend subprocess shards the plan itself; drop "
                   "--shard\n");
      return 2;
    }
    const auto shards =
        static_cast<unsigned>(opts.num("shards", 4));
    auto worker_args = shard_worker_args(argc, argv);
    if (opts.has("threads")) {
      // Split the requested budget across workers instead of letting each
      // one default to a full hardware-sized pool.
      const auto total = static_cast<unsigned>(opts.num("threads", 0));
      worker_args.push_back("--threads");
      worker_args.push_back(std::to_string(std::max(1u, total / shards)));
    }
    const SubprocessShardBackend backend(self_exe(argv[0]),
                                         std::move(worker_args), shards);
    // run_to streams worker rows through the k-way merge into the output
    // sink, so the coordinator never materializes the full grid.
    return run_campaign_streamed(
        [&](ReportSink& sink) { backend.run_to(plan, sink); }, opts);
  }
  if (backend_name != "pool") {
    std::fprintf(stderr, "unknown backend: %s (pool, subprocess)\n",
                 backend_name.c_str());
    return 2;
  }

  const auto threads = static_cast<std::size_t>(opts.num("threads", 0));
  std::unique_ptr<ThreadPool> pool;
  if (threads != 1) pool = std::make_unique<ThreadPool>(threads);
  ThreadPoolBackend backend(pool.get());
  if (opts.has("capture-dir")) {
    // Persist every cell's post-injection wire transcript for offline
    // replay (`refereectl transcript decode`). Capture is keyed by the
    // stable cell id, so sharded runs over the same grid never collide.
    const std::string dir = opts.str("capture-dir", ".");
    backend.set_capture([dir](std::size_t cell_id, unsigned round,
                              std::uint64_t epoch, std::uint32_t n,
                              std::span<const Message> wire) {
      (void)n;
      // Round 0 keeps the historical name so single-round replay tooling
      // finds it unchanged; later rounds of multi-round cells get a
      // round-suffixed sibling.
      const std::string suffix =
          round == 0 ? ".rtr" : ".r" + std::to_string(round) + ".rtr";
      write_transcript_file(
          dir + "/cell-" + std::to_string(cell_id) + suffix, epoch, wire);
    });
  }
  return run_campaign_streamed(
      [&](ReportSink& sink) { backend.run_to(plan, sink); }, opts);
}

/// A single cell spec from CLI flags — the same axes a campaign JSON row
/// records, so a captured cell's identity round-trips through the shell.
ScenarioSpec spec_from_opts(const Options& opts) {
  ScenarioSpec spec;
  spec.generator = opts.str("generator", spec.generator);
  spec.n = static_cast<std::size_t>(opts.num("n", spec.n));
  spec.k = static_cast<unsigned>(opts.num("k", spec.k));
  spec.p = opts.real("p", spec.p);
  spec.protocol = opts.str("protocol", spec.protocol);
  spec.seed = opts.num("seed", spec.seed);
  spec.faults.bit_flip_chance = opts.real("flip", 0.0);
  spec.faults.truncate_chance = opts.real("trunc", 0.0);
  spec.faults.correlated.drop_fraction = opts.real("drop", 0.0);
  spec.faults.correlated.duplicate_ids =
      static_cast<unsigned>(opts.num("dup", 0));
  spec.faults.correlated.payload_swaps =
      static_cast<unsigned>(opts.num("swap", 0));
  spec.faults.correlated.stale_replays =
      static_cast<unsigned>(opts.num("stale", 0));
  spec.faults.adaptive.budget =
      static_cast<unsigned>(opts.num("adaptive-budget", 0));
  spec.rounds = static_cast<unsigned>(opts.num("rounds", 0));
  return spec;
}

/// `transcript capture` runs one cell and seals its post-injection wire
/// transcript to a reftrn1 file; `transcript decode` re-opens such a file
/// offline and grades it against the cell's deterministic ground truth —
/// the forensic loop for any campaign row, faulted or clean.
int cmd_transcript(const std::string& sub, const Options& opts) {
  const ScenarioSpec spec = spec_from_opts(opts);
  if (sub == "capture") {
    const std::string out = opts.str("out", "cell.rtr");
    const Simulator sim;
    std::vector<Message> transcript;
    bool captured = false;
    // Multi-round cells fire once per round: round 0 takes the requested
    // name, later rounds insert .r<round> before the extension (or append
    // it), mirroring the campaign --capture-dir naming.
    const TranscriptSink sink = [&](unsigned round, std::uint64_t epoch,
                                    std::uint32_t n,
                                    std::span<const Message> wire) {
      std::string path = out;
      if (round != 0) {
        const std::string infix = ".r" + std::to_string(round);
        const auto dot = path.rfind('.');
        if (dot == std::string::npos) {
          path += infix;
        } else {
          path.insert(dot, infix);
        }
      }
      write_transcript_file(path, epoch, wire);
      std::fprintf(stderr,
                   "captured %u sealed message(s), round %u, epoch %llx\n", n,
                   round, static_cast<unsigned long long>(epoch));
      captured = true;
    };
    const ScenarioResult res =
        run_scenario(spec, sim, transcript,
                     DecodeArena::for_current_thread(), &sink);
    if (!captured) {
      std::fprintf(stderr, "cell finished without sealing a transcript\n");
      return 1;
    }
    std::fprintf(stderr, "%s/%s cell -> %s (outcome %s)\n",
                 spec.generator.c_str(), spec.protocol.c_str(), out.c_str(),
                 res.outcome.c_str());
    return res.outcome == "silent-wrong" ? 1 : 0;
  }
  if (sub == "decode") {
    const std::string in = opts.str("in", "cell.rtr");
    // Multi-round cells replay from one file per round: --in takes the
    // comma-separated round files in order.
    const ScenarioResult res = is_multi_round_protocol(spec.protocol)
                                   ? replay_scenario(spec, split_list(in))
                                   : replay_scenario(spec, in);
    std::printf("outcome      %s\n", res.outcome.c_str());
    if (!res.detail.empty()) {
      std::printf("detail       %s\n", res.detail.c_str());
    }
    std::printf("contract_ok  %s\n", res.contract_ok ? "yes" : "NO");
    std::printf("max_bits     %zu\n", res.report.max_bits);
    return res.contract_ok ? 0 : 1;
  }
  std::fprintf(stderr, "unknown transcript subcommand: %s (capture, decode)\n",
               sub.c_str());
  return 2;
}

int cmd_selftest() {
  Rng rng(99);
  const Graph g = gen::random_apollonian(40, rng);
  const Simulator sim;
  const Graph h = sim.run_reconstruction(g, DegeneracyReconstruction(3));
  const bool recon_ok = h == g;
  const bool sketch_ok = sim.run_decision(
      gen::connected_gnp(50, 0.08, rng),
      SketchConnectivityProtocol(SketchParams{.seed = 5, .rounds = 0,
                                              .copies = 4}));
  std::printf("reconstruction: %s\nsketch connectivity: %s\n",
              recon_ok ? "ok" : "FAIL", sketch_ok ? "ok" : "FAIL");
  return recon_ok && sketch_ok ? 0 : 1;
}

void usage() {
  std::fputs(
      "usage: refereectl <command> [options]\n"
      "commands: gen info stats reconstruct recognize adaptive connectivity\n"
      "          kconn bipartite reduce capture decode-transcript campaign\n"
      "          transcript graph selftest   (see source header for flags)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "gen") {
      if (argc < 3) {
        usage();
        return 2;
      }
      return cmd_gen(argv[2], parse_options(argc, argv, 3));
    }
    if (command == "graph") {
      if (argc < 3) {
        usage();
        return 2;
      }
      return cmd_graph(argv[2], argc, argv, 3);
    }
    if (command == "transcript") {
      if (argc < 3) {
        usage();
        return 2;
      }
      return cmd_transcript(argv[2], parse_options(argc, argv, 3));
    }
    const Options opts = parse_options(argc, argv, 2);
    if (command == "selftest") return cmd_selftest();
    if (command == "campaign") return cmd_campaign(opts, argc, argv);
    if (command == "decode-transcript") return cmd_decode_transcript(opts);
    const Graph g = read_graph_stdin();
    if (command == "info") return cmd_info(g);
    if (command == "reconstruct") return cmd_reconstruct(g, opts);
    if (command == "recognize") return cmd_recognize(g, opts);
    if (command == "adaptive") return cmd_adaptive(g);
    if (command == "stats") return cmd_stats(g);
    if (command == "connectivity") return cmd_connectivity(g, opts);
    if (command == "kconn") return cmd_kconn(g, opts);
    if (command == "bipartite") return cmd_bipartite(g, opts);
    if (command == "reduce") return cmd_reduce(g, opts);
    if (command == "capture") return cmd_capture(g, opts);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
