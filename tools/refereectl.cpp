// refereectl — command-line driver for the refereed library.
//
// Graphs travel as the edge-list text format ("n m" header then "u v"
// lines, 0-based) on stdin/stdout, so commands compose with pipes:
//
//   refereectl gen apollonian --n 80 --seed 7 |
//   refereectl reconstruct --k 3
//
// This file is deliberately thin: every command body lives in the static
// procedure table (src/service/procedure.hpp), which also powers the
// refereectl serve daemon and the in-process ServiceCore. The driver only
// (1) resolves the command name (two-word names like "graph pack" and
// "service stats" included), (2) parses argv against the table's flag
// inventory, (3) slurps stdin for graph-reading procedures, and (4) runs
// the handler against stdout/stderr — or, for `call`, sends the request
// to a running daemon instead and replays its captured bytes.
// `refereectl help [command]` and all usage text render from the table.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "service/procedure.hpp"
#include "service/wire.hpp"

namespace {

using namespace referee;

/// Path of this very binary, for forking shard workers of ourselves.
std::string self_exe(const char* argv0) {
#if defined(__linux__)
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    buf[len] = '\0';
    return buf;
  }
#endif
  return argv0;
}

/// Longest-match lookup: try "argv[i] argv[i+1]" before "argv[i]" so
/// two-word procedures resolve, and report how many argv slots the name
/// consumed.
const ProcedureDesc* resolve_procedure(int argc, char** argv, int first,
                                       int& consumed) {
  if (first >= argc) return nullptr;
  if (first + 1 < argc) {
    const std::string two =
        std::string(argv[first]) + " " + argv[first + 1];
    if (const ProcedureDesc* desc = find_procedure(two)) {
      consumed = 2;
      return desc;
    }
  }
  consumed = 1;
  return find_procedure(argv[first]);
}

bool wants_help(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") return true;
  }
  return false;
}

std::string slurp_stdin() {
  std::ostringstream buffer;
  buffer << std::cin.rdbuf();
  return buffer.str();
}

/// `refereectl call --socket PATH <procedure> [flags]` — the daemon
/// client. Flags after the procedure name validate against the *remote*
/// procedure's table row (--socket stays valid anywhere), the request is
/// framed over the socket, and the daemon's captured stdout/stderr bytes
/// replay here verbatim — same bytes, same exit code as running the
/// procedure locally.
int run_call(int argc, char** argv) {
  static const Flag kSocketFlag[] = {
      {"socket", "PATH", "daemon socket to connect to (required)"}};
  // Find the remote procedure name: the first non-flag token after "call".
  int name_at = 2;
  while (name_at < argc) {
    const std::string arg = argv[name_at];
    if (arg.rfind("--", 0) != 0) break;
    // every call-level flag ("--socket") takes a value
    name_at += 2;
  }
  int consumed = 0;
  const ProcedureDesc* desc = resolve_procedure(argc, argv, name_at, consumed);
  if (name_at >= argc || desc == nullptr) {
    std::cerr << "call needs a procedure name; see `refereectl help`\n";
    return 2;
  }
  Request request;
  request.proc = std::string(desc->name);
  // Parse the leading call flags and the trailing procedure flags as one
  // argv, against the remote procedure's inventory plus --socket.
  std::vector<const char*> rest;
  for (int i = 2; i < name_at; ++i) rest.push_back(argv[i]);
  for (int i = name_at + consumed; i < argc; ++i) rest.push_back(argv[i]);
  Args merged;
  const std::string error =
      parse_cli_args(*desc, static_cast<int>(rest.size()), rest.data(), 0,
                     merged, kSocketFlag);
  if (!error.empty()) {
    std::cerr << error << "\n";
    return 2;
  }
  if (!merged.has("socket")) {
    std::cerr << "call needs --socket PATH\n";
    return 2;
  }
  const std::string socket_path = merged.str("socket", "");
  merged.values.erase("socket");
  request.args = std::move(merged);
  if (desc->reads_graph) request.input = slurp_stdin();
  ServiceClient client(socket_path);
  const ServiceResponse response = client.call(request);
  std::cout << response.output;
  std::cerr << response.log;
  return response.exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << help_text();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "help" || command == "--help") {
      int consumed = 0;
      if (const ProcedureDesc* desc =
              resolve_procedure(argc, argv, 2, consumed)) {
        std::cout << procedure_help(*desc);
      } else {
        std::cout << help_text();
      }
      return 0;
    }
    if (command == "call") {
      if (wants_help(argc, argv, 2)) {
        std::cout << procedure_help(*find_procedure("call"));
        return 0;
      }
      return run_call(argc, argv);
    }
    int consumed = 0;
    const ProcedureDesc* desc = resolve_procedure(argc, argv, 1, consumed);
    if (desc == nullptr) {
      std::cerr << "unknown command: " << command
                << "\n\n" << help_text();
      return 2;
    }
    if (wants_help(argc, argv, 1 + consumed)) {
      std::cout << procedure_help(*desc);
      return 0;
    }
    Request request;
    request.proc = std::string(desc->name);
    const std::string error =
        parse_cli_args(*desc, argc, argv, 1 + consumed, request.args);
    if (!error.empty()) {
      std::cerr << error << "\n";
      return 2;
    }
    if (desc->reads_graph) request.input = slurp_stdin();
    ProcedureContext context;
    context.exe = self_exe(argv[0]);
    ProcedureIO io{std::cout, std::cerr};
    return desc->handler(request, context, io);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
