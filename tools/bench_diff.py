#!/usr/bin/env python3
"""Gate benchmark regressions against committed baselines.

Compares Google Benchmark JSON produced by a fresh run against the
`BENCH_<suite>.baseline.json` snapshots committed at the repository root,
and fails (exit 1) when any benchmark's real_time regresses by more than
the tolerance. Benchmarks present on only one side are reported but do not
fail the gate (suites grow; baselines are refreshed when they do).

Usage:
  tools/bench_diff.py --current-dir bench-results [--baseline-dir .]
                      [--tolerance 0.15] SUITE[:TOLERANCE] [SUITE ...]

where SUITE is e.g. `reconstruction` for BENCH_reconstruction.json. A
per-suite tolerance (e.g. `reduction_square:0.35`) overrides --tolerance
for that suite — the knob that lets sub-millisecond microbench suites be
gated at a band wide enough to absorb binary-layout jitter while the
long-running pipelines stay tight.
"""

import argparse
import json
import os
import sys


class SuiteError(Exception):
    """A suite that cannot be compared — bad file, bad JSON, bad rows."""


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        raise SuiteError(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        raise SuiteError(f"{path} is not valid JSON ({e})")
    if not isinstance(doc, dict) or not isinstance(doc.get("benchmarks"), list):
        raise SuiteError(f"{path} has no \"benchmarks\" array — is it "
                         "Google Benchmark --benchmark_format=json output?")
    rows = {}
    for row in doc["benchmarks"]:
        # Skip aggregate rows (mean/median/stddev) — compare raw runs only.
        if not isinstance(row, dict) or row.get("run_type") == "aggregate":
            continue
        if "name" not in row or "real_time" not in row:
            raise SuiteError(f"{path}: benchmark row without name/real_time "
                             f"fields: {json.dumps(row)[:120]}")
        rows[row["name"]] = row
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("suites", nargs="+", metavar="SUITE")
    parser.add_argument("--baseline-dir", default=".")
    parser.add_argument("--current-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    args = parser.parse_args()

    failures = []
    compared = 0
    for suite_arg in args.suites:
        suite, _, suite_tol = suite_arg.partition(":")
        try:
            tolerance = float(suite_tol) if suite_tol else args.tolerance
        except ValueError:
            print(f"bench_diff: bad tolerance in '{suite_arg}' — expected "
                  "SUITE or SUITE:FRACTION (e.g. report:0.35)",
                  file=sys.stderr)
            return 2
        baseline_path = os.path.join(args.baseline_dir,
                                     f"BENCH_{suite}.baseline.json")
        current_path = os.path.join(args.current_dir, f"BENCH_{suite}.json")
        for path, side in ((baseline_path, "baseline"),
                           (current_path, "current run")):
            if not os.path.exists(path):
                print(f"bench_diff: suite '{suite}' has no {side} JSON — "
                      f"missing {path}", file=sys.stderr)
                return 1
        try:
            baseline = load_rows(baseline_path)
            current = load_rows(current_path)
        except SuiteError as e:
            print(f"bench_diff: suite '{suite}': {e}", file=sys.stderr)
            return 1
        suite_compared = 0
        for name in sorted(set(baseline) | set(current)):
            if name not in baseline or name not in current:
                side = "baseline" if name not in current else "current run"
                print(f"  [skip] {suite}/{name}: only in {side}")
                continue
            b, c = baseline[name], current[name]
            if b.get("time_unit") != c.get("time_unit"):
                failures.append(f"{suite}/{name}: time_unit changed "
                                f"({b.get('time_unit')} -> {c.get('time_unit')})")
                continue
            compared += 1
            suite_compared += 1
            b_time, c_time = b["real_time"], c["real_time"]
            ratio = c_time / b_time if b_time > 0 else float("inf")
            marker = "OK"
            if ratio > 1.0 + tolerance:
                marker = "REGRESSION"
                failures.append(
                    f"{suite}/{name}: {b_time:.3f} -> {c_time:.3f} "
                    f"{b.get('time_unit')} ({(ratio - 1) * 100:+.1f}%)")
            print(f"  [{marker}] {suite}/{name}: "
                  f"{b_time:.3f} -> {c_time:.3f} {b.get('time_unit')} "
                  f"({(ratio - 1) * 100:+.1f}%)")
        if suite_compared == 0:
            # A fully renamed/empty suite must not slip through as "all
            # skipped" while another suite keeps the global count positive.
            failures.append(f"{suite}: no benchmarks compared "
                            "(renamed suite? refresh its baseline)")

    print(f"bench_diff: compared {compared} benchmarks, "
          f"{len(failures)} regression(s) beyond tolerance "
          f"(default {args.tolerance * 100:.0f}%)")
    if failures:
        print("bench_diff: FAILING on:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if compared == 0:
        print("bench_diff: nothing compared — treat as failure",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
