#!/usr/bin/env python3
"""Gate benchmark regressions against committed baselines.

Compares Google Benchmark JSON produced by a fresh run against the
`BENCH_<suite>.baseline.json` snapshots committed at the repository root,
and fails (exit 1) when any benchmark's real_time regresses by more than
the tolerance. Benchmarks present on only one side are reported but do not
fail the gate (suites grow; baselines are refreshed when they do).

Usage:
  tools/bench_diff.py --current-dir bench-results [--baseline-dir .]
                      [--tolerance 0.15] SUITE[:TOLERANCE] [SUITE ...]

where SUITE is e.g. `reconstruction` for BENCH_reconstruction.json. A
per-suite tolerance (e.g. `reduction_square:0.35`) overrides --tolerance
for that suite — the knob that lets sub-millisecond microbench suites be
gated at a band wide enough to absorb binary-layout jitter while the
long-running pipelines stay tight.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) — compare raw runs only.
        if row.get("run_type") == "aggregate":
            continue
        rows[row["name"]] = row
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("suites", nargs="+", metavar="SUITE")
    parser.add_argument("--baseline-dir", default=".")
    parser.add_argument("--current-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    args = parser.parse_args()

    failures = []
    compared = 0
    for suite_arg in args.suites:
        suite, _, suite_tol = suite_arg.partition(":")
        tolerance = float(suite_tol) if suite_tol else args.tolerance
        baseline_path = os.path.join(args.baseline_dir,
                                     f"BENCH_{suite}.baseline.json")
        current_path = os.path.join(args.current_dir, f"BENCH_{suite}.json")
        for path in (baseline_path, current_path):
            if not os.path.exists(path):
                print(f"bench_diff: missing {path}", file=sys.stderr)
                return 1
        baseline = load_rows(baseline_path)
        current = load_rows(current_path)
        suite_compared = 0
        for name in sorted(set(baseline) | set(current)):
            if name not in baseline or name not in current:
                side = "baseline" if name not in current else "current run"
                print(f"  [skip] {suite}/{name}: only in {side}")
                continue
            b, c = baseline[name], current[name]
            if b.get("time_unit") != c.get("time_unit"):
                failures.append(f"{suite}/{name}: time_unit changed "
                                f"({b.get('time_unit')} -> {c.get('time_unit')})")
                continue
            compared += 1
            suite_compared += 1
            b_time, c_time = b["real_time"], c["real_time"]
            ratio = c_time / b_time if b_time > 0 else float("inf")
            marker = "OK"
            if ratio > 1.0 + tolerance:
                marker = "REGRESSION"
                failures.append(
                    f"{suite}/{name}: {b_time:.3f} -> {c_time:.3f} "
                    f"{b.get('time_unit')} ({(ratio - 1) * 100:+.1f}%)")
            print(f"  [{marker}] {suite}/{name}: "
                  f"{b_time:.3f} -> {c_time:.3f} {b.get('time_unit')} "
                  f"({(ratio - 1) * 100:+.1f}%)")
        if suite_compared == 0:
            # A fully renamed/empty suite must not slip through as "all
            # skipped" while another suite keeps the global count positive.
            failures.append(f"{suite}: no benchmarks compared "
                            "(renamed suite? refresh its baseline)")

    print(f"bench_diff: compared {compared} benchmarks, "
          f"{len(failures)} regression(s) beyond tolerance "
          f"(default {args.tolerance * 100:.0f}%)")
    if failures:
        print("bench_diff: FAILING on:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if compared == 0:
        print("bench_diff: nothing compared — treat as failure",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
