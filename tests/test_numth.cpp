#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "numth/decoder.hpp"
#include "numth/newton.hpp"
#include "numth/power_sums.hpp"
#include "numth/roots.hpp"
#include "numth/wright.hpp"
#include "support/random.hpp"

namespace referee {
namespace {

TEST(PowerSums, SmallHandComputed) {
  const std::vector<NodeId> ids{2, 5};
  const auto sums = power_sums(ids, 3);
  EXPECT_EQ(sums[0].to_u64(), 7u);     // 2 + 5
  EXPECT_EQ(sums[1].to_u64(), 29u);    // 4 + 25
  EXPECT_EQ(sums[2].to_u64(), 133u);   // 8 + 125
}

TEST(PowerSums, EmptySetIsZeroVector) {
  const auto sums = power_sums(std::vector<NodeId>{}, 4);
  for (const auto& s : sums) EXPECT_TRUE(s.is_zero());
}

TEST(PowerSums, SubtractInverseOfAdd) {
  std::vector<BigUInt> sums(5);
  add_contribution(sums, 17);
  add_contribution(sums, 3);
  subtract_contribution(sums, 17);
  const auto expect = power_sums(std::vector<NodeId>{3}, 5);
  for (unsigned p = 0; p < 5; ++p) EXPECT_EQ(sums[p], expect[p]);
}

TEST(PowerSums, SubtractUnderflowIsDecodeError) {
  std::vector<BigUInt> sums(2);
  add_contribution(sums, 2);
  EXPECT_THROW(subtract_contribution(sums, 5), DecodeError);
}

TEST(PowerSums, Matches) {
  const std::vector<NodeId> ids{1, 4, 9};
  const auto sums = power_sums(ids, 3);
  EXPECT_TRUE(matches_power_sums(sums, ids));
  const std::vector<NodeId> other{1, 4, 8};
  EXPECT_FALSE(matches_power_sums(sums, other));
}

TEST(Newton, HandComputedPair) {
  // values {2, 5}: e1 = 7, e2 = 10.
  const auto sums = power_sums(std::vector<NodeId>{2, 5}, 2);
  const auto e = elementary_from_power_sums(sums);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0].to_i64(), 7);
  EXPECT_EQ(e[1].to_i64(), 10);
}

TEST(Newton, RoundTripThroughPowerSums) {
  Rng rng(251);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned d = 1 + static_cast<unsigned>(rng.below(6));
    auto subset = rng.sample_subset(500, d);
    std::vector<NodeId> ids;
    for (const auto v : subset) ids.push_back(v + 1);
    const auto p = power_sums(ids, d);
    const auto e = elementary_from_power_sums(p);
    const auto p2 = power_sums_from_elementary(e, d);
    for (unsigned i = 0; i < d; ++i) {
      EXPECT_EQ(p2[i], BigInt(p[i]));
    }
  }
}

TEST(Newton, ImpossibleSumsThrow) {
  // p1 = 1, p2 = 2 would need e2 = (e1 p1 - p2)/2 = (1-2)/2: inexact.
  std::vector<BigUInt> sums{BigUInt(1), BigUInt(2)};
  EXPECT_THROW(elementary_from_power_sums(sums), DecodeError);
}

TEST(Roots, RecoversKnownSet) {
  const std::vector<NodeId> ids{3, 7, 20};
  const auto e = elementary_from_power_sums(power_sums(ids, 3));
  EXPECT_EQ(roots_in_range(e, 25), ids);
}

TEST(Roots, RestrictedCandidatesStillWork) {
  const std::vector<NodeId> ids{3, 7, 20};
  const auto e = elementary_from_power_sums(power_sums(ids, 3));
  const std::vector<NodeId> candidates{1, 3, 7, 9, 20, 22};
  EXPECT_EQ(roots_among(e, candidates), ids);
}

TEST(Roots, MissingCandidateThrows) {
  const std::vector<NodeId> ids{3, 7, 20};
  const auto e = elementary_from_power_sums(power_sums(ids, 3));
  const std::vector<NodeId> candidates{3, 7};  // 20 withheld
  EXPECT_THROW(roots_among(e, candidates), DecodeError);
}

TEST(Roots, DegreeZero) {
  EXPECT_TRUE(roots_in_range({}, 10).empty());
}

class DecoderEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(DecoderEquivalence, NewtonMatchesTruthAcrossRandomSubsets) {
  const unsigned k = GetParam();
  Rng rng(257 + k);
  const NewtonDecoder decoder;
  std::vector<NodeId> everyone(200);
  std::iota(everyone.begin(), everyone.end(), 1u);
  for (int trial = 0; trial < 40; ++trial) {
    const unsigned d = static_cast<unsigned>(rng.below(k + 1));
    auto subset = rng.sample_subset(200, d);
    std::vector<NodeId> ids;
    for (const auto v : subset) ids.push_back(v + 1);
    const auto sums = power_sums(ids, k);
    EXPECT_EQ(decoder.decode(d, sums, everyone), ids);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecoderEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(PowerSumsU64, MatchesBigIntPath) {
  Rng rng(619);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned k = 1 + static_cast<unsigned>(rng.below(4));
    auto subset = rng.sample_subset(1000, 8);
    std::vector<NodeId> ids;
    for (const auto v : subset) ids.push_back(v + 1);
    ASSERT_TRUE(power_sums_fit_u64(1000, k, ids.size()));
    const auto fast = power_sums_u64(ids, k);
    const auto exact = power_sums(ids, k);
    for (unsigned p = 0; p < k; ++p) {
      EXPECT_EQ(fast[p], exact[p].to_u64());
    }
  }
}

TEST(PowerSumsU64, FitPredicate) {
  EXPECT_TRUE(power_sums_fit_u64(1000, 3, 1000));   // 1000^4 = 1e12... * deg
  EXPECT_TRUE(power_sums_fit_u64(100, 6, 100));
  EXPECT_FALSE(power_sums_fit_u64(1u << 20, 4, 1u << 20));
}

TEST(SmallNewtonDecoder, AgreesWithBigIntDecoder) {
  const std::uint32_t n = 500;
  const unsigned k = 4;
  const SmallNewtonDecoder fast(n, k);
  const NewtonDecoder exact;
  std::vector<NodeId> everyone(n);
  std::iota(everyone.begin(), everyone.end(), 1u);
  Rng rng(621);
  for (int trial = 0; trial < 60; ++trial) {
    const unsigned d = static_cast<unsigned>(rng.below(k + 1));
    auto subset = rng.sample_subset(n, d);
    std::vector<NodeId> ids;
    for (const auto v : subset) ids.push_back(v + 1);
    const auto sums = power_sums(ids, k);
    EXPECT_EQ(fast.decode(d, sums, everyone),
              exact.decode(d, sums, everyone));
  }
}

TEST(SmallNewtonDecoder, ConstructorRejectsOutOfRange) {
  EXPECT_THROW(SmallNewtonDecoder(1u << 20, 4), CheckError);
  EXPECT_NO_THROW(SmallNewtonDecoder(1000, 3));
}

TEST(SmallNewtonDecoder, CorruptSumsFailLoudly) {
  const SmallNewtonDecoder fast(100, 2);
  std::vector<NodeId> everyone(100);
  std::iota(everyone.begin(), everyone.end(), 1u);
  const std::vector<BigUInt> bogus{BigUInt(1), BigUInt(2)};
  EXPECT_THROW(fast.decode(2, bogus, everyone), DecodeError);
}

TEST(Wright, InjectivityHoldsExhaustively) {
  // Theorem 4 checked by brute force: all k-subsets of {1..n}.
  EXPECT_TRUE(verify_wright_injectivity(12, 1));
  EXPECT_TRUE(verify_wright_injectivity(12, 2));
  EXPECT_TRUE(verify_wright_injectivity(12, 3));
  EXPECT_TRUE(verify_wright_injectivity(10, 4));
}

TEST(Wright, InjectivityParallelMatches) {
  ThreadPool pool(4);
  EXPECT_TRUE(verify_wright_injectivity(11, 3, &pool));
}

TEST(Wright, DroppingTopPowerBreaksInjectivity) {
  // With only p = 1..k-1 on k-subsets, collisions appear quickly, e.g.
  // {1,4} and {2,3} share p1 = 5.
  EXPECT_TRUE(exists_collision_without_top_power(6, 2));
  EXPECT_TRUE(exists_collision_without_top_power(8, 3));
}

// ---------------------------------------------------------------------------
// Arena decode paths: same answers as the allocating forms, and — the
// regression the campaign's zero-allocation claim rests on — a warm arena
// never grows across repeated decodes, even when the degree swings between
// calls (the historic roots.reserve(degree) pattern re-allocated per call).
// ---------------------------------------------------------------------------

std::vector<NodeId> all_candidates(std::uint32_t n) {
  std::vector<NodeId> c(n);
  std::iota(c.begin(), c.end(), 1u);
  return c;
}

TEST(ArenaDecode, IntoFormsMatchAllocatingForms) {
  DecodeArena arena;
  const std::vector<NodeId> ids{3, 8, 21, 40};
  const auto sums = power_sums(ids, 4);
  const auto candidates = all_candidates(41);

  auto elementary_scratch = arena.scratch<BigInt>();
  elementary_from_power_sums_into(sums, arena, *elementary_scratch);
  const auto elementary = elementary_from_power_sums(sums);
  for (std::size_t i = 0; i < elementary.size(); ++i) {
    EXPECT_EQ((*elementary_scratch)[i], elementary[i]);
  }

  std::vector<NodeId> roots;
  roots_among_into(elementary, candidates, arena, roots);
  EXPECT_EQ(roots, ids);
  EXPECT_EQ(roots, roots_among(elementary, candidates));

  EXPECT_TRUE(matches_power_sums(sums, ids, arena));
  EXPECT_FALSE(matches_power_sums(sums, std::vector<NodeId>{3, 8, 21}, arena));
}

TEST(ArenaDecode, SubtractContributionSpanFormMatches) {
  DecodeArena arena;
  std::vector<BigUInt> via_vector = power_sums(std::vector<NodeId>{5, 9}, 3);
  std::vector<BigUInt> via_span = via_vector;
  subtract_contribution(via_vector, 9);
  subtract_contribution(std::span<BigUInt>(via_span), 9, arena);
  EXPECT_EQ(via_vector, via_span);
  EXPECT_THROW(
      subtract_contribution(std::span<BigUInt>(via_span), 9999, arena),
      DecodeError);
}

template <class Decoder>
void expect_zero_growth_when_warm(const Decoder& decoder, std::uint32_t n,
                                  unsigned k) {
  DecodeArena arena;
  const auto candidates = all_candidates(n);
  Rng rng(0xA11C);
  // Data-dependent degrees per decode: sample fresh neighbour sets.
  const auto run_pass = [&](std::uint64_t seed) {
    Rng pass_rng(seed);
    std::vector<NodeId> out;
    for (int call = 0; call < 32; ++call) {
      const unsigned degree = 1 + static_cast<unsigned>(pass_rng.below(k));
      std::vector<NodeId> ids;
      while (ids.size() < degree) {
        const NodeId id = 1 + static_cast<NodeId>(pass_rng.below(n));
        if (std::find(ids.begin(), ids.end(), id) == ids.end())
          ids.push_back(id);
      }
      std::sort(ids.begin(), ids.end());
      const auto sums = power_sums(ids, degree);
      decoder.decode_into(degree, sums, candidates, arena, out);
      EXPECT_EQ(out, ids);
    }
  };
  run_pass(7);  // warm-up: pools and capacities materialise here
  const auto warm = arena.growth_events();
  run_pass(7);
  run_pass(13);  // different degree sequence — still no growth
  EXPECT_EQ(arena.growth_events(), warm)
      << "warm arena grew: decode path allocated";
  EXPECT_GT(arena.stats().checkouts, 0u);
}

TEST(ArenaDecode, NewtonDecoderZeroGrowthWhenWarm) {
  expect_zero_growth_when_warm(NewtonDecoder(), 24, 4);
}

TEST(ArenaDecode, SmallNewtonDecoderZeroGrowthWhenWarm) {
  expect_zero_growth_when_warm(SmallNewtonDecoder(24, 4), 24, 4);
}

}  // namespace
}  // namespace referee
