// Cross-module integration: realistic interconnection topologies pushed
// through the full simulator stack, with frugality audited and ground truth
// cross-checked — the "whole paper in one test file" suite.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "model/simulator.hpp"
#include "protocols/bounded_degree.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/forest_protocol.hpp"
#include "protocols/generalized_degeneracy.hpp"
#include "protocols/recognition.hpp"
#include "reductions/oracles.hpp"
#include "reductions/reductions.hpp"
#include "sketch/connectivity.hpp"

namespace referee {
namespace {

TEST(Integration, DatacenterFatTreeFullPipeline) {
  // A k=6 fat-tree switch fabric: the referee reconstructs the entire
  // topology from one frugal round, and the reconstruction matches every
  // structural invariant of the original.
  const Graph g = gen::fat_tree(6, /*with_hosts=*/true);
  const auto deg = degeneracy(g);
  ASSERT_LE(deg.degeneracy, 3u);  // agg-core pattern keeps it 3-degenerate
  ThreadPool pool(4);
  const Simulator sim(&pool);
  const DegeneracyReconstruction protocol(
      static_cast<unsigned>(deg.degeneracy));
  FrugalityReport report;
  const Graph h = sim.run_reconstruction(g, protocol, &report);
  EXPECT_EQ(h, g);
  EXPECT_TRUE(report.is_frugal(30.0));
  EXPECT_EQ(diameter(h), diameter(g));
}

TEST(Integration, EveryProtocolOnItsHomeTopology) {
  Rng rng(479);
  ThreadPool pool(2);
  const Simulator sim(&pool);
  struct Case {
    Graph g;
    std::shared_ptr<ReconstructionProtocol> protocol;
  };
  std::vector<Case> cases;
  cases.push_back({gen::random_tree(120, rng),
                   std::make_shared<ForestReconstruction>()});
  cases.push_back({gen::grid(8, 9),
                   std::make_shared<DegeneracyReconstruction>(2)});
  cases.push_back({gen::random_apollonian(80, rng),
                   std::make_shared<DegeneracyReconstruction>(3)});
  cases.push_back({gen::hypercube(5),
                   std::make_shared<BoundedDegreeReconstruction>(5)});
  cases.push_back({complement(gen::random_tree(40, rng)),
                   std::make_shared<GeneralizedDegeneracyReconstruction>(1)});
  for (const auto& c : cases) {
    EXPECT_EQ(sim.run_reconstruction(c.g, *c.protocol), c.g)
        << c.protocol->name();
  }
}

TEST(Integration, ReconstructionSurvivesSerialization) {
  // Graph -> graph6 -> graph -> protocol -> reconstruction -> edge list.
  Rng rng(487);
  const Graph g = gen::random_k_degenerate(45, 2, rng);
  const Graph g2 = from_graph6(to_graph6(g));
  const Simulator sim;
  const Graph h = sim.run_reconstruction(g2, DegeneracyReconstruction(2));
  EXPECT_EQ(from_edge_list(to_edge_list(h)), g);
}

TEST(Integration, RecognitionAgreesWithGroundTruthOnMixedBag) {
  Rng rng(491);
  const Simulator sim;
  const auto rec2 = make_degeneracy_recognizer(2);
  int checked = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::gnp(25, rng.uniform01() * 0.25, rng);
    const bool truth = degeneracy(g).degeneracy <= 2;
    EXPECT_EQ(sim.run_decision(g, *rec2), truth);
    ++checked;
  }
  EXPECT_EQ(checked, 15);
}

TEST(Integration, ImpossibleVsPossibleSummary) {
  // The paper's dichotomy on one concrete graph: a 60-vertex Apollonian
  // network (planar). Reconstruction: frugal and exact. Square / triangle /
  // diameter decisions: only via the non-frugal oracle, whose messages
  // provably blow past the frugal budget on dense nodes.
  Rng rng(499);
  const Graph g = gen::random_apollonian(60, rng);
  const Simulator sim;

  FrugalityReport frugal_report;
  const Graph h =
      sim.run_reconstruction(g, DegeneracyReconstruction(3), &frugal_report);
  EXPECT_EQ(h, g);
  EXPECT_LE(frugal_report.constant(), 25.0);

  FrugalityReport oracle_report;
  sim.run_decision(g, *make_triangle_oracle(), &oracle_report);
  // The oracle ships adjacency lists; its max message is Θ(Δ log n), which
  // on this graph dwarfs the degeneracy protocol's max message.
  EXPECT_GT(oracle_report.max_bits, frugal_report.max_bits);
}

TEST(Integration, SketchAnswersTheOpenQuestionOnFatTree) {
  const Graph g = gen::fat_tree(4, /*with_hosts=*/true);
  const Simulator sim;
  const SketchConnectivityProtocol protocol(
      SketchParams{.seed = 0xFEE1, .rounds = 0, .copies = 4});
  EXPECT_TRUE(sim.run_decision(g, protocol));
  // Unplug one edge switch's uplinks: its hosts fall off the fabric.
  Graph broken = g;
  const auto agg_start = 4u;        // (k/2)^2 cores for k=4
  const auto edge_start = 4u + 8u;  // + k*k/2 aggs
  for (Vertex agg = agg_start; agg < edge_start; ++agg) {
    broken.remove_edge(agg, edge_start);  // detach first edge switch
  }
  EXPECT_FALSE(sim.run_decision(broken, protocol));
}

TEST(Integration, ReductionsComposeWithRecognition) {
  // Run Δ_diameter to reconstruct a graph, then feed the result into the
  // degeneracy recogniser — a two-stage referee pipeline.
  Rng rng(503);
  const Graph g = gen::random_k_degenerate(12, 2, rng);
  const Simulator sim;
  const Graph h =
      sim.run_reconstruction(g, DiameterReduction(make_diameter_oracle(3)));
  ASSERT_EQ(h, g);
  EXPECT_TRUE(sim.run_decision(h, *make_degeneracy_recognizer(2)));
}

TEST(Integration, ParallelAndSequentialRefereesAgreeEverywhere) {
  Rng rng(509);
  ThreadPool pool(8);
  const Simulator par(&pool);
  const Simulator seq(nullptr);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gen::random_k_degenerate(200, 3, rng);
    const DegeneracyReconstruction protocol(3);
    EXPECT_EQ(par.run_reconstruction(g, protocol),
              seq.run_reconstruction(g, protocol));
  }
}

}  // namespace
}  // namespace referee
