#include <gtest/gtest.h>

#include <algorithm>

#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"

namespace referee {
namespace {

TEST(Degeneracy, KnownFamilies) {
  Rng rng(7);
  EXPECT_EQ(degeneracy(gen::random_tree(30, rng)).degeneracy, 1u);
  EXPECT_EQ(degeneracy(gen::cycle(10)).degeneracy, 2u);
  EXPECT_EQ(degeneracy(gen::complete(7)).degeneracy, 6u);
  EXPECT_EQ(degeneracy(gen::grid(5, 6)).degeneracy, 2u);
  EXPECT_EQ(degeneracy(gen::complete_bipartite(3, 9)).degeneracy, 3u);
  EXPECT_EQ(degeneracy(gen::hypercube(4)).degeneracy, 4u);
  EXPECT_EQ(degeneracy(Graph(5)).degeneracy, 0u);
}

TEST(Degeneracy, ForestsAreExactlyDegeneracyOne) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    EXPECT_LE(degeneracy(gen::random_forest(40, 0.2, rng)).degeneracy, 1u);
  }
  // Any graph with a cycle has degeneracy >= 2.
  EXPECT_GE(degeneracy(gen::cycle(3)).degeneracy, 2u);
}

TEST(Degeneracy, RemovalOrderIsValidEliminationOrder) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::gnp(40, 0.15, rng);
    const auto result = degeneracy(g);
    // The paper's (r_1,...,r_n) is the reverse of the removal order.
    std::vector<Vertex> paper_order(result.removal_order.rbegin(),
                                    result.removal_order.rend());
    EXPECT_TRUE(is_valid_elimination_order(g, paper_order, result.degeneracy));
    // And not valid for any smaller k when the bound is tight.
    if (result.degeneracy > 0) {
      EXPECT_FALSE(
          is_valid_elimination_order(g, paper_order, result.degeneracy - 1));
    }
  }
}

TEST(Degeneracy, EliminationOrderValidatorRejectsNonPermutations) {
  const Graph g = gen::path(4);
  const std::vector<Vertex> dup{0, 0, 1, 2};
  EXPECT_FALSE(is_valid_elimination_order(g, dup, 1));
  const std::vector<Vertex> short_order{0, 1};
  EXPECT_FALSE(is_valid_elimination_order(g, short_order, 1));
}

TEST(Degeneracy, CoreNumbersMonotone) {
  // The k-core number never exceeds the degeneracy and is at least 1 on any
  // non-isolated vertex.
  Rng rng(17);
  const Graph g = gen::gnp(50, 0.1, rng);
  const auto result = degeneracy(g);
  for (Vertex v = 0; v < 50; ++v) {
    EXPECT_LE(result.core_number[v], result.degeneracy);
    if (g.degree(v) > 0) {
      EXPECT_GE(result.core_number[v], 1u);
    }
  }
}

TEST(Degeneracy, CoreNumberOfCliqueCore) {
  // K5 with a pendant path: clique vertices have core 4, path tail core 1.
  Graph g = gen::complete(5);
  const Vertex p0 = g.add_vertices(2);
  g.add_edge(0, p0);
  g.add_edge(p0, p0 + 1);
  const auto result = degeneracy(g);
  EXPECT_EQ(result.degeneracy, 4u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(result.core_number[v], 4u);
  EXPECT_EQ(result.core_number[p0 + 1], 1u);
}

TEST(Degeneracy, HasDegeneracyAtMost) {
  const Graph g = gen::cycle(8);
  EXPECT_FALSE(has_degeneracy_at_most(g, 1));
  EXPECT_TRUE(has_degeneracy_at_most(g, 2));
  EXPECT_TRUE(has_degeneracy_at_most(g, 3));
}

TEST(GeneralizedDegeneracy, CompleteGraphIsGeneralizedZero) {
  // K_n: every vertex has co-degree 0, so generalised degeneracy holds even
  // at k = 1 where plain degeneracy (n-1) fails badly.
  const Graph g = gen::complete(8);
  const auto result = generalized_degeneracy_order(g, 1);
  EXPECT_TRUE(result.feasible);
  // All removals use the complement side until the residual clique shrinks
  // to k+1 = 2 vertices, whose plain degree also qualifies.
  const auto complement_uses =
      std::count(result.used_complement.begin(), result.used_complement.end(),
                 true);
  EXPECT_GE(complement_uses, 6);
}

TEST(GeneralizedDegeneracy, ComplementOfForestFeasibleAtOne) {
  Rng rng(19);
  const Graph g = complement(gen::random_tree(20, rng));
  EXPECT_TRUE(generalized_degeneracy_order(g, 1).feasible);
}

TEST(GeneralizedDegeneracy, PlainDegenerateStillFeasible) {
  Rng rng(23);
  const Graph g = gen::random_k_degenerate(30, 2, rng);
  const auto result = generalized_degeneracy_order(g, 2);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.removal_order.size(), 30u);
}

TEST(GeneralizedDegeneracy, InfeasibleCase) {
  // A 4-regular-ish graph on few vertices where neither side is small:
  // C5 join C5 complement trickery is overkill — use the 3-cube plus its
  // complement edges on alternating vertices... simplest concrete witness:
  // the 4x4 rook's graph-ish torus: every vertex has degree 4 and co-degree
  // 11, so k = 3 fails on both sides at the first step; and since the torus
  // is vertex-transitive and removals only help the complement side slowly,
  // feasibility at k=3 would require *some* vertex to drop to degree <= 3.
  const Graph g = gen::torus(4, 4);
  const auto result = generalized_degeneracy_order(g, 3);
  EXPECT_FALSE(result.feasible);
}

}  // namespace
}  // namespace referee
