#include "support/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace referee {
namespace {

TEST(BoundedQueue, CapacityIsClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueue, ShedsWhenFullAndRecoversAfterPop) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: shed, immediately
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));  // capacity freed
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, FailedPushLeavesTheValueIntact) {
  BoundedQueue<std::string> q(1);
  ASSERT_TRUE(q.try_push("first"));
  std::string second = "second";
  ASSERT_FALSE(q.try_push(std::move(second)));
  // The shed value was not consumed — the service answers its promise.
  EXPECT_EQ(second, "second");
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(3));  // no admissions after close
  EXPECT_EQ(q.pop(), 1);        // but queued work still drains
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);  // the consumer's exit signal
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();  // would hang forever if close() failed to wake pop()
}

TEST(BoundedQueue, TryPopIsNonBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.try_pop(), std::nullopt);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_EQ(q.try_pop(), 7);
}

TEST(BoundedQueue, TryPopIfTakesOnlyAMatchingHead) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(4));
  EXPECT_TRUE(q.try_push(5));
  const auto even = [](int v) { return v % 2 == 0; };
  EXPECT_EQ(q.try_pop_if(even), 2);
  EXPECT_EQ(q.try_pop_if(even), 4);
  EXPECT_EQ(q.try_pop_if(even), std::nullopt);  // head 5 does not match
  EXPECT_EQ(q.size(), 3u - 2u);                 // and it was not removed
  EXPECT_EQ(q.pop(), 5);
}

TEST(BoundedQueue, ConcurrentProducersAndConsumersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto value = q.pop()) {
        sum.fetch_add(*value);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        // A full queue sheds; a real producer retries or gives up. Retry —
        // this test pins delivery, the shed path is pinned above.
        while (!q.try_push(std::move(value))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace referee
