// Broad randomised coverage: every (family, protocol) pairing across many
// seeds — the regression net that catches rare decode-path corner cases
// (specific ID patterns, degree ties, unlucky hash seeds).
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "model/simulator.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/forest_protocol.hpp"
#include "protocols/generalized_degeneracy.hpp"
#include "sketch/connectivity.hpp"

namespace referee {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, DegeneracyIdentityAcrossFamilies) {
  Rng rng(GetParam());
  const Simulator sim;
  const std::size_t n = 30 + rng.below(40);
  const auto k = static_cast<unsigned>(1 + rng.below(4));
  const Graph g = gen::random_k_degenerate(n, k, rng);
  EXPECT_EQ(sim.run_reconstruction(g, DegeneracyReconstruction(k)), g)
      << "seed=" << GetParam() << " n=" << n << " k=" << k;
}

TEST_P(SeedSweep, ForestIdentity) {
  Rng rng(GetParam() ^ 0xF0F0F0F0ull);
  const Simulator sim;
  const Graph g = gen::random_forest(20 + rng.below(80), rng.uniform01() / 2,
                                     rng);
  EXPECT_EQ(sim.run_reconstruction(g, ForestReconstruction()), g);
}

TEST_P(SeedSweep, GeneralizedIdentityOnComplements) {
  Rng rng(GetParam() ^ 0xABCDull);
  const Simulator sim;
  const Graph g = complement(gen::random_k_degenerate(20 + rng.below(15), 2,
                                                      rng));
  EXPECT_EQ(sim.run_reconstruction(g, GeneralizedDegeneracyReconstruction(2)),
            g);
}

TEST_P(SeedSweep, RecognitionMatchesGroundTruth) {
  Rng rng(GetParam() ^ 0x777ull);
  const Simulator sim;
  const Graph g = gen::gnp(20 + rng.below(15), rng.uniform01() * 0.3, rng);
  const auto truth = degeneracy(g).degeneracy;
  for (unsigned k = 1; k <= 4; ++k) {
    const DegeneracyReconstruction protocol(k);
    bool accepted = true;
    try {
      const Graph h = sim.run_reconstruction(g, protocol);
      EXPECT_EQ(h, g);
    } catch (const DecodeError&) {
      accepted = false;
    }
    EXPECT_EQ(accepted, truth <= k) << "k=" << k << " truth=" << truth;
  }
}

TEST_P(SeedSweep, SketchComponentsMatchTruth) {
  Rng rng(GetParam() ^ 0x51C7ull);
  const std::size_t n = 24 + rng.below(24);
  const Graph g = gen::gnp(n, rng.uniform01() * 0.15, rng);
  const auto result = sketch_components(
      g, SketchParams{.seed = GetParam() * 2654435761ull + 1, .rounds = 0,
                      .copies = 5});
  EXPECT_EQ(result.component_count, component_count(g))
      << "seed=" << GetParam() << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace referee
