#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/simulator.hpp"
#include "protocols/statistics.hpp"

namespace referee {
namespace {

std::vector<Message> transcript(const Graph& g) {
  const Simulator sim;
  return sim.run_local_phase(g, DegreeStatistics());
}

TEST(Statistics, DegreeSequenceMatchesGraph) {
  Rng rng(571);
  const Graph g = gen::gnp(40, 0.2, rng);
  const auto msgs = transcript(g);
  const auto degrees = DegreeStatistics::degree_sequence(40, msgs);
  for (Vertex v = 0; v < 40; ++v) EXPECT_EQ(degrees[v], g.degree(v));
}

TEST(Statistics, EdgeCountExact) {
  Rng rng(577);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::gnp(30, rng.uniform01() * 0.5, rng);
    EXPECT_EQ(DegreeStatistics::edge_count(30, transcript(g)),
              g.edge_count());
  }
}

TEST(Statistics, MinMaxDegree) {
  const Graph g = gen::star(9);
  const auto msgs = transcript(g);
  EXPECT_EQ(DegreeStatistics::max_degree(10, msgs), 9u);
  EXPECT_EQ(DegreeStatistics::min_degree(10, msgs), 1u);
}

TEST(Statistics, MessageIsTwoLogUnits) {
  const Simulator sim;
  FrugalityReport report;
  const auto msgs = sim.run_local_phase(gen::complete(100), DegreeStatistics());
  report = audit_frugality(100, msgs);
  EXPECT_DOUBLE_EQ(report.constant(), 2.0);
}

TEST(Statistics, ErdosGallaiAcceptsRealGraphs) {
  Rng rng(587);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::gnp(20, rng.uniform01(), rng);
    EXPECT_TRUE(DegreeStatistics::erdos_gallai_feasible(20, transcript(g)));
  }
}

TEST(Statistics, ErdosGallaiRejectsImpossibleSequence) {
  // Hand-craft a transcript claiming degrees {3, 1, 1, 0}: sum is odd —
  // not even a multigraph; and {3,3,1,1} (sum 8, even) fails EG at k = 2.
  const DegreeStatistics protocol;
  const std::uint32_t n = 4;
  const auto forged = [&](std::vector<NodeId> degs) {
    std::vector<Message> msgs;
    for (std::uint32_t i = 0; i < n; ++i) {
      BitWriter w;
      w.write_bits(i + 1, 3);
      w.write_bits(degs[i], 3);
      msgs.push_back(Message::seal(std::move(w)));
    }
    return msgs;
  };
  EXPECT_FALSE(
      DegreeStatistics::erdos_gallai_feasible(n, forged({3, 1, 1, 0})));
  EXPECT_THROW(DegreeStatistics::edge_count(n, forged({3, 1, 1, 0})),
               DecodeError);
  EXPECT_FALSE(
      DegreeStatistics::erdos_gallai_feasible(n, forged({3, 3, 1, 1})));
}

TEST(Statistics, ConnectivityNecessaryConditions) {
  Rng rng(593);
  // Connected graphs always pass the necessary test.
  const Graph c = gen::connected_gnp(25, 0.1, rng);
  EXPECT_TRUE(DegreeStatistics::connectivity_possible(25, transcript(c)));
  // A graph with an isolated vertex is caught.
  Graph iso = gen::path(24);
  iso.add_vertices(1);
  EXPECT_FALSE(DegreeStatistics::connectivity_possible(25, transcript(iso)));
  // The paper's point: the test is NOT sufficient — two disjoint cycles
  // pass on degrees yet are disconnected.
  Graph two = gen::cycle(12);
  const Vertex base = two.add_vertices(13);
  for (Vertex v = base; v < two.vertex_count(); ++v) {
    two.add_edge(v, v + 1 == two.vertex_count() ? base : v + 1);
  }
  EXPECT_TRUE(DegreeStatistics::connectivity_possible(25, transcript(two)));
  // (truth: disconnected — exactly the gap the open question lives in)
}

}  // namespace
}  // namespace referee
