// support/stats.hpp: RunningStat extrema tracking and LinearFit degenerate-
// input guards. Regression suite for two former foot-guns: min_seen()/
// max_seen() leaked ±1e300 sentinels when only add() was used (or when the
// stat was empty), and intercept()/r_squared() on a single point CHECK-failed
// deep inside slope() with a misleading "degenerate x values" message.
#include <gtest/gtest.h>

#include <cmath>

#include "support/stats.hpp"

namespace referee {
namespace {

TEST(RunningStat, AddTracksExtrema) {
  RunningStat s;
  s.add(5.0);
  s.add(-2.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.min_seen(), -2.0);
  EXPECT_DOUBLE_EQ(s.max_seen(), 9.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(RunningStat, AddTrackedIsAnAliasOfAdd) {
  RunningStat plain;
  RunningStat tracked;
  for (const double x : {4.0, 7.0, 1.0}) {
    plain.add(x);
    tracked.add_tracked(x);
  }
  EXPECT_DOUBLE_EQ(plain.min_seen(), tracked.min_seen());
  EXPECT_DOUBLE_EQ(plain.max_seen(), tracked.max_seen());
  EXPECT_DOUBLE_EQ(plain.mean(), tracked.mean());
  EXPECT_DOUBLE_EQ(plain.variance(), tracked.variance());
}

TEST(RunningStat, EmptyExtremaAreNaN) {
  const RunningStat s;
  EXPECT_TRUE(std::isnan(s.min_seen()));
  EXPECT_TRUE(std::isnan(s.max_seen()));
}

TEST(RunningStat, SingleValueIsBothExtrema) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.min_seen(), 3.5);
  EXPECT_DOUBLE_EQ(s.max_seen(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, ExtremaBeyondOldSentinelsAreExact) {
  // The historic ±1e300 sentinels capped what min/max could report.
  RunningStat s;
  s.add(1e301);
  EXPECT_DOUBLE_EQ(s.min_seen(), 1e301);
  EXPECT_DOUBLE_EQ(s.max_seen(), 1e301);
  s.add(-1e301);
  EXPECT_DOUBLE_EQ(s.min_seen(), -1e301);
}

TEST(LinearFit, TwoPointFitIsExact) {
  LinearFit fit;
  fit.add(1.0, 3.0);
  fit.add(3.0, 7.0);
  EXPECT_NEAR(fit.slope(), 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept(), 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared(), 1.0, 1e-12);
}

TEST(LinearFit, SinglePointInterceptThrowsItsOwnGuard) {
  LinearFit fit;
  fit.add(2.0, 5.0);
  // The guard must name the real problem (too few points), not fall through
  // to slope()'s "degenerate x values" check.
  try {
    (void)fit.intercept();
    FAIL() << "intercept() on one point must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("two points"), std::string::npos);
  }
}

TEST(LinearFit, SinglePointRSquaredThrowsItsOwnGuard) {
  LinearFit fit;
  fit.add(2.0, 5.0);
  try {
    (void)fit.r_squared();
    FAIL() << "r_squared() on one point must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("two points"), std::string::npos);
  }
}

TEST(LinearFit, EmptyFitThrowsOnEveryAccessor) {
  const LinearFit fit;
  EXPECT_THROW((void)fit.slope(), CheckError);
  EXPECT_THROW((void)fit.intercept(), CheckError);
  EXPECT_THROW((void)fit.r_squared(), CheckError);
}

TEST(LinearFit, DegenerateXStillDetectedWithEnoughPoints) {
  LinearFit fit;
  fit.add(4.0, 1.0);
  fit.add(4.0, 2.0);
  EXPECT_THROW((void)fit.slope(), CheckError);
}

}  // namespace
}  // namespace referee
