#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "model/simulator.hpp"
#include "protocols/forest_protocol.hpp"
#include "protocols/recognition.hpp"
#include "support/bits.hpp"

namespace referee {
namespace {

TEST(ForestProtocol, ReconstructsTrees) {
  Rng rng(313);
  const Simulator sim;
  const ForestReconstruction protocol;
  for (const std::size_t n : {1u, 2u, 3u, 10u, 100u, 500u}) {
    const Graph g = gen::random_tree(n, rng);
    EXPECT_EQ(sim.run_reconstruction(g, protocol), g);
  }
}

TEST(ForestProtocol, ReconstructsForestsWithIsolatedVertices) {
  Rng rng(317);
  const Simulator sim;
  const ForestReconstruction protocol;
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::random_forest(60, 0.4, rng);
    EXPECT_EQ(sim.run_reconstruction(g, protocol), g);
  }
}

TEST(ForestProtocol, ReconstructsStarsAndPathsAndCaterpillars) {
  const Simulator sim;
  const ForestReconstruction protocol;
  EXPECT_EQ(sim.run_reconstruction(gen::star(30), protocol), gen::star(30));
  EXPECT_EQ(sim.run_reconstruction(gen::path(40), protocol), gen::path(40));
  EXPECT_EQ(sim.run_reconstruction(gen::caterpillar(8, 4), protocol),
            gen::caterpillar(8, 4));
  EXPECT_EQ(sim.run_reconstruction(gen::binary_tree(63), protocol),
            gen::binary_tree(63));
}

TEST(ForestProtocol, MessageWithinFourLogN) {
  // §III-A: the triple "can be encoded using less than 4 log n bits".
  Rng rng(331);
  const Graph g = gen::random_tree(200, rng);
  const Simulator sim;
  FrugalityReport report;
  sim.run_reconstruction(g, ForestReconstruction(), &report);
  EXPECT_LE(report.constant(), 4.0);
}

TEST(ForestProtocol, CycleDetectedLoudly) {
  const Simulator sim;
  const ForestReconstruction protocol;
  EXPECT_THROW(sim.run_reconstruction(gen::cycle(10), protocol), DecodeError);
  // A lollipop (cycle + tail): the tail prunes fine, then the cycle stalls.
  Graph lollipop = gen::cycle(5);
  const Vertex tail = lollipop.add_vertices(3);
  lollipop.add_edge(0, tail);
  lollipop.add_edge(tail, tail + 1);
  lollipop.add_edge(tail + 1, tail + 2);
  EXPECT_THROW(sim.run_reconstruction(lollipop, protocol), DecodeError);
}

TEST(ForestProtocol, RecognizerAcceptsForestsRejectsCycles) {
  Rng rng(337);
  const Simulator sim;
  const auto recognizer = make_forest_recognizer();
  EXPECT_TRUE(sim.run_decision(gen::random_forest(40, 0.3, rng), *recognizer));
  EXPECT_TRUE(sim.run_decision(gen::path(17), *recognizer));
  EXPECT_FALSE(sim.run_decision(gen::cycle(17), *recognizer));
  EXPECT_FALSE(sim.run_decision(gen::complete(4), *recognizer));
  EXPECT_FALSE(sim.run_decision(gen::grid(3, 3), *recognizer));
}

TEST(ForestProtocol, CorruptedLeafSumDetected) {
  Rng rng(347);
  const Graph g = gen::random_tree(30, rng);
  const ForestReconstruction protocol;
  const Simulator sim;
  auto msgs = sim.run_local_phase(g, protocol);
  // Flip a bit inside the sum field of some leaf's message.
  const int id_bits = log_budget_bits(30);
  msgs[3].flip_bit(static_cast<std::size_t>(2 * id_bits) + 1);
  bool caught = false;
  try {
    const Graph h = protocol.reconstruct(30, msgs);
    caught = !(h == g);  // if it decoded, it must have decoded differently
  } catch (const DecodeError&) {
    caught = true;
  }
  // The forest decoder has no power-sum cross-check, so a corrupt sum can
  // reconstruct a *different forest* — but never the original graph.
  EXPECT_TRUE(caught);
}

TEST(ForestProtocol, AgreesWithDegeneracyProtocolAtKOne) {
  Rng rng(349);
  const Simulator sim;
  const Graph g = gen::random_forest(50, 0.25, rng);
  const ForestReconstruction fast;
  EXPECT_EQ(sim.run_reconstruction(g, fast), g);
}

}  // namespace
}  // namespace referee
