// The executable Theorems 1-3: plugging an exact (non-frugal) Γ oracle into
// the reduction machinery must reconstruct the original graph perfectly —
// that *is* the simulation argument of the proofs.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/subgraphs.hpp"
#include "model/simulator.hpp"
#include "reductions/oracles.hpp"
#include "reductions/reductions.hpp"

namespace referee {
namespace {

TEST(Oracles, AnswerExactly) {
  const Simulator sim;
  EXPECT_TRUE(sim.run_decision(gen::cycle(4), *make_square_oracle()));
  EXPECT_FALSE(sim.run_decision(gen::cycle(5), *make_square_oracle()));
  EXPECT_TRUE(sim.run_decision(gen::complete(3), *make_triangle_oracle()));
  EXPECT_FALSE(sim.run_decision(gen::hypercube(3), *make_triangle_oracle()));
  EXPECT_TRUE(sim.run_decision(gen::cycle(6), *make_diameter_oracle(3)));
  EXPECT_FALSE(sim.run_decision(gen::path(6), *make_diameter_oracle(3)));
}

TEST(Oracles, TranscriptDecodesToInputGraph) {
  Rng rng(401);
  const Graph g = gen::gnp(20, 0.2, rng);
  const Simulator sim;
  const auto oracle = make_square_oracle();
  const auto msgs = sim.run_local_phase(g, *oracle);
  EXPECT_EQ(AdjacencyListOracle::decode_graph(20, msgs), g);
}

TEST(SquareReduction, ReconstructsSquareFreeGraphs) {
  Rng rng(409);
  const Simulator sim;
  const SquareReduction delta(make_square_oracle());
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = gen::random_square_free(14, 500, rng);
    ASSERT_FALSE(has_square(g));
    EXPECT_EQ(sim.run_reconstruction(g, delta), g);
  }
}

TEST(SquareReduction, HandlesSparseAndDenseCorners) {
  const Simulator sim;
  const SquareReduction delta(make_square_oracle());
  EXPECT_EQ(sim.run_reconstruction(gen::empty(6), delta), gen::empty(6));
  EXPECT_EQ(sim.run_reconstruction(gen::path(8), delta), gen::path(8));
  EXPECT_EQ(sim.run_reconstruction(gen::star(7), delta), gen::star(7));
  // Triangles are square-free; they must survive.
  EXPECT_EQ(sim.run_reconstruction(gen::cycle(3), delta), gen::cycle(3));
  EXPECT_EQ(sim.run_reconstruction(gen::cycle(5), delta), gen::cycle(5));
}

TEST(SquareReduction, MessageSizeIsGammaAtTwoN) {
  // |Δ^l_n| = |Γ^l_{2n}| evaluated on a degree+1 view (the paper's k(2n)).
  const Graph g = gen::path(10);
  const SquareReduction delta(make_square_oracle());
  const auto oracle = make_square_oracle();
  const auto view = local_view_of(g, 5);
  auto lifted = view.neighbor_ids;
  lifted.push_back(view.id + 10);
  const auto direct =
      oracle->local(make_view(view.id, 20, lifted));
  EXPECT_EQ(delta.local(view).bit_size(), direct.bit_size());
}

TEST(DiameterReduction, ReconstructsArbitraryGraphs) {
  Rng rng(419);
  const Simulator sim;
  const DiameterReduction delta(make_diameter_oracle(3));
  for (const double p : {0.0, 0.15, 0.5, 1.0}) {
    const Graph g = gen::gnp(12, p, rng);
    EXPECT_EQ(sim.run_reconstruction(g, delta), g) << "p=" << p;
  }
}

TEST(DiameterReduction, WorksOnDisconnectedInputs) {
  Rng rng(421);
  const Simulator sim;
  const DiameterReduction delta(make_diameter_oracle(3));
  Graph g(10);
  g.add_edge(0, 1);
  g.add_edge(5, 6);
  EXPECT_EQ(sim.run_reconstruction(g, delta), g);
}

TEST(DiameterReduction, MessageIsAboutThreeGammas) {
  // 3·k(n+3) plus the framing overhead the paper ignores.
  const Graph g = gen::cycle(12);
  const DiameterReduction delta(make_diameter_oracle(3));
  const auto oracle = make_diameter_oracle(3);
  const auto view = local_view_of(g, 0);
  auto base = view.neighbor_ids;
  base.push_back(15);  // the universal gadget vertex
  const auto gamma_bits =
      oracle->local(make_view(view.id, 15, base)).bit_size();
  const auto delta_bits = delta.local(view).bit_size();
  EXPECT_GE(delta_bits, 3 * gamma_bits);
  EXPECT_LE(delta_bits, 3 * (gamma_bits + 64) + 64);
}

TEST(TriangleReduction, ReconstructsBipartiteGraphs) {
  Rng rng(431);
  const Simulator sim;
  const TriangleReduction delta(make_triangle_oracle());
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = gen::random_bipartite(7, 7, 0.4, rng);
    EXPECT_EQ(sim.run_reconstruction(g, delta), g);
  }
}

TEST(TriangleReduction, ReconstructsAnyTriangleFreeGraph) {
  // The proof needs triangle-freeness, not bipartiteness per se: C5 works.
  const Simulator sim;
  const TriangleReduction delta(make_triangle_oracle());
  EXPECT_EQ(sim.run_reconstruction(gen::cycle(5), delta), gen::cycle(5));
  EXPECT_EQ(sim.run_reconstruction(gen::hypercube(3), delta),
            gen::hypercube(3));
}

TEST(TriangleReduction, FailsHonestlyOutsideDomain) {
  // On a graph *with* a triangle, Δ over-reports edges (the gadget always
  // sees the pre-existing triangle). This documents the domain restriction
  // rather than hiding it.
  const Simulator sim;
  const TriangleReduction delta(make_triangle_oracle());
  const Graph g = gen::complete(3);
  const Graph h = sim.run_reconstruction(g, delta);
  EXPECT_EQ(h, gen::complete(3));  // here it happens to coincide...
  Graph g2 = gen::complete(3);
  g2.add_vertices(1);
  const Graph h2 = sim.run_reconstruction(g2, delta);
  EXPECT_NE(h2, g2);  // ...but with a 4th vertex it provably over-reports
}

TEST(Reductions, AllThreeAgreeOnCommonDomain) {
  // Square-free AND triangle-free AND arbitrary: a C6 is in every domain.
  const Simulator sim;
  const Graph g = gen::cycle(6);
  EXPECT_EQ(sim.run_reconstruction(g, SquareReduction(make_square_oracle())),
            g);
  EXPECT_EQ(
      sim.run_reconstruction(g, DiameterReduction(make_diameter_oracle(3))),
      g);
  EXPECT_EQ(
      sim.run_reconstruction(g, TriangleReduction(make_triangle_oracle())),
      g);
}

// ---------------------------------------------------------------------------
// Referee-phase encode work. The diameter referee's gadget messages are
// vertex-keyed and cached — 2n+1 encodes instead of the historic n(n−1).
// The square/triangle in-loop gadget views depend on the (s,t) pair itself
// (s's pendant gains the edge to t's pendant; the apex sees {s,t}), so their
// counts are exactly the irreducible per-pair encodes plus the cached
// vertex-keyed defaults — pinned here so a regression back to per-pair
// re-encoding of cacheable messages fails loudly.
// ---------------------------------------------------------------------------

std::uint64_t referee_encodes_for(const ReconstructionProtocol& delta,
                                  const Graph& g) {
  const Simulator sim;
  const auto messages = sim.run_local_phase(g, delta);
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  reset_reduction_referee_encodes();
  EXPECT_EQ(delta.reconstruct(n, messages), g);
  return reduction_referee_encodes();
}

TEST(Reductions, DiameterRefereeEncodesAreLinear) {
  for (const std::uint32_t n : {6u, 12u}) {
    Rng rng(0xD1A + n);
    const Graph g = gen::gnp(n, 0.3, rng);
    const DiameterReduction delta(make_diameter_oracle(3));
    EXPECT_EQ(referee_encodes_for(delta, g), 2u * n + 1u);
  }
}

TEST(Reductions, SquareRefereeEncodesArePendantDefaultsPlusPairs) {
  for (const std::uint32_t n : {6u, 10u}) {
    Rng rng(0x54 + n);
    const Graph g = gen::random_square_free(n, 60 * n, rng);
    const SquareReduction delta(make_square_oracle());
    EXPECT_EQ(referee_encodes_for(delta, g),
              n + 2u * (n * (n - 1u) / 2u));
  }
}

TEST(Reductions, TriangleRefereeEncodesAreOnePerPair) {
  const std::uint32_t n = 8;
  const Graph g = gen::cycle(n);
  const TriangleReduction delta(make_triangle_oracle());
  EXPECT_EQ(referee_encodes_for(delta, g), n * (n - 1u) / 2u);
}

TEST(Reductions, WarmArenaReconstructGrowsNothing) {
  Rng rng(0xA5E);
  const Graph g = gen::gnp(10, 0.3, rng);
  const Simulator sim;
  const DiameterReduction delta(make_diameter_oracle(3));
  const auto messages = sim.run_local_phase(g, delta);
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  DecodeArena arena;
  EXPECT_EQ(delta.reconstruct(n, messages, arena), g);  // warm-up
  const auto warm = arena.growth_events();
  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(delta.reconstruct(n, messages, arena), g);
  }
  EXPECT_EQ(arena.growth_events(), warm)
      << "warm reduction referee allocated decode scratch";
}

}  // namespace
}  // namespace referee
