#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "model/frugality.hpp"
#include "model/local_view.hpp"
#include "model/message.hpp"
#include "model/simulator.hpp"
#include "protocols/degeneracy_protocol.hpp"

namespace referee {
namespace {

TEST(LocalView, OneBasedConversion) {
  const Graph g = gen::path(3);  // 0-1-2
  const LocalView v = local_view_of(g, 1);
  EXPECT_EQ(v.id, 2u);
  EXPECT_EQ(v.n, 3u);
  EXPECT_EQ(v.neighbor_ids, (std::vector<NodeId>{1, 3}));
}

TEST(LocalView, AllViewsIndexedByIdMinusOne) {
  const Graph g = gen::cycle(5);
  const auto views = local_views(g);
  ASSERT_EQ(views.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(views[i].id, i + 1);
}

TEST(LocalView, PackMatchesPerVertexViews) {
  Rng rng(101);
  const Graph g = gen::gnp(40, 0.15, rng);
  const LocalViewPack pack(g);
  ASSERT_EQ(pack.n(), 40u);
  for (Vertex v = 0; v < 40; ++v) {
    const LocalViewRef ref = pack.view(v);
    const LocalView owned = local_view_of(g, v);
    EXPECT_EQ(ref.id, owned.id);
    EXPECT_EQ(ref.n, owned.n);
    EXPECT_TRUE(std::equal(ref.neighbor_ids.begin(), ref.neighbor_ids.end(),
                           owned.neighbor_ids.begin(),
                           owned.neighbor_ids.end()));
  }
}

TEST(LocalView, RefConvertsFromOwningViewAndMaterializes) {
  const LocalView owned = make_view(2, 10, {7, 3, 9});
  const LocalViewRef ref = owned;  // implicit — hot path compatibility
  EXPECT_EQ(ref.id, 2u);
  EXPECT_EQ(ref.degree(), 3u);
  EXPECT_EQ(ref.materialize(), owned);
}

TEST(LocalView, ShuffledEdgeInsertionStillYieldsSortedViews) {
  // Regression: views advertise "sorted ascending" — that must hold no
  // matter the order edges were inserted in.
  const std::vector<Edge> edges{{0, 4}, {0, 1}, {3, 0}, {0, 2},
                                {4, 1}, {2, 1}, {3, 2}};
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Edge> shuffled = edges;
    rng.shuffle(shuffled);
    Graph g(5);
    for (const Edge& e : shuffled) g.add_edge(e.u, e.v);
    const LocalViewPack pack(g);
    for (Vertex v = 0; v < 5; ++v) {
      const auto nb = pack.view(v).neighbor_ids;
      EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
      EXPECT_EQ(std::adjacent_find(nb.begin(), nb.end()), nb.end());
    }
  }
}

TEST(LocalView, InsertionOrderDoesNotChangeProtocolTranscripts) {
  // Same graph, two insertion orders: the local phase must produce
  // bit-identical messages (the wire format depends on canonical views).
  Rng rng(103);
  const Graph g = gen::random_k_degenerate(30, 2, rng);
  auto edges = g.edges();
  std::vector<Edge> reversed(edges.rbegin(), edges.rend());
  Graph g_fwd(30);
  for (const Edge& e : edges) g_fwd.add_edge(e.u, e.v);
  Graph g_rev(30);
  for (const Edge& e : reversed) g_rev.add_edge(e.u, e.v);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  const auto fwd = sim.run_local_phase(g_fwd, protocol);
  const auto rev = sim.run_local_phase(g_rev, protocol);
  ASSERT_EQ(fwd.size(), rev.size());
  for (std::size_t i = 0; i < fwd.size(); ++i) EXPECT_EQ(fwd[i], rev[i]);
}

TEST(LocalView, MakeViewNormalises) {
  const LocalView v = make_view(2, 10, {7, 3, 3, 9});
  EXPECT_EQ(v.neighbor_ids, (std::vector<NodeId>{3, 7, 9}));
  EXPECT_THROW(make_view(2, 10, {2}), CheckError);   // self
  EXPECT_THROW(make_view(2, 10, {11}), CheckError);  // out of range
  EXPECT_THROW(make_view(0, 10, {}), CheckError);    // bad id
}

TEST(Message, SealAndRead) {
  BitWriter w;
  w.write_bits(0xAB, 8);
  const Message m = Message::seal(std::move(w));
  EXPECT_EQ(m.bit_size(), 8u);
  BitReader r = m.reader();
  EXPECT_EQ(r.read_bits(8), 0xABu);
}

TEST(Message, FlipBitChangesPayload) {
  BitWriter w;
  w.write_bits(0, 8);
  Message m = Message::seal(std::move(w));
  m.flip_bit(3);
  BitReader r = m.reader();
  EXPECT_EQ(r.read_bits(8), 8u);
}

TEST(Message, TruncateShortens) {
  BitWriter w;
  w.write_bits(0xFF, 8);
  Message m = Message::seal(std::move(w));
  m.truncate(3);
  EXPECT_EQ(m.bit_size(), 3u);
  BitReader r = m.reader();
  EXPECT_EQ(r.read_bits(3), 7u);
  EXPECT_THROW(r.read_bits(1), DecodeError);
}

TEST(Frugality, AuditComputesMaxAndTotal) {
  BitWriter w1;
  w1.write_bits(0, 10);
  BitWriter w2;
  w2.write_bits(0, 30);
  std::vector<Message> msgs;
  msgs.push_back(Message::seal(std::move(w1)));
  msgs.push_back(Message::seal(std::move(w2)));
  const auto report = audit_frugality(1000, msgs);
  EXPECT_EQ(report.max_bits, 30u);
  EXPECT_EQ(report.total_bits, 40u);
  EXPECT_EQ(report.budget_bits, 10u);  // ceil(log2(1001))
  EXPECT_DOUBLE_EQ(report.constant(), 3.0);
  EXPECT_TRUE(report.is_frugal(3.0));
  EXPECT_FALSE(report.is_frugal(2.9));
}

TEST(Simulator, ParallelLocalPhaseMatchesSequential) {
  Rng rng(233);
  const Graph g = gen::random_k_degenerate(300, 3, rng);
  const DegeneracyReconstruction protocol(3);
  ThreadPool pool(4);
  const Simulator seq(nullptr);
  const Simulator par(&pool);
  const auto m1 = seq.run_local_phase(g, protocol);
  const auto m2 = par.run_local_phase(g, protocol);
  ASSERT_EQ(m1.size(), m2.size());
  for (std::size_t i = 0; i < m1.size(); ++i) EXPECT_EQ(m1[i], m2[i]);
}

TEST(Simulator, FaultInjectionDeterministic) {
  Rng rng(239);
  const Graph g = gen::random_tree(50, rng);
  const DegeneracyReconstruction protocol(1);
  const Simulator sim;
  auto m1 = sim.run_local_phase(g, protocol);
  auto m2 = m1;
  const FaultPlan plan{.bit_flip_chance = 0.5, .truncate_chance = 0.1,
                       .seed = 99};
  Simulator::inject_faults(m1, plan);
  Simulator::inject_faults(m2, plan);
  for (std::size_t i = 0; i < m1.size(); ++i) EXPECT_EQ(m1[i], m2[i]);
}

TEST(Simulator, InactivePlanIsNoop) {
  Rng rng(241);
  const Graph g = gen::random_tree(20, rng);
  const DegeneracyReconstruction protocol(1);
  const Simulator sim;
  auto msgs = sim.run_local_phase(g, protocol);
  const auto before = msgs;
  Simulator::inject_faults(msgs, FaultPlan{});
  for (std::size_t i = 0; i < msgs.size(); ++i) EXPECT_EQ(msgs[i], before[i]);
}

}  // namespace
}  // namespace referee
