// Binary edge-list format: golden round-trips against the text loader.
//
// The contract under test: pack → mmap → CsrGraph yields exactly the graph
// the text path (from_edge_list → Graph → CsrGraph) yields, for every
// input class the loaders accept — including duplicate edge records, both
// endpoint orders and empty graphs — and both paths reject the same
// malformed inputs (self-loops, out-of-range endpoints). Plus header
// validation: magic, version, size consistency.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace referee {
namespace {

std::string temp_path(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "referee_binfmt_tests";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

bool same_csr(const CsrGraph& a, const CsrGraph& b) {
  if (a.vertex_count() != b.vertex_count()) return false;
  if (a.edge_count() != b.edge_count()) return false;
  for (Vertex v = 0; v < a.vertex_count(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

TEST(GraphBinaryFormat, RoundTripMatchesTextLoaderOnGeneratedFamilies) {
  Rng rng(2026);
  const std::vector<Graph> graphs{
      gen::gnp(60, 0.08, rng), gen::random_tree(40, rng),
      gen::random_apollonian(30, rng), gen::complete(8), gen::path(2)};
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    const std::string text = to_edge_list(g);
    const CsrGraph via_text(from_edge_list(text));

    const std::string path = temp_path("roundtrip_" + std::to_string(i));
    const auto edges = g.edges();
    write_edge_file(path, g.vertex_count(), edges);
    const MmapEdgeSource source(path);
    EXPECT_EQ(source.vertex_count(), g.vertex_count());
    EXPECT_EQ(source.edge_count(), g.edge_count());
    const CsrGraph via_binary(source.vertex_count(), source.edges());
    EXPECT_TRUE(same_csr(via_text, via_binary)) << "graph " << i;
  }
}

TEST(GraphBinaryFormat, EmptyAndEdgelessGraphsRoundTrip) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{5}}) {
    const std::string path = temp_path("empty_" + std::to_string(n));
    write_edge_file(path, n, {});
    const MmapEdgeSource source(path);
    EXPECT_EQ(source.vertex_count(), n);
    EXPECT_EQ(source.edge_count(), 0u);
    const CsrGraph g(source.vertex_count(), source.edges());
    EXPECT_EQ(g.vertex_count(), n);
    EXPECT_EQ(g.edge_count(), 0u);
  }
}

TEST(GraphBinaryFormat, DuplicateRecordsAndEitherOrientationCanonicalize) {
  // The file may carry duplicates and swapped endpoints; CsrGraph
  // canonicalizes exactly like the Graph built edge-by-edge from text.
  const std::string path = temp_path("dups");
  std::vector<Edge> raw{{0, 1}, {1, 0}, {2, 1}, {0, 1}, {2, 3}, {2, 3}};
  write_edge_file(path, 4, raw);
  const MmapEdgeSource source(path);
  EXPECT_EQ(source.edge_count(), raw.size());  // records, not edges
  const CsrGraph g(source.vertex_count(), source.edges());
  EXPECT_EQ(g.edge_count(), 3u);
  const CsrGraph expect(from_edge_list("4 3\n0 1\n1 2\n2 3\n"));
  EXPECT_TRUE(same_csr(g, expect));
}

TEST(GraphBinaryFormat, SelfLoopsAreRejectedLikeTheTextPath) {
  // Both loaders funnel into the same adjacency contract: the text path
  // throws at Graph::add_edge, the writer throws before producing a file
  // a reader could disagree about.
  EXPECT_THROW(from_edge_list("3 1\n1 1\n"), CheckError);
  const std::vector<Edge> loop{Edge{}};  // default Edge is the (0,0) loop
  EXPECT_THROW(write_edge_file(temp_path("loop"), 3, loop), CheckError);
}

TEST(GraphBinaryFormat, OutOfRangeEndpointsAreRejectedEverywhere) {
  EXPECT_THROW(from_edge_list("2 1\n0 7\n"), CheckError);
  const std::vector<Edge> bad{{0, 7}};
  EXPECT_THROW(write_edge_file(temp_path("range"), 2, bad), CheckError);
  // ...and a foreign file that lies about n is caught at CSR build time.
  const std::string path = temp_path("foreign_range");
  write_edge_file(path, 8, bad);
  const MmapEdgeSource source(path);
  EXPECT_THROW(CsrGraph(2, source.edges()), CheckError);
}

TEST(GraphBinaryFormat, HeaderValidationRejectsForeignAndTruncatedFiles) {
  const std::string not_graph = temp_path("not_a_graph");
  {
    std::ofstream os(not_graph, std::ios::binary);
    os << "definitely not a refgraph header, but long enough to read";
  }
  EXPECT_THROW(MmapEdgeSource{not_graph}, CheckError);

  const std::string tiny = temp_path("tiny");
  {
    std::ofstream os(tiny, std::ios::binary);
    os << "short";
  }
  EXPECT_THROW(MmapEdgeSource{tiny}, CheckError);

  // A valid file whose edge section was cut off mid-record.
  const std::string truncated = temp_path("truncated");
  write_edge_file(truncated, 4, std::vector<Edge>{{0, 1}, {2, 3}});
  std::filesystem::resize_file(truncated, kEdgeFileHeaderBytes + 12);
  EXPECT_THROW(MmapEdgeSource{truncated}, CheckError);

  EXPECT_THROW(MmapEdgeSource{temp_path("does_not_exist")}, CheckError);

  // A crafted header whose record count makes m * sizeof(Edge) wrap to a
  // small value must be rejected, not handed out as a 2^61-record span.
  const std::string overflow = temp_path("overflow");
  write_edge_file(overflow, 4, {});
  {
    std::fstream os(overflow,
                    std::ios::binary | std::ios::in | std::ios::out);
    os.seekp(24);  // the m field
    const std::uint64_t huge = 1ull << 61;  // 2^61 * 8 wraps to 0
    os.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_THROW(MmapEdgeSource{overflow}, CheckError);
}

TEST(ChunkedEdgeSource, YieldsBoundedChunksAndRewinds) {
  const std::string path = temp_path("chunked_small");
  Rng rng(77);
  const Graph g = gen::gnp(50, 0.2, rng);
  const auto edges = g.edges();
  write_edge_file(path, g.vertex_count(), edges);

  constexpr std::size_t kChunk = 7;  // forces many partial reads
  ChunkedEdgeSource source(path, kChunk);
  EXPECT_EQ(source.vertex_count(), g.vertex_count());
  EXPECT_EQ(source.edge_count(), edges.size());
  for (int pass = 0; pass < 2; ++pass) {  // rewind restarts cleanly
    std::vector<Edge> streamed;
    std::span<const Edge> chunk;
    while (!(chunk = source.next_chunk()).empty()) {
      EXPECT_LE(chunk.size(), kChunk);  // the bounded-buffer contract
      streamed.insert(streamed.end(), chunk.begin(), chunk.end());
    }
    EXPECT_TRUE(source.next_chunk().empty());  // exhausted stays exhausted
    ASSERT_EQ(streamed.size(), edges.size()) << "pass " << pass;
    EXPECT_TRUE(std::equal(streamed.begin(), streamed.end(), edges.begin(),
                           [](const Edge& a, const Edge& b) {
                             return a.u == b.u && a.v == b.v;
                           }));
    source.rewind();
  }
}

TEST(ChunkedEdgeSource, RejectsTheSameBadHeadersAsMmap) {
  const std::string tiny = temp_path("chunked_tiny");
  {
    std::ofstream os(tiny, std::ios::binary);
    os << "short";
  }
  EXPECT_THROW(ChunkedEdgeSource{tiny}, CheckError);
  const std::string truncated = temp_path("chunked_truncated");
  write_edge_file(truncated, 4, std::vector<Edge>{{0, 1}, {2, 3}});
  std::filesystem::resize_file(truncated, kEdgeFileHeaderBytes + 12);
  EXPECT_THROW(ChunkedEdgeSource{truncated}, CheckError);
  EXPECT_THROW(ChunkedEdgeSource{temp_path("chunked_missing")}, CheckError);
}

TEST(ChunkedEdgeSource, MillionNodeCsrBuildMatchesMmapPath) {
  // The out-of-core acceptance pin: a 2^20-node edge file streamed through
  // a bounded buffer builds a CsrGraph identical to the mmap'd build,
  // with peak buffer = chunk_edges records, not the 9+ MiB edge section.
  const std::string path = temp_path("chunked_million");
  constexpr std::size_t kN = 1u << 20;
  std::vector<Edge> edges;
  edges.reserve(kN + kN / 64);
  for (Vertex v = 0; v + 1 < kN; ++v) edges.emplace_back(v, v + 1);
  for (Vertex v = 0; v + 64 < kN; v += 64) edges.emplace_back(v, v + 64);
  write_edge_file(path, kN, edges);

  const MmapEdgeSource mapped(path);
  const CsrGraph via_mmap(mapped.vertex_count(), mapped.edges());
  ChunkedEdgeSource chunked(path, std::size_t{1} << 12);
  const CsrGraph via_chunks(chunked);
  EXPECT_TRUE(same_csr(via_mmap, via_chunks));

  // The EdgeSource-driven build agrees on the mmap side too.
  MmapEdgeSource remapped(path);
  const CsrGraph via_source(remapped);
  EXPECT_TRUE(same_csr(via_mmap, via_source));
}

TEST(ChunkedEdgeSource, FactoryPicksSourceByMmapBudget) {
  const std::string path = temp_path("factory");
  Rng rng(11);
  const Graph g = gen::gnp(40, 0.2, rng);
  const auto edges = g.edges();
  write_edge_file(path, g.vertex_count(), edges);
  const CsrGraph expect(g);

  // A generous budget mmaps; a budget smaller than the file streams.
  const auto big = open_edge_source(path, std::size_t{1} << 30);
  EXPECT_NE(dynamic_cast<MmapEdgeSource*>(big.get()), nullptr);
  const auto small = open_edge_source(path, 64);
  EXPECT_NE(dynamic_cast<ChunkedEdgeSource*>(small.get()), nullptr);
  const CsrGraph via_big(*big);
  const CsrGraph via_small(*small);
  EXPECT_TRUE(same_csr(via_big, expect));
  EXPECT_TRUE(same_csr(via_small, expect));
}

TEST(GraphBinaryFormat, MmapSourceMoves) {
  const std::string path = temp_path("moves");
  write_edge_file(path, 3, std::vector<Edge>{{0, 1}, {1, 2}});
  MmapEdgeSource a(path);
  MmapEdgeSource b(std::move(a));
  EXPECT_EQ(b.vertex_count(), 3u);
  EXPECT_EQ(b.edges().size(), 2u);
  MmapEdgeSource c(path);
  c = std::move(b);
  EXPECT_EQ(c.vertex_count(), 3u);
  const CsrGraph g(c.vertex_count(), c.edges());
  EXPECT_EQ(g.edge_count(), 2u);
}

}  // namespace
}  // namespace referee
