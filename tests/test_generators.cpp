#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "graph/subgraphs.hpp"

namespace referee {
namespace {

TEST(Generators, PathCycleCompleteStar) {
  EXPECT_EQ(gen::path(5).edge_count(), 4u);
  EXPECT_EQ(gen::cycle(5).edge_count(), 5u);
  EXPECT_EQ(gen::complete(6).edge_count(), 15u);
  EXPECT_EQ(gen::star(7).edge_count(), 7u);
  EXPECT_EQ(gen::complete_bipartite(3, 4).edge_count(), 12u);
}

TEST(Generators, GridAndTorus) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.vertex_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 2u * 4);  // 17
  const Graph t = gen::torus(3, 4);
  EXPECT_EQ(t.edge_count(), 24u);  // 2 * r * c
  for (Vertex v = 0; v < t.vertex_count(); ++v) EXPECT_EQ(t.degree(v), 4u);
}

TEST(Generators, Hypercube) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.vertex_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);  // d * 2^{d-1}
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, BinaryTreeIsTree) {
  const Graph g = gen::binary_tree(31);
  EXPECT_EQ(g.edge_count(), 30u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(girth(g).has_value());
}

TEST(Generators, Caterpillar) {
  const Graph g = gen::caterpillar(5, 3);
  EXPECT_EQ(g.vertex_count(), 20u);
  EXPECT_EQ(g.edge_count(), 19u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, FatTreeStructure) {
  const unsigned k = 4;
  const Graph g = gen::fat_tree(k);
  // (k/2)^2 cores + k*k/2 aggs + k*k/2 edges = 4 + 8 + 8 = 20 switches.
  EXPECT_EQ(g.vertex_count(), 20u);
  // Each pod: (k/2)^2 agg-core + (k/2)^2 agg-edge = 4 + 4; times k pods.
  EXPECT_EQ(g.edge_count(), 32u);
  EXPECT_TRUE(is_connected(g));
  const Graph with_hosts = gen::fat_tree(k, /*with_hosts=*/true);
  EXPECT_EQ(with_hosts.vertex_count(), 20u + 16u);  // + k^3/4 hosts
  EXPECT_TRUE(is_connected(with_hosts));
}

TEST(Generators, FatTreeOddArityRejected) {
  Rng rng(1);
  EXPECT_THROW(gen::fat_tree(3), CheckError);
}

TEST(Generators, GnpEdgeCountConcentrates) {
  Rng rng(73);
  const std::size_t n = 400;
  const double p = 0.05;
  const Graph g = gen::gnp(n, p, rng);
  const double expect = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expect, 0.15 * expect);
}

TEST(Generators, GnpExtremes) {
  Rng rng(79);
  EXPECT_EQ(gen::gnp(10, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(gen::gnp(10, 1.0, rng).edge_count(), 45u);
}

TEST(Generators, GnpDeterministicInSeed) {
  Rng a(83);
  Rng b(83);
  EXPECT_EQ(gen::gnp(50, 0.2, a), gen::gnp(50, 0.2, b));
}

TEST(Generators, GnmExactCount) {
  Rng rng(89);
  const Graph g = gen::gnm(30, 100, rng);
  EXPECT_EQ(g.edge_count(), 100u);
}

TEST(Generators, ConnectedGnpIsConnected) {
  Rng rng(97);
  for (int trial = 0; trial < 10; ++trial) {
    EXPECT_TRUE(is_connected(gen::connected_gnp(60, 0.01, rng)));
  }
}

TEST(Generators, RandomTreeIsUniformlyATree) {
  Rng rng(101);
  for (const std::size_t n : {1u, 2u, 3u, 10u, 100u}) {
    const Graph g = gen::random_tree(n, rng);
    EXPECT_EQ(g.edge_count(), n == 0 ? 0 : n - 1);
    EXPECT_TRUE(is_connected(g));
    EXPECT_FALSE(girth(g).has_value());
  }
}

TEST(Generators, RandomForestAcyclic) {
  Rng rng(103);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::random_forest(50, 0.3, rng);
    EXPECT_FALSE(girth(g).has_value());
    EXPECT_LE(degeneracy(g).degeneracy, 1u);
  }
}

TEST(Generators, RandomBipartiteIsBipartite) {
  Rng rng(107);
  const Graph g = gen::random_bipartite(20, 25, 0.3, rng);
  EXPECT_TRUE(is_bipartite(g));
}

class KDegenerate : public ::testing::TestWithParam<unsigned> {};

TEST_P(KDegenerate, RespectsBound) {
  const unsigned k = GetParam();
  Rng rng(109 + k);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gen::random_k_degenerate(60, k, rng);
    EXPECT_LE(degeneracy(g).degeneracy, k);
  }
}

TEST_P(KDegenerate, ExactlyKHitsBound) {
  const unsigned k = GetParam();
  Rng rng(127 + k);
  const Graph g = gen::random_k_degenerate(60, k, rng, /*exactly_k=*/true);
  EXPECT_EQ(degeneracy(g).degeneracy, k);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KDegenerate, ::testing::Values(1, 2, 3, 5));

TEST(Generators, KTreeDegeneracyIsK) {
  Rng rng(131);
  for (unsigned k : {1u, 2u, 4u}) {
    const Graph g = gen::random_k_tree(40, k, rng);
    EXPECT_EQ(degeneracy(g).degeneracy, k);
    // k-trees have exactly k*(k+1)/2 + (n - k - 1)*k edges.
    EXPECT_EQ(g.edge_count(), k * (k + 1) / 2 + (40 - k - 1) * k);
    EXPECT_LE(treewidth_upper_bound_min_degree(g), k);
  }
}

TEST(Generators, PartialKTreeWithinBound) {
  Rng rng(137);
  const Graph g = gen::random_partial_k_tree(40, 3, 0.7, rng);
  EXPECT_LE(degeneracy(g).degeneracy, 3u);
}

TEST(Generators, ApollonianIsPlanarAndThreeDegenerate) {
  Rng rng(139);
  const Graph g = gen::random_apollonian(50, rng);
  EXPECT_EQ(g.edge_count(), 3u * 50 - 6);  // maximal planar
  EXPECT_TRUE(satisfies_euler_planar_bound(g));
  EXPECT_EQ(degeneracy(g).degeneracy, 3u);
}

TEST(Generators, RegularDegrees) {
  Rng rng(149);
  const Graph g = gen::random_regular(20, 3, rng);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(Generators, RegularRejectsOddProduct) {
  Rng rng(151);
  EXPECT_THROW(gen::random_regular(5, 3, rng), CheckError);
}

TEST(Generators, SquareFreeHasNoSquare) {
  Rng rng(157);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gen::random_square_free(40, 2000, rng);
    EXPECT_FALSE(has_square(g));
    EXPECT_GT(g.edge_count(), 40u);  // well past a forest: Θ(n^{3/2}) regime
  }
}

TEST(Generators, ShuffleLabelsPreservesDegreeMultiset) {
  Rng rng(163);
  const Graph g = gen::grid(4, 4);
  const Graph h = gen::shuffle_labels(g, rng);
  std::vector<std::size_t> dg;
  std::vector<std::size_t> dh;
  for (Vertex v = 0; v < 16; ++v) {
    dg.push_back(g.degree(v));
    dh.push_back(h.degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
  EXPECT_EQ(g.edge_count(), h.edge_count());
}

}  // namespace
}  // namespace referee
