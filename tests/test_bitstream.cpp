// Bit-level serialisation: the substrate every protocol message rides on.
#include <gtest/gtest.h>

#include "support/bitstream.hpp"
#include "support/random.hpp"
#include "support/varint.hpp"

namespace referee {
namespace {

TEST(BitStream, EmptyWriter) {
  BitWriter w;
  EXPECT_EQ(w.bit_size(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitStream, SingleBitRoundTrip) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  w.write_bit(true);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_TRUE(r.read_bit());
  EXPECT_FALSE(r.read_bit());
  EXPECT_TRUE(r.read_bit());
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, UnalignedFieldsRoundTrip) {
  BitWriter w;
  w.write_bits(0b101, 3);
  w.write_bits(0xDEAD, 16);
  w.write_bits(1, 1);
  w.write_bits(0x123456789ABCDEFull, 60);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_bits(3), 0b101u);
  EXPECT_EQ(r.read_bits(16), 0xDEADu);
  EXPECT_EQ(r.read_bits(1), 1u);
  EXPECT_EQ(r.read_bits(60), 0x123456789ABCDEFull);
}

TEST(BitStream, ZeroWidthFieldIsNoop) {
  BitWriter w;
  w.write_bits(0, 0);
  EXPECT_EQ(w.bit_size(), 0u);
}

TEST(BitStream, RejectsOverwideValue) {
  BitWriter w;
  EXPECT_THROW(w.write_bits(4, 2), CheckError);
}

TEST(BitStream, ReadPastEndThrowsDecodeError) {
  BitWriter w;
  w.write_bits(3, 2);
  BitReader r(w.bytes(), w.bit_size());
  r.read_bits(2);
  EXPECT_THROW(r.read_bits(1), DecodeError);
}

TEST(BitStream, Full64BitValues) {
  BitWriter w;
  w.write_bits(~std::uint64_t{0}, 64);
  w.write_bits(0, 64);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read_bits(64), ~std::uint64_t{0});
  EXPECT_EQ(r.read_bits(64), 0u);
}

TEST(BitStream, RandomFieldsFuzz) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, int>> fields;
    for (int i = 0; i < 100; ++i) {
      const int width = 1 + static_cast<int>(rng.below(64));
      const std::uint64_t value =
          width == 64 ? rng.next() : rng.next() & ((std::uint64_t{1} << width) - 1);
      fields.emplace_back(value, width);
      w.write_bits(value, width);
    }
    BitReader r(w.bytes(), w.bit_size());
    for (const auto& [value, width] : fields) {
      EXPECT_EQ(r.read_bits(width), value);
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Varint, EliasGammaKnownValues) {
  // gamma(1) = "1", gamma(2) = "010", gamma(3) = "011" (MSB-first payload).
  BitWriter w;
  write_elias_gamma(w, 1);
  EXPECT_EQ(w.bit_size(), 1u);
  write_elias_gamma(w, 2);
  EXPECT_EQ(w.bit_size(), 4u);
}

TEST(Varint, GammaBitsFormula) {
  for (std::uint64_t v : {1ull, 2ull, 3ull, 7ull, 8ull, 1000ull, 1ull << 40}) {
    BitWriter w;
    write_elias_gamma(w, v);
    EXPECT_EQ(static_cast<int>(w.bit_size()), elias_gamma_bits(v)) << v;
  }
}

TEST(Varint, DeltaBitsFormula) {
  for (std::uint64_t v : {1ull, 2ull, 3ull, 7ull, 8ull, 1000ull, 1ull << 40}) {
    BitWriter w;
    write_elias_delta(w, v);
    EXPECT_EQ(static_cast<int>(w.bit_size()), elias_delta_bits(v)) << v;
  }
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, GammaDeltaZigzag) {
  const std::uint64_t v = GetParam();
  BitWriter w;
  write_elias_gamma(w, v + 1);
  write_elias_delta(w, v + 1);
  write_gamma0(w, v);
  write_delta0(w, v);
  write_signed_delta(w, static_cast<std::int64_t>(v));
  write_signed_delta(w, -static_cast<std::int64_t>(v));
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(read_elias_gamma(r), v + 1);
  EXPECT_EQ(read_elias_delta(r), v + 1);
  EXPECT_EQ(read_gamma0(r), v);
  EXPECT_EQ(read_delta0(r), v);
  EXPECT_EQ(read_signed_delta(r), static_cast<std::int64_t>(v));
  EXPECT_EQ(read_signed_delta(r), -static_cast<std::int64_t>(v));
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Sweep, VarintRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 5, 63, 64, 127, 128,
                                           1023, 1ull << 20, (1ull << 40) + 7,
                                           (1ull << 62)));

TEST(Varint, DeltaIsShorterThanGammaForLargeValues) {
  EXPECT_LT(elias_delta_bits(1ull << 40), elias_gamma_bits(1ull << 40));
}

TEST(Varint, ZigzagMapping) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_decode(zigzag_encode(INT64_MIN)), INT64_MIN);
  EXPECT_EQ(zigzag_decode(zigzag_encode(INT64_MAX)), INT64_MAX);
}

}  // namespace
}  // namespace referee
