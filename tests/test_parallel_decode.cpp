// Bit-identity matrix for the intra-cell parallel decode paths.
//
// The contract under test: DegeneracyReconstruction::reconstruct (parallel
// parse + frontier-batched peel + lane-batched Newton) produces bit-identical
// graphs and bit-identical typed faults to reconstruct_serial, for every
// generator family, every cell-pool size, and every transcript — clean or
// corrupted. The same holds for the parallel-parse referees (generalized /
// bounded-degree / forest), and a whole campaign's JSON must not change by a
// byte when cells borrow an intra-cell pool.
#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/backend.hpp"
#include "campaign/plan.hpp"
#include "graph/generators.hpp"
#include "model/campaign.hpp"
#include "model/local_view.hpp"
#include "model/message.hpp"
#include "model/simulator.hpp"
#include "support/bitstream.hpp"
#include "numth/newton.hpp"
#include "numth/power_sums.hpp"
#include "protocols/bounded_degree.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/forest_protocol.hpp"
#include "protocols/generalized_degeneracy.hpp"
#include "support/simd.hpp"
#include "support/thread_pool.hpp"

namespace referee {
namespace {

// Decode outcome flattened for comparison: either a graph or a typed fault
// plus its full what() message. The campaign's loud detail is
// decode_fault_name(fault), so comparing the enum pins the reported detail;
// comparing the message additionally pins WHICH check tripped, so an
// accept-vs-reject or wrong-throw-site divergence between the serial and
// batched paths cannot hide behind a shared enum value (nearly every
// decode-path fault is kInconsistent).
struct Outcome {
  std::optional<Graph> graph;
  std::optional<DecodeFault> fault;
  std::string message;

  bool operator==(const Outcome& o) const {
    return graph == o.graph && fault == o.fault && message == o.message;
  }
};

Outcome decode_with(const ReconstructionProtocol& protocol, std::uint32_t n,
                    std::span<const Message> messages, ThreadPool* pool,
                    bool serial_peel = false) {
  CellPoolScope scope(pool);
  DecodeArena arena;
  try {
    if (serial_peel) {
      const auto* deg =
          dynamic_cast<const DegeneracyReconstruction*>(&protocol);
      return Outcome{deg->reconstruct_serial(n, messages, arena), {}, {}};
    }
    return Outcome{protocol.reconstruct(n, messages, arena), {}, {}};
  } catch (const DecodeError& e) {
    return Outcome{{}, e.fault(), e.what()};
  }
}

std::string describe(const Outcome& o) {
  if (o.graph) return "graph(" + std::to_string(o.graph->edge_count()) + ")";
  return std::string("loud:") + decode_fault_name(*o.fault) + " (" +
         o.message + ")";
}

// Every pool size of the matrix: no pool installed, and shared intra-cell
// pools of 1, 2 and 8 workers.
void expect_matrix_identical(const ReconstructionProtocol& protocol,
                             std::uint32_t n,
                             std::span<const Message> messages,
                             const std::string& label,
                             bool has_serial_peel = false) {
  const Outcome base = decode_with(protocol, n, messages, nullptr);
  if (has_serial_peel) {
    const Outcome serial =
        decode_with(protocol, n, messages, nullptr, /*serial_peel=*/true);
    EXPECT_EQ(base, serial) << label << ": frontier-batched "
                            << describe(base) << " vs serial peel "
                            << describe(serial);
  }
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const Outcome pooled = decode_with(protocol, n, messages, &pool);
    EXPECT_EQ(base, pooled)
        << label << ": " << threads << "-thread pool " << describe(pooled)
        << " vs unpooled " << describe(base);
  }
}

struct FamilyCase {
  std::string label;
  unsigned k;
  std::function<Graph(Rng&)> make;
};

class ParallelDecodeSweep : public ::testing::TestWithParam<FamilyCase> {};

// Clean transcripts: the batched decode must reproduce the input graph and
// match the serial peel across every pool size.
TEST_P(ParallelDecodeSweep, CleanTranscriptBitIdentity) {
  const auto& fc = GetParam();
  Rng rng(811);
  const Simulator sim;
  const DegeneracyReconstruction protocol(fc.k);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = fc.make(rng);
    const auto n = static_cast<std::uint32_t>(g.vertex_count());
    const auto msgs = sim.run_local_phase(g, protocol);
    const Outcome want{g, {}};
    EXPECT_EQ(decode_with(protocol, n, msgs, nullptr), want) << fc.label;
    expect_matrix_identical(protocol, n, msgs, fc.label,
                            /*has_serial_peel=*/true);
  }
}

// Correlated-fault sweep: under heavy bit flips and truncations the batched
// decode raises the same typed DecodeFault as the serial peel (and the same
// graph on the don't-care flips that decode cleanly), at every pool size.
TEST_P(ParallelDecodeSweep, CorrelatedFaultBitIdentity) {
  const auto& fc = GetParam();
  Rng rng(823);
  const Simulator sim;
  const DegeneracyReconstruction protocol(fc.k);
  const Graph g = fc.make(rng);
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto clean = sim.run_local_phase(g, protocol);
  for (int trial = 0; trial < 8; ++trial) {
    auto msgs = clean;
    const FaultPlan plan{
        .bit_flip_chance = (trial % 2 == 0) ? 0.8 : 0.0,
        .truncate_chance = (trial % 2 == 0) ? 0.0 : 0.5,
        .seed = 5000u + static_cast<std::uint64_t>(trial)};
    Simulator::inject_faults(msgs, plan);
    expect_matrix_identical(protocol, n, msgs,
                            fc.label + "/fault" + std::to_string(trial),
                            /*has_serial_peel=*/true);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ParallelDecodeSweep,
    ::testing::Values(
        FamilyCase{"empty", 1, [](Rng&) { return gen::empty(40); }},
        FamilyCase{"path", 1, [](Rng&) { return gen::path(60); }},
        FamilyCase{"cycle", 2, [](Rng&) { return gen::cycle(48); }},
        FamilyCase{"star", 1, [](Rng&) { return gen::star(40); }},
        FamilyCase{"complete", 5, [](Rng&) { return gen::complete(6); }},
        FamilyCase{"complete-bipartite", 3,
                   [](Rng&) { return gen::complete_bipartite(3, 20); }},
        FamilyCase{"grid", 2, [](Rng&) { return gen::grid(7, 8); }},
        FamilyCase{"torus", 4, [](Rng&) { return gen::torus(6, 7); }},
        FamilyCase{"hypercube", 4, [](Rng&) { return gen::hypercube(4); }},
        FamilyCase{"binary-tree", 1,
                   [](Rng&) { return gen::binary_tree(50); }},
        FamilyCase{"caterpillar", 1,
                   [](Rng&) { return gen::caterpillar(20, 3); }},
        FamilyCase{"random-tree", 1,
                   [](Rng& r) { return gen::random_tree(60, r); }},
        FamilyCase{"random-forest", 1,
                   [](Rng& r) { return gen::random_forest(60, 0.2, r); }},
        FamilyCase{"2-degenerate", 2,
                   [](Rng& r) { return gen::random_k_degenerate(70, 2, r); }},
        FamilyCase{"3-degenerate-exact", 3,
                   [](Rng& r) {
                     return gen::random_k_degenerate(60, 3, r, true);
                   }},
        FamilyCase{"4-tree", 4,
                   [](Rng& r) { return gen::random_k_tree(40, 4, r); }},
        FamilyCase{"apollonian", 3,
                   [](Rng& r) { return gen::random_apollonian(50, r); }}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// A cell large enough that every frontier round actually fans out over the
// pool and the lane batcher sees full groups.
TEST(ParallelDecode, LargeCellBitIdentity) {
  Rng rng(829);
  const Simulator sim;
  const DegeneracyReconstruction protocol(3);
  const Graph g = gen::random_k_degenerate(4000, 3, rng, true);
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto msgs = sim.run_local_phase(g, protocol);
  EXPECT_EQ(decode_with(protocol, n, msgs, nullptr), (Outcome{g, {}}));
  expect_matrix_identical(protocol, n, msgs, "kdeg-4000",
                          /*has_serial_peel=*/true);
}

// Out-of-class input: the peel must stall identically (not fabricate or
// change fault type) whichever path runs.
TEST(ParallelDecode, StallIsBitIdentical) {
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  const Graph g = gen::complete(6);  // degeneracy 5 > k = 2
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto msgs = sim.run_local_phase(g, protocol);
  const Outcome base = decode_with(protocol, n, msgs, nullptr);
  ASSERT_TRUE(base.fault.has_value());
  EXPECT_EQ(*base.fault, DecodeFault::kStalled);
  expect_matrix_identical(protocol, n, msgs, "K6-stall",
                          /*has_serial_peel=*/true);
}

// Loudness determinism: with several faulty messages the raised fault is the
// lowest-index one, regardless of the pool size or scheduling.
TEST(ParallelDecode, LowestIndexParseFaultWins) {
  Rng rng(839);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  const Graph g = gen::random_k_degenerate(60, 2, rng);
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  auto msgs = sim.run_local_phase(g, protocol);
  // Message 7 truncated (kTruncated mid-parse), message 40 truncated to
  // empty as well; the raised fault must always be message 7's.
  msgs[40].truncate(1);
  msgs[7].truncate(msgs[7].bit_size() / 3);
  const Outcome base = decode_with(protocol, n, msgs, nullptr);
  ASSERT_TRUE(base.fault.has_value());
  expect_matrix_identical(protocol, n, msgs, "two-faults",
                          /*has_serial_peel=*/true);
}

// Hand-encode a transcript where each vertex claims an arbitrary (possibly
// mutually inconsistent) neighbour list — the adversarial shapes the random
// fault sweeps never generate.
std::vector<Message> encode_claims(const DegeneracyReconstruction& protocol,
                                   std::uint32_t n,
                                   const std::vector<std::vector<NodeId>>&
                                       claims) {
  std::vector<Message> msgs;
  for (std::uint32_t i = 0; i < n; ++i) {
    BitWriter w;
    protocol.encode(LocalViewRef(i + 1, n, claims[i]), w);
    msgs.push_back(Message::seal(std::move(w)));
  }
  return msgs;
}

// Soundness: an asymmetric frontier-internal claim — x lists w, but w (a
// member of the same peel round, applied later) never lists x — must stay
// loud. The serial peel rejects it at the victim's own decode once the
// fabricated edge has been subtracted from its sums; the batched path must
// reject identically (same typed fault, same message), never absorb the
// fabricated edge into an accepted graph.
TEST(ParallelDecode, AsymmetricFrontierClaimStaysLoud) {
  const DegeneracyReconstruction protocol(1);
  const std::uint32_t n = 3;
  // 1 -> {2}, 2 -> {3}, 3 -> {2}: every vertex is in the first frontier, 1
  // claims 2, and 2 claims only 3.
  const auto msgs =
      encode_claims(protocol, n, {{2}, {3}, {2}});
  const Outcome serial =
      decode_with(protocol, n, msgs, nullptr, /*serial_peel=*/true);
  ASSERT_TRUE(serial.fault.has_value()) << describe(serial);
  EXPECT_EQ(*serial.fault, DecodeFault::kInconsistent);
  expect_matrix_identical(protocol, n, msgs, "asymmetric-claim",
                          /*has_serial_peel=*/true);
}

// The mirrored orientation: the higher-id member claims an earlier (already
// applied, hence dead) member that never reciprocated. Exercises the
// dead-neighbour arm of the reciprocity check.
TEST(ParallelDecode, AsymmetricClaimOnDeadFrontierMemberStaysLoud) {
  const DegeneracyReconstruction protocol(1);
  const std::uint32_t n = 3;
  // 1 -> {}, 2 -> {1}, 3 -> {}: 2 claims 1 after 1 has been applied and
  // pruned without ever claiming 2.
  const auto msgs = encode_claims(protocol, n, {{}, {1}, {}});
  const Outcome serial =
      decode_with(protocol, n, msgs, nullptr, /*serial_peel=*/true);
  ASSERT_TRUE(serial.fault.has_value()) << describe(serial);
  expect_matrix_identical(protocol, n, msgs, "asymmetric-dead-claim",
                          /*has_serial_peel=*/true);
}

// The parallel-parse referees (no frontier machinery) get the same matrix:
// same graph on clean transcripts, same typed fault on corrupted ones.
template <typename Protocol>
void parse_matrix(const Protocol& protocol, const Graph& g,
                  const std::string& label) {
  const Simulator sim;
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto clean = sim.run_local_phase(g, protocol);
  EXPECT_EQ(decode_with(protocol, n, clean, nullptr), (Outcome{g, {}}))
      << label;
  expect_matrix_identical(protocol, n, clean, label);
  for (int trial = 0; trial < 6; ++trial) {
    auto msgs = clean;
    const FaultPlan plan{.bit_flip_chance = 0.7, .truncate_chance = 0.2,
                         .seed = 9000u + static_cast<std::uint64_t>(trial)};
    Simulator::inject_faults(msgs, plan);
    expect_matrix_identical(protocol, n, msgs,
                            label + "/fault" + std::to_string(trial));
  }
}

TEST(ParallelDecode, GeneralizedDegeneracyParseMatrix) {
  Rng rng(853);
  parse_matrix(GeneralizedDegeneracyReconstruction(2),
               gen::random_k_degenerate(50, 2, rng), "generalized");
}

TEST(ParallelDecode, BoundedDegreeParseMatrix) {
  Rng rng(857);
  parse_matrix(BoundedDegreeReconstruction(4),
               gen::random_regular(40, 4, rng), "bounded-degree");
}

TEST(ParallelDecode, ForestParseMatrix) {
  Rng rng(859);
  parse_matrix(ForestReconstruction(), gen::random_forest(60, 0.15, rng),
               "forest");
}

// Lane-batched Newton: the batched conversion equals the exact BigInt path
// on genuine power sums, lane for lane, and the scalar kernel equals the
// dispatched one (the AVX2 path where the CPU has it).
TEST(ParallelDecode, LaneBatchMatchesExactPath) {
  Rng rng(863);
  DecodeArena arena;
  const std::uint32_t n = 1u << 20;
  for (const unsigned d : {1u, 2u, 3u, 4u}) {
    const std::size_t width = newton_batch_width(d, n);
    ASSERT_GT(width, 0u) << "d=" << d;
    std::vector<std::vector<BigUInt>> sums(simd::kNewtonLanes);
    std::vector<std::vector<BigInt>> batched(simd::kNewtonLanes);
    std::vector<NewtonLane> lanes;
    for (std::size_t l = 0; l < simd::kNewtonLanes; ++l) {
      std::vector<NodeId> ids;
      while (ids.size() < d) {
        const auto id = static_cast<NodeId>(rng.between(1, n));
        if (std::find(ids.begin(), ids.end(), id) == ids.end())
          ids.push_back(id);
      }
      power_sums_into(ids, d, arena, sums[l]);
      ASSERT_TRUE(newton_batch_fits(
          std::span<const BigUInt>(sums[l].data(), d), d, n));
      batched[l].resize(d);
      lanes.push_back(NewtonLane{
          std::span<const BigUInt>(sums[l].data(), d),
          std::span<BigInt>(batched[l].data(), d)});
    }
    const unsigned faults =
        elementary_from_power_sums_lanes(lanes, d, width, arena);
    EXPECT_EQ(faults, 0u);
    for (std::size_t l = 0; l < simd::kNewtonLanes; ++l) {
      std::vector<BigInt> exact;
      elementary_from_power_sums_into(
          std::span<const BigUInt>(sums[l].data(), d), arena, exact);
      for (unsigned i = 0; i < d; ++i) {
        EXPECT_EQ(batched[l][i], exact[i]) << "d=" << d << " lane=" << l;
      }
    }
  }
}

// Kernel-level pin: the dispatched newton_batch and the scalar reference
// produce the same limbs and the same fault mask on the same SoA input,
// including a lane with deliberately corrupt (inexact-division) sums.
TEST(ParallelDecode, NewtonBatchKernelScalarParity) {
  Rng rng(877);
  const unsigned d = 3;
  const std::size_t width = 3;
  std::vector<std::uint64_t> sums(d * width * simd::kNewtonLanes);
  for (auto& limb : sums) limb = rng.next();
  // Keep values small-magnitude positive so most lanes run to completion:
  // zero the top limbs, then let lane 2 keep huge sums (likely fault).
  for (unsigned v = 0; v < d; ++v) {
    for (std::size_t w = 1; w < width; ++w) {
      for (std::size_t l = 0; l < simd::kNewtonLanes; ++l) {
        if (l != 2) sums[(v * width + w) * simd::kNewtonLanes + l] = 0;
      }
    }
  }
  std::vector<std::uint64_t> elem_scalar(d * width * simd::kNewtonLanes, 0);
  std::vector<std::uint64_t> elem_active(elem_scalar);
  const unsigned f_scalar = simd::scalar_kernels().newton_batch(
      sums.data(), d, width, elem_scalar.data());
  const unsigned f_active = simd::active_kernels().newton_batch(
      sums.data(), d, width, elem_active.data());
  EXPECT_EQ(f_scalar, f_active);
  for (std::size_t i = 0; i < elem_scalar.size(); ++i) {
    const std::size_t lane = i % simd::kNewtonLanes;
    if ((f_scalar >> lane) & 1u) continue;  // faulted lanes: unspecified
    EXPECT_EQ(elem_scalar[i], elem_active[i]) << "flat index " << i;
  }
}

// Whole-campaign pin: the default fault-sweep grid emits byte-identical JSON
// whether cells run single-threaded or borrow a shared intra-cell pool.
TEST(ParallelDecode, CampaignJsonByteIdenticalAcrossCellPools) {
  CampaignConfig config;
  config.generators = {"kdeg", "apollonian", "tree"};
  config.sizes = {24, 48};
  config.protocols = {"degeneracy", "forest", "bounded-degree"};
  config.seeds = {1, 2};
  config.fault_plans = {
      FaultPlan{.bit_flip_chance = 0.0, .truncate_chance = 0.0},
      FaultPlan{.bit_flip_chance = 0.6, .truncate_chance = 0.2},
  };
  const CampaignPlan plan{config};
  ThreadPool grid_pool(4);
  const ThreadPoolBackend baseline(&grid_pool);
  const std::string want = baseline.run(plan).to_json();
  for (const std::size_t cell_threads : {1u, 2u, 8u}) {
    ThreadPool cell_pool_instance(cell_threads);
    ThreadPoolBackend pooled(&grid_pool);
    pooled.set_cell_pool(&cell_pool_instance);
    EXPECT_EQ(pooled.run(plan).to_json(), want)
        << "cell_threads=" << cell_threads;
  }
}

}  // namespace
}  // namespace referee
