// The §III closing extension: reconstruction of graphs of generalised
// degeneracy <= k, where dense graphs qualify through their complements.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "model/simulator.hpp"
#include "protocols/generalized_degeneracy.hpp"

namespace referee {
namespace {

Graph roundtrip(const Graph& g, unsigned k) {
  const Simulator sim;
  const GeneralizedDegeneracyReconstruction protocol(k);
  return sim.run_reconstruction(g, protocol);
}

TEST(GeneralizedProtocol, CompleteGraphsAtKOne) {
  // K_n has degeneracy n-1 but generalised degeneracy 0 (empty complement),
  // so the generalised protocol handles it at k = 1 where the plain one
  // cannot.
  for (const std::size_t n : {2u, 5u, 12u}) {
    EXPECT_EQ(roundtrip(gen::complete(n), 1), gen::complete(n));
  }
}

TEST(GeneralizedProtocol, SparseGraphsStillWork) {
  Rng rng(353);
  const Graph g = gen::random_tree(40, rng);
  EXPECT_EQ(roundtrip(g, 1), g);
  const Graph h = gen::random_k_degenerate(40, 2, rng);
  EXPECT_EQ(roundtrip(h, 2), h);
}

TEST(GeneralizedProtocol, ComplementsOfSparseGraphs) {
  Rng rng(359);
  const Graph g = complement(gen::random_k_degenerate(30, 2, rng));
  EXPECT_EQ(roundtrip(g, 2), g);
}

TEST(GeneralizedProtocol, MixedSparseDensePhases) {
  // A split-ish graph: clique on {0..9} + pendant trees hanging off it.
  // Pruning must alternate between complement-side (clique) and plain-side
  // (tree) removals.
  Rng rng(367);
  Graph g = gen::complete(10);
  const Vertex first = g.add_vertices(20);
  for (Vertex v = first; v < g.vertex_count(); ++v) {
    g.add_edge(v, static_cast<Vertex>(rng.below(v)));
  }
  EXPECT_EQ(roundtrip(g, 2), g);
}

TEST(GeneralizedProtocol, CompleteBipartiteSmallSide) {
  // K_{2,m}: degeneracy 2, fine on the plain side at k = 2.
  const Graph g = gen::complete_bipartite(2, 15);
  EXPECT_EQ(roundtrip(g, 2), g);
}

TEST(GeneralizedProtocol, RejectsWhenBothSidesLarge) {
  // 4x4 torus: all residual degrees 4 and co-degrees 11; at k = 3 neither
  // side ever gets small, so the decoder must stall loudly.
  const Simulator sim;
  const GeneralizedDegeneracyReconstruction protocol(3);
  EXPECT_THROW(sim.run_reconstruction(gen::torus(4, 4), protocol),
               DecodeError);
}

TEST(GeneralizedProtocol, MessageRoughlyTwiceDegeneracyProtocol) {
  Rng rng(373);
  const Graph g = gen::random_k_degenerate(60, 2, rng);
  const Simulator sim;
  FrugalityReport report;
  sim.run_reconstruction(g, GeneralizedDegeneracyReconstruction(2), &report);
  // Two banks of k sums; the complement sums are the big ones (degree up to
  // n), so allow a generous constant — the point is it is still O(log n).
  EXPECT_LE(report.constant(), 40.0);
}

}  // namespace
}  // namespace referee
