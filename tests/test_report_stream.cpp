// The streaming report layer: one formatter (StreamingReportWriter), one
// parser (ShardRowReader), and the k-way merge that reassembles canonical
// referee-campaign-v3 bytes from shard streams without materializing a
// report. The property pin: partial reports folded in *random binary-tree
// orders*, through a random mix of the streaming and in-memory paths, are
// byte-identical to the single-process run.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "campaign/backend.hpp"
#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/stream.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace referee {
namespace {

CampaignConfig stream_config() {
  CampaignConfig config;
  config.generators = {"kdeg", "tree"};
  config.sizes = {16};
  config.protocols = {"degeneracy", "stats"};
  config.seeds = {1, 2, 3};
  return config;
}

std::string stream_doc(const CampaignReport& report) {
  std::ostringstream out;
  StreamingReportWriter writer(out);
  report.emit(writer);
  return std::move(out).str();
}

std::string merge_docs_streaming(const std::vector<std::string>& docs) {
  std::vector<std::istringstream> streams;
  streams.reserve(docs.size());
  for (const auto& doc : docs) streams.emplace_back(doc);
  std::vector<std::istream*> inputs;
  inputs.reserve(streams.size());
  for (auto& s : streams) inputs.push_back(&s);
  std::ostringstream out;
  StreamingReportWriter writer(out);
  merge_report_streams(inputs, writer);
  return std::move(out).str();
}

TEST(ReportStream, WriterIsTheOnlyFormatter) {
  // to_json() delegates to StreamingReportWriter, for shard and canonical
  // forms alike — the streaming path cannot drift from the in-memory one.
  const CampaignPlan plan{stream_config()};
  const ThreadPoolBackend backend;
  const auto full = backend.run(plan);
  EXPECT_EQ(full.to_json(), stream_doc(full));
  const auto shard = backend.run(plan.shard(1, 3));
  EXPECT_EQ(shard.to_json(), stream_doc(shard));
}

TEST(ReportStream, CollectingSinkRoundTripsEmit) {
  const CampaignPlan plan{stream_config()};
  const ThreadPoolBackend backend;
  const auto shard = backend.run(plan.shard(0, 2));
  CollectingReportSink sink;
  shard.emit(sink);
  EXPECT_EQ(sink.take().to_json(), shard.to_json());
}

TEST(ReportStream, ShardRowReaderStreamsRowsInIdOrder) {
  const CampaignPlan plan{stream_config()};
  const ThreadPoolBackend backend;
  const auto shard = backend.run(plan.shard(1, 2));
  std::istringstream in(shard.to_json());
  ShardRowReader reader(in);
  EXPECT_EQ(reader.plan_cells(), plan.total_cells());
  ASSERT_EQ(reader.shards().size(), 1u);
  EXPECT_EQ(reader.shards()[0].index, 1u);
  EXPECT_EQ(reader.expected_rows(), shard.cell_count());
  std::size_t rows = 0;
  std::size_t last_id = 0;
  while (const auto row = reader.next()) {
    if (rows > 0) EXPECT_GT(row->id, last_id);
    last_id = row->id;
    EXPECT_FALSE(row->generator.empty());
    EXPECT_FALSE(row->json.empty());
    ++rows;
  }
  EXPECT_EQ(rows, shard.cell_count());
  EXPECT_FALSE(reader.next().has_value());  // sticky after the block ends
}

TEST(ReportStream, AggregateFolderMatchesMaterializedAggregates) {
  const CampaignPlan plan{stream_config()};
  const auto report = ThreadPoolBackend().run(plan);
  std::ostringstream out;
  StreamingReportWriter writer(out);
  report.emit(writer);
  const auto& streamed = writer.folder().aggregates();
  const auto expected = report.aggregates();
  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(streamed[i].generator, expected[i].generator);
    EXPECT_EQ(streamed[i].protocol, expected[i].protocol);
    EXPECT_EQ(streamed[i].scenarios, expected[i].scenarios);
    EXPECT_EQ(streamed[i].ok, expected[i].ok);
    EXPECT_EQ(streamed[i].loud, expected[i].loud);
    EXPECT_EQ(streamed[i].silent_wrong, expected[i].silent_wrong);
    EXPECT_EQ(streamed[i].max_bits, expected[i].max_bits);
    EXPECT_DOUBLE_EQ(streamed[i].mean_max_bits, expected[i].mean_max_bits);
    EXPECT_DOUBLE_EQ(streamed[i].max_constant, expected[i].max_constant);
  }
  EXPECT_EQ(writer.folder().rows(), report.cell_count());
  EXPECT_EQ(writer.folder().silent_wrong(), report.silent_wrong_count());
}

TEST(ReportStream, KWayMergeMatchesSingleProcessBytes) {
  const CampaignPlan plan{stream_config()};
  const ThreadPoolBackend backend;
  const std::string baseline = backend.run(plan).to_json();
  std::vector<std::string> docs;
  for (unsigned k = 0; k < 4; ++k) {
    docs.push_back(backend.run(plan.shard(k, 4)).to_json());
  }
  EXPECT_EQ(merge_docs_streaming(docs), baseline);
  // Input order must not matter: shard files arrive in whatever order the
  // operator lists them.
  std::swap(docs[0], docs[3]);
  std::swap(docs[1], docs[2]);
  EXPECT_EQ(merge_docs_streaming(docs), baseline);
}

TEST(ReportStream, MergeRejectsOverlapsAndForeignPlans) {
  const CampaignPlan plan{stream_config()};
  const ThreadPoolBackend backend;
  const std::string s0 = backend.run(plan.shard(0, 2)).to_json();
  EXPECT_THROW(merge_docs_streaming({s0, s0}), CheckError);

  CampaignConfig other = stream_config();
  other.seeds = {1};
  const std::string foreign =
      backend.run(CampaignPlan{other}.shard(0, 2)).to_json();
  EXPECT_THROW(merge_docs_streaming({s0, foreign}), CheckError);
}

TEST(ReportStream, MalformedDocumentsAreRejectedLoudly) {
  {
    std::istringstream in("this is not a campaign report\n");
    EXPECT_THROW(ShardRowReader{in}, CheckError);
  }
  {
    // Right schema line, then garbage where the plan block belongs.
    std::istringstream in(
        "{\n  \"schema\": \"referee-campaign-v3\",\n  \"plant\": {},\n");
    EXPECT_THROW(ShardRowReader{in}, CheckError);
  }
  {
    // A truncated document: preamble parses, rows cut off mid-stream.
    const CampaignPlan plan{stream_config()};
    std::string doc = ThreadPoolBackend().run(plan).to_json();
    doc.resize(doc.size() / 2);
    std::istringstream in(doc);
    ShardRowReader reader(in);
    EXPECT_THROW(while (reader.next()) {}, CheckError);
  }
  EXPECT_THROW(parse_report_row("{\"i\": oops}"), CheckError);
}

TEST(ReportStream, RandomBinaryTreeFoldsAreByteIdentical) {
  // The satellite property pin: shuffle 7 shard reports, fold them in a
  // random binary-tree order, each interior node choosing the streaming
  // or the in-memory merge path at random — every trial's final document
  // must equal the single-process bytes, and every interior node must
  // still carry shard provenance (it is a partial report).
  const CampaignPlan plan{stream_config()};
  const ThreadPoolBackend backend;
  const std::string baseline = backend.run(plan).to_json();
  std::vector<std::string> shards;
  for (unsigned k = 0; k < 7; ++k) {
    shards.push_back(backend.run(plan.shard(k, 7)).to_json());
  }

  Rng rng(20260808);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::string> docs = shards;
    rng.shuffle(docs);
    while (docs.size() > 1) {
      // Fold a random pair into one partial (or final) document.
      const std::size_t a = static_cast<std::size_t>(rng.below(docs.size()));
      std::size_t b = static_cast<std::size_t>(rng.below(docs.size() - 1));
      if (b >= a) ++b;
      std::string folded;
      if (rng.chance(0.5)) {
        folded = merge_docs_streaming({docs[a], docs[b]});
      } else {
        CampaignReport merged = CampaignReport::from_json(docs[a]);
        merged.merge(CampaignReport::from_json(docs[b]));
        folded = merged.to_json();
      }
      if (docs.size() > 2) {
        EXPECT_NE(folded.find("\"shards\""), std::string::npos)
            << "interior fold lost its provenance";
      }
      docs[std::min(a, b)] = std::move(folded);
      docs.erase(docs.begin() + static_cast<std::ptrdiff_t>(std::max(a, b)));
    }
    EXPECT_EQ(docs[0], baseline) << "trial " << trial;
  }
}

}  // namespace
}  // namespace referee
