// Adversarial fault-contract harness.
//
// The property under test is the loud-failure contract: under every
// correlated fault plan, every decoder either answers correctly or throws
// a typed DecodeError — never a silently wrong answer. The harness sweeps
// (generator × protocol × correlated-fault × seed) grids through the full
// campaign pipeline (local phase → envelope → injection → open → decode),
// asserts cause→effect via the fault journal and the typed fault names,
// checks byte-identical results across thread counts, and shrinks failing
// cells to minimal repros.
//
// Set FAULT_SWEEP_SCALE=large in the environment (the CI fault-sweep job
// does) to enlarge the default 200-cell sweep to 1600 cells.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>

#include "campaign/backend.hpp"
#include "graph/io.hpp"
#include "model/adaptive_adversary.hpp"
#include "model/campaign.hpp"
#include "model/envelope.hpp"

namespace referee {
namespace {

bool large_sweep() {
  const char* scale = std::getenv("FAULT_SWEEP_SCALE");
  return scale != nullptr && std::string(scale) == "large";
}

CampaignConfig sweep_config() {
  CampaignConfig config = default_fault_sweep_config();
  if (large_sweep()) {
    config.sizes = {24, 48};
    config.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  }
  return config;
}

/// The typed fault each single-family correlated plan must surface as,
/// given the envelope's check order (presence, epoch, id). Returns "" for
/// adaptive-only plans — their detail depends on which strikes the
/// adversary chose, so it is predicted from the journal instead (see
/// expected_cell_detail).
std::string expected_detail(const FaultPlan& plan) {
  const CorrelatedFaults& cor = plan.correlated;
  if (cor.drop_fraction > 0) return "missing-message";
  if (cor.duplicate_ids > 0 || cor.payload_swaps > 0) return "id-mismatch";
  if (cor.stale_replays > 0) return "epoch-mismatch";
  return "";
}

/// The typed fault a sweep cell must refuse with: the plan-level prediction
/// when a correlated family is in play, otherwise the strike-level
/// prediction replayed from the cell's own adaptive journal.
std::string expected_cell_detail(const ScenarioSpec& spec,
                                 const ScenarioResult& res) {
  const std::string want = expected_detail(spec.faults);
  if (!want.empty()) return want;
  return expected_envelope_fault(res.journal, res.report.n);
}

TEST(FaultContract, DefaultSweepHasZeroSilentWrongCells) {
  const auto config = sweep_config();
  const auto grid = expand_grid(config);
  if (!large_sweep()) {
    EXPECT_EQ(grid.size(), 200u);  // the advertised default sweep
  }
  const CampaignRunner runner;
  const auto results = runner.run(grid);
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& spec = grid[i];
    const auto& res = results[i];
    ASSERT_TRUE(res.contract_ok)
        << spec.generator << "/" << spec.protocol << " seed " << spec.seed;
    // Every plan in the sweep corrupts the wire deterministically, so
    // every cell must refuse — and with the fault kind its plan (or, for
    // adaptive cells, its journal) predicts.
    EXPECT_EQ(res.outcome, "loud")
        << spec.generator << "/" << spec.protocol << " seed " << spec.seed;
    EXPECT_EQ(res.detail, expected_cell_detail(spec, res))
        << spec.generator << "/" << spec.protocol << " seed " << spec.seed;
    EXPECT_FALSE(res.journal.empty());
    if (spec.faults.adaptive.active()) {
      EXPECT_GT(res.journal.adaptive_count(), 0u)
          << spec.generator << "/" << spec.protocol << " seed " << spec.seed;
    }
  }
}

TEST(FaultContract, FileCellSweepCoversEveryProtocolAndStaysLoud) {
  // The file-backed companion sweep: every campaign protocol over one
  // on-disk edge list, fault-free and under each correlated fault model.
  // Fault-free cells must decode exactly/correctly through the mmap'd CSR
  // pipeline; faulted cells must refuse with the fault their plan
  // predicts; nothing may be silently wrong.
  const auto dir =
      std::filesystem::temp_directory_path() / "referee_fault_contract";
  std::filesystem::create_directories(dir);
  const std::string file = (dir / "sweep_tree.rgb").string();
  ScenarioSpec tree_spec;
  tree_spec.generator = "tree";
  tree_spec.n = 48;
  tree_spec.seed = 7;
  const Graph g = make_campaign_graph(tree_spec);
  const auto edges = g.edges();
  write_edge_file(file, g.vertex_count(), edges);

  const auto grid = expand_grid(file_cell_sweep_config(file));
  ASSERT_EQ(grid.size(), 108u);  // 9 protocols × 2 seeds × 6 fault plans
  const CampaignRunner runner;
  const auto results = runner.run(grid);
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& spec = grid[i];
    const auto& res = results[i];
    ASSERT_TRUE(res.contract_ok)
        << spec.protocol << " seed " << spec.seed << " -> " << res.outcome;
    if (!spec.faults.active()) {
      EXPECT_TRUE(res.outcome == "exact" || res.outcome == "correct")
          << spec.protocol << " seed " << spec.seed << " -> " << res.outcome
          << " (" << res.detail << ")";
    } else {
      EXPECT_EQ(res.outcome, "loud") << spec.protocol << " seed " << spec.seed;
      EXPECT_EQ(res.detail, expected_cell_detail(spec, res))
          << spec.protocol << " seed " << spec.seed;
      EXPECT_FALSE(res.journal.empty());
    }
  }
}

TEST(FaultContract, SecondSweepPassIsByteIdenticalAndArenaQuiescent) {
  // The decode-arena reuse contract: one thread, the default 200-cell sweep
  // run twice back to back. Pass 1 warms the calling thread's DecodeArena;
  // pass 2 must produce byte-identical referee-campaign-v3 JSON *and* zero
  // arena growth — the instrumented form of "a steady-state campaign cell
  // performs no decode-path heap allocations". Multi-round cells route
  // their per-round inboxes through plain vectors, so they neither grow
  // nor bypass the arena's scratch accounting.
  const auto grid = expand_grid(default_fault_sweep_config());
  ASSERT_EQ(grid.size(), 200u);
  const CampaignRunner runner;  // no pool: both passes on this thread
  const std::string first = campaign_json(grid, runner.run(grid));
  DecodeArena& arena = DecodeArena::for_current_thread();
  const auto warm_growth = arena.stats().growth_events;
  const auto warm_checkouts = arena.stats().checkouts;
  const std::string second = campaign_json(grid, runner.run(grid));
  EXPECT_EQ(first, second);
  EXPECT_GT(arena.stats().checkouts, warm_checkouts)
      << "second pass did not route decode scratch through the arena";
  EXPECT_EQ(arena.stats().growth_events, warm_growth)
      << "second sweep pass allocated decode scratch";
}

TEST(FaultContract, SweepIsByteIdenticalAcrossThreadCounts) {
  const auto grid = expand_grid(sweep_config());
  const CampaignRunner sequential;
  const auto baseline = campaign_json(grid, sequential.run(grid));
  for (const std::size_t threads : {3u, 8u}) {
    ThreadPool pool(threads);
    const CampaignRunner sharded(&pool);
    EXPECT_EQ(baseline, campaign_json(grid, sharded.run(grid)))
        << threads << " threads";
  }
}

// In-class generator for each protocol: the pairing under which a
// fault-free cell must decode exactly/correctly, so any degradation in a
// faulted cell is attributable to the fault, not the input class.
const std::map<std::string, std::string>& in_class_generator() {
  static const std::map<std::string, std::string> pairing{
      {"degeneracy", "kdeg"},
      {"generalized", "kdeg"},
      {"forest", "tree"},
      {"bounded-degree", "gnp"},
      {"stats", "gnp"},
      {"recognize-degeneracy", "kdeg"},
      {"connectivity", "gnp"},
      {"bipartite", "bipartite"},
      {"reduce-square", "squarefree"},
      {"reduce-triangle", "bipartite"},
      {"reduce-diameter", "gnp"},
      {"adaptive-degeneracy", "kdeg"},
  };
  return pairing;
}

/// Every campaign protocol, one-round and multi-round alike — the full
/// loudness-matrix axis.
std::vector<std::string> all_campaign_protocols() {
  std::vector<std::string> names = campaign_protocols();
  const auto& multi = campaign_multi_round_protocols();
  names.insert(names.end(), multi.begin(), multi.end());
  return names;
}

ScenarioSpec in_class_spec(const std::string& protocol, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.generator = in_class_generator().at(protocol);
  // Reductions decode in O(n²) referee simulations; keep their cells small.
  spec.n = protocol.rfind("reduce-", 0) == 0 ? 10 : 16;
  spec.seed = seed;
  return spec;
}

TEST(FaultContract, EveryProtocolCoversTheAdvertisedList) {
  // The pairing table and the advertised protocol lists (one-round plus
  // multi-round) must not drift apart.
  const auto all = all_campaign_protocols();
  ASSERT_EQ(in_class_generator().size(), all.size());
  for (const auto& name : all) {
    EXPECT_TRUE(in_class_generator().count(name)) << name;
  }
  for (const auto& name : campaign_multi_round_protocols()) {
    EXPECT_TRUE(is_multi_round_protocol(name)) << name;
  }
  for (const auto& name : campaign_protocols()) {
    EXPECT_FALSE(is_multi_round_protocol(name)) << name;
  }
}

TEST(FaultContract, FaultFreeInClassCellsDecodeThroughTheEnvelope) {
  for (const auto& protocol : all_campaign_protocols()) {
    for (const std::uint64_t seed : {1ull, 2ull}) {
      const ScenarioSpec spec = in_class_spec(protocol, seed);
      const auto res = run_scenario(spec);
      EXPECT_TRUE(res.outcome == "exact" || res.outcome == "correct")
          << protocol << " seed " << seed << " -> " << res.outcome << " ("
          << res.detail << ")";
    }
  }
}

TEST(FaultContract, EveryProtocolIsLoudUnderEveryCorrelatedFault) {
  const std::vector<FaultPlan> plans{
      FaultPlan{.correlated = CorrelatedFaults{.drop_fraction = 0.25}},
      FaultPlan{.correlated = CorrelatedFaults{.duplicate_ids = 1}},
      FaultPlan{.correlated = CorrelatedFaults{.payload_swaps = 1}},
      FaultPlan{.correlated = CorrelatedFaults{.stale_replays = 1}},
      // Everything at once, plus bit noise: still loud, never wrong.
      FaultPlan{.bit_flip_chance = 0.1,
                .truncate_chance = 0.1,
                .correlated = CorrelatedFaults{.drop_fraction = 0.25,
                                               .duplicate_ids = 1,
                                               .payload_swaps = 1,
                                               .stale_replays = 1}},
  };
  for (const auto& protocol : all_campaign_protocols()) {
    for (std::size_t p = 0; p < plans.size(); ++p) {
      for (const std::uint64_t seed : {1ull, 2ull}) {
        ScenarioSpec spec = in_class_spec(protocol, seed);
        spec.faults = plans[p];
        const auto res = run_scenario(spec);
        EXPECT_EQ(res.outcome, "loud")
            << protocol << " plan " << p << " seed " << seed << " -> "
            << res.outcome;
        EXPECT_TRUE(res.contract_ok);
        const auto want = expected_detail(plans[p]);
        if (!want.empty() && p < 4) {
          EXPECT_EQ(res.detail, want) << protocol << " plan " << p;
        }
        // Cause→effect: the journal must show the plan actually fired.
        EXPECT_FALSE(res.journal.empty()) << protocol << " plan " << p;
      }
    }
  }
}

TEST(FaultContract, AdaptiveAdversaryStrikesLargestPayloadFirst) {
  // The strike search on a hand-built wire: the ranking must prefer the
  // largest payload, break size ties toward the epoch-boundary slots, and
  // rotate strike kinds while the predictor names the typed refusal the
  // envelope will raise — verified against a real open.
  const std::uint32_t n = 6;
  const std::uint64_t epoch = 0xC0FFEEull;
  std::vector<Message> wire;
  for (const unsigned bits : {8u, 3u, 16u, 16u, 5u, 16u}) {
    BitWriter w;
    for (unsigned b = 0; b < bits; ++b) w.write_bit((b & 1u) != 0);
    wire.push_back(Message::seal(std::move(w)));
  }
  seal_transcript(epoch, n, wire);

  // Slots 2, 3 and 5 carry the largest payload; 5 sits on the epoch
  // boundary so it outranks them, and ties resolve to the lower slot.
  const auto targets = score_strike_targets(wire);
  ASSERT_EQ(targets.size(), wire.size());
  EXPECT_EQ(targets[0].slot, 5u);
  EXPECT_EQ(targets[1].slot, 2u);
  EXPECT_EQ(targets[2].slot, 3u);
  EXPECT_EQ(targets[3].slot, 0u);  // next-largest, boundary

  // Budget 7 affords the full kind rotation: blank(1) + flip(1) +
  // truncate(2) + swap(3), spent on the ranked targets in order.
  const auto journal =
      apply_adaptive_adversary(wire, n, AdaptiveFaults{.budget = 7}, 1);
  ASSERT_EQ(journal.events.size(), 4u);
  EXPECT_EQ(journal.events[0].type, FaultType::kAdaptiveBlank);
  EXPECT_EQ(journal.events[0].index, 5u);
  EXPECT_EQ(journal.events[1].type, FaultType::kAdaptiveHeaderFlip);
  EXPECT_EQ(journal.events[1].index, 2u);
  EXPECT_EQ(journal.events[2].type, FaultType::kAdaptiveTruncate);
  EXPECT_EQ(journal.events[2].index, 3u);
  EXPECT_EQ(journal.events[3].type, FaultType::kAdaptiveSwap);

  // Cause→effect: the envelope refuses with exactly the predicted fault.
  const std::string want = expected_envelope_fault(journal, n);
  EXPECT_FALSE(want.empty());
  DecodeArena& arena = DecodeArena::for_current_thread();
  auto out = arena.scratch<Message>();
  try {
    open_transcript_into(epoch, n, wire, arena, *out);
    FAIL() << "struck transcript opened cleanly";
  } catch (const DecodeError& e) {
    EXPECT_EQ(decode_fault_name(e.fault()), want);
  }

  // Determinism: same (wire, seed, budget) -> same strikes, different
  // seed -> same targets (selection never consumes randomness).
  std::vector<Message> replay;
  for (const unsigned bits : {8u, 3u, 16u, 16u, 5u, 16u}) {
    BitWriter w;
    for (unsigned b = 0; b < bits; ++b) w.write_bit((b & 1u) != 0);
    replay.push_back(Message::seal(std::move(w)));
  }
  seal_transcript(epoch, n, replay);
  const auto again =
      apply_adaptive_adversary(replay, n, AdaptiveFaults{.budget = 7}, 1);
  EXPECT_EQ(again.events, journal.events);
}

TEST(FaultContract, AdaptiveAdversaryIsLoudOnEveryProtocol) {
  // The adaptive × protocol loudness matrix: under every campaign protocol
  // (multi-round included) and a range of budgets, every strike the
  // adversary affords must surface as the exact typed refusal predicted by
  // replaying the envelope check order over the cell's own journal —
  // cause→effect per strike, not just per sweep.
  for (const auto& protocol : all_campaign_protocols()) {
    for (const unsigned budget : {1u, 2u, 3u, 5u}) {
      for (const std::uint64_t seed : {1ull, 2ull}) {
        ScenarioSpec spec = in_class_spec(protocol, seed);
        spec.faults = FaultPlan{.adaptive = AdaptiveFaults{.budget = budget}};
        const auto res = run_scenario(spec);
        EXPECT_EQ(res.outcome, "loud")
            << protocol << " budget " << budget << " seed " << seed;
        EXPECT_TRUE(res.contract_ok) << protocol << " budget " << budget;
        EXPECT_GT(res.journal.adaptive_count(), 0u)
            << protocol << " budget " << budget;
        EXPECT_EQ(res.detail,
                  expected_envelope_fault(res.journal, res.report.n))
            << protocol << " budget " << budget << " seed " << seed;
      }
    }
  }
}

TEST(FaultContract, AdaptiveJournalsAreIdenticalAcrossThreadsAndShards) {
  // The determinism property for adaptive and multi-round cells: the fault
  // journal — strike for strike — and the referee-campaign-v3 rows of the
  // default sweep are pure functions of (cell spec, seed, budget), never
  // of the thread count or shard topology that executed them.
  const CampaignPlan plan{default_fault_sweep_config()};
  const ThreadPoolBackend sequential;
  const auto baseline = sequential.run_cells(plan);
  const std::string baseline_json =
      CampaignReport::from_results(plan, baseline).to_json();
  std::size_t adaptive_cells = 0;
  for (const auto& res : baseline) {
    if (res.journal.adaptive_count() > 0) ++adaptive_cells;
  }
  EXPECT_GT(adaptive_cells, 0u) << "sweep lost its adaptive cells";

  ThreadPool pool(4);
  const ThreadPoolBackend threaded(&pool);
  const auto cells = threaded.run_cells(plan);
  ASSERT_EQ(cells.size(), baseline.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].journal.events, baseline[i].journal.events)
        << "cell " << i << " journal drifts across thread counts";
  }

  for (const unsigned count : {2u, 5u}) {
    CampaignReport merged;
    for (unsigned k = 0; k < count; ++k) {
      merged.merge(threaded.run(plan.shard(k, count)));
    }
    EXPECT_TRUE(merged.complete());
    EXPECT_EQ(merged.to_json(), baseline_json) << count << " shards";
  }
}

TEST(FaultContract, LegacyBitFaultsStayContractCleanOnPowerSumDecoders) {
  // The pre-existing independent models, through the new pipeline: flips
  // and truncations inside the payload are the decoder's job (power sums,
  // framing), flips inside the envelope header are the envelope's.
  for (const auto& protocol : {"degeneracy", "generalized", "forest",
                               "bounded-degree"}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      ScenarioSpec spec = in_class_spec(protocol, seed);
      spec.faults = FaultPlan{.bit_flip_chance = 0.6, .truncate_chance = 0.3};
      const auto res = run_scenario(spec);
      EXPECT_TRUE(res.contract_ok)
          << protocol << " seed " << seed << " -> " << res.outcome;
    }
  }
}

TEST(FaultContract, ShrinkerFindsMinimalRepro) {
  // A deliberately noisy failing cell: drops plus swaps plus bit flips.
  ScenarioSpec spec;
  spec.generator = "kdeg";
  spec.protocol = "degeneracy";
  spec.n = 32;
  spec.seed = 5;
  spec.faults = FaultPlan{
      .bit_flip_chance = 0.2,
      .correlated = CorrelatedFaults{.drop_fraction = 0.3,
                                     .payload_swaps = 2}};
  // "Failing" here means: loud *because a message went missing*. The
  // shrinker must strip the irrelevant fault families and shrink n.
  const auto still_fails = [](const ScenarioSpec& cand) {
    const auto res = run_scenario(cand);
    return res.outcome == "loud" && res.detail == "missing-message";
  };
  ASSERT_TRUE(still_fails(spec));
  const ScenarioSpec minimal = shrink_scenario(spec, still_fails);
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_EQ(minimal.n, 4u);
  EXPECT_EQ(minimal.seed, 1u);
  EXPECT_EQ(minimal.faults.bit_flip_chance, 0.0);
  EXPECT_EQ(minimal.faults.correlated.payload_swaps, 0u);
  EXPECT_GT(minimal.faults.correlated.drop_fraction, 0.0);
}

TEST(FaultContract, ShrinkerMinimizesAdaptiveRepro) {
  // An adaptive failure buried in oblivious noise: the shrinker must strip
  // the bit noise, shrink the graph, and halve the strike budget down to
  // the single cheapest strike that still trips the envelope.
  ScenarioSpec spec;
  spec.generator = "kdeg";
  spec.protocol = "degeneracy";
  spec.n = 32;
  spec.seed = 5;
  spec.faults = FaultPlan{.bit_flip_chance = 0.2,
                          .truncate_chance = 0.1,
                          .adaptive = AdaptiveFaults{.budget = 6}};
  const auto still_fails = [](const ScenarioSpec& cand) {
    const auto res = run_scenario(cand);
    return res.outcome == "loud" && res.journal.adaptive_count() > 0;
  };
  ASSERT_TRUE(still_fails(spec));
  const ScenarioSpec minimal = shrink_scenario(spec, still_fails);
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_EQ(minimal.n, 4u);
  EXPECT_EQ(minimal.seed, 1u);
  EXPECT_EQ(minimal.faults.bit_flip_chance, 0.0);
  EXPECT_EQ(minimal.faults.truncate_chance, 0.0);
  EXPECT_EQ(minimal.faults.adaptive.budget, 1u);
  // The minimal repro is still strike-predictable: detail equals the
  // journal replay of the envelope check order.
  const auto res = run_scenario(minimal);
  EXPECT_EQ(res.detail, expected_envelope_fault(res.journal, res.report.n));
}

TEST(FaultContract, ShrinkerCollapsesMultiRoundRepro) {
  // A multi-round failing cell whose fault trips at round 0: the round
  // count is irrelevant noise, and rounds shrink before anything else, so
  // the repro must collapse to a single round before n and seed shrink.
  ScenarioSpec spec;
  spec.generator = "kdeg";
  spec.protocol = "adaptive-degeneracy";
  spec.n = 16;
  spec.rounds = 6;
  spec.seed = 3;
  spec.faults =
      FaultPlan{.correlated = CorrelatedFaults{.drop_fraction = 0.25}};
  const auto still_fails = [](const ScenarioSpec& cand) {
    const auto res = run_scenario(cand);
    return res.outcome == "loud" && res.detail == "missing-message";
  };
  ASSERT_TRUE(still_fails(spec));
  const ScenarioSpec minimal = shrink_scenario(spec, still_fails);
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_EQ(minimal.rounds, 1u);
  EXPECT_EQ(minimal.n, 4u);
  EXPECT_EQ(minimal.seed, 1u);
  EXPECT_GT(minimal.faults.correlated.drop_fraction, 0.0);
}

TEST(FaultContract, EpochSeparatesEveryCellAxis) {
  // A stale replay between two cells differing in *any* grid axis must be
  // detectable, so every axis that shapes the transcript feeds the epoch.
  ScenarioSpec base;
  base.generator = "gnp";
  base.protocol = "stats";
  base.n = 24;
  base.k = 3;
  base.p = 0.1;
  base.seed = 1;
  const auto epoch = scenario_epoch(base);
  ScenarioSpec v = base;
  v.generator = "kdeg";
  EXPECT_NE(scenario_epoch(v), epoch) << "generator";
  v = base;
  v.protocol = "degeneracy";
  EXPECT_NE(scenario_epoch(v), epoch) << "protocol";
  v = base;
  v.n = 25;
  EXPECT_NE(scenario_epoch(v), epoch) << "n";
  v = base;
  v.k = 4;
  EXPECT_NE(scenario_epoch(v), epoch) << "k";
  v = base;
  v.p = 0.3;  // p shapes gnp/bipartite transcripts: regression for the
              // axis the epoch originally omitted
  EXPECT_NE(scenario_epoch(v), epoch) << "p";
  v = base;
  v.seed = 2;
  EXPECT_NE(scenario_epoch(v), epoch) << "seed";
  // ...and the donor derivation lands on a different epoch too.
  EXPECT_NE(scenario_epoch(stale_donor_spec(base)), epoch);
}

TEST(FaultContract, ShrinkerReturnsInputWhenItDoesNotFail) {
  const ScenarioSpec spec = in_class_spec("degeneracy", 1);
  const auto never = [](const ScenarioSpec&) { return false; };
  const ScenarioSpec out = shrink_scenario(spec, never);
  EXPECT_EQ(out.n, spec.n);
  EXPECT_EQ(out.seed, spec.seed);
}

TEST(FaultContract, FailingCellJsonRecordIsAReproduciblePointer) {
  // A failing cell's JSON row carries everything needed to re-run it:
  // generator, spec_n, k, p, protocol, seed and the fault axes. Re-running
  // the reconstructed spec reproduces outcome and detail bit for bit.
  ScenarioSpec spec;
  spec.generator = "tree";
  spec.protocol = "forest";
  spec.n = 24;
  spec.seed = 3;
  spec.faults =
      FaultPlan{.correlated = CorrelatedFaults{.stale_replays = 2}};
  const auto first = run_scenario(spec);
  ASSERT_EQ(first.outcome, "loud");
  ScenarioSpec rebuilt;  // ...as a consumer would, from the JSON fields
  rebuilt.generator = "tree";
  rebuilt.protocol = "forest";
  rebuilt.n = 24;
  rebuilt.seed = 3;
  rebuilt.faults =
      FaultPlan{.correlated = CorrelatedFaults{.stale_replays = 2}};
  const auto again = run_scenario(rebuilt);
  EXPECT_EQ(again.outcome, first.outcome);
  EXPECT_EQ(again.detail, first.detail);
  EXPECT_EQ(again.journal.events.size(), first.journal.events.size());
}

}  // namespace
}  // namespace referee
