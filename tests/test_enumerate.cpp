#include <gtest/gtest.h>

#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "graph/subgraphs.hpp"
#include "support/thread_pool.hpp"

namespace referee {
namespace {

TEST(Enumerate, MaskRoundTrip) {
  Rng rng(227);
  for (int trial = 0; trial < 50; ++trial) {
    const Graph g = gen::gnp(7, 0.5, rng);
    EXPECT_EQ(graph_from_mask(7, mask_from_graph(g)), g);
  }
}

TEST(Enumerate, MaskZeroIsEmptyAndFullIsComplete) {
  EXPECT_EQ(graph_from_mask(5, 0), gen::empty(5));
  EXPECT_EQ(graph_from_mask(5, (1u << 10) - 1), gen::complete(5));
}

TEST(Enumerate, VisitsAllGraphs) {
  std::uint64_t count = 0;
  for_each_labelled_graph(4, [&](const Graph& g) {
    EXPECT_EQ(g.vertex_count(), 4u);
    ++count;
  });
  EXPECT_EQ(count, 64u);  // 2^C(4,2)
}

TEST(Enumerate, CountWithTrivialPredicates) {
  EXPECT_EQ(count_labelled_graphs(4, [](const Graph&) { return true; }), 64u);
  EXPECT_EQ(count_labelled_graphs(4, [](const Graph&) { return false; }), 0u);
}

TEST(Enumerate, SquareFreeCountsSmall) {
  // n <= 3: no graph on < 4 vertices has a C4.
  EXPECT_EQ(count_square_free_graphs(1), 1u);
  EXPECT_EQ(count_square_free_graphs(2), 2u);
  EXPECT_EQ(count_square_free_graphs(3), 8u);
  // n = 4: 64 total, inclusion-exclusion over the three 4-cycles gives 10
  // graphs containing a C4.
  EXPECT_EQ(count_square_free_graphs(4), 54u);
}

TEST(Enumerate, ParallelCountMatchesSequential) {
  ThreadPool pool(4);
  const auto seq = count_square_free_graphs(6, nullptr);
  const auto par = count_square_free_graphs(6, &pool);
  EXPECT_EQ(seq, par);
}

// OEIS A001187 (labelled connected graphs): 1, 1, 4, 38, 728 for n = 1..5.
std::uint64_t count_connected(std::size_t n) {
  std::uint64_t count = 0;
  for_each_labelled_graph(n, [&](const Graph& g) {
    // Tiny inline DFS to stay independent of graph/algorithms.
    std::vector<bool> seen(g.vertex_count(), false);
    std::vector<Vertex> stack{0};
    seen[0] = true;
    std::size_t visited = 1;
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      for (const Vertex v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          ++visited;
          stack.push_back(v);
        }
      }
    }
    if (visited == g.vertex_count()) ++count;
  });
  return count;
}

TEST(Enumerate, ConnectedCountsMatchOeisA001187) {
  EXPECT_EQ(count_connected(1), 1u);
  EXPECT_EQ(count_connected(2), 1u);
  EXPECT_EQ(count_connected(3), 4u);
  EXPECT_EQ(count_connected(4), 38u);
  EXPECT_EQ(count_connected(5), 728u);
}

TEST(Enumerate, RejectsOversizedN) {
  EXPECT_THROW(for_each_labelled_graph(9, [](const Graph&) {}), CheckError);
  EXPECT_THROW(graph_from_mask(12, 0), CheckError);
}

}  // namespace
}  // namespace referee
