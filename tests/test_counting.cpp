// Lemma 1 quantitatively: family sizes versus the frugal referee capacity.
#include <gtest/gtest.h>

#include <cmath>

#include "reductions/counting.hpp"

namespace referee {
namespace {

TEST(Counting, AllGraphsLogCount) {
  EXPECT_DOUBLE_EQ(log2_all_graphs(2), 1.0);
  EXPECT_DOUBLE_EQ(log2_all_graphs(10), 45.0);
}

TEST(Counting, FixedBipartiteLogCount) {
  EXPECT_DOUBLE_EQ(log2_fixed_bipartite(4), 4.0);
  EXPECT_DOUBLE_EQ(log2_fixed_bipartite(5), 6.0);
  EXPECT_DOUBLE_EQ(log2_fixed_bipartite(10), 25.0);
}

TEST(Counting, SquareFreeExactMatchesEnumeration) {
  EXPECT_DOUBLE_EQ(log2_square_free_exact(2), 1.0);             // 2 graphs
  EXPECT_DOUBLE_EQ(log2_square_free_exact(3), 3.0);             // 8 graphs
  EXPECT_NEAR(log2_square_free_exact(4), std::log2(54.0), 1e-12);
}

TEST(Counting, SquareFreeGrowsStrictly) {
  double prev = 0;
  for (std::uint32_t n = 2; n <= 6; ++n) {
    const double cur = log2_square_free_exact(n);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Counting, FrugalCapacityFormula) {
  // n = 1023 -> budget 10 bits; capacity = c * n * 10.
  EXPECT_DOUBLE_EQ(frugal_capacity_bits(1023, 2.0), 2.0 * 1023 * 10);
}

TEST(Counting, Lemma1AllGraphsInfeasibleEventually) {
  // C(n,2) grows like n²; capacity like n log n — all graphs cannot be
  // reconstructed frugally once n is moderately large (Theorem 2's family).
  EXPECT_TRUE(lemma1_feasible(log2_all_graphs(8), 8, 4.0));
  EXPECT_FALSE(lemma1_feasible(log2_all_graphs(4096), 4096, 4.0));
}

TEST(Counting, Lemma1SquareFreeInfeasibleEventually) {
  // The Kleitman–Winston Θ(n^{3/2}) model beats c·n·log n for every fixed c
  // (Theorem 1's family).
  for (const double c : {1.0, 4.0, 16.0}) {
    bool infeasible_seen = false;
    for (std::uint32_t n = 1u << 8; n <= (1u << 24); n <<= 2) {
      if (!lemma1_feasible(log2_square_free_model(n), n, c)) {
        infeasible_seen = true;
      }
    }
    EXPECT_TRUE(infeasible_seen) << "c=" << c;
  }
}

TEST(Counting, Lemma1BipartiteInfeasibleEventually) {
  EXPECT_FALSE(lemma1_feasible(log2_fixed_bipartite(4096), 4096, 4.0));
}

TEST(Counting, DegenerateFamilyStaysFeasible) {
  // Graphs of degeneracy k have at most ~ n·k·log n description bits; the
  // protocol's capacity keeps up at every size (Theorem 5's side of the
  // ledger). Model: log2 |family| <= k * n * log2 n.
  const double k = 3;
  for (std::uint32_t n = 16; n <= (1u << 20); n <<= 2) {
    const double family = k * n * std::log2(static_cast<double>(n));
    EXPECT_TRUE(lemma1_feasible(family, n, /*c=*/2 * k + 2));
  }
}

TEST(Counting, CrossoverOrdering) {
  // For any fixed capacity constant, square-free crosses infeasible later
  // than all-graphs (n^{3/2} vs n² growth), sanity-checking the model.
  const double c = 4.0;
  std::uint32_t all_cross = 0;
  std::uint32_t sf_cross = 0;
  for (std::uint32_t n = 4; n <= (1u << 24); n <<= 1) {
    if (all_cross == 0 && !lemma1_feasible(log2_all_graphs(n), n, c)) {
      all_cross = n;
    }
    if (sf_cross == 0 && !lemma1_feasible(log2_square_free_model(n), n, c)) {
      sf_cross = n;
    }
  }
  ASSERT_NE(all_cross, 0u);
  ASSERT_NE(sf_cross, 0u);
  EXPECT_LT(all_cross, sf_cross);
}

}  // namespace
}  // namespace referee
