#include "service/service_core.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "service/procedure.hpp"
#include "support/check.hpp"

namespace referee {
namespace {

// ---------------------------------------------------------------------------
// A tiny controllable procedure table: "slow" blocks until released (so
// tests can fill the queue deterministically), "echo" is batchable.

std::mutex g_gate_mutex;
std::condition_variable g_gate_cv;
int g_slow_started = 0;
bool g_release = false;

void reset_gate() {
  std::lock_guard<std::mutex> lock(g_gate_mutex);
  g_slow_started = 0;
  g_release = false;
}

void release_gate() {
  {
    std::lock_guard<std::mutex> lock(g_gate_mutex);
    g_release = true;
  }
  g_gate_cv.notify_all();
}

void wait_slow_started(int count) {
  std::unique_lock<std::mutex> lock(g_gate_mutex);
  g_gate_cv.wait(lock, [count] { return g_slow_started >= count; });
}

int slow_handler(const Request&, const ProcedureContext&, ProcedureIO&) {
  std::unique_lock<std::mutex> lock(g_gate_mutex);
  ++g_slow_started;
  g_gate_cv.notify_all();
  g_gate_cv.wait(lock, [] { return g_release; });
  return 0;
}

constexpr Flag kEchoFlags[] = {{"x", "V", "value to echo"}};

int echo_handler(const Request& req, const ProcedureContext&,
                 ProcedureIO& io) {
  io.out << req.args.str("x", "");
  return 0;
}

constexpr ProcedureDesc kTestTable[] = {
    {"slow", "blocks until released", "", false, false, false, {},
     slow_handler},
    {"echo", "echoes --x", "", false, false, true, kEchoFlags, echo_handler},
};

Request make_request(std::string proc,
                     std::map<std::string, std::string> args = {}) {
  Request request;
  request.proc = std::move(proc);
  request.args.values = std::move(args);
  return request;
}

TEST(ServiceCoreAdmission, FullQueueShedsImmediatelyWithTypedRefusal) {
  reset_gate();
  ServiceCore::Config config;
  config.workers = 1;
  config.queue_capacity = 1;
  ServiceCore core(config, kTestTable);

  auto running = core.submit(make_request("slow"));
  wait_slow_started(1);  // the worker is now pinned inside the handler
  auto queued = core.submit(make_request("slow"));  // fills the queue
  auto shed = core.submit(make_request("slow"));    // must shed, not wait

  // The refusal is immediate: the future is ready without any release.
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  const ServiceResponse refusal = shed.get();
  EXPECT_EQ(refusal.status, ServiceStatus::kOverloaded);
  EXPECT_EQ(refusal.exit_code, 3);
  EXPECT_NE(refusal.log.find("overloaded"), std::string::npos);

  release_gate();
  EXPECT_EQ(running.get().status, ServiceStatus::kOk);
  EXPECT_EQ(queued.get().status, ServiceStatus::kOk);

  const ServiceStatsSnapshot stats = core.stats();
  ASSERT_EQ(stats.procedures.size(), 2u);
  EXPECT_EQ(stats.procedures[0].name, "slow");
  EXPECT_EQ(stats.procedures[0].requests, 3u);
  EXPECT_EQ(stats.procedures[0].ok, 2u);
  EXPECT_EQ(stats.procedures[0].shed, 1u);
}

TEST(ServiceCoreAdmission, UnknownAndInvalidRequestsResolveImmediately) {
  ServiceCore::Config config;
  config.workers = 1;
  ServiceCore core(config, kTestTable);

  const ServiceResponse unknown = core.call(make_request("nope"));
  EXPECT_EQ(unknown.status, ServiceStatus::kUnknownProcedure);
  EXPECT_EQ(unknown.exit_code, 2);

  const ServiceResponse bad =
      core.call(make_request("echo", {{"bogus", "1"}}));
  EXPECT_EQ(bad.status, ServiceStatus::kBadRequest);
  EXPECT_NE(bad.log.find("did you mean --x"), std::string::npos);

  const ServiceStatsSnapshot stats = core.stats();
  EXPECT_EQ(stats.rejected_unknown, 1u);
  EXPECT_EQ(stats.rejected_bad_request, 1u);
}

TEST(ServiceCoreAdmission, RealTableRefusesLocalOnlyProcedures) {
  ServiceCore::Config config;
  config.workers = 1;
  ServiceCore core(config);
  const ServiceResponse served =
      core.call(make_request("serve", {{"socket", "/tmp/x.sock"}}));
  EXPECT_EQ(served.status, ServiceStatus::kBadRequest);
  EXPECT_NE(served.log.find("CLI"), std::string::npos);
}

TEST(ServiceCoreBatching, ConsecutiveBatchableRequestsCoalesce) {
  reset_gate();
  ServiceCore::Config config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.batch_max = 8;
  ServiceCore core(config, kTestTable);

  // Pin the worker, then queue four echoes behind it: on release the
  // worker pops the first echo and coalesces the contiguous run.
  auto blocker = core.submit(make_request("slow"));
  wait_slow_started(1);
  std::vector<std::future<ServiceResponse>> echoes;
  for (int i = 0; i < 4; ++i) {
    echoes.push_back(
        core.submit(make_request("echo", {{"x", std::to_string(i)}})));
  }
  release_gate();
  EXPECT_EQ(blocker.get().status, ServiceStatus::kOk);
  for (int i = 0; i < 4; ++i) {
    const ServiceResponse response = echoes[i].get();
    EXPECT_EQ(response.status, ServiceStatus::kOk);
    EXPECT_EQ(response.output, std::to_string(i));  // per-request bytes kept
  }
  const ServiceStatsSnapshot stats = core.stats();
  ASSERT_EQ(stats.procedures.size(), 2u);
  EXPECT_EQ(stats.procedures[1].name, "echo");
  EXPECT_EQ(stats.procedures[1].ok, 4u);
  EXPECT_EQ(stats.procedures[1].batches, 1u);
  EXPECT_EQ(stats.procedures[1].batched, 4u);
}

TEST(ServiceCoreBatching, BatchMaxBoundsTheCoalescedRun) {
  reset_gate();
  ServiceCore::Config config;
  config.workers = 1;
  config.queue_capacity = 16;
  config.batch_max = 2;
  ServiceCore core(config, kTestTable);
  auto blocker = core.submit(make_request("slow"));
  wait_slow_started(1);
  std::vector<std::future<ServiceResponse>> echoes;
  for (int i = 0; i < 4; ++i) {
    echoes.push_back(
        core.submit(make_request("echo", {{"x", std::to_string(i)}})));
  }
  release_gate();
  for (auto& f : echoes) EXPECT_EQ(f.get().status, ServiceStatus::kOk);
  blocker.get();
  const ServiceStatsSnapshot stats = core.stats();
  EXPECT_EQ(stats.procedures[1].batches, 2u);  // 4 echoes as 2+2, never 4
  EXPECT_EQ(stats.procedures[1].batched, 4u);
}

TEST(ServiceCoreWarmth, SecondIdenticalCampaignGrowsNoArena) {
  // One worker, no inner pool: every cell decodes on the same persistent
  // thread, so its thread_local DecodeArena must reach steady state after
  // the first request — the warm-arena contract of the service.
  ServiceCore::Config config;
  config.workers = 1;
  config.pool_threads = 0;
  ServiceCore core(config);
  const Request campaign = make_request(
      "campaign", {{"generators", "kdeg"},
                   {"sizes", "16"},
                   {"protocols", "degeneracy"},
                   {"seed-list", "1"},
                   {"json", "1"}});
  const ServiceResponse first = core.call(campaign);
  ASSERT_EQ(first.status, ServiceStatus::kOk) << first.log;
  const std::uint64_t after_first = core.stats().arena_growth_events;
  const ServiceResponse second = core.call(campaign);
  ASSERT_EQ(second.status, ServiceStatus::kOk) << second.log;
  const std::uint64_t after_second = core.stats().arena_growth_events;
  EXPECT_EQ(first.output, second.output);  // same bytes while we are here
  EXPECT_EQ(after_first, after_second) << "second identical request grew an "
                                          "arena: workers are not warm";
}

TEST(ServiceCoreStats, CountersAreMonotoneAndFormatted) {
  ServiceCore::Config config;
  config.workers = 1;
  ServiceCore core(config, kTestTable);
  const ServiceStatsSnapshot before = core.stats();
  reset_gate();
  release_gate();  // slow returns immediately once released up front
  core.call(make_request("slow"));
  const ServiceStatsSnapshot after = core.stats();
  EXPECT_GE(after.procedures[0].requests, before.procedures[0].requests + 1);
  EXPECT_GE(after.procedures[0].total_micros,
            before.procedures[0].total_micros);
  const std::string json = format_service_stats(after);
  EXPECT_NE(json.find("\"referee-service-stats\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"slow\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// The hoisted campaign flag helpers the table shares with the CLI.

TEST(FaultAxes, ExpandsFlipMajorAdaptiveMinor) {
  FaultAxes axes;
  axes.flips = {0.0, 0.5};
  axes.dups = {0, 2};
  const auto plans = expand_fault_axes(axes);
  ASSERT_EQ(plans.size(), 4u);
  EXPECT_EQ(plans[0].bit_flip_chance, 0.0);
  EXPECT_EQ(plans[0].correlated.duplicate_ids, 0u);
  EXPECT_EQ(plans[1].bit_flip_chance, 0.0);
  EXPECT_EQ(plans[1].correlated.duplicate_ids, 2u);
  EXPECT_EQ(plans[2].bit_flip_chance, 0.5);
  EXPECT_EQ(plans[2].correlated.duplicate_ids, 0u);
  EXPECT_EQ(plans[3].bit_flip_chance, 0.5);
  EXPECT_EQ(plans[3].correlated.duplicate_ids, 2u);
}

TEST(FaultAxes, DefaultAxesYieldOneCleanPlan) {
  const auto plans = expand_fault_axes(FaultAxes{});
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].bit_flip_chance, 0.0);
  EXPECT_EQ(plans[0].adaptive.budget, 0u);
}

TEST(ShardSpecParse, AcceptsKOverN) {
  const ShardSpec spec = parse_shard_spec("2/6");
  EXPECT_EQ(spec.index, 2u);
  EXPECT_EQ(spec.count, 6u);
}

TEST(ShardSpecParse, RejectsMalformedAndOutOfRange) {
  EXPECT_THROW(parse_shard_spec("4/4"), CheckError);
  EXPECT_THROW(parse_shard_spec("1/0"), CheckError);
  EXPECT_THROW(parse_shard_spec("04"), CheckError);
  EXPECT_THROW(parse_shard_spec("x/4"), CheckError);
  EXPECT_THROW(parse_shard_spec("1/"), CheckError);
  EXPECT_THROW(parse_shard_spec("/4"), CheckError);
}

// ---------------------------------------------------------------------------
// Table-driven parsing: the diagnostics the CLI shim relies on.

TEST(ProcedureTable, UnknownFlagNamesProcedureAndNearestFlag) {
  const ProcedureDesc* campaign = find_procedure("campaign");
  ASSERT_NE(campaign, nullptr);
  Args args;
  const char* argv[] = {"--flps", "0.1"};
  const std::string error = parse_cli_args(*campaign, 2, argv, 0, args);
  EXPECT_NE(error.find("campaign"), std::string::npos);
  EXPECT_NE(error.find("--flips"), std::string::npos);
}

TEST(ProcedureTable, HelpRendersEveryProcedure) {
  const std::string help = help_text();
  for (const ProcedureDesc& desc : procedure_table()) {
    EXPECT_NE(help.find(std::string(desc.name)), std::string::npos)
        << "help omits " << desc.name;
  }
  const std::string campaign_help =
      procedure_help(*find_procedure("campaign"));
  EXPECT_NE(campaign_help.find("--capture-dir"), std::string::npos);
}

}  // namespace
}  // namespace referee
