#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "support/random.hpp"

namespace referee {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceConsumesExactlyOneDrawForEveryProbability) {
  // Regression: chance(p) used to early-return for p <= 0 / p >= 1 without
  // consuming a draw, so a p=0 baseline run drifted out of stream alignment
  // with any p > 0 run of the same seed.
  for (const double p : {-1.0, 0.0, 0.3, 0.5, 1.0, 2.0}) {
    Rng probed(4242);
    Rng reference(4242);
    probed.chance(p);
    reference.next();
    EXPECT_EQ(probed.next(), reference.next()) << "p=" << p;
  }
}

TEST(Rng, ChanceStreamsAlignAcrossProbabilities) {
  // Two experiments differing only in a probability parameter must see the
  // same downstream randomness.
  Rng baseline(99);
  Rng faulty(99);
  for (int i = 0; i < 100; ++i) {
    baseline.chance(0.0);
    faulty.chance(0.01);
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(baseline.next(), faulty.next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // astronomically unlikely
}

class SubsetSampling
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(SubsetSampling, SortedDistinctCorrectSize) {
  const auto [n, k] = GetParam();
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.sample_subset(n, k);
    ASSERT_EQ(s.size(), k);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
    for (const auto x : s) EXPECT_LT(x, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SubsetSampling,
    ::testing::Values(std::pair{1u, 0u}, std::pair{1u, 1u}, std::pair{10u, 3u},
                      std::pair{10u, 10u}, std::pair{1000u, 5u},
                      std::pair{50u, 49u}));

TEST(Rng, SampleSubsetUniformish) {
  // Every element of {0..4} should appear in roughly 2/5 of 2-subsets.
  Rng rng(23);
  std::vector<int> hits(5, 0);
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    for (const auto x : rng.sample_subset(5, 2)) ++hits[x];
  }
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.4, 0.05);
  }
}

TEST(Mix64, StatelessAndSpreading) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
}

}  // namespace
}  // namespace referee
