#include <gtest/gtest.h>

#include <algorithm>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "model/local_view.hpp"

namespace referee {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, AddRemoveEdge) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 2));
  EXPECT_FALSE(g.add_edge(2, 0));  // duplicate, either orientation
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.remove_edge(0, 2));
  EXPECT_FALSE(g.remove_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), CheckError);
}

TEST(Graph, OutOfRangeRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), CheckError);
}

TEST(Graph, NeighborsSorted) {
  Graph g(6);
  g.add_edge(3, 5);
  g.add_edge(3, 0);
  g.add_edge(3, 4);
  g.add_edge(3, 1);
  const auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(g.degree(3), 4u);
}

TEST(Graph, EdgesSortedLexicographically) {
  Graph g(4);
  g.add_edge(2, 3);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  const auto es = g.edges();
  EXPECT_TRUE(std::is_sorted(es.begin(), es.end()));
  EXPECT_EQ(es.size(), 3u);
}

TEST(Graph, EdgeNormalisesEndpoints) {
  EXPECT_EQ(Edge(3, 1), Edge(1, 3));
  EXPECT_EQ(Edge(3, 1).u, 1u);
}

TEST(Graph, EqualityIsStructural) {
  Graph a(3);
  a.add_edge(0, 1);
  Graph b(3);
  b.add_edge(0, 1);
  EXPECT_EQ(a, b);
  b.add_edge(1, 2);
  EXPECT_FALSE(a == b);
}

TEST(Graph, AddVerticesExtends) {
  Graph g(2);
  const Vertex first = g.add_vertices(3);
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(g.vertex_count(), 5u);
  g.add_edge(0, 4);
  EXPECT_TRUE(g.has_edge(0, 4));
}

TEST(Graph, MinMaxDegree) {
  Graph g = gen::star(4);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.min_degree(), 1u);
}

TEST(Graph, ConstructFromEdgeSpan) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 1}};
  Graph g(3, edges);
  EXPECT_EQ(g.edge_count(), 2u);  // duplicate collapsed
}

TEST(Csr, MirrorsGraph) {
  const Graph g = gen::grid(4, 5);
  const CsrGraph c(g);
  ASSERT_EQ(c.vertex_count(), g.vertex_count());
  ASSERT_EQ(c.edge_count(), g.edge_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = c.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(Csr, BulkConstructorCanonicalizes) {
  // Shuffled insertion order plus duplicate edges must come out identical
  // to the Graph-mediated CSR: rows sorted ascending and deduped.
  Rng rng(311);
  const Graph g = gen::gnp(30, 0.2, rng);
  auto edges = g.edges();
  std::vector<Edge> noisy(edges.rbegin(), edges.rend());
  noisy.insert(noisy.end(), edges.begin(), edges.begin() + edges.size() / 2);
  rng.shuffle(noisy);
  const CsrGraph bulk(30, noisy);
  const CsrGraph via_graph(g);
  ASSERT_EQ(bulk.vertex_count(), via_graph.vertex_count());
  EXPECT_EQ(bulk.edge_count(), via_graph.edge_count());
  for (Vertex v = 0; v < 30; ++v) {
    const auto a = bulk.neighbors(v);
    const auto b = via_graph.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << v;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << v;
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end())) << v;
  }
}

TEST(Csr, BulkConstructorRejectsBadEdges) {
  const std::vector<Edge> loop{{2, 2}};
  EXPECT_THROW(CsrGraph(5, loop), CheckError);
  const std::vector<Edge> oob{{1, 7}};
  EXPECT_THROW(CsrGraph(5, oob), CheckError);
}

TEST(Csr, BulkConstructorEmptyGraph) {
  const CsrGraph none(0, {});
  EXPECT_EQ(none.vertex_count(), 0u);
  EXPECT_EQ(none.edge_count(), 0u);
  const CsrGraph isolated(7, {});
  EXPECT_EQ(isolated.vertex_count(), 7u);
  EXPECT_EQ(isolated.edge_count(), 0u);
  for (Vertex v = 0; v < 7; ++v) EXPECT_TRUE(isolated.neighbors(v).empty());
}

TEST(Csr, BulkConstructorSingleVertexAndSingleEdge) {
  const CsrGraph one(1, {});
  EXPECT_EQ(one.vertex_count(), 1u);
  EXPECT_EQ(one.edge_count(), 0u);
  EXPECT_TRUE(one.neighbors(0).empty());
  const std::vector<Edge> e{{0, 1}};
  const CsrGraph pair(2, e);
  EXPECT_EQ(pair.edge_count(), 1u);
  EXPECT_EQ(pair.degree(0), 1u);
  EXPECT_EQ(pair.degree(1), 1u);
}

TEST(Csr, BulkConstructorDedupesBothOrientations) {
  // {1,2} listed forwards, backwards and repeated must collapse to one
  // undirected edge — the both-orientations case the row-local dedupe has
  // to get right because each orientation lands in a different row pass.
  const std::vector<Edge> edges{{1, 2}, {2, 1}, {1, 2}, {2, 1}, {0, 1}};
  const CsrGraph c(4, edges);
  EXPECT_EQ(c.edge_count(), 2u);
  EXPECT_EQ(c.degree(0), 1u);
  EXPECT_EQ(c.degree(1), 2u);
  EXPECT_EQ(c.degree(2), 1u);
  EXPECT_EQ(c.degree(3), 0u);
}

TEST(Csr, LocalViewPackBuiltFromCsrMatchesGraphPack) {
  Rng rng(313);
  const Graph g = gen::gnp(24, 0.2, rng);
  const CsrGraph csr(g);
  const LocalViewPack from_graph(g);
  const LocalViewPack from_csr(csr);
  ASSERT_EQ(from_csr.size(), from_graph.size());
  for (Vertex v = 0; v < from_graph.n(); ++v) {
    const auto a = from_graph.view(v);
    const auto b = from_csr.view(v);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.n, b.n);
    ASSERT_EQ(a.neighbor_ids.size(), b.neighbor_ids.size()) << v;
    EXPECT_TRUE(std::equal(a.neighbor_ids.begin(), a.neighbor_ids.end(),
                           b.neighbor_ids.begin()))
        << v;
  }
}

TEST(Csr, LocalViewPackFromBulkLoadedEdgeListSkipsGraphEntirely) {
  // The campaign-scale path: raw (noisy) edge list -> CSR -> view pack,
  // no vector-of-vectors Graph in between.
  Rng rng(317);
  const Graph g = gen::gnp(20, 0.25, rng);
  auto edges = g.edges();
  std::vector<Edge> noisy(edges.rbegin(), edges.rend());
  noisy.push_back(edges.front());  // duplicate
  const CsrGraph csr(20, noisy);
  const LocalViewPack pack(csr);
  const LocalViewPack reference(g);
  for (Vertex v = 0; v < 20; ++v) {
    const auto a = reference.view(v);
    const auto b = pack.view(v);
    ASSERT_EQ(a.neighbor_ids.size(), b.neighbor_ids.size()) << v;
    EXPECT_TRUE(std::equal(a.neighbor_ids.begin(), a.neighbor_ids.end(),
                           b.neighbor_ids.begin()))
        << v;
  }
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(from_edge_list(to_edge_list(g)), g);
}

TEST(Io, Graph6RoundTripSmall) {
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::gnp(1 + rng.below(40), 0.3, rng);
    EXPECT_EQ(from_graph6(to_graph6(g)), g);
  }
}

TEST(Io, Graph6RoundTripLargeHeader) {
  Rng rng(67);
  const Graph g = gen::gnp(100, 0.05, rng);  // forces the 3-byte size header
  EXPECT_EQ(from_graph6(to_graph6(g)), g);
}

TEST(Io, Graph6KnownEncoding) {
  // K3 on 3 vertices: n=3 -> 'B', bitmap 11 1 -> 111000 -> 'w' (63+56).
  EXPECT_EQ(to_graph6(gen::complete(3)), "Bw");
}

TEST(Io, AsciiMatrixShape) {
  const Graph g = gen::path(3);
  EXPECT_EQ(to_ascii_matrix(g), "010\n101\n010\n");
}

TEST(Transforms, PermuteRelabelsEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  const std::vector<Vertex> perm{2, 0, 1};
  const Graph h = permute(g, perm);
  EXPECT_TRUE(h.has_edge(2, 0));
  EXPECT_EQ(h.edge_count(), 1u);
}

TEST(Transforms, ComplementInvolution) {
  Rng rng(71);
  const Graph g = gen::gnp(12, 0.4, rng);
  EXPECT_EQ(complement(complement(g)), g);
  EXPECT_EQ(g.edge_count() + complement(g).edge_count(), 12u * 11 / 2);
}

TEST(Transforms, InducedSubgraph) {
  const Graph g = gen::cycle(6);
  const std::vector<Vertex> keep{0, 1, 2};
  const Graph h = induced_subgraph(g, keep);
  EXPECT_EQ(h.vertex_count(), 3u);
  EXPECT_EQ(h.edge_count(), 2u);  // path 0-1-2; edge 5-0 dropped
}

TEST(Transforms, DisjointUnionShifts) {
  const Graph g = disjoint_union(gen::complete(3), gen::path(2));
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Transforms, DoubleCoverDoublesEverything) {
  const Graph g = gen::cycle(5);
  const Graph cover = double_cover(g);
  EXPECT_EQ(cover.vertex_count(), 10u);
  EXPECT_EQ(cover.edge_count(), 10u);
  // C5 is non-bipartite: its double cover is the connected C10.
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(cover.degree(v), 2u);
}

TEST(Transforms, UniversalVertex) {
  const Graph g = with_universal_vertex(gen::path(4));
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.degree(4), 4u);
}

}  // namespace
}  // namespace referee
