#include <gtest/gtest.h>

#include "bigint/bigint.hpp"
#include "support/random.hpp"

namespace referee {
namespace {

TEST(BigInt, ConstructionAndSign) {
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_FALSE(BigInt(0).is_negative());
  EXPECT_TRUE(BigInt(-5).is_negative());
  EXPECT_FALSE(BigInt(5).is_negative());
  EXPECT_FALSE(BigInt(BigUInt(0), /*negative=*/true).is_negative());
}

TEST(BigInt, I64RoundTripIncludingMin) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(BigInt(v).to_i64(), v);
  }
}

TEST(BigInt, DecimalRoundTrip) {
  for (const char* s : {"0", "1", "-1", "123456789012345678901234567890",
                        "-987654321098765432109876543210"}) {
    EXPECT_EQ(BigInt::from_decimal(s).to_decimal(), s);
  }
}

TEST(BigInt, ArithmeticAgainstI64Reference) {
  Rng rng(53);
  for (int trial = 0; trial < 500; ++trial) {
    const auto a = static_cast<std::int64_t>(rng.next() >> 34) - (1 << 29);
    const auto b = static_cast<std::int64_t>(rng.next() >> 34) - (1 << 29);
    EXPECT_EQ((BigInt(a) + BigInt(b)).to_i64(), a + b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).to_i64(), a - b);
    EXPECT_EQ((BigInt(a) * BigInt(b)).to_i64(), a * b);
    EXPECT_EQ((-BigInt(a)).to_i64(), -a);
  }
}

TEST(BigInt, ComparisonAcrossSigns) {
  EXPECT_LT(BigInt(-10), BigInt(-5));
  EXPECT_LT(BigInt(-5), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(5));
  EXPECT_LT(BigInt(-1000000), BigInt(1));
  EXPECT_EQ(BigInt(7), BigInt(7));
  EXPECT_GT(BigInt(-3), BigInt(-4));
}

TEST(BigInt, DivExactHappyPath) {
  EXPECT_EQ(BigInt(84).div_exact(BigInt(7)).to_i64(), 12);
  EXPECT_EQ(BigInt(-84).div_exact(BigInt(7)).to_i64(), -12);
  EXPECT_EQ(BigInt(84).div_exact(BigInt(-7)).to_i64(), -12);
  EXPECT_EQ(BigInt(-84).div_exact(BigInt(-7)).to_i64(), 12);
}

TEST(BigInt, DivExactRejectsRemainder) {
  EXPECT_THROW(BigInt(85).div_exact(BigInt(7)), DecodeError);
}

TEST(BigInt, DivExactByZeroThrows) {
  EXPECT_THROW(BigInt(1).div_exact(BigInt(0)), CheckError);
}

TEST(BigInt, ToBigUIntRejectsNegative) {
  EXPECT_THROW(BigInt(-1).to_biguint(), CheckError);
  EXPECT_EQ(BigInt(42).to_biguint().to_u64(), 42u);
}

TEST(BigInt, AdditionCancellationZeroesSign) {
  BigInt a(5);
  a += BigInt(-5);
  EXPECT_TRUE(a.is_zero());
  EXPECT_FALSE(a.is_negative());
}

TEST(BigInt, MixedSignAccumulation) {
  BigInt acc;
  for (int i = 1; i <= 100; ++i) {
    acc += (i % 2 == 0) ? BigInt(i) : BigInt(-i);
  }
  EXPECT_EQ(acc.to_i64(), 50);  // -1+2-3+4-... = 50
}

TEST(BigInt, AssignI64CoversSignRange) {
  BigInt v(BigUInt(1) << 100, true);
  v.assign_i64(-7);
  EXPECT_EQ(v.to_i64(), -7);
  v.assign_i64(INT64_MIN);
  EXPECT_EQ(v.to_i64(), INT64_MIN);
  v.assign_i64(0);
  EXPECT_TRUE(v.is_zero());
  EXPECT_FALSE(v.is_negative());
}

TEST(BigInt, NegateFlipsInPlace) {
  BigInt v(9);
  v.negate();
  EXPECT_EQ(v.to_i64(), -9);
  BigInt zero;
  zero.negate();
  EXPECT_FALSE(zero.is_negative());
}

TEST(BigInt, MulU64AndMulIntoMatchOperatorStar) {
  BigInt a(-123456789);
  BigInt expect = a * BigInt(77);
  a.mul_u64(77);
  EXPECT_EQ(a, expect);
  a.mul_u64(0);
  EXPECT_TRUE(a.is_zero());
  EXPECT_FALSE(a.is_negative());

  const BigInt x(BigUInt(99) << 80, true);
  const BigInt y(BigUInt(3) << 64, false);
  BigInt out(12345);
  BigInt::mul_into(x, y, out);
  EXPECT_EQ(out, x * y);
  EXPECT_TRUE(out.is_negative());
}

TEST(BigInt, DivExactU64InPlace) {
  BigInt v(-21 * 5);
  v.div_exact_u64(5);
  EXPECT_EQ(v.to_i64(), -21);
  BigInt odd(7);
  EXPECT_THROW(odd.div_exact_u64(2), DecodeError);
  BigInt zero;
  zero.div_exact_u64(3);
  EXPECT_TRUE(zero.is_zero());
}

}  // namespace
}  // namespace referee
