// The SIMD shim's contract: whatever active_kernels() dispatches to is
// BIT-IDENTICAL to the always-compiled scalar reference — wrapping uint64
// power sums, OneSparse triple merges (mod-p fingerprints included), and
// prefix sums. CI runs this suite twice: once on the normal build (vector
// path active where the CPU has it) and once with -DREFEREE_FORCE_SCALAR=ON
// or REFEREE_FORCE_SCALAR=1 in the environment, so the fallback can never
// rot unnoticed.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "bigint/biguint.hpp"
#include "numth/power_sums.hpp"
#include "sketch/l0_sampler.hpp"
#include "sketch/modp.hpp"
#include "support/arena.hpp"
#include "support/bitstream.hpp"
#include "support/simd.hpp"

namespace referee {
namespace {

static_assert(simd::kFingerprintMod == modp::kP,
              "support/ restates the fingerprint modulus; it must track "
              "sketch/modp.hpp");

TEST(Simd, DispatchReportsAName) {
  EXPECT_NE(simd::scalar_kernels().name, nullptr);
  EXPECT_STREQ(simd::scalar_kernels().name, "scalar");
  EXPECT_NE(simd::active_kernels().name, nullptr);
}

TEST(Simd, PowerSumsKernelMatchesScalarBitForBit) {
  // Equality must hold even when the sums wrap: both paths only
  // reassociate wrapping uint64 additions.
  std::mt19937_64 rng(7);
  for (const std::size_t count : {0u, 1u, 3u, 4u, 5u, 17u, 100u, 1000u}) {
    for (const unsigned k : {1u, 3u, simd::kMaxVectorPowers,
                             simd::kMaxVectorPowers + 2}) {
      std::vector<std::uint32_t> ids(count);
      for (auto& id : ids) {
        id = static_cast<std::uint32_t>(rng());  // full 32-bit range
      }
      std::vector<std::uint64_t> want(k, 0xfeedfeedull);
      std::vector<std::uint64_t> got = want;
      simd::scalar_kernels().power_sums_u64(ids.data(), ids.size(), k,
                                            want.data());
      simd::active_kernels().power_sums_u64(ids.data(), ids.size(), k,
                                            got.data());
      EXPECT_EQ(want, got) << "count=" << count << " k=" << k;
    }
  }
}

TEST(Simd, PowerSumsKernelMatchesBigUIntReference) {
  // Within the power_sums_fit_u64 envelope, the kernel is exact — not just
  // self-consistent. Reference built independently via add_contribution.
  std::mt19937_64 rng(11);
  const unsigned k = 4;
  std::vector<NodeId> ids(37);
  for (auto& id : ids) {
    id = 1 + static_cast<NodeId>(rng() % 4096);  // 37 * 4096^4 << 2^64
  }
  ASSERT_TRUE(power_sums_fit_u64(4096, k, ids.size()));

  std::vector<BigUInt> ref(k);
  for (const NodeId id : ids) add_contribution(ref, id);

  std::vector<std::uint64_t> got(k);
  simd::active_kernels().power_sums_u64(ids.data(), ids.size(), k,
                                        got.data());
  for (unsigned p = 0; p < k; ++p) {
    BigUInt expect;
    expect.assign_u64(got[p]);
    EXPECT_EQ(ref[p], expect) << "p=" << p;
  }
}

TEST(Simd, PowerSumsIntoAgreesAcrossFastAndSlowPaths) {
  // power_sums_into picks the u64 kernel when the sums fit and the BigUInt
  // route otherwise; both must produce the same BigUInt values. Drive each
  // path explicitly: small ids fit, a max-range id forces the slow route.
  DecodeArena arena;
  const unsigned k = 3;
  for (const bool force_slow : {false, true}) {
    std::vector<NodeId> ids{5, 9, 12, 700, 31};
    if (force_slow) ids.push_back(0xffffffffu);  // d * n^k overflows
    std::vector<BigUInt> ref(k);
    for (const NodeId id : ids) add_contribution(ref, id);

    std::vector<BigUInt> out;
    power_sums_into(ids, k, arena, out);
    ASSERT_GE(out.size(), std::size_t{k});
    for (unsigned p = 0; p < k; ++p) {
      EXPECT_EQ(out[p], ref[p]) << "p=" << p << " slow=" << force_slow;
    }
    EXPECT_EQ(power_sums(ids, k), ref) << "slow=" << force_slow;
  }
}

TEST(Simd, MergeOneSparseMatchesScalarAndModpReference) {
  // Random signed weight/index sums (wrapping adds) and fingerprints across
  // the full [0, kP] operand range — including the kP boundary the wire
  // format can produce.
  std::mt19937_64 rng(13);
  for (const std::size_t triples : {0u, 1u, 3u, 4u, 5u, 17u, 256u}) {
    std::vector<std::int64_t> dst(3 * triples);
    std::vector<std::int64_t> src(3 * triples);
    for (std::size_t t = 0; t < triples; ++t) {
      for (auto* a : {&dst, &src}) {
        (*a)[3 * t] = static_cast<std::int64_t>(rng());      // weight_sum
        (*a)[3 * t + 1] = static_cast<std::int64_t>(rng());  // index_sum
        const std::uint64_t f =
            t % 5 == 0 ? modp::kP : rng() % (modp::kP + 1);
        (*a)[3 * t + 2] = static_cast<std::int64_t>(f);      // fingerprint
      }
    }

    // Independent reference: the OneSparse member merge, cell by cell.
    std::vector<std::int64_t> want = dst;
    for (std::size_t t = 0; t < triples; ++t) {
      OneSparse a{want[3 * t], want[3 * t + 1],
                  static_cast<std::uint64_t>(want[3 * t + 2])};
      const OneSparse b{src[3 * t], src[3 * t + 1],
                        static_cast<std::uint64_t>(src[3 * t + 2])};
      a.merge(b);
      want[3 * t] = a.weight_sum;
      want[3 * t + 1] = a.index_sum;
      want[3 * t + 2] = static_cast<std::int64_t>(a.fingerprint);
    }

    std::vector<std::int64_t> scalar_got = dst;
    simd::scalar_kernels().merge_onesparse(scalar_got.data(), src.data(),
                                           triples);
    std::vector<std::int64_t> active_got = dst;
    simd::active_kernels().merge_onesparse(active_got.data(), src.data(),
                                           triples);
    EXPECT_EQ(scalar_got, want) << "triples=" << triples;
    EXPECT_EQ(active_got, want) << "triples=" << triples;
  }
}

TEST(Simd, EdgeSketchMergeStaysLinear) {
  // End-to-end through the kernel-backed EdgeSketch::merge: merging two
  // sketches equals sketching the union directly (linearity), down to the
  // serialized bytes.
  const std::uint64_t n = 64, seed = 99;
  EdgeSketch a(n, seed), b(n, seed), direct(n, seed);
  for (Vertex v = 0; v + 1 < 20; ++v) {
    a.add_incident_edge(v, v + 1);
    direct.add_incident_edge(v, v + 1);
  }
  for (Vertex v = 20; v + 2 < 60; v += 2) {
    b.add_incident_edge(v, v + 2);
    direct.add_incident_edge(v, v + 2);
  }
  a.merge(b);
  BitWriter merged_bits, direct_bits;
  a.write(merged_bits);
  direct.write(direct_bits);
  EXPECT_EQ(merged_bits.bytes(), direct_bits.bytes());
}

TEST(Simd, PrefixSumMatchesPartialSum) {
  std::mt19937_64 rng(17);
  for (const std::size_t count : {0u, 1u, 3u, 4u, 5u, 17u, 1000u}) {
    std::vector<std::uint64_t> data(count);
    for (auto& x : data) x = rng();  // wraparound included
    std::vector<std::uint64_t> want(count);
    std::partial_sum(data.begin(), data.end(), want.begin());

    std::vector<std::uint64_t> scalar_got = data;
    simd::scalar_kernels().prefix_sum_u64(scalar_got.data(), count);
    std::vector<std::uint64_t> active_got = data;
    simd::active_kernels().prefix_sum_u64(active_got.data(), count);
    EXPECT_EQ(scalar_got, want) << "count=" << count;
    EXPECT_EQ(active_got, want) << "count=" << count;

    std::vector<std::size_t> sizes(data.begin(), data.end());
    simd::prefix_sum_sizes(sizes.data(), sizes.size());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(sizes[i], static_cast<std::size_t>(want[i]));
    }
  }
}

}  // namespace
}  // namespace referee
