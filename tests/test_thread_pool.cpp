#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace referee {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForMatchesSequentialSum) {
  ThreadPool pool(8);
  std::vector<std::uint64_t> out(5000);
  pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] = i * i; });
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < out.size(); ++i) expect += i * i;
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}), expect);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [](std::size_t i) {
                          if (i == 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ChunksPropagateTypedExceptions) {
  // The campaign backends rely on chunk exceptions resurfacing with their
  // original type (a CampaignError must not decay to std::exception).
  struct CellFailure : std::runtime_error {
    explicit CellFailure(std::size_t i)
        : std::runtime_error("cell failed"), index(i) {}
    std::size_t index;
  };
  ThreadPool pool(4);
  try {
    pool.parallel_for_chunks(0, 1000, [](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (i == 417) throw CellFailure(i);
      }
    });
    FAIL() << "expected CellFailure";
  } catch (const CellFailure& e) {
    EXPECT_EQ(e.index, 417u);
  }
}

TEST(ThreadPool, ChunksAbandonRemainingWorkAfterFailure) {
  // A throwing chunk must not let the pool grind through the rest of the
  // range: unstarted chunks are abandoned once the first error lands.
  ThreadPool pool(2);
  std::atomic<std::size_t> executed{0};
  const std::size_t total = 100000;
  EXPECT_THROW(
      pool.parallel_for_chunks(
          0, total,
          [&](std::size_t lo, std::size_t hi) {
            executed.fetch_add(hi - lo);
            if (lo == 0) throw std::runtime_error("first chunk dies");
          },
          /*grain=*/1),
      std::runtime_error);
  EXPECT_LT(executed.load(), total);
}

TEST(ThreadPool, ChunksCompleteWhenEveryChunkThrows) {
  // Worst case: all chunks fail. The call must return (no hang on the
  // done condition variable, no terminate from a second in-flight
  // exception) and rethrow the first error.
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.parallel_for_chunks(
                     0, 64,
                     [](std::size_t, std::size_t) {
                       throw std::logic_error("every chunk");
                     },
                     /*grain=*/1),
                 std::logic_error);
  }
}

TEST(ThreadPool, ChunksUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_chunks(
                   0, 100,
                   [](std::size_t, std::size_t) {
                     throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_chunks(0, 5000, [&](std::size_t lo, std::size_t hi) {
    covered.fetch_add(hi - lo);
  });
  EXPECT_EQ(covered.load(), 5000u);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 10, [](std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> counter{0};
  pool.parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(MaybeParallelFor, NullPoolRunsInline) {
  std::vector<int> order;
  maybe_parallel_for(nullptr, 0, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MaybeParallelFor, SmallRangeStaysSerialEvenWithPool) {
  ThreadPool pool(4);
  std::vector<int> order;  // unsynchronised: safe only if run serially
  maybe_parallel_for(
      &pool, 0, 10,
      [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
      /*serial_cutoff=*/256);
  EXPECT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace referee
