#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace referee {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForMatchesSequentialSum) {
  ThreadPool pool(8);
  std::vector<std::uint64_t> out(5000);
  pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] = i * i; });
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < out.size(); ++i) expect += i * i;
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}), expect);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [](std::size_t i) {
                          if (i == 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 10, [](std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> counter{0};
  pool.parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(MaybeParallelFor, NullPoolRunsInline) {
  std::vector<int> order;
  maybe_parallel_for(nullptr, 0, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MaybeParallelFor, SmallRangeStaysSerialEvenWithPool) {
  ThreadPool pool(4);
  std::vector<int> order;  // unsynchronised: safe only if run serially
  maybe_parallel_for(
      &pool, 0, 10,
      [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
      /*serial_cutoff=*/256);
  EXPECT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace referee
