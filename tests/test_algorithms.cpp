#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"

namespace referee {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = gen::path(5);
  const auto d = bfs_distances(g, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, UnreachableMarked) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Components, CountsAndLabels) {
  Graph g = disjoint_union(gen::cycle(3), gen::path(4));
  g.add_vertices(2);  // two isolated vertices
  EXPECT_EQ(component_count(g), 4u);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Components, ConnectedEdgeCases) {
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_FALSE(is_connected(Graph(2)));
  EXPECT_TRUE(is_connected(gen::complete(5)));
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(gen::path(6)).value(), 5u);
  EXPECT_EQ(diameter(gen::cycle(6)).value(), 3u);
  EXPECT_EQ(diameter(gen::cycle(7)).value(), 3u);
  EXPECT_EQ(diameter(gen::complete(9)).value(), 1u);
  EXPECT_EQ(diameter(gen::star(5)).value(), 2u);
  EXPECT_EQ(diameter(gen::hypercube(5)).value(), 5u);
  EXPECT_EQ(diameter(gen::grid(3, 7)).value(), 2u + 6u);
}

TEST(Diameter, DisconnectedIsNullopt) {
  EXPECT_FALSE(diameter(disjoint_union(gen::path(2), gen::path(2))).has_value());
  EXPECT_FALSE(diameter(Graph(0)).has_value());
}

TEST(Eccentricity, CentreVsLeaf) {
  const Graph g = gen::path(7);
  EXPECT_EQ(eccentricity(g, 3).value(), 3u);
  EXPECT_EQ(eccentricity(g, 0).value(), 6u);
}

TEST(Girth, KnownValues) {
  EXPECT_EQ(girth(gen::cycle(5)).value(), 5u);
  EXPECT_EQ(girth(gen::complete(4)).value(), 3u);
  EXPECT_EQ(girth(gen::grid(3, 3)).value(), 4u);
  EXPECT_EQ(girth(gen::hypercube(3)).value(), 4u);
  EXPECT_EQ(girth(gen::complete_bipartite(2, 3)).value(), 4u);
  EXPECT_FALSE(girth(gen::random_tree(20, *std::make_unique<Rng>(7))).has_value());
}

TEST(Girth, TriangleWithTail) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_EQ(girth(g).value(), 3u);
}

TEST(Bipartition, EvenCycleYes) {
  const auto side = bipartition(gen::cycle(8));
  ASSERT_TRUE(side.has_value());
  const Graph g = gen::cycle(8);
  for (const Edge& e : g.edges()) EXPECT_NE((*side)[e.u], (*side)[e.v]);
}

TEST(Bipartition, OddCycleNo) {
  EXPECT_FALSE(is_bipartite(gen::cycle(9)));
  EXPECT_FALSE(is_bipartite(gen::complete(3)));
}

TEST(Bipartition, ForestAlwaysBipartite) {
  Rng rng(173);
  EXPECT_TRUE(is_bipartite(gen::random_tree(50, rng)));
}

TEST(SpanningForest, SizeMatchesComponents) {
  const Graph g = disjoint_union(gen::cycle(5), gen::grid(3, 3));
  const auto forest = spanning_forest(g);
  EXPECT_EQ(forest.size(), g.vertex_count() - component_count(g));
  // Forest edges must be edges of g and connect the same components.
  Graph f(g.vertex_count());
  for (const Edge& e : forest) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    f.add_edge(e.u, e.v);
  }
  EXPECT_EQ(connected_components(f), connected_components(g));
}

TEST(EulerBound, PlanarFamiliesPass) {
  EXPECT_TRUE(satisfies_euler_planar_bound(gen::grid(5, 5)));
  EXPECT_TRUE(satisfies_euler_planar_bound(gen::cycle(10)));
  EXPECT_FALSE(satisfies_euler_planar_bound(gen::complete(5)));
  // Q5 (n=32, m=80 <= 90) slips under the bound despite being non-planar —
  // it is only a necessary condition; Q6 (m=192 > 186) does not.
  EXPECT_TRUE(satisfies_euler_planar_bound(gen::hypercube(5)));
  EXPECT_FALSE(satisfies_euler_planar_bound(gen::hypercube(6)));
}

TEST(TreewidthHeuristic, KnownBounds) {
  EXPECT_EQ(treewidth_upper_bound_min_degree(gen::path(10)), 1u);
  EXPECT_EQ(treewidth_upper_bound_min_degree(gen::cycle(10)), 2u);
  EXPECT_EQ(treewidth_upper_bound_min_degree(gen::complete(6)), 5u);
  EXPECT_LE(treewidth_upper_bound_min_degree(gen::grid(4, 4)), 4u);
}

}  // namespace
}  // namespace referee
