// The multi-round scaffolding (§IV's fixed-rounds question) and the
// adaptive protocol that discovers k by doubling.
#include <gtest/gtest.h>

#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "model/simulator.hpp"
#include "protocols/adaptive_degeneracy.hpp"

namespace referee {
namespace {

TEST(AdaptiveProtocol, ReconstructsWithoutKnowingK) {
  Rng rng(521);
  const Simulator sim;
  const AdaptiveDegeneracyReconstruction protocol;
  for (const auto& g :
       {gen::random_tree(50, rng), gen::grid(6, 7),
        gen::random_apollonian(40, rng), gen::complete(9),
        gen::random_k_degenerate(60, 5, rng, /*exactly_k=*/true)}) {
    EXPECT_EQ(sim.run_multi_round(g, protocol), g);
  }
}

TEST(AdaptiveProtocol, RoundCountIsLogOfDegeneracy) {
  const Simulator sim;
  const AdaptiveDegeneracyReconstruction protocol;
  struct Case {
    Graph g;
    unsigned expected_rounds;  // first r with 2^r >= degeneracy
  };
  Rng rng(523);
  const std::vector<Case> cases{
      {gen::random_tree(40, rng), 1},        // degeneracy 1 -> k=1 works
      {gen::cycle(20), 2},                   // degeneracy 2 -> k=2 (round 2)
      {gen::random_apollonian(30, rng), 3},  // degeneracy 3 -> k=4
      {gen::complete(6), 4},                 // degeneracy 5 -> k=8
  };
  for (const auto& c : cases) {
    MultiRoundReport report;
    EXPECT_EQ(sim.run_multi_round(c.g, protocol, &report), c.g);
    EXPECT_EQ(report.rounds_used, c.expected_rounds);
  }
}

TEST(AdaptiveProtocol, UplinkStaysQuadraticInFinalK) {
  // Total uplink across rounds is dominated by the last round: the doubling
  // schedule costs at most a constant factor over knowing k outright.
  Rng rng(541);
  const Graph g = gen::random_k_degenerate(80, 4, rng, /*exactly_k=*/true);
  const Simulator sim;
  MultiRoundReport report;
  EXPECT_EQ(sim.run_multi_round(g, AdaptiveDegeneracyReconstruction(), &report),
            g);
  ASSERT_GE(report.per_round.size(), 2u);
  const double last = static_cast<double>(report.per_round.back().max_bits);
  double earlier = 0;
  for (std::size_t r = 0; r + 1 < report.per_round.size(); ++r) {
    earlier += static_cast<double>(report.per_round[r].max_bits);
  }
  EXPECT_LT(earlier, 2.0 * last);  // geometric series bound
}

TEST(AdaptiveProtocol, BroadcastIsOneBitPerRetry) {
  const Simulator sim;
  MultiRoundReport report;
  sim.run_multi_round(gen::complete(6), AdaptiveDegeneracyReconstruction(),
                      &report);
  // 3 retries (k = 1, 2, 4 fail), success at k = 8.
  EXPECT_EQ(report.broadcast_bits, 3u);
}

TEST(AdaptiveProtocol, RoundCapEnforced) {
  const Simulator sim;
  // K10 has degeneracy 9, needing k = 16 (round 5); cap at 2 rounds.
  const AdaptiveDegeneracyReconstruction capped(2);
  EXPECT_THROW(sim.run_multi_round(gen::complete(10), capped), DecodeError);
}

TEST(AdaptiveProtocol, ParallelAndSequentialAgree) {
  Rng rng(547);
  const Graph g = gen::random_k_degenerate(100, 3, rng);
  ThreadPool pool(4);
  const Simulator par(&pool);
  const Simulator seq(nullptr);
  const AdaptiveDegeneracyReconstruction protocol;
  EXPECT_EQ(par.run_multi_round(g, protocol),
            seq.run_multi_round(g, protocol));
}

}  // namespace
}  // namespace referee
