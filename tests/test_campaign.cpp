// Campaign runner: grid expansion, determinism (same grid -> byte-identical
// JSON regardless of sharding), outcome classification, and the referee
// contract (faults may cause loud failures, never silent lies) at campaign
// scale.
#include <gtest/gtest.h>

#include "model/campaign.hpp"

namespace referee {
namespace {

CampaignConfig small_config() {
  CampaignConfig config;
  config.generators = {"kdeg", "tree"};
  config.sizes = {16, 24};
  config.protocols = {"degeneracy", "forest", "stats"};
  config.seeds = {1, 2};
  return config;
}

TEST(Campaign, DefaultGridIsCampaignScale) {
  const auto grid = expand_grid(CampaignConfig{});
  EXPECT_GE(grid.size(), 100u);
}

TEST(Campaign, ExpandGridIsCartesianProduct) {
  const auto config = small_config();
  const auto grid = expand_grid(config);
  EXPECT_EQ(grid.size(), 2u * 2u * 3u * 2u);
  // Deterministic order: generator-major.
  EXPECT_EQ(grid.front().generator, "kdeg");
  EXPECT_EQ(grid.back().generator, "tree");
}

TEST(Campaign, SameGridSameJsonBytes) {
  const auto grid = expand_grid(small_config());
  const CampaignRunner runner;
  const auto a = campaign_json(grid, runner.run(grid));
  const auto b = campaign_json(grid, runner.run(grid));
  EXPECT_EQ(a, b);
}

TEST(Campaign, ShardingDoesNotChangeResults) {
  const auto grid = expand_grid(small_config());
  const CampaignRunner sequential;
  ThreadPool pool(4);
  const CampaignRunner sharded(&pool);
  EXPECT_EQ(campaign_json(grid, sequential.run(grid)),
            campaign_json(grid, sharded.run(grid)));
}

TEST(Campaign, FaultFreeInClassScenariosAreExact) {
  CampaignConfig config;
  config.generators = {"kdeg"};
  config.sizes = {20};
  config.protocols = {"degeneracy"};
  config.seeds = {1, 2, 3, 4, 5};
  const auto grid = expand_grid(config);
  const CampaignRunner runner;
  for (const auto& res : runner.run(grid)) {
    EXPECT_EQ(res.outcome, "exact");
    EXPECT_TRUE(res.contract_ok);
    EXPECT_GT(res.report.max_bits, 0u);
  }
}

TEST(Campaign, OutOfClassScenariosFailLoudlyNotSilently) {
  // The forest protocol on Apollonian networks (full of cycles) must refuse.
  CampaignConfig config;
  config.generators = {"apollonian"};
  config.sizes = {20};
  config.protocols = {"forest"};
  config.seeds = {1, 2, 3};
  const auto grid = expand_grid(config);
  const CampaignRunner runner;
  for (const auto& res : runner.run(grid)) {
    EXPECT_EQ(res.outcome, "loud");
    EXPECT_TRUE(res.contract_ok);
  }
}

TEST(Campaign, HeavyFaultsNeverCauseSilentWrong) {
  // Power-sum validation makes the degeneracy decoder fault-evident; the
  // campaign must classify every corrupted run as exact or loud.
  CampaignConfig config;
  config.generators = {"kdeg", "tree"};
  config.sizes = {16};
  config.protocols = {"degeneracy"};
  config.seeds = {1, 2, 3};
  config.fault_plans = {
      FaultPlan{.bit_flip_chance = 0.5, .truncate_chance = 0.0},
      FaultPlan{.bit_flip_chance = 0.0, .truncate_chance = 0.5},
  };
  const auto grid = expand_grid(config);
  const CampaignRunner runner;
  std::size_t loud = 0;
  for (const auto& res : runner.run(grid)) {
    EXPECT_NE(res.outcome, "silent-wrong");
    if (res.outcome == "loud") ++loud;
  }
  EXPECT_GT(loud, 0u);  // heavy corruption must actually trip decoders
}

TEST(Campaign, AggregatesAddUp) {
  const auto grid = expand_grid(small_config());
  const CampaignRunner runner;
  const auto results = runner.run(grid);
  std::size_t counted = 0;
  for (const auto& agg : aggregate_campaign(grid, results)) {
    EXPECT_EQ(agg.scenarios, agg.ok + agg.loud + agg.silent_wrong);
    counted += agg.scenarios;
  }
  EXPECT_EQ(counted, grid.size());
}

TEST(Campaign, EveryAdvertisedGeneratorAndProtocolRuns) {
  CampaignConfig config;
  config.generators = campaign_generators();
  config.sizes = {16};
  config.protocols = campaign_protocols();
  config.seeds = {1};
  const auto grid = expand_grid(config);
  const CampaignRunner runner;
  const auto results = runner.run(grid);
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].contract_ok)
        << grid[i].generator << " / " << grid[i].protocol;
  }
}

}  // namespace
}  // namespace referee
