// One graph pipeline: every ground-truth algorithm answers bit-identically
// on Graph and CsrGraph inputs, because the overloads share one GraphView
// body. This suite is the property pin behind that claim — campaign graphs
// across every generator family, plus the degenerate shapes (empty graph,
// single vertex, star, path) and the canonical-form guards (self-loop
// rejection on both representations).
#include <gtest/gtest.h>

#include <vector>

#include "campaign/scenario.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "graph/degeneracy.hpp"
#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace referee {
namespace {

/// Every ground truth the campaign classifier consults, both
/// representations, one assertion block. `label` names the graph in
/// failure output.
void expect_truths_match(const Graph& g, const std::string& label) {
  const CsrGraph csr(g);
  DecodeArena& arena = DecodeArena::for_current_thread();

  // The view accessors themselves agree.
  const GraphView gv(g);
  const GraphView cv(csr);
  ASSERT_EQ(gv.vertex_count(), cv.vertex_count()) << label;
  ASSERT_EQ(gv.edge_count(), cv.edge_count()) << label;
  EXPECT_EQ(gv.max_degree(), cv.max_degree()) << label;
  EXPECT_TRUE(graphs_equal(g, cv)) << label;

  // Degeneracy: full bucket result, flat arena value, bound checks.
  const DegeneracyResult dg = degeneracy(g);
  const DegeneracyResult dc = degeneracy(csr);
  EXPECT_EQ(dg.degeneracy, dc.degeneracy) << label;
  EXPECT_EQ(dg.removal_order, dc.removal_order) << label;
  EXPECT_EQ(dg.core_number, dc.core_number) << label;
  EXPECT_EQ(degeneracy_value(gv, arena), dg.degeneracy) << label;
  EXPECT_EQ(degeneracy_value(cv, arena), dg.degeneracy) << label;
  for (const std::size_t k : {std::size_t{0}, dg.degeneracy,
                              dg.degeneracy + 1}) {
    EXPECT_EQ(has_degeneracy_at_most(g, k), has_degeneracy_at_most(csr, k))
        << label << " k=" << k;
    EXPECT_EQ(has_degeneracy_at_most(g, k),
              has_degeneracy_at_most(cv, k, arena))
        << label << " k=" << k;
  }

  // The removal order reversed is a valid degeneracy-elimination order in
  // the paper's convention — on both representations — and no order at all
  // is valid below the degeneracy.
  std::vector<Vertex> paper_order(dg.removal_order.rbegin(),
                                  dg.removal_order.rend());
  EXPECT_TRUE(is_valid_elimination_order(g, paper_order, dg.degeneracy))
      << label;
  EXPECT_TRUE(is_valid_elimination_order(csr, paper_order, dg.degeneracy))
      << label;
  if (dg.degeneracy > 0) {
    EXPECT_FALSE(is_valid_elimination_order(g, paper_order,
                                            dg.degeneracy - 1))
        << label;
    EXPECT_FALSE(is_valid_elimination_order(csr, paper_order,
                                            dg.degeneracy - 1))
        << label;
  }

  for (const std::size_t k : {std::size_t{1}, std::size_t{2}}) {
    const auto gg = generalized_degeneracy_order(g, k);
    const auto gc = generalized_degeneracy_order(csr, k);
    EXPECT_EQ(gg.feasible, gc.feasible) << label << " k=" << k;
    EXPECT_EQ(gg.removal_order, gc.removal_order) << label << " k=" << k;
    EXPECT_EQ(gg.used_complement, gc.used_complement) << label << " k=" << k;
  }

  // Connectivity / bipartiteness / forests.
  EXPECT_EQ(component_count(g), component_count(csr)) << label;
  EXPECT_EQ(component_count(g), component_count(gv, arena)) << label;
  EXPECT_EQ(component_count(g), component_count(cv, arena)) << label;
  EXPECT_EQ(is_bipartite(g), is_bipartite(csr)) << label;
  EXPECT_EQ(is_bipartite(g), is_bipartite(cv, arena)) << label;
  EXPECT_EQ(spanning_forest(g), spanning_forest(csr)) << label;
  EXPECT_EQ(is_forest(g), is_forest(csr)) << label;
  EXPECT_EQ(is_forest(g), is_forest(cv, arena)) << label;
}

TEST(CsrTruth, EveryGroundTruthMatchesAcrossRepresentationsOnCampaignGraphs) {
  for (const auto& generator : campaign_generators()) {
    for (const std::size_t n : {9u, 33u, 64u}) {
      for (const std::uint64_t seed : {1u, 2u}) {
        ScenarioSpec spec;
        spec.generator = generator;
        spec.n = n;
        spec.seed = seed;
        const Graph g = make_campaign_graph(spec);
        expect_truths_match(g, generator + "/n=" + std::to_string(n) +
                                   "/seed=" + std::to_string(seed));
      }
    }
  }
}

TEST(CsrTruth, EmptyAndSingletonGraphs) {
  expect_truths_match(Graph(0), "empty");
  expect_truths_match(Graph(1), "singleton");
  expect_truths_match(Graph(5), "five isolated vertices");

  const CsrGraph empty_csr{Graph(0)};
  DecodeArena& arena = DecodeArena::for_current_thread();
  EXPECT_EQ(degeneracy(empty_csr).degeneracy, 0u);
  EXPECT_EQ(degeneracy_value(GraphView(empty_csr), arena), 0u);
  EXPECT_EQ(component_count(empty_csr), 0u);
  EXPECT_TRUE(is_bipartite(empty_csr));
  EXPECT_TRUE(is_forest(empty_csr));
  EXPECT_TRUE(spanning_forest(empty_csr).empty());
}

TEST(CsrTruth, StarAndPathShapes) {
  Graph star(8);
  for (Vertex v = 1; v < 8; ++v) star.add_edge(0, v);
  expect_truths_match(star, "star");
  EXPECT_EQ(degeneracy(CsrGraph(star)).degeneracy, 1u);
  EXPECT_TRUE(is_forest(CsrGraph(star)));

  Graph path(9);
  for (Vertex v = 0; v + 1 < 9; ++v) path.add_edge(v, v + 1);
  expect_truths_match(path, "path");
  const CsrGraph path_csr(path);
  EXPECT_EQ(component_count(path_csr), 1u);
  EXPECT_TRUE(is_bipartite(path_csr));
  EXPECT_EQ(spanning_forest(path_csr).size(), 8u);
}

TEST(CsrTruth, BothRepresentationsRejectSelfLoops) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), CheckError);
  const std::vector<Edge> loop{{2, 2}};
  EXPECT_THROW(CsrGraph(3, loop), CheckError);
}

TEST(CsrTruth, GraphsEqualDetectsEveryDifference) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const CsrGraph same(g);
  EXPECT_TRUE(graphs_equal(g, same));
  EXPECT_TRUE(graphs_equal(g, GraphView(g)));

  Graph extra = g;
  extra.add_edge(2, 3);
  EXPECT_FALSE(graphs_equal(extra, GraphView(same)));
  EXPECT_FALSE(graphs_equal(g, GraphView(CsrGraph(extra))));
  EXPECT_FALSE(graphs_equal(Graph(5), GraphView(same)));
}

TEST(CsrTruth, ArenaBackedTruthsAreAllocationFreeOnceWarm) {
  // The campaign classifier's contract: a second identical sweep of the
  // arena-backed ground truths performs zero arena growth.
  ScenarioSpec spec;
  spec.generator = "gnp";
  spec.n = 64;
  spec.seed = 4;
  const Graph g = make_campaign_graph(spec);
  const CsrGraph csr(g);
  const GraphView v(csr);
  DecodeArena& arena = DecodeArena::for_current_thread();

  std::size_t sink = 0;
  auto sweep = [&] {
    sink += degeneracy_value(v, arena);
    sink += has_degeneracy_at_most(v, 3, arena) ? 1u : 0u;
    sink += component_count(v, arena);
    sink += is_bipartite(v, arena) ? 1u : 0u;
    sink += is_forest(v, arena) ? 1u : 0u;
  };
  sweep();  // warm
  const std::size_t first_sink = sink;
  const auto warm_growth = arena.stats().growth_events;
  const auto warm_checkouts = arena.stats().checkouts;
  sweep();
  EXPECT_EQ(sink, 2 * first_sink);  // deterministic truths, same answers
  EXPECT_GT(arena.stats().checkouts, warm_checkouts);
  EXPECT_EQ(arena.stats().growth_events, warm_growth)
      << "warm ground-truth sweep allocated scratch";
}

}  // namespace
}  // namespace referee
