// Failure-injection sweeps: under any rate of bit flips and truncations the
// decoders must either recover the exact graph (flip in a don't-care bit) or
// fail loudly — never return a different graph. The generalised and sketch
// protocols get the same treatment.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/simulator.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/generalized_degeneracy.hpp"
#include "sketch/connectivity.hpp"

namespace referee {
namespace {

struct FaultCase {
  double flip;
  double truncate;
};

class FaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultSweep, DegeneracyNeverSilentlyWrong) {
  const auto [flip, truncate] = GetParam();
  Rng rng(557);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  int silent_wrong = 0;
  int loud = 0;
  int recovered = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = gen::random_k_degenerate(25, 2, rng);
    auto msgs = sim.run_local_phase(g, protocol);
    Simulator::inject_faults(
        msgs, FaultPlan{.bit_flip_chance = flip, .truncate_chance = truncate,
                        .seed = 7000u + static_cast<std::uint64_t>(trial)});
    try {
      const Graph h = protocol.reconstruct(25, msgs);
      (h == g ? recovered : silent_wrong) += 1;
    } catch (const DecodeError&) {
      ++loud;
    }
  }
  EXPECT_EQ(silent_wrong, 0);
  if (flip + truncate > 0.5) {
    EXPECT_GT(loud, 0);  // heavy corruption must actually trip the checks
  }
}

TEST_P(FaultSweep, GeneralizedNeverSilentlyWrong) {
  const auto [flip, truncate] = GetParam();
  Rng rng(563);
  const Simulator sim;
  const GeneralizedDegeneracyReconstruction protocol(2);
  int silent_wrong = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::random_k_degenerate(20, 2, rng);
    auto msgs = sim.run_local_phase(g, protocol);
    Simulator::inject_faults(
        msgs, FaultPlan{.bit_flip_chance = flip, .truncate_chance = truncate,
                        .seed = 8000u + static_cast<std::uint64_t>(trial)});
    try {
      const Graph h = protocol.reconstruct(20, msgs);
      if (!(h == g)) ++silent_wrong;
    } catch (const DecodeError&) {
    }
  }
  EXPECT_EQ(silent_wrong, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, FaultSweep,
    ::testing::Values(FaultCase{0.1, 0.0}, FaultCase{0.5, 0.0},
                      FaultCase{1.0, 0.0}, FaultCase{0.0, 0.3},
                      FaultCase{0.0, 1.0}, FaultCase{0.5, 0.5}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return "flip" + std::to_string(static_cast<int>(info.param.flip * 100)) +
             "_trunc" +
             std::to_string(static_cast<int>(info.param.truncate * 100));
    });

TEST(FaultHandling, SketchDecodeSurvivesTruncationLoudly) {
  Rng rng(569);
  const Graph g = gen::connected_gnp(30, 0.12, rng);
  const SketchConnectivityProtocol protocol(
      SketchParams{.seed = 31, .rounds = 0, .copies = 3});
  const Simulator sim;
  auto msgs = sim.run_local_phase(g, protocol);
  msgs[5].truncate(msgs[5].bit_size() / 3);
  EXPECT_THROW(protocol.decode(30, msgs), DecodeError);
}

TEST(FaultHandling, EmptyTranscriptRejectedEverywhere) {
  std::vector<Message> none;
  EXPECT_THROW(DegeneracyReconstruction(2).reconstruct(5, none), DecodeError);
  EXPECT_THROW(GeneralizedDegeneracyReconstruction(2).reconstruct(5, none),
               DecodeError);
}

}  // namespace
}  // namespace referee
