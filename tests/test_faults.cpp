// Failure-injection sweeps: under any rate of bit flips and truncations the
// decoders must either recover the exact graph (flip in a don't-care bit) or
// fail loudly — never return a different graph. The generalised and sketch
// protocols get the same treatment.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/simulator.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/generalized_degeneracy.hpp"
#include "sketch/connectivity.hpp"

namespace referee {
namespace {

struct FaultCase {
  double flip;
  double truncate;
};

class FaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultSweep, DegeneracyNeverSilentlyWrong) {
  const auto [flip, truncate] = GetParam();
  Rng rng(557);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  int silent_wrong = 0;
  int loud = 0;
  int recovered = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = gen::random_k_degenerate(25, 2, rng);
    auto msgs = sim.run_local_phase(g, protocol);
    Simulator::inject_faults(
        msgs, FaultPlan{.bit_flip_chance = flip, .truncate_chance = truncate,
                        .seed = 7000u + static_cast<std::uint64_t>(trial)});
    try {
      const Graph h = protocol.reconstruct(25, msgs);
      (h == g ? recovered : silent_wrong) += 1;
    } catch (const DecodeError&) {
      ++loud;
    }
  }
  EXPECT_EQ(silent_wrong, 0);
  if (flip + truncate > 0.5) {
    EXPECT_GT(loud, 0);  // heavy corruption must actually trip the checks
  }
}

TEST_P(FaultSweep, GeneralizedNeverSilentlyWrong) {
  const auto [flip, truncate] = GetParam();
  Rng rng(563);
  const Simulator sim;
  const GeneralizedDegeneracyReconstruction protocol(2);
  int silent_wrong = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::random_k_degenerate(20, 2, rng);
    auto msgs = sim.run_local_phase(g, protocol);
    Simulator::inject_faults(
        msgs, FaultPlan{.bit_flip_chance = flip, .truncate_chance = truncate,
                        .seed = 8000u + static_cast<std::uint64_t>(trial)});
    try {
      const Graph h = protocol.reconstruct(20, msgs);
      if (!(h == g)) ++silent_wrong;
    } catch (const DecodeError&) {
    }
  }
  EXPECT_EQ(silent_wrong, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, FaultSweep,
    ::testing::Values(FaultCase{0.1, 0.0}, FaultCase{0.5, 0.0},
                      FaultCase{1.0, 0.0}, FaultCase{0.0, 0.3},
                      FaultCase{0.0, 1.0}, FaultCase{0.5, 0.5}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return "flip" + std::to_string(static_cast<int>(info.param.flip * 100)) +
             "_trunc" +
             std::to_string(static_cast<int>(info.param.truncate * 100));
    });

TEST(FaultHandling, SketchDecodeSurvivesTruncationLoudly) {
  Rng rng(569);
  const Graph g = gen::connected_gnp(30, 0.12, rng);
  const SketchConnectivityProtocol protocol(
      SketchParams{.seed = 31, .rounds = 0, .copies = 3});
  const Simulator sim;
  auto msgs = sim.run_local_phase(g, protocol);
  msgs[5].truncate(msgs[5].bit_size() / 3);
  EXPECT_THROW(protocol.decode(30, msgs), DecodeError);
}

TEST(FaultHandling, TruncationNeverProducesZeroBitMessages) {
  // Regression: inject_faults could call truncate(0), manufacturing 0-bit
  // messages whose decode semantics are undefined. The injector must keep
  // at least one bit.
  Rng rng(571);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Graph g = gen::random_k_degenerate(20, 2, rng);
    auto msgs = sim.run_local_phase(g, protocol);
    Simulator::inject_faults(
        msgs, FaultPlan{.bit_flip_chance = 0.0, .truncate_chance = 1.0,
                        .seed = seed});
    for (const Message& m : msgs) EXPECT_GE(m.bit_size(), 1u);
  }
}

TEST(FaultHandling, FaultStreamsAreIndependentPerMessageAndType) {
  // The flip stream firing (or not) must not shift the truncation stream:
  // a bit_flip_chance=0 baseline and a bit_flip_chance=1 run truncate to
  // identical lengths.
  Rng rng(577);
  const Graph g = gen::random_k_degenerate(25, 2, rng);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  auto baseline = sim.run_local_phase(g, protocol);
  auto flipped = baseline;
  Simulator::inject_faults(
      baseline,
      FaultPlan{.bit_flip_chance = 0.0, .truncate_chance = 0.5, .seed = 41});
  Simulator::inject_faults(
      flipped,
      FaultPlan{.bit_flip_chance = 1.0, .truncate_chance = 0.5, .seed = 41});
  ASSERT_EQ(baseline.size(), flipped.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].bit_size(), flipped[i].bit_size()) << i;
  }
}

TEST(FaultHandling, InjectionIsDeterministicInTheSeed) {
  Rng rng(587);
  const Graph g = gen::random_k_degenerate(25, 2, rng);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  const FaultPlan plan{.bit_flip_chance = 0.3, .truncate_chance = 0.3,
                       .seed = 1234};
  auto a = sim.run_local_phase(g, protocol);
  auto b = a;
  Simulator::inject_faults(a, plan);
  Simulator::inject_faults(b, plan);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(FaultHandling, SingleBitMessagesSurviveTruncationIntact) {
  // A 1-bit message cannot lose its only bit: truncation clamps to >= 1.
  BitWriter w;
  w.write_bit(true);
  std::vector<Message> msgs(8, Message::seal(std::move(w)));
  Simulator::inject_faults(
      msgs, FaultPlan{.bit_flip_chance = 0.0, .truncate_chance = 1.0,
                      .seed = 9});
  for (const Message& m : msgs) EXPECT_EQ(m.bit_size(), 1u);
}

TEST(FaultHandling, EmptyTranscriptRejectedEverywhere) {
  std::vector<Message> none;
  EXPECT_THROW(DegeneracyReconstruction(2).reconstruct(5, none), DecodeError);
  EXPECT_THROW(GeneralizedDegeneracyReconstruction(2).reconstruct(5, none),
               DecodeError);
}

}  // namespace
}  // namespace referee
