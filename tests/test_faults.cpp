// Failure-injection sweeps: under any rate of bit flips and truncations the
// decoders must either recover the exact graph (flip in a don't-care bit) or
// fail loudly — never return a different graph. The generalised and sketch
// protocols get the same treatment.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/simulator.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/generalized_degeneracy.hpp"
#include "sketch/connectivity.hpp"

namespace referee {
namespace {

struct FaultCase {
  double flip;
  double truncate;
};

class FaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultSweep, DegeneracyNeverSilentlyWrong) {
  const auto [flip, truncate] = GetParam();
  Rng rng(557);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  int silent_wrong = 0;
  int loud = 0;
  int recovered = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = gen::random_k_degenerate(25, 2, rng);
    auto msgs = sim.run_local_phase(g, protocol);
    Simulator::inject_faults(
        msgs, FaultPlan{.bit_flip_chance = flip, .truncate_chance = truncate,
                        .seed = 7000u + static_cast<std::uint64_t>(trial)});
    try {
      const Graph h = protocol.reconstruct(25, msgs);
      (h == g ? recovered : silent_wrong) += 1;
    } catch (const DecodeError&) {
      ++loud;
    }
  }
  EXPECT_EQ(silent_wrong, 0);
  if (flip + truncate > 0.5) {
    EXPECT_GT(loud, 0);  // heavy corruption must actually trip the checks
  }
}

TEST_P(FaultSweep, GeneralizedNeverSilentlyWrong) {
  const auto [flip, truncate] = GetParam();
  Rng rng(563);
  const Simulator sim;
  const GeneralizedDegeneracyReconstruction protocol(2);
  int silent_wrong = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::random_k_degenerate(20, 2, rng);
    auto msgs = sim.run_local_phase(g, protocol);
    Simulator::inject_faults(
        msgs, FaultPlan{.bit_flip_chance = flip, .truncate_chance = truncate,
                        .seed = 8000u + static_cast<std::uint64_t>(trial)});
    try {
      const Graph h = protocol.reconstruct(20, msgs);
      if (!(h == g)) ++silent_wrong;
    } catch (const DecodeError&) {
    }
  }
  EXPECT_EQ(silent_wrong, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, FaultSweep,
    ::testing::Values(FaultCase{0.1, 0.0}, FaultCase{0.5, 0.0},
                      FaultCase{1.0, 0.0}, FaultCase{0.0, 0.3},
                      FaultCase{0.0, 1.0}, FaultCase{0.5, 0.5}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return "flip" + std::to_string(static_cast<int>(info.param.flip * 100)) +
             "_trunc" +
             std::to_string(static_cast<int>(info.param.truncate * 100));
    });

TEST(FaultHandling, SketchDecodeSurvivesTruncationLoudly) {
  Rng rng(569);
  const Graph g = gen::connected_gnp(30, 0.12, rng);
  const SketchConnectivityProtocol protocol(
      SketchParams{.seed = 31, .rounds = 0, .copies = 3});
  const Simulator sim;
  auto msgs = sim.run_local_phase(g, protocol);
  msgs[5].truncate(msgs[5].bit_size() / 3);
  EXPECT_THROW(protocol.decode(30, msgs), DecodeError);
}

TEST(FaultHandling, TruncationNeverProducesZeroBitMessages) {
  // Regression: inject_faults could call truncate(0), manufacturing 0-bit
  // messages whose decode semantics are undefined. The injector must keep
  // at least one bit.
  Rng rng(571);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Graph g = gen::random_k_degenerate(20, 2, rng);
    auto msgs = sim.run_local_phase(g, protocol);
    Simulator::inject_faults(
        msgs, FaultPlan{.bit_flip_chance = 0.0, .truncate_chance = 1.0,
                        .seed = seed});
    for (const Message& m : msgs) EXPECT_GE(m.bit_size(), 1u);
  }
}

TEST(FaultHandling, FaultStreamsAreIndependentPerMessageAndType) {
  // The flip stream firing (or not) must not shift the truncation stream:
  // a bit_flip_chance=0 baseline and a bit_flip_chance=1 run truncate to
  // identical lengths.
  Rng rng(577);
  const Graph g = gen::random_k_degenerate(25, 2, rng);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  auto baseline = sim.run_local_phase(g, protocol);
  auto flipped = baseline;
  Simulator::inject_faults(
      baseline,
      FaultPlan{.bit_flip_chance = 0.0, .truncate_chance = 0.5, .seed = 41});
  Simulator::inject_faults(
      flipped,
      FaultPlan{.bit_flip_chance = 1.0, .truncate_chance = 0.5, .seed = 41});
  ASSERT_EQ(baseline.size(), flipped.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].bit_size(), flipped[i].bit_size()) << i;
  }
}

TEST(FaultHandling, InjectionIsDeterministicInTheSeed) {
  Rng rng(587);
  const Graph g = gen::random_k_degenerate(25, 2, rng);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  const FaultPlan plan{.bit_flip_chance = 0.3, .truncate_chance = 0.3,
                       .seed = 1234};
  auto a = sim.run_local_phase(g, protocol);
  auto b = a;
  Simulator::inject_faults(a, plan);
  Simulator::inject_faults(b, plan);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(FaultHandling, SingleBitMessagesSurviveTruncationIntact) {
  // A 1-bit message cannot lose its only bit: truncation clamps to >= 1.
  BitWriter w;
  w.write_bit(true);
  std::vector<Message> msgs(8, Message::seal(std::move(w)));
  Simulator::inject_faults(
      msgs, FaultPlan{.bit_flip_chance = 0.0, .truncate_chance = 1.0,
                      .seed = 9});
  for (const Message& m : msgs) EXPECT_EQ(m.bit_size(), 1u);
}

TEST(FaultHandling, EmptyTranscriptRejectedEverywhere) {
  std::vector<Message> none;
  EXPECT_THROW(DegeneracyReconstruction(2).reconstruct(5, none), DecodeError);
  EXPECT_THROW(GeneralizedDegeneracyReconstruction(2).reconstruct(5, none),
               DecodeError);
}

// ----------------------------------------------------------- fault journal --
// The injector reports *which* faults it applied, so tests assert
// cause→effect instead of only observing outcomes.

std::vector<Message> journal_fixture(std::size_t n = 24) {
  Rng rng(593);
  const Graph g =
      gen::random_k_degenerate(n, 2, rng);
  const Simulator sim;
  return sim.run_local_phase(g, DegeneracyReconstruction(2));
}

TEST(FaultJournalTest, PerMessageFaultsAreJournaledExactly) {
  auto msgs = journal_fixture();
  const auto baseline = msgs;
  const auto journal = Simulator::inject_faults(
      msgs, FaultPlan{.bit_flip_chance = 0.5, .truncate_chance = 0.5,
                      .seed = 101},
      {});
  ASSERT_FALSE(journal.empty());
  // Every journaled event corresponds to an actually changed message and
  // every untouched message is byte-identical to the baseline.
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    if (journal.touched(i)) {
      EXPECT_FALSE(msgs[i] == baseline[i]) << i;
    } else {
      EXPECT_EQ(msgs[i], baseline[i]) << i;
    }
  }
  for (const FaultEvent& e : journal.events) {
    if (e.type == FaultType::kTruncate) {
      EXPECT_EQ(msgs[e.index].bit_size(), e.detail);
    }
  }
}

TEST(FaultJournalTest, DropSubsetBlanksExactlyTheJournaledSlots) {
  auto msgs = journal_fixture();
  const auto journal = Simulator::inject_faults(
      msgs,
      FaultPlan{.correlated = CorrelatedFaults{.drop_fraction = 0.25},
                .seed = 5},
      {});
  const auto drops = journal.count(FaultType::kDrop);
  EXPECT_EQ(drops, 6u);  // round(0.25 * 24)
  EXPECT_EQ(drops, journal.events.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(msgs[i].empty(), journal.touched(i)) << i;
  }
}

TEST(FaultJournalTest, AnyPositiveDropFractionDropsAtLeastOne) {
  auto msgs = journal_fixture();
  const auto journal = Simulator::inject_faults(
      msgs,
      FaultPlan{.correlated = CorrelatedFaults{.drop_fraction = 0.001},
                .seed = 5},
      {});
  EXPECT_EQ(journal.count(FaultType::kDrop), 1u);
}

TEST(FaultJournalTest, PayloadSwapsJournalDisjointPairs) {
  auto msgs = journal_fixture();
  const auto baseline = msgs;
  const auto journal = Simulator::inject_faults(
      msgs,
      FaultPlan{.correlated = CorrelatedFaults{.payload_swaps = 3},
                .seed = 7},
      {});
  ASSERT_EQ(journal.count(FaultType::kPayloadSwap), 3u);
  std::vector<bool> seen(msgs.size(), false);
  for (const FaultEvent& e : journal.events) {
    ASSERT_LT(e.index, msgs.size());
    ASSERT_LT(e.detail, msgs.size());
    EXPECT_LT(e.index, e.detail);  // sampled subset pairs in sorted order
    EXPECT_FALSE(seen[e.index]);
    EXPECT_FALSE(seen[e.detail]);
    seen[e.index] = seen[e.detail] = true;
    EXPECT_EQ(msgs[e.index], baseline[e.detail]);
    EXPECT_EQ(msgs[e.detail], baseline[e.index]);
  }
}

TEST(FaultJournalTest, DuplicateIdsCopySourceOverDestination) {
  auto msgs = journal_fixture();
  const auto baseline = msgs;
  const auto journal = Simulator::inject_faults(
      msgs,
      FaultPlan{.correlated = CorrelatedFaults{.duplicate_ids = 2},
                .seed = 9},
      {});
  ASSERT_EQ(journal.count(FaultType::kDuplicateId), 2u);
  for (const FaultEvent& e : journal.events) {
    EXPECT_EQ(msgs[e.index], baseline[e.detail]);  // dst carries src's bytes
    EXPECT_NE(e.index, e.detail);
  }
}

TEST(FaultJournalTest, StaleReplaySplicesDonorSlots) {
  auto msgs = journal_fixture();
  auto donor = journal_fixture();
  for (Message& m : donor) m.flip_bit(0);  // make the donor distinguishable
  const auto journal = Simulator::inject_faults(
      msgs,
      FaultPlan{.correlated = CorrelatedFaults{.stale_replays = 4},
                .seed = 11},
      donor);
  ASSERT_EQ(journal.count(FaultType::kStaleReplay), 4u);
  for (const FaultEvent& e : journal.events) {
    EXPECT_EQ(msgs[e.index], donor[e.index]);
  }
}

TEST(FaultJournalTest, StaleReplayWithoutDonorIsRejected) {
  auto msgs = journal_fixture();
  EXPECT_THROW(
      Simulator::inject_faults(
          msgs,
          FaultPlan{.correlated = CorrelatedFaults{.stale_replays = 1}}),
      CheckError);
}

TEST(FaultJournalTest, CorrelatedFamiliesAreStreamIndependent) {
  // Arming the swap family must not move the drop family's subset — the
  // stream-alignment contract extended to the correlated models.
  auto a = journal_fixture();
  auto b = journal_fixture();
  const auto ja = Simulator::inject_faults(
      a,
      FaultPlan{.correlated = CorrelatedFaults{.drop_fraction = 0.2},
                .seed = 21},
      {});
  const auto jb = Simulator::inject_faults(
      b,
      FaultPlan{.correlated = CorrelatedFaults{.drop_fraction = 0.2,
                                               .payload_swaps = 2},
                .seed = 21},
      {});
  std::vector<std::size_t> drops_a;
  std::vector<std::size_t> drops_b;
  for (const auto& e : ja.events) {
    if (e.type == FaultType::kDrop) drops_a.push_back(e.index);
  }
  for (const auto& e : jb.events) {
    if (e.type == FaultType::kDrop) drops_b.push_back(e.index);
  }
  EXPECT_EQ(drops_a, drops_b);
}

}  // namespace
}  // namespace referee
