// Golden-transcript regression fixtures: one cell per campaign protocol,
// serialised byte-exactly and committed under tests/golden/. Any change to
// a protocol's wire format — an encode tweak, a varint change, a sketch
// layout change — fails this suite loudly, so wire-breaking diffs cannot
// slip through review unnoticed.
//
// To regenerate after an *intentional* wire change:
//   REFEREE_REGEN_GOLDEN=1 ctest -R golden
// then commit the updated .hex files together with the code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "model/campaign.hpp"
#include "model/envelope.hpp"
#include "model/transcript.hpp"

namespace referee {
namespace {

std::string hex_wrap(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2 + bytes.size() / 32 + 2);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto b = static_cast<unsigned char>(bytes[i]);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
    if ((i + 1) % 32 == 0) out.push_back('\n');
  }
  if (out.empty() || out.back() != '\n') out.push_back('\n');
  return out;
}

std::string fixture_path(const std::string& name) {
  return std::string(REFEREE_GOLDEN_DIR) + "/" + name + ".hex";
}

/// The pinned cell for a protocol: small, in-class, seed 1. Changing this
/// spec also changes the fixture bytes — regenerate when you do.
ScenarioSpec golden_spec(const std::string& protocol) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.seed = 1;
  if (protocol == "forest") {
    spec.generator = "tree";
  } else if (protocol == "bipartite" || protocol == "reduce-triangle") {
    spec.generator = "bipartite";
  } else if (protocol == "reduce-square") {
    spec.generator = "squarefree";
  } else if (protocol == "bounded-degree" || protocol == "stats" ||
             protocol == "connectivity" || protocol == "reduce-diameter") {
    spec.generator = "gnp";
  } else {
    spec.generator = "kdeg";
  }
  spec.n = protocol.rfind("reduce-", 0) == 0 ? 8 : 12;
  return spec;
}

/// The payload transcript of the golden cell, as RFT1 bytes.
std::string golden_transcript_bytes(const std::string& protocol,
                                    bool enveloped) {
  const ScenarioSpec spec = golden_spec(protocol);
  const Graph g = make_campaign_graph(spec);
  Transcript t;
  t.n = static_cast<std::uint32_t>(g.vertex_count());
  const Simulator sim;
  t.messages = sim.run_local_phase(g, *make_campaign_protocol(spec, g));
  if (enveloped) seal_transcript(scenario_epoch(spec), t.n, t.messages);
  return transcript_to_string(t);
}

void check_golden(const std::string& name, const std::string& bytes) {
  const std::string hex = hex_wrap(bytes);
  const std::string path = fixture_path(name);
  if (std::getenv("REFEREE_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << hex;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is) << "missing fixture " << path
                  << " — run with REFEREE_REGEN_GOLDEN=1 and commit it";
  std::ostringstream want;
  want << is.rdbuf();
  EXPECT_EQ(hex, want.str())
      << "wire bytes of the '" << name << "' golden cell changed. If the "
      << "format change is intentional, regenerate with "
      << "REFEREE_REGEN_GOLDEN=1 and commit the new fixture.";
}

class GoldenTranscript : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenTranscript, PayloadBytesMatchFixture) {
  check_golden(GetParam(), golden_transcript_bytes(GetParam(), false));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, GoldenTranscript,
    ::testing::ValuesIn(campaign_protocols()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(GoldenTranscriptEnvelope, SealedBytesMatchFixture) {
  // Pins the envelope format itself (tag width, id width, header order)
  // on top of one representative payload.
  check_golden("envelope.degeneracy",
               golden_transcript_bytes("degeneracy", true));
}

}  // namespace
}  // namespace referee
