// Golden-transcript regression fixtures: one cell per campaign protocol,
// serialised byte-exactly and committed under tests/golden/. Any change to
// a protocol's wire format — an encode tweak, a varint change, a sketch
// layout change — fails this suite loudly, so wire-breaking diffs cannot
// slip through review unnoticed.
//
// Since PR 6 the fixtures are sealed-transcript files (reftrn1, .rtr):
// the same container the campaign's --capture-dir writes and
// replay_scenario opens, so the pinned bytes are exactly what ships
// between processes. One legacy .hex fixture remains as a cross-format
// check: the RFT1 serialisation of the sealed degeneracy cell must keep
// matching what its .rtr fixture decodes to.
//
// To regenerate after an *intentional* wire change:
//   REFEREE_REGEN_GOLDEN=1 ctest -R golden
// then commit the updated fixtures together with the code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "model/campaign.hpp"
#include "model/envelope.hpp"
#include "model/multi_round_runner.hpp"
#include "model/transcript.hpp"
#include "support/arena.hpp"

namespace referee {
namespace {

std::string hex_wrap(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2 + bytes.size() / 32 + 2);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto b = static_cast<unsigned char>(bytes[i]);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
    if ((i + 1) % 32 == 0) out.push_back('\n');
  }
  if (out.empty() || out.back() != '\n') out.push_back('\n');
  return out;
}

std::string fixture_path(const std::string& name, const char* ext) {
  return std::string(REFEREE_GOLDEN_DIR) + "/" + name + ext;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return std::move(buffer).str();
}

/// The pinned cell for a protocol: small, in-class, seed 1. Changing this
/// spec also changes the fixture bytes — regenerate when you do.
ScenarioSpec golden_spec(const std::string& protocol) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.seed = 1;
  if (protocol == "forest") {
    spec.generator = "tree";
  } else if (protocol == "bipartite" || protocol == "reduce-triangle") {
    spec.generator = "bipartite";
  } else if (protocol == "reduce-square") {
    spec.generator = "squarefree";
  } else if (protocol == "bounded-degree" || protocol == "stats" ||
             protocol == "connectivity" || protocol == "reduce-diameter") {
    spec.generator = "gnp";
  } else {
    spec.generator = "kdeg";
  }
  spec.n = protocol.rfind("reduce-", 0) == 0 ? 8 : 12;
  return spec;
}

/// The golden cell's transcript. Payload fixtures pin the protocol wire
/// format alone (epoch 0, unenveloped), so an envelope change cannot fail
/// all of them at once; the envelope fixture seals with the real epoch.
Transcript golden_transcript(const std::string& protocol, bool enveloped) {
  const ScenarioSpec spec = golden_spec(protocol);
  const Graph g = make_campaign_graph(spec);
  Transcript t;
  t.n = static_cast<std::uint32_t>(g.vertex_count());
  const Simulator sim;
  t.messages = sim.run_local_phase(g, *make_campaign_protocol(spec, g));
  if (enveloped) seal_transcript(scenario_epoch(spec), t.n, t.messages);
  return t;
}

std::uint64_t golden_epoch(const std::string& protocol, bool enveloped) {
  return enveloped ? scenario_epoch(golden_spec(protocol)) : 0;
}

void check_golden_rtr(const std::string& name, const std::string& protocol,
                      bool enveloped) {
  const Transcript t = golden_transcript(protocol, enveloped);
  const std::uint64_t epoch = golden_epoch(protocol, enveloped);
  const std::string path = fixture_path(name, ".rtr");
  if (std::getenv("REFEREE_REGEN_GOLDEN") != nullptr) {
    write_transcript_file(path, epoch, t.messages);
    GTEST_SKIP() << "regenerated " << path;
  }
  ASSERT_TRUE(std::filesystem::exists(path))
      << "missing fixture " << path
      << " — run with REFEREE_REGEN_GOLDEN=1 and commit it";

  // Byte pin: today's cell serialises to exactly the committed file.
  const auto scratch = std::filesystem::temp_directory_path() /
                       "referee_golden_tests" / (name + ".rtr");
  std::filesystem::create_directories(scratch.parent_path());
  write_transcript_file(scratch.string(), epoch, t.messages);
  EXPECT_EQ(read_file(scratch.string()), read_file(path))
      << "wire bytes of the '" << name << "' golden cell changed. If the "
      << "format change is intentional, regenerate with "
      << "REFEREE_REGEN_GOLDEN=1 and commit the new fixture.";

  // Decode pin: the committed fixture re-opens to the cell's messages —
  // reftrn1 files written by any past build stay readable.
  const MmapTranscriptSource source(path);
  EXPECT_EQ(source.epoch(), epoch);
  ASSERT_EQ(source.node_count(), t.messages.size());
  for (std::size_t i = 0; i < t.messages.size(); ++i) {
    EXPECT_EQ(source.message(i), t.messages[i]) << "message " << i;
  }
}

class GoldenTranscript : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenTranscript, PayloadBytesMatchFixture) {
  check_golden_rtr(GetParam(), GetParam(), /*enveloped=*/false);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, GoldenTranscript,
    ::testing::ValuesIn(campaign_protocols()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// One captured round of a multi-round golden cell: the sealed wire
/// exactly as the referee opened it, plus the round epoch it was sealed
/// under.
struct CapturedRound {
  unsigned round = 0;
  std::uint64_t epoch = 0;
  std::vector<Message> wire;
};

/// Pin a fault-free multi-round cell: one .rtr fixture per executed round,
/// named like the campaign's --capture-dir output (`<name>.rtr` for round
/// 0, `<name>.r<k>.rtr` after). The generator is chosen so the doubling-k
/// schedule finishes in exactly `rounds` rounds, making the fixture count
/// itself part of the pin.
void check_golden_multi_round(const std::string& name,
                              const std::string& generator, unsigned rounds) {
  ScenarioSpec spec;
  spec.generator = generator;
  spec.protocol = "adaptive-degeneracy";
  spec.n = 12;
  spec.seed = 1;
  spec.rounds = rounds;

  std::vector<CapturedRound> captured;
  const TranscriptSink sink = [&captured](unsigned round, std::uint64_t epoch,
                                          std::uint32_t /*n*/,
                                          std::span<const Message> wire) {
    captured.push_back({round, epoch, {wire.begin(), wire.end()}});
  };
  const Simulator sim;
  std::vector<Message> transcript;
  const auto res = run_scenario(spec, sim, transcript,
                                DecodeArena::for_current_thread(), &sink);
  EXPECT_EQ(res.outcome, "exact") << name << " -> " << res.detail;
  ASSERT_EQ(captured.size(), rounds)
      << name << " no longer runs a " << rounds << "-round schedule";

  const std::uint64_t cell_epoch = scenario_epoch(spec);
  const bool regen = std::getenv("REFEREE_REGEN_GOLDEN") != nullptr;
  for (const CapturedRound& cap : captured) {
    const std::string stem =
        cap.round == 0 ? name : name + ".r" + std::to_string(cap.round);
    const std::string path = fixture_path(stem, ".rtr");
    EXPECT_EQ(cap.epoch, round_epoch(cell_epoch, cap.round))
        << name << " round " << cap.round;
    if (regen) {
      write_transcript_file(path, cap.epoch, cap.wire);
      continue;
    }
    ASSERT_TRUE(std::filesystem::exists(path))
        << "missing fixture " << path
        << " — run with REFEREE_REGEN_GOLDEN=1 and commit it";
    const auto scratch = std::filesystem::temp_directory_path() /
                         "referee_golden_tests" / (stem + ".rtr");
    std::filesystem::create_directories(scratch.parent_path());
    write_transcript_file(scratch.string(), cap.epoch, cap.wire);
    EXPECT_EQ(read_file(scratch.string()), read_file(path))
        << "round " << cap.round << " wire bytes of the '" << name
        << "' golden cell changed. If the format change is intentional, "
        << "regenerate with REFEREE_REGEN_GOLDEN=1 and commit the fixtures.";
    const MmapTranscriptSource source(path);
    EXPECT_EQ(source.epoch(), cap.epoch);
    ASSERT_EQ(source.node_count(), cap.wire.size());
    for (std::size_t i = 0; i < cap.wire.size(); ++i) {
      EXPECT_EQ(source.message(i), cap.wire[i])
          << "round " << cap.round << " message " << i;
    }
  }
  if (regen) GTEST_SKIP() << "regenerated " << name << " fixtures";
}

TEST(GoldenMultiRound, TwoRoundCycleCellMatchesFixtures) {
  // A cycle has degeneracy 2: k=1 fails round 0, k=2 succeeds round 1.
  check_golden_multi_round("multiround.cycle", "cycle", 2);
}

TEST(GoldenMultiRound, ThreeRoundApollonianCellMatchesFixtures) {
  // An Apollonian network has degeneracy 3: the doubling schedule needs
  // k=4, reached in round 2.
  check_golden_multi_round("multiround.apollonian", "apollonian", 3);
}

TEST(GoldenTranscriptEnvelope, SealedBytesMatchFixture) {
  // Pins the envelope format itself (tag width, id width, header order)
  // on top of one representative payload.
  check_golden_rtr("envelope.degeneracy", "degeneracy", /*enveloped=*/true);
}

TEST(GoldenTranscriptEnvelope, LegacyHexFixtureCrossChecksTheRtr) {
  // The retained .hex fixture pins the legacy RFT1 serialisation of the
  // same sealed cell the .rtr fixture stores in reftrn1 form. Both
  // containers must keep describing identical messages: decode the .rtr,
  // re-serialise through the RFT1 writer, and compare against the hex pin.
  const Transcript t = golden_transcript("degeneracy", /*enveloped=*/true);
  const std::string hex = hex_wrap(transcript_to_string(t));
  const std::string path = fixture_path("envelope.degeneracy", ".hex");
  if (std::getenv("REFEREE_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << hex;
    GTEST_SKIP() << "regenerated " << path;
  }
  EXPECT_EQ(hex, read_file(path)) << "RFT1 bytes drifted from the fixture";

  const std::string rtr = fixture_path("envelope.degeneracy", ".rtr");
  if (!std::filesystem::exists(rtr)) GTEST_SKIP() << "no .rtr fixture yet";
  const MmapTranscriptSource source(rtr);
  Transcript from_rtr;
  from_rtr.n = static_cast<std::uint32_t>(source.node_count());
  from_rtr.messages = source.messages();
  EXPECT_EQ(hex_wrap(transcript_to_string(from_rtr)), read_file(path))
      << "the reftrn1 and RFT1 fixtures no longer describe the same cell";
}

}  // namespace
}  // namespace referee
