// The k-edge-connectivity extension: AGM peeling over linear sketches.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/mincut.hpp"
#include "graph/transforms.hpp"
#include "sketch/k_connectivity.hpp"

namespace referee {
namespace {

SketchParams params_for(std::uint64_t seed) {
  return SketchParams{.seed = seed, .rounds = 0, .copies = 4};
}

TEST(KConnectivity, MatchesTruthOnStandardTopologies) {
  struct Case {
    Graph g;
    std::uint64_t lambda;
  };
  const std::vector<Case> cases{
      {gen::cycle(12), 2},
      {gen::path(12), 1},
      {gen::complete(8), 7},
      {gen::hypercube(3), 3},
      {gen::complete_bipartite(3, 6), 3},
  };
  for (const auto& c : cases) {
    for (unsigned k = 1; k <= 4; ++k) {
      const auto result =
          sketch_k_edge_connectivity(c.g, k, params_for(0x1000 + k));
      EXPECT_EQ(result.k_connected, c.lambda >= k)
          << "lambda=" << c.lambda << " k=" << k;
      EXPECT_EQ(result.connectivity_lower_bound,
                std::min<std::uint64_t>(c.lambda, k));
    }
  }
}

TEST(KConnectivity, BridgeGraphCapsAtOne) {
  Graph g = disjoint_union(gen::complete(5), gen::complete(5));
  g.add_edge(0, 5);
  const auto result = sketch_k_edge_connectivity(g, 3, params_for(0x2000));
  EXPECT_FALSE(result.k_connected);
  EXPECT_EQ(result.connectivity_lower_bound, 1u);
}

TEST(KConnectivity, DisconnectedIsZero) {
  const Graph g = disjoint_union(gen::cycle(5), gen::cycle(5));
  const auto result = sketch_k_edge_connectivity(g, 2, params_for(0x3000));
  EXPECT_FALSE(result.k_connected);
  EXPECT_EQ(result.connectivity_lower_bound, 0u);
}

TEST(KConnectivity, ForestsAreEdgeDisjointSubgraphs) {
  Rng rng(607);
  const Graph g = gen::connected_gnp(30, 0.25, rng);
  const unsigned k = 3;
  const auto result = sketch_k_edge_connectivity(g, k, params_for(0x4000));
  ASSERT_EQ(result.forests.size(), k);
  Graph seen(g.vertex_count());
  for (const auto& forest : result.forests) {
    for (const Edge& e : forest) {
      EXPECT_TRUE(g.has_edge(e.u, e.v)) << e.u << "," << e.v;
      EXPECT_TRUE(seen.add_edge(e.u, e.v))
          << "edge reused across forests: " << e.u << "," << e.v;
    }
  }
  EXPECT_EQ(seen, result.certificate);
}

TEST(KConnectivity, CertificateTheorem) {
  // min(λ(H), k) == min(λ(G), k) on random graphs — the AGM certificate
  // property, with λ(G) from exact Stoer–Wagner.
  Rng rng(613);
  int agree = 0;
  const int trials = 12;
  for (int trial = 0; trial < trials; ++trial) {
    const Graph g = gen::connected_gnp(24, 0.3, rng);
    const unsigned k = 3;
    const auto result = sketch_k_edge_connectivity(
        g, k, params_for(0x5000 + static_cast<std::uint64_t>(trial)));
    const auto truth = std::min<std::uint64_t>(edge_connectivity(g), k);
    agree += (result.connectivity_lower_bound == truth);
  }
  EXPECT_GE(agree, trials - 1);  // sketch sampling is w.h.p., allow one miss
}

TEST(KConnectivity, FatTreeRedundancyAudit) {
  // The datacenter question the extension exists for: does the fabric
  // survive any single link failure? Fat-tree switch fabrics (no hosts)
  // are 2-edge-connected; with hosts they are not (host links are bridges).
  const Graph fabric = gen::fat_tree(4, /*with_hosts=*/false);
  EXPECT_TRUE(
      sketch_k_edge_connectivity(fabric, 2, params_for(0x6000)).k_connected);
  const Graph with_hosts = gen::fat_tree(4, /*with_hosts=*/true);
  EXPECT_FALSE(
      sketch_k_edge_connectivity(with_hosts, 2, params_for(0x6001))
          .k_connected);
}

}  // namespace
}  // namespace referee
