#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "model/simulator.hpp"
#include "model/transcript.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "support/stats.hpp"

namespace referee {
namespace {

TEST(Transcript, RoundTripPreservesMessagesExactly) {
  Rng rng(631);
  const Graph g = gen::random_k_degenerate(40, 2, rng);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  Transcript t;
  t.n = 40;
  t.messages = sim.run_local_phase(g, protocol);
  const Transcript back = transcript_from_string(transcript_to_string(t));
  ASSERT_EQ(back.n, t.n);
  ASSERT_EQ(back.messages.size(), t.messages.size());
  for (std::size_t i = 0; i < t.messages.size(); ++i) {
    EXPECT_EQ(back.messages[i], t.messages[i]);
  }
}

TEST(Transcript, OfflineDecodeEqualsOnline) {
  // Capture on the "network", decode later from the serialised bytes alone.
  Rng rng(641);
  const Graph g = gen::random_apollonian(35, rng);
  const Simulator sim;
  const DegeneracyReconstruction protocol(3);
  Transcript t{35, sim.run_local_phase(g, protocol)};
  const std::string wire = transcript_to_string(t);
  const Transcript replay = transcript_from_string(wire);
  EXPECT_EQ(protocol.reconstruct(replay.n, replay.messages), g);
}

TEST(Transcript, EmptyMessagesSupported) {
  Transcript t;
  t.n = 3;
  t.messages.resize(3);  // all empty
  const Transcript back = transcript_from_string(transcript_to_string(t));
  for (const auto& m : back.messages) EXPECT_EQ(m.bit_size(), 0u);
}

TEST(Transcript, BadMagicRejected) {
  EXPECT_THROW(transcript_from_string("NOPE"), DecodeError);
  EXPECT_THROW(transcript_from_string(""), DecodeError);
}

TEST(Transcript, TruncatedStreamRejected) {
  Transcript t;
  t.n = 2;
  BitWriter w;
  w.write_bits(0xFFFF, 16);
  t.messages.push_back(Message::seal(std::move(w)));
  t.messages.emplace_back();
  std::string wire = transcript_to_string(t);
  wire.resize(wire.size() - 3);
  EXPECT_THROW(transcript_from_string(wire), DecodeError);
}

TEST(Transcript, CountMismatchRejectedOnWrite) {
  Transcript t;
  t.n = 5;
  t.messages.resize(3);
  std::ostringstream os;
  EXPECT_THROW(write_transcript(os, t), CheckError);
}

TEST(Stats, RunningStatMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add_tracked(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min_seen(), 2.0);
  EXPECT_DOUBLE_EQ(s.max_seen(), 9.0);
}

TEST(Stats, LinearFitRecoversLine) {
  LinearFit fit;
  for (int x = 0; x < 20; ++x) {
    fit.add(x, 3.5 * x - 2.0);
  }
  EXPECT_NEAR(fit.slope(), 3.5, 1e-9);
  EXPECT_NEAR(fit.intercept(), -2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared(), 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisy) {
  Rng rng(643);
  LinearFit fit;
  for (int x = 0; x < 500; ++x) {
    fit.add(x, 2.0 * x + 10.0 + (rng.uniform01() - 0.5));
  }
  EXPECT_NEAR(fit.slope(), 2.0, 0.01);
  EXPECT_GT(fit.r_squared(), 0.999);
}

TEST(Stats, FitRequiresTwoPoints) {
  LinearFit fit;
  fit.add(1, 1);
  EXPECT_THROW(fit.slope(), CheckError);
}

}  // namespace
}  // namespace referee
