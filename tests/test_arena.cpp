// support/arena.hpp: the DecodeArena contract the campaign runner's
// zero-allocation claim rests on — warm checkouts never grow, capacity (and
// non-trivial element storage) survives the round trip, and the growth
// counter is exact enough to assert on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "support/arena.hpp"

namespace referee {
namespace {

TEST(DecodeArena, ColdCheckoutIsAGrowthEvent) {
  DecodeArena arena;
  EXPECT_EQ(arena.growth_events(), 0u);
  {
    auto s = arena.scratch<int>();
    s->resize(100);
  }
  EXPECT_EQ(arena.stats().checkouts, 1u);
  // One event for the pool miss, one for the capacity growth seen at return.
  EXPECT_EQ(arena.growth_events(), 2u);
}

TEST(DecodeArena, WarmCheckoutKeepsCapacityAndGrowsNothing) {
  DecodeArena arena;
  {
    auto s = arena.scratch<int>();
    s->resize(1000);
  }
  const auto warm = arena.growth_events();
  for (int pass = 0; pass < 10; ++pass) {
    auto s = arena.scratch<int>();
    EXPECT_GE(s->capacity(), 1000u);
    s->clear();
    for (int i = 0; i < 1000; ++i) s->push_back(i);
  }
  EXPECT_EQ(arena.growth_events(), warm);
  EXPECT_EQ(arena.stats().checkouts, 11u);
}

TEST(DecodeArena, DistinctTypesUseDistinctPools) {
  DecodeArena arena;
  auto ints = arena.scratch<int>();
  auto doubles = arena.scratch<double>();
  auto ids = arena.scratch<std::uint32_t>();
  ints->assign(4, 7);
  doubles->assign(2, 1.5);
  ids->assign(8, 9u);
  EXPECT_EQ((*ints)[0], 7);
  EXPECT_DOUBLE_EQ((*doubles)[1], 1.5);
  EXPECT_EQ((*ids)[7], 9u);
}

TEST(DecodeArena, ConcurrentCheckoutsOfOneTypeAreIndependent) {
  DecodeArena arena;
  auto a = arena.scratch<int>();
  auto b = arena.scratch<int>();
  a->assign(3, 1);
  b->assign(3, 2);
  EXPECT_EQ((*a)[0], 1);
  EXPECT_EQ((*b)[0], 2);
}

TEST(DecodeArena, LargestCapacityServedFirst) {
  DecodeArena arena;
  {
    auto small = arena.scratch<int>();
    auto large = arena.scratch<int>();
    small->resize(8);
    large->resize(4096);
  }
  const auto warm = arena.growth_events();
  // Whatever order the vectors were returned in, the next checkout must get
  // the big one — the property that keeps heterogeneous decode sequences
  // growth-free after warm-up.
  auto s = arena.scratch<int>();
  EXPECT_GE(s->capacity(), 4096u);
  grow_to(*s, 4096);
  EXPECT_EQ(arena.growth_events(), warm);
}

TEST(DecodeArena, NonTrivialElementStorageSurvivesRoundTrip) {
  DecodeArena arena;
  const std::string long_string(256, 'x');
  const char* payload = nullptr;
  {
    auto s = arena.scratch<std::string>();
    grow_to(*s, 4);
    (*s)[0] = long_string;
    payload = (*s)[0].data();
  }
  {
    auto s = arena.scratch<std::string>();
    // grow_to never shrank, so element 0 still owns its heap block and an
    // equal-size overwrite reuses it.
    ASSERT_GE(s->size(), 4u);
    (*s)[0].assign(256, 'y');
    EXPECT_EQ((*s)[0].data(), payload);
  }
}

TEST(DecodeArena, GrowToNeverShrinks) {
  std::vector<int> v(10, 3);
  grow_to(v, 4);
  EXPECT_EQ(v.size(), 10u);
  grow_to(v, 32);
  EXPECT_EQ(v.size(), 32u);
  EXPECT_EQ(v[9], 3);
}

TEST(DecodeArena, BytesReservedTracksCapacity) {
  DecodeArena arena;
  {
    auto s = arena.scratch<std::uint64_t>();
    s->resize(100);
  }
  EXPECT_GE(arena.stats().bytes_reserved, 100 * sizeof(std::uint64_t));
}

TEST(DecodeArena, ThreadLocalArenasAreDistinct) {
  DecodeArena* main_arena = &DecodeArena::for_current_thread();
  DecodeArena* worker_arena = nullptr;
  std::thread t([&] { worker_arena = &DecodeArena::for_current_thread(); });
  t.join();
  ASSERT_NE(worker_arena, nullptr);
  EXPECT_NE(main_arena, worker_arena);
  EXPECT_EQ(main_arena, &DecodeArena::for_current_thread());
}

TEST(DecodeArena, MoveTransfersOwnershipOfTheCheckout) {
  DecodeArena arena;
  {
    auto a = arena.scratch<int>();
    a->resize(16);
    ArenaScratch<int> b = std::move(a);
    EXPECT_EQ(b->size(), 16u);
  }  // exactly one return; no double-free, pool holds one vector
  auto c = arena.scratch<int>();
  EXPECT_GE(c->capacity(), 16u);
}

}  // namespace
}  // namespace referee
