// Theorem 5 end to end: reconstruction is the identity on every graph of
// degeneracy <= k, messages are O(k² log n) bits, corrupted transcripts fail
// loudly, and the recognition variant accepts exactly the right class.
#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <string>

#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "model/simulator.hpp"
#include "numth/lookup.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/recognition.hpp"
#include "support/bits.hpp"

namespace referee {
namespace {

Graph roundtrip(const Graph& g, const DegeneracyReconstruction& protocol,
                FrugalityReport* report = nullptr) {
  const Simulator sim;
  return sim.run_reconstruction(g, protocol, report);
}

TEST(DegeneracyProtocol, ReconstructsTinyGraphs) {
  const DegeneracyReconstruction protocol(2);
  EXPECT_EQ(roundtrip(gen::empty(1), protocol), gen::empty(1));
  EXPECT_EQ(roundtrip(gen::empty(4), protocol), gen::empty(4));
  EXPECT_EQ(roundtrip(gen::path(2), protocol), gen::path(2));
  EXPECT_EQ(roundtrip(gen::cycle(3), protocol), gen::cycle(3));
}

struct FamilyCase {
  std::string label;
  unsigned k;
  std::function<Graph(Rng&)> make;
};

class ReconstructionSweep : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(ReconstructionSweep, IdentityOnFamily) {
  const auto& fc = GetParam();
  Rng rng(271);
  const DegeneracyReconstruction protocol(fc.k);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = fc.make(rng);
    FrugalityReport report;
    EXPECT_EQ(roundtrip(g, protocol, &report), g) << fc.label;
    // Lemma 2: O(k² log n) — assert the concrete bound 2log + k(k+2)log +
    // small change, generously rounded to (k+2)² log-units.
    EXPECT_LE(report.constant(), static_cast<double>((fc.k + 2) * (fc.k + 2)))
        << fc.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ReconstructionSweep,
    ::testing::Values(
        FamilyCase{"forest", 1,
                   [](Rng& r) { return gen::random_forest(60, 0.2, r); }},
        FamilyCase{"tree", 1, [](Rng& r) { return gen::random_tree(80, r); }},
        FamilyCase{"cycle", 2, [](Rng&) { return gen::cycle(50); }},
        FamilyCase{"grid", 2, [](Rng&) { return gen::grid(7, 9); }},
        FamilyCase{"2-degenerate", 2,
                   [](Rng& r) { return gen::random_k_degenerate(70, 2, r); }},
        FamilyCase{"3-degenerate-exact", 3,
                   [](Rng& r) {
                     return gen::random_k_degenerate(60, 3, r, true);
                   }},
        FamilyCase{"apollonian(planar)", 3,
                   [](Rng& r) { return gen::random_apollonian(60, r); }},
        FamilyCase{"partial-3-tree", 3,
                   [](Rng& r) {
                     return gen::random_partial_k_tree(50, 3, 0.7, r);
                   }},
        FamilyCase{"4-tree", 4,
                   [](Rng& r) { return gen::random_k_tree(40, 4, r); }},
        FamilyCase{"planar-at-k5", 5,
                   [](Rng& r) { return gen::random_apollonian(40, r); }},
        FamilyCase{"hypercube", 4, [](Rng&) { return gen::hypercube(4); }}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DegeneracyProtocol, TableDecoderMatchesNewton) {
  Rng rng(277);
  const Graph g = gen::random_k_degenerate(25, 2, rng);
  const DegeneracyReconstruction newton(2);
  const auto table = std::make_shared<NeighborhoodTable>(25, 2);
  const DegeneracyReconstruction lookup(
      2, std::make_shared<TableDecoder>(table));
  EXPECT_EQ(roundtrip(g, newton), g);
  EXPECT_EQ(roundtrip(g, lookup), g);
}

TEST(DegeneracyProtocol, HigherKStillReconstructsLowerClass) {
  Rng rng(281);
  const Graph g = gen::random_tree(40, rng);  // degeneracy 1
  EXPECT_EQ(roundtrip(g, DegeneracyReconstruction(3)), g);
}

TEST(DegeneracyProtocol, RejectsGraphAboveK) {
  // K6 has degeneracy 5; at k = 2 pruning must stall, not fabricate a graph.
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  EXPECT_THROW(sim.run_reconstruction(gen::complete(6), protocol),
               DecodeError);
}

TEST(DegeneracyProtocol, MessageBitsMatchLocalFunction) {
  Rng rng(283);
  const Graph g = gen::random_k_degenerate(50, 3, rng);
  const DegeneracyReconstruction protocol(3);
  for (Vertex v = 0; v < 10; ++v) {
    const auto view = local_view_of(g, v);
    EXPECT_EQ(protocol.local(view).bit_size(),
              DegeneracyReconstruction::message_bits(view, 3));
  }
}

TEST(DegeneracyProtocol, MessageSizeGrowsLogarithmically) {
  // Doubling n adds O(k²) bits, not O(n) — spot-check the Lemma 2 shape on
  // the max-degree node of a star (worst case power sums).
  const unsigned k = 3;
  std::size_t previous = 0;
  for (const std::size_t n : {64u, 128u, 256u, 512u}) {
    const Graph g = gen::star(n - 1);
    const auto view = local_view_of(g, 0);
    const std::size_t bits = DegeneracyReconstruction::message_bits(view, k);
    if (previous != 0) {
      EXPECT_LE(bits, previous + 12 * (k + 1));  // ~ (k sums + id/deg) bits
    }
    previous = bits;
  }
}

TEST(DegeneracyProtocol, BitFlipNeverReturnsWrongGraph) {
  Rng rng(293);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  int silent_wrong = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = gen::random_k_degenerate(30, 2, rng);
    auto msgs = sim.run_local_phase(g, protocol);
    const FaultPlan plan{.bit_flip_chance = 1.0, .truncate_chance = 0.0,
                         .seed = 1000u + static_cast<std::uint64_t>(trial)};
    Simulator::inject_faults(msgs, plan);
    try {
      const Graph h = protocol.reconstruct(
          static_cast<std::uint32_t>(g.vertex_count()), msgs);
      // Flips in don't-care positions may decode to the same graph — that is
      // fine; decoding to a *different* graph silently is the failure mode
      // the power-sum cross-check exists to prevent.
      if (!(h == g)) ++silent_wrong;
    } catch (const DecodeError&) {
      // loud failure: expected
    }
  }
  EXPECT_EQ(silent_wrong, 0);
}

TEST(DegeneracyProtocol, TruncationAlwaysDetected) {
  Rng rng(307);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  const Graph g = gen::random_k_degenerate(30, 2, rng);
  auto msgs = sim.run_local_phase(g, protocol);
  msgs[7].truncate(msgs[7].bit_size() / 2);
  EXPECT_THROW(
      protocol.reconstruct(static_cast<std::uint32_t>(g.vertex_count()), msgs),
      DecodeError);
}

TEST(DegeneracyProtocol, WrongMessageCountRejected) {
  const DegeneracyReconstruction protocol(1);
  std::vector<Message> none;
  EXPECT_THROW(protocol.reconstruct(3, none), DecodeError);
}

TEST(Recognition, AcceptsClassRejectsAbove) {
  Rng rng(311);
  const Simulator sim;
  const auto recognizer = make_degeneracy_recognizer(2);
  EXPECT_TRUE(sim.run_decision(gen::grid(6, 6), *recognizer));
  EXPECT_TRUE(sim.run_decision(gen::cycle(20), *recognizer));
  EXPECT_FALSE(sim.run_decision(gen::complete(5), *recognizer));
  EXPECT_FALSE(sim.run_decision(gen::random_apollonian(30, rng), *recognizer));
  EXPECT_FALSE(sim.run_decision(gen::hypercube(4), *recognizer));
}

TEST(Recognition, BoundaryExactness) {
  // degeneracy(K4) = 3: accepted at k = 3, rejected at k = 2.
  const Simulator sim;
  EXPECT_TRUE(sim.run_decision(gen::complete(4), *make_degeneracy_recognizer(3)));
  EXPECT_FALSE(sim.run_decision(gen::complete(4), *make_degeneracy_recognizer(2)));
}

}  // namespace
}  // namespace referee
