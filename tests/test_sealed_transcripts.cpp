// Sealed reftrn1 transcripts: binary round-trip, header validation,
// crash-safe publication, and the offline-replay acceptance pin — every
// cell of the default 200-cell correlated+adaptive sweep (multi-round
// cells included), captured live and re-opened from its files, decodes to
// the same outcome offline.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/backend.hpp"
#include "campaign/plan.hpp"
#include "campaign/scenario.hpp"
#include "model/transcript.hpp"
#include "support/atomic_file.hpp"
#include "support/check.hpp"

namespace referee {
namespace {

std::string temp_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "referee_sealed_tests";
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string temp_path(const std::string& name) {
  return temp_dir() + "/" + name;
}

std::vector<Message> some_messages() {
  std::vector<Message> messages;
  for (unsigned i = 0; i < 5; ++i) {
    BitWriter w;
    const unsigned nbits = 3 + 5 * i;  // varied, byte-unaligned lengths
    w.write_bits((0xA5A5u + i) & ((1u << nbits) - 1), nbits);
    messages.push_back(Message::seal(std::move(w)));
  }
  messages.emplace_back();  // empty payloads are legal
  return messages;
}

TEST(SealedTranscript, RoundTripPreservesEpochAndMessages) {
  const auto messages = some_messages();
  const std::string path = temp_path("roundtrip.rtr");
  write_transcript_file(path, 0xFEEDFACE12345678ull, messages);
  const MmapTranscriptSource source(path);
  EXPECT_EQ(source.epoch(), 0xFEEDFACE12345678ull);
  ASSERT_EQ(source.node_count(), messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(source.message(i), messages[i]) << "message " << i;
  }
  const auto all = source.messages();
  ASSERT_EQ(all.size(), messages.size());
  EXPECT_EQ(all.back().bit_size(), 0u);
}

TEST(SealedTranscript, SourceMovesAndBoundsChecks) {
  const std::string path = temp_path("moves.rtr");
  write_transcript_file(path, 7, some_messages());
  MmapTranscriptSource a(path);
  MmapTranscriptSource b(std::move(a));
  EXPECT_EQ(b.epoch(), 7u);
  EXPECT_THROW(b.message(b.node_count()), CheckError);
}

TEST(SealedTranscript, RejectsForeignTruncatedAndTrailingBytes) {
  EXPECT_THROW(MmapTranscriptSource{temp_path("missing.rtr")}, CheckError);

  const std::string foreign = temp_path("foreign.rtr");
  {
    std::ofstream os(foreign, std::ios::binary);
    os << "this is not a sealed transcript, but long enough to map";
  }
  EXPECT_THROW(MmapTranscriptSource{foreign}, CheckError);

  const std::string trunc = temp_path("trunc.rtr");
  write_transcript_file(trunc, 1, some_messages());
  const auto full = std::filesystem::file_size(trunc);
  std::filesystem::resize_file(trunc, full - 2);  // cut mid-payload
  EXPECT_THROW(MmapTranscriptSource{trunc}, CheckError);

  const std::string trailing = temp_path("trailing.rtr");
  write_transcript_file(trailing, 1, some_messages());
  {
    std::ofstream os(trailing, std::ios::binary | std::ios::app);
    os << "junk";
  }
  EXPECT_THROW(MmapTranscriptSource{trailing}, CheckError);
}

TEST(SealedTranscript, RejectsAbsurdHeaderFields) {
  // A crafted node count (or per-record bit length) beyond the sanity
  // ceilings must refuse at open, not allocate terabytes of offsets.
  const std::string path = temp_path("absurd.rtr");
  write_transcript_file(path, 1, some_messages());
  {
    std::fstream os(path, std::ios::binary | std::ios::in | std::ios::out);
    os.seekp(24);  // the n field
    const std::uint32_t huge = 0xFFFFFFFFu;
    os.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_THROW(MmapTranscriptSource{path}, CheckError);

  const std::string bits = temp_path("absurd_bits.rtr");
  write_transcript_file(bits, 1, some_messages());
  {
    std::fstream os(bits, std::ios::binary | std::ios::in | std::ios::out);
    os.seekp(kTranscriptFileHeaderBytes);  // first record's bit length
    const std::uint64_t huge = std::uint64_t{1} << 40;
    os.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_THROW(MmapTranscriptSource{bits}, CheckError);
}

TEST(SealedTranscript, PublicationIsAtomic) {
  // A failed write never clobbers the published file and never litters
  // the directory with temp files — the crash-safety contract shared by
  // write_transcript_file and write_edge_file.
  const std::string path = temp_path("atomic.rtr");
  write_transcript_file(path, 42, some_messages());
  const auto published = std::filesystem::file_size(path);

  EXPECT_THROW(write_file_atomically(
                   path,
                   [](std::FILE* f) {
                     std::fputs("partial bytes", f);
                     throw CheckError("simulated crash mid-write");
                   }),
               CheckError);
  EXPECT_EQ(std::filesystem::file_size(path), published);
  EXPECT_EQ(MmapTranscriptSource(path).epoch(), 42u);
  for (const auto& entry : std::filesystem::directory_iterator(temp_dir())) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "leftover temp file: " << entry.path();
  }

  // Writing into a directory that does not exist fails loudly without
  // creating anything.
  EXPECT_THROW(
      write_transcript_file(temp_dir() + "/no/such/dir/x.rtr", 1, {}),
      CheckError);
}

TEST(SealedTranscript, DefaultFaultSweepReplaysToIdenticalOutcomes) {
  // The acceptance pin: capture every cell of the default 200-cell
  // correlated+adaptive sweep — every protocol (multi-round included),
  // every fault model, loud refusals included — and replay each sealed
  // capture offline. Outcome and detail must match the live run cell for
  // cell. Multi-round cells capture one file per executed round and replay
  // through the round-ordered overload.
  const auto dir = temp_dir() + "/sweep";
  std::filesystem::create_directories(dir);
  const CampaignPlan plan{default_fault_sweep_config()};
  ThreadPoolBackend backend;
  backend.set_capture([&dir](std::size_t cell_id, unsigned round,
                             std::uint64_t epoch, std::uint32_t n,
                             std::span<const Message> wire) {
    (void)n;
    const std::string suffix =
        round == 0 ? ".rtr" : ".r" + std::to_string(round) + ".rtr";
    write_transcript_file(dir + "/cell-" + std::to_string(cell_id) + suffix,
                          epoch, wire);
  });
  const auto live = backend.run_cells(plan);
  ASSERT_EQ(live.size(), plan.total_cells());

  std::size_t loud_replayed = 0;
  std::size_t multi_round_replayed = 0;
  for (const auto& cell : plan.cells()) {
    const std::string stem = dir + "/cell-" + std::to_string(cell.id);
    ASSERT_TRUE(std::filesystem::exists(stem + ".rtr")) << "cell " << cell.id;
    ScenarioResult replay;
    if (is_multi_round_protocol(cell.spec.protocol)) {
      std::vector<std::string> rounds{stem + ".rtr"};
      for (unsigned r = 1;; ++r) {
        const std::string file = stem + ".r" + std::to_string(r) + ".rtr";
        if (!std::filesystem::exists(file)) break;
        rounds.push_back(file);
      }
      replay = replay_scenario(cell.spec, rounds);
      ++multi_round_replayed;
    } else {
      replay = replay_scenario(cell.spec, stem + ".rtr");
    }
    EXPECT_EQ(replay.outcome, live[cell.id].outcome) << "cell " << cell.id;
    EXPECT_EQ(replay.detail, live[cell.id].detail) << "cell " << cell.id;
    EXPECT_EQ(replay.contract_ok, live[cell.id].contract_ok);
    if (replay.outcome == "loud") ++loud_replayed;
  }
  EXPECT_GT(loud_replayed, 0u) << "sweep lost its loud cells";
  EXPECT_GT(multi_round_replayed, 0u) << "sweep lost its multi-round cells";

  // A transcript replayed against the wrong cell's spec refuses loudly.
  const auto& first = plan.cells().front().spec;
  ScenarioSpec wrong = first;
  wrong.seed += 17;
  EXPECT_THROW(replay_scenario(wrong, dir + "/cell-0.rtr"), CheckError);
}

}  // namespace
}  // namespace referee
