#include <gtest/gtest.h>

#include <numeric>

#include "numth/decoder.hpp"
#include "numth/lookup.hpp"
#include "numth/power_sums.hpp"
#include "support/random.hpp"

namespace referee {
namespace {

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  std::uint64_t r = 1;
  for (std::uint64_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

TEST(NeighborhoodTable, EntryCountIsSumOfBinomials) {
  const NeighborhoodTable table(10, 3);
  // C(10,0) + C(10,1) + C(10,2) + C(10,3) = 1 + 10 + 45 + 120.
  EXPECT_EQ(table.entry_count(), 176u);
  EXPECT_EQ(table.n(), 10u);
  EXPECT_EQ(table.k(), 3u);
}

TEST(NeighborhoodTable, FindsEverySubsetExhaustively) {
  const std::uint32_t n = 9;
  const unsigned k = 3;
  const NeighborhoodTable table(n, k);
  // Exhaustively query all 2-subsets and 3-subsets.
  for (NodeId a = 1; a <= n; ++a) {
    for (NodeId b = a + 1; b <= n; ++b) {
      const std::vector<NodeId> pair{a, b};
      EXPECT_EQ(table.find(2, power_sums(pair, k)), pair);
      for (NodeId c = b + 1; c <= n; ++c) {
        const std::vector<NodeId> triple{a, b, c};
        EXPECT_EQ(table.find(3, power_sums(triple, k)), triple);
      }
    }
  }
}

TEST(NeighborhoodTable, DegreeZeroLookup) {
  const NeighborhoodTable table(5, 2);
  EXPECT_TRUE(table.find(0, power_sums(std::vector<NodeId>{}, 2)).empty());
}

TEST(NeighborhoodTable, MissingEntryThrows) {
  const NeighborhoodTable table(5, 2);
  const std::vector<BigUInt> bogus{BigUInt(1), BigUInt(7)};  // not a 2-subset
  EXPECT_THROW(table.find(2, bogus), DecodeError);
  EXPECT_THROW(table.find(3, bogus), DecodeError);  // degree beyond k
}

TEST(NeighborhoodTable, ParallelBuildMatchesSequential) {
  ThreadPool pool(4);
  const NeighborhoodTable seq(12, 2);
  const NeighborhoodTable par(12, 2, &pool);
  EXPECT_EQ(seq.entry_count(), par.entry_count());
  EXPECT_EQ(seq.entry_count(), 1 + 12 + binomial(12, 2));
  Rng rng(263);
  for (int trial = 0; trial < 30; ++trial) {
    auto subset = rng.sample_subset(12, 2);
    std::vector<NodeId> ids{subset[0] + 1, subset[1] + 1};
    const auto sums = power_sums(ids, 2);
    EXPECT_EQ(seq.find(2, sums), par.find(2, sums));
  }
}

TEST(NeighborhoodTable, MemoryFootprintGrowsWithK) {
  const NeighborhoodTable k1(20, 1);
  const NeighborhoodTable k2(20, 2);
  EXPECT_GT(k2.memory_bytes(), k1.memory_bytes());
}

TEST(TableDecoder, AgreesWithNewtonDecoder) {
  const std::uint32_t n = 15;
  const unsigned k = 3;
  const auto table = std::make_shared<NeighborhoodTable>(n, k);
  const TableDecoder td(table);
  const NewtonDecoder nd;
  std::vector<NodeId> everyone(n);
  std::iota(everyone.begin(), everyone.end(), 1u);
  Rng rng(269);
  for (int trial = 0; trial < 60; ++trial) {
    const unsigned d = static_cast<unsigned>(rng.below(k + 1));
    auto subset = rng.sample_subset(n, d);
    std::vector<NodeId> ids;
    for (const auto v : subset) ids.push_back(v + 1);
    const auto sums = power_sums(ids, k);
    EXPECT_EQ(td.decode(d, sums, everyone), nd.decode(d, sums, everyone));
  }
}

}  // namespace
}  // namespace referee
