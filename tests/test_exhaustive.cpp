// Exhaustive verification over ALL 1024 labelled graphs on 5 vertices (and
// all 32768 on 6 where cheap): the gadget equivalences of Theorems 1-3 and
// the exactness of Theorem 5's protocol are checked on every graph, not a
// sample. This is the strongest executable statement of the paper's claims
// this side of a proof assistant.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/degeneracy.hpp"
#include "graph/enumerate.hpp"
#include "graph/subgraphs.hpp"
#include "model/simulator.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/forest_protocol.hpp"
#include "reductions/gadgets.hpp"

namespace referee {
namespace {

TEST(Exhaustive, DiameterGadgetOnAllGraphsN5) {
  // Theorem 2's equivalence holds for *arbitrary* G — so check every graph.
  std::uint64_t checked = 0;
  for_each_labelled_graph(5, [&](const Graph& g) {
    for (Vertex s = 0; s < 5; ++s) {
      for (Vertex t = s + 1; t < 5; ++t) {
        const auto d = diameter(diameter_gadget(g, s, t));
        ASSERT_TRUE(d.has_value());
        ASSERT_EQ(*d <= 3, g.has_edge(s, t))
            << "mask=" << mask_from_graph(g) << " s=" << s << " t=" << t;
        ASSERT_LE(*d, 4u);
        ++checked;
      }
    }
  });
  EXPECT_EQ(checked, 1024u * 10u);
}

TEST(Exhaustive, SquareGadgetOnAllSquareFreeGraphsN5) {
  std::uint64_t family = 0;
  for_each_labelled_graph(5, [&](const Graph& g) {
    if (has_square(g)) return;
    ++family;
    for (Vertex s = 0; s < 5; ++s) {
      for (Vertex t = s + 1; t < 5; ++t) {
        ASSERT_EQ(has_square(square_gadget(g, s, t)), g.has_edge(s, t))
            << "mask=" << mask_from_graph(g) << " s=" << s << " t=" << t;
      }
    }
  });
  EXPECT_EQ(family, count_square_free_graphs(5));
}

TEST(Exhaustive, TriangleGadgetOnAllTriangleFreeGraphsN5) {
  std::uint64_t family = 0;
  for_each_labelled_graph(5, [&](const Graph& g) {
    if (has_triangle(g)) return;
    ++family;
    for (Vertex s = 0; s < 5; ++s) {
      for (Vertex t = s + 1; t < 5; ++t) {
        ASSERT_EQ(has_triangle(triangle_gadget(g, s, t)), g.has_edge(s, t))
            << "mask=" << mask_from_graph(g) << " s=" << s << " t=" << t;
      }
    }
  });
  EXPECT_GT(family, 0u);
}

TEST(Exhaustive, DegeneracyProtocolExactOnAllGraphsN5) {
  // For every labelled graph on 5 vertices and every k in 1..4: the protocol
  // reconstructs exactly when degeneracy(G) <= k and throws otherwise.
  const Simulator sim;
  for (unsigned k = 1; k <= 4; ++k) {
    const DegeneracyReconstruction protocol(k);
    for_each_labelled_graph(5, [&](const Graph& g) {
      const bool in_class = degeneracy(g).degeneracy <= k;
      if (in_class) {
        ASSERT_EQ(sim.run_reconstruction(g, protocol), g)
            << "mask=" << mask_from_graph(g) << " k=" << k;
      } else {
        ASSERT_THROW(sim.run_reconstruction(g, protocol), DecodeError)
            << "mask=" << mask_from_graph(g) << " k=" << k;
      }
    });
  }
}

TEST(Exhaustive, ForestProtocolExactOnAllGraphsN5) {
  const Simulator sim;
  const ForestReconstruction protocol;
  for_each_labelled_graph(5, [&](const Graph& g) {
    const bool forest = !girth(g).has_value();
    if (forest) {
      ASSERT_EQ(sim.run_reconstruction(g, protocol), g)
          << "mask=" << mask_from_graph(g);
    } else {
      ASSERT_THROW(sim.run_reconstruction(g, protocol), DecodeError)
          << "mask=" << mask_from_graph(g);
    }
  });
}

TEST(Exhaustive, DegeneracyProtocolAtKOneOnAllGraphsN6) {
  // One sweep at n = 6 (32768 graphs) for the forest boundary: k = 1
  // reconstructs exactly the forests.
  const Simulator sim;
  const DegeneracyReconstruction protocol(1);
  std::uint64_t forests = 0;
  for_each_labelled_graph(6, [&](const Graph& g) {
    const bool forest = degeneracy(g).degeneracy <= 1;
    if (forest) {
      ++forests;
      ASSERT_EQ(sim.run_reconstruction(g, protocol), g);
    } else {
      ASSERT_THROW(sim.run_reconstruction(g, protocol), DecodeError);
    }
  });
  // Labelled forests on 6 vertices: OEIS A001858(6) = 2932.
  EXPECT_EQ(forests, 2932u);
}

}  // namespace
}  // namespace referee
