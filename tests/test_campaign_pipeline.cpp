// The plan/execute/aggregate pipeline: stable cell ids under sharding,
// byte-identical merged reports across shard and thread counts, merge
// associativity, shard provenance and its JSON round-trip, uniform typed
// failure for broken cells, and the mmap'd million-node cell path.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <vector>

#include "campaign/backend.hpp"
#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/scenario.hpp"
#include "graph/io.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace referee {
namespace {

CampaignConfig quick_config() {
  CampaignConfig config;
  config.generators = {"kdeg", "tree"};
  config.sizes = {16};
  config.protocols = {"degeneracy", "stats"};
  config.seeds = {1, 2, 3};
  return config;
}

TEST(CampaignPlan, ShardsPartitionTheGridWithStableIds) {
  const CampaignPlan plan{default_fault_sweep_config()};
  ASSERT_EQ(plan.total_cells(), 200u);
  EXPECT_TRUE(plan.is_full());
  EXPECT_FALSE(plan.is_shard());
  for (const unsigned count : {1u, 2u, 7u}) {
    std::set<std::size_t> seen;
    for (unsigned k = 0; k < count; ++k) {
      const CampaignPlan shard = plan.shard(k, count);
      EXPECT_EQ(shard.total_cells(), plan.total_cells());
      EXPECT_EQ(shard.is_shard(), count > 1);
      for (const CampaignCell& cell : shard.cells()) {
        // Stable id: the shard's cell is *the* grid cell, spec and all.
        EXPECT_EQ(plan.cells()[cell.id].spec.generator, cell.spec.generator);
        EXPECT_EQ(plan.cells()[cell.id].spec.seed, cell.spec.seed);
        EXPECT_TRUE(seen.insert(cell.id).second) << "overlapping shards";
      }
    }
    EXPECT_EQ(seen.size(), plan.total_cells()) << "shards must cover the grid";
  }
  EXPECT_THROW(plan.shard(3, 3), CheckError);
  EXPECT_THROW(plan.shard(0, 2).shard(0, 2), CheckError);
}

TEST(CampaignReport, MergedShardsAreByteIdenticalAcrossShardAndThreadCounts) {
  // The headline determinism pin: shard count {1, 2, 7} × thread count
  // {1, 4}, merged in descending shard order, all byte-identical to the
  // sequential single-process report of the default 200-cell sweep.
  const CampaignPlan plan{default_fault_sweep_config()};
  const std::string baseline = ThreadPoolBackend().run(plan).to_json();
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const ThreadPoolBackend backend(threads == 1 ? nullptr : &pool);
    for (const unsigned count : {1u, 2u, 7u}) {
      CampaignReport merged;
      for (unsigned k = count; k-- > 0;) {  // reversed: order must not matter
        merged.merge(backend.run(plan.shard(k, count)));
      }
      EXPECT_TRUE(merged.complete());
      EXPECT_EQ(merged.to_json(), baseline)
          << count << " shards, " << threads << " threads";
    }
  }
}

TEST(CampaignReport, MergeIsAssociative) {
  const CampaignPlan plan{quick_config()};
  const ThreadPoolBackend backend;
  const auto s0 = backend.run(plan.shard(0, 3));
  const auto s1 = backend.run(plan.shard(1, 3));
  const auto s2 = backend.run(plan.shard(2, 3));

  CampaignReport left = s0;
  left.merge(s1);
  left.merge(s2);
  CampaignReport right = s2;
  right.merge(s1);
  right.merge(s0);
  EXPECT_EQ(left.to_json(), right.to_json());
  EXPECT_EQ(left.to_json(), backend.run(plan).to_json());
}

TEST(CampaignReport, ShardJsonCarriesProvenanceAndRoundTrips) {
  const CampaignPlan plan{quick_config()};
  const ThreadPoolBackend backend;
  const auto shard0 = backend.run(plan.shard(0, 2));
  const std::string shard_json = shard0.to_json();
  EXPECT_NE(shard_json.find("\"shards\": [\n    {\"index\": 0, \"count\": 2"),
            std::string::npos);
  // Parse → re-emit is the identity on shard reports...
  EXPECT_EQ(CampaignReport::from_json(shard_json).to_json(), shard_json);
  // ...and parsed shards merge to the canonical (provenance-free) bytes.
  CampaignReport merged = CampaignReport::from_json(shard_json);
  merged.merge(CampaignReport::from_json(backend.run(plan.shard(1, 2)).to_json()));
  const std::string canonical = backend.run(plan).to_json();
  EXPECT_EQ(merged.to_json(), canonical);
  EXPECT_EQ(canonical.find("\"shards\""), std::string::npos);
  // Canonical reports round-trip too.
  EXPECT_EQ(CampaignReport::from_json(canonical).to_json(), canonical);
}

TEST(CampaignReport, MergeRejectsOverlapsAndForeignPlans) {
  const CampaignPlan plan{quick_config()};
  const ThreadPoolBackend backend;
  const auto s0 = backend.run(plan.shard(0, 2));
  CampaignReport merged = s0;
  EXPECT_THROW(merged.merge(s0), CheckError);  // duplicate cell ids

  CampaignConfig other = quick_config();
  other.seeds = {1};
  EXPECT_THROW(merged.merge(backend.run(CampaignPlan{other})), CheckError);
}

TEST(CampaignBackend, ThrowingCellSurfacesAsTypedCampaignError) {
  // A broken cell (unknown generator: the pipeline, not the referee,
  // fails) must surface as CampaignError naming the cell — on both the
  // sequential and the pooled path — and leave the backend reusable.
  std::vector<ScenarioSpec> grid(3);
  grid[1].generator = "no-such-family";
  const CampaignPlan plan = CampaignPlan::adopt(grid);
  const ThreadPoolBackend sequential;
  try {
    sequential.run(plan);
    FAIL() << "expected CampaignError";
  } catch (const CampaignError& e) {
    EXPECT_EQ(e.cell(), 1u);
    EXPECT_NE(std::string(e.what()).find("no-such-family"), std::string::npos);
  }
  ThreadPool pool(4);
  const ThreadPoolBackend pooled(&pool);
  EXPECT_THROW(pooled.run(plan), CampaignError);
  // The pool survives a failed campaign and still produces correct runs.
  grid[1].generator = "kdeg";
  const auto report = pooled.run(CampaignPlan::adopt(grid));
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.silent_wrong_count(), 0u);
}

TEST(CampaignBackend, FileCellsReportUnreadableGraphsAsCampaignError) {
  std::vector<ScenarioSpec> grid(1);
  grid[0].generator = "file:/no/such/file.rgb";
  grid[0].protocol = "stats";
  try {
    ThreadPoolBackend().run(CampaignPlan::adopt(grid));
    FAIL() << "expected CampaignError";
  } catch (const CampaignError& e) {
    EXPECT_EQ(e.cell(), 0u);
  }
}

class MmapMillionNodeCell : public ::testing::Test {
 protected:
  // One shared ≥10^6-node binary edge list for the whole suite: a path
  // with a chord every 64 vertices (so stats sees mixed degrees).
  static void SetUpTestSuite() {
    const auto dir =
        std::filesystem::temp_directory_path() / "referee_campaign_tests";
    std::filesystem::create_directories(dir);
    path_ = (dir / "million.rgb").string();
    constexpr std::size_t kN = 1u << 20;
    std::vector<Edge> edges;
    edges.reserve(kN + kN / 64);
    for (Vertex v = 0; v + 1 < kN; ++v) edges.emplace_back(v, v + 1);
    for (Vertex v = 0; v + 64 < kN; v += 64) edges.emplace_back(v, v + 64);
    write_edge_file(path_, kN, edges);
  }

  static std::string path_;
};

std::string MmapMillionNodeCell::path_;

TEST_F(MmapMillionNodeCell, SecondSweepDecodesWithZeroArenaGrowth) {
  // The scale acceptance pin: a campaign cell backed by an mmap'd binary
  // edge list with 2^20 nodes completes (correctly), and a second sweep
  // of the same cell performs zero decode-path arena growth — the
  // million-node input path inherits the warm-arena contract.
  ScenarioSpec spec;
  spec.generator = "file:" + path_;
  spec.protocol = "stats";
  spec.seed = 3;

  const auto first = run_scenario(spec);
  EXPECT_EQ(first.outcome, "correct");
  EXPECT_TRUE(first.contract_ok);
  EXPECT_EQ(first.report.n, 1u << 20);

  DecodeArena& arena = DecodeArena::for_current_thread();
  const auto warm_growth = arena.stats().growth_events;
  const auto warm_checkouts = arena.stats().checkouts;
  const auto second = run_scenario(spec);
  EXPECT_EQ(second.outcome, "correct");
  EXPECT_GT(arena.stats().checkouts, warm_checkouts)
      << "file cell did not route decode scratch through the arena";
  EXPECT_EQ(arena.stats().growth_events, warm_growth)
      << "second sweep over the mmap'd cell allocated decode scratch";
}

TEST_F(MmapMillionNodeCell, DegeneracyCellReconstructsWithZeroArenaGrowth) {
  // The tentpole acceptance pin: the heaviest protocol — full graph
  // reconstruction via power-sum decode — over the same mmap'd 2^20-node
  // edge list. The chord every 64 vertices keeps the decoder's windowed
  // candidate scan honest (chord neighbours sit outside the initial
  // window, forcing the widen-and-retry path), and the second sweep must
  // stay allocation-free exactly like the stats cell above.
  ScenarioSpec spec;
  spec.generator = "file:" + path_;
  spec.protocol = "degeneracy";
  spec.seed = 5;

  const auto first = run_scenario(spec);
  EXPECT_EQ(first.outcome, "exact");
  EXPECT_TRUE(first.contract_ok);
  EXPECT_EQ(first.report.n, 1u << 20);

  DecodeArena& arena = DecodeArena::for_current_thread();
  const auto warm_growth = arena.stats().growth_events;
  const auto warm_checkouts = arena.stats().checkouts;
  const auto second = run_scenario(spec);
  EXPECT_EQ(second.outcome, "exact");
  EXPECT_GT(arena.stats().checkouts, warm_checkouts)
      << "degeneracy file cell did not route decode scratch through the arena";
  EXPECT_EQ(arena.stats().growth_events, warm_growth)
      << "second degeneracy sweep over the mmap'd cell allocated scratch";
}

TEST_F(MmapMillionNodeCell, FileCellsStayLoudUnderCorrelatedFaults) {
  ScenarioSpec spec;
  spec.generator = "file:" + path_;
  spec.protocol = "stats";
  spec.faults = FaultPlan{.correlated = CorrelatedFaults{.drop_fraction = 0.001}};
  const auto res = run_scenario(spec);
  EXPECT_EQ(res.outcome, "loud");
  EXPECT_EQ(res.detail, "missing-message");
  EXPECT_TRUE(res.contract_ok);
}

TEST(CampaignFileCells, EveryProtocolMatchesTheGeneratedCellOnTheSameGraph) {
  // The one-pipeline pin: pack a generated graph into a binary edge list,
  // then run every campaign protocol twice — once through the generated
  // (adjacency-list) path, once through the file-backed (mmap'd CSR) path.
  // Same graph, same seed, same protocol ⇒ identical outcome and identical
  // frugality accounting; the two representations must be indistinguishable
  // end to end.
  const auto dir =
      std::filesystem::temp_directory_path() / "referee_campaign_tests";
  std::filesystem::create_directories(dir);
  const std::string file = (dir / "small.rgb").string();
  ScenarioSpec base;
  base.generator = "tree";  // in-class for every reconstruction protocol
  base.n = 48;
  base.seed = 9;
  const Graph g = make_campaign_graph(base);
  const auto edges = g.edges();
  write_edge_file(file, g.vertex_count(), edges);

  for (const char* protocol :
       {"degeneracy", "generalized", "forest", "bounded-degree", "stats",
        "recognize-degeneracy", "connectivity", "bipartite"}) {
    ScenarioSpec file_spec;
    file_spec.generator = "file:" + file;  // mmap'd CSR branch
    file_spec.protocol = protocol;
    file_spec.seed = base.seed;
    ScenarioSpec gen_spec = base;  // adjacency-list branch, same graph
    gen_spec.protocol = protocol;

    const auto file_res = run_scenario(file_spec);
    const auto gen_res = run_scenario(gen_spec);
    const bool reconstruction =
        std::string(protocol) == "degeneracy" ||
        std::string(protocol) == "generalized" ||
        std::string(protocol) == "forest" ||
        std::string(protocol) == "bounded-degree";
    EXPECT_EQ(file_res.outcome, reconstruction ? "exact" : "correct")
        << protocol << " (" << file_res.detail << ")";
    EXPECT_TRUE(file_res.contract_ok) << protocol;
    EXPECT_GT(file_res.report.max_bits, 0u) << protocol;
    EXPECT_EQ(gen_res.outcome, file_res.outcome) << protocol;
    EXPECT_EQ(gen_res.report.max_bits, file_res.report.max_bits) << protocol;
    EXPECT_EQ(gen_res.report.total_bits, file_res.report.total_bits)
        << protocol;
  }
}

}  // namespace
}  // namespace referee
