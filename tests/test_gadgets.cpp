// The G'_{s,t} equivalences that power Theorems 1-3 — the executable content
// of Figures 1 and 2.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/subgraphs.hpp"
#include "reductions/gadgets.hpp"

namespace referee {
namespace {

TEST(SquareGadget, Shape) {
  const Graph g = gen::path(4);
  const Graph gadget = square_gadget(g, 0, 3);
  EXPECT_EQ(gadget.vertex_count(), 8u);
  // 3 path edges + 4 pendant edges + 1 (n+s, n+t) edge.
  EXPECT_EQ(gadget.edge_count(), 8u);
  EXPECT_TRUE(gadget.has_edge(4, 7));
}

TEST(SquareGadget, EquivalenceOnSquareFreeGraphs) {
  Rng rng(383);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = gen::random_square_free(18, 700, rng);
    ASSERT_FALSE(has_square(g));
    for (int pick = 0; pick < 25; ++pick) {
      const auto s = static_cast<Vertex>(rng.below(18));
      const auto t = static_cast<Vertex>(rng.below(18));
      if (s == t) continue;
      EXPECT_EQ(has_square(square_gadget(g, s, t)), g.has_edge(s, t));
    }
  }
}

TEST(SquareGadget, TrianglesDoNotConfuseIt) {
  // Square-free graphs may contain triangles; the gadget must still work.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // triangle
  g.add_edge(2, 3);
  ASSERT_FALSE(has_square(g));
  EXPECT_TRUE(has_square(square_gadget(g, 0, 1)));
  EXPECT_FALSE(has_square(square_gadget(g, 0, 3)));
  EXPECT_FALSE(has_square(square_gadget(g, 0, 4)));
}

TEST(DiameterGadget, ShapeMatchesFigure1) {
  // Figure 1: G on 7 circled vertices, new vertices 8..10 (1-based) = 7..9
  // (0-based): 7 attaches to s, 8 to t, 9 to everyone.
  const Graph g = gen::cycle(7);
  const Graph gadget = diameter_gadget(g, 0, 6);
  EXPECT_EQ(gadget.vertex_count(), 10u);
  EXPECT_EQ(gadget.degree(7), 1u);
  EXPECT_EQ(gadget.degree(8), 1u);
  EXPECT_EQ(gadget.degree(9), 7u);
  EXPECT_TRUE(gadget.has_edge(0, 7));
  EXPECT_TRUE(gadget.has_edge(6, 8));
}

TEST(DiameterGadget, DiameterIsThreeIffEdgeElseFour) {
  Rng rng(389);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = gen::gnp(15, 0.25, rng);
    for (int pick = 0; pick < 25; ++pick) {
      const auto s = static_cast<Vertex>(rng.below(15));
      const auto t = static_cast<Vertex>(rng.below(15));
      if (s == t) continue;
      const auto d = diameter(diameter_gadget(g, s, t));
      ASSERT_TRUE(d.has_value());  // the hub connects everything
      if (g.has_edge(s, t)) {
        EXPECT_LE(*d, 3u);
      } else {
        EXPECT_EQ(*d, 4u);
      }
    }
  }
}

TEST(DiameterGadget, WorksOnDisconnectedInputs) {
  // The hub vertex makes G'_{s,t} connected even when G is not — the
  // reduction covers arbitrary graphs.
  Graph g(6);  // no edges at all
  const auto d = diameter(diameter_gadget(g, 1, 4));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 4u);
}

TEST(TriangleGadget, ShapeMatchesFigure2) {
  // Figure 2: G on 7 circled vertices, apex 8 (1-based) = 7 (0-based)
  // adjacent to s = 1 and t = 6.
  const Graph g = gen::path(7);
  const Graph gadget = triangle_gadget(g, 1, 6);
  EXPECT_EQ(gadget.vertex_count(), 8u);
  EXPECT_EQ(gadget.degree(7), 2u);
  EXPECT_EQ(gadget.edge_count(), g.edge_count() + 2);
}

TEST(TriangleGadget, EquivalenceOnBipartiteGraphs) {
  Rng rng(397);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = gen::random_bipartite(9, 9, 0.3, rng);
    ASSERT_FALSE(has_triangle(g));
    for (int pick = 0; pick < 25; ++pick) {
      const auto s = static_cast<Vertex>(rng.below(18));
      const auto t = static_cast<Vertex>(rng.below(18));
      if (s == t) continue;
      EXPECT_EQ(has_triangle(triangle_gadget(g, s, t)), g.has_edge(s, t));
    }
  }
}

TEST(TriangleGadget, FailsOutsideTriangleFreeDomain) {
  // Documented domain restriction: on a graph that already has a triangle
  // the gadget's "if" direction breaks — this is why Theorem 3 restricts Δ
  // to bipartite inputs.
  const Graph g = gen::complete(3);
  EXPECT_TRUE(has_triangle(triangle_gadget(g, 0, 1)));  // edge: fine
  // No-edge case cannot arise in K3; build one explicitly.
  Graph h = gen::complete(3);
  h.add_vertices(2);
  EXPECT_TRUE(has_triangle(triangle_gadget(h, 3, 4)));  // triangle pre-exists
  EXPECT_FALSE(h.has_edge(3, 4));
}

TEST(Gadgets, RejectBadEndpoints) {
  const Graph g = gen::path(4);
  EXPECT_THROW(square_gadget(g, 1, 1), CheckError);
  EXPECT_THROW(diameter_gadget(g, 0, 4), CheckError);
  EXPECT_THROW(triangle_gadget(g, 4, 0), CheckError);
}

}  // namespace
}  // namespace referee
