#include <gtest/gtest.h>

#include "bigint/biguint.hpp"
#include "support/bitstream.hpp"
#include "support/random.hpp"

namespace referee {
namespace {

TEST(BigUInt, ZeroBasics) {
  BigUInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(z.to_u64(), 0u);
}

TEST(BigUInt, SmallValueRoundTrip) {
  for (std::uint64_t v : {1ull, 2ull, 255ull, 1000000007ull, ~0ull}) {
    BigUInt b(v);
    EXPECT_EQ(b.to_u64(), v);
    EXPECT_EQ(BigUInt::from_decimal(b.to_decimal()), b);
  }
}

TEST(BigUInt, AdditionCarriesAcrossLimbs) {
  BigUInt a(~std::uint64_t{0});
  a += BigUInt(1);
  EXPECT_EQ(a.bit_length(), 65u);
  EXPECT_EQ(a.to_decimal(), "18446744073709551616");
}

TEST(BigUInt, SubtractionUnderflowThrows) {
  BigUInt a(5);
  EXPECT_THROW(a -= BigUInt(6), CheckError);
}

TEST(BigUInt, SubtractionBorrowsAcrossLimbs) {
  BigUInt a = BigUInt(1) << 128;
  a -= BigUInt(1);
  EXPECT_EQ(a.bit_length(), 128u);
  a += BigUInt(1);
  EXPECT_EQ(a, BigUInt(1) << 128);
}

TEST(BigUInt, MultiplicationMatchesDecimalReference) {
  // (2^64 - 1)^2 = 340282366920938463426481119284349108225
  BigUInt a(~std::uint64_t{0});
  EXPECT_EQ((a * a).to_decimal(), "340282366920938463426481119284349108225");
}

TEST(BigUInt, MulByZero) {
  BigUInt a(12345);
  EXPECT_TRUE((a * BigUInt(0)).is_zero());
  EXPECT_TRUE((BigUInt(0) * a).is_zero());
}

TEST(BigUInt, ArithmeticAgainstU64Reference) {
  Rng rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t a = rng.next() >> 33;  // keep products in range
    const std::uint64_t b = rng.next() >> 33;
    EXPECT_EQ((BigUInt(a) + BigUInt(b)).to_u64(), a + b);
    EXPECT_EQ((BigUInt(a) * BigUInt(b)).to_u64(), a * b);
    if (a >= b) {
      EXPECT_EQ((BigUInt(a) - BigUInt(b)).to_u64(), a - b);
    }
    if (b != 0) {
      EXPECT_EQ((BigUInt(a) / BigUInt(b)).to_u64(), a / b);
      EXPECT_EQ((BigUInt(a) % BigUInt(b)).to_u64(), a % b);
    }
  }
}

TEST(BigUInt, DivModIdentityOnWideOperands) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    BigUInt a(rng.next());
    a = (a << 70) + BigUInt(rng.next());
    BigUInt d(rng.next() | 1);
    d = (d << 10) + BigUInt(rng.next() & 0xFFFF);
    const auto dm = a.divmod(d);
    EXPECT_LT(dm.remainder, d);
    EXPECT_EQ(dm.quotient * d + dm.remainder, a);
  }
}

TEST(BigUInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigUInt(1).divmod(BigUInt(0)), CheckError);
  BigUInt a(1);
  EXPECT_THROW(a.div_small(0), CheckError);
}

TEST(BigUInt, DivSmallMatchesDivMod) {
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    BigUInt a(rng.next());
    a = (a << 64) + BigUInt(rng.next());
    const std::uint64_t d = (rng.next() >> 20) | 1;
    BigUInt q = a;
    const std::uint64_t rem = q.div_small(d);
    EXPECT_EQ(q, a / BigUInt(d));
    EXPECT_EQ(BigUInt(rem), a % BigUInt(d));
  }
}

TEST(BigUInt, ShiftsAreInverse) {
  Rng rng(43);
  for (const std::size_t shift : {1u, 63u, 64u, 65u, 130u}) {
    BigUInt a(rng.next() | 1);
    const BigUInt shifted = a << shift;
    EXPECT_EQ(shifted >> shift, a);
    EXPECT_EQ(shifted.bit_length(), a.bit_length() + shift);
  }
}

TEST(BigUInt, PowMatchesRepeatedMultiply) {
  BigUInt b(7);
  BigUInt acc(1);
  for (unsigned e = 0; e < 40; ++e) {
    EXPECT_EQ(b.pow(e), acc);
    acc *= b;
  }
  EXPECT_EQ(BigUInt::upow(10, 19).to_decimal(), "10000000000000000000");
}

TEST(BigUInt, ComparisonTotalOrder) {
  const BigUInt big = BigUInt(1) << 100;
  EXPECT_LT(BigUInt(0), BigUInt(1));
  EXPECT_LT(BigUInt(~std::uint64_t{0}), big);
  EXPECT_GT(big + BigUInt(1), big);
  EXPECT_EQ(big, BigUInt(1) << 100);
}

TEST(BigUInt, DecimalParseRejectsGarbage) {
  EXPECT_THROW(BigUInt::from_decimal(""), CheckError);
  EXPECT_THROW(BigUInt::from_decimal("12a3"), CheckError);
}

TEST(BigUInt, DecimalRoundTripLarge) {
  const std::string digits = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigUInt::from_decimal(digits).to_decimal(), digits);
}

class BigUIntSerialize : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigUIntSerialize, BitStreamRoundTrip) {
  BigUInt v = BigUInt(GetParam());
  v = (v << 40) + BigUInt(GetParam() / 3);
  BitWriter w;
  v.write(w);
  EXPECT_EQ(w.bit_size(), v.encoded_bits());
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(BigUInt::read(r), v);
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BigUIntSerialize,
                         ::testing::Values(0, 1, 2, 100, 65535, 1ull << 30,
                                           (1ull << 55) + 12345));

TEST(BigUInt, SerializeZero) {
  BigUInt z;
  BitWriter w;
  z.write(w);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_TRUE(BigUInt::read(r).is_zero());
}

TEST(BigUInt, AssignU64ResetsInPlace) {
  BigUInt v = BigUInt(7) << 200;  // multi-limb
  v.assign_u64(42);
  EXPECT_EQ(v.to_u64(), 42u);
  v.assign_u64(0);
  EXPECT_TRUE(v.is_zero());
}

TEST(BigUInt, MulU64MatchesGeneralMultiply) {
  for (const std::uint64_t m : {0ull, 1ull, 3ull, 0xFFFFFFFFFFFFFFFFull}) {
    BigUInt a = (BigUInt(0xDEADBEEFull) << 100) + BigUInt(12345);
    BigUInt expect = a * BigUInt(m);
    a.mul_u64(m);
    EXPECT_EQ(a, expect);
  }
  BigUInt zero;
  zero.mul_u64(17);
  EXPECT_TRUE(zero.is_zero());
}

TEST(BigUInt, MulIntoMatchesOperatorStar) {
  const BigUInt a = (BigUInt(987654321) << 70) + BigUInt(55);
  const BigUInt b = (BigUInt(1234567) << 64) + BigUInt(999);
  BigUInt out = BigUInt(1) << 300;  // stale multi-limb contents to overwrite
  BigUInt::mul_into(a, b, out);
  EXPECT_EQ(out, a * b);
  BigUInt::mul_into(a, BigUInt(), out);
  EXPECT_TRUE(out.is_zero());
}

TEST(BigUInt, ReadFromReusesStorageAndMatchesRead) {
  const BigUInt v = (BigUInt(31337) << 90) + BigUInt(7);
  BitWriter w;
  v.write(w);
  v.write(w);
  BitReader r(w.bytes(), w.bit_size());
  BigUInt scratch = BigUInt(1) << 500;  // larger than needed; must shrink fit
  scratch.read_from(r);
  EXPECT_EQ(scratch, v);
  scratch.read_from(r);
  EXPECT_EQ(scratch, v);
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace referee
