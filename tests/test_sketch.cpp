#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "model/simulator.hpp"
#include "sketch/bipartiteness.hpp"
#include "sketch/connectivity.hpp"
#include "sketch/l0_sampler.hpp"
#include "sketch/modp.hpp"
#include "sketch/partitioned.hpp"

namespace referee {
namespace {

TEST(ModP, FieldBasics) {
  EXPECT_EQ(modp::add(modp::kP - 1, 1), 0u);
  EXPECT_EQ(modp::sub(0, 1), modp::kP - 1);
  EXPECT_EQ(modp::mul(modp::kP - 1, modp::kP - 1), 1u);  // (-1)^2
  EXPECT_EQ(modp::pow(2, 61), 1u);  // 2^61 = p + 1 ≡ 1
  EXPECT_EQ(modp::pow(3, 0), 1u);
}

TEST(ModP, MulMatchesSmallReference) {
  Rng rng(433);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.below(1u << 30);
    const std::uint64_t b = rng.below(1u << 30);
    EXPECT_EQ(modp::mul(a, b), (a * b) % modp::kP);
  }
}

TEST(EdgeSlot, RoundTrip) {
  const std::uint64_t n = 37;
  std::uint64_t expect = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex w = u + 1; w < n; ++w) {
      const auto slot = edge_slot(n, u, w);
      EXPECT_EQ(slot, expect++);
      EXPECT_EQ(slot_edge(n, slot), (std::pair<Vertex, Vertex>{u, w}));
    }
  }
  EXPECT_EQ(expect, n * (n - 1) / 2);
}

TEST(OneSparse, RecoverSingleEntry) {
  const std::uint64_t z = 12345;
  OneSparse cell;
  cell.add(1, 42, z);
  const auto slot = cell.recover(z, 1000);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 42u);
}

TEST(OneSparse, RecoverNegativeEntry) {
  const std::uint64_t z = 999;
  OneSparse cell;
  cell.add(-1, 7, z);
  const auto slot = cell.recover(z, 1000);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, 7u);
}

TEST(OneSparse, CancellationLeavesEmpty) {
  const std::uint64_t z = 31337;
  OneSparse cell;
  cell.add(1, 42, z);
  cell.add(-1, 42, z);
  EXPECT_FALSE(cell.recover(z, 1000).has_value());
  EXPECT_EQ(cell.weight_sum, 0);
  EXPECT_EQ(cell.fingerprint, 0u);
}

TEST(OneSparse, TwoEntriesRejectedByFingerprint) {
  const std::uint64_t z = 777;
  OneSparse cell;
  cell.add(1, 10, z);
  cell.add(1, 20, z);  // weight_sum = 2: rejected outright
  EXPECT_FALSE(cell.recover(z, 1000).has_value());
  OneSparse mixed;
  mixed.add(1, 10, z);
  mixed.add(1, 20, z);
  mixed.add(-1, 15, z);  // weight_sum = 1, index_sum = 15: fake one-sparse
  EXPECT_FALSE(mixed.recover(z, 1000).has_value());
}

TEST(EdgeSketch, SingleEdgeSamples) {
  EdgeSketch s(10, /*seed=*/5);
  s.add_incident_edge(2, 7);
  const auto e = s.sample();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, (std::pair<Vertex, Vertex>{2, 7}));
}

TEST(EdgeSketch, MergeCancelsSharedEdge) {
  // Nodes 2 and 7 both sketch edge {2,7} with opposite signs; the union
  // {2,7} has no boundary, so the merged sketch must sample nothing.
  EdgeSketch a(10, 5);
  a.add_incident_edge(2, 7);
  EdgeSketch b(10, 5);
  b.add_incident_edge(7, 2);
  a.merge(b);
  EXPECT_FALSE(a.sample().has_value());
}

TEST(EdgeSketch, BoundarySurvivesMerge) {
  // Path 0-1-2: merging sketches of {0,1} leaves boundary edge {1,2}.
  const Graph g = gen::path(3);
  EdgeSketch s0(3, 9);
  s0.add_incident_edge(0, 1);
  EdgeSketch s1(3, 9);
  s1.add_incident_edge(1, 0);
  s1.add_incident_edge(1, 2);
  s0.merge(s1);
  const auto e = s0.sample();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, (std::pair<Vertex, Vertex>{1, 2}));
}

TEST(EdgeSketch, SerializationRoundTrip) {
  EdgeSketch s(20, 123);
  s.add_incident_edge(3, 15);
  s.add_incident_edge(3, 8);
  BitWriter w;
  s.write(w);
  BitReader r(w.bytes(), w.bit_size());
  const EdgeSketch t = EdgeSketch::read(r, 20, 123);
  EXPECT_TRUE(r.exhausted());
  // Same state: merging the negation of t's edges must cancel... simpler:
  // both must sample the same thing after adding a distinguishing edge.
  EXPECT_EQ(s.sample().has_value(), t.sample().has_value());
}

TEST(SketchComponents, ExactOnSmallDeterministicGraphs) {
  const SketchParams params{.seed = 0xABCD, .rounds = 0, .copies = 4};
  EXPECT_EQ(sketch_components(gen::path(10), params).component_count, 1u);
  EXPECT_EQ(sketch_components(gen::cycle(12), params).component_count, 1u);
  EXPECT_EQ(sketch_components(gen::complete(9), params).component_count, 1u);
  const Graph two = disjoint_union(gen::cycle(5), gen::path(6));
  EXPECT_EQ(sketch_components(two, params).component_count, 2u);
  EXPECT_EQ(sketch_components(gen::empty(7), params).component_count, 7u);
}

TEST(SketchComponents, ForestEdgesAreRealAndSpanning) {
  Rng rng(439);
  const Graph g = gen::connected_gnp(40, 0.08, rng);
  const SketchParams params{.seed = 0x1234, .rounds = 0, .copies = 4};
  const auto result = sketch_components(g, params);
  EXPECT_EQ(result.component_count, 1u);
  Graph forest(g.vertex_count());
  for (const Edge& e : result.forest) {
    EXPECT_TRUE(g.has_edge(e.u, e.v)) << e.u << "," << e.v;
    forest.add_edge(e.u, e.v);
  }
  EXPECT_TRUE(is_connected(forest));
}

TEST(SketchComponents, MatchesTruthOnRandomGraphs) {
  Rng rng(443);
  int correct = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const Graph g = gen::gnp(30, 0.07, rng);
    const SketchParams params{.seed = 0x5555u + static_cast<std::uint64_t>(trial),
                              .rounds = 0,
                              .copies = 4};
    const auto result = sketch_components(g, params);
    if (result.component_count == component_count(g)) ++correct;
  }
  // w.h.p. per instance; allow one unlucky seed in twenty.
  EXPECT_GE(correct, trials - 1);
}

TEST(SketchProtocol, OneRoundThroughTheSimulator) {
  Rng rng(449);
  const Simulator sim;
  const SketchConnectivityProtocol protocol(
      SketchParams{.seed = 77, .rounds = 0, .copies = 4});
  FrugalityReport report;
  EXPECT_TRUE(
      sim.run_decision(gen::connected_gnp(32, 0.1, rng), protocol, &report));
  EXPECT_GT(report.max_bits, 0u);
  const Graph two = disjoint_union(gen::path(16), gen::path(16));
  EXPECT_FALSE(sim.run_decision(two, protocol));
}

TEST(SketchProtocol, PolylogMessageGrowth) {
  // O(log³ n) bits per node: quadrupling n must scale messages by roughly
  // (log 4n / log n)³ — single digits — while the vertex count scales 16x.
  // (The constants are large, so this is a growth-rate test, not an
  // absolute-size test; at small n the sketches are *bigger* than adjacency
  // lists, and the asymptotics are the whole point.)
  Rng rng(457);
  const Simulator sim;
  const auto max_bits_at = [&](std::size_t n) {
    const Graph g = gen::gnp(n, 8.0 / static_cast<double>(n), rng);
    const SketchConnectivityProtocol protocol(
        SketchParams{.seed = 3, .rounds = 0, .copies = 3});
    FrugalityReport report;
    sim.run_decision(g, protocol, &report);
    return report.max_bits;
  };
  const auto small = max_bits_at(64);
  const auto large = max_bits_at(1024);
  EXPECT_GT(small, 0u);
  const double growth =
      static_cast<double>(large) / static_cast<double>(small);
  EXPECT_LT(growth, 8.0);   // (11/7)^3 ≈ 3.9 plus slack — far below 16x
  EXPECT_GT(growth, 1.0);   // it does grow (more rounds, more levels)
}

TEST(SketchProtocol, DecodeRejectsWrongMessageCount) {
  const SketchConnectivityProtocol protocol;
  std::vector<Message> none;
  EXPECT_THROW(protocol.decode(3, none), DecodeError);
}

TEST(Bipartiteness, ClassifiesCyclesCorrectly) {
  const Simulator sim;
  const SketchBipartitenessProtocol protocol(
      SketchParams{.seed = 0xBEEF, .rounds = 0, .copies = 4});
  EXPECT_TRUE(sim.run_decision(gen::cycle(8), protocol));
  EXPECT_FALSE(sim.run_decision(gen::cycle(9), protocol));
  EXPECT_TRUE(sim.run_decision(gen::hypercube(3), protocol));
  EXPECT_FALSE(sim.run_decision(gen::complete(4), protocol));
}

TEST(Bipartiteness, RandomBipartiteAndPlantedOddCycle) {
  Rng rng(461);
  const Simulator sim;
  int correct = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const SketchBipartitenessProtocol protocol(SketchParams{
        .seed = 0x700u + static_cast<std::uint64_t>(trial), .rounds = 0,
        .copies = 4});
    Graph g = gen::random_bipartite(10, 10, 0.25, rng);
    const bool ok_bip = sim.run_decision(g, protocol) == is_bipartite(g);
    // Add a same-side edge; this breaks bipartiteness iff the endpoints were
    // already connected (even path + this edge = odd cycle).
    Graph bad = g;
    bad.add_edge(0, 1);
    const bool ok_bad = sim.run_decision(bad, protocol) == is_bipartite(bad);
    if (ok_bip && ok_bad) ++correct;
  }
  EXPECT_GE(correct, trials - 1);
}

TEST(Bipartiteness, DisconnectedGraphs) {
  const Simulator sim;
  const SketchBipartitenessProtocol protocol(
      SketchParams{.seed = 0xF00D, .rounds = 0, .copies = 4});
  // Two even cycles: bipartite, cover has 4 components = 2 * 2.
  EXPECT_TRUE(
      sim.run_decision(disjoint_union(gen::cycle(4), gen::cycle(6)), protocol));
  // Even cycle + odd cycle: not bipartite.
  EXPECT_FALSE(
      sim.run_decision(disjoint_union(gen::cycle(4), gen::cycle(5)), protocol));
}

TEST(Partitioned, ExactOnEveryInput) {
  Rng rng(463);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::gnp(40, 0.05, rng);
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      const auto part = balanced_partition(40, k);
      const auto result = partitioned_connectivity(g, part, k);
      EXPECT_EQ(result.connected, is_connected(g));
      EXPECT_EQ(result.component_count, component_count(g));
    }
  }
}

TEST(Partitioned, BitsScaleWithK) {
  Rng rng(467);
  const Graph g = gen::connected_gnp(60, 0.2, rng);
  const auto r1 =
      partitioned_connectivity(g, balanced_partition(60, 1), 1);
  const auto r8 =
      partitioned_connectivity(g, balanced_partition(60, 8), 8);
  EXPECT_LE(r1.total_bits, r8.total_bits);
  // O(k log n) per node: with log-units of 6 bits (n=60), k=8 parts stay
  // under 8 * 2 log-units per node.
  EXPECT_LE(r8.bits_per_node, 8.0 * 2.0 * 6.0);
}

TEST(Partitioned, SinglePartIsJustASpanningForest) {
  const Graph g = gen::cycle(10);
  const auto result =
      partitioned_connectivity(g, balanced_partition(10, 1), 1);
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.union_forest.size(), 9u);
}

TEST(Partitioned, RejectsBadLabels) {
  const Graph g = gen::path(4);
  const std::vector<std::uint32_t> bad{0, 1, 2, 5};
  EXPECT_THROW(partitioned_connectivity(g, bad, 3), CheckError);
}

}  // namespace
}  // namespace referee
