#include "service/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/check.hpp"

#include "service/procedure.hpp"
#include "service/service_core.hpp"
#include "service/wire.hpp"

namespace referee {
namespace {

std::string test_socket_path(const char* tag) {
  return "/tmp/referee-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

/// A live daemon for one test: core + server + serving thread, torn down
/// by a drain in the destructor.
struct LiveServer {
  explicit LiveServer(const std::string& path,
                      ServiceCore::Config config = {})
      : core(config), server(ServiceServer::Config{path, &core}) {
    thread = std::thread([this] { exit_code = server.serve(log); });
    while (!server.ready()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  ~LiveServer() {
    if (thread.joinable()) {
      server.request_shutdown();
      thread.join();
    }
  }

  void shutdown() {
    server.request_shutdown();
    thread.join();
  }

  ServiceCore core;
  ServiceServer server;
  std::ostringstream log;
  std::thread thread;
  int exit_code = -1;
};

Request make_request(std::string proc,
                     std::map<std::string, std::string> args = {},
                     std::string input = {}) {
  Request request;
  request.proc = std::move(proc);
  request.args.values = std::move(args);
  request.input = std::move(input);
  return request;
}

TEST(WireFormat, RequestRoundTripsThroughJson) {
  Request request = make_request(
      "campaign", {{"generators", "kdeg,tree"}, {"json", "1"}},
      "6 5\n0 1\n\"quoted\\back\"\n");
  const Request parsed = parse_request(format_request(request));
  EXPECT_EQ(parsed.proc, request.proc);
  EXPECT_EQ(parsed.args.values, request.args.values);
  EXPECT_EQ(parsed.input, request.input);
}

TEST(WireFormat, ResponseRoundTripsThroughJson) {
  ServiceResponse response;
  response.status = ServiceStatus::kOverloaded;
  response.exit_code = 3;
  response.output = "line\nwith\ttabs";
  response.log = "control\x01byte";
  const ServiceResponse parsed = parse_response(format_response(response));
  EXPECT_EQ(parsed.status, response.status);
  EXPECT_EQ(parsed.exit_code, response.exit_code);
  EXPECT_EQ(parsed.output, response.output);
  EXPECT_EQ(parsed.log, response.log);
}

TEST(WireFormat, MalformedFramesFailLoudly) {
  EXPECT_THROW(parse_request("{"), CheckError);
  EXPECT_THROW(parse_request("{\"proc\":\"x\",\"evil\":\"y\"}"), CheckError);
  EXPECT_THROW(parse_request("{\"args\":{}}"), CheckError);  // no proc
  EXPECT_THROW(parse_response("{\"exit\":0}"), CheckError);  // no status
}

TEST(ServiceServer, ServesARequestOverTheSocket) {
  const std::string path = test_socket_path("basic");
  LiveServer live(path);
  ServiceClient client(path);
  const ServiceResponse response = client.call(
      make_request("gen", {{"family", "path"}, {"n", "6"}, {"seed", "1"}}));
  EXPECT_EQ(response.status, ServiceStatus::kOk);
  EXPECT_EQ(response.exit_code, 0);
  EXPECT_EQ(response.output, "6 5\n0 1\n1 2\n2 3\n3 4\n4 5\n");
}

TEST(ServiceServer, CampaignBytesMatchAcrossAllThreeFrontends) {
  // The byte-identity pin of the refactor: the same campaign request run
  // (a) through the handler directly — the batch CLI path, (b) through an
  // in-process ServiceCore, (c) over the serve socket, produces the
  // identical referee-campaign-v3 JSON.
  const Request request = make_request("campaign", {{"generators", "kdeg"},
                                                    {"sizes", "16"},
                                                    {"protocols", "degeneracy"},
                                                    {"seeds", "2"},
                                                    {"json", "1"}});
  std::ostringstream out;
  std::ostringstream err;
  ProcedureIO io{out, err};
  ProcedureContext context;
  const ProcedureDesc* desc = find_procedure("campaign");
  ASSERT_NE(desc, nullptr);
  ASSERT_EQ(desc->handler(request, context, io), 0);
  const std::string cli_bytes = out.str();
  ASSERT_FALSE(cli_bytes.empty());

  ServiceCore::Config config;
  config.workers = 2;
  ServiceCore core(config);
  const ServiceResponse in_process = core.call(request);
  ASSERT_EQ(in_process.status, ServiceStatus::kOk) << in_process.log;
  EXPECT_EQ(in_process.output, cli_bytes);

  const std::string path = test_socket_path("identity");
  LiveServer live(path);
  ServiceClient client(path);
  const ServiceResponse served = client.call(request);
  ASSERT_EQ(served.status, ServiceStatus::kOk) << served.log;
  EXPECT_EQ(served.output, cli_bytes);
}

TEST(ServiceServer, ConcurrentClientsAllGetTheirOwnBytes) {
  const std::string path = test_socket_path("concurrent");
  ServiceCore::Config config;
  config.workers = 2;
  config.queue_capacity = 64;
  LiveServer live(path, config);
  constexpr int kClients = 4;
  constexpr int kCallsEach = 5;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServiceClient client(path);
      for (int i = 0; i < kCallsEach; ++i) {
        const int n = 4 + (c * kCallsEach + i) % 5;
        const ServiceResponse response = client.call(make_request(
            "gen", {{"family", "path"}, {"n", std::to_string(n)}}));
        // A path on n vertices has n-1 edges; the header pins whose
        // response this is.
        const std::string expected_header =
            std::to_string(n) + " " + std::to_string(n - 1) + "\n";
        if (response.status != ServiceStatus::kOk ||
            response.output.rfind(expected_header, 0) != 0) {
          ++failures[c];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0);
}

TEST(ServiceServer, UnknownProcedureAnswersTyped) {
  const std::string path = test_socket_path("unknown");
  LiveServer live(path);
  ServiceClient client(path);
  const ServiceResponse response = client.call(make_request("frobnicate"));
  EXPECT_EQ(response.status, ServiceStatus::kUnknownProcedure);
  EXPECT_EQ(response.exit_code, 2);
}

TEST(ServiceServer, ShutdownDrainsAndUnlinksTheSocket) {
  const std::string path = test_socket_path("drain");
  {
    LiveServer live(path);
    ServiceClient client(path);
    EXPECT_EQ(client.call(make_request("selftest")).status,
              ServiceStatus::kOk);
    live.shutdown();
    EXPECT_EQ(live.exit_code, 0);
    EXPECT_NE(live.log.str().find("drained"), std::string::npos);
  }
  // The socket file is gone: a restart can bind cleanly.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ServiceServer, ServedStatsReportTheDaemonCounters) {
  const std::string path = test_socket_path("stats");
  LiveServer live(path);
  ServiceClient client(path);
  ASSERT_EQ(client
                .call(make_request("gen", {{"family", "path"}, {"n", "4"}}))
                .status,
            ServiceStatus::kOk);
  const ServiceResponse first = client.call(make_request("service stats"));
  ASSERT_EQ(first.status, ServiceStatus::kOk) << first.log;
  EXPECT_NE(first.output.find("\"referee-service-stats\":1"),
            std::string::npos);
  const ServiceResponse second = client.call(make_request("service stats"));
  // Monotone: the second snapshot has seen at least the first stats call.
  const auto count_of = [](const std::string& json, const std::string& name) {
    const auto at = json.find("\"name\":\"" + name + "\"");
    EXPECT_NE(at, std::string::npos);
    const auto req_at = json.find("\"requests\":", at);
    return std::stoull(json.substr(req_at + 11));
  };
  EXPECT_GT(count_of(second.output, "service stats"),
            count_of(first.output, "service stats") - 1);
  EXPECT_EQ(count_of(second.output, "gen"), 1u);
}

}  // namespace
}  // namespace referee
