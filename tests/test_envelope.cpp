// Transcript envelope: seal/open is an identity on honest transcripts, and
// every correlated-fault signature maps to its typed DecodeFault.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/envelope.hpp"
#include "model/simulator.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "support/bits.hpp"

namespace referee {
namespace {

std::vector<Message> sealed_transcript(const Graph& g, std::uint64_t epoch) {
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  auto msgs = sim.run_local_phase(g, protocol);
  seal_transcript(epoch, static_cast<std::uint32_t>(g.vertex_count()), msgs);
  return msgs;
}

DecodeFault open_fault(std::uint64_t epoch, std::uint32_t n,
                       std::span<const Message> msgs) {
  try {
    open_transcript(epoch, n, msgs);
  } catch (const DecodeError& e) {
    return e.fault();
  }
  ADD_FAILURE() << "open_transcript did not throw";
  return DecodeFault::kUnspecified;
}

TEST(Envelope, SealOpenRoundTripsHonestTranscripts) {
  Rng rng(11);
  const Graph g = gen::random_k_degenerate(20, 2, rng);
  const Simulator sim;
  const DegeneracyReconstruction protocol(2);
  const auto payloads = sim.run_local_phase(g, protocol);
  auto wire = payloads;
  seal_transcript(77, 20, wire);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_GT(wire[i].bit_size(), payloads[i].bit_size());
  }
  const auto opened = open_transcript(77, 20, wire);
  ASSERT_EQ(opened.size(), payloads.size());
  for (std::size_t i = 0; i < opened.size(); ++i) {
    EXPECT_EQ(opened[i], payloads[i]) << i;
  }
  // ...and the decoder agrees end to end.
  EXPECT_EQ(protocol.reconstruct(20, opened), g);
}

TEST(Envelope, HeaderCostsTagPlusIdBits) {
  BitWriter w;
  w.write_bits(0b1011, 4);
  const Message payload = Message::seal(std::move(w));
  const Message sealed = seal_message(5, 3, 20, payload);
  EXPECT_EQ(sealed.bit_size(),
            payload.bit_size() + static_cast<std::size_t>(kEpochTagBits) +
                static_cast<std::size_t>(log_budget_bits(20)));
}

TEST(Envelope, DroppedMessageIsMissingMessage) {
  Rng rng(13);
  const Graph g = gen::random_k_degenerate(16, 2, rng);
  auto wire = sealed_transcript(g, 9);
  wire[7] = Message();
  EXPECT_EQ(open_fault(9, 16, wire), DecodeFault::kMissingMessage);
}

TEST(Envelope, SwappedPayloadsAreIdMismatch) {
  Rng rng(17);
  const Graph g = gen::random_k_degenerate(16, 2, rng);
  auto wire = sealed_transcript(g, 9);
  std::swap(wire[2], wire[11]);
  EXPECT_EQ(open_fault(9, 16, wire), DecodeFault::kIdMismatch);
}

TEST(Envelope, DuplicateIdIsIdMismatch) {
  Rng rng(19);
  const Graph g = gen::random_k_degenerate(16, 2, rng);
  auto wire = sealed_transcript(g, 9);
  wire[11] = wire[2];  // two slots now claim id 3
  EXPECT_EQ(open_fault(9, 16, wire), DecodeFault::kIdMismatch);
}

TEST(Envelope, CrossEpochMessageIsEpochMismatch) {
  Rng rng(23);
  const Graph g = gen::random_k_degenerate(16, 2, rng);
  auto wire = sealed_transcript(g, 9);
  const auto stale = sealed_transcript(g, 10);  // same cell, other epoch
  wire[4] = stale[4];
  EXPECT_EQ(open_fault(9, 16, wire), DecodeFault::kEpochMismatch);
}

TEST(Envelope, TruncationIntoHeaderIsTruncated) {
  Rng rng(29);
  const Graph g = gen::random_k_degenerate(16, 2, rng);
  auto wire = sealed_transcript(g, 9);
  wire[0].truncate(kEpochTagBits - 3);
  EXPECT_EQ(open_fault(9, 16, wire), DecodeFault::kTruncated);
}

TEST(Envelope, WrongCountIsCountMismatch) {
  Rng rng(31);
  const Graph g = gen::random_k_degenerate(16, 2, rng);
  auto wire = sealed_transcript(g, 9);
  wire.pop_back();
  EXPECT_EQ(open_fault(9, 16, wire), DecodeFault::kCountMismatch);
}

TEST(Envelope, TagFlipInHeaderIsLoud) {
  Rng rng(37);
  const Graph g = gen::random_k_degenerate(16, 2, rng);
  auto wire = sealed_transcript(g, 9);
  wire[3].flip_bit(5);  // inside the epoch tag
  EXPECT_EQ(open_fault(9, 16, wire), DecodeFault::kEpochMismatch);
}

}  // namespace
}  // namespace referee
