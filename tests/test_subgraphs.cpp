#include <gtest/gtest.h>

#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "graph/subgraphs.hpp"
#include "reductions/gadgets.hpp"

namespace referee {
namespace {

TEST(Triangles, Detection) {
  EXPECT_FALSE(has_triangle(gen::path(10)));
  EXPECT_FALSE(has_triangle(gen::cycle(4)));
  EXPECT_TRUE(has_triangle(gen::cycle(3)));
  EXPECT_TRUE(has_triangle(gen::complete(4)));
  EXPECT_FALSE(has_triangle(gen::complete_bipartite(4, 4)));
  EXPECT_FALSE(has_triangle(gen::hypercube(4)));
}

TEST(Triangles, FoundTriangleIsReal) {
  Rng rng(211);
  const Graph g = gen::gnp(30, 0.3, rng);
  const auto t = find_triangle(g);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(g.has_edge((*t)[0], (*t)[1]));
  EXPECT_TRUE(g.has_edge((*t)[1], (*t)[2]));
  EXPECT_TRUE(g.has_edge((*t)[0], (*t)[2]));
}

TEST(Triangles, CountsOnKnownGraphs) {
  EXPECT_EQ(count_triangles(gen::complete(4)), 4u);
  EXPECT_EQ(count_triangles(gen::complete(6)), 20u);  // C(6,3)
  EXPECT_EQ(count_triangles(gen::cycle(3)), 1u);
  EXPECT_EQ(count_triangles(gen::cycle(6)), 0u);
  EXPECT_EQ(count_triangles(gen::star(10)), 0u);
}

TEST(Squares, Detection) {
  EXPECT_FALSE(has_square(gen::path(10)));
  EXPECT_FALSE(has_square(gen::cycle(3)));
  EXPECT_TRUE(has_square(gen::cycle(4)));
  EXPECT_FALSE(has_square(gen::cycle(5)));
  EXPECT_TRUE(has_square(gen::grid(2, 2)));
  EXPECT_TRUE(has_square(gen::complete(4)));
  EXPECT_TRUE(has_square(gen::complete_bipartite(2, 2)));
  EXPECT_TRUE(has_square(gen::hypercube(3)));
}

TEST(Squares, FoundSquareIsReal) {
  Rng rng(223);
  const Graph g = gen::gnp(25, 0.3, rng);
  const auto s = find_square(g);
  ASSERT_TRUE(s.has_value());
  const auto& q = *s;
  EXPECT_TRUE(g.has_edge(q[0], q[1]));
  EXPECT_TRUE(g.has_edge(q[1], q[2]));
  EXPECT_TRUE(g.has_edge(q[2], q[3]));
  EXPECT_TRUE(g.has_edge(q[3], q[0]));
  // Four distinct vertices.
  EXPECT_NE(q[0], q[2]);
  EXPECT_NE(q[1], q[3]);
}

TEST(Squares, CountsOnKnownGraphs) {
  EXPECT_EQ(count_squares(gen::cycle(4)), 1u);
  EXPECT_EQ(count_squares(gen::complete(4)), 3u);
  EXPECT_EQ(count_squares(gen::complete_bipartite(2, 2)), 1u);
  EXPECT_EQ(count_squares(gen::complete_bipartite(2, 3)), 3u);  // C(2,2)*C(3,2)
  EXPECT_EQ(count_squares(gen::grid(2, 3)), 2u);
  EXPECT_EQ(count_squares(gen::hypercube(3)), 6u);  // the 6 faces
  EXPECT_EQ(count_squares(gen::cycle(5)), 0u);
}

TEST(Squares, CountMatchesBruteForceOnSmallGraphs) {
  // Cross-check the common-neighbour counting against direct 4-tuple
  // enumeration over all labelled graphs on 5 vertices (2^10 of them).
  for_each_labelled_graph(5, [](const Graph& g) {
    std::uint64_t brute = 0;
    const auto n = static_cast<Vertex>(g.vertex_count());
    for (Vertex a = 0; a < n; ++a)
      for (Vertex b = 0; b < n; ++b)
        for (Vertex c = 0; c < n; ++c)
          for (Vertex d = 0; d < n; ++d) {
            if (a == b || a == c || a == d || b == c || b == d || c == d) {
              continue;
            }
            if (g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(c, d) &&
                g.has_edge(d, a)) {
              ++brute;
            }
          }
    // Each C4 is counted 8 times (4 rotations x 2 directions).
    ASSERT_EQ(count_squares(g), brute / 8);
    ASSERT_EQ(has_square(g), brute > 0);
  });
}

TEST(InducedSquares, KnownGraphs) {
  EXPECT_TRUE(has_induced_square(gen::cycle(4)));
  EXPECT_TRUE(has_induced_square(gen::grid(2, 2)));
  // K4 contains C4s but every one has chords.
  EXPECT_FALSE(has_induced_square(gen::complete(4)));
  EXPECT_TRUE(has_induced_square(gen::complete_bipartite(2, 2)));
  EXPECT_TRUE(has_induced_square(gen::hypercube(3)));
  EXPECT_FALSE(has_induced_square(gen::path(8)));
  // Wheel W4 (C4 + universal hub): the rim is still an induced C4.
  Graph wheel = gen::cycle(4);
  const Vertex hub = wheel.add_vertices(1);
  for (Vertex v = 0; v < 4; ++v) wheel.add_edge(v, hub);
  EXPECT_TRUE(has_induced_square(wheel));
}

TEST(InducedSquares, FoundWitnessIsChordlessCycle) {
  Rng rng(229);
  const Graph g = gen::gnp(25, 0.25, rng);
  const auto s = find_induced_square(g);
  ASSERT_TRUE(s.has_value());
  const auto& q = *s;
  EXPECT_TRUE(g.has_edge(q[0], q[1]));
  EXPECT_TRUE(g.has_edge(q[1], q[2]));
  EXPECT_TRUE(g.has_edge(q[2], q[3]));
  EXPECT_TRUE(g.has_edge(q[3], q[0]));
  EXPECT_FALSE(g.has_edge(q[0], q[2]));
  EXPECT_FALSE(g.has_edge(q[1], q[3]));
}

TEST(InducedSquares, MatchesBruteForceOnSmallGraphs) {
  for_each_labelled_graph(5, [](const Graph& g) {
    bool brute = false;
    const auto n = static_cast<Vertex>(g.vertex_count());
    for (Vertex a = 0; a < n && !brute; ++a)
      for (Vertex b = 0; b < n && !brute; ++b)
        for (Vertex c = 0; c < n && !brute; ++c)
          for (Vertex d = 0; d < n && !brute; ++d) {
            if (a == b || a == c || a == d || b == c || b == d || c == d) {
              continue;
            }
            brute = g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(c, d) &&
                    g.has_edge(d, a) && !g.has_edge(a, c) && !g.has_edge(b, d);
          }
    ASSERT_EQ(has_induced_square(g), brute);
  });
}

TEST(InducedSquares, GadgetSquareIsChordless) {
  // The §II-A closing remark: the reduction's created square is induced, so
  // Theorem 1 extends verbatim. Verify on square-free graphs: the gadget
  // has an *induced* C4 iff {s,t} is an edge.
  Rng rng(233);
  const Graph g = gen::random_square_free(16, 600, rng);
  for (int pick = 0; pick < 40; ++pick) {
    const auto s = static_cast<Vertex>(rng.below(16));
    auto t = static_cast<Vertex>(rng.below(16));
    if (s == t) continue;
    EXPECT_EQ(has_induced_square(square_gadget(g, s, t)), g.has_edge(s, t));
  }
}

TEST(Triangles, CountMatchesBruteForceOnSmallGraphs) {
  for_each_labelled_graph(5, [](const Graph& g) {
    std::uint64_t brute = 0;
    const auto n = static_cast<Vertex>(g.vertex_count());
    for (Vertex a = 0; a < n; ++a)
      for (Vertex b = static_cast<Vertex>(a + 1); b < n; ++b)
        for (Vertex c = static_cast<Vertex>(b + 1); c < n; ++c) {
          if (g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c)) {
            ++brute;
          }
        }
    ASSERT_EQ(count_triangles(g), brute);
    ASSERT_EQ(has_triangle(g), brute > 0);
  });
}

}  // namespace
}  // namespace referee
