#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/mincut.hpp"
#include "graph/transforms.hpp"
#include "graph/union_find.hpp"

namespace referee {
namespace {

TEST(UnionFind, BasicMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_EQ(uf.set_count(), 6u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.set_count(), 4u);
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_size(3), 4u);
}

TEST(MinCut, KnownValues) {
  EXPECT_EQ(edge_connectivity(gen::cycle(8)), 2u);
  EXPECT_EQ(edge_connectivity(gen::path(8)), 1u);
  EXPECT_EQ(edge_connectivity(gen::complete(6)), 5u);
  EXPECT_EQ(edge_connectivity(gen::complete_bipartite(3, 5)), 3u);
  EXPECT_EQ(edge_connectivity(gen::hypercube(4)), 4u);
  EXPECT_EQ(edge_connectivity(gen::star(7)), 1u);
  EXPECT_EQ(edge_connectivity(gen::torus(4, 4)), 4u);
}

TEST(MinCut, DisconnectedIsZero) {
  EXPECT_EQ(edge_connectivity(disjoint_union(gen::cycle(4), gen::cycle(4))),
            0u);
  EXPECT_EQ(edge_connectivity(gen::empty(5)), 0u);
}

TEST(MinCut, TrivialGraphs) {
  EXPECT_FALSE(global_min_cut(Graph(0)).has_value());
  EXPECT_FALSE(global_min_cut(Graph(1)).has_value());
  EXPECT_EQ(global_min_cut(gen::path(2)).value(), 1u);
}

TEST(MinCut, BridgeDetected) {
  // Two K4s joined by one edge: λ = 1 even though min degree is 3.
  Graph g = disjoint_union(gen::complete(4), gen::complete(4));
  g.add_edge(0, 4);
  EXPECT_EQ(edge_connectivity(g), 1u);
}

TEST(MinCut, TwoBridges) {
  Graph g = disjoint_union(gen::complete(4), gen::complete(4));
  g.add_edge(0, 4);
  g.add_edge(1, 5);
  EXPECT_EQ(edge_connectivity(g), 2u);
}

TEST(MinCut, NeverExceedsMinDegree) {
  Rng rng(599);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::connected_gnp(20, 0.3, rng);
    EXPECT_LE(edge_connectivity(g), g.min_degree());
  }
}

TEST(MinCut, IsKEdgeConnectedBoundary) {
  const Graph g = gen::cycle(10);
  EXPECT_TRUE(is_k_edge_connected(g, 0));
  EXPECT_TRUE(is_k_edge_connected(g, 1));
  EXPECT_TRUE(is_k_edge_connected(g, 2));
  EXPECT_FALSE(is_k_edge_connected(g, 3));
  EXPECT_FALSE(is_k_edge_connected(Graph(1), 1));
}

TEST(MinCut, MatchesBruteForceOnSmallGraphs) {
  // Cross-check Stoer–Wagner against brute-force cut enumeration on random
  // small graphs (2^(n-1) - 1 cuts for n = 8: cheap).
  Rng rng(601);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::gnp(8, 0.5, rng);
    const auto edges = g.edges();
    std::uint64_t brute = UINT64_MAX;
    for (std::uint32_t mask = 1; mask < (1u << 7); ++mask) {
      // Side assignment: vertex 7 always on side 0; mask covers 0..6.
      std::uint64_t crossing = 0;
      for (const Edge& e : edges) {
        const bool su = e.u < 7 && ((mask >> e.u) & 1u);
        const bool sv = e.v < 7 && ((mask >> e.v) & 1u);
        if (su != sv) ++crossing;
      }
      brute = std::min(brute, crossing);
    }
    EXPECT_EQ(global_min_cut(g).value(), brute);
  }
}

}  // namespace
}  // namespace referee
