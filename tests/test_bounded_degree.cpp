#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/simulator.hpp"
#include "protocols/bounded_degree.hpp"

namespace referee {
namespace {

TEST(BoundedDegree, ReconstructsRegularTopologies) {
  const Simulator sim;
  const BoundedDegreeReconstruction protocol(4);
  for (const Graph& g : {gen::cycle(20), gen::grid(5, 5), gen::torus(4, 5),
                         gen::hypercube(4)}) {
    EXPECT_EQ(sim.run_reconstruction(g, protocol), g);
  }
}

TEST(BoundedDegree, ReconstructsRandomRegular) {
  Rng rng(379);
  const Simulator sim;
  const Graph g = gen::random_regular(30, 3, rng);
  EXPECT_EQ(sim.run_reconstruction(g, BoundedDegreeReconstruction(3)), g);
}

TEST(BoundedDegree, LocalRejectsDegreeViolation) {
  const BoundedDegreeReconstruction protocol(2);
  const Graph g = gen::star(5);  // centre has degree 5
  EXPECT_THROW(protocol.local(local_view_of(g, 0)), CheckError);
}

TEST(BoundedDegree, UnreciprocatedEdgeDetected) {
  // Hand-craft messages where node 1 claims an edge to 2 but not vice versa.
  const BoundedDegreeReconstruction protocol(2);
  const std::uint32_t n = 3;
  std::vector<Message> msgs;
  msgs.push_back(protocol.local(make_view(1, n, {2})));
  msgs.push_back(protocol.local(make_view(2, n, {})));
  msgs.push_back(protocol.local(make_view(3, n, {})));
  EXPECT_THROW(protocol.reconstruct(n, msgs), DecodeError);
}

TEST(BoundedDegree, MessageLinearInDegree) {
  const Simulator sim;
  FrugalityReport report;
  sim.run_reconstruction(gen::cycle(100), BoundedDegreeReconstruction(2),
                         &report);
  // id + deg + 2 neighbour ids = 4 log-units.
  EXPECT_LE(report.constant(), 4.0);
}

TEST(BoundedDegree, EmptyGraph) {
  const Simulator sim;
  const BoundedDegreeReconstruction protocol(1);
  EXPECT_EQ(sim.run_reconstruction(gen::empty(6), protocol), gen::empty(6));
}

}  // namespace
}  // namespace referee
