// The paper's closing extension (§III, last paragraph): graphs of
// *generalised* degeneracy k — there is an ordering (r_1,…,r_n) where each
// r_i has degree <= k in G_i **or** in the complement of G_i.
//
// Following the paper's hint, every node encodes both its neighbourhood and
// its non-neighbourhood: the message carries deg(x) plus power sums of N(x)
// and of V \ (N(x) ∪ {x}). The referee prunes a vertex whenever its residual
// degree or residual co-degree is <= k, decoding whichever side is small and
// patching both sides of the survivors' tuples. Message size doubles
// (2k sums instead of k) — still O(k² log n).
#pragma once

#include <memory>

#include "model/protocol.hpp"
#include "numth/decoder.hpp"

namespace referee {

class GeneralizedDegeneracyReconstruction final
    : public ReconstructionProtocol {
 public:
  explicit GeneralizedDegeneracyReconstruction(
      unsigned k, std::shared_ptr<const NeighborhoodDecoder> decoder = nullptr);

  unsigned k() const { return k_; }

  std::string name() const override;
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using ReconstructionProtocol::reconstruct;
  Graph reconstruct(std::uint32_t n, std::span<const Message> messages,
                    DecodeArena& arena) const override;

 private:
  unsigned k_;
  std::shared_ptr<const NeighborhoodDecoder> decoder_;
};

}  // namespace referee
