// The paper's positive result (Theorem 5): a one-round frugal protocol
// reconstructing every graph of degeneracy <= k.
//
// Local function (Algorithm 3): node x sends the (k+2)-tuple
//   ( ID(x), deg(x), Σ_{w∈N(x)} ID(w)^1, ..., Σ_{w∈N(x)} ID(w)^k )
// — O(k² log n) bits (Lemma 2).
//
// Global function (Algorithm 4): the referee repeatedly takes a vertex of
// residual degree <= k, decodes its residual neighbourhood from the power
// sums (unique by Theorem 4 / Corollary 1), records the edges, and removes
// the vertex by updating its neighbours' tuples:
//   deg(v_i) -= 1,   b_p(v_i) -= ID(x)^p.
// If the pruning ever stalls while vertices remain, the input graph has
// degeneracy > k and the protocol reports that by throwing DecodeError —
// which is exactly the recognition variant the paper sketches after Thm 5.
#pragma once

#include <memory>

#include "model/protocol.hpp"
#include "numth/decoder.hpp"

namespace referee {

class DegeneracyReconstruction final : public ReconstructionProtocol {
 public:
  /// `k`: the degeneracy bound every node is assumed to know (§III-B).
  /// `decoder`: neighbourhood decoding strategy; defaults to the table-free
  /// Newton decoder.
  explicit DegeneracyReconstruction(
      unsigned k, std::shared_ptr<const NeighborhoodDecoder> decoder = nullptr);

  unsigned k() const { return k_; }

  std::string name() const override;
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using ReconstructionProtocol::reconstruct;

  /// Frontier-batched peel: each round drains the whole prunable frontier,
  /// decoding every frontier vertex against the same round-start snapshot
  /// (parallelised over cell_pool() when one is installed, with the stock
  /// Newton decoder additionally lane-batching same-degree conversions).
  /// Output and faults are bit-identical to reconstruct_serial for every
  /// transcript and thread count.
  Graph reconstruct(std::uint32_t n, std::span<const Message> messages,
                    DecodeArena& arena) const override;

  /// The one-vertex-at-a-time reference peel (the pre-batching
  /// implementation, kept verbatim): pops the lowest prunable id, decodes,
  /// applies. The equivalence oracle for tests and for auditing the
  /// batched path.
  Graph reconstruct_serial(std::uint32_t n, std::span<const Message> messages,
                           DecodeArena& arena) const;

  /// Exact number of bits the local function produces for a view — used by
  /// experiment E1 to compare against the Lemma 2 bound without running the
  /// whole protocol.
  static std::size_t message_bits(const LocalViewRef& view, unsigned k);

 private:
  unsigned k_;
  std::shared_ptr<const NeighborhoodDecoder> decoder_;
};

}  // namespace referee
