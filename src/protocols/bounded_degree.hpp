// Footnote 1 of the paper: on bounded-degree networks the problem is
// trivial — each processor ships its whole adjacency list, O(Δ log n) bits,
// and the referee rebuilds the graph directly. Implemented both as the
// baseline the paper contrasts against (Grumbach–Wu's bounded-degree
// setting) and as an integrity-checked decoder: every edge must be reported
// by both endpoints.
#pragma once

#include "model/protocol.hpp"

namespace referee {

class BoundedDegreeReconstruction final : public ReconstructionProtocol {
 public:
  /// `max_degree` is the Δ every node knows; local() rejects views that
  /// exceed it (the protocol is only defined on that class).
  explicit BoundedDegreeReconstruction(std::size_t max_degree);

  std::string name() const override;
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using ReconstructionProtocol::reconstruct;
  Graph reconstruct(std::uint32_t n, std::span<const Message> messages,
                    DecodeArena& arena) const override;

 private:
  std::size_t max_degree_;
};

}  // namespace referee
