// Recognition variants (§III, after Theorem 5): the reconstruction protocol
// doubles as a class-membership test — run the decoder, accept iff it
// completes. The adapter below turns any ReconstructionProtocol into a
// DecisionProtocol with exactly that semantics, optionally cross-checking
// the reconstruction with a caller-supplied predicate.
#pragma once

#include <functional>
#include <memory>

#include "model/protocol.hpp"

namespace referee {

class RecognitionAdapter final : public DecisionProtocol {
 public:
  /// `verify`, if set, must also hold for the reconstructed graph (e.g.
  /// "is acyclic" for the forest recogniser).
  explicit RecognitionAdapter(
      std::shared_ptr<const ReconstructionProtocol> inner,
      std::function<bool(const Graph&)> verify = nullptr);

  std::string name() const override;
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using DecisionProtocol::decide;
  bool decide(std::uint32_t n, std::span<const Message> messages,
              DecodeArena& arena) const override;

 private:
  std::shared_ptr<const ReconstructionProtocol> inner_;
  std::function<bool(const Graph&)> verify_;
};

/// "degeneracy(G) <= k?" — one-round frugal recognition per the paper.
std::shared_ptr<DecisionProtocol> make_degeneracy_recognizer(unsigned k);

/// "is G a forest?" — k = 1 specialisation.
std::shared_ptr<DecisionProtocol> make_forest_recognizer();

}  // namespace referee
