// Multi-round extension: reconstruction *without knowing k in advance*.
//
// §III-B requires every node to know the degeneracy bound k a priori. With
// a few extra rounds that assumption disappears: in round r every node
// sends its Algorithm 3 tuple for the doubled guess k_r = 2^r; the referee
// attempts Algorithm 4 and broadcasts one bit — "done" or "double and
// retry". The first successful round has k_r < 2·degeneracy(G), so the
// total uplink is Σ_{r} O(4^r log n) = O(k² log n) bits per node — the same
// asymptotics as the one-round protocol that was told k, at the price of
// ceil(log2 k) + 1 rounds. A concrete data point for the paper's closing
// question about fixed-round frugal protocols.
#pragma once

#include <memory>

#include "model/multi_round.hpp"
#include "numth/decoder.hpp"

namespace referee {

class AdaptiveDegeneracyReconstruction final : public MultiRoundProtocol {
 public:
  explicit AdaptiveDegeneracyReconstruction(
      unsigned round_cap = 16,
      std::shared_ptr<const NeighborhoodDecoder> decoder = nullptr);

  std::string name() const override;
  unsigned max_rounds() const override { return round_cap_; }
  Message node_message(const LocalViewRef& view, unsigned round,
                       std::span<const Message> feedback) const override;
  RoundOutcome referee_round(
      std::uint32_t n, unsigned round,
      const std::vector<std::vector<Message>>& inbox) const override;

  /// The guess used in round r.
  static unsigned k_for_round(unsigned round) { return 1u << round; }

 private:
  unsigned round_cap_;
  std::shared_ptr<const NeighborhoodDecoder> decoder_;
};

}  // namespace referee
