#include "protocols/bounded_degree.hpp"

#include <algorithm>

#include "support/bits.hpp"
#include "support/thread_pool.hpp"

namespace referee {

BoundedDegreeReconstruction::BoundedDegreeReconstruction(
    std::size_t max_degree)
    : max_degree_(max_degree) {
  REFEREE_CHECK_MSG(max_degree_ >= 1, "max degree must be >= 1");
}

std::string BoundedDegreeReconstruction::name() const {
  return "bounded-degree-reconstruction(max=" + std::to_string(max_degree_) +
         ")";
}

void BoundedDegreeReconstruction::encode(const LocalViewRef& view,
                                         BitWriter& w) const {
  REFEREE_CHECK_MSG(view.degree() <= max_degree_,
                    "node degree exceeds the protocol's bound");
  const int id_bits = log_budget_bits(view.n);
  w.write_bits(view.id, id_bits);
  w.write_bits(view.degree(), id_bits);
  for (const NodeId nb : view.neighbor_ids) w.write_bits(nb, id_bits);
}

Graph BoundedDegreeReconstruction::reconstruct(std::uint32_t n,
                                               std::span<const Message> messages,
                                               DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);
  // Claimed adjacency as a CSR pair (offsets + flat id row) in arena
  // scratch instead of n per-vertex vectors.
  auto offsets_s = arena.scratch<std::size_t>();
  auto claimed_s = arena.scratch<NodeId>();
  std::vector<std::size_t>& offsets = *offsets_s;
  std::vector<NodeId>& claimed = *claimed_s;
  // Two-pass parallel parse. Pass 1 reads every header into deg[i]
  // (messages are framed, so each one re-reads independently); a prefix sum
  // turns the degrees into CSR offsets; pass 2 fills each message's claimed
  // slice. Faults from both passes land in one lowest-index reduction —
  // pass-1 records first, so at equal index a header fault outranks a
  // neighbour fault, which is the serial per-message parse order.
  ThreadPool* const pool = cell_pool();
  auto deg_s = arena.scratch<std::size_t>();
  auto failed_s = arena.scratch<std::uint8_t>();
  std::vector<std::size_t>& deg = *deg_s;
  std::vector<std::uint8_t>& failed = *failed_s;
  deg.assign(n, 0);
  failed.assign(n, 0);
  LowestIndexFault parse_faults;
  parallel_for_collecting(
      pool, 0, n,
      [&](std::size_t i) {
        try {
          BitReader r = messages[i].reader();
          const auto id = static_cast<NodeId>(r.read_bits(id_bits));
          if (id != i + 1) throw DecodeError(DecodeFault::kIdMismatch,
                            "message id does not match sender");
          const std::uint64_t d = r.read_bits(id_bits);
          if (d > max_degree_) throw DecodeError(DecodeFault::kMalformed,
                            "claimed degree exceeds bound");
          deg[i] = d;
        } catch (...) {
          failed[i] = 1;
          throw;
        }
      },
      parse_faults);
  grow_to(offsets, static_cast<std::size_t>(n) + 1);
  offsets[0] = 0;
  for (std::uint32_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + deg[i];
  grow_to(claimed, offsets[n]);
  parallel_for_collecting(
      pool, 0, n,
      [&](std::size_t i) {
        if (failed[i]) return;  // pass-1 fault already recorded for i
        BitReader r = messages[i].reader();
        const auto id = static_cast<NodeId>(r.read_bits(id_bits));
        r.read_bits(id_bits);  // degree, validated in pass 1
        for (std::size_t j = 0; j < deg[i]; ++j) {
          const auto nb = static_cast<NodeId>(r.read_bits(id_bits));
          if (nb < 1 || nb > n || nb == id) {
            throw DecodeError(DecodeFault::kMalformed,
                          "claimed neighbour id out of range");
          }
          claimed[offsets[i] + j] = nb;
        }
        if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                          "trailing bits in message");
      },
      parse_faults);
  parse_faults.rethrow_if_any();
  const auto claimed_row = [&](std::size_t i) {
    return std::span<const NodeId>(claimed.data() + offsets[i],
                                   offsets[i + 1] - offsets[i]);
  };
  // Cross-validate: {u, v} is an edge iff both endpoints report it. The
  // reciprocity scan is read-only over the CSR pair, so it fans out over
  // the pool (lowest-index fault, matching the serial walk); the surviving
  // edges are then inserted serially.
  LowestIndexFault check_faults;
  parallel_for_collecting(
      pool, 0, n,
      [&](std::size_t i) {
        for (const NodeId nb : claimed_row(i)) {
          const auto back = claimed_row(nb - 1);
          if (std::find(back.begin(), back.end(), i + 1) == back.end()) {
            throw DecodeError(DecodeFault::kInconsistent,
                          "edge reported by one endpoint only");
          }
        }
      },
      check_faults);
  check_faults.rethrow_if_any();
  Graph h(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (const NodeId nb : claimed_row(i)) {
      const std::size_t j = nb - 1;
      if (j > i) h.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(j));
    }
  }
  return h;
}

}  // namespace referee
