#include "protocols/bounded_degree.hpp"

#include <algorithm>

#include "support/bits.hpp"

namespace referee {

BoundedDegreeReconstruction::BoundedDegreeReconstruction(
    std::size_t max_degree)
    : max_degree_(max_degree) {
  REFEREE_CHECK_MSG(max_degree_ >= 1, "max degree must be >= 1");
}

std::string BoundedDegreeReconstruction::name() const {
  return "bounded-degree-reconstruction(max=" + std::to_string(max_degree_) +
         ")";
}

void BoundedDegreeReconstruction::encode(const LocalViewRef& view,
                                         BitWriter& w) const {
  REFEREE_CHECK_MSG(view.degree() <= max_degree_,
                    "node degree exceeds the protocol's bound");
  const int id_bits = log_budget_bits(view.n);
  w.write_bits(view.id, id_bits);
  w.write_bits(view.degree(), id_bits);
  for (const NodeId nb : view.neighbor_ids) w.write_bits(nb, id_bits);
}

Graph BoundedDegreeReconstruction::reconstruct(std::uint32_t n,
                                               std::span<const Message> messages,
                                               DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);
  // Claimed adjacency as a CSR pair (offsets + flat id row) in arena
  // scratch instead of n per-vertex vectors.
  auto offsets_s = arena.scratch<std::size_t>();
  auto claimed_s = arena.scratch<NodeId>();
  std::vector<std::size_t>& offsets = *offsets_s;
  std::vector<NodeId>& claimed = *claimed_s;
  offsets.clear();
  claimed.clear();
  offsets.push_back(0);
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    const auto id = static_cast<NodeId>(r.read_bits(id_bits));
    if (id != i + 1) throw DecodeError(DecodeFault::kIdMismatch,
                      "message id does not match sender");
    const std::uint64_t deg = r.read_bits(id_bits);
    if (deg > max_degree_) throw DecodeError(DecodeFault::kMalformed,
                      "claimed degree exceeds bound");
    for (std::uint64_t j = 0; j < deg; ++j) {
      const auto nb = static_cast<NodeId>(r.read_bits(id_bits));
      if (nb < 1 || nb > n || nb == id) {
        throw DecodeError(DecodeFault::kMalformed,
                      "claimed neighbour id out of range");
      }
      claimed.push_back(nb);
    }
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in message");
    offsets.push_back(claimed.size());
  }
  const auto claimed_row = [&](std::size_t i) {
    return std::span<const NodeId>(claimed.data() + offsets[i],
                                   offsets[i + 1] - offsets[i]);
  };
  // Cross-validate: {u, v} is an edge iff both endpoints report it.
  Graph h(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (const NodeId nb : claimed_row(i)) {
      const std::size_t j = nb - 1;
      const auto back = claimed_row(j);
      const bool reciprocated =
          std::find(back.begin(), back.end(), i + 1) != back.end();
      if (!reciprocated) {
        throw DecodeError(DecodeFault::kInconsistent,
                      "edge reported by one endpoint only");
      }
      if (j > i) h.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(j));
    }
  }
  return h;
}

}  // namespace referee
