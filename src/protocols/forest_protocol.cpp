#include "protocols/forest_protocol.hpp"

#include <numeric>

#include "support/bits.hpp"
#include "support/thread_pool.hpp"

namespace referee {

void ForestReconstruction::encode(const LocalViewRef& view,
                                  BitWriter& w) const {
  const int id_bits = log_budget_bits(view.n);
  std::uint64_t sum = 0;
  for (const NodeId nb : view.neighbor_ids) sum += nb;
  w.write_bits(view.id, id_bits);
  w.write_bits(view.degree(), id_bits);
  w.write_bits(sum, 2 * id_bits);  // Σ ID <= n * n
}

Graph ForestReconstruction::reconstruct(std::uint32_t n,
                                        std::span<const Message> messages,
                                        DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);
  auto deg_s = arena.scratch<std::uint64_t>();
  auto sum_s = arena.scratch<std::uint64_t>();
  std::vector<std::uint64_t>& deg = *deg_s;
  std::vector<std::uint64_t>& sum = *sum_s;
  deg.assign(n, 0);
  sum.assign(n, 0);
  {
    // Parallel transcript parse: per-message independent, disjoint writes,
    // lowest-index fault wins (same loudness as the serial scan).
    LowestIndexFault parse_faults;
    parallel_for_collecting(
        cell_pool(), 0, n,
        [&](std::size_t i) {
          BitReader r = messages[i].reader();
          const auto id = static_cast<NodeId>(r.read_bits(id_bits));
          if (id != i + 1) throw DecodeError(DecodeFault::kIdMismatch,
                            "message id does not match sender");
          deg[i] = r.read_bits(id_bits);
          sum[i] = r.read_bits(2 * id_bits);
          if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                            "trailing bits in message");
        },
        parse_faults);
    parse_faults.rethrow_if_any();
  }

  Graph h(n);
  // Leaf FIFO as scratch vector + head cursor (each vertex enqueues at most
  // twice, so the backing store stays O(n) and is never compacted).
  auto leaves_s = arena.scratch<NodeId>();
  auto done_s = arena.scratch<std::uint8_t>();
  std::vector<NodeId>& leaves = *leaves_s;
  std::vector<std::uint8_t>& done = *done_s;
  leaves.clear();
  std::size_t head = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (deg[i] <= 1) leaves.push_back(i + 1);
  }
  std::size_t processed = 0;
  done.assign(n, 0);
  while (head < leaves.size()) {
    const NodeId v = leaves[head];
    ++head;
    const std::size_t vi = v - 1;
    if (done[vi]) continue;
    done[vi] = 1;
    ++processed;
    if (deg[vi] == 0) continue;  // isolated in the residual forest
    const std::uint64_t w64 = sum[vi];
    if (w64 < 1 || w64 > n) {
      throw DecodeError(DecodeFault::kMalformed,
                      "leaf sum is not a valid neighbour id");
    }
    const auto w = static_cast<NodeId>(w64);
    const std::size_t wi = w - 1;
    if (done[wi]) throw DecodeError(DecodeFault::kInconsistent,
                      "leaf points at a pruned vertex");
    h.add_edge(static_cast<Vertex>(vi), static_cast<Vertex>(wi));
    if (deg[wi] == 0 || sum[wi] < v) {
      throw DecodeError(DecodeFault::kInconsistent,
                      "neighbour tuple inconsistent with leaf");
    }
    --deg[wi];
    sum[wi] -= v;
    if (deg[wi] <= 1) leaves.push_back(w);
  }
  if (processed != n) {
    throw DecodeError(DecodeFault::kStalled,
                      "pruning stalled: the graph contains a cycle");
  }
  return h;
}

}  // namespace referee
