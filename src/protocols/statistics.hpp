// The easy side of the paper's dichotomy: statistics the referee *can*
// compute from one frugal round without reconstruction. Each node ships
// just (ID, deg) — 2·log n bits — and the referee derives the degree
// sequence, edge count, max/min degree, and degree-based necessary
// conditions (Erdős–Gallai feasibility of the claimed sequence, the
// m >= n-1 connectivity precondition). These protocols calibrate the
// impossibility results: the referee knows *every* degree exactly, yet
// Theorems 1-3 show it cannot tell whether two specific high-degree
// vertices close a square.
#pragma once

#include <cstdint>
#include <vector>

#include "model/protocol.hpp"

namespace referee {

class DegreeStatistics final : public LocalEncoder {
 public:
  std::string name() const override { return "degree-statistics"; }
  void encode(const LocalViewRef& view, BitWriter& w) const override;

  /// Degree of node i+1, decoded from the transcript.
  static std::vector<std::uint32_t> degree_sequence(
      std::uint32_t n, std::span<const Message> messages);

  /// Arena-friendly form: degrees written into `out` (resized to n). The
  /// campaign classifier calls this per cell with pooled scratch.
  static void degree_sequence_into(std::uint32_t n,
                                   std::span<const Message> messages,
                                   std::vector<std::uint32_t>& out);

  /// |E| = (Σ deg) / 2. Throws DecodeError if the degree sum is odd — an
  /// impossible transcript.
  static std::uint64_t edge_count(std::uint32_t n,
                                  std::span<const Message> messages);

  static std::uint32_t max_degree(std::uint32_t n,
                                  std::span<const Message> messages);
  static std::uint32_t min_degree(std::uint32_t n,
                                  std::span<const Message> messages);

  /// Same statistics over an already-decoded degree sequence, so callers
  /// that need several of them (the campaign classifier) parse the
  /// transcript once.
  static std::uint64_t edge_count(std::span<const std::uint32_t> degrees);
  static std::uint32_t max_degree(std::span<const std::uint32_t> degrees);

  /// Erdős–Gallai: is the claimed degree sequence realisable by *some*
  /// simple graph? (A "no" certifies a corrupt transcript in one round.)
  static bool erdos_gallai_feasible(std::uint32_t n,
                                    std::span<const Message> messages);

  /// Necessary conditions for connectivity visible from degrees alone:
  /// no isolated vertex (n >= 2) and m >= n-1. The paper's open question
  /// is precisely that these cannot be strengthened to a *sufficient* test
  /// in one frugal round.
  static bool connectivity_possible(std::uint32_t n,
                                    std::span<const Message> messages);
};

}  // namespace referee
