// §III-A, the k = 1 warm-up: forests.
//
// Every vertex sends (ID(v), deg_T(v), Σ_{w∈N(v)} ID(w)) — under 4·log n
// bits. The referee repeatedly prunes a leaf: the leaf's sum *is* its unique
// neighbour's id; the neighbour's triple is patched to describe T \ v.
// A stalled pruning (no vertex of degree <= 1 left) certifies a cycle.
//
// This specialised implementation uses plain 64-bit sums (Σ ID <= n² fits
// comfortably) and is therefore also the fast path benchmarked against the
// general protocol at k = 1.
#pragma once

#include "model/protocol.hpp"

namespace referee {

class ForestReconstruction final : public ReconstructionProtocol {
 public:
  std::string name() const override { return "forest-reconstruction"; }
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using ReconstructionProtocol::reconstruct;
  Graph reconstruct(std::uint32_t n, std::span<const Message> messages,
                    DecodeArena& arena) const override;
};

}  // namespace referee
