#include "protocols/generalized_degeneracy.hpp"

#include <algorithm>
#include <set>

#include "numth/power_sums.hpp"
#include "support/bits.hpp"
#include "support/thread_pool.hpp"

namespace referee {

GeneralizedDegeneracyReconstruction::GeneralizedDegeneracyReconstruction(
    unsigned k, std::shared_ptr<const NeighborhoodDecoder> decoder)
    : k_(k), decoder_(std::move(decoder)) {
  REFEREE_CHECK_MSG(k_ >= 1, "degeneracy bound must be >= 1");
  if (!decoder_) decoder_ = std::make_shared<NewtonDecoder>();
}

std::string GeneralizedDegeneracyReconstruction::name() const {
  return "generalized-degeneracy-reconstruction(k=" + std::to_string(k_) + ")";
}

void GeneralizedDegeneracyReconstruction::encode(const LocalViewRef& view,
                                                 BitWriter& w) const {
  const int id_bits = log_budget_bits(view.n);
  // Non-neighbourhood = {1..n} \ N(x) \ {x}.
  std::vector<NodeId> non_neighbors;
  non_neighbors.reserve(view.n - 1 - view.neighbor_ids.size());
  std::size_t cursor = 0;
  for (NodeId id = 1; id <= view.n; ++id) {
    if (id == view.id) continue;
    if (cursor < view.neighbor_ids.size() &&
        view.neighbor_ids[cursor] == id) {
      ++cursor;
      continue;
    }
    non_neighbors.push_back(id);
  }
  w.write_bits(view.id, id_bits);
  w.write_bits(view.degree(), id_bits);
  for (const auto& s : power_sums(view.neighbor_ids, k_)) s.write(w);
  for (const auto& s : power_sums(non_neighbors, k_)) s.write(w);
}

Graph GeneralizedDegeneracyReconstruction::reconstruct(
    std::uint32_t n, std::span<const Message> messages,
    DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);
  auto deg_s = arena.scratch<std::size_t>();
  auto nb_sums_s = arena.scratch<BigUInt>();
  auto co_sums_s = arena.scratch<BigUInt>();
  std::vector<std::size_t>& deg = *deg_s;
  std::vector<BigUInt>& nb_sums = *nb_sums_s;
  std::vector<BigUInt>& co_sums = *co_sums_s;
  deg.assign(n, 0);
  grow_to(nb_sums, static_cast<std::size_t>(n) * k_);
  grow_to(co_sums, static_cast<std::size_t>(n) * k_);
  {
    // Parallel transcript parse over the intra-cell pool: each message
    // writes only its own degree slot and its two power-sum rows, and the
    // lowest-index fault wins so the loudness contract matches the serial
    // scan under any thread count.
    LowestIndexFault parse_faults;
    parallel_for_collecting(
        cell_pool(), 0, n,
        [&](std::size_t i) {
          BitReader r = messages[i].reader();
          const auto id = static_cast<NodeId>(r.read_bits(id_bits));
          if (id != i + 1) throw DecodeError(DecodeFault::kIdMismatch,
                            "message id does not match sender");
          deg[i] = r.read_bits(id_bits);
          if (deg[i] >= n) throw DecodeError(DecodeFault::kMalformed,
                            "degree out of range");
          for (unsigned p = 0; p < k_; ++p) nb_sums[i * k_ + p].read_from(r);
          for (unsigned p = 0; p < k_; ++p) co_sums[i * k_ + p].read_from(r);
          if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                            "trailing bits in message");
        },
        parse_faults);
    parse_faults.rethrow_if_any();
  }
  const auto nb_row = [&](std::size_t i) {
    return std::span<BigUInt>(nb_sums.data() + i * k_, k_);
  };
  const auto co_row = [&](std::size_t i) {
    return std::span<BigUInt>(co_sums.data() + i * k_, k_);
  };

  Graph h(n);
  auto alive_ids_s = arena.scratch<NodeId>();
  auto candidates_s = arena.scratch<NodeId>();
  auto decoded_s = arena.scratch<NodeId>();
  auto neighbors_s = arena.scratch<NodeId>();
  std::vector<NodeId>& alive_ids = *alive_ids_s;
  alive_ids.clear();
  for (std::uint32_t i = 0; i < n; ++i) alive_ids.push_back(i + 1);
  std::size_t remaining = n;

  while (remaining > 0) {
    // Find any vertex with residual degree or co-degree <= k. Linear scan is
    // O(n) per step (O(n²) total), within Algorithm 4's stated budget.
    NodeId x = 0;
    bool use_complement = false;
    for (const NodeId id : alive_ids) {
      const std::size_t co = remaining - 1 - deg[id - 1];
      if (deg[id - 1] <= k_) {
        x = id;
        use_complement = false;
        break;
      }
      if (co <= k_) {
        x = id;
        use_complement = true;
        break;
      }
    }
    if (x == 0) {
      throw DecodeError(DecodeFault::kStalled,
                      
          "pruning stalled: generalised degeneracy exceeds k=" +
          std::to_string(k_));
    }
    const std::size_t xi = x - 1;
    std::vector<NodeId>& candidates = *candidates_s;
    candidates.clear();
    for (const NodeId id : alive_ids) {
      if (id != x) candidates.push_back(id);
    }

    std::vector<NodeId>& neighbors = *neighbors_s;
    if (!use_complement) {
      decoder_->decode_into(static_cast<unsigned>(deg[xi]), nb_row(xi),
                            candidates, arena, neighbors);
      if (!matches_power_sums(nb_row(xi), neighbors, arena)) {
        throw DecodeError(DecodeFault::kInconsistent,
                      "decoded neighbourhood fails power-sum check");
      }
    } else {
      const auto co_deg = static_cast<unsigned>(remaining - 1 - deg[xi]);
      std::vector<NodeId>& non_neighbors = *decoded_s;
      decoder_->decode_into(co_deg, co_row(xi), candidates, arena,
                            non_neighbors);
      if (!matches_power_sums(co_row(xi), non_neighbors, arena)) {
        throw DecodeError(DecodeFault::kInconsistent,
                      "decoded co-neighbourhood fails power-sum check");
      }
      // Neighbours = alive candidates minus the decoded non-neighbours.
      neighbors.clear();
      std::set_difference(candidates.begin(), candidates.end(),
                          non_neighbors.begin(), non_neighbors.end(),
                          std::back_inserter(neighbors));
    }

    // Record edges and patch every survivor's tuple: neighbours lose x from
    // their neighbourhood side, non-neighbours lose x from their complement
    // side.
    std::size_t cursor = 0;
    for (const NodeId u : alive_ids) {
      if (u == x) continue;
      const bool is_neighbor =
          cursor < neighbors.size() && neighbors[cursor] == u;
      const std::size_t ui = u - 1;
      if (is_neighbor) {
        ++cursor;
        h.add_edge(static_cast<Vertex>(xi), static_cast<Vertex>(ui));
        if (deg[ui] == 0) throw DecodeError(DecodeFault::kInconsistent,
                      "degree underflow");
        --deg[ui];
        subtract_contribution(nb_row(ui), x, arena);
      } else {
        subtract_contribution(co_row(ui), x, arena);
      }
    }

    alive_ids.erase(std::lower_bound(alive_ids.begin(), alive_ids.end(), x));
    --remaining;
  }
  return h;
}

}  // namespace referee
