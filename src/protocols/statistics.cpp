#include "protocols/statistics.hpp"

#include <algorithm>
#include <numeric>

#include "support/bits.hpp"

namespace referee {

void DegreeStatistics::encode(const LocalViewRef& view, BitWriter& w) const {
  const int id_bits = log_budget_bits(view.n);
  w.write_bits(view.id, id_bits);
  w.write_bits(view.degree(), id_bits);
}

std::vector<std::uint32_t> DegreeStatistics::degree_sequence(
    std::uint32_t n, std::span<const Message> messages) {
  std::vector<std::uint32_t> degrees;
  degree_sequence_into(n, messages, degrees);
  return degrees;
}

void DegreeStatistics::degree_sequence_into(std::uint32_t n,
                                            std::span<const Message> messages,
                                            std::vector<std::uint32_t>& out) {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);
  out.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    const auto id = static_cast<NodeId>(r.read_bits(id_bits));
    if (id != i + 1) throw DecodeError(DecodeFault::kIdMismatch,
                      "message id does not match sender");
    const std::uint64_t deg = r.read_bits(id_bits);
    if (deg >= n) throw DecodeError(DecodeFault::kMalformed,
                      "degree out of range");
    out[i] = static_cast<std::uint32_t>(deg);
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in message");
  }
}

std::uint64_t DegreeStatistics::edge_count(
    std::span<const std::uint32_t> degrees) {
  const std::uint64_t sum =
      std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
  if (sum % 2 != 0) {
    throw DecodeError(DecodeFault::kInconsistent,
                      "odd degree sum: transcript impossible (handshake)");
  }
  return sum / 2;
}

std::uint32_t DegreeStatistics::max_degree(
    std::span<const std::uint32_t> degrees) {
  return degrees.empty() ? 0
                         : *std::max_element(degrees.begin(), degrees.end());
}

std::uint64_t DegreeStatistics::edge_count(std::uint32_t n,
                                           std::span<const Message> messages) {
  return edge_count(degree_sequence(n, messages));
}

std::uint32_t DegreeStatistics::max_degree(std::uint32_t n,
                                           std::span<const Message> messages) {
  return max_degree(degree_sequence(n, messages));
}

std::uint32_t DegreeStatistics::min_degree(std::uint32_t n,
                                           std::span<const Message> messages) {
  const auto degrees = degree_sequence(n, messages);
  return degrees.empty() ? 0
                         : *std::min_element(degrees.begin(), degrees.end());
}

bool DegreeStatistics::erdos_gallai_feasible(
    std::uint32_t n, std::span<const Message> messages) {
  auto d = degree_sequence(n, messages);
  std::sort(d.rbegin(), d.rend());
  const std::uint64_t total =
      std::accumulate(d.begin(), d.end(), std::uint64_t{0});
  if (total % 2 != 0) return false;
  // For every k: Σ_{i<=k} d_i <= k(k-1) + Σ_{i>k} min(d_i, k).
  std::uint64_t prefix = 0;
  for (std::size_t k = 1; k <= d.size(); ++k) {
    prefix += d[k - 1];
    std::uint64_t cap = static_cast<std::uint64_t>(k) * (k - 1);
    for (std::size_t i = k; i < d.size(); ++i) {
      cap += std::min<std::uint64_t>(d[i], k);
    }
    if (prefix > cap) return false;
  }
  return true;
}

bool DegreeStatistics::connectivity_possible(
    std::uint32_t n, std::span<const Message> messages) {
  if (n <= 1) return true;
  const auto degrees = degree_sequence(n, messages);
  for (const auto d : degrees) {
    if (d == 0) return false;
  }
  const std::uint64_t m = edge_count(n, messages);
  return m >= n - 1;
}

}  // namespace referee
