#include "protocols/recognition.hpp"

#include "protocols/degeneracy_protocol.hpp"
#include "protocols/forest_protocol.hpp"

namespace referee {

RecognitionAdapter::RecognitionAdapter(
    std::shared_ptr<const ReconstructionProtocol> inner,
    std::function<bool(const Graph&)> verify)
    : inner_(std::move(inner)), verify_(std::move(verify)) {
  REFEREE_CHECK_MSG(inner_ != nullptr, "missing inner protocol");
}

std::string RecognitionAdapter::name() const {
  return "recognize(" + inner_->name() + ")";
}

void RecognitionAdapter::encode(const LocalViewRef& view, BitWriter& w) const {
  inner_->encode(view, w);
}

bool RecognitionAdapter::decide(std::uint32_t n,
                                std::span<const Message> messages,
                                DecodeArena& arena) const {
  try {
    const Graph h = inner_->reconstruct(n, messages, arena);
    return verify_ ? verify_(h) : true;
  } catch (const DecodeError& e) {
    // kStalled on an *intact* transcript means the input lies outside the
    // inner protocol's class — exactly a "no" answer. Every other fault
    // kind proves the transcript itself is corrupt; answering "no" there
    // would be a silent lie, so the loud-failure contract demands a
    // rethrow. Caveat (information-theoretic, not fixable here): payload
    // bit noise can inflate claimed degrees into an honest-looking stall,
    // so a recognition "no" is a certificate only over authenticated,
    // uncorrupted payloads — the envelope covers the correlated fault
    // models, bit flips inside the payload remain outside the recogniser's
    // certifiable domain (the campaign's bit-noise contract sweeps
    // therefore target the self-certifying reconstruction decoders).
    if (e.fault() == DecodeFault::kStalled) return false;
    throw;
  }
}

std::shared_ptr<DecisionProtocol> make_degeneracy_recognizer(unsigned k) {
  return std::make_shared<RecognitionAdapter>(
      std::make_shared<DegeneracyReconstruction>(k));
}

std::shared_ptr<DecisionProtocol> make_forest_recognizer() {
  return std::make_shared<RecognitionAdapter>(
      std::make_shared<ForestReconstruction>());
}

}  // namespace referee
