#include "protocols/degeneracy_protocol.hpp"

#include <algorithm>
#include <functional>

#include "numth/power_sums.hpp"
#include "support/bits.hpp"

namespace referee {

DegeneracyReconstruction::DegeneracyReconstruction(
    unsigned k, std::shared_ptr<const NeighborhoodDecoder> decoder)
    : k_(k), decoder_(std::move(decoder)) {
  REFEREE_CHECK_MSG(k_ >= 1, "degeneracy bound must be >= 1");
  if (!decoder_) decoder_ = std::make_shared<NewtonDecoder>();
}

std::string DegeneracyReconstruction::name() const {
  return "degeneracy-reconstruction(k=" + std::to_string(k_) + "," +
         decoder_->name() + ")";
}

void DegeneracyReconstruction::encode(const LocalViewRef& view,
                                      BitWriter& w) const {
  const int id_bits = log_budget_bits(view.n);
  w.write_bits(view.id, id_bits);
  w.write_bits(view.degree(), id_bits);
  DecodeArena& arena = DecodeArena::for_current_thread();
  auto sums_s = arena.scratch<BigUInt>();
  power_sums_into(view.neighbor_ids, k_, arena, *sums_s);
  for (unsigned p = 0; p < k_; ++p) (*sums_s)[p].write(w);
}

std::size_t DegeneracyReconstruction::message_bits(const LocalViewRef& view,
                                                   unsigned k) {
  std::size_t bits = 2 * static_cast<std::size_t>(log_budget_bits(view.n));
  for (const auto& s : power_sums(view.neighbor_ids, k)) {
    bits += s.encoded_bits();
  }
  return bits;
}

Graph DegeneracyReconstruction::reconstruct(std::uint32_t n,
                                            std::span<const Message> messages,
                                            DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);

  // Parse the transcript into the referee's working tuples B: degrees plus
  // one flat n×k power-sum table (a single arena block, LocalViewPack
  // style; BigUInt::read_from reuses each cell's limb storage).
  auto deg_s = arena.scratch<std::size_t>();
  auto sums_s = arena.scratch<BigUInt>();
  std::vector<std::size_t>& deg = *deg_s;
  std::vector<BigUInt>& sums = *sums_s;
  deg.assign(n, 0);
  grow_to(sums, static_cast<std::size_t>(n) * k_);
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    const auto id = static_cast<NodeId>(r.read_bits(id_bits));
    if (id != i + 1) throw DecodeError(DecodeFault::kIdMismatch,
                      "message id does not match sender");
    deg[i] = r.read_bits(id_bits);
    if (deg[i] >= n) throw DecodeError(DecodeFault::kMalformed,
                      "degree out of range");
    for (unsigned p = 0; p < k_; ++p) sums[i * k_ + p].read_from(r);
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in message");
  }
  const auto row = [&](std::size_t i) {
    return std::span<BigUInt>(sums.data() + i * k_, k_);
  };

  Graph h(n);
  auto alive_s = arena.scratch<std::uint8_t>();
  auto next_alive_s = arena.scratch<NodeId>();
  auto prunable_s = arena.scratch<NodeId>();
  auto candidates_s = arena.scratch<NodeId>();
  auto neighbors_s = arena.scratch<NodeId>();
  std::vector<std::uint8_t>& alive = *alive_s;
  // next_alive[id] points at the smallest possibly-alive id >= id. Pruning x
  // redirects next_alive[x] to x+1; lookups chase and path-compress, so the
  // whole decode does O(n α(n)) skip work instead of the O(n²) erase-from-
  // sorted-vector this replaces.
  std::vector<NodeId>& next_alive = *next_alive_s;
  // Prunable vertices as a lazy min-heap on id: pops the smallest id like
  // the std::set it replaces, but with no per-insert node allocation;
  // duplicates and dead entries are skipped at pop time.
  std::vector<NodeId>& prunable = *prunable_s;
  alive.assign(n, 1);
  grow_to(next_alive, static_cast<std::size_t>(n) + 2);
  for (std::uint32_t id = 0; id < n + 2; ++id) next_alive[id] = id;
  const auto find_alive = [&](NodeId id) -> NodeId {
    NodeId root = id;
    while (next_alive[root] != root) root = next_alive[root];
    while (next_alive[id] != root) {
      const NodeId nxt = next_alive[id];
      next_alive[id] = root;
      id = nxt;
    }
    return root;  // alive, or n + 1 when the tail is exhausted
  };
  prunable.clear();
  const auto push_prunable = [&](NodeId id) {
    prunable.push_back(id);
    std::push_heap(prunable.begin(), prunable.end(), std::greater<NodeId>());
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    if (deg[i] <= k_) push_prunable(i + 1);
  }

  std::size_t remaining = n;
  while (remaining > 0) {
    if (prunable.empty()) {
      throw DecodeError(DecodeFault::kStalled,
                      "pruning stalled: graph degeneracy exceeds k=" +
                        std::to_string(k_));
    }
    std::pop_heap(prunable.begin(), prunable.end(), std::greater<NodeId>());
    const NodeId x = prunable.back();
    prunable.pop_back();
    const std::size_t xi = x - 1;
    if (!alive[xi]) continue;

    const auto d = static_cast<unsigned>(deg[xi]);
    // Candidates: alive vertices other than x, in ascending id order. The
    // decoder scans them greedily left to right and needs only d roots, so
    // offer an ascending *prefix* of the alive set first and widen on a
    // decode failure — a prefix holding the d roots yields exactly the
    // decode the full list would (same scan order, same first d accepts),
    // and a miss retries until the window covers every alive id, where
    // behaviour is the full-list decode by definition.
    std::vector<NodeId>& candidates = *candidates_s;
    std::size_t window = std::max<std::size_t>(16, 2 * std::size_t{d});
    for (;;) {
      candidates.clear();
      NodeId id = find_alive(1);
      while (candidates.size() < window && id <= n) {
        if (id != x) candidates.push_back(id);
        id = find_alive(id + 1);
      }
      const bool complete = id > n;
      if (complete) {
        decoder_->decode_into(d, row(xi), candidates, arena, *neighbors_s);
        break;
      }
      try {
        decoder_->decode_into(d, row(xi), candidates, arena, *neighbors_s);
        break;
      } catch (const DecodeError&) {
        window *= 8;
      }
    }
    // Validate against every power (catches corrupted transcripts even when
    // the first d sums accidentally decode).
    if (!matches_power_sums(row(xi), *neighbors_s, arena)) {
      throw DecodeError(DecodeFault::kInconsistent,
                      "decoded neighbourhood fails power-sum check");
    }

    for (const NodeId w : *neighbors_s) {
      const std::size_t wi = w - 1;
      if (!alive[wi]) {
        throw DecodeError(DecodeFault::kInconsistent,
                      "decoded neighbour already pruned");
      }
      h.add_edge(static_cast<Vertex>(xi), static_cast<Vertex>(wi));
      if (deg[wi] == 0) throw DecodeError(DecodeFault::kInconsistent,
                      "degree underflow");
      --deg[wi];
      subtract_contribution(row(wi), x, arena);
      if (deg[wi] <= k_) push_prunable(w);
    }

    alive[xi] = 0;
    next_alive[x] = x + 1;
    --remaining;
  }
  return h;
}

}  // namespace referee
