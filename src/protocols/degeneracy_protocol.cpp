#include "protocols/degeneracy_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "numth/newton.hpp"
#include "numth/power_sums.hpp"
#include "numth/roots.hpp"
#include "support/bits.hpp"
#include "support/simd.hpp"
#include "support/thread_pool.hpp"

namespace referee {

namespace {

/// Parse one transcript message into its degree and k-entry power-sum row.
/// Index-local (touches nothing but `deg_out` and `row`), so the parallel
/// parse can run it over disjoint slots from any worker.
void parse_degeneracy_message(const Message& m, std::uint32_t i, int id_bits,
                              unsigned k, std::uint32_t n,
                              std::size_t& deg_out, BigUInt* row) {
  BitReader r = m.reader();
  const auto id = static_cast<NodeId>(r.read_bits(id_bits));
  if (id != i + 1) {
    throw DecodeError(DecodeFault::kIdMismatch,
                      "message id does not match sender");
  }
  deg_out = r.read_bits(id_bits);
  if (deg_out >= n) {
    throw DecodeError(DecodeFault::kMalformed, "degree out of range");
  }
  for (unsigned p = 0; p < k; ++p) row[p].read_from(r);
  if (!r.exhausted()) {
    throw DecodeError(DecodeFault::kTrailingBits, "trailing bits in message");
  }
}

// Per-frontier-vertex decode state for one batched round.
constexpr std::uint8_t kHaveElem = 1;  // elementary slice precomputed
constexpr std::uint8_t kFailed = 2;    // fault recorded; skip further phases

}  // namespace

DegeneracyReconstruction::DegeneracyReconstruction(
    unsigned k, std::shared_ptr<const NeighborhoodDecoder> decoder)
    : k_(k), decoder_(std::move(decoder)) {
  REFEREE_CHECK_MSG(k_ >= 1, "degeneracy bound must be >= 1");
  if (!decoder_) decoder_ = std::make_shared<NewtonDecoder>();
}

std::string DegeneracyReconstruction::name() const {
  return "degeneracy-reconstruction(k=" + std::to_string(k_) + "," +
         decoder_->name() + ")";
}

void DegeneracyReconstruction::encode(const LocalViewRef& view,
                                      BitWriter& w) const {
  const int id_bits = log_budget_bits(view.n);
  w.write_bits(view.id, id_bits);
  w.write_bits(view.degree(), id_bits);
  DecodeArena& arena = DecodeArena::for_current_thread();
  auto sums_s = arena.scratch<BigUInt>();
  power_sums_into(view.neighbor_ids, k_, arena, *sums_s);
  for (unsigned p = 0; p < k_; ++p) (*sums_s)[p].write(w);
}

std::size_t DegeneracyReconstruction::message_bits(const LocalViewRef& view,
                                                   unsigned k) {
  std::size_t bits = 2 * static_cast<std::size_t>(log_budget_bits(view.n));
  DecodeArena& arena = DecodeArena::for_current_thread();
  auto sums_s = arena.scratch<BigUInt>();
  power_sums_into(view.neighbor_ids, k, arena, *sums_s);
  for (unsigned p = 0; p < k; ++p) bits += (*sums_s)[p].encoded_bits();
  return bits;
}

Graph DegeneracyReconstruction::reconstruct_serial(
    std::uint32_t n, std::span<const Message> messages,
    DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);

  // Parse the transcript into the referee's working tuples B: degrees plus
  // one flat n×k power-sum table (a single arena block, LocalViewPack
  // style; BigUInt::read_from reuses each cell's limb storage).
  auto deg_s = arena.scratch<std::size_t>();
  auto sums_s = arena.scratch<BigUInt>();
  std::vector<std::size_t>& deg = *deg_s;
  std::vector<BigUInt>& sums = *sums_s;
  deg.assign(n, 0);
  grow_to(sums, static_cast<std::size_t>(n) * k_);
  for (std::uint32_t i = 0; i < n; ++i) {
    parse_degeneracy_message(messages[i], i, id_bits, k_, n, deg[i],
                             sums.data() + static_cast<std::size_t>(i) * k_);
  }
  const auto row = [&](std::size_t i) {
    return std::span<BigUInt>(sums.data() + i * k_, k_);
  };

  Graph h(n);
  auto alive_s = arena.scratch<std::uint8_t>();
  auto next_alive_s = arena.scratch<NodeId>();
  auto prunable_s = arena.scratch<NodeId>();
  auto candidates_s = arena.scratch<NodeId>();
  auto neighbors_s = arena.scratch<NodeId>();
  std::vector<std::uint8_t>& alive = *alive_s;
  // next_alive[id] points at the smallest possibly-alive id >= id. Pruning x
  // redirects next_alive[x] to x+1; lookups chase and path-compress, so the
  // whole decode does O(n α(n)) skip work instead of the O(n²) erase-from-
  // sorted-vector this replaces.
  std::vector<NodeId>& next_alive = *next_alive_s;
  // Prunable vertices as a lazy min-heap on id: pops the smallest id like
  // the std::set it replaces, but with no per-insert node allocation;
  // duplicates and dead entries are skipped at pop time.
  std::vector<NodeId>& prunable = *prunable_s;
  alive.assign(n, 1);
  grow_to(next_alive, static_cast<std::size_t>(n) + 2);
  for (std::uint32_t id = 0; id < n + 2; ++id) next_alive[id] = id;
  const auto find_alive = [&](NodeId id) -> NodeId {
    NodeId root = id;
    while (next_alive[root] != root) root = next_alive[root];
    while (next_alive[id] != root) {
      const NodeId nxt = next_alive[id];
      next_alive[id] = root;
      id = nxt;
    }
    return root;  // alive, or n + 1 when the tail is exhausted
  };
  prunable.clear();
  const auto push_prunable = [&](NodeId id) {
    prunable.push_back(id);
    std::push_heap(prunable.begin(), prunable.end(), std::greater<NodeId>());
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    if (deg[i] <= k_) push_prunable(i + 1);
  }

  std::size_t remaining = n;
  while (remaining > 0) {
    if (prunable.empty()) {
      throw DecodeError(DecodeFault::kStalled,
                      "pruning stalled: graph degeneracy exceeds k=" +
                        std::to_string(k_));
    }
    std::pop_heap(prunable.begin(), prunable.end(), std::greater<NodeId>());
    const NodeId x = prunable.back();
    prunable.pop_back();
    const std::size_t xi = x - 1;
    if (!alive[xi]) continue;

    const auto d = static_cast<unsigned>(deg[xi]);
    // Candidates: alive vertices other than x, in ascending id order. The
    // decoder scans them greedily left to right and needs only d roots, so
    // offer an ascending *prefix* of the alive set first and widen on a
    // decode failure — a prefix holding the d roots yields exactly the
    // decode the full list would (same scan order, same first d accepts),
    // and a miss retries until the window covers every alive id, where
    // behaviour is the full-list decode by definition.
    std::vector<NodeId>& candidates = *candidates_s;
    std::size_t window = std::max<std::size_t>(16, 2 * std::size_t{d});
    for (;;) {
      candidates.clear();
      NodeId id = find_alive(1);
      while (candidates.size() < window && id <= n) {
        if (id != x) candidates.push_back(id);
        id = find_alive(id + 1);
      }
      const bool complete = id > n;
      if (complete) {
        decoder_->decode_into(d, row(xi), candidates, arena, *neighbors_s);
        break;
      }
      try {
        decoder_->decode_into(d, row(xi), candidates, arena, *neighbors_s);
        break;
      } catch (const DecodeError&) {
        window *= 8;
      }
    }
    // Validate against every power (catches corrupted transcripts even when
    // the first d sums accidentally decode).
    if (!matches_power_sums(row(xi), *neighbors_s, arena)) {
      throw DecodeError(DecodeFault::kInconsistent,
                      "decoded neighbourhood fails power-sum check");
    }

    for (const NodeId w : *neighbors_s) {
      const std::size_t wi = w - 1;
      if (!alive[wi]) {
        throw DecodeError(DecodeFault::kInconsistent,
                      "decoded neighbour already pruned");
      }
      h.add_edge(static_cast<Vertex>(xi), static_cast<Vertex>(wi));
      if (deg[wi] == 0) throw DecodeError(DecodeFault::kInconsistent,
                      "degree underflow");
      --deg[wi];
      subtract_contribution(row(wi), x, arena);
      if (deg[wi] <= k_) push_prunable(w);
    }

    alive[xi] = 0;
    next_alive[x] = x + 1;
    --remaining;
  }
  return h;
}

// Frontier-batched peel, the default reconstruct path. Serial equivalence
// (pinned by tests/test_parallel_decode.cpp against reconstruct_serial):
//
//  * Each round drains the entire prunable frontier F (every alive vertex
//    with residual degree <= k). All frontier vertices decode against the
//    SAME round-start snapshot, so a frontier vertex recovers its full
//    residual neighbourhood — including edges to other frontier members,
//    found from both sides. The apply phase walks F in ascending id order
//    and skips the second sighting of a frontier-internal edge, so every
//    edge is recorded exactly once, from its lower-id frontier endpoint.
//  * k-core peeling is order-independent (Batagelj–Zaversnik): the level
//    structure, the stall condition, and the final edge set do not depend
//    on whether vertices leave one at a time (serial min-heap) or level by
//    level (rounds), so the final Graph is bit-identical.
//  * Faults are exactly the serial peel's, under any thread count. Parse
//    faults run under parallel_for_collecting, which runs every index and
//    rethrows the lowest-index exception — the fault the serial parse loop
//    raises first, same throw site and message. Peel-phase faults (a decode
//    failure, a reciprocity anomaly, a degree underflow) depend on how the
//    serial min-heap interleaves rounds, so the batched path never raises
//    its own: it falls back to reconstruct_serial on the pristine
//    transcript and surfaces that outcome verbatim. In particular an
//    asymmetric frontier-internal claim (x lists w, w never lists x) is
//    rejected exactly as serially — never absorbed into an accepted graph.
//
// Parallelism enters in three places, all gated on cell_pool(): the
// transcript parse, the frontier decodes, and (for the stock Newton
// decoder) the elementary conversions, which additionally run
// simd::kNewtonLanes same-degree vertices per SIMD-lane batch.
Graph DegeneracyReconstruction::reconstruct(std::uint32_t n,
                                            std::span<const Message> messages,
                                            DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);
  ThreadPool* const pool = cell_pool();

  // Warm-arena discipline: within each element-type pool, scratches are
  // checked out in non-increasing order of their worst-case size and
  // reserved to that bound up front. The arena hands out
  // largest-capacity-first, so this mapping gives every role a block that
  // already fits it on a repeat run — the zero-growth second sweep the
  // campaign pipeline tests pin.
  const std::size_t size_t_bound =
      std::max<std::size_t>(static_cast<std::size_t>(n) + 1,
                            static_cast<std::size_t>(k_) + 2);
  auto deg_s = arena.scratch<std::size_t>();
  auto offsets_s = arena.scratch<std::size_t>();
  auto dcount_s = arena.scratch<std::size_t>();
  auto group_start_s = arena.scratch<std::size_t>();
  std::vector<std::size_t>& deg = *deg_s;
  deg.reserve(size_t_bound);
  offsets_s->reserve(size_t_bound);
  // dcount and group_start need far less, but an equal reservation stops
  // them from winning a bigger block than a nested decode scratch needs
  // back on the next sweep (largest-first would hand the displaced role a
  // smaller block and grow it — a warm-sweep allocation).
  dcount_s->reserve(size_t_bound);
  group_start_s->reserve(size_t_bound);
  auto sums_s = arena.scratch<BigUInt>();
  std::vector<BigUInt>& sums = *sums_s;
  deg.assign(n, 0);
  grow_to(sums, static_cast<std::size_t>(n) * k_);
  {
    LowestIndexFault parse_faults;
    parallel_for_collecting(
        pool, 0, n,
        [&](std::size_t i) {
          parse_degeneracy_message(messages[i],
                                   static_cast<std::uint32_t>(i), id_bits, k_,
                                   n, deg[i], sums.data() + i * k_);
        },
        parse_faults);
    parse_faults.rethrow_if_any();
  }
  const auto row = [&](std::size_t i) {
    return std::span<BigUInt>(sums.data() + i * k_, k_);
  };
  std::size_t total_deg = 0;
  for (std::uint32_t i = 0; i < n; ++i) total_deg += deg[i];
  const std::size_t node_bound = std::max<std::size_t>(total_deg, n);

  Graph h(n);
  auto neigh_s = arena.scratch<NodeId>();
  auto alive_ids_s = arena.scratch<NodeId>();
  auto frontier_s = arena.scratch<NodeId>();
  auto order_s = arena.scratch<NodeId>();
  auto members_s = arena.scratch<NodeId>();
  auto pending_s = arena.scratch<NodeId>();
  auto elem_s = arena.scratch<BigInt>();
  auto alive_s = arena.scratch<std::uint8_t>();
  auto state_s = arena.scratch<std::uint8_t>();
  neigh_s->reserve(node_bound);
  alive_ids_s->reserve(n);
  frontier_s->reserve(n);
  order_s->reserve(n);
  members_s->reserve(n);
  pending_s->reserve(n);
  elem_s->reserve(node_bound);
  std::vector<std::uint8_t>& alive = *alive_s;
  // Ascending alive ids with lazy deletion: dead entries are skipped via the
  // bitmap during candidate scans (read-only inside a round, so the parallel
  // decode phase needs no locks) and physically removed only when they reach
  // half the vector — O(n) compaction work total, amortised.
  std::vector<NodeId>& alive_ids = *alive_ids_s;
  std::vector<NodeId>& frontier = *frontier_s;
  std::vector<NodeId>& pending = *pending_s;
  // offsets[fi] is the flat start of frontier[fi]'s decoded-neighbour slice
  // (and elementary slice); sizes are the round-start residual degrees.
  std::vector<std::size_t>& offsets = *offsets_s;
  std::vector<NodeId>& neigh = *neigh_s;
  std::vector<BigInt>& elem = *elem_s;
  std::vector<std::uint8_t>& state = *state_s;
  std::vector<NodeId>& order = *order_s;
  std::vector<std::size_t>& dcount = *dcount_s;
  std::vector<NodeId>& members = *members_s;
  std::vector<std::size_t>& group_start = *group_start_s;

  alive.assign(n, 1);
  alive_ids.clear();
  for (std::uint32_t id = 1; id <= n; ++id) alive_ids.push_back(id);
  frontier.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (deg[i] <= k_) frontier.push_back(i + 1);
  }

  // Lane batching applies only to the stock Newton decoder, whose decode is
  // exactly elementary_from_power_sums_into + roots_among_into; other
  // strategies take the per-vertex decode_into path below.
  const auto* const newton = dynamic_cast<const NewtonDecoder*>(decoder_.get());

  std::size_t remaining = n;
  std::size_t stale = 0;
  while (remaining > 0) {
    if (frontier.empty()) {
      throw DecodeError(DecodeFault::kStalled,
                        "pruning stalled: graph degeneracy exceeds k=" +
                            std::to_string(k_));
    }
    const std::size_t m = frontier.size();
    grow_to(offsets, m + 1);
    offsets[0] = 0;
    for (std::size_t fi = 0; fi < m; ++fi) {
      offsets[fi + 1] = offsets[fi] + deg[frontier[fi] - 1];
    }
    const std::size_t total = offsets[m];
    grow_to(neigh, total);
    state.assign(m, 0);

    LowestIndexFault faults;

    if (newton != nullptr && total > 0) {
      grow_to(elem, total);
      // Counting-sort frontier indices by residual degree (stable, so lane
      // grouping is deterministic), then pack batch groups of up to
      // kNewtonLanes vertices whose degree has an eligible fixed width and
      // whose sums pass the bit bound. Everything else keeps the exact
      // per-vertex path in the decode phase.
      dcount.assign(static_cast<std::size_t>(k_) + 2, 0);
      for (std::size_t fi = 0; fi < m; ++fi) {
        ++dcount[deg[frontier[fi] - 1] + 1];
      }
      for (std::size_t d2 = 1; d2 < dcount.size(); ++d2) {
        dcount[d2] += dcount[d2 - 1];
      }
      grow_to(order, m);
      for (std::size_t fi = 0; fi < m; ++fi) {
        order[dcount[deg[frontier[fi] - 1]]++] = static_cast<NodeId>(fi);
      }
      members.clear();
      group_start.clear();
      std::size_t run_begin = 0;
      while (run_begin < m) {
        const auto d = static_cast<unsigned>(deg[frontier[order[run_begin]] - 1]);
        std::size_t run_end = run_begin;
        while (run_end < m &&
               deg[frontier[order[run_end]] - 1] == d) {
          ++run_end;
        }
        const std::size_t width = d == 0 ? 0 : newton_batch_width(d, n);
        if (width > 0) {
          std::size_t in_group = 0;
          for (std::size_t e = run_begin; e < run_end; ++e) {
            const std::size_t fi = order[e];
            const std::size_t xi = frontier[fi] - 1;
            if (!newton_batch_fits(
                    std::span<const BigUInt>(sums.data() + xi * k_, d), d,
                    n)) {
              continue;
            }
            if (in_group == 0) group_start.push_back(members.size());
            members.push_back(static_cast<NodeId>(fi));
            state[fi] = kHaveElem;
            in_group = (in_group + 1) % simd::kNewtonLanes;
          }
        }
        run_begin = run_end;
      }
      group_start.push_back(members.size());

      const std::size_t num_groups = group_start.size() - 1;
      maybe_parallel_for(
          pool, 0, num_groups,
          [&](std::size_t g) {
            DecodeArena& warena = DecodeArena::for_current_thread();
            const std::size_t lo = group_start[g];
            const std::size_t nl = group_start[g + 1] - lo;
            const auto d = static_cast<unsigned>(
                deg[frontier[members[lo]] - 1]);
            const std::size_t width = newton_batch_width(d, n);
            NewtonLane lanes[simd::kNewtonLanes];
            std::size_t lane_fi[simd::kNewtonLanes];
            for (std::size_t l = 0; l < nl; ++l) {
              const std::size_t fi = members[lo + l];
              const std::size_t xi = frontier[fi] - 1;
              lanes[l] = NewtonLane{
                  std::span<const BigUInt>(sums.data() + xi * k_, d),
                  std::span<BigInt>(elem.data() + offsets[fi], d)};
              lane_fi[l] = fi;
            }
            const unsigned fmask = elementary_from_power_sums_lanes(
                std::span<const NewtonLane>(lanes, nl), d, width, warena);
            for (std::size_t l = 0; l < nl; ++l) {
              if (((fmask >> l) & 1u) == 0) continue;
              const std::size_t fi = lane_fi[l];
              // Rerun the exact path for the serial-identical exception
              // (within the proven width bound the two paths agree, so a
              // batch fault IS an exact-path fault).
              try {
                auto exact_s = warena.scratch<BigInt>();
                elementary_from_power_sums_into(lanes[l].sums, warena,
                                                *exact_s);
                for (unsigned v = 0; v < d; ++v) {
                  lanes[l].out[v] = (*exact_s)[v];
                }
              } catch (...) {
                faults.record(fi, std::current_exception());
                state[fi] = kFailed;
              }
            }
          },
          /*serial_cutoff=*/8);
    }

    parallel_for_collecting(
        pool, 0, m,
        [&](std::size_t fi) {
          if ((state[fi] & kFailed) != 0) return;
          const NodeId x = frontier[fi];
          const std::size_t xi = x - 1;
          const auto d =
              static_cast<unsigned>(offsets[fi + 1] - offsets[fi]);
          DecodeArena& warena = DecodeArena::for_current_thread();
          auto cand_s = warena.scratch<NodeId>();
          auto out_s = warena.scratch<NodeId>();
          std::vector<NodeId>& candidates = *cand_s;
          std::vector<NodeId>& out = *out_s;
          const bool have_elem = (state[fi] & kHaveElem) != 0;
          const std::span<const BigInt> es =
              have_elem ? std::span<const BigInt>(elem.data() + offsets[fi], d)
                        : std::span<const BigInt>();
          const std::span<const BigUInt> srow(sums.data() + xi * k_, k_);
          // Spread-bounded first try. The residual power sums bound where
          // the roots can be: with s1 = Σr and s2 = Σr², every root lies in
          // [(s1−B)/d, (s1+B)/d] for B² = d·(d·s2 − s1²) (each squared
          // deviation is at most the sum of all of them). When that id
          // window covers few alive entries — paths, grids, chords, K_{2,m}
          // leaves, every id-local family where a prefix scan of the
          // round-start snapshot would degrade a mass-peel round to Θ(n²) —
          // one windowed try succeeds by construction on a clean transcript.
          // When the spread is wide (uniform-id families) or the sums are
          // corrupt, we skip straight to the unmodified prefix ladder below,
          // which also backstops a faulted windowed try; the exception at
          // completion is still the full-alive-list one by definition, and
          // candidate content never changes a successful decode (the
          // elementary polynomial has exactly the d residual neighbours as
          // roots, and matches_power_sums still validates).
          bool decoded = false;
          if (d >= 1 && srow[0].limbs().size() <= 2 &&
              (d == 1 || srow[1].limbs().size() <= 2)) {
            const auto u128_of = [](const BigUInt& v) {
              unsigned __int128 r = 0;
              const auto& ls = v.limbs();
              if (ls.size() > 1) r = static_cast<unsigned __int128>(ls[1]) << 64;
              if (!ls.empty()) r |= ls[0];
              return r;
            };
            const unsigned __int128 s1v = u128_of(srow[0]);
            const unsigned __int128 dd = d;
            bool have_range = false;
            NodeId lo_id = 1;
            NodeId hi_id = 0;
            if (d == 1) {
              // The residual sum IS the single root.
              if (s1v >= 1 && s1v <= n) {
                lo_id = hi_id = static_cast<NodeId>(s1v);
                have_range = true;
              }
            } else if (s1v < (static_cast<unsigned __int128>(1) << 52) &&
                       d < (1u << 20)) {
              const unsigned __int128 s2v = u128_of(srow[1]);
              // dd*s2v < 2^107 keeps b2 = dd*(dd*s2v − s1v²) below 2^127:
              // the product cannot wrap mod 2^128 and its long-double sqrt
              // stays strictly under 2^64, so the uint64 cast is defined
              // even on crafted in-guard sums. Clean transcripts always
              // qualify (d·s2 ≤ d²·n² < 2^104 for d < 2^20, n ≤ 2^32).
              if (s2v < (static_cast<unsigned __int128>(1) << 100) &&
                  dd * s2v < (static_cast<unsigned __int128>(1) << 107) &&
                  dd * s2v >= s1v * s1v) {
                const unsigned __int128 b2 = dd * (dd * s2v - s1v * s1v);
                // +2 absorbs the long-double rounding so B only over-covers.
                const unsigned __int128 b =
                    static_cast<unsigned __int128>(static_cast<std::uint64_t>(
                        std::sqrt(static_cast<long double>(b2)))) +
                    2;
                const unsigned __int128 lo128 =
                    s1v > b ? (s1v - b) / dd : 0;
                const unsigned __int128 hi128 = (s1v + b) / dd + 1;
                lo_id = lo128 >= 1 ? static_cast<NodeId>(lo128) : 1;
                hi_id = hi128 <= n ? static_cast<NodeId>(hi128) : n;
                have_range = lo_id <= hi_id;
              }
            }
            if (have_range) {
              const auto lo_it = std::lower_bound(alive_ids.begin(),
                                                  alive_ids.end(), lo_id);
              const auto hi_it =
                  std::lower_bound(lo_it, alive_ids.end(),
                                   static_cast<NodeId>(hi_id + 1));
              const auto span_len =
                  static_cast<std::size_t>(hi_it - lo_it);
              // Engage only when the window is a small slice of the alive
              // set; otherwise the prefix ladder's early tries are cheaper.
              if (span_len > 0 && 2 * span_len <= remaining) {
                candidates.clear();
                for (auto it = lo_it; it != hi_it; ++it) {
                  const NodeId id = *it;
                  if (alive[id - 1] && id != x) candidates.push_back(id);
                }
                if (!candidates.empty()) {
                  try {
                    if (have_elem) {
                      roots_among_into(es, candidates, warena, out);
                    } else {
                      decoder_->decode_into(d, srow, candidates, warena, out);
                    }
                    decoded = true;
                  } catch (const DecodeError&) {
                    // Corrupt sums can forge a plausible window; the ladder
                    // below re-derives the fault from the full alive list.
                  }
                }
              }
            }
          }
          // Ascending-prefix ladder, identical to the serial peel's: offer
          // the first `window` alive ids, widen ×8 on a miss, and the
          // terminal try is the full alive list.
          std::size_t window = std::max<std::size_t>(16, 2 * std::size_t{d});
          while (!decoded) {
            candidates.clear();
            std::size_t pos = 0;
            while (candidates.size() < window && pos < alive_ids.size()) {
              const NodeId id = alive_ids[pos++];
              if (alive[id - 1] && id != x) candidates.push_back(id);
            }
            while (pos < alive_ids.size() &&
                   (!alive[alive_ids[pos] - 1] || alive_ids[pos] == x)) {
              ++pos;
            }
            const bool complete = pos == alive_ids.size();
            try {
              if (have_elem) {
                roots_among_into(es, candidates, warena, out);
              } else {
                decoder_->decode_into(d, srow, candidates, warena, out);
              }
              decoded = true;
            } catch (const DecodeError&) {
              if (complete) throw;
              window *= 8;
            }
          }
          if (!matches_power_sums(srow, out, warena)) {
            throw DecodeError(DecodeFault::kInconsistent,
                              "decoded neighbourhood fails power-sum check");
          }
          if (out.size() != d) {
            // Unreachable with the in-tree decoders (they throw on a wrong
            // count); guards the flat-slice write below.
            throw DecodeError(DecodeFault::kInconsistent,
                              "decoded neighbourhood has wrong size");
          }
          std::copy(out.begin(), out.end(), neigh.begin() + offsets[fi]);
        },
        faults, /*serial_cutoff=*/4);
    if (faults.any()) {
      // A decode-phase fault means a Byzantine or out-of-class transcript.
      // WHICH vertex faults first serially depends on how the min-heap
      // interleaves later rounds with this one and on frontier-internal
      // subtractions the snapshot decode never sees, so don't guess:
      // re-run the reference path and surface exactly its outcome — fault
      // type, message, everything. Loud cells only, so the extra serial
      // decode never taxes an accepting run.
      return reconstruct_serial(n, messages, arena);
    }

    // Apply phase: serial, ascending frontier id, exactly the serial peel's
    // mutation order for the edges it records. Any reciprocity anomaly
    // defers to reconstruct_serial the same way as a decode fault: the
    // serial peel raises the fault at the victim's own decode (its residual
    // sums stop matching once the fabricated edge is subtracted), with
    // order-dependent detail the batched path cannot reproduce locally.
    pending.clear();
    for (std::size_t fi = 0; fi < m; ++fi) {
      const NodeId x = frontier[fi];
      const std::size_t xi = x - 1;
      const std::span<const NodeId> list(neigh.data() + offsets[fi],
                                         offsets[fi + 1] - offsets[fi]);
      for (const NodeId w : list) {
        const std::size_t wi = w - 1;
        // Only this round's frontier members can be dead here or sit at or
        // below the prunable threshold, so anything else skips the
        // membership search: it is a plain edge to a later round.
        if (!alive[wi] || deg[wi] <= k_) {
          const auto it =
              std::lower_bound(frontier.begin(), frontier.end(), w);
          if (it != frontier.end() && *it == w) {
            // Frontier-internal edge: w decodes this round too, so the
            // claim must appear from BOTH sides — whether w was applied
            // already (dead; skip the second sighting of a verified edge)
            // or is still pending in this round (alive; record the edge
            // once, from x). An asymmetric claim — x lists w but w never
            // lists x — is Byzantine and must stay loud, not be silently
            // absorbed into the graph.
            const auto wfi = static_cast<std::size_t>(it - frontier.begin());
            const std::span<const NodeId> wlist(
                neigh.data() + offsets[wfi],
                offsets[wfi + 1] - offsets[wfi]);
            if (std::find(wlist.begin(), wlist.end(), x) == wlist.end()) {
              return reconstruct_serial(n, messages, arena);
            }
            if (!alive[wi]) continue;
          } else if (!alive[wi]) {
            // Dead yet never in this round's frontier: impossible for a
            // decode against the round-start snapshot; stay loud via the
            // reference path.
            return reconstruct_serial(n, messages, arena);
          }
        }
        h.add_edge(static_cast<Vertex>(xi), static_cast<Vertex>(wi));
        if (deg[wi] == 0) {
          // Serial raises "degree underflow" here only when its peel order
          // also walks this edge; defer rather than assume it does.
          return reconstruct_serial(n, messages, arena);
        }
        --deg[wi];
        subtract_contribution(row(wi), x, arena);
        // Degrees drop by single steps, so a non-frontier vertex crosses
        // the prunable threshold exactly when it lands on k (frontier
        // members are already <= k and never re-enter).
        if (deg[wi] == k_) pending.push_back(w);
      }
      alive[xi] = 0;
      --remaining;
    }
    stale += m;
    if (2 * stale >= alive_ids.size()) {
      alive_ids.erase(
          std::remove_if(alive_ids.begin(), alive_ids.end(),
                         [&](NodeId id) { return !alive[id - 1]; }),
          alive_ids.end());
      stale = 0;
    }
    std::sort(pending.begin(), pending.end());
    frontier.assign(pending.begin(), pending.end());
  }
  return h;
}

}  // namespace referee
