#include "protocols/degeneracy_protocol.hpp"

#include <algorithm>
#include <set>

#include "numth/power_sums.hpp"
#include "support/bits.hpp"

namespace referee {

DegeneracyReconstruction::DegeneracyReconstruction(
    unsigned k, std::shared_ptr<const NeighborhoodDecoder> decoder)
    : k_(k), decoder_(std::move(decoder)) {
  REFEREE_CHECK_MSG(k_ >= 1, "degeneracy bound must be >= 1");
  if (!decoder_) decoder_ = std::make_shared<NewtonDecoder>();
}

std::string DegeneracyReconstruction::name() const {
  return "degeneracy-reconstruction(k=" + std::to_string(k_) + "," +
         decoder_->name() + ")";
}

void DegeneracyReconstruction::encode(const LocalViewRef& view,
                                      BitWriter& w) const {
  const int id_bits = log_budget_bits(view.n);
  w.write_bits(view.id, id_bits);
  w.write_bits(view.degree(), id_bits);
  const auto sums = power_sums(view.neighbor_ids, k_);
  for (const auto& s : sums) s.write(w);
}

std::size_t DegeneracyReconstruction::message_bits(const LocalViewRef& view,
                                                   unsigned k) {
  std::size_t bits = 2 * static_cast<std::size_t>(log_budget_bits(view.n));
  for (const auto& s : power_sums(view.neighbor_ids, k)) {
    bits += s.encoded_bits();
  }
  return bits;
}

Graph DegeneracyReconstruction::reconstruct(
    std::uint32_t n, std::span<const Message> messages) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);

  // Parse the transcript into the referee's working tuples B.
  std::vector<std::size_t> deg(n);
  std::vector<std::vector<BigUInt>> sums(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    const auto id = static_cast<NodeId>(r.read_bits(id_bits));
    if (id != i + 1) throw DecodeError(DecodeFault::kIdMismatch,
                      "message id does not match sender");
    deg[i] = r.read_bits(id_bits);
    if (deg[i] >= n) throw DecodeError(DecodeFault::kMalformed,
                      "degree out of range");
    sums[i].reserve(k_);
    for (unsigned p = 0; p < k_; ++p) sums[i].push_back(BigUInt::read(r));
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in message");
  }

  Graph h(n);
  // Alive vertices as a sorted set of ids; `pending` drives the pruning by
  // residual degree <= k.
  std::vector<bool> alive(n, true);
  std::vector<NodeId> alive_ids(n);
  for (std::uint32_t i = 0; i < n; ++i) alive_ids[i] = i + 1;
  std::set<NodeId> prunable;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (deg[i] <= k_) prunable.insert(i + 1);
  }

  std::size_t remaining = n;
  while (remaining > 0) {
    if (prunable.empty()) {
      throw DecodeError(DecodeFault::kStalled,
                      "pruning stalled: graph degeneracy exceeds k=" +
                        std::to_string(k_));
    }
    const NodeId x = *prunable.begin();
    prunable.erase(prunable.begin());
    const std::size_t xi = x - 1;
    if (!alive[xi]) continue;

    const auto d = static_cast<unsigned>(deg[xi]);
    // Candidates: alive vertices other than x.
    std::vector<NodeId> candidates;
    candidates.reserve(alive_ids.size());
    for (const NodeId id : alive_ids) {
      if (id != x) candidates.push_back(id);
    }
    const auto neighbors = decoder_->decode(d, sums[xi], candidates);
    // Validate against every power (catches corrupted transcripts even when
    // the first d sums accidentally decode).
    if (!matches_power_sums(sums[xi], neighbors)) {
      throw DecodeError(DecodeFault::kInconsistent,
                      "decoded neighbourhood fails power-sum check");
    }

    for (const NodeId w : neighbors) {
      const std::size_t wi = w - 1;
      if (!alive[wi]) {
        throw DecodeError(DecodeFault::kInconsistent,
                      "decoded neighbour already pruned");
      }
      h.add_edge(static_cast<Vertex>(xi), static_cast<Vertex>(wi));
      if (deg[wi] == 0) throw DecodeError(DecodeFault::kInconsistent,
                      "degree underflow");
      --deg[wi];
      subtract_contribution(sums[wi], x);
      if (deg[wi] <= k_) prunable.insert(w);
    }

    alive[xi] = false;
    alive_ids.erase(
        std::lower_bound(alive_ids.begin(), alive_ids.end(), x));
    --remaining;
  }
  return h;
}

}  // namespace referee
