#include "protocols/adaptive_degeneracy.hpp"

#include "protocols/degeneracy_protocol.hpp"

namespace referee {

AdaptiveDegeneracyReconstruction::AdaptiveDegeneracyReconstruction(
    unsigned round_cap, std::shared_ptr<const NeighborhoodDecoder> decoder)
    : round_cap_(round_cap), decoder_(std::move(decoder)) {
  REFEREE_CHECK_MSG(round_cap_ >= 1, "need at least one round");
  if (!decoder_) decoder_ = std::make_shared<NewtonDecoder>();
}

std::string AdaptiveDegeneracyReconstruction::name() const {
  return "adaptive-degeneracy-reconstruction(cap=" +
         std::to_string(round_cap_) + ")";
}

Message AdaptiveDegeneracyReconstruction::node_message(
    const LocalViewRef& view, unsigned round,
    std::span<const Message> feedback) const {
  // The broadcast is a single "continue" bit; its content carries no
  // information beyond scheduling, so nodes only need the round index.
  (void)feedback;
  const DegeneracyReconstruction one_round(k_for_round(round), decoder_);
  return one_round.local(view);
}

MultiRoundProtocol::RoundOutcome
AdaptiveDegeneracyReconstruction::referee_round(
    std::uint32_t n, unsigned round,
    const std::vector<std::vector<Message>>& inbox) const {
  const DegeneracyReconstruction one_round(k_for_round(round), decoder_);
  RoundOutcome outcome;
  try {
    outcome.result = one_round.reconstruct(n, inbox[round]);
  } catch (const DecodeError&) {
    // Guess too small: ask everyone to double. One bit of feedback.
    BitWriter w;
    w.write_bit(true);
    outcome.broadcast = Message::seal(std::move(w));
  }
  return outcome;
}

}  // namespace referee
