// Arithmetic in GF(p) with p = 2^61 − 1 (Mersenne), plus the keyed hashes
// the sketches use as public randomness. Fingerprints over this field give
// one-sparse recovery a false-positive probability of about m/p per test.
#pragma once

#include <cstdint>

#include "support/random.hpp"

namespace referee::modp {

inline constexpr std::uint64_t kP = (std::uint64_t{1} << 61) - 1;

inline std::uint64_t reduce(std::uint64_t x) {
  x = (x & kP) + (x >> 61);
  return x >= kP ? x - kP : x;
}

inline std::uint64_t add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;  // < 2^62, no overflow
  return s >= kP ? s - kP : s;
}

inline std::uint64_t sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + kP - b;
}

std::uint64_t mul(std::uint64_t a, std::uint64_t b);

std::uint64_t pow(std::uint64_t base, std::uint64_t exp);

/// Stateless keyed 64-bit hash (splitmix over key ^ mixed input).
inline std::uint64_t keyed_hash(std::uint64_t key, std::uint64_t x) {
  return mix64(key ^ mix64(x + 0x9E3779B97F4A7C15ull));
}

}  // namespace referee::modp
