#include "sketch/k_connectivity.hpp"

#include "graph/mincut.hpp"
#include "support/random.hpp"

namespace referee {

KEdgeConnectivityResult sketch_k_edge_connectivity(
    const Graph& g, unsigned k, const SketchParams& params) {
  REFEREE_CHECK_MSG(k >= 1, "k must be >= 1");
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  KEdgeConnectivityResult result;
  result.certificate = Graph(n);

  // k independent banks, one per peeling stage (distinct master seeds so
  // stages don't share randomness with each other). One view pack serves
  // every stage — the adjacency rows are only ever read through spans.
  const LocalViewPack views(g);
  std::vector<std::vector<std::vector<EdgeSketch>>> stages(k);
  for (unsigned stage = 0; stage < k; ++stage) {
    SketchParams stage_params = params;
    stage_params.seed = mix64(params.seed ^ (0x5EEDull + stage));
    stages[stage].resize(n);
    for (Vertex v = 0; v < n; ++v) {
      stages[stage][v] = node_sketch_bank(views.view(v), stage_params);
    }
  }

  // Peel: extract F_i from stage i, then subtract its edges from every
  // later stage's banks (linearity — referee-side only).
  for (unsigned stage = 0; stage < k; ++stage) {
    SketchParams stage_params = params;
    stage_params.seed = mix64(params.seed ^ (0x5EEDull + stage));
    const auto decoded = boruvka_decode(n, stages[stage], stage_params);
    result.sampler_exhausted |= decoded.sampler_exhausted;
    result.forests.push_back(decoded.forest);
    for (const Edge& e : decoded.forest) {
      result.certificate.add_edge(e.u, e.v);
      for (unsigned later = stage + 1; later < k; ++later) {
        for (auto& sketch : stages[later][e.u]) {
          sketch.subtract_incident_edge(e.u, e.v);
        }
        for (auto& sketch : stages[later][e.v]) {
          sketch.subtract_incident_edge(e.v, e.u);
        }
      }
    }
  }

  const std::uint64_t lambda_h = edge_connectivity(result.certificate);
  result.connectivity_lower_bound = std::min<std::uint64_t>(lambda_h, k);
  result.k_connected = lambda_h >= k;
  return result;
}

}  // namespace referee
