// Linear ℓ0-sampling over signed edge-incidence vectors — the machinery that
// answers the paper's main open question (§IV) in the randomised setting
// (the AGM sketching approach).
//
// Every node v holds the vector a_v over edge slots {(u,w) : u < w} with
//   a_v[(u,w)] = +1 if v == u and {u,w} ∈ E,  −1 if v == w and {u,w} ∈ E.
// Summing a_v over a vertex set S cancels internal edges and leaves exactly
// the boundary ∂S with ±1 weights — so a *linear* sketch of a_v can be
// merged by the referee along arbitrary component unions.
//
// The sketch keeps, per geometric subsampling level ℓ, the triple
//   (Σ w_e, Σ w_e·e, Σ w_e·z^e mod p)
// over the edges hashed into level ℓ. A level containing exactly one edge
// reproduces that edge; the fingerprint keeps false positives below ~m/p.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/local_view.hpp"
#include "support/bitstream.hpp"

namespace referee {

/// Canonical index of edge slot (u, w), 0-based vertices, u < w.
std::uint64_t edge_slot(std::uint64_t n, Vertex u, Vertex w);
/// Inverse of edge_slot.
std::pair<Vertex, Vertex> slot_edge(std::uint64_t n, std::uint64_t slot);

struct OneSparse {
  std::int64_t weight_sum = 0;
  std::int64_t index_sum = 0;
  std::uint64_t fingerprint = 0;  // Σ w_e z^e mod p

  void add(std::int64_t w, std::uint64_t slot, std::uint64_t z);
  void merge(const OneSparse& other);

  /// The slot index if this cell holds exactly one ±1 entry; verified
  /// against the fingerprint. nullopt otherwise.
  std::optional<std::uint64_t> recover(std::uint64_t z,
                                       std::uint64_t slot_count) const;
};

/// A full ℓ0-sampler: one OneSparse cell per subsampling level.
class EdgeSketch {
 public:
  EdgeSketch() = default;
  /// `seed` is the shared public randomness; `n` the vertex count of the
  /// graph being sketched (fixes the slot universe and level count).
  EdgeSketch(std::uint64_t n, std::uint64_t seed);

  /// Account vertex `v`'s incidence on edge {v, w}.
  void add_incident_edge(Vertex v, Vertex w);

  /// Remove a previously accounted incidence (the sketch is linear, so the
  /// referee can peel known edges out — e.g. spanning forests already
  /// extracted, for the k-edge-connectivity certificate).
  void subtract_incident_edge(Vertex v, Vertex w);

  /// Linear merge (component union at the referee).
  void merge(const EdgeSketch& other);

  /// Try to produce one boundary edge.
  std::optional<std::pair<Vertex, Vertex>> sample() const;

  void write(BitWriter& w) const;
  static EdgeSketch read(BitReader& r, std::uint64_t n, std::uint64_t seed);
  /// In-place deserialisation reusing this sketch's level storage (the
  /// arena path: a pooled flat bank of EdgeSketch is refilled per decode).
  void read_from(BitReader& r, std::uint64_t n, std::uint64_t seed);

  std::size_t level_count() const { return levels_.size(); }

 private:
  void init(std::uint64_t n, std::uint64_t seed);
  int level_of(std::uint64_t slot) const;
  void account(Vertex v, Vertex w, int sign);

  std::uint64_t n_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t z_ = 0;  // fingerprint base, derived from seed
  std::vector<OneSparse> levels_;
};

}  // namespace referee
