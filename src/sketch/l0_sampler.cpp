#include "sketch/l0_sampler.hpp"

#include <bit>
#include <cstddef>
#include <type_traits>

#include "sketch/modp.hpp"
#include "support/bits.hpp"
#include "support/check.hpp"
#include "support/simd.hpp"
#include "support/varint.hpp"

namespace referee {
namespace {

// Sketch sums rely on wrap-around cancellation (a deletion undoes an
// insertion by overflowing back), so the adds must be the well-defined
// unsigned kind — signed += would be UB at the extremes the wire format
// can carry, and the SIMD merge kernel pins these exact bits.
inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

}  // namespace

std::uint64_t edge_slot(std::uint64_t n, Vertex u, Vertex w) {
  REFEREE_DCHECK(u < w && w < n);
  const std::uint64_t uu = u;
  // Row-major upper triangle: row u starts after Σ_{r<u} (n-1-r).
  return uu * (n - 1) - uu * (uu + 1) / 2 + (w - u - 1) + uu;
}

std::pair<Vertex, Vertex> slot_edge(std::uint64_t n, std::uint64_t slot) {
  std::uint64_t u = 0;
  std::uint64_t row = n - 1;
  while (slot >= row) {
    slot -= row;
    --row;
    ++u;
  }
  return {static_cast<Vertex>(u), static_cast<Vertex>(u + 1 + slot)};
}

void OneSparse::add(std::int64_t w, std::uint64_t slot, std::uint64_t z) {
  weight_sum = wrap_add(weight_sum, w);
  index_sum = wrap_add(index_sum, wrap_mul(w, static_cast<std::int64_t>(slot)));
  const std::uint64_t term = modp::pow(z, slot);
  fingerprint = w > 0 ? modp::add(fingerprint, term)
                      : modp::sub(fingerprint, term);
}

void OneSparse::merge(const OneSparse& other) {
  weight_sum = wrap_add(weight_sum, other.weight_sum);
  index_sum = wrap_add(index_sum, other.index_sum);
  fingerprint = modp::add(fingerprint, other.fingerprint);
}

std::optional<std::uint64_t> OneSparse::recover(
    std::uint64_t z, std::uint64_t slot_count) const {
  if (weight_sum != 1 && weight_sum != -1) return std::nullopt;
  const std::int64_t slot_signed = wrap_mul(index_sum, weight_sum);  // index / weight
  if (slot_signed < 0 ||
      static_cast<std::uint64_t>(slot_signed) >= slot_count) {
    return std::nullopt;
  }
  const auto slot = static_cast<std::uint64_t>(slot_signed);
  std::uint64_t expect = modp::pow(z, slot);
  if (weight_sum < 0) expect = modp::sub(0, expect);
  if (expect != fingerprint) return std::nullopt;
  return slot;
}

EdgeSketch::EdgeSketch(std::uint64_t n, std::uint64_t seed) { init(n, seed); }

void EdgeSketch::init(std::uint64_t n, std::uint64_t seed) {
  n_ = n;
  seed_ = seed;
  z_ = modp::reduce(mix64(seed ^ 0xF1A9u)) | 2u;
  const std::uint64_t slots = n < 2 ? 1 : n * (n - 1) / 2;
  const int max_level = ceil_log2(slots) + 1;
  levels_.assign(static_cast<std::size_t>(max_level) + 1, OneSparse{});
}

int EdgeSketch::level_of(std::uint64_t slot) const {
  const std::uint64_t h = modp::keyed_hash(seed_, slot);
  const int tz = h == 0 ? 63 : std::countr_zero(h);
  return tz >= static_cast<int>(levels_.size())
             ? static_cast<int>(levels_.size()) - 1
             : tz;
}

void EdgeSketch::add_incident_edge(Vertex v, Vertex w) {
  account(v, w, /*sign=*/1);
}

void EdgeSketch::subtract_incident_edge(Vertex v, Vertex w) {
  account(v, w, /*sign=*/-1);
}

void EdgeSketch::account(Vertex v, Vertex w, int sign) {
  REFEREE_CHECK_MSG(v != w && v < n_ && w < n_, "bad edge endpoints");
  const bool positive = v < w;
  const std::uint64_t slot =
      positive ? edge_slot(n_, v, w) : edge_slot(n_, w, v);
  // Edge at level ℓ contributes to every cell 0..ℓ (nested subsampling), so
  // `recover` can use whichever level isolates a single edge.
  const int lvl = level_of(slot);
  const std::int64_t weight = positive ? sign : -sign;
  for (int l = 0; l <= lvl; ++l) {
    levels_[static_cast<std::size_t>(l)].add(weight, slot, z_);
  }
}

void EdgeSketch::merge(const EdgeSketch& other) {
  REFEREE_CHECK_MSG(n_ == other.n_ && seed_ == other.seed_,
                    "merging incompatible sketches");
  // The Borůvka inner loop of the sketch referees lands here; hand the whole
  // level bank to the dispatched kernel as flat int64 triples.
  static_assert(std::is_standard_layout_v<OneSparse>);
  static_assert(sizeof(OneSparse) == 3 * sizeof(std::int64_t));
  static_assert(offsetof(OneSparse, weight_sum) == 0);
  static_assert(offsetof(OneSparse, index_sum) == sizeof(std::int64_t));
  static_assert(offsetof(OneSparse, fingerprint) == 2 * sizeof(std::int64_t));
  static_assert(simd::kFingerprintMod == modp::kP);
  simd::active_kernels().merge_onesparse(
      reinterpret_cast<std::int64_t*>(levels_.data()),
      reinterpret_cast<const std::int64_t*>(other.levels_.data()),
      levels_.size());
}

std::optional<std::pair<Vertex, Vertex>> EdgeSketch::sample() const {
  const std::uint64_t slots = n_ < 2 ? 1 : n_ * (n_ - 1) / 2;
  // Prefer sparser (higher) levels; the first validated cell wins.
  for (std::size_t l = levels_.size(); l-- > 0;) {
    const auto slot = levels_[l].recover(z_, slots);
    if (slot) return slot_edge(n_, *slot);
  }
  return std::nullopt;
}

void EdgeSketch::write(BitWriter& w) const {
  for (const OneSparse& cell : levels_) {
    write_signed_delta(w, cell.weight_sum);
    write_signed_delta(w, cell.index_sum);
    w.write_bits(cell.fingerprint, 61);
  }
}

EdgeSketch EdgeSketch::read(BitReader& r, std::uint64_t n,
                            std::uint64_t seed) {
  EdgeSketch s;
  s.read_from(r, n, seed);
  return s;
}

void EdgeSketch::read_from(BitReader& r, std::uint64_t n,
                           std::uint64_t seed) {
  init(n, seed);
  for (OneSparse& cell : levels_) {
    cell.weight_sum = read_signed_delta(r);
    cell.index_sum = read_signed_delta(r);
    cell.fingerprint = r.read_bits(61);
  }
}

}  // namespace referee
