#include "sketch/modp.hpp"

namespace referee::modp {

__extension__ typedef unsigned __int128 u128;

std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
  const u128 prod = static_cast<u128>(a) * b;
  const std::uint64_t lo = static_cast<std::uint64_t>(prod & kP);
  const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  return reduce(lo + hi);
}

std::uint64_t pow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  std::uint64_t b = reduce(base);
  while (exp != 0) {
    if (exp & 1u) result = mul(result, b);
    b = mul(b, b);
    exp >>= 1;
  }
  return result;
}

}  // namespace referee::modp
