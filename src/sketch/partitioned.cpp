#include "sketch/partitioned.hpp"

#include <numeric>

#include "graph/algorithms.hpp"
#include "support/bits.hpp"

namespace referee {

PartitionedConnectivityResult partitioned_connectivity(
    const Graph& g, std::span<const std::uint32_t> part_of, std::uint32_t k) {
  const std::size_t n = g.vertex_count();
  REFEREE_CHECK_MSG(part_of.size() == n, "partition size mismatch");
  for (const auto p : part_of) {
    REFEREE_CHECK_MSG(p < k, "partition label out of range");
  }
  PartitionedConnectivityResult result;

  // Each part builds the subgraph of edges incident to it and sends a
  // spanning forest of that subgraph.
  const int id_bits = log_budget_bits(static_cast<std::uint64_t>(n));
  Graph union_graph(n);
  for (std::uint32_t part = 0; part < k; ++part) {
    Graph incident(n);
    for (const Edge& e : g.edges()) {
      if (part_of[e.u] == part || part_of[e.v] == part) {
        incident.add_edge(e.u, e.v);
      }
    }
    const auto forest = spanning_forest(incident);
    for (const Edge& e : forest) {
      union_graph.add_edge(e.u, e.v);
      result.union_forest.push_back(e);
    }
    result.total_bits += forest.size() * 2 * static_cast<std::size_t>(id_bits);
  }

  result.component_count = component_count(union_graph);
  result.connected = result.component_count <= 1;
  result.bits_per_node =
      n == 0 ? 0.0
             : static_cast<double>(result.total_bits) / static_cast<double>(n);
  return result;
}

std::vector<std::uint32_t> balanced_partition(std::size_t n, std::uint32_t k) {
  REFEREE_CHECK_MSG(k >= 1, "need at least one part");
  std::vector<std::uint32_t> part_of(n);
  for (std::size_t v = 0; v < n; ++v) {
    part_of[v] = static_cast<std::uint32_t>(v * k / n);
  }
  return part_of;
}

}  // namespace referee
