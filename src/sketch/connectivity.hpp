// One-round randomised connectivity with a referee — the AGM-style answer to
// the paper's main open question (§IV).
//
// Each node, using shared public randomness, sends T·R independent
// EdgeSketches of its incidence vector (O(log³ n) bits in total — not
// O(log n), so this does not contradict the paper's conjecture for
// deterministic frugal protocols; it locates connectivity just above the
// paper's budget). The referee runs Borůvka over the *merged* sketches:
// round r merges each current component's round-r sketches and samples one
// outgoing edge per component, halving the component count w.h.p. per round.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/protocol.hpp"
#include "sketch/l0_sampler.hpp"

namespace referee {

struct SketchParams {
  std::uint64_t seed = 0xC0FFEEull;  // public randomness
  /// Borůvka rounds; 0 = auto (ceil(log2 n) + 2).
  unsigned rounds = 0;
  /// Independent sketch copies per round (failure-probability knob).
  unsigned copies = 3;

  unsigned rounds_for(std::uint32_t n) const;
};

/// Result of the referee-side Borůvka decode.
struct SketchConnectivityResult {
  std::size_t component_count = 0;
  std::vector<Edge> forest;  // spanning edges found (0-based vertices)
  bool sampler_exhausted =
      false;  // a live component failed to sample in some round
};

/// Whole-graph convenience API (bypasses Message serialisation; used by
/// tests and by the bipartite double-cover reduction).
SketchConnectivityResult sketch_components(const Graph& g,
                                           const SketchParams& params);

/// Lower-level building blocks, exposed for protocols that post-process
/// sketch banks (the k-edge-connectivity peeler subtracts already-extracted
/// forest edges before re-running Borůvka — legal because sketches are
/// linear and the referee knows the public randomness).
///
/// One node's bank: rounds_for(n) * copies sketches in round-major order.
std::vector<EdgeSketch> node_sketch_bank(const LocalViewRef& view,
                                         const SketchParams& params);
/// Referee-side Borůvka over per-node banks (banks[v][round*copies+copy]).
SketchConnectivityResult boruvka_decode(
    std::uint32_t n, const std::vector<std::vector<EdgeSketch>>& banks,
    const SketchParams& params);
/// The derived seed for (round, copy) — needed to deserialise banks.
std::uint64_t sketch_bank_seed(std::uint64_t master, unsigned round,
                               unsigned copy);

/// The model-integrated protocol: local() serialises the node's sketches,
/// decide() answers "is G connected?".
class SketchConnectivityProtocol final : public DecisionProtocol {
 public:
  explicit SketchConnectivityProtocol(SketchParams params = {});

  std::string name() const override;
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using DecisionProtocol::decide;
  bool decide(std::uint32_t n, std::span<const Message> messages,
              DecodeArena& arena) const override;

  /// Full decode (component count + forest), for the spanning-forest
  /// example and the benchmarks.
  SketchConnectivityResult decode(std::uint32_t n,
                                  std::span<const Message> messages) const;
  SketchConnectivityResult decode(std::uint32_t n,
                                  std::span<const Message> messages,
                                  DecodeArena& arena) const;

  /// Component count only — the allocation-free core decide() runs on, also
  /// used by the bipartiteness double-cover referee (which needs two counts
  /// per decision and no forests).
  std::size_t component_count(std::uint32_t n,
                              std::span<const Message> messages,
                              DecodeArena& arena) const;

 private:
  SketchParams params_;
};

}  // namespace referee
