#include "sketch/connectivity.hpp"

#include "graph/union_find.hpp"
#include "support/bits.hpp"
#include "support/random.hpp"

namespace referee {

std::uint64_t sketch_bank_seed(std::uint64_t master, unsigned round,
                               unsigned copy) {
  return mix64(master ^ (static_cast<std::uint64_t>(round) << 32) ^ copy);
}

unsigned SketchParams::rounds_for(std::uint32_t n) const {
  if (rounds != 0) return rounds;
  return static_cast<unsigned>(ceil_log2(n < 2 ? 2 : n)) + 2;
}

std::vector<EdgeSketch> node_sketch_bank(const LocalViewRef& view,
                                         const SketchParams& params) {
  const unsigned rounds = params.rounds_for(view.n);
  std::vector<EdgeSketch> bank;
  bank.reserve(static_cast<std::size_t>(rounds) * params.copies);
  for (unsigned r = 0; r < rounds; ++r) {
    for (unsigned c = 0; c < params.copies; ++c) {
      EdgeSketch s(view.n, sketch_bank_seed(params.seed, r, c));
      for (const NodeId w : view.neighbor_ids) {
        s.add_incident_edge(static_cast<Vertex>(view.id - 1),
                            static_cast<Vertex>(w - 1));
      }
      bank.push_back(std::move(s));
    }
  }
  return bank;
}

SketchConnectivityResult boruvka_decode(
    std::uint32_t n, const std::vector<std::vector<EdgeSketch>>& banks,
    const SketchParams& params) {
  SketchConnectivityResult result;
  if (n == 0) return result;
  const unsigned rounds = params.rounds_for(n);
  UnionFind uf(n);
  for (unsigned r = 0; r < rounds && uf.set_count() > 1; ++r) {
    // Group members by start-of-round root.
    std::vector<std::vector<Vertex>> members(n);
    for (Vertex v = 0; v < n; ++v) {
      members[uf.find(v)].push_back(v);
    }
    bool any_merge = false;
    for (Vertex root = 0; root < n; ++root) {
      if (members[root].empty() || uf.set_count() == 1) continue;
      bool sampled = false;
      for (unsigned c = 0; c < params.copies && !sampled; ++c) {
        const std::size_t idx =
            static_cast<std::size_t>(r) * params.copies + c;
        EdgeSketch merged = banks[members[root][0]][idx];
        for (std::size_t i = 1; i < members[root].size(); ++i) {
          merged.merge(banks[members[root][i]][idx]);
        }
        const auto edge = merged.sample();
        if (edge) {
          sampled = true;
          if (uf.unite(edge->first, edge->second)) {
            result.forest.emplace_back(edge->first, edge->second);
            any_merge = true;
          }
        }
      }
      if (!sampled && members[root].size() < n) {
        result.sampler_exhausted = true;
      }
    }
    if (!any_merge) break;  // fixed point: all live components are maximal
  }
  result.component_count = uf.set_count();
  return result;
}

SketchConnectivityResult sketch_components(const Graph& g,
                                           const SketchParams& params) {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const LocalViewPack views(g);
  std::vector<std::vector<EdgeSketch>> banks(n);
  for (Vertex v = 0; v < n; ++v) {
    banks[v] = node_sketch_bank(views.view(v), params);
  }
  return boruvka_decode(n, banks, params);
}

SketchConnectivityProtocol::SketchConnectivityProtocol(SketchParams params)
    : params_(params) {}

std::string SketchConnectivityProtocol::name() const {
  return "sketch-connectivity(copies=" + std::to_string(params_.copies) + ")";
}

void SketchConnectivityProtocol::encode(const LocalViewRef& view,
                                        BitWriter& w) const {
  for (const EdgeSketch& s : node_sketch_bank(view, params_)) s.write(w);
}

SketchConnectivityResult SketchConnectivityProtocol::decode(
    std::uint32_t n, std::span<const Message> messages) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const unsigned rounds = params_.rounds_for(n);
  std::vector<std::vector<EdgeSketch>> banks(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    BitReader r = messages[v].reader();
    banks[v].reserve(static_cast<std::size_t>(rounds) * params_.copies);
    for (unsigned round = 0; round < rounds; ++round) {
      for (unsigned c = 0; c < params_.copies; ++c) {
        banks[v].push_back(EdgeSketch::read(
            r, n, sketch_bank_seed(params_.seed, round, c)));
      }
    }
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in sketch message");
  }
  return boruvka_decode(n, banks, params_);
}

bool SketchConnectivityProtocol::decide(
    std::uint32_t n, std::span<const Message> messages) const {
  return decode(n, messages).component_count <= 1;
}

}  // namespace referee
