#include "sketch/connectivity.hpp"

#include "graph/union_find.hpp"
#include "support/bits.hpp"
#include "support/random.hpp"
#include "support/simd.hpp"

namespace referee {

std::uint64_t sketch_bank_seed(std::uint64_t master, unsigned round,
                               unsigned copy) {
  return mix64(master ^ (static_cast<std::uint64_t>(round) << 32) ^ copy);
}

unsigned SketchParams::rounds_for(std::uint32_t n) const {
  if (rounds != 0) return rounds;
  return static_cast<unsigned>(ceil_log2(n < 2 ? 2 : n)) + 2;
}

std::vector<EdgeSketch> node_sketch_bank(const LocalViewRef& view,
                                         const SketchParams& params) {
  const unsigned rounds = params.rounds_for(view.n);
  std::vector<EdgeSketch> bank;
  bank.reserve(static_cast<std::size_t>(rounds) * params.copies);
  for (unsigned r = 0; r < rounds; ++r) {
    for (unsigned c = 0; c < params.copies; ++c) {
      EdgeSketch s(view.n, sketch_bank_seed(params.seed, r, c));
      for (const NodeId w : view.neighbor_ids) {
        s.add_incident_edge(static_cast<Vertex>(view.id - 1),
                            static_cast<Vertex>(w - 1));
      }
      bank.push_back(std::move(s));
    }
  }
  return bank;
}

namespace {

/// Borůvka over a flat vertex-major bank table (banks[v * stride + idx]) —
/// the single implementation of the referee's round structure; the public
/// nested-vector boruvka_decode flattens into it. Per-round member grouping
/// is a counting sort into flat scratch instead of n nested vectors, and
/// the forest, if requested, lands in `forest_out` (cleared first).
SketchConnectivityResult boruvka_decode_flat(
    std::uint32_t n, std::span<const EdgeSketch> banks, std::size_t stride,
    const SketchParams& params, DecodeArena& arena,
    std::vector<Edge>* forest_out) {
  SketchConnectivityResult result;
  if (forest_out != nullptr) forest_out->clear();
  if (n == 0) return result;
  const unsigned rounds = params.rounds_for(n);
  auto uf_s = arena.scratch<UnionFind>();
  grow_to(*uf_s, 1);
  UnionFind& uf = (*uf_s)[0];
  uf.reset(n);
  auto offsets_s = arena.scratch<std::size_t>();
  auto root_of_s = arena.scratch<Vertex>();
  auto members_s = arena.scratch<Vertex>();
  auto merged_s = arena.scratch<EdgeSketch>();
  std::vector<std::size_t>& offsets = *offsets_s;
  std::vector<Vertex>& root_of = *root_of_s;
  std::vector<Vertex>& members = *members_s;
  grow_to(*merged_s, 1);
  EdgeSketch& merged = (*merged_s)[0];
  for (unsigned r = 0; r < rounds && uf.set_count() > 1; ++r) {
    // Group members by start-of-round root: counting sort into one flat
    // member row per root.
    root_of.assign(n, 0);
    offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    for (Vertex v = 0; v < n; ++v) {
      root_of[v] = static_cast<Vertex>(uf.find(v));
      ++offsets[root_of[v] + 1];
    }
    simd::prefix_sum_sizes(offsets.data(), static_cast<std::size_t>(n) + 1);
    members.assign(n, 0);
    {
      auto cursor_s = arena.scratch<std::size_t>();
      std::vector<std::size_t>& cursor = *cursor_s;
      cursor.assign(offsets.begin(), offsets.end() - 1);
      for (Vertex v = 0; v < n; ++v) members[cursor[root_of[v]]++] = v;
    }
    bool any_merge = false;
    for (Vertex root = 0; root < n; ++root) {
      const std::size_t lo = offsets[root];
      const std::size_t hi = offsets[root + 1];
      if (lo == hi || uf.set_count() == 1) continue;
      bool sampled = false;
      for (unsigned c = 0; c < params.copies && !sampled; ++c) {
        const std::size_t idx =
            static_cast<std::size_t>(r) * params.copies + c;
        merged = banks[members[lo] * stride + idx];
        for (std::size_t i = lo + 1; i < hi; ++i) {
          merged.merge(banks[members[i] * stride + idx]);
        }
        const auto edge = merged.sample();
        if (edge) {
          sampled = true;
          if (uf.unite(edge->first, edge->second)) {
            if (forest_out != nullptr) {
              forest_out->emplace_back(edge->first, edge->second);
            }
            any_merge = true;
          }
        }
      }
      if (!sampled && hi - lo < n) {
        result.sampler_exhausted = true;
      }
    }
    if (!any_merge) break;  // fixed point: all live components are maximal
  }
  result.component_count = uf.set_count();
  return result;
}

}  // namespace

SketchConnectivityResult boruvka_decode(
    std::uint32_t n, const std::vector<std::vector<EdgeSketch>>& banks,
    const SketchParams& params) {
  SketchConnectivityResult result;
  if (n == 0) return result;
  // Flatten into the vertex-major table so there is exactly one
  // implementation of the round structure.
  DecodeArena& arena = DecodeArena::for_current_thread();
  const std::size_t stride =
      static_cast<std::size_t>(params.rounds_for(n)) * params.copies;
  auto flat_s = arena.scratch<EdgeSketch>();
  std::vector<EdgeSketch>& flat = *flat_s;
  grow_to(flat, static_cast<std::size_t>(n) * stride);
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < stride; ++i) {
      flat[v * stride + i] = banks[v][i];
    }
  }
  std::vector<Edge> forest;
  result = boruvka_decode_flat(
      n, std::span<const EdgeSketch>(flat.data(), flat.size()), stride,
      params, arena, &forest);
  result.forest = std::move(forest);
  return result;
}

SketchConnectivityResult sketch_components(const Graph& g,
                                           const SketchParams& params) {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const LocalViewPack views(g);
  std::vector<std::vector<EdgeSketch>> banks(n);
  for (Vertex v = 0; v < n; ++v) {
    banks[v] = node_sketch_bank(views.view(v), params);
  }
  return boruvka_decode(n, banks, params);
}

SketchConnectivityProtocol::SketchConnectivityProtocol(SketchParams params)
    : params_(params) {}

std::string SketchConnectivityProtocol::name() const {
  return "sketch-connectivity(copies=" + std::to_string(params_.copies) + ")";
}

void SketchConnectivityProtocol::encode(const LocalViewRef& view,
                                        BitWriter& w) const {
  for (const EdgeSketch& s : node_sketch_bank(view, params_)) s.write(w);
}

namespace {

/// Parse a transcript into a pooled flat bank table (vertex-major).
void read_banks_flat(std::uint32_t n, std::span<const Message> messages,
                     const SketchParams& params, std::vector<EdgeSketch>& banks,
                     std::size_t& stride) {
  const unsigned rounds = params.rounds_for(n);
  stride = static_cast<std::size_t>(rounds) * params.copies;
  grow_to(banks, static_cast<std::size_t>(n) * stride);
  for (std::uint32_t v = 0; v < n; ++v) {
    BitReader r = messages[v].reader();
    for (unsigned round = 0; round < rounds; ++round) {
      for (unsigned c = 0; c < params.copies; ++c) {
        banks[v * stride + round * params.copies + c].read_from(
            r, n, sketch_bank_seed(params.seed, round, c));
      }
    }
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in sketch message");
  }
}

}  // namespace

SketchConnectivityResult SketchConnectivityProtocol::decode(
    std::uint32_t n, std::span<const Message> messages) const {
  return decode(n, messages, DecodeArena::for_current_thread());
}

SketchConnectivityResult SketchConnectivityProtocol::decode(
    std::uint32_t n, std::span<const Message> messages,
    DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  auto banks_s = arena.scratch<EdgeSketch>();
  std::size_t stride = 0;
  read_banks_flat(n, messages, params_, *banks_s, stride);
  auto forest_s = arena.scratch<Edge>();
  SketchConnectivityResult result = boruvka_decode_flat(
      n, std::span<const EdgeSketch>(banks_s->data(), banks_s->size()),
      stride, params_, arena, &*forest_s);
  // The result owns its forest; this copy is the one allocation the full-
  // decode convenience pays, and decide() below skips it entirely.
  result.forest.assign(forest_s->begin(), forest_s->end());
  return result;
}

std::size_t SketchConnectivityProtocol::component_count(
    std::uint32_t n, std::span<const Message> messages,
    DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  auto banks_s = arena.scratch<EdgeSketch>();
  std::size_t stride = 0;
  read_banks_flat(n, messages, params_, *banks_s, stride);
  return boruvka_decode_flat(
             n, std::span<const EdgeSketch>(banks_s->data(), banks_s->size()),
             stride, params_, arena, nullptr)
      .component_count;
}

bool SketchConnectivityProtocol::decide(std::uint32_t n,
                                        std::span<const Message> messages,
                                        DecodeArena& arena) const {
  return component_count(n, messages, arena) <= 1;
}

}  // namespace referee
