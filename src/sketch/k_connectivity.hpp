// One-round k-edge-connectivity — pushing the sketching answer to the
// paper's open question one structural property further.
//
// The AGM peeling argument: let F_1 be a spanning forest of G, F_2 a
// spanning forest of G − F_1, …, F_k of G − F_1 − … − F_{k−1}. Then the
// certificate H = F_1 ∪ … ∪ F_k (at most k·n edges) satisfies
//   min(λ(H), k) == min(λ(G), k),
// so λ(G) >= k iff λ(H) >= k, checkable exactly by Stoer–Wagner.
//
// One round suffices because sketches are *linear*: every node ships k
// independent connectivity banks; after extracting F_i the referee
// subtracts those edges from the remaining banks itself (it knows the edges
// and the public randomness), then re-runs Borůvka. Nodes never speak
// again. Message cost: k × the E8 connectivity payload.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sketch/connectivity.hpp"

namespace referee {

struct KEdgeConnectivityResult {
  bool k_connected = false;
  /// λ(H) capped at k (equals min(λ(G), k) when sampling succeeded).
  std::uint64_t connectivity_lower_bound = 0;
  /// The peeled forests F_1..F_k.
  std::vector<std::vector<Edge>> forests;
  /// The certificate H (union of the forests).
  Graph certificate;
  bool sampler_exhausted = false;
};

/// Whole-graph API (the Message-level plumbing is identical to E8's
/// protocol, k banks instead of one).
KEdgeConnectivityResult sketch_k_edge_connectivity(const Graph& g,
                                                   unsigned k,
                                                   const SketchParams& params);

}  // namespace referee
