// The deterministic escape hatch the paper's conclusion points out: "if a
// graph is split into k parts and vertices of each part are allowed to
// communicate to each other, there is an algorithm for connectivity using
// O(k log n) bits per node."
//
// Realisation: a part's pooled knowledge is every edge incident to it. The
// part contributes a spanning forest of (V, E_i) — at most n−1 edges — and
// the referee unions the k forests. Since a spanning forest preserves the
// components of its edge set and E = ∪ E_i, the union preserves the
// components of G. Total traffic <= k·(n−1)·2·log n bits, i.e. O(k log n)
// per node amortised, matching the remark.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace referee {

struct PartitionedConnectivityResult {
  bool connected = false;
  std::size_t component_count = 0;
  std::vector<Edge> union_forest;  // edges the referee received
  std::size_t total_bits = 0;      // referee-side traffic
  double bits_per_node = 0.0;
};

/// `part_of[v]` in {0..k-1}. Exact (deterministic) one-shot connectivity
/// under the k-part cooperation model.
PartitionedConnectivityResult partitioned_connectivity(
    const Graph& g, std::span<const std::uint32_t> part_of, std::uint32_t k);

/// Convenience: contiguous balanced partition into k parts.
std::vector<std::uint32_t> balanced_partition(std::size_t n, std::uint32_t k);

}  // namespace referee
