// One-round bipartiteness via the double cover — the paper's §IV "ongoing
// work" remark, run in the forward direction: bipartiteness *uses* a
// one-round connectivity protocol.
//
// Fact: a graph G with c components is bipartite iff its bipartite double
// cover has exactly 2c components (every bipartite component lifts to two
// copies; every odd-cycle-containing component lifts to one).
//
// Each node can simulate both of its cover copies from its own view alone
// (copy v attaches to copies w+n of neighbours w and vice versa), so one
// round suffices: the node ships sketches for G and for the cover; the
// referee counts components on both and compares.
#pragma once

#include "model/protocol.hpp"
#include "sketch/connectivity.hpp"

namespace referee {

class SketchBipartitenessProtocol final : public DecisionProtocol {
 public:
  explicit SketchBipartitenessProtocol(SketchParams params = {});

  std::string name() const override;
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using DecisionProtocol::decide;
  bool decide(std::uint32_t n, std::span<const Message> messages,
              DecodeArena& arena) const override;

 private:
  SketchParams params_;

  /// The two cover views node `id` is responsible for.
  static LocalView cover_low(const LocalViewRef& view);
  static LocalView cover_high(const LocalViewRef& view);
};

}  // namespace referee
