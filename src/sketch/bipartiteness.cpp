#include "sketch/bipartiteness.hpp"

#include "support/varint.hpp"

namespace referee {

SketchBipartitenessProtocol::SketchBipartitenessProtocol(SketchParams params)
    : params_(params) {}

std::string SketchBipartitenessProtocol::name() const {
  return "sketch-bipartiteness(copies=" + std::to_string(params_.copies) +
         ")";
}

LocalView SketchBipartitenessProtocol::cover_low(const LocalViewRef& view) {
  // Copy v (id unchanged) attaches to copies w + n.
  std::vector<NodeId> nb;
  nb.reserve(view.neighbor_ids.size());
  for (const NodeId w : view.neighbor_ids) nb.push_back(w + view.n);
  return make_view(view.id, 2 * view.n, std::move(nb));
}

LocalView SketchBipartitenessProtocol::cover_high(const LocalViewRef& view) {
  // Copy v + n attaches to low copies of neighbours.
  return make_view(
      view.id + view.n, 2 * view.n,
      {view.neighbor_ids.begin(), view.neighbor_ids.end()});
}

void SketchBipartitenessProtocol::encode(const LocalViewRef& view,
                                         BitWriter& w) const {
  // One connectivity payload for G itself, two for the node's cover copies.
  const SketchConnectivityProtocol base(params_);
  const Message mg = base.local(view);
  const Message mlow = base.local(cover_low(view));
  const Message mhigh = base.local(cover_high(view));
  write_delta0(w, mg.bit_size());
  write_delta0(w, mlow.bit_size());
  write_delta0(w, mhigh.bit_size());
  for (const Message* m : {&mg, &mlow, &mhigh}) {
    BitReader r = m->reader();
    while (!r.exhausted()) w.write_bit(r.read_bit());
  }
}

bool SketchBipartitenessProtocol::decide(std::uint32_t n,
                                         std::span<const Message> messages,
                                         DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  // Split each node's bundle into its three framed payloads, all in pooled
  // storage: one scratch writer, Message::assign into pooled slots.
  auto graph_msgs_s = arena.scratch<Message>();
  auto cover_msgs_s = arena.scratch<Message>();
  auto writer_s = arena.scratch<BitWriter>();
  std::vector<Message>& graph_msgs = *graph_msgs_s;
  std::vector<Message>& cover_msgs = *cover_msgs_s;
  grow_to(graph_msgs, n);
  grow_to(cover_msgs, 2 * static_cast<std::size_t>(n));
  grow_to(*writer_s, 1);
  BitWriter& w = (*writer_s)[0];
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    const std::uint64_t len_g = read_delta0(r);
    const std::uint64_t len_low = read_delta0(r);
    const std::uint64_t len_high = read_delta0(r);
    const auto take = [&r, &w](std::uint64_t bits, Message& out) {
      w.clear();
      for (std::uint64_t b = 0; b < bits; ++b) w.write_bit(r.read_bit());
      out.assign(w);
    };
    take(len_g, graph_msgs[i]);
    take(len_low, cover_msgs[i]);
    take(len_high, cover_msgs[i + n]);
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in message");
  }
  const SketchConnectivityProtocol base(params_);
  const auto comp_g = base.component_count(
      n, std::span<const Message>(graph_msgs.data(), n), arena);
  const auto comp_cover = base.component_count(
      2 * n, std::span<const Message>(cover_msgs.data(), 2 * n), arena);
  return comp_cover == 2 * comp_g;
}

}  // namespace referee
