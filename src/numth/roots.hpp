// Integer root extraction for the monic polynomial Π (X − ID_i) given its
// elementary symmetric polynomials. Neighbour IDs live in {1..n} (and, during
// the pruning decode, among the still-alive vertices), so roots are found by
// trial evaluation + synthetic deflation over the candidate set — O(|cand|·d)
// exact BigInt operations for degree d.
#pragma once

#include <span>
#include <vector>

#include "bigint/bigint.hpp"
#include "model/local_view.hpp"
#include "support/arena.hpp"

namespace referee {

/// All d roots of X^d − e1·X^{d−1} + e2·X^{d−2} − … among `candidates`
/// (sorted ascending, distinct). Throws DecodeError unless exactly d distinct
/// roots are found — a well-formed message always yields them (Corollary 1).
std::vector<NodeId> roots_among(std::span<const BigInt> elementary,
                                std::span<const NodeId> candidates);

/// Arena form: roots are written into `out` (cleared first; capacity is
/// reused, so the historic per-call `roots.reserve(degree)` allocation is
/// gone), coefficient/quotient scratch comes from `arena`.
void roots_among_into(std::span<const BigInt> elementary,
                      std::span<const NodeId> candidates, DecodeArena& arena,
                      std::vector<NodeId>& out);

/// Convenience: candidates = {1..n}.
std::vector<NodeId> roots_in_range(std::span<const BigInt> elementary,
                                   std::uint32_t n);

}  // namespace referee
