// Integer root extraction for the monic polynomial Π (X − ID_i) given its
// elementary symmetric polynomials. Neighbour IDs live in {1..n} (and, during
// the pruning decode, among the still-alive vertices), so roots are found by
// trial evaluation + synthetic deflation over the candidate set — O(|cand|·d)
// exact BigInt operations for degree d.
#pragma once

#include <span>
#include <vector>

#include "bigint/bigint.hpp"
#include "model/local_view.hpp"

namespace referee {

/// All d roots of X^d − e1·X^{d−1} + e2·X^{d−2} − … among `candidates`
/// (sorted ascending, distinct). Throws DecodeError unless exactly d distinct
/// roots are found — a well-formed message always yields them (Corollary 1).
std::vector<NodeId> roots_among(std::span<const BigInt> elementary,
                                std::span<const NodeId> candidates);

/// Convenience: candidates = {1..n}.
std::vector<NodeId> roots_in_range(std::span<const BigInt> elementary,
                                   std::uint32_t n);

}  // namespace referee
