// The neighbourhood encoding of §III-C: b(x) = A(k,n)·x where A_{p,i} = i^p
// and x is the incidence vector of x's neighbourhood. Concretely, entry p-1
// of the result is Σ_{w ∈ N(x)} ID(w)^p — the sum of p-th powers of
// neighbour identifiers (Algorithm 3's payload).
#pragma once

#include <span>
#include <vector>

#include "bigint/biguint.hpp"
#include "model/local_view.hpp"
#include "support/arena.hpp"

namespace referee {

/// Power sums p_1..p_k of `ids` (k entries; empty id set gives all zeros).
std::vector<BigUInt> power_sums(std::span<const NodeId> ids, unsigned k);

/// Arena form: the first k entries of `out` (grown, never shrunk) receive
/// the power sums; temporaries come from `arena`. Zero heap allocations once
/// `out` and the arena are warm.
void power_sums_into(std::span<const NodeId> ids, unsigned k,
                     DecodeArena& arena, std::vector<BigUInt>& out);

/// In-place update for the referee's pruning step (Algorithm 4): remove one
/// id's contribution, i.e. sums[p-1] -= id^p for all p. Throws DecodeError if
/// any entry would go negative — that means the transcript is inconsistent.
void subtract_contribution(std::vector<BigUInt>& sums, NodeId id);

/// Span + arena form for flat tuple storage (one row of an n×k table).
void subtract_contribution(std::span<BigUInt> sums, NodeId id,
                           DecodeArena& arena);

/// Add a contribution (used by the generalised-degeneracy variant when
/// re-encoding complements, and by tests).
void add_contribution(std::vector<BigUInt>& sums, NodeId id);

/// True iff `sums` equals the power sums of `ids` (full-length check; the
/// degeneracy decoder uses it to validate a decoded neighbourhood against
/// *all* k sums, not just the d used for decoding).
bool matches_power_sums(std::span<const BigUInt> sums,
                        std::span<const NodeId> ids);

/// Arena form of the full-length check (no expectation vector allocated).
bool matches_power_sums(std::span<const BigUInt> sums,
                        std::span<const NodeId> ids, DecodeArena& arena);

/// True when every power sum of a degree-d vertex fits in 64 bits, i.e.
/// d · n^k < 2^64 — the precondition of the fast path below.
bool power_sums_fit_u64(std::uint32_t n, unsigned k, std::size_t max_degree);

/// Fast path: plain 64-bit power sums. The caller must have checked
/// power_sums_fit_u64 (checked again per-term in debug builds). Ablation
/// experiment EA measures the speedup over the exact BigUInt route.
std::vector<std::uint64_t> power_sums_u64(std::span<const NodeId> ids,
                                          unsigned k);

}  // namespace referee
