#include "numth/newton.hpp"

#include "support/check.hpp"

namespace referee {

std::vector<BigInt> elementary_from_power_sums(std::span<const BigUInt> p) {
  const std::size_t d = p.size();
  std::vector<BigInt> e(d + 1);
  e[0] = BigInt(1);
  for (std::size_t i = 1; i <= d; ++i) {
    BigInt acc;
    for (std::size_t j = 1; j <= i; ++j) {
      BigInt term = e[i - j] * BigInt(p[j - 1]);
      if (j % 2 == 0) term = -term;
      acc += term;
    }
    e[i] = acc.div_exact(BigInt(static_cast<std::int64_t>(i)));
  }
  e.erase(e.begin());  // drop e_0
  return e;
}

void elementary_from_power_sums_into(std::span<const BigUInt> p,
                                     DecodeArena& arena,
                                     std::vector<BigInt>& out) {
  const std::size_t d = p.size();
  static const BigInt kOne(1);
  grow_to(out, d);
  auto acc_s = arena.scratch<BigInt>();
  grow_to(*acc_s, 2);
  BigInt& acc = (*acc_s)[0];
  BigInt& term = (*acc_s)[1];
  // e_0 = 1 is implicit: out[i-1] holds e_i.
  const auto e_at = [&](std::size_t i) -> const BigInt& {
    return i == 0 ? kOne : out[i - 1];
  };
  for (std::size_t i = 1; i <= d; ++i) {
    acc.assign_i64(0);
    for (std::size_t j = 1; j <= i; ++j) {
      BigInt::mul_into(e_at(i - j), p[j - 1], term);
      if (j % 2 == 0) term.negate();
      acc += term;
    }
    acc.div_exact_u64(i);
    out[i - 1] = acc;
  }
}

std::vector<BigInt> power_sums_from_elementary(std::span<const BigInt> e,
                                               unsigned k) {
  const std::size_t d = e.size();
  std::vector<BigInt> p(k);
  const auto e_at = [&](std::size_t i) -> BigInt {
    return i == 0 ? BigInt(1) : (i <= d ? e[i - 1] : BigInt(0));
  };
  for (std::size_t i = 1; i <= k; ++i) {
    // p_i = (-1)^{i-1} i e_i + Σ_{j=1..i-1} (-1)^{j-1} e_j p_{i-j}
    BigInt acc = e_at(i) * BigInt(static_cast<std::int64_t>(i));
    if (i % 2 == 0) acc = -acc;
    for (std::size_t j = 1; j < i; ++j) {
      BigInt term = e_at(j) * p[i - j - 1];
      if (j % 2 == 0) term = -term;
      acc += term;
    }
    p[i - 1] = acc;
  }
  return p;
}

}  // namespace referee
