#include "numth/newton.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"
#include "support/simd.hpp"

namespace referee {

std::vector<BigInt> elementary_from_power_sums(std::span<const BigUInt> p) {
  const std::size_t d = p.size();
  std::vector<BigInt> e(d + 1);
  e[0] = BigInt(1);
  for (std::size_t i = 1; i <= d; ++i) {
    BigInt acc;
    for (std::size_t j = 1; j <= i; ++j) {
      BigInt term = e[i - j] * BigInt(p[j - 1]);
      if (j % 2 == 0) term = -term;
      acc += term;
    }
    e[i] = acc.div_exact(BigInt(static_cast<std::int64_t>(i)));
  }
  e.erase(e.begin());  // drop e_0
  return e;
}

void elementary_from_power_sums_into(std::span<const BigUInt> p,
                                     DecodeArena& arena,
                                     std::vector<BigInt>& out) {
  const std::size_t d = p.size();
  static const BigInt kOne(1);
  grow_to(out, d);
  auto acc_s = arena.scratch<BigInt>();
  grow_to(*acc_s, 2);
  BigInt& acc = (*acc_s)[0];
  BigInt& term = (*acc_s)[1];
  // e_0 = 1 is implicit: out[i-1] holds e_i.
  const auto e_at = [&](std::size_t i) -> const BigInt& {
    return i == 0 ? kOne : out[i - 1];
  };
  for (std::size_t i = 1; i <= d; ++i) {
    acc.assign_i64(0);
    for (std::size_t j = 1; j <= i; ++j) {
      BigInt::mul_into(e_at(i - j), p[j - 1], term);
      if (j % 2 == 0) term.negate();
      acc += term;
    }
    acc.div_exact_u64(i);
    out[i - 1] = acc;
  }
}

std::size_t newton_batch_width(unsigned d, std::uint32_t n) {
  if (d == 0) return 0;
  const std::size_t L = std::bit_width(static_cast<std::uint64_t>(n));
  const std::size_t Q = std::bit_width(static_cast<std::uint64_t>(d) + 1);
  const std::size_t bits = static_cast<std::size_t>(d) * (1 + Q + L) +
                           std::bit_width(static_cast<std::uint64_t>(d)) + 1;
  const std::size_t width = (bits + 63) / 64;
  return width <= simd::kNewtonMaxLimbs ? width : 0;
}

bool newton_batch_fits(std::span<const BigUInt> p, unsigned d,
                       std::uint32_t n) {
  const std::size_t L = std::bit_width(static_cast<std::uint64_t>(n));
  const std::size_t Q = std::bit_width(static_cast<std::uint64_t>(d) + 1);
  for (std::size_t j = 1; j <= p.size(); ++j) {
    if (p[j - 1].bit_length() > j * L + Q) return false;
  }
  return true;
}

unsigned elementary_from_power_sums_lanes(std::span<const NewtonLane> lanes,
                                          unsigned d, std::size_t width,
                                          DecodeArena& arena) {
  REFEREE_CHECK(d > 0);
  REFEREE_CHECK(lanes.size() <= simd::kNewtonLanes);
  REFEREE_CHECK(width > 0 && width <= simd::kNewtonMaxLimbs);
  const std::size_t cells =
      static_cast<std::size_t>(d) * width * simd::kNewtonLanes;
  auto sums_s = arena.scratch<std::uint64_t>();
  auto elem_s = arena.scratch<std::uint64_t>();
  auto& sums = *sums_s;
  auto& elem = *elem_s;
  grow_to(sums, cells);
  grow_to(elem, cells);
  // Zero everything first: pad lanes (all-zero power sums) convert to
  // all-zero elementaries with exact divisions, so they can never fault.
  std::fill(sums.begin(), sums.begin() + cells, 0);
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    for (unsigned v = 0; v < d; ++v) {
      const auto& limbs = lanes[lane].sums[v].limbs();
      const std::size_t base =
          static_cast<std::size_t>(v) * width * simd::kNewtonLanes;
      for (std::size_t w = 0; w < limbs.size(); ++w) {
        sums[base + w * simd::kNewtonLanes + lane] = limbs[w];
      }
    }
  }
  const unsigned faults =
      simd::active_kernels().newton_batch(sums.data(), d, width, elem.data());
  std::uint64_t row[simd::kNewtonMaxLimbs];
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    if ((faults >> lane) & 1u) continue;
    const std::span<BigInt> out = lanes[lane].out;
    for (unsigned v = 0; v < d; ++v) {
      const std::size_t base =
          static_cast<std::size_t>(v) * width * simd::kNewtonLanes;
      for (std::size_t w = 0; w < width; ++w) {
        row[w] = elem[base + w * simd::kNewtonLanes + lane];
      }
      const bool negative = (row[width - 1] >> 63) != 0;
      if (negative) {
        std::uint64_t carry = 1;
        for (std::size_t w = 0; w < width; ++w) {
          const std::uint64_t s = ~row[w] + carry;
          carry = s < carry ? 1 : 0;
          row[w] = s;
        }
      }
      out[v].assign_limbs(std::span<const std::uint64_t>(row, width),
                          negative);
    }
  }
  return faults;
}

std::vector<BigInt> power_sums_from_elementary(std::span<const BigInt> e,
                                               unsigned k) {
  const std::size_t d = e.size();
  std::vector<BigInt> p(k);
  const auto e_at = [&](std::size_t i) -> BigInt {
    return i == 0 ? BigInt(1) : (i <= d ? e[i - 1] : BigInt(0));
  };
  for (std::size_t i = 1; i <= k; ++i) {
    // p_i = (-1)^{i-1} i e_i + Σ_{j=1..i-1} (-1)^{j-1} e_j p_{i-j}
    BigInt acc = e_at(i) * BigInt(static_cast<std::int64_t>(i));
    if (i % 2 == 0) acc = -acc;
    for (std::size_t j = 1; j < i; ++j) {
      BigInt term = e_at(j) * p[i - j - 1];
      if (j % 2 == 0) term = -term;
      acc += term;
    }
    p[i - 1] = acc;
  }
  return p;
}

}  // namespace referee
