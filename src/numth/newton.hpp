// Newton's identities: convert power sums p_1..p_d of d (unknown) values to
// the elementary symmetric polynomials e_1..e_d of those values. This is the
// table-free half of neighbourhood decoding: it turns the message payload
// into the coefficients of Π (X − ID_i), whose roots are then extracted over
// {1..n} (roots.hpp).
//
//   i·e_i = Σ_{j=1..i} (−1)^{j−1} e_{i−j} p_j,   e_0 = 1.
//
// Every division is exact for genuine power-sum inputs; an inexact division
// is reported as DecodeError (corrupt message).
#pragma once

#include <span>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/biguint.hpp"
#include "support/arena.hpp"

namespace referee {

/// e_1..e_d from p_1..p_d. Throws DecodeError if the p's cannot be the power
/// sums of any multiset of integers (inexact division).
std::vector<BigInt> elementary_from_power_sums(std::span<const BigUInt> p);

/// Arena form: e_1..e_d written into the first d entries of `out` (grown,
/// never shrunk); every temporary comes from `arena`, so a warm call
/// performs zero heap allocations.
void elementary_from_power_sums_into(std::span<const BigUInt> p,
                                     DecodeArena& arena,
                                     std::vector<BigInt>& out);

/// Inverse direction (used by tests and by the generalised protocol's
/// re-encoding): p_1..p_k from values.
std::vector<BigInt> power_sums_from_elementary(std::span<const BigInt> e,
                                               unsigned k);

/// Fixed limb width for a lane-batched degree-d conversion with ids <= n:
/// the smallest W such that every Newton intermediate provably fits a
/// signed 64*W-bit two's-complement value, assuming each input obeys
/// bitlen(p_j) <= j*L + Q with L = bitlen(n), Q = bitlen(d+1) (what
/// newton_batch_fits checks). By induction on i·e_i = Σ ±e_{i-j}·p_j the
/// magnitudes satisfy |e_i| <= 2^{i(1+Q+L)}, so the pre-division
/// accumulator needs at most d(1+Q+L) + bitlen(d) bits plus a sign bit.
/// Returns 0 when that exceeds simd::kNewtonMaxLimbs — callers then stay
/// on the exact BigInt path.
std::size_t newton_batch_width(unsigned d, std::uint32_t n);

/// True when the (possibly corrupt) power sums still satisfy the per-index
/// bit bound the width proof assumes. A genuine degree-d neighbourhood
/// always passes (p_j <= d·n^j); a corrupt message that fails simply takes
/// the exact BigInt path, whose typed fault is the contract either way.
bool newton_batch_fits(std::span<const BigUInt> p, unsigned d,
                       std::uint32_t n);

/// One independent decode occupying one SIMD lane of a batched conversion.
struct NewtonLane {
  std::span<const BigUInt> sums;  ///< p_1..p_d
  std::span<BigInt> out;          ///< receives e_1..e_d (size >= d)
};

/// Lane-batched elementary_from_power_sums_into over up to
/// simd::kNewtonLanes same-degree decodes (unused lanes are zero-padded
/// internally). Every lane must have passed newton_batch_fits for this
/// (d, n, width = newton_batch_width(d, n)). Returns a bitmask of lanes
/// whose conversion hit an inexact division: those lanes' out vectors are
/// untouched and the caller MUST rerun them through
/// elementary_from_power_sums_into so the raised DecodeError is
/// bit-identical to the serial path's. Non-faulted lanes produce exactly
/// the serial results — the fixed-width arithmetic is exact within the
/// proven bound.
unsigned elementary_from_power_sums_lanes(std::span<const NewtonLane> lanes,
                                          unsigned d, std::size_t width,
                                          DecodeArena& arena);

}  // namespace referee
