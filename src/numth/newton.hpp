// Newton's identities: convert power sums p_1..p_d of d (unknown) values to
// the elementary symmetric polynomials e_1..e_d of those values. This is the
// table-free half of neighbourhood decoding: it turns the message payload
// into the coefficients of Π (X − ID_i), whose roots are then extracted over
// {1..n} (roots.hpp).
//
//   i·e_i = Σ_{j=1..i} (−1)^{j−1} e_{i−j} p_j,   e_0 = 1.
//
// Every division is exact for genuine power-sum inputs; an inexact division
// is reported as DecodeError (corrupt message).
#pragma once

#include <span>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/biguint.hpp"
#include "support/arena.hpp"

namespace referee {

/// e_1..e_d from p_1..p_d. Throws DecodeError if the p's cannot be the power
/// sums of any multiset of integers (inexact division).
std::vector<BigInt> elementary_from_power_sums(std::span<const BigUInt> p);

/// Arena form: e_1..e_d written into the first d entries of `out` (grown,
/// never shrunk); every temporary comes from `arena`, so a warm call
/// performs zero heap allocations.
void elementary_from_power_sums_into(std::span<const BigUInt> p,
                                     DecodeArena& arena,
                                     std::vector<BigInt>& out);

/// Inverse direction (used by tests and by the generalised protocol's
/// re-encoding): p_1..p_k from values.
std::vector<BigInt> power_sums_from_elementary(std::span<const BigInt> e,
                                               unsigned k);

}  // namespace referee
