// Pluggable neighbourhood-decoding strategies for the referee's global phase.
//
// The paper offers two ways to invert b(x) = A(k,n)·x for a vertex of degree
// d <= k:
//  * Lemma 3's precomputed O(n^k) table (fast queries, heavy preprocessing);
//  * implicitly, the algebraic route: Newton's identities + root extraction
//    (no preprocessing, O(n·d) per query).
// Both are exposed behind one interface so protocols and experiment E3 can
// swap them freely.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "bigint/biguint.hpp"
#include "model/local_view.hpp"
#include "numth/lookup.hpp"
#include "support/arena.hpp"

namespace referee {

class NeighborhoodDecoder {
 public:
  virtual ~NeighborhoodDecoder() = default;

  virtual std::string name() const = 0;

  /// Recover the `degree` neighbour ids whose power sums are
  /// `sums[0..degree)`. `candidates` (sorted, 1-based) is the set of ids the
  /// neighbours are known to lie in — during the pruning decode these are
  /// the still-alive vertices. Implementations may ignore it (the subset is
  /// unique over all of {1..n} anyway, by Theorem 4).
  virtual std::vector<NodeId> decode(
      unsigned degree, std::span<const BigUInt> sums,
      std::span<const NodeId> candidates) const = 0;

  /// Arena form: ids are written into `out` (cleared first), scratch comes
  /// from `arena`. The algebraic decoders override this with genuinely
  /// allocation-free implementations; the base version wraps decode() for
  /// strategies (like the Lemma 3 table) whose queries allocate anyway.
  virtual void decode_into(unsigned degree, std::span<const BigUInt> sums,
                           std::span<const NodeId> candidates, DecodeArena&,
                           std::vector<NodeId>& out) const {
    const auto ids = decode(degree, sums, candidates);
    out.assign(ids.begin(), ids.end());
  }
};

/// Table-free decoder: Newton's identities then synthetic-division roots.
class NewtonDecoder final : public NeighborhoodDecoder {
 public:
  std::string name() const override { return "newton"; }
  std::vector<NodeId> decode(unsigned degree, std::span<const BigUInt> sums,
                             std::span<const NodeId> candidates) const override;
  void decode_into(unsigned degree, std::span<const BigUInt> sums,
                   std::span<const NodeId> candidates, DecodeArena& arena,
                   std::vector<NodeId>& out) const override;
};

/// 64-bit fast path of the Newton decoder: when k·n^k fits comfortably in a
/// machine word (checked at construction), power sums, Newton's identities
/// and Horner evaluation all run in native integers (128-bit intermediates)
/// instead of BigInt. Same wire format, same answers — ablation EA measures
/// the speedup. Falls back is the caller's job: construction throws
/// CheckError when (n, k) is out of range.
class SmallNewtonDecoder final : public NeighborhoodDecoder {
 public:
  SmallNewtonDecoder(std::uint32_t n, unsigned k);

  std::string name() const override { return "newton-u64"; }
  std::vector<NodeId> decode(unsigned degree, std::span<const BigUInt> sums,
                             std::span<const NodeId> candidates) const override;
  void decode_into(unsigned degree, std::span<const BigUInt> sums,
                   std::span<const NodeId> candidates, DecodeArena& arena,
                   std::vector<NodeId>& out) const override;

 private:
  std::uint32_t n_;
  unsigned k_;
};

/// Lemma 3 decoder over a prebuilt table (shared between queries).
class TableDecoder final : public NeighborhoodDecoder {
 public:
  explicit TableDecoder(std::shared_ptr<const NeighborhoodTable> table)
      : table_(std::move(table)) {}

  std::string name() const override { return "table"; }
  std::vector<NodeId> decode(unsigned degree, std::span<const BigUInt> sums,
                             std::span<const NodeId> candidates) const override;

 private:
  std::shared_ptr<const NeighborhoodTable> table_;
};

}  // namespace referee
