// Executable checks of Theorem 4 (Wright 1948): the system
//   i_1^p + … + i_k^p = j_1^p + … + j_k^p   for p = 1..k
// has only permutation solutions over the integers; i.e. the power-sum map
// on k-subsets of {1..n} is injective. The protocol's soundness rests on
// this, so the test suite verifies it exhaustively for small (n, k).
#pragma once

#include <cstdint>

#include "support/thread_pool.hpp"

namespace referee {

/// Exhaustively verifies injectivity of the power-sum map on size-`k`
/// subsets of {1..n}. Returns true iff no two distinct subsets share a
/// power-sum vector.
bool verify_wright_injectivity(std::uint32_t n, unsigned k,
                               ThreadPool* pool = nullptr);

/// Counter-example search for the *weakened* map that drops the highest
/// power (p = 1..k-1 only, still on k-subsets). Wright's bound is tight in
/// this sense — with one equation short, collisions exist; returns true iff
/// a collision was found (used by tests to show the k sums are all needed).
bool exists_collision_without_top_power(std::uint32_t n, unsigned k);

}  // namespace referee
