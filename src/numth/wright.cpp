#include "numth/wright.hpp"

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "numth/power_sums.hpp"
#include "support/check.hpp"

namespace referee {

namespace {

void all_subsets(std::uint32_t n, unsigned k, NodeId next,
                 std::vector<NodeId>& prefix,
                 const std::function<void(const std::vector<NodeId>&)>& emit) {
  if (prefix.size() == k) {
    emit(prefix);
    return;
  }
  const std::uint32_t needed = k - static_cast<std::uint32_t>(prefix.size());
  for (NodeId v = next; v + needed - 1 <= n; ++v) {
    prefix.push_back(v);
    all_subsets(n, k, v + 1, prefix, emit);
    prefix.pop_back();
  }
}

std::string sums_key(const std::vector<NodeId>& subset, unsigned powers) {
  const auto sums = power_sums(subset, powers);
  std::string key;
  for (const auto& s : sums) {
    key += s.to_decimal();
    key.push_back('|');
  }
  return key;
}

}  // namespace

bool verify_wright_injectivity(std::uint32_t n, unsigned k,
                               ThreadPool* pool) {
  std::unordered_set<std::string> seen;
  std::mutex mutex;
  std::atomic<bool> injective{true};
  maybe_parallel_for(
      pool, 1, static_cast<std::size_t>(n) + 1,
      [&](std::size_t f) {
        if (!injective.load(std::memory_order_relaxed)) return;
        std::vector<std::string> local;
        std::vector<NodeId> prefix{static_cast<NodeId>(f)};
        all_subsets(n, k, static_cast<NodeId>(f) + 1, prefix,
                    [&](const std::vector<NodeId>& subset) {
                      local.push_back(sums_key(subset, k));
                    });
        std::lock_guard<std::mutex> lock(mutex);
        for (auto& key : local) {
          if (!seen.insert(std::move(key)).second) {
            injective.store(false, std::memory_order_relaxed);
            return;
          }
        }
      },
      /*serial_cutoff=*/64);
  return injective.load();
}

bool exists_collision_without_top_power(std::uint32_t n, unsigned k) {
  REFEREE_CHECK_MSG(k >= 2, "needs k >= 2 to drop a power");
  std::unordered_set<std::string> seen;
  bool collision = false;
  std::vector<NodeId> prefix;
  all_subsets(n, k, 1, prefix, [&](const std::vector<NodeId>& subset) {
    if (collision) return;
    if (!seen.insert(sums_key(subset, k - 1)).second) collision = true;
  });
  return collision;
}

}  // namespace referee
