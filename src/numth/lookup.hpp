// The paper's Lemma 3 decoder: precompute b = A(k,n)·x for every subset of
// {1..n} of size <= k and store them in a table keyed by the value vector, so
// a neighbourhood look-up costs O(k log n) (hashing here instead of the
// paper's sorted array — same preprocessing size, simpler constant-time
// queries). The table has Σ_{d<=k} C(n,d) = O(n^k) entries; construction is
// sharded over a thread pool.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bigint/biguint.hpp"
#include "model/local_view.hpp"
#include "support/thread_pool.hpp"

namespace referee {

class NeighborhoodTable {
 public:
  /// Builds the table for ground set {1..n} and subset sizes 0..k.
  /// Throws CheckError if two subsets collide on their power-sum vector —
  /// which Wright's theorem (Theorem 4) proves cannot happen, so a collision
  /// would falsify the implementation, not the mathematics.
  NeighborhoodTable(std::uint32_t n, unsigned k, ThreadPool* pool = nullptr);

  std::uint32_t n() const { return n_; }
  unsigned k() const { return k_; }
  std::size_t entry_count() const;

  /// The unique subset of size `d` whose first d power sums equal
  /// `sums[0..d)`. Throws DecodeError when absent.
  const std::vector<NodeId>& find(unsigned d,
                                  std::span<const BigUInt> sums) const;

  /// Approximate memory footprint in bytes (for experiment E3's
  /// table-size-vs-query-time trade-off report).
  std::size_t memory_bytes() const;

 private:
  static std::string key_of(unsigned d, std::span<const BigUInt> sums);

  std::uint32_t n_;
  unsigned k_;
  /// One map per subset size; key is the serialised power-sum vector.
  std::vector<std::unordered_map<std::string, std::vector<NodeId>>> tables_;
};

}  // namespace referee
