#include "numth/roots.hpp"

#include <numeric>

#include "support/check.hpp"

namespace referee {

namespace {

/// Monic coefficient vector c_0..c_d (c_0 = 1) with c_i = (−1)^i e_i.
std::vector<BigInt> monic_coefficients(std::span<const BigInt> elementary) {
  std::vector<BigInt> c;
  c.reserve(elementary.size() + 1);
  c.emplace_back(1);
  for (std::size_t i = 0; i < elementary.size(); ++i) {
    c.push_back(i % 2 == 0 ? -elementary[i] : elementary[i]);
  }
  return c;
}

/// Synthetic division of the monic polynomial `c` by (X − r).
/// Returns the remainder; on exact division, `c` is replaced by the quotient.
BigInt try_deflate(std::vector<BigInt>& c, NodeId r) {
  std::vector<BigInt> b(c.size() - 1);
  BigInt carry = c[0];
  for (std::size_t i = 1; i < c.size(); ++i) {
    b[i - 1] = carry;
    carry = c[i] + carry * BigInt(static_cast<std::int64_t>(r));
  }
  if (carry.is_zero()) c = std::move(b);
  return carry;
}

}  // namespace

std::vector<NodeId> roots_among(std::span<const BigInt> elementary,
                                std::span<const NodeId> candidates) {
  std::vector<BigInt> c = monic_coefficients(elementary);
  const std::size_t degree = elementary.size();
  std::vector<NodeId> roots;
  roots.reserve(degree);
  for (const NodeId r : candidates) {
    if (roots.size() == degree) break;
    // Neighbour IDs are distinct, so each candidate divides at most once.
    if (try_deflate(c, r).is_zero()) roots.push_back(r);
  }
  if (roots.size() != degree) {
    throw DecodeError(DecodeFault::kInconsistent,
                      "root extraction found " + std::to_string(roots.size()) +
                      " of " + std::to_string(degree) + " neighbour ids");
  }
  return roots;
}

void roots_among_into(std::span<const BigInt> elementary,
                      std::span<const NodeId> candidates, DecodeArena& arena,
                      std::vector<NodeId>& out) {
  const std::size_t degree = elementary.size();
  out.clear();
  // Monic coefficients c_0..c_d in scratch; `live` tracks the deflated
  // length instead of pop_back so no BigInt is ever destroyed (its limb
  // capacity stays warm for the next decode).
  auto c_s = arena.scratch<BigInt>();
  auto b_s = arena.scratch<BigInt>();
  auto carry_s = arena.scratch<BigInt>();
  std::vector<BigInt>& c = *c_s;
  std::vector<BigInt>& b = *b_s;
  grow_to(c, degree + 1);
  grow_to(b, degree + 1);
  grow_to(*carry_s, 1);
  BigInt& carry = (*carry_s)[0];
  c[0].assign_i64(1);
  for (std::size_t i = 0; i < degree; ++i) {
    c[i + 1] = elementary[i];
    if (i % 2 == 0) c[i + 1].negate();
  }
  std::size_t live = degree + 1;
  for (const NodeId r : candidates) {
    if (out.size() == degree) break;
    // Synthetic division of c[0..live) by (X − r); neighbour ids are
    // distinct, so each candidate divides at most once.
    carry = c[0];
    for (std::size_t i = 1; i < live; ++i) {
      b[i - 1] = carry;
      carry.mul_u64(r);
      carry += c[i];
    }
    if (carry.is_zero()) {
      out.push_back(r);
      --live;
      for (std::size_t i = 0; i < live; ++i) c[i] = b[i];
    }
  }
  if (out.size() != degree) {
    throw DecodeError(DecodeFault::kInconsistent,
                      "root extraction found " + std::to_string(out.size()) +
                      " of " + std::to_string(degree) + " neighbour ids");
  }
}

std::vector<NodeId> roots_in_range(std::span<const BigInt> elementary,
                                   std::uint32_t n) {
  std::vector<NodeId> candidates(n);
  std::iota(candidates.begin(), candidates.end(), 1u);
  return roots_among(elementary, candidates);
}

}  // namespace referee
