#include "numth/decoder.hpp"

#include "numth/newton.hpp"
#include "numth/roots.hpp"
#include "support/check.hpp"

namespace referee {

std::vector<NodeId> NewtonDecoder::decode(
    unsigned degree, std::span<const BigUInt> sums,
    std::span<const NodeId> candidates) const {
  std::vector<NodeId> out;
  decode_into(degree, sums, candidates, DecodeArena::for_current_thread(),
              out);
  return out;
}

void NewtonDecoder::decode_into(unsigned degree,
                                std::span<const BigUInt> sums,
                                std::span<const NodeId> candidates,
                                DecodeArena& arena,
                                std::vector<NodeId>& out) const {
  out.clear();
  if (degree == 0) return;
  if (sums.size() < degree) {
    throw DecodeError(DecodeFault::kInconsistent,
                      "newton decode: fewer sums than degree");
  }
  auto elementary_s = arena.scratch<BigInt>();
  elementary_from_power_sums_into(sums.subspan(0, degree), arena,
                                  *elementary_s);
  roots_among_into(std::span<const BigInt>(elementary_s->data(), degree),
                   candidates, arena, out);
}

namespace {
__extension__ typedef __int128 i128;
}  // namespace

SmallNewtonDecoder::SmallNewtonDecoder(std::uint32_t n, unsigned k)
    : n_(n), k_(k) {
  // Need every power sum (<= k values of size n^k each... conservatively
  // n * n^k) below 2^62 so i64 holds them and i128 holds all intermediates.
  long double bound = static_cast<long double>(n);
  for (unsigned p = 0; p < k; ++p) bound *= static_cast<long double>(n);
  REFEREE_CHECK_MSG(bound < 4.6e18L,
                    "SmallNewtonDecoder: n^k out of 64-bit range");
}

std::vector<NodeId> SmallNewtonDecoder::decode(
    unsigned degree, std::span<const BigUInt> sums,
    std::span<const NodeId> candidates) const {
  std::vector<NodeId> out;
  decode_into(degree, sums, candidates, DecodeArena::for_current_thread(),
              out);
  return out;
}

void SmallNewtonDecoder::decode_into(unsigned degree,
                                     std::span<const BigUInt> sums,
                                     std::span<const NodeId> candidates,
                                     DecodeArena& arena,
                                     std::vector<NodeId>& out) const {
  out.clear();
  if (degree == 0) return;
  if (sums.size() < degree) {
    throw DecodeError(DecodeFault::kInconsistent,
                      "newton-u64 decode: fewer sums than degree");
  }
  // One i128 scratch block holds p | e | c | b back to back — the bump-
  // allocator layout for the whole native decode.
  auto block_s = arena.scratch<i128>();
  std::vector<i128>& block = *block_s;
  grow_to(block, 4 * (static_cast<std::size_t>(degree) + 1));
  i128* const p = block.data();
  i128* const e = p + degree + 1;
  i128* const c = e + degree + 1;
  i128* const b = c + degree + 1;
  // Power sums as native integers (they fit by the constructor guard; a
  // corrupt message that does not fit is just as corrupt either way).
  for (unsigned i = 0; i < degree; ++i) {
    if (!sums[i].fits_u64()) {
      throw DecodeError(DecodeFault::kInconsistent,
                      "newton-u64 decode: power sum exceeds 64 bits");
    }
    p[i] = static_cast<i128>(sums[i].to_u64());
  }
  // Newton's identities in i128: i*e_i = Σ (−1)^{j−1} e_{i−j} p_j.
  e[0] = 1;
  for (unsigned i = 1; i <= degree; ++i) {
    i128 acc = 0;
    for (unsigned j = 1; j <= i; ++j) {
      const i128 term = e[i - j] * p[j - 1];
      acc += (j % 2 == 0) ? -term : term;
    }
    if (acc % static_cast<i128>(i) != 0) {
      throw DecodeError(DecodeFault::kInconsistent,
                      "newton-u64 decode: inexact division");
    }
    e[i] = acc / static_cast<i128>(i);
  }
  // Monic coefficients c_j = (−1)^j e_j; root scan with synthetic division.
  for (unsigned j = 0; j <= degree; ++j) {
    c[j] = (j % 2 == 0) ? e[j] : -e[j];
  }
  std::size_t live = static_cast<std::size_t>(degree) + 1;
  for (const NodeId r : candidates) {
    if (out.size() == degree) break;
    i128 carry = c[0];
    for (std::size_t j = 1; j < live; ++j) {
      b[j - 1] = carry;
      carry = c[j] + carry * static_cast<i128>(r);
    }
    if (carry == 0) {
      out.push_back(r);
      --live;
      for (std::size_t j = 0; j < live; ++j) c[j] = b[j];
    }
  }
  if (out.size() != degree) {
    throw DecodeError(DecodeFault::kInconsistent,
                      "newton-u64 decode: missing roots");
  }
}

std::vector<NodeId> TableDecoder::decode(
    unsigned degree, std::span<const BigUInt> sums,
    std::span<const NodeId> /*candidates*/) const {
  return table_->find(degree, sums);
}

}  // namespace referee
