#include "numth/power_sums.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/simd.hpp"

namespace referee {

std::vector<BigUInt> power_sums(std::span<const NodeId> ids, unsigned k) {
  std::vector<BigUInt> sums(k);
  for (const NodeId id : ids) {
    BigUInt power(1);
    for (unsigned p = 0; p < k; ++p) {
      power *= BigUInt(id);
      sums[p] += power;
    }
  }
  return sums;
}

void power_sums_into(std::span<const NodeId> ids, unsigned k,
                     DecodeArena& arena, std::vector<BigUInt>& out) {
  grow_to(out, k);
  // Fast path: when every sum provably fits 64 bits, run the SIMD-dispatched
  // flat kernel and lift the results into the BigUInt slots. Identical
  // values to the BigUInt route, just computed in machine words.
  NodeId max_id = 0;
  for (const NodeId id : ids) max_id = std::max(max_id, id);
  if (power_sums_fit_u64(max_id, k, ids.size())) {
    auto sums_s = arena.scratch<std::uint64_t>();
    grow_to(*sums_s, k);
    simd::active_kernels().power_sums_u64(ids.data(), ids.size(), k,
                                          sums_s->data());
    for (unsigned p = 0; p < k; ++p) out[p].assign_u64((*sums_s)[p]);
    return;
  }
  for (unsigned p = 0; p < k; ++p) out[p].assign_u64(0);
  auto power_s = arena.scratch<BigUInt>();
  grow_to(*power_s, 1);
  BigUInt& power = (*power_s)[0];
  for (const NodeId id : ids) {
    power.assign_u64(1);
    for (unsigned p = 0; p < k; ++p) {
      power.mul_u64(id);
      out[p] += power;
    }
  }
}

void subtract_contribution(std::vector<BigUInt>& sums, NodeId id) {
  BigUInt power(1);
  for (auto& s : sums) {
    power *= BigUInt(id);
    if (s < power) {
      throw DecodeError(DecodeFault::kInconsistent,
                      "power-sum underflow: transcript inconsistent");
    }
    s -= power;
  }
}

void subtract_contribution(std::span<BigUInt> sums, NodeId id,
                           DecodeArena& arena) {
  auto power_s = arena.scratch<BigUInt>();
  grow_to(*power_s, 1);
  BigUInt& power = (*power_s)[0];
  power.assign_u64(1);
  for (auto& s : sums) {
    power.mul_u64(id);
    if (s < power) {
      throw DecodeError(DecodeFault::kInconsistent,
                      "power-sum underflow: transcript inconsistent");
    }
    s -= power;
  }
}

void add_contribution(std::vector<BigUInt>& sums, NodeId id) {
  BigUInt power(1);
  for (auto& s : sums) {
    power *= BigUInt(id);
    s += power;
  }
}

bool power_sums_fit_u64(std::uint32_t n, unsigned k, std::size_t max_degree) {
  // d * n^k < 2^64, computed without overflow.
  long double bound = static_cast<long double>(max_degree);
  for (unsigned p = 0; p < k; ++p) bound *= static_cast<long double>(n);
  return bound < 18446744073709551615.0L;
}

std::vector<std::uint64_t> power_sums_u64(std::span<const NodeId> ids,
                                          unsigned k) {
  std::vector<std::uint64_t> sums(k, 0);
  simd::active_kernels().power_sums_u64(ids.data(), ids.size(), k,
                                        sums.data());
  return sums;
}

bool matches_power_sums(std::span<const BigUInt> sums,
                        std::span<const NodeId> ids) {
  const auto expect = power_sums(ids, static_cast<unsigned>(sums.size()));
  for (std::size_t i = 0; i < sums.size(); ++i) {
    if (!(sums[i] == expect[i])) return false;
  }
  return true;
}

bool matches_power_sums(std::span<const BigUInt> sums,
                        std::span<const NodeId> ids, DecodeArena& arena) {
  auto expect_s = arena.scratch<BigUInt>();
  power_sums_into(ids, static_cast<unsigned>(sums.size()), arena, *expect_s);
  for (std::size_t i = 0; i < sums.size(); ++i) {
    if (!(sums[i] == (*expect_s)[i])) return false;
  }
  return true;
}

}  // namespace referee
