#include "numth/power_sums.hpp"

#include "support/check.hpp"

namespace referee {

std::vector<BigUInt> power_sums(std::span<const NodeId> ids, unsigned k) {
  std::vector<BigUInt> sums(k);
  for (const NodeId id : ids) {
    BigUInt power(1);
    for (unsigned p = 0; p < k; ++p) {
      power *= BigUInt(id);
      sums[p] += power;
    }
  }
  return sums;
}

void subtract_contribution(std::vector<BigUInt>& sums, NodeId id) {
  BigUInt power(1);
  for (auto& s : sums) {
    power *= BigUInt(id);
    if (s < power) {
      throw DecodeError(DecodeFault::kInconsistent,
                      "power-sum underflow: transcript inconsistent");
    }
    s -= power;
  }
}

void add_contribution(std::vector<BigUInt>& sums, NodeId id) {
  BigUInt power(1);
  for (auto& s : sums) {
    power *= BigUInt(id);
    s += power;
  }
}

bool power_sums_fit_u64(std::uint32_t n, unsigned k, std::size_t max_degree) {
  // d * n^k < 2^64, computed without overflow.
  long double bound = static_cast<long double>(max_degree);
  for (unsigned p = 0; p < k; ++p) bound *= static_cast<long double>(n);
  return bound < 18446744073709551615.0L;
}

std::vector<std::uint64_t> power_sums_u64(std::span<const NodeId> ids,
                                          unsigned k) {
  std::vector<std::uint64_t> sums(k, 0);
  for (const NodeId id : ids) {
    std::uint64_t power = 1;
    for (unsigned p = 0; p < k; ++p) {
      power *= id;
      sums[p] += power;
    }
  }
  return sums;
}

bool matches_power_sums(std::span<const BigUInt> sums,
                        std::span<const NodeId> ids) {
  const auto expect = power_sums(ids, static_cast<unsigned>(sums.size()));
  for (std::size_t i = 0; i < sums.size(); ++i) {
    if (!(sums[i] == expect[i])) return false;
  }
  return true;
}

}  // namespace referee
