#include "numth/lookup.hpp"

#include <mutex>

#include "numth/power_sums.hpp"
#include "support/check.hpp"

namespace referee {

namespace {

struct PendingEntry {
  std::string key;
  std::vector<NodeId> subset;
};

/// Enumerates all size-`target` subsets of {first.., n} extending `prefix`,
/// maintaining power sums incrementally.
void enumerate_subsets(std::uint32_t n, unsigned target, NodeId next,
                       std::vector<NodeId>& prefix,
                       std::vector<BigUInt>& sums,
                       const std::function<void(const std::vector<NodeId>&,
                                                const std::vector<BigUInt>&)>&
                           emit) {
  if (prefix.size() == target) {
    emit(prefix, sums);
    return;
  }
  const auto needed = static_cast<std::uint32_t>(target - prefix.size());
  for (NodeId v = next; v + needed - 1 <= n; ++v) {
    prefix.push_back(v);
    add_contribution(sums, v);
    enumerate_subsets(n, target, v + 1, prefix, sums, emit);
    subtract_contribution(sums, v);
    prefix.pop_back();
  }
}

}  // namespace

std::string NeighborhoodTable::key_of(unsigned d,
                                      std::span<const BigUInt> sums) {
  REFEREE_CHECK_MSG(sums.size() >= d, "not enough power sums for degree");
  std::string key;
  for (unsigned p = 0; p < d; ++p) {
    key += sums[p].to_decimal();
    key.push_back('|');
  }
  return key;
}

NeighborhoodTable::NeighborhoodTable(std::uint32_t n, unsigned k,
                                     ThreadPool* pool)
    : n_(n), k_(k), tables_(k + 1) {
  REFEREE_CHECK_MSG(k >= 1, "table needs k >= 1");
  tables_[0].emplace(std::string{}, std::vector<NodeId>{});
  for (unsigned d = 1; d <= k; ++d) {
    auto& table = tables_[d];
    // C(n, d) entries are coming; one up-front rehash beats ~20 growth
    // rehashes of a million-entry map.
    double expected = 1;
    for (unsigned i = 0; i < d; ++i) {
      expected *= static_cast<double>(n - i) / static_cast<double>(i + 1);
    }
    table.reserve(static_cast<std::size_t>(expected) + 1);
    std::mutex merge_mutex;
    // Shard by smallest element: subsets beginning with f are independent.
    maybe_parallel_for(
        pool, 1, static_cast<std::size_t>(n) + 1,
        [&](std::size_t f) {
          std::vector<PendingEntry> local;
          std::vector<NodeId> prefix{static_cast<NodeId>(f)};
          std::vector<BigUInt> sums(d);
          add_contribution(sums, static_cast<NodeId>(f));
          enumerate_subsets(
              n, d, static_cast<NodeId>(f) + 1, prefix, sums,
              [&](const std::vector<NodeId>& subset,
                  const std::vector<BigUInt>& s) {
                local.push_back({key_of(d, s), subset});
              });
          std::lock_guard<std::mutex> lock(merge_mutex);
          for (auto& entry : local) {
            const auto [it, inserted] =
                table.try_emplace(std::move(entry.key), std::move(entry.subset));
            REFEREE_CHECK_MSG(inserted,
                              "power-sum collision contradicts Wright's theorem");
          }
        },
        /*serial_cutoff=*/64);
  }
}

std::size_t NeighborhoodTable::entry_count() const {
  std::size_t count = 0;
  for (const auto& t : tables_) count += t.size();
  return count;
}

const std::vector<NodeId>& NeighborhoodTable::find(
    unsigned d, std::span<const BigUInt> sums) const {
  if (d >= tables_.size()) {
    throw DecodeError(DecodeFault::kInconsistent,
                      "table lookup: degree exceeds k");
  }
  const auto it = tables_[d].find(key_of(d, sums));
  if (it == tables_[d].end()) {
    throw DecodeError(DecodeFault::kInconsistent,
                      "table lookup: no subset matches power sums");
  }
  return it->second;
}

std::size_t NeighborhoodTable::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& t : tables_) {
    for (const auto& [key, subset] : t) {
      bytes += sizeof(std::pair<std::string, std::vector<NodeId>>);
      bytes += key.capacity();
      bytes += subset.capacity() * sizeof(NodeId);
    }
    bytes += t.bucket_count() * sizeof(void*);
  }
  return bytes;
}

}  // namespace referee
