#include "graph/subgraphs.hpp"

#include <algorithm>
#include <unordered_map>

namespace referee {

std::optional<std::array<Vertex, 3>> find_triangle(const Graph& g) {
  // For each edge (u, v) with u < v, intersect the sorted neighbour lists.
  const std::size_t n = g.vertex_count();
  for (Vertex u = 0; u < n; ++u) {
    const auto nu = g.neighbors(u);
    for (const Vertex v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      auto it1 = nu.begin();
      auto it2 = nv.begin();
      while (it1 != nu.end() && it2 != nv.end()) {
        if (*it1 == *it2) return std::array<Vertex, 3>{u, v, *it1};
        if (*it1 < *it2) {
          ++it1;
        } else {
          ++it2;
        }
      }
    }
  }
  return std::nullopt;
}

bool has_triangle(const Graph& g) { return find_triangle(g).has_value(); }

std::uint64_t count_triangles(const Graph& g) {
  // Orient edges low->high degree (ties by id) and count wedges; each
  // triangle is counted exactly once.
  const std::size_t n = g.vertex_count();
  const auto rank_less = [&g](Vertex a, Vertex b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) < g.degree(b) : a < b;
  };
  std::vector<std::vector<Vertex>> fwd(n);
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : g.neighbors(u)) {
      if (rank_less(u, v)) fwd[u].push_back(v);
    }
  }
  std::uint64_t count = 0;
  std::vector<bool> mark(n, false);
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : fwd[u]) mark[v] = true;
    for (const Vertex v : fwd[u]) {
      for (const Vertex w : fwd[v]) {
        if (mark[w]) ++count;
      }
    }
    for (const Vertex v : fwd[u]) mark[v] = false;
  }
  return count;
}

namespace {
/// Packs an unordered vertex pair into a 64-bit key.
std::uint64_t pair_key(Vertex a, Vertex b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
}  // namespace

std::optional<std::array<Vertex, 4>> find_square(const Graph& g) {
  // A C4 (a, x, b, y) exists iff some pair {a, b} has two common neighbours
  // x, y. Enumerate 2-paths x—a? no: centre u with neighbour pair (a, b);
  // if pair {a,b} was reached from a different centre w, the cycle is
  // a—u—b—w—a.
  std::unordered_map<std::uint64_t, Vertex> first_centre;
  const std::size_t n = g.vertex_count();
  first_centre.reserve(g.edge_count() * 2);
  for (Vertex u = 0; u < n; ++u) {
    const auto nb = g.neighbors(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        const auto key = pair_key(nb[i], nb[j]);
        const auto [it, inserted] = first_centre.try_emplace(key, u);
        if (!inserted) {
          return std::array<Vertex, 4>{nb[i], it->second, nb[j], u};
        }
      }
    }
  }
  return std::nullopt;
}

bool has_square(const Graph& g) { return find_square(g).has_value(); }

std::optional<std::array<Vertex, 4>> find_induced_square(const Graph& g) {
  // Enumerate diagonal pairs via common neighbourhoods (as find_square),
  // but demand both chords absent: a-b and x-y must be non-edges in the
  // cycle a-x-b-y.
  const std::size_t n = g.vertex_count();
  std::unordered_map<std::uint64_t, std::vector<Vertex>> centres;
  for (Vertex u = 0; u < n; ++u) {
    const auto nb = g.neighbors(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        if (g.has_edge(nb[i], nb[j])) continue;  // chord a-b present
        auto& list = centres[pair_key(nb[i], nb[j])];
        for (const Vertex w : list) {
          if (!g.has_edge(w, u)) {
            return std::array<Vertex, 4>{nb[i], w, nb[j], u};
          }
        }
        list.push_back(u);
      }
    }
  }
  return std::nullopt;
}

bool has_induced_square(const Graph& g) {
  return find_induced_square(g).has_value();
}

std::uint64_t count_squares(const Graph& g) {
  // Common-neighbour counts per unordered pair; each C4 has two diagonals,
  // so sum C(cn, 2) counts each square twice.
  std::unordered_map<std::uint64_t, std::uint32_t> common;
  const std::size_t n = g.vertex_count();
  for (Vertex u = 0; u < n; ++u) {
    const auto nb = g.neighbors(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        ++common[pair_key(nb[i], nb[j])];
      }
    }
  }
  std::uint64_t twice = 0;
  for (const auto& [key, c] : common) {
    twice += static_cast<std::uint64_t>(c) * (c - 1) / 2;
  }
  REFEREE_DCHECK(twice % 2 == 0);
  return twice / 2;
}

}  // namespace referee
