#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace referee {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  REFEREE_CHECK_MSG(source < g.vertex_count(), "source out of range");
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::deque<Vertex> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (const Vertex v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::uint32_t> comp(n, kUnreachable);
  std::uint32_t next_id = 0;
  std::deque<Vertex> queue;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[s] != kUnreachable) continue;
    comp[s] = next_id;
    queue.push_back(s);
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (const Vertex v : g.neighbors(u)) {
        if (comp[v] == kUnreachable) {
          comp[v] = next_id;
          queue.push_back(v);
        }
      }
    }
    ++next_id;
  }
  return comp;
}

std::size_t component_count(GraphView g, DecodeArena& arena) {
  const std::size_t n = g.vertex_count();
  auto comp_s = arena.scratch<std::uint32_t>();
  auto queue_s = arena.scratch<Vertex>();
  std::vector<std::uint32_t>& comp = *comp_s;
  std::vector<Vertex>& queue = *queue_s;
  comp.assign(n, kUnreachable);
  std::size_t count = 0;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[s] != kUnreachable) continue;
    comp[s] = static_cast<std::uint32_t>(count);
    // Flat FIFO: head index instead of deque pops, same visit order.
    queue.clear();
    queue.push_back(s);
    std::size_t head = 0;
    while (head < queue.size()) {
      const Vertex u = queue[head++];
      for (const Vertex v : g.neighbors(u)) {
        if (comp[v] == kUnreachable) {
          comp[v] = comp[u];
          queue.push_back(v);
        }
      }
    }
    ++count;
  }
  return count;
}

std::size_t component_count(const Graph& g) {
  return component_count(GraphView(g), DecodeArena::for_current_thread());
}

std::size_t component_count(const CsrGraph& g) {
  return component_count(GraphView(g), DecodeArena::for_current_thread());
}

bool is_connected(const Graph& g) {
  return g.vertex_count() <= 1 || component_count(g) == 1;
}

bool is_bipartite(GraphView g, DecodeArena& arena) {
  const std::size_t n = g.vertex_count();
  auto side_s = arena.scratch<std::uint8_t>();
  auto queue_s = arena.scratch<Vertex>();
  std::vector<std::uint8_t>& side = *side_s;
  std::vector<Vertex>& queue = *queue_s;
  side.assign(n, 2);  // 2 = uncoloured
  for (Vertex s = 0; s < n; ++s) {
    if (side[s] != 2) continue;
    side[s] = 0;
    queue.clear();
    queue.push_back(s);
    std::size_t head = 0;
    while (head < queue.size()) {
      const Vertex u = queue[head++];
      for (const Vertex v : g.neighbors(u)) {
        if (side[v] == 2) {
          side[v] = static_cast<std::uint8_t>(1 - side[u]);
          queue.push_back(v);
        } else if (side[v] == side[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

bool is_bipartite(const Graph& g) {
  return is_bipartite(GraphView(g), DecodeArena::for_current_thread());
}

bool is_bipartite(const CsrGraph& g) {
  return is_bipartite(GraphView(g), DecodeArena::for_current_thread());
}

std::optional<std::uint32_t> eccentricity(const Graph& g, Vertex v) {
  const auto dist = bfs_distances(g, v);
  std::uint32_t ecc = 0;
  for (const auto d : dist) {
    if (d == kUnreachable) return std::nullopt;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::optional<std::uint32_t> diameter(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return std::nullopt;
  std::uint32_t best = 0;
  for (Vertex v = 0; v < n; ++v) {
    const auto ecc = eccentricity(g, v);
    if (!ecc) return std::nullopt;
    best = std::max(best, *ecc);
  }
  return best;
}

std::optional<std::uint32_t> girth(const Graph& g) {
  // BFS from every vertex; a non-tree edge at depth d closes a cycle of
  // length <= 2d + 1. Standard O(n * m) exact girth for simple graphs.
  const std::size_t n = g.vertex_count();
  std::uint32_t best = kUnreachable;
  std::vector<std::uint32_t> dist(n);
  std::vector<Vertex> parent(n);
  for (Vertex s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), kUnreachable);
    std::deque<Vertex> queue{s};
    dist[s] = 0;
    parent[s] = s;
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      if (2 * dist[u] >= best) break;  // cannot improve from here
      for (const Vertex v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = dist[u] + 1;
          parent[v] = u;
          queue.push_back(v);
        } else if (parent[u] != v && dist[v] >= dist[u]) {
          best = std::min(best, dist[u] + dist[v] + 1);
        }
      }
    }
  }
  if (best == kUnreachable) return std::nullopt;
  return best;
}

std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::uint8_t> side(n, 2);  // 2 = unvisited
  std::deque<Vertex> queue;
  for (Vertex s = 0; s < n; ++s) {
    if (side[s] != 2) continue;
    side[s] = 0;
    queue.push_back(s);
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (const Vertex v : g.neighbors(u)) {
        if (side[v] == 2) {
          side[v] = static_cast<std::uint8_t>(1 - side[u]);
          queue.push_back(v);
        } else if (side[v] == side[u]) {
          return std::nullopt;
        }
      }
    }
  }
  return side;
}

std::vector<Edge> spanning_forest(GraphView g) {
  const std::size_t n = g.vertex_count();
  std::vector<Edge> out;
  std::vector<bool> seen(n, false);
  std::deque<Vertex> queue;
  for (Vertex s = 0; s < n; ++s) {
    if (seen[s]) continue;
    seen[s] = true;
    queue.push_back(s);
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (const Vertex v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          out.emplace_back(u, v);
          queue.push_back(v);
        }
      }
    }
  }
  return out;
}

std::vector<Edge> spanning_forest(const Graph& g) {
  return spanning_forest(GraphView(g));
}

std::vector<Edge> spanning_forest(const CsrGraph& g) {
  return spanning_forest(GraphView(g));
}

bool is_forest(GraphView g, DecodeArena& arena) {
  // A simple graph is acyclic iff m = n - c.
  return g.edge_count() + component_count(g, arena) == g.vertex_count();
}

bool is_forest(const Graph& g) {
  return is_forest(GraphView(g), DecodeArena::for_current_thread());
}

bool is_forest(const CsrGraph& g) {
  return is_forest(GraphView(g), DecodeArena::for_current_thread());
}

bool satisfies_euler_planar_bound(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n < 3) return true;
  return g.edge_count() <= 3 * n - 6;
}

std::size_t treewidth_upper_bound_min_degree(const Graph& g) {
  // Eliminate a minimum-degree vertex, turn its neighbourhood into a clique,
  // repeat; the largest eliminated degree upper-bounds treewidth.
  const std::size_t n = g.vertex_count();
  std::vector<std::set<Vertex>> adj(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    adj[v].insert(nb.begin(), nb.end());
  }
  std::vector<bool> gone(n, false);
  std::size_t width = 0;
  for (std::size_t step = 0; step < n; ++step) {
    Vertex best = 0;
    std::size_t best_deg = SIZE_MAX;
    for (Vertex v = 0; v < n; ++v) {
      if (!gone[v] && adj[v].size() < best_deg) {
        best = v;
        best_deg = adj[v].size();
      }
    }
    width = std::max(width, best_deg);
    const std::vector<Vertex> nb(adj[best].begin(), adj[best].end());
    for (const Vertex u : nb) {
      adj[u].erase(best);
      for (const Vertex w : nb) {
        if (u < w) {
          adj[u].insert(w);
          adj[w].insert(u);
        }
      }
    }
    adj[best].clear();
    gone[best] = true;
  }
  return width;
}

}  // namespace referee
