// Classical graph algorithms used as ground truth by the protocol layer:
// what a protocol claims about G is always checked against these.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace referee {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source);

/// Component id per vertex (ids are 0-based, in order of discovery).
std::vector<std::uint32_t> connected_components(const Graph& g);
std::size_t component_count(const Graph& g);
bool is_connected(const Graph& g);

/// CSR overloads for the flat-array pipeline (mmap'd campaign cells):
/// same answers as the Graph versions, no adjacency-list materialization.
std::size_t component_count(const CsrGraph& g);
bool is_bipartite(const CsrGraph& g);

/// Largest eccentricity, or nullopt when g is disconnected/empty.
std::optional<std::uint32_t> diameter(const Graph& g);

/// Eccentricity of one vertex (nullopt if it cannot reach everyone).
std::optional<std::uint32_t> eccentricity(const Graph& g, Vertex v);

/// Length of the shortest cycle; nullopt for forests.
std::optional<std::uint32_t> girth(const Graph& g);

/// Two-colourability; returns the side of each vertex or nullopt.
std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g);
bool is_bipartite(const Graph& g);

/// Spanning forest as an edge list (one tree per component).
std::vector<Edge> spanning_forest(const Graph& g);

/// m <= 3n - 6 Euler bound — a cheap *necessary* planarity condition used to
/// sanity-check the planar generators (not a full planarity test).
bool satisfies_euler_planar_bound(const Graph& g);

/// Greedy treewidth upper bound via the min-degree elimination heuristic.
std::size_t treewidth_upper_bound_min_degree(const Graph& g);

}  // namespace referee
