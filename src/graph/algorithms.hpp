// Classical graph algorithms used as ground truth by the protocol layer:
// what a protocol claims about G is always checked against these.
//
// Representation-independent truths (components, bipartiteness, spanning
// forest, forest recognition) take a GraphView and therefore run identically
// on Graph and CsrGraph inputs — the Graph/CsrGraph overloads are one-line
// delegations, so the adjacency-list and flat-array answers cannot drift.
// The arena-backed variants are the campaign classifier's path: all BFS
// state comes out of DecodeArena scratch, so a warm sweep over mmap'd
// million-node cells computes ground truth with zero steady-state
// allocation.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "support/arena.hpp"

namespace referee {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source);

/// Component id per vertex (ids are 0-based, in order of discovery).
std::vector<std::uint32_t> connected_components(const Graph& g);

/// Number of connected components; the arena overload is allocation-free
/// once warm (BFS colouring + queue from scratch vectors).
std::size_t component_count(GraphView g, DecodeArena& arena);
std::size_t component_count(const Graph& g);
std::size_t component_count(const CsrGraph& g);
bool is_connected(const Graph& g);

/// Largest eccentricity, or nullopt when g is disconnected/empty.
std::optional<std::uint32_t> diameter(const Graph& g);

/// Eccentricity of one vertex (nullopt if it cannot reach everyone).
std::optional<std::uint32_t> eccentricity(const Graph& g, Vertex v);

/// Length of the shortest cycle; nullopt for forests.
std::optional<std::uint32_t> girth(const Graph& g);

/// Two-colourability; returns the side of each vertex or nullopt.
std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g);
bool is_bipartite(GraphView g, DecodeArena& arena);
bool is_bipartite(const Graph& g);
bool is_bipartite(const CsrGraph& g);

/// Spanning forest as an edge list (one tree per component, BFS
/// discovery order — identical across representations).
std::vector<Edge> spanning_forest(GraphView g);
std::vector<Edge> spanning_forest(const Graph& g);
std::vector<Edge> spanning_forest(const CsrGraph& g);

/// Acyclicity: m == n - (number of components).
bool is_forest(GraphView g, DecodeArena& arena);
bool is_forest(const Graph& g);
bool is_forest(const CsrGraph& g);

/// m <= 3n - 6 Euler bound — a cheap *necessary* planarity condition used to
/// sanity-check the planar generators (not a full planarity test).
bool satisfies_euler_planar_bound(const Graph& g);

/// Greedy treewidth upper bound via the min-degree elimination heuristic.
std::size_t treewidth_upper_bound_min_degree(const Graph& g);

}  // namespace referee
