// Graph serialisation: a plain edge-list text format, the compact
// graph6-style binary-in-ASCII encoding (compatible with nauty's graph6 for
// n < 2^18), and a versioned binary edge-list file format whose edge
// section can be mmap'd straight into the CsrGraph bulk constructor — the
// input path for million-node campaign cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace referee {

/// "n m\n" header then one "u v" line per edge (0-based vertices).
std::string to_edge_list(const Graph& g);
Graph from_edge_list(std::string_view text);

/// graph6 encoding (upper-triangle bitmap, 6 bits per printable char).
std::string to_graph6(const Graph& g);
Graph from_graph6(std::string_view text);

/// Human-readable adjacency matrix (rows of 0/1), for debugging and docs.
std::string to_ascii_matrix(const Graph& g);

// ---------------------------------------------------------------------------
// Binary edge-list file format ("refgraph", little-endian):
//
//   offset  size  field
//   0       8     magic "refgrph1"
//   8       4     version (currently 1)
//   12      4     reserved (0)
//   16      8     n — vertex count
//   24      8     m — edge record count
//   32      8*m   edge records: {u32 u, u32 v} pairs, 0-based
//
// The edge section is laid out exactly like Edge[], so MmapEdgeSource can
// hand the mapped bytes to CsrGraph(n, edges) without copying — the CSR
// bulk constructor canonicalizes (sorts, dedupes) and validates (vertex
// range, self-loop rejection), giving the binary path the same adjacency
// contract as the text loader. Duplicate records and either endpoint order
// are permitted in the file; self-loops and out-of-range endpoints are
// rejected at graph-construction time, matching from_edge_list.
// ---------------------------------------------------------------------------

inline constexpr char kEdgeFileMagic[8] = {'r', 'e', 'f', 'g',
                                           'r', 'p', 'h', '1'};
inline constexpr std::uint32_t kEdgeFileVersion = 1;
inline constexpr std::size_t kEdgeFileHeaderBytes = 32;

/// Write `edges` over `n` vertices as a binary edge-list file. Edges are
/// written verbatim (already u <= v normalized by construction); vertex
/// range and self-loops are CHECKed so a packed file never round-trips
/// differently from its text form.
void write_edge_file(const std::string& path, std::size_t n,
                     std::span<const Edge> edges);

/// Read-only mmap view of a binary edge-list file. The edge span aliases
/// the mapping — zero copies, zero per-edge allocations — and stays valid
/// for the lifetime of the source. Feed it to CsrGraph(n, edges) or
/// Graph(n, edges).
class MmapEdgeSource {
 public:
  explicit MmapEdgeSource(const std::string& path);
  ~MmapEdgeSource();

  MmapEdgeSource(MmapEdgeSource&& other) noexcept;
  MmapEdgeSource& operator=(MmapEdgeSource&& other) noexcept;
  MmapEdgeSource(const MmapEdgeSource&) = delete;
  MmapEdgeSource& operator=(const MmapEdgeSource&) = delete;

  std::size_t vertex_count() const { return n_; }
  std::size_t edge_count() const { return m_; }
  std::span<const Edge> edges() const;

 private:
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
};

}  // namespace referee
