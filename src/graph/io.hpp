// Graph serialisation: a plain edge-list text format, the compact
// graph6-style binary-in-ASCII encoding (compatible with nauty's graph6 for
// n < 2^18), and a versioned binary edge-list file format whose edge
// section can be mmap'd straight into the CsrGraph bulk constructor — the
// input path for million-node campaign cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace referee {

/// "n m\n" header then one "u v" line per edge (0-based vertices).
std::string to_edge_list(const Graph& g);
Graph from_edge_list(std::string_view text);

/// graph6 encoding (upper-triangle bitmap, 6 bits per printable char).
std::string to_graph6(const Graph& g);
Graph from_graph6(std::string_view text);

/// Human-readable adjacency matrix (rows of 0/1), for debugging and docs.
std::string to_ascii_matrix(const Graph& g);

// ---------------------------------------------------------------------------
// Binary edge-list file format ("refgraph", little-endian):
//
//   offset  size  field
//   0       8     magic "refgrph1"
//   8       4     version (currently 1)
//   12      4     reserved (0)
//   16      8     n — vertex count
//   24      8     m — edge record count
//   32      8*m   edge records: {u32 u, u32 v} pairs, 0-based
//
// The edge section is laid out exactly like Edge[], so MmapEdgeSource can
// hand the mapped bytes to CsrGraph(n, edges) without copying — the CSR
// bulk constructor canonicalizes (sorts, dedupes) and validates (vertex
// range, self-loop rejection), giving the binary path the same adjacency
// contract as the text loader. Duplicate records and either endpoint order
// are permitted in the file; self-loops and out-of-range endpoints are
// rejected at graph-construction time, matching from_edge_list.
// ---------------------------------------------------------------------------

inline constexpr char kEdgeFileMagic[8] = {'r', 'e', 'f', 'g',
                                           'r', 'p', 'h', '1'};
inline constexpr std::uint32_t kEdgeFileVersion = 1;
inline constexpr std::size_t kEdgeFileHeaderBytes = 32;

/// Write `edges` over `n` vertices as a binary edge-list file. Edges are
/// written verbatim (already u <= v normalized by construction); vertex
/// range and self-loops are CHECKed so a packed file never round-trips
/// differently from its text form. Publication is crash-safe: bytes land
/// in a temp file that is fsync'd and atomically renamed over `path`, so
/// a reader never observes a truncated edge file and a crash mid-write
/// never clobbers an existing one.
void write_edge_file(const std::string& path, std::size_t n,
                     std::span<const Edge> edges);

/// Sequential access to a refgrph1 edge section, chunk by chunk. Sources
/// are resettable — the CsrGraph bulk constructor makes two passes (count,
/// then fill) — and a chunk's span is valid only until the next
/// next_chunk() / rewind() call or destruction.
class EdgeSource {
 public:
  virtual ~EdgeSource() = default;

  virtual std::size_t vertex_count() const = 0;
  virtual std::size_t edge_count() const = 0;

  /// Restart iteration at the first edge record.
  virtual void rewind() = 0;

  /// The next run of edge records, or an empty span once exhausted.
  virtual std::span<const Edge> next_chunk() = 0;
};

/// Read-only mmap view of a binary edge-list file. The edge span aliases
/// the mapping — zero copies, zero per-edge allocations — and stays valid
/// for the lifetime of the source. Feed it to CsrGraph(n, edges) or
/// Graph(n, edges); as an EdgeSource it yields the whole section as one
/// chunk.
class MmapEdgeSource final : public EdgeSource {
 public:
  explicit MmapEdgeSource(const std::string& path);
  ~MmapEdgeSource() override;

  MmapEdgeSource(MmapEdgeSource&& other) noexcept;
  MmapEdgeSource& operator=(MmapEdgeSource&& other) noexcept;
  MmapEdgeSource(const MmapEdgeSource&) = delete;
  MmapEdgeSource& operator=(const MmapEdgeSource&) = delete;

  std::size_t vertex_count() const override { return n_; }
  std::size_t edge_count() const override { return m_; }
  std::span<const Edge> edges() const;

  void rewind() override { drained_ = false; }
  std::span<const Edge> next_chunk() override;

 private:
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  bool drained_ = false;
};

/// Streams a refgrph1 edge section through a bounded buffer — the input
/// path for edge files larger than the address-space budget mmap is
/// allowed (or able) to claim. Peak memory is `chunk_edges * sizeof(Edge)`
/// regardless of file size.
class ChunkedEdgeSource final : public EdgeSource {
 public:
  static constexpr std::size_t kDefaultChunkEdges = std::size_t{1} << 16;

  explicit ChunkedEdgeSource(const std::string& path,
                             std::size_t chunk_edges = kDefaultChunkEdges);
  ~ChunkedEdgeSource() override;

  ChunkedEdgeSource(const ChunkedEdgeSource&) = delete;
  ChunkedEdgeSource& operator=(const ChunkedEdgeSource&) = delete;

  std::size_t vertex_count() const override { return n_; }
  std::size_t edge_count() const override { return m_; }

  void rewind() override;
  std::span<const Edge> next_chunk() override;

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<Edge> buffer_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t read_ = 0;  // records consumed since the last rewind
};

/// The mmap budget open_edge_source() compares file sizes against: the
/// REFEREE_EDGE_MMAP_BUDGET environment variable (bytes) when set, else a
/// generous default sized to the platform's address space.
std::size_t edge_mmap_budget();

/// Open a refgrph1 file with the right source for its size: mmap when the
/// edge section fits the address-space budget (zero-copy, demand-paged),
/// the bounded-buffer chunked reader when it does not.
std::unique_ptr<EdgeSource> open_edge_source(const std::string& path);
std::unique_ptr<EdgeSource> open_edge_source(const std::string& path,
                                             std::size_t mmap_budget);

}  // namespace referee
