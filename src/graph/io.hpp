// Graph serialisation: a plain edge-list text format and the compact
// graph6-style binary-in-ASCII encoding (compatible with nauty's graph6 for
// n < 2^18).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace referee {

/// "n m\n" header then one "u v" line per edge (0-based vertices).
std::string to_edge_list(const Graph& g);
Graph from_edge_list(std::string_view text);

/// graph6 encoding (upper-triangle bitmap, 6 bits per printable char).
std::string to_graph6(const Graph& g);
Graph from_graph6(std::string_view text);

/// Human-readable adjacency matrix (rows of 0/1), for debugging and docs.
std::string to_ascii_matrix(const Graph& g);

}  // namespace referee
