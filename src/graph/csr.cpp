#include "graph/csr.hpp"

#include <algorithm>

#include "graph/io.hpp"
#include "support/simd.hpp"

namespace referee {

CsrGraph::CsrGraph(const Graph& g) {
  const std::size_t n = g.vertex_count();
  offsets_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + g.degree(v);
  targets_.reserve(offsets_[n]);
  for (Vertex v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    targets_.insert(targets_.end(), nb.begin(), nb.end());
    // Graph's add_edge keeps rows sorted and deduped; the CSR inherits the
    // canonical form rather than re-establishing it.
    REFEREE_DCHECK(std::is_sorted(targets_.end() - nb.size(), targets_.end()));
  }
}

void CsrGraph::count_edges(std::size_t n, std::span<const Edge> edges) {
  for (const Edge& e : edges) {
    REFEREE_CHECK_MSG(e.u < n && e.v < n, "vertex out of range");
    REFEREE_CHECK_MSG(e.u != e.v, "self-loop");
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
}

std::vector<std::size_t> CsrGraph::seal_counts(std::size_t n) {
  simd::prefix_sum_sizes(offsets_.data(), n + 1);
  targets_.resize(offsets_[n]);
  return {offsets_.begin(), offsets_.end() - 1};
}

void CsrGraph::fill_edges(std::span<const Edge> edges,
                          std::vector<std::size_t>& cursor) {
  for (const Edge& e : edges) {
    targets_[cursor[e.u]++] = e.v;
    targets_[cursor[e.v]++] = e.u;
  }
}

void CsrGraph::canonicalize_rows(std::size_t n) {
  // Canonicalize: sort each row, drop duplicate edges, compact in place.
  std::size_t write = 0;
  std::size_t row_start = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t row_end = offsets_[v + 1];
    std::sort(targets_.begin() + row_start, targets_.begin() + row_end);
    const auto unique_end = std::unique(targets_.begin() + row_start,
                                        targets_.begin() + row_end);
    const auto row_len =
        static_cast<std::size_t>(unique_end - (targets_.begin() + row_start));
    std::move(targets_.begin() + row_start, unique_end,
              targets_.begin() + write);
    write += row_len;
    row_start = row_end;
    offsets_[v + 1] = write;
  }
  targets_.resize(write);
}

CsrGraph::CsrGraph(std::size_t n, std::span<const Edge> edges) {
  offsets_.assign(n + 1, 0);
  count_edges(n, edges);
  std::vector<std::size_t> cursor = seal_counts(n);
  fill_edges(edges, cursor);
  canonicalize_rows(n);
}

CsrGraph::CsrGraph(EdgeSource& source) {
  const std::size_t n = source.vertex_count();
  offsets_.assign(n + 1, 0);
  std::size_t records = 0;
  source.rewind();
  for (auto chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    count_edges(n, chunk);
    records += chunk.size();
  }
  REFEREE_CHECK_MSG(records == source.edge_count(),
                    "edge source chunk sizes disagree with its edge count");
  std::vector<std::size_t> cursor = seal_counts(n);
  source.rewind();
  for (auto chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    fill_edges(chunk, cursor);
  }
  canonicalize_rows(n);
}

}  // namespace referee
