#include "graph/csr.hpp"

namespace referee {

CsrGraph::CsrGraph(const Graph& g) {
  const std::size_t n = g.vertex_count();
  offsets_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + g.degree(v);
  targets_.reserve(offsets_[n]);
  for (Vertex v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    targets_.insert(targets_.end(), nb.begin(), nb.end());
  }
}

}  // namespace referee
