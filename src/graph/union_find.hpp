// Disjoint-set union with path halving and union by size.
//
// Used by the sketch referee (Borůvka over merged sketches), the k-edge-
// connectivity peeler, and available to users as a plain utility.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace referee {

class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(std::size_t n) { reset(n); }

  /// Re-initialise to n singleton sets, reusing the backing vectors — the
  /// arena idiom for referees that run one union-find per decode.
  void reset(std::size_t n) {
    parent_.resize(n);
    size_.assign(n, 1);
    sets_ = n;
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns false if already together.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --sets_;
    return true;
  }

  bool connected(std::size_t a, std::size_t b) {
    return find(a) == find(b);
  }

  std::size_t set_count() const { return sets_; }
  std::size_t set_size(std::size_t x) { return size_[find(x)]; }
  std::size_t element_count() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_ = 0;
};

}  // namespace referee
