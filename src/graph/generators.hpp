// Graph families used by the tests, examples and benchmarks.
//
// Deterministic topologies (paths, grids, hypercubes, fat-trees…) model the
// interconnection networks the paper's title refers to; the random families
// (G(n,p), random k-degenerate, k-trees, Apollonian networks, square-free…)
// provide the graph classes §III's reconstruction protocol is about and the
// hard instances behind §II's impossibility arguments.
//
// All random generators take an explicit Rng so every experiment is
// reproducible from its seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "support/random.hpp"

namespace referee::gen {

// ---- deterministic families ------------------------------------------------

Graph empty(std::size_t n);
Graph path(std::size_t n);
Graph cycle(std::size_t n);
Graph complete(std::size_t n);
Graph complete_bipartite(std::size_t a, std::size_t b);
Graph star(std::size_t leaves);  // n = leaves + 1, centre is vertex 0

/// r-by-c grid; vertex (i,j) is i*c + j.
Graph grid(std::size_t rows, std::size_t cols);
/// r-by-c torus (grid with wraparound rows/cols, needs dim >= 3 to stay simple).
Graph torus(std::size_t rows, std::size_t cols);
/// d-dimensional hypercube, n = 2^d.
Graph hypercube(unsigned dims);
/// Complete binary tree with `n` vertices (heap indexing).
Graph binary_tree(std::size_t n);
/// Caterpillar: a spine path, each spine vertex with `legs` pendant leaves.
Graph caterpillar(std::size_t spine, std::size_t legs);
/// k-ary fat-tree (k even): the classic 3-tier datacenter switch fabric,
/// optionally with k^3/4 hosts attached to the edge tier.
Graph fat_tree(unsigned k, bool with_hosts = false);

// ---- random families -------------------------------------------------------

/// Erdős–Rényi G(n, p).
Graph gnp(std::size_t n, double p, Rng& rng);
/// Uniform G(n, m): exactly m distinct edges.
Graph gnm(std::size_t n, std::size_t m, Rng& rng);
/// G(n, p) conditioned on connectivity by adding a random spanning tree.
Graph connected_gnp(std::size_t n, double p, Rng& rng);

/// Uniform random labelled tree (Prüfer decoding).
Graph random_tree(std::size_t n, Rng& rng);
/// Random forest: random tree with each edge independently deleted w.p. drop.
Graph random_forest(std::size_t n, double drop, Rng& rng);

/// Random bipartite graph with parts {0..a-1} and {a..a+b-1}, edge prob p.
Graph random_bipartite(std::size_t a, std::size_t b, double p, Rng& rng);

/// Random graph of degeneracy <= k: vertices arrive in random order, each
/// linking to at most k uniformly chosen predecessors; labels are then
/// shuffled so the elimination order is hidden from protocols.
/// If `exactly_k`, every vertex after the k-th links to exactly k
/// predecessors, forcing degeneracy == k.
Graph random_k_degenerate(std::size_t n, unsigned k, Rng& rng,
                          bool exactly_k = false);

/// Random k-tree (treewidth exactly k for n > k): start from a (k+1)-clique,
/// each new vertex joins a uniformly random existing k-clique.
Graph random_k_tree(std::size_t n, unsigned k, Rng& rng);
/// Partial k-tree: random k-tree with each edge kept with probability keep.
Graph random_partial_k_tree(std::size_t n, unsigned k, double keep, Rng& rng);

/// Random Apollonian network (planar 3-tree): repeatedly subdivide a random
/// triangular face. Maximal planar, degeneracy 3.
Graph random_apollonian(std::size_t n, Rng& rng);

/// Random d-regular graph via the configuration model with restarts
/// (requires n*d even, d < n). Throws CheckError if it fails to converge.
Graph random_regular(std::size_t n, unsigned d, Rng& rng);

/// Greedy C4-free graph: scan `attempts` random vertex pairs, adding each
/// edge unless it would close a 4-cycle. Produces Θ(n^{3/2})-edge square-free
/// graphs — the dense family behind Theorem 1's counting argument.
Graph random_square_free(std::size_t n, std::size_t attempts, Rng& rng);

/// Random permutation of vertex labels of g (uniform).
Graph shuffle_labels(const Graph& g, Rng& rng);

}  // namespace referee::gen
