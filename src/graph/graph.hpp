// Simple undirected labelled graphs.
//
// Vertices are 0-based `Vertex` values 0..n-1 internally; the referee-model
// layer converts to the paper's 1-based IDs at the protocol boundary.
// Adjacency lists are kept sorted, so neighbour queries are O(log deg) and
// iteration is ordered (which keeps every downstream computation
// deterministic).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace referee {

using Vertex = std::uint32_t;

/// An undirected edge with endpoints normalised so u <= v.
struct Edge {
  Vertex u;
  Vertex v;

  Edge() : u(0), v(0) {}
  Edge(Vertex a, Vertex b) : u(a < b ? a : b), v(a < b ? b : a) {}

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : adj_(n) {}

  /// Build from an edge list; duplicate edges are collapsed.
  Graph(std::size_t n, std::span<const Edge> edges);

  std::size_t vertex_count() const { return adj_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds the edge {u, v}. Self-loops are rejected. Returns false if the
  /// edge was already present.
  bool add_edge(Vertex u, Vertex v);

  /// Removes the edge {u, v}; returns false if it was absent.
  bool remove_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const;

  std::size_t degree(Vertex v) const {
    REFEREE_DCHECK(v < adj_.size());
    return adj_[v].size();
  }

  /// Sorted neighbour list of v.
  std::span<const Vertex> neighbors(Vertex v) const {
    REFEREE_DCHECK(v < adj_.size());
    return adj_[v];
  }

  /// Appends `count` isolated vertices; returns the index of the first one.
  Vertex add_vertices(std::size_t count);

  /// Reset to n isolated vertices, keeping each adjacency row's capacity.
  /// The reuse hook for referees that decode a fresh graph per query from
  /// pooled storage (e.g. the reduction oracles' per-pair decide calls).
  void reset(std::size_t n) {
    if (adj_.size() > n) adj_.resize(n);
    for (auto& row : adj_) row.clear();
    adj_.resize(n);
    edge_count_ = 0;
  }

  /// All edges, sorted lexicographically.
  std::vector<Edge> edges() const;

  std::size_t max_degree() const;
  std::size_t min_degree() const;

  /// Structural equality (same vertex count and edge set) — the correctness
  /// criterion for reconstruction protocols on labelled graphs.
  friend bool operator==(const Graph& a, const Graph& b);

 private:
  std::vector<std::vector<Vertex>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace referee
