#include "graph/enumerate.hpp"

#include <atomic>

#include "graph/subgraphs.hpp"

namespace referee {

namespace {
std::size_t pair_count(std::size_t n) { return n * (n - 1) / 2; }
}  // namespace

Graph graph_from_mask(std::size_t n, std::uint64_t mask) {
  REFEREE_CHECK_MSG(pair_count(n) <= 63, "mask enumeration limited to n <= 11");
  Graph g(n);
  std::size_t bit = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v, ++bit) {
      if ((mask >> bit) & 1u) g.add_edge(u, v);
    }
  }
  return g;
}

std::uint64_t mask_from_graph(const Graph& g) {
  const std::size_t n = g.vertex_count();
  REFEREE_CHECK_MSG(pair_count(n) <= 63, "mask enumeration limited to n <= 11");
  std::uint64_t mask = 0;
  std::size_t bit = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v, ++bit) {
      if (g.has_edge(u, v)) mask |= (std::uint64_t{1} << bit);
    }
  }
  return mask;
}

void for_each_labelled_graph(std::size_t n,
                             const std::function<void(const Graph&)>& visit) {
  REFEREE_CHECK_MSG(n <= 8, "exhaustive enumeration limited to n <= 8");
  const std::uint64_t total = std::uint64_t{1} << pair_count(n);
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    visit(graph_from_mask(n, mask));
  }
}

std::uint64_t count_labelled_graphs(
    std::size_t n, const std::function<bool(const Graph&)>& pred,
    ThreadPool* pool) {
  REFEREE_CHECK_MSG(n <= 8, "exhaustive enumeration limited to n <= 8");
  const std::uint64_t total = std::uint64_t{1} << pair_count(n);
  std::atomic<std::uint64_t> count{0};
  maybe_parallel_for(
      pool, 0, static_cast<std::size_t>(total),
      [&](std::size_t mask) {
        if (pred(graph_from_mask(n, static_cast<std::uint64_t>(mask)))) {
          count.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*serial_cutoff=*/1 << 12);
  return count.load();
}

std::uint64_t count_square_free_graphs(std::size_t n, ThreadPool* pool) {
  return count_labelled_graphs(
      n, [](const Graph& g) { return !has_square(g); }, pool);
}

}  // namespace referee
