#include "graph/mincut.hpp"

#include <algorithm>
#include <vector>

#include "graph/algorithms.hpp"

namespace referee {

std::optional<std::uint64_t> global_min_cut(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n < 2) return std::nullopt;
  if (!is_connected(g)) return 0;

  // Stoer–Wagner with an adjacency-matrix of contracted weights. O(n³),
  // fine for certificate graphs (<= k·n edges, n in the hundreds).
  std::vector<std::vector<std::uint64_t>> w(n,
                                            std::vector<std::uint64_t>(n, 0));
  for (const Edge& e : g.edges()) {
    w[e.u][e.v] = 1;
    w[e.v][e.u] = 1;
  }
  std::vector<bool> merged(n, false);
  std::uint64_t best = UINT64_MAX;
  for (std::size_t phase = 0; phase + 1 < n; ++phase) {
    // Maximum-adjacency search over the still-active supervertices.
    std::vector<std::uint64_t> conn(n, 0);
    std::vector<bool> in_a(n, false);
    std::size_t prev = SIZE_MAX;
    std::size_t last = SIZE_MAX;
    for (std::size_t step = 0; step + phase < n; ++step) {
      std::size_t pick = SIZE_MAX;
      for (std::size_t v = 0; v < n; ++v) {
        if (merged[v] || in_a[v]) continue;
        if (pick == SIZE_MAX || conn[v] > conn[pick]) pick = v;
      }
      in_a[pick] = true;
      prev = last;
      last = pick;
      for (std::size_t v = 0; v < n; ++v) {
        if (!merged[v] && !in_a[v]) conn[v] += w[pick][v];
      }
    }
    best = std::min(best, conn[last]);
    // Contract `last` into `prev`.
    merged[last] = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (merged[v] || v == prev) continue;
      w[prev][v] += w[last][v];
      w[v][prev] = w[prev][v];
    }
  }
  return best;
}

std::uint64_t edge_connectivity(const Graph& g) {
  const auto cut = global_min_cut(g);
  return cut.value_or(0);
}

bool is_k_edge_connected(const Graph& g, std::uint64_t k) {
  if (k == 0) return true;
  if (g.vertex_count() < 2) return false;
  return edge_connectivity(g) >= k;
}

}  // namespace referee
