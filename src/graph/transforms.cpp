#include "graph/transforms.hpp"

#include <algorithm>

namespace referee {

Graph permute(const Graph& g, std::span<const Vertex> perm) {
  const std::size_t n = g.vertex_count();
  REFEREE_CHECK_MSG(perm.size() == n, "permutation size mismatch");
  Graph out(n);
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : g.neighbors(u)) {
      if (v > u) out.add_edge(perm[u], perm[v]);
    }
  }
  return out;
}

Graph complement(const Graph& g) {
  const std::size_t n = g.vertex_count();
  Graph out(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v)) out.add_edge(u, v);
    }
  }
  return out;
}

Graph induced_subgraph(const Graph& g, std::span<const Vertex> keep) {
  std::vector<Vertex> sorted(keep.begin(), keep.end());
  std::sort(sorted.begin(), sorted.end());
  REFEREE_CHECK_MSG(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "duplicate vertex in induced_subgraph");
  std::vector<Vertex> index(g.vertex_count(), ~Vertex{0});
  for (std::size_t i = 0; i < keep.size(); ++i) index[keep[i]] = static_cast<Vertex>(i);
  Graph out(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (const Vertex w : g.neighbors(keep[i])) {
      const Vertex j = index[w];
      if (j != ~Vertex{0} && j > i) out.add_edge(static_cast<Vertex>(i), j);
    }
  }
  return out;
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  const std::size_t na = a.vertex_count();
  Graph out(na + b.vertex_count());
  for (const Edge& e : a.edges()) out.add_edge(e.u, e.v);
  for (const Edge& e : b.edges()) {
    out.add_edge(static_cast<Vertex>(e.u + na), static_cast<Vertex>(e.v + na));
  }
  return out;
}

Graph double_cover(const Graph& g) {
  const std::size_t n = g.vertex_count();
  Graph out(2 * n);
  for (const Edge& e : g.edges()) {
    out.add_edge(e.u, static_cast<Vertex>(e.v + n));
    out.add_edge(e.v, static_cast<Vertex>(e.u + n));
  }
  return out;
}

Graph with_universal_vertex(const Graph& g) {
  const std::size_t n = g.vertex_count();
  Graph out(n + 1);
  for (const Edge& e : g.edges()) out.add_edge(e.u, e.v);
  for (Vertex v = 0; v < n; ++v) out.add_edge(v, static_cast<Vertex>(n));
  return out;
}

}  // namespace referee
