// Detection and counting of the small subgraphs the paper's impossibility
// results are about: triangles (C3) and squares (C4), as *not necessarily
// induced* subgraphs, matching §II.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "graph/graph.hpp"

namespace referee {

/// Some triangle {a, b, c}, or nullopt. O(m * min-deg) via edge iteration.
std::optional<std::array<Vertex, 3>> find_triangle(const Graph& g);
bool has_triangle(const Graph& g);
/// Exact triangle count. O(sum deg^2) worst case.
std::uint64_t count_triangles(const Graph& g);

/// Some 4-cycle (a, b, c, d) with edges ab, bc, cd, da, or nullopt.
/// O(sum deg^2) via the two-common-neighbours criterion.
std::optional<std::array<Vertex, 4>> find_square(const Graph& g);
bool has_square(const Graph& g);
/// Exact C4 count: sum over vertex pairs of C(common_neighbours, 2) / 2... —
/// computed as sum C(cn,2) over unordered pairs, divided by 2 (each C4 is
/// counted once per diagonal).
std::uint64_t count_squares(const Graph& g);

/// C4 as an *induced* subgraph (4-cycle with neither chord). The paper's
/// §II-A closing remark extends Theorem 1 to this variant; the gadget's
/// created square is chordless, so the same reduction applies.
std::optional<std::array<Vertex, 4>> find_induced_square(const Graph& g);
bool has_induced_square(const Graph& g);

}  // namespace referee
