#include "graph/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "graph/transforms.hpp"

namespace referee::gen {

Graph empty(std::size_t n) { return Graph(n); }

Graph path(std::size_t n) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle(std::size_t n) {
  REFEREE_CHECK_MSG(n == 0 || n >= 3, "cycle needs >= 3 vertices");
  Graph g = path(n);
  if (n >= 3) g.add_edge(static_cast<Vertex>(n - 1), 0);
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  Graph g(a + b);
  for (Vertex u = 0; u < a; ++u)
    for (Vertex v = 0; v < b; ++v)
      g.add_edge(u, static_cast<Vertex>(a + v));
  return g;
}

Graph star(std::size_t leaves) {
  Graph g(leaves + 1);
  for (Vertex v = 1; v <= leaves; ++v) g.add_edge(0, v);
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  const auto at = [cols](std::size_t i, std::size_t j) {
    return static_cast<Vertex>(i * cols + j);
  };
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (j + 1 < cols) g.add_edge(at(i, j), at(i, j + 1));
      if (i + 1 < rows) g.add_edge(at(i, j), at(i + 1, j));
    }
  }
  return g;
}

Graph torus(std::size_t rows, std::size_t cols) {
  REFEREE_CHECK_MSG(rows >= 3 && cols >= 3, "torus needs dims >= 3");
  Graph g = grid(rows, cols);
  const auto at = [cols](std::size_t i, std::size_t j) {
    return static_cast<Vertex>(i * cols + j);
  };
  for (std::size_t i = 0; i < rows; ++i) g.add_edge(at(i, 0), at(i, cols - 1));
  for (std::size_t j = 0; j < cols; ++j) g.add_edge(at(0, j), at(rows - 1, j));
  return g;
}

Graph hypercube(unsigned dims) {
  REFEREE_CHECK_MSG(dims < 26, "hypercube too large");
  const std::size_t n = std::size_t{1} << dims;
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (unsigned b = 0; b < dims; ++b) {
      const std::size_t w = v ^ (std::size_t{1} << b);
      if (w > v) g.add_edge(static_cast<Vertex>(v), static_cast<Vertex>(w));
    }
  }
  return g;
}

Graph binary_tree(std::size_t n) {
  Graph g(n);
  for (std::size_t v = 1; v < n; ++v) {
    g.add_edge(static_cast<Vertex>(v), static_cast<Vertex>((v - 1) / 2));
  }
  return g;
}

Graph caterpillar(std::size_t spine, std::size_t legs) {
  Graph g(spine + spine * legs);
  for (Vertex v = 0; v + 1 < spine; ++v) g.add_edge(v, v + 1);
  Vertex next = static_cast<Vertex>(spine);
  for (Vertex s = 0; s < spine; ++s) {
    for (std::size_t l = 0; l < legs; ++l) g.add_edge(s, next++);
  }
  return g;
}

Graph fat_tree(unsigned k, bool with_hosts) {
  REFEREE_CHECK_MSG(k >= 2 && k % 2 == 0, "fat-tree arity must be even");
  const std::size_t half = k / 2;
  const std::size_t cores = half * half;
  const std::size_t aggs = static_cast<std::size_t>(k) * half;
  const std::size_t edges_sw = aggs;
  const std::size_t hosts = with_hosts ? edges_sw * half : 0;
  Graph g(cores + aggs + edges_sw + hosts);
  const auto core_at = [&](std::size_t i) { return static_cast<Vertex>(i); };
  const auto agg_at = [&](std::size_t pod, std::size_t i) {
    return static_cast<Vertex>(cores + pod * half + i);
  };
  const auto edge_at = [&](std::size_t pod, std::size_t i) {
    return static_cast<Vertex>(cores + aggs + pod * half + i);
  };
  for (std::size_t pod = 0; pod < k; ++pod) {
    for (std::size_t a = 0; a < half; ++a) {
      // Aggregation switch a in this pod uplinks to core group a.
      for (std::size_t c = 0; c < half; ++c) {
        g.add_edge(agg_at(pod, a), core_at(a * half + c));
      }
      // Full bipartite agg <-> edge inside the pod.
      for (std::size_t e = 0; e < half; ++e) {
        g.add_edge(agg_at(pod, a), edge_at(pod, e));
      }
    }
  }
  if (with_hosts) {
    Vertex host = static_cast<Vertex>(cores + aggs + edges_sw);
    for (std::size_t pod = 0; pod < k; ++pod) {
      for (std::size_t e = 0; e < half; ++e) {
        for (std::size_t h = 0; h < half; ++h) {
          g.add_edge(edge_at(pod, e), host++);
        }
      }
    }
  }
  return g;
}

Graph gnp(std::size_t n, double p, Rng& rng) {
  Graph g(n);
  if (p <= 0.0) return g;
  if (p >= 1.0) return complete(n);
  // Geometric skipping over the C(n,2) pair sequence: O(m) expected time.
  const double log1mp = std::log(1.0 - p);
  std::size_t total = n * (n - 1) / 2;
  std::size_t idx = 0;
  const auto pair_of = [n](std::size_t t) {
    // Invert t = index of pair (u,v), u < v, in row-major order.
    std::size_t u = 0;
    std::size_t row = n - 1;
    while (t >= row) {
      t -= row;
      --row;
      ++u;
    }
    return std::pair<Vertex, Vertex>{static_cast<Vertex>(u),
                                     static_cast<Vertex>(u + 1 + t)};
  };
  while (idx < total) {
    const double r = std::max(rng.uniform01(), 1e-300);
    const auto skip = static_cast<std::size_t>(std::log(r) / log1mp);
    if (idx + skip >= total) break;
    idx += skip;
    const auto [u, v] = pair_of(idx);
    g.add_edge(u, v);
    ++idx;
  }
  return g;
}

Graph gnm(std::size_t n, std::size_t m, Rng& rng) {
  const std::size_t total = n * (n - 1) / 2;
  REFEREE_CHECK_MSG(m <= total, "too many edges requested");
  Graph g(n);
  std::size_t added = 0;
  while (added < m) {
    const auto u = static_cast<Vertex>(rng.below(n));
    const auto v = static_cast<Vertex>(rng.below(n));
    if (u != v && g.add_edge(u, v)) ++added;
  }
  return g;
}

Graph connected_gnp(std::size_t n, double p, Rng& rng) {
  Graph g = gnp(n, p, rng);
  if (n <= 1) return g;
  // Stitch a random spanning tree on top (random attachment order).
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    const Vertex parent = order[rng.below(i)];
    g.add_edge(order[i], parent);
  }
  return g;
}

Graph random_tree(std::size_t n, Rng& rng) {
  Graph g(n);
  if (n <= 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Prüfer decoding: uniform over the n^(n-2) labelled trees.
  std::vector<Vertex> pruefer(n - 2);
  for (auto& x : pruefer) x = static_cast<Vertex>(rng.below(n));
  std::vector<std::size_t> deg(n, 1);
  for (const Vertex x : pruefer) ++deg[x];
  // `ptr` scans for the smallest leaf; `leaf` tracks the current one.
  std::size_t ptr = 0;
  while (deg[ptr] != 1) ++ptr;
  std::size_t leaf = ptr;
  for (const Vertex x : pruefer) {
    g.add_edge(static_cast<Vertex>(leaf), x);
    if (--deg[x] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (deg[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  g.add_edge(static_cast<Vertex>(leaf), static_cast<Vertex>(n - 1));
  return g;
}

Graph random_forest(std::size_t n, double drop, Rng& rng) {
  Graph g = random_tree(n, rng);
  for (const Edge& e : g.edges()) {
    if (rng.chance(drop)) g.remove_edge(e.u, e.v);
  }
  return g;
}

Graph random_bipartite(std::size_t a, std::size_t b, double p, Rng& rng) {
  Graph g(a + b);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b; ++v) {
      if (rng.chance(p)) g.add_edge(u, static_cast<Vertex>(a + v));
    }
  }
  return g;
}

Graph random_k_degenerate(std::size_t n, unsigned k, Rng& rng,
                          bool exactly_k) {
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t cap = std::min<std::size_t>(i, k);
    std::size_t links = cap;
    if (!exactly_k && cap > 0) {
      links = 1 + rng.below(cap);  // at least one keeps it connected
    }
    const auto targets =
        rng.sample_subset(static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(links));
    for (const auto t : targets) g.add_edge(static_cast<Vertex>(i), t);
  }
  return shuffle_labels(g, rng);
}

Graph random_k_tree(std::size_t n, unsigned k, Rng& rng) {
  REFEREE_CHECK_MSG(n >= k + 1, "k-tree needs at least k+1 vertices");
  Graph g(n);
  std::vector<std::vector<Vertex>> cliques;  // all k-cliques usable as bases
  std::vector<Vertex> base(k + 1);
  std::iota(base.begin(), base.end(), 0u);
  for (unsigned i = 0; i <= k; ++i)
    for (unsigned j = i + 1; j <= k; ++j) g.add_edge(base[i], base[j]);
  // Seed the k-clique list with all k-subsets of the initial (k+1)-clique.
  for (unsigned skip = 0; skip <= k; ++skip) {
    std::vector<Vertex> c;
    for (unsigned i = 0; i <= k; ++i)
      if (i != skip) c.push_back(base[i]);
    cliques.push_back(std::move(c));
  }
  for (std::size_t v = k + 1; v < n; ++v) {
    const auto& c = cliques[rng.below(cliques.size())];
    const std::vector<Vertex> chosen = c;  // copy before cliques reallocates
    for (const Vertex u : chosen) g.add_edge(static_cast<Vertex>(v), u);
    for (unsigned skip = 0; skip < k; ++skip) {
      std::vector<Vertex> nc;
      nc.reserve(k);
      for (unsigned i = 0; i < k; ++i)
        if (i != skip) nc.push_back(chosen[i]);
      nc.push_back(static_cast<Vertex>(v));
      cliques.push_back(std::move(nc));
    }
  }
  return shuffle_labels(g, rng);
}

Graph random_partial_k_tree(std::size_t n, unsigned k, double keep,
                            Rng& rng) {
  Graph g = random_k_tree(n, k, rng);
  for (const Edge& e : g.edges()) {
    if (!rng.chance(keep)) g.remove_edge(e.u, e.v);
  }
  return g;
}

Graph random_apollonian(std::size_t n, Rng& rng) {
  REFEREE_CHECK_MSG(n >= 3, "apollonian network needs >= 3 vertices");
  Graph g(n);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  std::vector<std::array<Vertex, 3>> faces{{0, 1, 2}};
  for (std::size_t v = 3; v < n; ++v) {
    const std::size_t f = rng.below(faces.size());
    const auto face = faces[f];
    for (const Vertex u : face) g.add_edge(static_cast<Vertex>(v), u);
    faces[f] = {face[0], face[1], static_cast<Vertex>(v)};
    faces.push_back({face[0], face[2], static_cast<Vertex>(v)});
    faces.push_back({face[1], face[2], static_cast<Vertex>(v)});
  }
  return shuffle_labels(g, rng);
}

Graph random_regular(std::size_t n, unsigned d, Rng& rng) {
  REFEREE_CHECK_MSG(d < n && (n * d) % 2 == 0,
                    "need d < n and n*d even for a d-regular graph");
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<Vertex> stubs;
    stubs.reserve(n * d);
    for (Vertex v = 0; v < n; ++v)
      for (unsigned i = 0; i < d; ++i) stubs.push_back(v);
    rng.shuffle(stubs);
    Graph g(n);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const Vertex u = stubs[i];
      const Vertex v = stubs[i + 1];
      if (u == v || !g.add_edge(u, v)) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  throw CheckError("random_regular: configuration model failed to converge");
}

namespace {
/// True iff adding {u, v} to square-free `g` closes a 4-cycle, i.e. there is
/// a u–b–a–v path of length 3 (any C4 created by a new edge must contain it).
bool edge_closes_square(const Graph& g, Vertex u, Vertex v) {
  for (const Vertex b : g.neighbors(u)) {
    if (b == v) continue;
    for (const Vertex a : g.neighbors(b)) {
      if (a == u || a == v) continue;
      if (g.has_edge(a, v)) return true;
    }
  }
  return false;
}
}  // namespace

Graph random_square_free(std::size_t n, std::size_t attempts, Rng& rng) {
  Graph g(n);
  if (n < 2) return g;
  for (std::size_t t = 0; t < attempts; ++t) {
    const auto u = static_cast<Vertex>(rng.below(n));
    const auto v = static_cast<Vertex>(rng.below(n));
    if (u == v || g.has_edge(u, v)) continue;
    // Reject if u and v already share a neighbour (would make a C4 u-x-v plus
    // this edge? no — a shared neighbour makes a triangle; triangles are
    // fine) — only a length-3 path closes a square.
    if (!edge_closes_square(g, u, v)) g.add_edge(u, v);
  }
  return g;
}

Graph shuffle_labels(const Graph& g, Rng& rng) {
  std::vector<Vertex> perm(g.vertex_count());
  std::iota(perm.begin(), perm.end(), 0u);
  rng.shuffle(perm);
  return permute(g, perm);
}

}  // namespace referee::gen
