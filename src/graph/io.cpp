#include "graph/io.hpp"

#include <algorithm>
#include <charconv>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <type_traits>
#include <utility>

#include "support/atomic_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define REFEREE_HAVE_MMAP 1
#endif

namespace referee {

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << g.vertex_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
  return os.str();
}

Graph from_edge_list(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::size_t n = 0;
  std::size_t m = 0;
  REFEREE_CHECK_MSG(static_cast<bool>(is >> n >> m), "bad edge list header");
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    Vertex u = 0;
    Vertex v = 0;
    REFEREE_CHECK_MSG(static_cast<bool>(is >> u >> v), "truncated edge list");
    g.add_edge(u, v);
  }
  return g;
}

std::string to_graph6(const Graph& g) {
  const std::size_t n = g.vertex_count();
  REFEREE_CHECK_MSG(n < (1u << 18), "graph6: n too large for this encoder");
  std::string out;
  if (n <= 62) {
    out.push_back(static_cast<char>(n + 63));
  } else {
    out.push_back(126);
    out.push_back(static_cast<char>(((n >> 12) & 63) + 63));
    out.push_back(static_cast<char>(((n >> 6) & 63) + 63));
    out.push_back(static_cast<char>((n & 63) + 63));
  }
  // Upper triangle, column-major: bit for (u, v), u < v, ordered by (v, u).
  int bit_pos = 5;
  char current = 0;
  for (Vertex v = 1; v < n; ++v) {
    for (Vertex u = 0; u < v; ++u) {
      if (g.has_edge(u, v)) current |= static_cast<char>(1 << bit_pos);
      if (--bit_pos < 0) {
        out.push_back(static_cast<char>(current + 63));
        current = 0;
        bit_pos = 5;
      }
    }
  }
  if (bit_pos != 5) out.push_back(static_cast<char>(current + 63));
  return out;
}

Graph from_graph6(std::string_view text) {
  REFEREE_CHECK_MSG(!text.empty(), "graph6: empty input");
  std::size_t pos = 0;
  std::size_t n = 0;
  if (static_cast<unsigned char>(text[0]) == 126) {
    REFEREE_CHECK_MSG(text.size() >= 4, "graph6: truncated size");
    n = (static_cast<std::size_t>(text[1] - 63) << 12) |
        (static_cast<std::size_t>(text[2] - 63) << 6) |
        static_cast<std::size_t>(text[3] - 63);
    pos = 4;
  } else {
    n = static_cast<std::size_t>(text[0] - 63);
    pos = 1;
  }
  Graph g(n);
  int bit_pos = 5;
  for (Vertex v = 1; v < n; ++v) {
    for (Vertex u = 0; u < v; ++u) {
      REFEREE_CHECK_MSG(pos < text.size(), "graph6: truncated bitmap");
      const int bits = text[pos] - 63;
      REFEREE_CHECK_MSG(bits >= 0 && bits < 64, "graph6: bad character");
      if ((bits >> bit_pos) & 1) g.add_edge(u, v);
      if (--bit_pos < 0) {
        bit_pos = 5;
        ++pos;
      }
    }
  }
  return g;
}

namespace {

// The edge section is read back by aliasing the mapped bytes as Edge[];
// that only works while Edge stays a flat pair of 32-bit vertices.
static_assert(sizeof(Edge) == 2 * sizeof(Vertex) && sizeof(Vertex) == 4,
              "binary edge-list layout requires 8-byte {u32,u32} edges");
static_assert(std::is_trivially_copyable_v<Edge>);

struct EdgeFileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t n;
  std::uint64_t m;
};
static_assert(sizeof(EdgeFileHeader) == kEdgeFileHeaderBytes);

/// Validate a refgrph1 header against the file's actual size and return
/// it. Shared by every reader so the mmap and chunked paths cannot drift
/// in what they accept.
EdgeFileHeader check_edge_header(const void* header_bytes,
                                 std::size_t file_size,
                                 const std::string& path) {
  REFEREE_CHECK_MSG(file_size >= kEdgeFileHeaderBytes,
                    "edge file too short: " + path);
  EdgeFileHeader header{};
  std::memcpy(&header, header_bytes, sizeof(header));
  REFEREE_CHECK_MSG(
      std::memcmp(header.magic, kEdgeFileMagic, sizeof(header.magic)) == 0,
      "not a refgraph edge file: " + path);
  REFEREE_CHECK_MSG(header.version == kEdgeFileVersion,
                    "unsupported edge file version in " + path);
  // Divide rather than multiply: m * sizeof(Edge) could wrap for a
  // crafted header, making a tiny file claim 2^61 records.
  const std::size_t max_records =
      (file_size - kEdgeFileHeaderBytes) / sizeof(Edge);
  REFEREE_CHECK_MSG(
      header.m <= max_records &&
          file_size == kEdgeFileHeaderBytes + header.m * sizeof(Edge),
      "edge file size disagrees with its header: " + path);
  return header;
}

}  // namespace

void write_edge_file(const std::string& path, std::size_t n,
                     std::span<const Edge> edges) {
  // Validate before touching the filesystem so a rejected input never
  // leaves a stale partial file behind, and a packed file can never
  // disagree with what the text loader would have accepted: same range
  // checks, same self-loop rejection, duplicates left to the graph
  // constructors to collapse.
  for (const Edge& e : edges) {
    REFEREE_CHECK_MSG(e.u < n && e.v < n, "edge file: vertex out of range");
    REFEREE_CHECK_MSG(e.u != e.v, "edge file: self-loop");
  }
  EdgeFileHeader header{};
  std::memcpy(header.magic, kEdgeFileMagic, sizeof(header.magic));
  header.version = kEdgeFileVersion;
  header.n = n;
  header.m = edges.size();
  write_file_atomically(path, [&](std::FILE* file) {
    REFEREE_CHECK_MSG(std::fwrite(&header, sizeof(header), 1, file) == 1,
                      "short write on " + path);
    if (!edges.empty()) {
      REFEREE_CHECK_MSG(std::fwrite(edges.data(), sizeof(Edge), edges.size(),
                                    file) == edges.size(),
                        "short write on " + path);
    }
  });
}

#if REFEREE_HAVE_MMAP

MmapEdgeSource::MmapEdgeSource(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  REFEREE_CHECK_MSG(fd >= 0, "cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw CheckError("cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kEdgeFileHeaderBytes) {
    ::close(fd);
    throw CheckError("edge file too short: " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  REFEREE_CHECK_MSG(map != MAP_FAILED, "cannot mmap " + path);
  // Guard the mapping until the header checks pass: a throwing
  // constructor runs no destructor, so an unguarded early throw would
  // leak the mapping on every corrupt-file probe.
  struct MapGuard {
    void* map;
    std::size_t bytes;
    ~MapGuard() {
      if (map != nullptr) ::munmap(map, bytes);
    }
  } guard{map, size};

  const EdgeFileHeader header = check_edge_header(map, size, path);
  map_ = std::exchange(guard.map, nullptr);
  map_bytes_ = size;
  n_ = header.n;
  m_ = header.m;
}

MmapEdgeSource::~MmapEdgeSource() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

#else  // !REFEREE_HAVE_MMAP

MmapEdgeSource::MmapEdgeSource(const std::string& path) {
  throw CheckError("mmap edge sources require a POSIX host: " + path);
}

MmapEdgeSource::~MmapEdgeSource() = default;

#endif

MmapEdgeSource::MmapEdgeSource(MmapEdgeSource&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      n_(std::exchange(other.n_, 0)),
      m_(std::exchange(other.m_, 0)),
      drained_(std::exchange(other.drained_, false)) {}

MmapEdgeSource& MmapEdgeSource::operator=(MmapEdgeSource&& other) noexcept {
  if (this != &other) {
#if REFEREE_HAVE_MMAP
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
#endif
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    n_ = std::exchange(other.n_, 0);
    m_ = std::exchange(other.m_, 0);
    drained_ = std::exchange(other.drained_, false);
  }
  return *this;
}

std::span<const Edge> MmapEdgeSource::edges() const {
  if (m_ == 0) return {};
  const auto* base = static_cast<const std::byte*>(map_);
  return {reinterpret_cast<const Edge*>(base + kEdgeFileHeaderBytes), m_};
}

std::span<const Edge> MmapEdgeSource::next_chunk() {
  if (drained_) return {};
  drained_ = true;  // the mapping is one contiguous chunk
  return edges();
}

ChunkedEdgeSource::ChunkedEdgeSource(const std::string& path,
                                     std::size_t chunk_edges)
    : path_(path) {
  REFEREE_CHECK_MSG(chunk_edges > 0, "chunked edge source needs a buffer");
  file_ = std::fopen(path.c_str(), "rb");
  REFEREE_CHECK_MSG(file_ != nullptr, "cannot open " + path);
  try {
    REFEREE_CHECK_MSG(std::fseek(file_, 0, SEEK_END) == 0,
                      "cannot seek in " + path);
    const long end = std::ftell(file_);
    REFEREE_CHECK_MSG(end >= 0, "cannot size " + path);
    const auto file_size = static_cast<std::size_t>(end);
    char header_bytes[kEdgeFileHeaderBytes];
    REFEREE_CHECK_MSG(
        std::fseek(file_, 0, SEEK_SET) == 0 &&
            (file_size < kEdgeFileHeaderBytes ||
             std::fread(header_bytes, 1, sizeof(header_bytes), file_) ==
                 sizeof(header_bytes)),
        "edge file too short: " + path);
    const EdgeFileHeader header =
        check_edge_header(header_bytes, file_size, path);
    n_ = header.n;
    m_ = header.m;
    buffer_.resize(std::min(chunk_edges, std::max<std::size_t>(m_, 1)));
  } catch (...) {
    std::fclose(file_);
    throw;
  }
}

ChunkedEdgeSource::~ChunkedEdgeSource() {
  if (file_ != nullptr) std::fclose(file_);
}

void ChunkedEdgeSource::rewind() {
  REFEREE_CHECK_MSG(
      std::fseek(file_, static_cast<long>(kEdgeFileHeaderBytes), SEEK_SET) ==
          0,
      "cannot seek in " + path_);
  read_ = 0;
}

std::span<const Edge> ChunkedEdgeSource::next_chunk() {
  const std::size_t remaining = m_ - read_;
  if (remaining == 0) return {};
  const std::size_t take = std::min(remaining, buffer_.size());
  REFEREE_CHECK_MSG(
      std::fread(buffer_.data(), sizeof(Edge), take, file_) == take,
      "truncated edge section in " + path_);
  read_ += take;
  return {buffer_.data(), take};
}

std::size_t edge_mmap_budget() {
  if (const char* env = std::getenv("REFEREE_EDGE_MMAP_BUDGET");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') {
      return static_cast<std::size_t>(parsed);
    }
  }
  // A 64-bit address space can afford to map any realistic edge file; on
  // 32-bit hosts stay well under the 2-4 GiB ceiling so campaign cells
  // fall back to the bounded-buffer reader instead of failing mmap.
  return sizeof(void*) >= 8 ? (std::size_t{1} << 42)
                            : (std::size_t{1} << 28);
}

std::unique_ptr<EdgeSource> open_edge_source(const std::string& path) {
  return open_edge_source(path, edge_mmap_budget());
}

std::unique_ptr<EdgeSource> open_edge_source(const std::string& path,
                                             std::size_t mmap_budget) {
#if REFEREE_HAVE_MMAP
  struct stat st{};
  REFEREE_CHECK_MSG(::stat(path.c_str(), &st) == 0, "cannot stat " + path);
  if (static_cast<std::size_t>(st.st_size) <= mmap_budget) {
    return std::make_unique<MmapEdgeSource>(path);
  }
#else
  (void)mmap_budget;  // no mmap at all: every file takes the chunked path
#endif
  return std::make_unique<ChunkedEdgeSource>(path);
}

std::string to_ascii_matrix(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::string out;
  out.reserve(n * (n + 1));
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      out.push_back(g.has_edge(u, v) ? '1' : '0');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace referee
