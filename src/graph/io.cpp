#include "graph/io.hpp"

#include <charconv>
#include <sstream>

namespace referee {

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << g.vertex_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
  return os.str();
}

Graph from_edge_list(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::size_t n = 0;
  std::size_t m = 0;
  REFEREE_CHECK_MSG(static_cast<bool>(is >> n >> m), "bad edge list header");
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    Vertex u = 0;
    Vertex v = 0;
    REFEREE_CHECK_MSG(static_cast<bool>(is >> u >> v), "truncated edge list");
    g.add_edge(u, v);
  }
  return g;
}

std::string to_graph6(const Graph& g) {
  const std::size_t n = g.vertex_count();
  REFEREE_CHECK_MSG(n < (1u << 18), "graph6: n too large for this encoder");
  std::string out;
  if (n <= 62) {
    out.push_back(static_cast<char>(n + 63));
  } else {
    out.push_back(126);
    out.push_back(static_cast<char>(((n >> 12) & 63) + 63));
    out.push_back(static_cast<char>(((n >> 6) & 63) + 63));
    out.push_back(static_cast<char>((n & 63) + 63));
  }
  // Upper triangle, column-major: bit for (u, v), u < v, ordered by (v, u).
  int bit_pos = 5;
  char current = 0;
  for (Vertex v = 1; v < n; ++v) {
    for (Vertex u = 0; u < v; ++u) {
      if (g.has_edge(u, v)) current |= static_cast<char>(1 << bit_pos);
      if (--bit_pos < 0) {
        out.push_back(static_cast<char>(current + 63));
        current = 0;
        bit_pos = 5;
      }
    }
  }
  if (bit_pos != 5) out.push_back(static_cast<char>(current + 63));
  return out;
}

Graph from_graph6(std::string_view text) {
  REFEREE_CHECK_MSG(!text.empty(), "graph6: empty input");
  std::size_t pos = 0;
  std::size_t n = 0;
  if (static_cast<unsigned char>(text[0]) == 126) {
    REFEREE_CHECK_MSG(text.size() >= 4, "graph6: truncated size");
    n = (static_cast<std::size_t>(text[1] - 63) << 12) |
        (static_cast<std::size_t>(text[2] - 63) << 6) |
        static_cast<std::size_t>(text[3] - 63);
    pos = 4;
  } else {
    n = static_cast<std::size_t>(text[0] - 63);
    pos = 1;
  }
  Graph g(n);
  int bit_pos = 5;
  for (Vertex v = 1; v < n; ++v) {
    for (Vertex u = 0; u < v; ++u) {
      REFEREE_CHECK_MSG(pos < text.size(), "graph6: truncated bitmap");
      const int bits = text[pos] - 63;
      REFEREE_CHECK_MSG(bits >= 0 && bits < 64, "graph6: bad character");
      if ((bits >> bit_pos) & 1) g.add_edge(u, v);
      if (--bit_pos < 0) {
        bit_pos = 5;
        ++pos;
      }
    }
  }
  return g;
}

std::string to_ascii_matrix(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::string out;
  out.reserve(n * (n + 1));
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      out.push_back(g.has_edge(u, v) ? '1' : '0');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace referee
