// Exhaustive enumeration of labelled graphs on n vertices.
//
// Lemma 1's counting argument compares |family| against the 2^{O(n log n)}
// capacity of a frugal one-round protocol. For small n we count families
// *exactly* by enumerating all 2^{C(n,2)} labelled graphs; experiment E7
// uses this to exhibit the gap for square-free graphs.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/graph.hpp"
#include "support/thread_pool.hpp"

namespace referee {

/// Builds the graph whose upper-triangle bitmap is `mask` (pair (u,v),
/// u < v, in lexicographic order maps to bit index).
Graph graph_from_mask(std::size_t n, std::uint64_t mask);

/// Upper-triangle bitmap of g (inverse of graph_from_mask). n <= 11.
std::uint64_t mask_from_graph(const Graph& g);

/// Calls `visit` for every labelled graph on n vertices. n <= 8 enforced
/// (2^28 graphs already takes a while).
void for_each_labelled_graph(std::size_t n,
                             const std::function<void(const Graph&)>& visit);

/// Number of labelled graphs on n vertices satisfying `pred`, parallelised
/// over the mask space when a pool is supplied.
std::uint64_t count_labelled_graphs(
    std::size_t n, const std::function<bool(const Graph&)>& pred,
    ThreadPool* pool = nullptr);

/// Exact count of square-free (no C4 subgraph) labelled graphs. Known values
/// (OEIS A006855 counts maximal sizes; here we count all C4-free graphs):
/// n=1:1, 2:2, 3:8, 4:54 ... used as cross-checks in tests.
std::uint64_t count_square_free_graphs(std::size_t n,
                                       ThreadPool* pool = nullptr);

}  // namespace referee
