// Structural graph transforms.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace referee {

/// Relabel: vertex v of `g` becomes perm[v]. `perm` must be a permutation.
Graph permute(const Graph& g, std::span<const Vertex> perm);

/// Complement graph (no self-loops).
Graph complement(const Graph& g);

/// Subgraph induced by `keep` (sorted or not); vertex keep[i] becomes i.
Graph induced_subgraph(const Graph& g, std::span<const Vertex> keep);

/// Disjoint union; vertices of `b` are shifted by a.vertex_count().
Graph disjoint_union(const Graph& a, const Graph& b);

/// Bipartite double cover: vertices (v,0),(v,1) = v and v+n; every edge
/// {u,v} becomes {u, v+n} and {v, u+n}. Connected g is bipartite iff the
/// cover has two components — the reduction behind the paper's §IV remark
/// that one-round bipartiteness reduces to one-round connectivity.
Graph double_cover(const Graph& g);

/// g plus one new vertex adjacent to every original vertex (the referee v0
/// made explicit as a graph vertex; also the gadget core of Theorem 2).
Graph with_universal_vertex(const Graph& g);

}  // namespace referee
