// Immutable compressed-sparse-row view of a Graph.
//
// Traversal-heavy algorithms (all-pairs BFS for diameter, triangle counting)
// run noticeably faster on the flat CSR arrays than on vector-of-vectors;
// the conversion is one pass.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace referee {

class EdgeSource;

class CsrGraph {
 public:
  CsrGraph() = default;
  explicit CsrGraph(const Graph& g);

  /// Build directly from an edge list, canonicalizing as it goes: every
  /// row comes out sorted ascending and deduped (self-loops rejected), the
  /// same adjacency contract Graph enforces at add_edge time. This is the
  /// bulk-load path for campaign-scale inputs — no intermediate
  /// vector-of-vectors Graph required.
  CsrGraph(std::size_t n, std::span<const Edge> edges);

  /// The out-of-core bulk-load path: two passes over a resettable
  /// EdgeSource (count degrees, then fill), consuming the edge section
  /// chunk by chunk. Identical output to the span constructor over the
  /// same records; peak extra memory is the source's chunk buffer.
  explicit CsrGraph(EdgeSource& source);

  std::size_t vertex_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t edge_count() const { return targets_.size() / 2; }

  std::size_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const Vertex> neighbors(Vertex v) const {
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

 private:
  // The shared two-pass bulk build, chunk-friendly: count over every edge
  // (any number of calls), seal the prefix sums, fill over the same edges
  // in the same order, then canonicalize rows in place.
  void count_edges(std::size_t n, std::span<const Edge> edges);
  std::vector<std::size_t> seal_counts(std::size_t n);
  void fill_edges(std::span<const Edge> edges,
                  std::vector<std::size_t>& cursor);
  void canonicalize_rows(std::size_t n);

  std::vector<std::size_t> offsets_;  // n+1 entries
  std::vector<Vertex> targets_;       // 2m entries, sorted per row
};

}  // namespace referee
