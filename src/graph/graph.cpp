#include "graph/graph.hpp"

#include <algorithm>

namespace referee {

Graph::Graph(std::size_t n, std::span<const Edge> edges) : adj_(n) {
  for (const Edge& e : edges) add_edge(e.u, e.v);
}

bool Graph::add_edge(Vertex u, Vertex v) {
  REFEREE_CHECK_MSG(u < adj_.size() && v < adj_.size(), "vertex out of range");
  REFEREE_CHECK_MSG(u != v, "self-loop");
  auto& nu = adj_[u];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return false;
  nu.insert(it, v);
  auto& nv = adj_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++edge_count_;
  return true;
}

bool Graph::remove_edge(Vertex u, Vertex v) {
  REFEREE_CHECK_MSG(u < adj_.size() && v < adj_.size(), "vertex out of range");
  auto& nu = adj_[u];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it == nu.end() || *it != v) return false;
  nu.erase(it);
  auto& nv = adj_[v];
  nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
  --edge_count_;
  return true;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u >= adj_.size() || v >= adj_.size() || u == v) return false;
  const auto& nu = adj_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

Vertex Graph::add_vertices(std::size_t count) {
  const auto first = static_cast<Vertex>(adj_.size());
  adj_.resize(adj_.size() + count);
  return first;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (Vertex u = 0; u < adj_.size(); ++u) {
    for (const Vertex v : adj_[u]) {
      if (v > u) out.emplace_back(u, v);
    }
  }
  return out;
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& nb : adj_) best = std::max(best, nb.size());
  return best;
}

std::size_t Graph::min_degree() const {
  if (adj_.empty()) return 0;
  std::size_t best = adj_[0].size();
  for (const auto& nb : adj_) best = std::min(best, nb.size());
  return best;
}

bool operator==(const Graph& a, const Graph& b) {
  return a.adj_ == b.adj_;
}

}  // namespace referee
