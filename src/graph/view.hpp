// One non-owning handle over both graph representations.
//
// The ground-truth layer used to be split: adjacency-list Graph algorithms
// for generated campaign cells, hand-written CSR twins for file-backed
// cells. A GraphView erases the representation behind the four accessors
// every algorithm actually uses (vertex_count / edge_count / degree /
// neighbors), so each algorithm has exactly one body and the two paths are
// bit-identical by construction. Both representations keep rows in the same
// canonical form (sorted ascending, deduped, no self-loops), which is what
// makes the row spans directly comparable.
#pragma once

#include <algorithm>
#include <span>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace referee {

class GraphView {
 public:
  GraphView() = default;
  // Implicit by design: any algorithm taking a GraphView accepts either
  // representation at zero conversion cost.
  GraphView(const Graph& g) : graph_(&g) {}   // NOLINT(google-explicit-constructor)
  GraphView(const CsrGraph& g) : csr_(&g) {}  // NOLINT(google-explicit-constructor)

  std::size_t vertex_count() const {
    if (graph_ != nullptr) return graph_->vertex_count();
    if (csr_ != nullptr) return csr_->vertex_count();
    return 0;
  }

  std::size_t edge_count() const {
    if (graph_ != nullptr) return graph_->edge_count();
    if (csr_ != nullptr) return csr_->edge_count();
    return 0;
  }

  std::size_t degree(Vertex v) const {
    return graph_ != nullptr ? graph_->degree(v) : csr_->degree(v);
  }

  /// Sorted ascending, deduped — the canonical row both reps maintain.
  std::span<const Vertex> neighbors(Vertex v) const {
    return graph_ != nullptr ? graph_->neighbors(v) : csr_->neighbors(v);
  }

  std::size_t max_degree() const {
    const std::size_t n = vertex_count();
    std::size_t best = 0;
    for (Vertex v = 0; v < n; ++v) best = std::max(best, degree(v));
    return best;
  }

 private:
  const Graph* graph_ = nullptr;
  const CsrGraph* csr_ = nullptr;
};

/// Structural equality against either representation — Graph::operator==
/// generalized. Rows on both sides are canonical, so a row-by-row span
/// compare is exact: graphs_equal(h, GraphView(g)) == (h == g) for Graphs.
inline bool graphs_equal(const Graph& lhs, GraphView rhs) {
  const std::size_t n = lhs.vertex_count();
  if (n != rhs.vertex_count()) return false;
  for (Vertex v = 0; v < n; ++v) {
    const std::span<const Vertex> a = lhs.neighbors(v);
    const std::span<const Vertex> b = rhs.neighbors(v);
    if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) return false;
  }
  return true;
}

}  // namespace referee
