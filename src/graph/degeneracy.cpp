#include "graph/degeneracy.hpp"

#include <algorithm>

namespace referee {

DegeneracyResult degeneracy(const Graph& g) {
  const std::size_t n = g.vertex_count();
  DegeneracyResult result;
  result.removal_order.reserve(n);
  result.core_number.assign(n, 0);
  if (n == 0) return result;

  // Bucket queue keyed by residual degree.
  std::vector<std::size_t> deg(n);
  std::size_t max_deg = 0;
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<std::vector<Vertex>> buckets(max_deg + 1);
  for (Vertex v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);

  std::size_t k = 0;
  std::size_t cursor = 0;  // lowest possibly non-empty bucket
  for (std::size_t step = 0; step < n; ++step) {
    // Find the minimum-degree live vertex.
    while (cursor < buckets.size()) {
      // Drop stale entries (vertices whose degree has since decreased or
      // that were already removed).
      auto& bucket = buckets[cursor];
      while (!bucket.empty() &&
             (removed[bucket.back()] || deg[bucket.back()] != cursor)) {
        bucket.pop_back();
      }
      if (!bucket.empty()) break;
      ++cursor;
    }
    REFEREE_DCHECK(cursor < buckets.size());
    const Vertex v = buckets[cursor].back();
    buckets[cursor].pop_back();
    removed[v] = true;
    k = std::max(k, deg[v]);
    result.core_number[v] = static_cast<std::uint32_t>(k);
    result.removal_order.push_back(v);
    for (const Vertex w : g.neighbors(v)) {
      if (!removed[w]) {
        --deg[w];
        buckets[deg[w]].push_back(w);
        if (deg[w] < cursor) cursor = deg[w];
      }
    }
  }
  result.degeneracy = k;
  return result;
}

bool has_degeneracy_at_most(const Graph& g, std::size_t k) {
  return degeneracy(g).degeneracy <= k;
}

bool is_valid_elimination_order(const Graph& g, std::span<const Vertex> order,
                                std::size_t k) {
  const std::size_t n = g.vertex_count();
  if (order.size() != n) return false;
  // position[v] = i means v == r_{i+1}; r_i must have <= k neighbours with
  // smaller position (those are its neighbours inside G_i).
  std::vector<std::size_t> position(n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    const Vertex v = order[i];
    if (v >= n || position[v] != SIZE_MAX) return false;  // not a permutation
    position[v] = i;
  }
  for (Vertex v = 0; v < n; ++v) {
    std::size_t earlier = 0;
    for (const Vertex w : g.neighbors(v)) {
      if (position[w] < position[v]) ++earlier;
    }
    if (earlier > k) return false;
  }
  return true;
}

GeneralizedDegeneracyResult generalized_degeneracy_order(const Graph& g,
                                                         std::size_t k) {
  const std::size_t n = g.vertex_count();
  GeneralizedDegeneracyResult result;
  result.removal_order.reserve(n);
  std::vector<std::size_t> deg(n);
  for (Vertex v = 0; v < n; ++v) deg[v] = g.degree(v);
  std::vector<bool> removed(n, false);
  std::size_t alive = n;
  while (alive > 0) {
    bool found = false;
    for (Vertex v = 0; v < n && !found; ++v) {
      if (removed[v]) continue;
      const std::size_t co_deg = alive - 1 - deg[v];
      if (deg[v] <= k || co_deg <= k) {
        result.removal_order.push_back(v);
        result.used_complement.push_back(deg[v] > k);
        removed[v] = true;
        --alive;
        for (const Vertex w : g.neighbors(v)) {
          if (!removed[w]) --deg[w];
        }
        found = true;
      }
    }
    if (!found) return result;  // feasible stays false
  }
  result.feasible = true;
  return result;
}

}  // namespace referee
