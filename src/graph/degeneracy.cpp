#include "graph/degeneracy.hpp"

#include <algorithm>

namespace referee {

DegeneracyResult degeneracy(GraphView g) {
  const std::size_t n = g.vertex_count();
  DegeneracyResult result;
  result.removal_order.reserve(n);
  result.core_number.assign(n, 0);
  if (n == 0) return result;

  // Bucket queue keyed by residual degree.
  std::vector<std::size_t> deg(n);
  std::size_t max_deg = 0;
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<std::vector<Vertex>> buckets(max_deg + 1);
  for (Vertex v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);

  std::size_t k = 0;
  std::size_t cursor = 0;  // lowest possibly non-empty bucket
  for (std::size_t step = 0; step < n; ++step) {
    // Find the minimum-degree live vertex.
    while (cursor < buckets.size()) {
      // Drop stale entries (vertices whose degree has since decreased or
      // that were already removed).
      auto& bucket = buckets[cursor];
      while (!bucket.empty() &&
             (removed[bucket.back()] || deg[bucket.back()] != cursor)) {
        bucket.pop_back();
      }
      if (!bucket.empty()) break;
      ++cursor;
    }
    REFEREE_DCHECK(cursor < buckets.size());
    const Vertex v = buckets[cursor].back();
    buckets[cursor].pop_back();
    removed[v] = true;
    k = std::max(k, deg[v]);
    result.core_number[v] = static_cast<std::uint32_t>(k);
    result.removal_order.push_back(v);
    for (const Vertex w : g.neighbors(v)) {
      if (!removed[w]) {
        --deg[w];
        buckets[deg[w]].push_back(w);
        if (deg[w] < cursor) cursor = deg[w];
      }
    }
  }
  result.degeneracy = k;
  return result;
}

DegeneracyResult degeneracy(const Graph& g) { return degeneracy(GraphView(g)); }
DegeneracyResult degeneracy(const CsrGraph& g) {
  return degeneracy(GraphView(g));
}

bool has_degeneracy_at_most(const Graph& g, std::size_t k) {
  return degeneracy(GraphView(g)).degeneracy <= k;
}

bool has_degeneracy_at_most(const CsrGraph& g, std::size_t k) {
  return degeneracy(GraphView(g)).degeneracy <= k;
}

std::size_t degeneracy_value(GraphView g, DecodeArena& arena) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return 0;
  auto deg_s = arena.scratch<std::size_t>();
  auto bin_s = arena.scratch<std::size_t>();
  auto pos_s = arena.scratch<std::size_t>();
  auto vert_s = arena.scratch<Vertex>();
  std::vector<std::size_t>& deg = *deg_s;
  std::vector<std::size_t>& bin = *bin_s;
  std::vector<std::size_t>& pos = *pos_s;
  std::vector<Vertex>& vert = *vert_s;

  deg.assign(n, 0);
  std::size_t max_deg = 0;
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Counting sort by degree: bin[d] becomes the start offset of the block
  // of degree-d vertices inside vert.
  bin.assign(max_deg + 1, 0);
  for (Vertex v = 0; v < n; ++v) ++bin[deg[v]];
  std::size_t start = 0;
  for (std::size_t d = 0; d <= max_deg; ++d) {
    const std::size_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  grow_to(pos, n);
  grow_to(vert, n);
  for (Vertex v = 0; v < n; ++v) {
    pos[v] = bin[deg[v]]++;
    vert[pos[v]] = v;
  }
  for (std::size_t d = max_deg; d > 0; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  // Peel in degree order; moving a touched neighbour to the front of its
  // degree block keeps vert sorted after every decrement.
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vertex v = vert[i];
    k = std::max(k, deg[v]);
    for (const Vertex w : g.neighbors(v)) {
      if (deg[w] <= deg[v]) continue;
      const std::size_t dw = deg[w];
      const std::size_t pw = pos[w];
      const std::size_t ps = bin[dw];
      const Vertex u = vert[ps];
      if (u != w) {
        vert[ps] = w;
        vert[pw] = u;
        pos[w] = ps;
        pos[u] = pw;
      }
      ++bin[dw];
      --deg[w];
    }
  }
  return k;
}

bool has_degeneracy_at_most(GraphView g, std::size_t k, DecodeArena& arena) {
  return degeneracy_value(g, arena) <= k;
}

bool is_valid_elimination_order(GraphView g, std::span<const Vertex> order,
                                std::size_t k) {
  const std::size_t n = g.vertex_count();
  if (order.size() != n) return false;
  // position[v] = i means v == r_{i+1}; r_i must have <= k neighbours with
  // smaller position (those are its neighbours inside G_i).
  std::vector<std::size_t> position(n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    const Vertex v = order[i];
    if (v >= n || position[v] != SIZE_MAX) return false;  // not a permutation
    position[v] = i;
  }
  for (Vertex v = 0; v < n; ++v) {
    std::size_t earlier = 0;
    for (const Vertex w : g.neighbors(v)) {
      if (position[w] < position[v]) ++earlier;
    }
    if (earlier > k) return false;
  }
  return true;
}

bool is_valid_elimination_order(const Graph& g, std::span<const Vertex> order,
                                std::size_t k) {
  return is_valid_elimination_order(GraphView(g), order, k);
}

bool is_valid_elimination_order(const CsrGraph& g,
                                std::span<const Vertex> order, std::size_t k) {
  return is_valid_elimination_order(GraphView(g), order, k);
}

GeneralizedDegeneracyResult generalized_degeneracy_order(GraphView g,
                                                         std::size_t k) {
  const std::size_t n = g.vertex_count();
  GeneralizedDegeneracyResult result;
  result.removal_order.reserve(n);
  std::vector<std::size_t> deg(n);
  for (Vertex v = 0; v < n; ++v) deg[v] = g.degree(v);
  std::vector<bool> removed(n, false);
  std::size_t alive = n;
  while (alive > 0) {
    bool found = false;
    for (Vertex v = 0; v < n && !found; ++v) {
      if (removed[v]) continue;
      const std::size_t co_deg = alive - 1 - deg[v];
      if (deg[v] <= k || co_deg <= k) {
        result.removal_order.push_back(v);
        result.used_complement.push_back(deg[v] > k);
        removed[v] = true;
        --alive;
        for (const Vertex w : g.neighbors(v)) {
          if (!removed[w]) --deg[w];
        }
        found = true;
      }
    }
    if (!found) return result;  // feasible stays false
  }
  result.feasible = true;
  return result;
}

GeneralizedDegeneracyResult generalized_degeneracy_order(const Graph& g,
                                                         std::size_t k) {
  return generalized_degeneracy_order(GraphView(g), k);
}

GeneralizedDegeneracyResult generalized_degeneracy_order(const CsrGraph& g,
                                                         std::size_t k) {
  return generalized_degeneracy_order(GraphView(g), k);
}

}  // namespace referee
