// Degeneracy, k-cores and elimination orders (Matula–Beck bucket algorithm).
//
// Definition 2 of the paper: G has degeneracy k if there is an ordering
// (r_1,…,r_n) where each r_i has degree <= k in G[{r_1,…,r_i}]. The referee's
// global decoder replays exactly such an ordering, so this module both
// certifies generator families and provides ground truth for the
// recognition protocol.
//
// Every entry point exists for Graph, CsrGraph and GraphView; the overloads
// share one body over GraphView, so the adjacency-list and CSR answers are
// bit-identical by construction (tests/test_csr_truth.cpp pins this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "support/arena.hpp"

namespace referee {

struct DegeneracyResult {
  std::size_t degeneracy = 0;
  /// Elimination order: order[i] is removed i-th; each has <= degeneracy
  /// neighbours among the *later-removed* prefix... see note below.
  /// Convention: order is the Matula–Beck removal order (min residual degree
  /// first); reversing it gives the paper's (r_1, ..., r_n).
  std::vector<Vertex> removal_order;
  /// Core number per vertex (largest k such that v is in the k-core).
  std::vector<std::uint32_t> core_number;
};

/// O(n + m) bucket implementation.
DegeneracyResult degeneracy(GraphView g);
DegeneracyResult degeneracy(const Graph& g);
DegeneracyResult degeneracy(const CsrGraph& g);

/// Convenience: degeneracy(g).degeneracy <= k.
bool has_degeneracy_at_most(const Graph& g, std::size_t k);
bool has_degeneracy_at_most(const CsrGraph& g, std::size_t k);

/// The degeneracy value alone, on flat scratch arrays out of the arena
/// (classic bin/vert/pos counting-sort peel): zero steady-state allocation,
/// which is what the campaign classifier needs for mmap'd million-node
/// cells. Same value as degeneracy(g).degeneracy — a different peel order
/// is still an exact min-degree elimination.
std::size_t degeneracy_value(GraphView g, DecodeArena& arena);
bool has_degeneracy_at_most(GraphView g, std::size_t k, DecodeArena& arena);

/// Checks that `order` (paper convention, r_1 first) is a valid
/// k-elimination order for g per Definition 2.
bool is_valid_elimination_order(GraphView g, std::span<const Vertex> order,
                                std::size_t k);
bool is_valid_elimination_order(const Graph& g, std::span<const Vertex> order,
                                std::size_t k);
bool is_valid_elimination_order(const CsrGraph& g,
                                std::span<const Vertex> order, std::size_t k);

/// Generalised degeneracy (paper §III, last paragraph): each r_i must have
/// degree <= k in G_i *or* in the complement of G_i. Computed greedily by
/// removing any vertex satisfying either bound; greedy is safe because
/// removing a vertex never increases residual degrees on either side.
struct GeneralizedDegeneracyResult {
  bool feasible = false;
  std::vector<Vertex> removal_order;
  /// For each removed vertex: false = small in G_i, true = small in
  /// complement of G_i.
  std::vector<bool> used_complement;
};
GeneralizedDegeneracyResult generalized_degeneracy_order(GraphView g,
                                                         std::size_t k);
GeneralizedDegeneracyResult generalized_degeneracy_order(const Graph& g,
                                                         std::size_t k);
GeneralizedDegeneracyResult generalized_degeneracy_order(const CsrGraph& g,
                                                         std::size_t k);

}  // namespace referee
