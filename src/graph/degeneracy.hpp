// Degeneracy, k-cores and elimination orders (Matula–Beck bucket algorithm).
//
// Definition 2 of the paper: G has degeneracy k if there is an ordering
// (r_1,…,r_n) where each r_i has degree <= k in G[{r_1,…,r_i}]. The referee's
// global decoder replays exactly such an ordering, so this module both
// certifies generator families and provides ground truth for the
// recognition protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace referee {

struct DegeneracyResult {
  std::size_t degeneracy = 0;
  /// Elimination order: order[i] is removed i-th; each has <= degeneracy
  /// neighbours among the *later-removed* prefix... see note below.
  /// Convention: order is the Matula–Beck removal order (min residual degree
  /// first); reversing it gives the paper's (r_1, ..., r_n).
  std::vector<Vertex> removal_order;
  /// Core number per vertex (largest k such that v is in the k-core).
  std::vector<std::uint32_t> core_number;
};

/// O(n + m) bucket implementation.
DegeneracyResult degeneracy(const Graph& g);

/// Convenience: degeneracy(g).degeneracy <= k.
bool has_degeneracy_at_most(const Graph& g, std::size_t k);

/// Checks that `order` (paper convention, r_1 first) is a valid
/// k-elimination order for g per Definition 2.
bool is_valid_elimination_order(const Graph& g,
                                std::span<const Vertex> order,
                                std::size_t k);

/// Generalised degeneracy (paper §III, last paragraph): each r_i must have
/// degree <= k in G_i *or* in the complement of G_i. Computed greedily by
/// removing any vertex satisfying either bound; greedy is safe because
/// removing a vertex never increases residual degrees on either side.
struct GeneralizedDegeneracyResult {
  bool feasible = false;
  std::vector<Vertex> removal_order;
  /// For each removed vertex: false = small in G_i, true = small in
  /// complement of G_i.
  std::vector<bool> used_complement;
};
GeneralizedDegeneracyResult generalized_degeneracy_order(const Graph& g,
                                                         std::size_t k);

}  // namespace referee
