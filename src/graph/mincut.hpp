// Global minimum edge cut (Stoer–Wagner) and edge connectivity λ(G).
//
// Ground truth for the sketch-based k-edge-connectivity extension: the AGM
// peeling certificate H = F_1 ∪ … ∪ F_k satisfies
//   min(λ(G), k) == min(λ(H), k),
// which the tests verify against this exact algorithm.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"

namespace referee {

/// Weight of a global minimum edge cut of g. Returns nullopt for graphs
/// with fewer than 2 vertices (no cut exists); 0 when disconnected.
std::optional<std::uint64_t> global_min_cut(const Graph& g);

/// Edge connectivity λ(G): 0 when disconnected or trivial.
std::uint64_t edge_connectivity(const Graph& g);

/// λ(G) >= k?
bool is_k_edge_connected(const Graph& g, std::uint64_t k);

}  // namespace referee
