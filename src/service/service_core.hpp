// ServiceCore — the long-lived execution engine behind refereectl serve.
//
// A core owns W persistent worker threads fed by one BoundedQueue. The
// workers never die between requests, so each worker's thread_local
// DecodeArena (support/arena.hpp) stays warm: after the first request of a
// given shape, steady-state requests decode with zero arena growth — the
// property stats() exposes as arena_growth_events and the service tests
// pin. Admission control is the queue's capacity: submit() never blocks
// and never queues unboundedly; when the queue is full the request is
// answered immediately with a typed kOverloaded refusal (exit code 3).
//
// Batching: consecutive queued requests for the same *batchable* procedure
// (small transcript decodes) are coalesced by the popping worker into one
// batch and dispatched as a single parallel_for over the core's optional
// inner ThreadPool — one pool wakeup for N decodes instead of N.
//
// Per-procedure counters (requests/ok/errors/shed/batches/latency) index
// straight into the procedure table, so `service stats` is one atomic
// sweep with no string lookups on the hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "service/procedure.hpp"
#include "service/wire.hpp"
#include "support/bounded_queue.hpp"

namespace referee {

class ThreadPool;

/// One procedure's counters as reported by `service stats`.
struct ServiceProcedureStats {
  std::string name;
  std::uint64_t requests = 0;  // admitted or shed (everything addressed here)
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;          // refused with kOverloaded
  std::uint64_t batches = 0;       // coalesced dispatches (size > 1)
  std::uint64_t batched = 0;       // requests that rode those dispatches
  std::uint64_t total_micros = 0;  // enqueue → completion, summed
  std::uint64_t max_micros = 0;
};

struct ServiceStatsSnapshot {
  std::size_t workers = 0;
  std::size_t pool_threads = 0;
  std::size_t queue_capacity = 0;
  std::size_t queue_depth = 0;
  std::size_t batch_max = 0;
  /// Sum of DecodeArena growth events across every service worker and
  /// inner-pool thread — flat across identical requests once warm.
  std::uint64_t arena_growth_events = 0;
  std::uint64_t rejected_unknown = 0;
  std::uint64_t rejected_bad_request = 0;
  std::vector<ServiceProcedureStats> procedures;  // table order, servable only
};

/// Deterministic JSON rendering of a snapshot ("referee-service-stats": 1).
std::string format_service_stats(const ServiceStatsSnapshot& snapshot);

class ServiceCore {
 public:
  struct Config {
    std::size_t workers = 2;
    std::size_t queue_capacity = 64;
    /// Largest coalesced batch of batchable requests per dispatch.
    std::size_t batch_max = 8;
    /// Inner ThreadPool threads for batched dispatch and served campaigns;
    /// 0 = no inner pool (batches run inline on the popping worker).
    std::size_t pool_threads = 0;
    /// refereectl binary path, forked by the subprocess campaign backend.
    std::string exe;
  };

  /// `table` defaults to the real procedure table; tests inject a custom
  /// table to pin admission behavior with handlers they control.
  explicit ServiceCore(const Config& config,
                       std::span<const ProcedureDesc> table = procedure_table());
  ~ServiceCore();

  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  /// Admit or refuse `request`; the returned future is always eventually
  /// ready and submit() itself never blocks. Unknown procedures, local-only
  /// procedures and invalid flags resolve immediately (kUnknownProcedure /
  /// kBadRequest); a full queue resolves immediately with kOverloaded.
  std::future<ServiceResponse> submit(Request request);

  /// submit() and wait — the in-process single-request convenience.
  ServiceResponse call(Request request);

  ServiceStatsSnapshot stats();

  /// Stop admitting, run every queued request to completion, join the
  /// workers. Idempotent; the destructor calls it.
  void drain();

  const Config& config() const { return config_; }

 private:
  struct Job {
    Request request;
    const ProcedureDesc* desc = nullptr;
    std::size_t slot = 0;  // index into counters_ / the table span
    std::promise<ServiceResponse> promise;
    // run_job() parks the result here; the worker answers the promise only
    // after publishing its arena-growth slot, so a caller that reads
    // stats() right after call() returns sees the work it just caused.
    ServiceResponse response;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Counters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batched{0};
    std::atomic<std::uint64_t> total_micros{0};
    std::atomic<std::uint64_t> max_micros{0};
  };

  void worker_loop(std::size_t worker_index);
  void run_job(Job& job);

  Config config_;
  std::span<const ProcedureDesc> table_;
  BoundedQueue<Job> queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::thread> workers_;
  std::unique_ptr<Counters[]> counters_;  // one per table row
  /// Each service worker publishes its thread_local arena's growth count
  /// here after every batch; stats() sums them plus an inner-pool probe.
  std::unique_ptr<std::atomic<std::uint64_t>[]> worker_arena_growth_;
  std::atomic<std::uint64_t> rejected_unknown_{0};
  std::atomic<std::uint64_t> rejected_bad_request_{0};
  std::atomic<bool> drained_{false};
  std::mutex drain_mutex_;
};

}  // namespace referee
