#include "service/procedure.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace referee {

const ProcedureDesc* find_procedure(std::string_view name) {
  for (const ProcedureDesc& desc : procedure_table()) {
    if (desc.name == name) return &desc;
  }
  return nullptr;
}

namespace {

/// Classic Levenshtein distance; flag names are short, so the O(nm) DP is
/// effectively free.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t replace = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, replace});
    }
  }
  return row[b.size()];
}

bool flag_known(const ProcedureDesc& desc, std::span<const Flag> extra,
                std::string_view key) {
  const auto match = [key](const Flag& f) { return f.name == key; };
  return std::any_of(desc.flags.begin(), desc.flags.end(), match) ||
         std::any_of(extra.begin(), extra.end(), match);
}

std::string unknown_flag_error(const ProcedureDesc& desc,
                               std::string_view key) {
  std::string error = "unknown flag --" + std::string(key) + " for " +
                      std::string(desc.name);
  const std::string nearest = nearest_flag(desc, key);
  if (!nearest.empty()) {
    error += " (did you mean --" + nearest + "?)";
  } else {
    error += " (it takes no flags)";
  }
  error += "; see `refereectl help " + std::string(desc.name) + "`";
  return error;
}

}  // namespace

std::string nearest_flag(const ProcedureDesc& desc, std::string_view flag) {
  std::string best;
  std::size_t best_distance = static_cast<std::size_t>(-1);
  for (const Flag& candidate : desc.flags) {
    const std::size_t distance = edit_distance(flag, candidate.name);
    if (distance < best_distance) {
      best_distance = distance;
      best = std::string(candidate.name);
    }
  }
  return best;
}

std::string parse_cli_args(const ProcedureDesc& desc, int argc,
                           const char* const* argv, int first, Args& args,
                           std::span<const Flag> extra) {
  bool positional_filled = desc.positional.empty();
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o") {
      arg = "--out";  // the conventional short spelling for output files
    }
    if (arg.rfind("--", 0) != 0) {
      if (!positional_filled) {
        args.values[std::string(desc.positional)] = arg;
        positional_filled = true;
        continue;
      }
      return "unexpected argument '" + arg + "' for " +
             std::string(desc.name) + "; see `refereectl help " +
             std::string(desc.name) + "`";
    }
    const std::string key = arg.substr(2);
    if (!flag_known(desc, extra, key)) return unknown_flag_error(desc, key);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.values[key] = argv[++i];
    } else {
      args.values[key] = "1";
    }
  }
  if (!positional_filled) {
    return std::string(desc.name) + " needs a <" +
           std::string(desc.positional) + "> argument";
  }
  return "";
}

std::string validate_args(const ProcedureDesc& desc, const Args& args) {
  for (const auto& [key, value] : args.values) {
    (void)value;
    if (!desc.positional.empty() && key == desc.positional) continue;
    if (!flag_known(desc, {}, key)) return unknown_flag_error(desc, key);
  }
  if (!desc.positional.empty() && !args.has(std::string(desc.positional))) {
    return std::string(desc.name) + " needs a <" +
           std::string(desc.positional) + "> argument";
  }
  return "";
}

std::string help_text() {
  std::ostringstream out;
  out << "usage: refereectl <command> [--flags]\n\n";
  std::size_t width = 0;
  for (const ProcedureDesc& desc : procedure_table()) {
    std::size_t name_width = desc.name.size();
    if (!desc.positional.empty()) name_width += desc.positional.size() + 3;
    width = std::max(width, name_width);
  }
  for (const ProcedureDesc& desc : procedure_table()) {
    std::string name(desc.name);
    if (!desc.positional.empty()) {
      name += " <" + std::string(desc.positional) + ">";
    }
    out << "  " << name << std::string(width + 2 - name.size(), ' ')
        << desc.summary << "\n";
  }
  out << "\n`refereectl help <command>` (or <command> --help) lists a "
         "command's flags.\nCommands marked (stdin) read edge-list text "
         "(\"n m\" header, then \"u v\" lines)\non standard input, so "
         "commands compose with pipes:\n\n"
         "  refereectl gen apollonian --n 80 --seed 7 | refereectl "
         "reconstruct --k 3\n";
  return out.str();
}

std::string procedure_help(const ProcedureDesc& desc) {
  std::ostringstream out;
  out << "usage: refereectl " << desc.name;
  if (!desc.positional.empty()) out << " <" << desc.positional << ">";
  if (!desc.flags.empty()) out << " [--flags]";
  if (desc.reads_graph) out << "   (reads an edge-list graph on stdin)";
  out << "\n\n  " << desc.summary << "\n";
  if (!desc.flags.empty()) {
    out << "\nflags:\n";
    std::size_t width = 0;
    for (const Flag& flag : desc.flags) {
      width = std::max(width, flag.name.size() + flag.value_name.size() +
                                  (flag.value_name.empty() ? 0 : 1));
    }
    for (const Flag& flag : desc.flags) {
      std::string spelling = "--" + std::string(flag.name);
      if (!flag.value_name.empty()) {
        spelling += " " + std::string(flag.value_name);
      }
      out << "  " << spelling << std::string(width + 4 - spelling.size(), ' ')
          << flag.help << "\n";
    }
  }
  return out.str();
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<std::uint64_t> parse_u64_csv(const std::string& csv) {
  std::vector<std::uint64_t> out;
  for (const auto& item : split_csv(csv)) out.push_back(std::stoull(item));
  return out;
}

std::vector<unsigned> parse_unsigned_csv(const std::string& csv) {
  std::vector<unsigned> out;
  for (const auto& item : split_csv(csv)) {
    out.push_back(static_cast<unsigned>(std::stoul(item)));
  }
  return out;
}

std::vector<double> parse_double_csv(const std::string& csv) {
  std::vector<double> out;
  for (const auto& item : split_csv(csv)) out.push_back(std::stod(item));
  return out;
}

void printf_to(std::ostream& out, const char* fmt, ...) {
  char stack_buffer[1024];
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(stack_buffer, sizeof(stack_buffer), fmt,
                                    args);
  va_end(args);
  if (needed < 0) {
    va_end(copy);
    return;
  }
  if (static_cast<std::size_t>(needed) < sizeof(stack_buffer)) {
    out.write(stack_buffer, needed);
  } else {
    std::string heap_buffer(static_cast<std::size_t>(needed) + 1, '\0');
    std::vsnprintf(heap_buffer.data(), heap_buffer.size(), fmt, copy);
    out.write(heap_buffer.data(), needed);
  }
  va_end(copy);
}

}  // namespace referee
