// The request/procedure execution core.
//
// Every refereectl subcommand body lives behind one static *procedure
// table* (the RPC endpoint idiom of SNIPPETS.md Snippet 1: a fixed array
// of named procedures, dispatch and help both generated from it). A
// procedure takes a Request — a flag map plus, for graph-reading
// procedures, the edge-list text that used to arrive on stdin — and
// writes its results to a ProcedureIO instead of touching stdout/stderr
// directly. That one signature is what lets three frontends share every
// body byte-for-byte:
//
//   * the batch CLI (tools/refereectl.cpp): parse argv → Request,
//     io = {std::cout, std::cerr}, exit code = handler return;
//   * the in-process ServiceCore (service/service_core.hpp): Request in,
//     captured output/log strings out;
//   * the refereectl serve daemon (service/server.hpp): the same
//     ServiceCore behind a Unix-socket JSON frame.
//
// Flag validation is strict and table-driven: an unknown flag is an
// error naming the procedure and the nearest valid flag — the old
// monolith silently ignored misplaced flags.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace referee {

class ServiceCore;
class ThreadPool;

/// Flag values as parsed from argv or a wire frame: every value is a
/// string; presence-only flags carry "1". The accessors mirror the lookup
/// helpers every subcommand has always used.
struct Args {
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const { return values.count(key) > 0; }

  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }

  std::uint64_t num(const std::string& key, std::uint64_t fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stoull(it->second);
  }

  double real(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stod(it->second);
  }
};

/// One executable request: which procedure, with which flags, and (for
/// graph-reading procedures) the edge-list text input.
struct Request {
  std::string proc;
  Args args;
  std::string input;
};

/// Where a procedure writes. The CLI passes std::cout/std::cerr; the
/// service captures both into the response's output/log fields.
struct ProcedureIO {
  std::ostream& out;
  std::ostream& err;
};

/// Ambient execution state a handler may use. `exe` is the refereectl
/// binary path (the subprocess shard backend forks it); `pool`, when the
/// request runs inside a service, is the service's persistent thread pool
/// — its workers' thread_local DecodeArenas stay warm across requests;
/// `core` is the owning ServiceCore (non-null only when served), which is
/// how `service stats` reads counters.
struct ProcedureContext {
  std::string exe;
  ThreadPool* pool = nullptr;
  ServiceCore* core = nullptr;
};

/// One flag a procedure accepts. `value_name` is empty for presence-only
/// flags ("--json"), else the metavar printed in help ("--k K").
struct Flag {
  std::string_view name;        // without the leading "--"
  std::string_view value_name;  // "" for presence-only flags
  std::string_view help;
};

using ProcedureHandler = int (*)(const Request&, const ProcedureContext&,
                                 ProcedureIO&);

/// One row of the static procedure table. CLI dispatch, `refereectl
/// help`, per-procedure usage, wire dispatch and wire-side validation are
/// all generated from these rows — there is no second list of commands.
struct ProcedureDesc {
  std::string_view name;        // "campaign", "transcript decode", ...
  std::string_view summary;     // one-liner for the command index
  std::string_view positional;  // key of the leading positional ("family")
  bool reads_graph = false;     // consumes edge-list text (stdin / "input")
  bool local_only = false;      // CLI-side only; the daemon refuses it
  bool batchable = false;       // small decodes the service batcher coalesces
  std::span<const Flag> flags;
  ProcedureHandler handler = nullptr;
};

/// The table, in help order. Stable across a process — ServiceCore
/// counters index into it.
std::span<const ProcedureDesc> procedure_table();

/// Exact-name lookup ("graph pack" is one name); nullptr when absent.
const ProcedureDesc* find_procedure(std::string_view name);

/// Parse argv[first..argc) into `args` for `desc`: "--flag [value]" pairs
/// ("-o" aliases "--out", a flag not followed by a value records "1"),
/// plus the procedure's single leading positional when it declares one.
/// `extra` extends the valid-flag set (the `call` driver injects
/// --socket). Returns "" on success, else a diagnostic naming the
/// procedure and — for unknown flags — the nearest valid flag.
std::string parse_cli_args(const ProcedureDesc& desc, int argc,
                           const char* const* argv, int first, Args& args,
                           std::span<const Flag> extra = {});

/// Validate an already-built flag map (the wire path) against the table
/// row; same diagnostics as parse_cli_args.
std::string validate_args(const ProcedureDesc& desc, const Args& args);

/// The closest valid flag by edit distance, or "" when the procedure
/// takes no flags. Used for "did you mean --flips?" diagnostics.
std::string nearest_flag(const ProcedureDesc& desc, std::string_view flag);

/// The full command index ("usage: refereectl <command> ...") and one
/// procedure's usage/flag listing — both rendered from the table.
std::string help_text();
std::string procedure_help(const ProcedureDesc& desc);

/// Comma-separated list parsing, hoisted next to the table because the
/// campaign, transcript and merge procedures all need it (the monolith
/// duplicated these in several branches).
std::vector<std::string> split_csv(const std::string& csv);
std::vector<std::uint64_t> parse_u64_csv(const std::string& csv);
std::vector<unsigned> parse_unsigned_csv(const std::string& csv);
std::vector<double> parse_double_csv(const std::string& csv);

#if defined(__GNUC__) || defined(__clang__)
#define REFEREE_PRINTF_LIKE(fmt_index, first_arg) \
  __attribute__((format(printf, fmt_index, first_arg)))
#else
#define REFEREE_PRINTF_LIKE(fmt_index, first_arg)
#endif

/// printf into an ostream: the handlers keep their printf-style format
/// strings, the service captures their bytes. Identical bytes whether the
/// stream is std::cout or an ostringstream — the byte-identity contract
/// between CLI and served output rests on this.
void printf_to(std::ostream& out, const char* fmt, ...)
    REFEREE_PRINTF_LIKE(2, 3);

}  // namespace referee
