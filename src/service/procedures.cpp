// The procedure table and every procedure body.
//
// These are the former tools/refereectl.cpp subcommand bodies, lifted
// verbatim onto the ProcedureHandler signature: stdout/stderr became
// io.out/io.err, the stdin graph became req.input, and argv became the
// validated flag map. The format strings are unchanged on purpose — the
// byte-identity contract (batch CLI == in-process core == served daemon)
// is pinned by tests against these exact bytes.
#include <algorithm>
#include <csignal>
#include <fstream>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/backend.hpp"
#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/scenario.hpp"
#include "campaign/stream.hpp"
#include "campaign/subprocess.hpp"
#include "graph/algorithms.hpp"
#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/mincut.hpp"
#include "graph/subgraphs.hpp"
#include "model/simulator.hpp"
#include "model/transcript.hpp"
#include "numth/lookup.hpp"
#include "protocols/adaptive_degeneracy.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/recognition.hpp"
#include "protocols/statistics.hpp"
#include "reductions/oracles.hpp"
#include "reductions/reductions.hpp"
#include "service/procedure.hpp"
#include "service/server.hpp"
#include "service/service_core.hpp"
#include "service/wire.hpp"
#include "sketch/bipartiteness.hpp"
#include "sketch/connectivity.hpp"
#include "sketch/k_connectivity.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace referee {
namespace {

Graph graph_from_input(const Request& req) { return from_edge_list(req.input); }

Graph gen_family(const std::string& family, const Args& opts) {
  const auto n = static_cast<std::size_t>(opts.num("n", 32));
  const auto k = static_cast<unsigned>(opts.num("k", 3));
  const double p = opts.real("p", 0.1);
  Rng rng(opts.num("seed", 1));
  Graph g;
  if (family == "path") {
    g = gen::path(n);
  } else if (family == "cycle") {
    g = gen::cycle(n);
  } else if (family == "complete") {
    g = gen::complete(n);
  } else if (family == "star") {
    g = gen::star(n - 1);
  } else if (family == "grid") {
    const auto rows = static_cast<std::size_t>(opts.num("rows", 4));
    g = gen::grid(rows, (n + rows - 1) / rows);
  } else if (family == "torus") {
    const auto rows = static_cast<std::size_t>(opts.num("rows", 4));
    g = gen::torus(rows, std::max<std::size_t>(3, n / rows));
  } else if (family == "hypercube") {
    g = gen::hypercube(static_cast<unsigned>(opts.num("dims", 4)));
  } else if (family == "tree") {
    g = gen::random_tree(n, rng);
  } else if (family == "forest") {
    g = gen::random_forest(n, opts.real("drop", 0.2), rng);
  } else if (family == "gnp") {
    g = gen::gnp(n, p, rng);
  } else if (family == "gnm") {
    g = gen::gnm(n, opts.num("m", 2 * n), rng);
  } else if (family == "kdeg") {
    g = gen::random_k_degenerate(n, k, rng, opts.has("exact"));
  } else if (family == "ktree") {
    g = gen::random_k_tree(n, k, rng);
  } else if (family == "apollonian") {
    g = gen::random_apollonian(n, rng);
  } else if (family == "fattree") {
    g = gen::fat_tree(static_cast<unsigned>(opts.num("arity", 4)),
                      opts.has("hosts"));
  } else if (family == "bipartite") {
    g = gen::random_bipartite(n / 2, n - n / 2, p, rng);
  } else if (family == "squarefree") {
    g = gen::random_square_free(n, opts.num("attempts", 30 * n), rng);
  } else {
    throw CheckError("unknown family: " + family);
  }
  return g;
}

int cmd_gen(const Request& req, const ProcedureContext&, ProcedureIO& io) {
  io.out << to_edge_list(gen_family(req.args.str("family", ""), req.args));
  return 0;
}

int cmd_graph_pack(const Request& req, const ProcedureContext&,
                   ProcedureIO& io) {
  if (!req.args.has("out")) {
    printf_to(io.err, "graph pack needs --out FILE (or -o FILE)\n");
    return 2;
  }
  const Graph g = graph_from_input(req);
  const auto edges = g.edges();
  write_edge_file(req.args.str("out", ""), g.vertex_count(), edges);
  printf_to(io.err, "packed %zu vertices / %zu edges to %s\n",
            g.vertex_count(), edges.size(), req.args.str("out", "").c_str());
  return 0;
}

int cmd_graph_gen(const Request& req, const ProcedureContext&,
                  ProcedureIO& io) {
  const std::string family = req.args.str("family", "");
  if (!req.args.has("out")) {
    printf_to(io.err, "graph gen writes binary: needs --out FILE "
                      "(use plain `gen` for text)\n");
    return 2;
  }
  const Graph g = gen_family(family, req.args);
  const auto edges = g.edges();
  write_edge_file(req.args.str("out", ""), g.vertex_count(), edges);
  printf_to(io.err, "generated %s: %zu vertices / %zu edges to %s\n",
            family.c_str(), g.vertex_count(), edges.size(),
            req.args.str("out", "").c_str());
  return 0;
}

int cmd_info(const Request& req, const ProcedureContext&, ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  printf_to(io.out, "vertices        %zu\n", g.vertex_count());
  printf_to(io.out, "edges           %zu\n", g.edge_count());
  printf_to(io.out, "min/max degree  %zu / %zu\n", g.min_degree(),
            g.max_degree());
  const auto deg = degeneracy(g);
  printf_to(io.out, "degeneracy      %zu\n", deg.degeneracy);
  printf_to(io.out, "components      %zu\n", component_count(g));
  const auto diam = diameter(g);
  printf_to(io.out, "diameter        %s\n",
            diam ? std::to_string(*diam).c_str() : "inf (disconnected)");
  const auto gi = girth(g);
  printf_to(io.out, "girth           %s\n",
            gi ? std::to_string(*gi).c_str() : "inf (forest)");
  printf_to(io.out, "bipartite       %s\n", is_bipartite(g) ? "yes" : "no");
  printf_to(io.out, "triangles       %llu\n",
            static_cast<unsigned long long>(count_triangles(g)));
  printf_to(io.out, "squares (C4)    %llu\n",
            static_cast<unsigned long long>(count_squares(g)));
  printf_to(io.out, "treewidth <=    %zu (min-degree heuristic)\n",
            treewidth_upper_bound_min_degree(g));
  return 0;
}

std::shared_ptr<const NeighborhoodDecoder> pick_decoder(
    const std::string& kind, std::uint32_t n, unsigned k) {
  if (kind == "table") {
    return std::make_shared<TableDecoder>(
        std::make_shared<NeighborhoodTable>(n, k));
  }
  if (kind == "fast") {
    return std::make_shared<SmallNewtonDecoder>(n, k);
  }
  return std::make_shared<NewtonDecoder>();
}

int cmd_reconstruct(const Request& req, const ProcedureContext&,
                    ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  const auto k = static_cast<unsigned>(req.args.num("k", 3));
  const auto threads = static_cast<std::size_t>(req.args.num("threads", 0));
  const auto decoder =
      pick_decoder(req.args.str("decoder", "newton"),
                   static_cast<std::uint32_t>(g.vertex_count()), k);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  const Simulator sim(pool.get());
  const DegeneracyReconstruction protocol(k, decoder);
  FrugalityReport report;
  try {
    const Graph h = sim.run_reconstruction(g, protocol, &report);
    printf_to(io.err,
              "reconstructed %zu vertices / %zu edges; "
              "max message %zu bits (%.2f x log2(n+1)); exact: %s\n",
              h.vertex_count(), h.edge_count(), report.max_bits,
              report.constant(), h == g ? "yes" : "NO");
    io.out << to_edge_list(h);
    return h == g ? 0 : 1;
  } catch (const DecodeError& e) {
    printf_to(io.err, "reconstruction failed: %s\n", e.what());
    return 1;
  }
}

int cmd_recognize(const Request& req, const ProcedureContext&,
                  ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  const auto k = static_cast<unsigned>(req.args.num("k", 3));
  const Simulator sim;
  const bool accepted = sim.run_decision(g, *make_degeneracy_recognizer(k));
  printf_to(io.out, "degeneracy <= %u: %s\n", k, accepted ? "yes" : "no");
  return 0;
}

int cmd_adaptive(const Request& req, const ProcedureContext&,
                 ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  const Simulator sim;
  const AdaptiveDegeneracyReconstruction protocol;
  MultiRoundReport report;
  const Graph h = sim.run_multi_round(g, protocol, &report);
  printf_to(io.err,
            "adaptive reconstruction: %u round(s), final guess k=%u, "
            "max message %zu bits, %zu broadcast bit(s); exact: %s\n",
            report.rounds_used,
            AdaptiveDegeneracyReconstruction::k_for_round(
                report.rounds_used - 1),
            report.max_bits, report.broadcast_bits, h == g ? "yes" : "NO");
  io.out << to_edge_list(h);
  return h == g ? 0 : 1;
}

int cmd_connectivity(const Request& req, const ProcedureContext&,
                     ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  const SketchParams params{
      .seed = req.args.num("seed", 0xC0FFEE),
      .rounds = 0,
      .copies = static_cast<unsigned>(req.args.num("copies", 3))};
  const Simulator sim;
  const SketchConnectivityProtocol protocol(params);
  FrugalityReport report;
  const auto msgs = sim.run_local_phase(g, protocol);
  report = audit_frugality(static_cast<std::uint32_t>(g.vertex_count()), msgs);
  const auto result =
      protocol.decode(static_cast<std::uint32_t>(g.vertex_count()), msgs);
  printf_to(io.out, "components      %zu (truth: %zu)\n",
            result.component_count, component_count(g));
  printf_to(io.out, "forest edges    %zu\n", result.forest.size());
  printf_to(io.out, "bits per node   %zu (%.1f x log2(n+1))\n",
            report.max_bits, report.constant());
  return result.component_count == component_count(g) ? 0 : 1;
}

int cmd_bipartite(const Request& req, const ProcedureContext&,
                  ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  const SketchParams params{
      .seed = req.args.num("seed", 0xB1B),
      .rounds = 0,
      .copies = static_cast<unsigned>(req.args.num("copies", 3))};
  const Simulator sim;
  const bool answer = sim.run_decision(g, SketchBipartitenessProtocol(params));
  printf_to(io.out, "bipartite       %s (truth: %s)\n", answer ? "yes" : "no",
            is_bipartite(g) ? "yes" : "no");
  return answer == is_bipartite(g) ? 0 : 1;
}

int cmd_reduce(const Request& req, const ProcedureContext&, ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  const std::string via = req.args.str("via", "diameter");
  const Simulator sim;
  std::unique_ptr<ReconstructionProtocol> delta;
  if (via == "square") {
    delta = std::make_unique<SquareReduction>(make_square_oracle());
  } else if (via == "triangle") {
    delta = std::make_unique<TriangleReduction>(make_triangle_oracle());
  } else if (via == "diameter") {
    delta = std::make_unique<DiameterReduction>(make_diameter_oracle(3));
  } else {
    printf_to(io.err, "unknown reduction: %s\n", via.c_str());
    return 2;
  }
  const Graph h = sim.run_reconstruction(g, *delta);
  printf_to(io.err, "Δ[%s] output %s the input\n", via.c_str(),
            h == g ? "MATCHES" : "differs from");
  io.out << to_edge_list(h);
  return h == g ? 0 : 1;
}

int cmd_stats(const Request& req, const ProcedureContext&, ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  const Simulator sim;
  const DegreeStatistics protocol;
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto msgs = sim.run_local_phase(g, protocol);
  const auto report = audit_frugality(n, msgs);
  printf_to(io.out, "edges           %llu\n",
            static_cast<unsigned long long>(
                DegreeStatistics::edge_count(n, msgs)));
  printf_to(io.out, "max degree      %u\n",
            DegreeStatistics::max_degree(n, msgs));
  printf_to(io.out, "min degree      %u\n",
            DegreeStatistics::min_degree(n, msgs));
  printf_to(io.out, "erdos-gallai    %s\n",
            DegreeStatistics::erdos_gallai_feasible(n, msgs)
                ? "feasible"
                : "INFEASIBLE (corrupt transcript)");
  printf_to(io.out, "connectivity    %s\n",
            DegreeStatistics::connectivity_possible(n, msgs)
                ? "possible (necessary conditions hold)"
                : "impossible (isolated vertex or m < n-1)");
  printf_to(io.out, "bits per node   %zu (%.1f x log2(n+1))\n",
            report.max_bits, report.constant());
  return 0;
}

int cmd_kconn(const Request& req, const ProcedureContext&, ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  const auto k = static_cast<unsigned>(req.args.num("k", 2));
  const SketchParams params{
      .seed = req.args.num("seed", 0xC0DE),
      .rounds = 0,
      .copies = static_cast<unsigned>(req.args.num("copies", 4))};
  const auto result = sketch_k_edge_connectivity(g, k, params);
  printf_to(io.out,
            "lambda >= %u     %s (certificate bound: %llu; truth: %llu)\n", k,
            result.k_connected ? "yes" : "no",
            static_cast<unsigned long long>(result.connectivity_lower_bound),
            static_cast<unsigned long long>(edge_connectivity(g)));
  printf_to(io.out, "certificate     %zu edges across %zu forests\n",
            result.certificate.edge_count(), result.forests.size());
  return 0;
}

int cmd_capture(const Request& req, const ProcedureContext&, ProcedureIO& io) {
  const Graph g = graph_from_input(req);
  const auto k = static_cast<unsigned>(req.args.num("k", 3));
  const std::string out = req.args.str("out", "transcript.rft");
  const Simulator sim;
  const DegeneracyReconstruction protocol(k);
  Transcript t;
  t.n = static_cast<std::uint32_t>(g.vertex_count());
  t.messages = sim.run_local_phase(g, protocol);
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    printf_to(io.err, "cannot open %s\n", out.c_str());
    return 1;
  }
  write_transcript(os, t);
  const auto report = audit_frugality(t.n, t.messages);
  printf_to(io.err, "captured %u messages (%zu bits total) to %s\n", t.n,
            report.total_bits, out.c_str());
  return 0;
}

int cmd_decode_transcript(const Request& req, const ProcedureContext&,
                          ProcedureIO& io) {
  const auto k = static_cast<unsigned>(req.args.num("k", 3));
  const std::string in = req.args.str("in", "transcript.rft");
  std::ifstream is(in, std::ios::binary);
  if (!is) {
    printf_to(io.err, "cannot open %s\n", in.c_str());
    return 1;
  }
  const Transcript t = read_transcript(is);
  const DegeneracyReconstruction protocol(k);
  try {
    const Graph h = protocol.reconstruct(t.n, t.messages);
    printf_to(io.err, "decoded %u nodes -> %zu edges\n", t.n, h.edge_count());
    io.out << to_edge_list(h);
    return 0;
  } catch (const DecodeError& e) {
    printf_to(io.err, "decode failed: %s\n", e.what());
    return 1;
  }
}

/// Swallows streamed bytes when neither --json nor --out wants them; the
/// table is printed from the writer's folded aggregates instead.
struct NullBuffer final : std::streambuf {
  int overflow(int c) override { return c; }
};

/// Print the human table / replay the JSON per the output flags, using
/// only the writer's incremental fold — never the materialized report —
/// and derive the exit code from the loud-failure contract: any
/// silent-wrong cell fails the run. `note_partial` mentions incomplete
/// coverage on the log stream (the merge path's courtesy note).
int finish_streamed(const StreamingReportWriter& writer, const Args& opts,
                    ProcedureIO& io, bool note_partial) {
  const AggregateFolder& folder = writer.folder();
  if (note_partial && folder.rows() < writer.plan_cells()) {
    printf_to(io.err,
              "note: merged %zu of %zu cells — emitting a partial "
              "(shard) report\n",
              folder.rows(), writer.plan_cells());
  }
  if (opts.has("out") && opts.has("json")) {
    // The canonical bytes streamed to the file; replay them to the output
    // stream without rebuilding the report in memory.
    std::ifstream is(opts.str("out", ""), std::ios::binary);
    io.out << is.rdbuf();
  }
  if (!opts.has("json")) {
    printf_to(io.out, "%-14s %-22s %9s %4s %5s %7s %9s %7s\n", "generator",
              "protocol", "scenarios", "ok", "loud", "silent", "max_bits",
              "c");
    for (const auto& a : folder.aggregates()) {
      printf_to(io.out, "%-14s %-22s %9zu %4zu %5zu %7zu %9zu %7.2f\n",
                a.generator.c_str(), a.protocol.c_str(), a.scenarios, a.ok,
                a.loud, a.silent_wrong, a.max_bits, a.max_constant);
    }
    printf_to(io.out, "total scenarios %zu/%zu, silent-wrong %zu\n",
              folder.rows(), writer.plan_cells(), folder.silent_wrong());
  }
  return folder.silent_wrong() == 0 ? 0 : 1;
}

/// Run `produce` against a StreamingReportWriter wired to the right
/// destination (--out file, --json output stream, else a null sink):
/// report rows flow straight from the producer to bytes, so peak memory is
/// independent of the grid size.
int run_campaign_streamed(const std::function<void(ReportSink&)>& produce,
                          const Args& opts, ProcedureIO& io,
                          bool note_partial = false) {
  NullBuffer null_buffer;
  std::ostream null_stream(&null_buffer);
  std::ofstream file;
  std::ostream* out = &null_stream;
  if (opts.has("out")) {
    file.open(opts.str("out", "campaign.json"), std::ios::binary);
    if (!file) {
      printf_to(io.err, "cannot open %s\n", opts.str("out", "").c_str());
      return 1;
    }
    out = &file;
  } else if (opts.has("json")) {
    out = &io.out;
  }
  StreamingReportWriter writer(*out);
  produce(writer);
  if (file.is_open()) file.close();
  return finish_streamed(writer, opts, io, note_partial);
}

int cmd_campaign_merge(const Args& opts, ProcedureIO& io) {
  const auto paths = split_csv(opts.str("merge", ""));
  if (paths.empty()) {
    printf_to(io.err, "--merge needs a comma-separated shard file list\n");
    return 2;
  }
  std::vector<std::ifstream> files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    files.emplace_back(path, std::ios::binary);
    if (!files.back()) {
      printf_to(io.err, "cannot open %s\n", path.c_str());
      return 1;
    }
  }
  std::vector<std::istream*> inputs;
  inputs.reserve(files.size());
  for (auto& file : files) inputs.push_back(&file);
  // K-way streaming merge: rows flow shard-file → writer one at a time,
  // so merging a million-cell campaign needs O(shards) memory.
  return run_campaign_streamed(
      [&](ReportSink& sink) { merge_report_streams(inputs, sink); }, opts, io,
      /*note_partial=*/true);
}

/// The worker argv for subprocess shards: this campaign invocation's grid
/// flags, minus everything that controls execution or output — the worker
/// re-expands the same deterministic grid and adds its own --shard/--json.
/// Rebuilt from the flag map (sorted key order); grid expansion does not
/// depend on flag order, so the worker's plan is identical.
std::vector<std::string> shard_worker_args(const Args& opts) {
  static const std::set<std::string> kControlKeys{
      "backend", "shards", "shard", "merge", "threads", "json", "out"};
  std::vector<std::string> args;
  for (const auto& [key, value] : opts.values) {
    if (kControlKeys.count(key) > 0) continue;
    args.push_back("--" + key);
    if (value != "1") args.push_back(value);
  }
  return args;
}

int cmd_campaign(const Request& req, const ProcedureContext& ctx,
                 ProcedureIO& io) {
  const Args& opts = req.args;
  if (opts.has("merge")) return cmd_campaign_merge(opts, io);
  CampaignConfig config;
  if (opts.has("fault-sweep")) config = default_fault_sweep_config();
  if (opts.has("generators")) {
    config.generators = split_csv(opts.str("generators", ""));
  }
  if (opts.has("protocols")) {
    config.protocols = split_csv(opts.str("protocols", ""));
  }
  if (opts.has("sizes")) {
    config.sizes.clear();
    for (const auto s : parse_u64_csv(opts.str("sizes", ""))) {
      config.sizes.push_back(s);
    }
  }
  if (opts.has("seeds")) {
    config.seeds.clear();
    for (std::uint64_t s = 1; s <= opts.num("seeds", 4); ++s) {
      config.seeds.push_back(s);
    }
  }
  if (opts.has("seed-list")) {
    config.seeds = parse_u64_csv(opts.str("seed-list", ""));
  }
  config.k = static_cast<unsigned>(opts.num("k", config.k));
  config.p = opts.real("p", config.p);
  config.rounds = static_cast<unsigned>(opts.num("rounds", config.rounds));
  FaultAxes axes;
  if (opts.has("flips")) axes.flips = parse_double_csv(opts.str("flips", ""));
  if (opts.has("truncs")) {
    axes.truncs = parse_double_csv(opts.str("truncs", ""));
  }
  if (opts.has("drops")) axes.drops = parse_double_csv(opts.str("drops", ""));
  if (opts.has("dups")) axes.dups = parse_unsigned_csv(opts.str("dups", ""));
  if (opts.has("swaps")) {
    axes.swaps = parse_unsigned_csv(opts.str("swaps", ""));
  }
  if (opts.has("stales")) {
    axes.stales = parse_unsigned_csv(opts.str("stales", ""));
  }
  if (opts.has("adaptive-budget")) {
    axes.adaptive_budgets = parse_unsigned_csv(opts.str("adaptive-budget", ""));
  }
  const bool any_fault_axis = opts.has("flips") || opts.has("truncs") ||
                              opts.has("drops") || opts.has("dups") ||
                              opts.has("swaps") || opts.has("stales") ||
                              opts.has("adaptive-budget");
  if (any_fault_axis || !opts.has("fault-sweep")) {
    config.fault_plans = expand_fault_axes(axes);
  }

  for (const auto& generator : config.generators) {
    const auto& known = campaign_generators();
    if (!is_file_generator(generator) &&
        std::find(known.begin(), known.end(), generator) == known.end()) {
      printf_to(io.err, "unknown generator: %s\n", generator.c_str());
      return 2;
    }
  }
  for (const auto& protocol : config.protocols) {
    const auto& known = campaign_protocols();
    if (std::find(known.begin(), known.end(), protocol) == known.end() &&
        !is_multi_round_protocol(protocol)) {
      printf_to(io.err, "unknown protocol: %s\n", protocol.c_str());
      return 2;
    }
  }

  CampaignPlan plan(config);
  if (opts.has("shard")) {
    try {
      const ShardSpec shard = parse_shard_spec(opts.str("shard", ""));
      plan = plan.shard(shard.index, shard.count);
    } catch (const CheckError& e) {
      printf_to(io.err, "--shard: %s\n", e.what());
      return 2;
    }
  }

  const std::string backend_name = opts.str("backend", "pool");
  if (backend_name == "subprocess") {
    if (opts.has("shard")) {
      printf_to(io.err,
                "--backend subprocess shards the plan itself; drop "
                "--shard\n");
      return 2;
    }
    const auto shards = static_cast<unsigned>(opts.num("shards", 4));
    auto worker_args = shard_worker_args(opts);
    if (opts.has("threads")) {
      // Split the requested budget across workers instead of letting each
      // one default to a full hardware-sized pool.
      const auto total = static_cast<unsigned>(opts.num("threads", 0));
      worker_args.push_back("--threads");
      worker_args.push_back(std::to_string(std::max(1u, total / shards)));
    }
    const SubprocessShardBackend backend(ctx.exe, std::move(worker_args),
                                         shards);
    // run_to streams worker rows through the k-way merge into the output
    // sink, so the coordinator never materializes the full grid.
    return run_campaign_streamed(
        [&](ReportSink& sink) { backend.run_to(plan, sink); }, opts, io);
  }
  if (backend_name != "pool") {
    printf_to(io.err, "unknown backend: %s (pool, subprocess)\n",
              backend_name.c_str());
    return 2;
  }

  // Pool selection: an explicit --threads wins (1 means sequential). With
  // no --threads, a served request reuses the core's persistent inner pool
  // (possibly none — then cells run sequentially on the service worker,
  // whose thread_local DecodeArena stays warm across requests), while the
  // batch CLI keeps its historical hardware-sized private pool.
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = nullptr;
  if (opts.has("threads")) {
    const auto threads = static_cast<std::size_t>(opts.num("threads", 0));
    if (threads != 1) {
      own_pool = std::make_unique<ThreadPool>(threads);
      pool = own_pool.get();
    }
  } else if (ctx.core != nullptr) {
    pool = ctx.pool;
  } else {
    own_pool = std::make_unique<ThreadPool>(0);
    pool = own_pool.get();
  }
  // Intra-cell pool: --cell-threads N lets each executing cell shard its
  // transcript parse and frontier decodes N ways — the lever when big
  // file-backed cells underfill the grid. Always a pool distinct from the
  // grid pool (a grid worker blocking on its own pool can deadlock), shared
  // by all grid workers; reports are bit-identical for every value.
  std::unique_ptr<ThreadPool> own_cell_pool;
  if (opts.has("cell-threads")) {
    const auto cell_threads =
        static_cast<std::size_t>(opts.num("cell-threads", 1));
    if (cell_threads != 1) {
      own_cell_pool = std::make_unique<ThreadPool>(cell_threads);
    }
  }
  ThreadPoolBackend backend(pool);
  if (own_cell_pool) backend.set_cell_pool(own_cell_pool.get());
  if (opts.has("capture-dir")) {
    // Persist every cell's post-injection wire transcript for offline
    // replay (`refereectl transcript decode`). Capture is keyed by the
    // stable cell id, so sharded runs over the same grid never collide.
    const std::string dir = opts.str("capture-dir", ".");
    backend.set_capture([dir](std::size_t cell_id, unsigned round,
                              std::uint64_t epoch, std::uint32_t n,
                              std::span<const Message> wire) {
      (void)n;
      // Round 0 keeps the historical name so single-round replay tooling
      // finds it unchanged; later rounds of multi-round cells get a
      // round-suffixed sibling.
      const std::string suffix =
          round == 0 ? ".rtr" : ".r" + std::to_string(round) + ".rtr";
      write_transcript_file(
          dir + "/cell-" + std::to_string(cell_id) + suffix, epoch, wire);
    });
  }
  return run_campaign_streamed(
      [&](ReportSink& sink) { backend.run_to(plan, sink); }, opts, io);
}

/// A single cell spec from CLI flags — the same axes a campaign JSON row
/// records, so a captured cell's identity round-trips through the shell.
ScenarioSpec spec_from_args(const Args& opts) {
  ScenarioSpec spec;
  spec.generator = opts.str("generator", spec.generator);
  spec.n = static_cast<std::size_t>(opts.num("n", spec.n));
  spec.k = static_cast<unsigned>(opts.num("k", spec.k));
  spec.p = opts.real("p", spec.p);
  spec.protocol = opts.str("protocol", spec.protocol);
  spec.seed = opts.num("seed", spec.seed);
  spec.faults.bit_flip_chance = opts.real("flip", 0.0);
  spec.faults.truncate_chance = opts.real("trunc", 0.0);
  spec.faults.correlated.drop_fraction = opts.real("drop", 0.0);
  spec.faults.correlated.duplicate_ids =
      static_cast<unsigned>(opts.num("dup", 0));
  spec.faults.correlated.payload_swaps =
      static_cast<unsigned>(opts.num("swap", 0));
  spec.faults.correlated.stale_replays =
      static_cast<unsigned>(opts.num("stale", 0));
  spec.faults.adaptive.budget =
      static_cast<unsigned>(opts.num("adaptive-budget", 0));
  spec.rounds = static_cast<unsigned>(opts.num("rounds", 0));
  return spec;
}

int cmd_transcript_capture(const Request& req, const ProcedureContext&,
                           ProcedureIO& io) {
  const ScenarioSpec spec = spec_from_args(req.args);
  const std::string out = req.args.str("out", "cell.rtr");
  const Simulator sim;
  std::vector<Message> transcript;
  bool captured = false;
  // Multi-round cells fire once per round: round 0 takes the requested
  // name, later rounds insert .r<round> before the extension (or append
  // it), mirroring the campaign --capture-dir naming.
  const TranscriptSink sink = [&](unsigned round, std::uint64_t epoch,
                                  std::uint32_t n,
                                  std::span<const Message> wire) {
    std::string path = out;
    if (round != 0) {
      const std::string infix = ".r" + std::to_string(round);
      const auto dot = path.rfind('.');
      if (dot == std::string::npos) {
        path += infix;
      } else {
        path.insert(dot, infix);
      }
    }
    write_transcript_file(path, epoch, wire);
    printf_to(io.err, "captured %u sealed message(s), round %u, epoch %llx\n",
              n, round, static_cast<unsigned long long>(epoch));
    captured = true;
  };
  const ScenarioResult res = run_scenario(
      spec, sim, transcript, DecodeArena::for_current_thread(), &sink);
  if (!captured) {
    printf_to(io.err, "cell finished without sealing a transcript\n");
    return 1;
  }
  printf_to(io.err, "%s/%s cell -> %s (outcome %s)\n", spec.generator.c_str(),
            spec.protocol.c_str(), out.c_str(), res.outcome.c_str());
  return res.outcome == "silent-wrong" ? 1 : 0;
}

int cmd_transcript_decode(const Request& req, const ProcedureContext&,
                          ProcedureIO& io) {
  const ScenarioSpec spec = spec_from_args(req.args);
  const std::string in = req.args.str("in", "cell.rtr");
  // Multi-round cells replay from one file per round: --in takes the
  // comma-separated round files in order.
  const ScenarioResult res = is_multi_round_protocol(spec.protocol)
                                 ? replay_scenario(spec, split_csv(in))
                                 : replay_scenario(spec, in);
  printf_to(io.out, "outcome      %s\n", res.outcome.c_str());
  if (!res.detail.empty()) {
    printf_to(io.out, "detail       %s\n", res.detail.c_str());
  }
  printf_to(io.out, "contract_ok  %s\n", res.contract_ok ? "yes" : "NO");
  printf_to(io.out, "max_bits     %zu\n", res.report.max_bits);
  return res.contract_ok ? 0 : 1;
}

int cmd_selftest(const Request&, const ProcedureContext&, ProcedureIO& io) {
  Rng rng(99);
  const Graph g = gen::random_apollonian(40, rng);
  const Simulator sim;
  const Graph h = sim.run_reconstruction(g, DegeneracyReconstruction(3));
  const bool recon_ok = h == g;
  const bool sketch_ok = sim.run_decision(
      gen::connected_gnp(50, 0.08, rng),
      SketchConnectivityProtocol(
          SketchParams{.seed = 5, .rounds = 0, .copies = 4}));
  printf_to(io.out, "reconstruction: %s\nsketch connectivity: %s\n",
            recon_ok ? "ok" : "FAIL", sketch_ok ? "ok" : "FAIL");
  return recon_ok && sketch_ok ? 0 : 1;
}

/// The serve signal bridge: SIGTERM/SIGINT write one byte to the server's
/// shutdown pipe (write() is async-signal-safe), which the accept loop
/// polls. Plain volatile sig_atomic_t — no locks in the handler.
volatile sig_atomic_t g_serve_shutdown_fd = -1;

void serve_signal_handler(int) {
  const int fd = g_serve_shutdown_fd;
  if (fd >= 0) {
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

int cmd_serve(const Request& req, const ProcedureContext& ctx,
              ProcedureIO& io) {
  if (!req.args.has("socket")) {
    printf_to(io.err, "serve needs --socket PATH\n");
    return 2;
  }
  ServiceCore::Config config;
  config.workers = static_cast<std::size_t>(req.args.num("workers", 2));
  config.queue_capacity = static_cast<std::size_t>(req.args.num("queue", 64));
  config.batch_max = static_cast<std::size_t>(req.args.num("batch", 8));
  config.pool_threads =
      static_cast<std::size_t>(req.args.num("pool-threads", 0));
  config.exe = ctx.exe;
  ServiceCore core(config);
  ServiceServer server(
      ServiceServer::Config{req.args.str("socket", ""), &core});
  g_serve_shutdown_fd = server.shutdown_write_fd();
  struct sigaction action {};
  action.sa_handler = serve_signal_handler;
  struct sigaction old_term {};
  struct sigaction old_int {};
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);
  const int rc = server.serve(io.err);
  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  g_serve_shutdown_fd = -1;
  return rc;
}

int cmd_call_stub(const Request&, const ProcedureContext&, ProcedureIO& io) {
  printf_to(io.err,
            "call is the CLI client driver; invoke it as `refereectl call "
            "--socket PATH <procedure> [flags]`\n");
  return 2;
}

int cmd_service_stats(const Request&, const ProcedureContext& ctx,
                      ProcedureIO& io) {
  if (ctx.core == nullptr) {
    printf_to(io.err,
              "service stats reads a live daemon's counters; start one with "
              "`refereectl serve --socket PATH` and use `refereectl call "
              "--socket PATH service stats`\n");
    return 2;
  }
  io.out << format_service_stats(ctx.core->stats());
  return 0;
}

// ---------------------------------------------------------------------------
// The table. Flag inventories first (shared ones factored), then the rows.

constexpr Flag kGenFlags[] = {
    {"n", "N", "vertex count (default 32)"},
    {"m", "M", "edge count, gnm only (default 2n)"},
    {"k", "K", "degeneracy parameter, kdeg/ktree (default 3)"},
    {"p", "P", "edge probability, gnp/bipartite (default 0.1)"},
    {"seed", "S", "RNG seed (default 1)"},
    {"arity", "A", "fattree switch arity (default 4)"},
    {"rows", "R", "grid/torus rows (default 4)"},
    {"dims", "D", "hypercube dimensions (default 4)"},
    {"drop", "F", "forest edge-drop fraction (default 0.2)"},
    {"exact", "", "kdeg: force degeneracy exactly k"},
    {"hosts", "", "fattree: include host leaves"},
    {"attempts", "T", "squarefree insertion attempts (default 30n)"},
};

constexpr Flag kGraphGenFlags[] = {
    {"n", "N", "vertex count (default 32)"},
    {"m", "M", "edge count, gnm only (default 2n)"},
    {"k", "K", "degeneracy parameter, kdeg/ktree (default 3)"},
    {"p", "P", "edge probability, gnp/bipartite (default 0.1)"},
    {"seed", "S", "RNG seed (default 1)"},
    {"arity", "A", "fattree switch arity (default 4)"},
    {"rows", "R", "grid/torus rows (default 4)"},
    {"dims", "D", "hypercube dimensions (default 4)"},
    {"drop", "F", "forest edge-drop fraction (default 0.2)"},
    {"exact", "", "kdeg: force degeneracy exactly k"},
    {"hosts", "", "fattree: include host leaves"},
    {"attempts", "T", "squarefree insertion attempts (default 30n)"},
    {"out", "FILE", "binary edge file to write (-o works too)"},
};

constexpr Flag kGraphPackFlags[] = {
    {"out", "FILE", "binary edge file to write (-o works too)"},
};

constexpr Flag kReconstructFlags[] = {
    {"k", "K", "degeneracy bound (default 3)"},
    {"decoder", "KIND", "newton | fast | table (default newton)"},
    {"threads", "T", "decode thread pool size (default 0 = hardware)"},
};

constexpr Flag kRecognizeFlags[] = {
    {"k", "K", "degeneracy bound to decide (default 3)"},
};

constexpr Flag kConnectivityFlags[] = {
    {"seed", "S", "sketch seed (default 0xC0FFEE)"},
    {"copies", "C", "sketch copies per node (default 3)"},
};

constexpr Flag kKconnFlags[] = {
    {"k", "K", "edge-connectivity bound (default 2)"},
    {"seed", "S", "sketch seed (default 0xC0DE)"},
    {"copies", "C", "sketch copies per forest (default 4)"},
};

constexpr Flag kBipartiteFlags[] = {
    {"seed", "S", "sketch seed (default 0xB1B)"},
    {"copies", "C", "sketch copies per node (default 3)"},
};

constexpr Flag kReduceFlags[] = {
    {"via", "KIND", "square | triangle | diameter (default diameter)"},
};

constexpr Flag kCaptureFlags[] = {
    {"k", "K", "degeneracy bound (default 3)"},
    {"out", "FILE", "transcript file to write (default transcript.rft)"},
};

constexpr Flag kDecodeTranscriptFlags[] = {
    {"k", "K", "degeneracy bound (default 3)"},
    {"in", "FILE", "transcript file to read (default transcript.rft)"},
};

constexpr Flag kCampaignFlags[] = {
    {"generators", "A,B", "generator axis (default kdeg,tree,gnp,apollonian)"},
    {"sizes", "N,M", "vertex-count axis (default 24,48)"},
    {"protocols", "X,Y", "protocol axis (campaign or multi-round names)"},
    {"seeds", "N", "seed axis 1..N (default 4)"},
    {"seed-list", "A,B", "explicit seed axis (overrides --seeds)"},
    {"flips", "P,Q", "bit-flip chance axis (default 0)"},
    {"truncs", "P,Q", "truncation chance axis (default 0)"},
    {"drops", "P,Q", "correlated drop-fraction axis (default 0)"},
    {"dups", "N,M", "duplicate-id count axis (default 0)"},
    {"swaps", "N,M", "payload-swap count axis (default 0)"},
    {"stales", "N,M", "stale-replay count axis (default 0)"},
    {"adaptive-budget", "N,M", "adaptive adversary strike budget axis"},
    {"rounds", "R", "round cap for multi-round cells (default 6)"},
    {"k", "K", "degeneracy parameter (default 3)"},
    {"p", "P", "gnp edge probability (default 0.1)"},
    {"threads", "T", "pool size; 1 = sequential (default 0 = hardware)"},
    {"cell-threads", "N",
     "intra-cell pool: parallel parse/decode inside each cell; 1 = off "
     "(default), 0 = hardware"},
    {"json", "", "emit the referee-campaign-v3 JSON report"},
    {"out", "FILE", "stream the JSON report to FILE"},
    {"fault-sweep", "", "run the default 200-cell contract sweep"},
    {"shard", "k/N", "run only shard k of N (mergeable shard report)"},
    {"backend", "NAME", "pool | subprocess (default pool)"},
    {"shards", "N", "subprocess backend: worker count (default 4)"},
    {"merge", "A,B", "k-way merge shard report files instead of running"},
    {"capture-dir", "DIR", "seal each cell's wire transcript into DIR"},
};

constexpr Flag kTranscriptCaptureFlags[] = {
    {"generator", "G", "cell generator (campaign name or file:PATH)"},
    {"n", "N", "cell size"},
    {"k", "K", "degeneracy parameter"},
    {"p", "P", "gnp edge probability"},
    {"protocol", "NAME", "cell protocol (campaign or multi-round name)"},
    {"seed", "S", "cell seed"},
    {"flip", "P", "bit-flip chance"},
    {"trunc", "P", "truncation chance"},
    {"drop", "P", "correlated drop fraction"},
    {"dup", "N", "duplicate-id count"},
    {"swap", "N", "payload-swap count"},
    {"stale", "N", "stale-replay count"},
    {"adaptive-budget", "N", "adaptive adversary strike budget"},
    {"rounds", "R", "round cap for multi-round protocols"},
    {"out", "FILE", "sealed transcript to write (default cell.rtr)"},
};

constexpr Flag kTranscriptDecodeFlags[] = {
    {"generator", "G", "cell generator (campaign name or file:PATH)"},
    {"n", "N", "cell size"},
    {"k", "K", "degeneracy parameter"},
    {"p", "P", "gnp edge probability"},
    {"protocol", "NAME", "cell protocol (campaign or multi-round name)"},
    {"seed", "S", "cell seed"},
    {"flip", "P", "bit-flip chance"},
    {"trunc", "P", "truncation chance"},
    {"drop", "P", "correlated drop fraction"},
    {"dup", "N", "duplicate-id count"},
    {"swap", "N", "payload-swap count"},
    {"stale", "N", "stale-replay count"},
    {"adaptive-budget", "N", "adaptive adversary strike budget"},
    {"rounds", "R", "round cap for multi-round protocols"},
    {"in", "FILE", "sealed transcript(s); multi-round: file,per,round"},
};

constexpr Flag kServeFlags[] = {
    {"socket", "PATH", "Unix-domain socket to listen on (required)"},
    {"workers", "N", "service worker threads (default 2)"},
    {"queue", "N", "bounded request queue capacity (default 64)"},
    {"batch", "N", "max coalesced batch of small decodes (default 8)"},
    {"pool-threads", "N", "inner pool for batches/campaigns (default 0)"},
};

constexpr Flag kCallFlags[] = {
    {"socket", "PATH", "daemon socket to connect to (required)"},
};

constexpr ProcedureDesc kProcedures[] = {
    {"gen", "generate a graph family as edge-list text", "family", false,
     false, false, kGenFlags, cmd_gen},
    {"graph gen", "generate a family straight to a binary edge file",
     "family", false, false, false, kGraphGenFlags, cmd_graph_gen},
    {"graph pack", "pack edge-list text into a binary edge file", "", true,
     false, false, kGraphPackFlags, cmd_graph_pack},
    {"info", "structural report (degeneracy, diameter, ...)", "", true, false,
     false, {}, cmd_info},
    {"stats", "what 2 log n bits/node buy (degree statistics)", "", true,
     false, false, {}, cmd_stats},
    {"reconstruct", "one-round degeneracy reconstruction via the referee",
     "", true, false, false, kReconstructFlags, cmd_reconstruct},
    {"recognize", "one-round \"degeneracy <= K?\" decision", "", true, false,
     false, kRecognizeFlags, cmd_recognize},
    {"adaptive", "multi-round reconstruction, k discovered", "", true, false,
     false, {}, cmd_adaptive},
    {"connectivity", "sketch connectivity (components + spanning forest)",
     "", true, false, false, kConnectivityFlags, cmd_connectivity},
    {"kconn", "k-edge-connectivity via sketch peeling", "", true, false,
     false, kKconnFlags, cmd_kconn},
    {"bipartite", "sketch bipartiteness decision", "", true, false, false,
     kBipartiteFlags, cmd_bipartite},
    {"reduce", "run a Δ-reduction protocol (square/triangle/diameter)", "",
     true, false, false, kReduceFlags, cmd_reduce},
    {"capture", "run the local phase, save the transcript", "", true, false,
     false, kCaptureFlags, cmd_capture},
    {"decode-transcript", "referee decode of a saved transcript, offline",
     "", false, false, true, kDecodeTranscriptFlags, cmd_decode_transcript},
    {"transcript capture", "run one campaign cell, seal its wire transcript",
     "", false, false, false, kTranscriptCaptureFlags, cmd_transcript_capture},
    {"transcript decode", "replay a sealed cell transcript offline", "",
     false, false, true, kTranscriptDecodeFlags, cmd_transcript_decode},
    {"campaign", "run a deterministic scenario grid (same flags, same bytes)",
     "", false, false, false, kCampaignFlags, cmd_campaign},
    {"selftest", "quick end-to-end sanity run", "", false, false, false, {},
     cmd_selftest},
    {"serve", "long-lived daemon on a Unix socket (JSON frames)", "", false,
     true, false, kServeFlags, cmd_serve},
    {"call", "send one procedure to a running daemon", "procedure", false,
     true, false, kCallFlags, cmd_call_stub},
    {"service stats", "live daemon counters (latency, sheds, batches)", "",
     false, false, false, {}, cmd_service_stats},
};

}  // namespace

std::span<const ProcedureDesc> procedure_table() { return kProcedures; }

}  // namespace referee
