#include "service/service_core.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/arena.hpp"
#include "support/thread_pool.hpp"

namespace referee {

namespace {

ServiceResponse immediate(ServiceStatus status, int exit_code,
                          std::string log) {
  ServiceResponse response;
  response.status = status;
  response.exit_code = exit_code;
  response.log = std::move(log);
  return response;
}

std::future<ServiceResponse> ready_future(ServiceResponse response) {
  std::promise<ServiceResponse> promise;
  auto future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

}  // namespace

ServiceCore::ServiceCore(const Config& config,
                         std::span<const ProcedureDesc> table)
    : config_(config),
      table_(table),
      queue_(config.queue_capacity),
      counters_(new Counters[table.size()]),
      worker_arena_growth_(
          new std::atomic<std::uint64_t>[std::max<std::size_t>(
              1, config.workers)]) {
  if (config_.workers == 0) config_.workers = 1;
  for (std::size_t i = 0; i < config_.workers; ++i) {
    worker_arena_growth_[i].store(0, std::memory_order_relaxed);
  }
  if (config_.pool_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.pool_threads);
  }
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServiceCore::~ServiceCore() { drain(); }

void ServiceCore::drain() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  if (drained_.load()) return;
  queue_.close();
  for (auto& worker : workers_) worker.join();
  drained_.store(true);
}

std::future<ServiceResponse> ServiceCore::submit(Request request) {
  const ProcedureDesc* desc = nullptr;
  std::size_t slot = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (table_[i].name == request.proc) {
      desc = &table_[i];
      slot = i;
      break;
    }
  }
  if (desc == nullptr) {
    rejected_unknown_.fetch_add(1, std::memory_order_relaxed);
    return ready_future(immediate(ServiceStatus::kUnknownProcedure, 2,
                                  "unknown procedure: " + request.proc +
                                      "\n"));
  }
  if (desc->local_only) {
    rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
    return ready_future(immediate(
        ServiceStatus::kBadRequest, 2,
        request.proc + " runs only in the CLI driver, not in the service\n"));
  }
  const std::string invalid = validate_args(*desc, request.args);
  if (!invalid.empty()) {
    rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
    return ready_future(
        immediate(ServiceStatus::kBadRequest, 2, invalid + "\n"));
  }
  Counters& counters = counters_[slot];
  counters.requests.fetch_add(1, std::memory_order_relaxed);
  Job job;
  job.request = std::move(request);
  job.desc = desc;
  job.slot = slot;
  job.enqueued = std::chrono::steady_clock::now();
  auto future = job.promise.get_future();
  if (!queue_.try_push(std::move(job))) {
    // Shed: the queue is full (or draining). The job was not consumed, so
    // its promise still answers — typed refusal, never an unbounded wait.
    counters.shed.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(immediate(
        ServiceStatus::kOverloaded, 3,
        "overloaded: service queue full (capacity " +
            std::to_string(queue_.capacity()) + "), request shed\n"));
  }
  return future;
}

ServiceResponse ServiceCore::call(Request request) {
  return submit(std::move(request)).get();
}

void ServiceCore::worker_loop(std::size_t worker_index) {
  for (;;) {
    auto first = queue_.pop();
    if (!first) return;  // closed and drained
    std::vector<Job> batch;
    batch.push_back(std::move(*first));
    const ProcedureDesc* desc = batch.front().desc;
    if (desc->batchable) {
      while (batch.size() < config_.batch_max) {
        auto next = queue_.try_pop_if(
            [desc](const Job& job) { return job.desc == desc; });
        if (!next) break;
        batch.push_back(std::move(*next));
      }
    }
    if (batch.size() > 1) {
      Counters& counters = counters_[batch.front().slot];
      counters.batches.fetch_add(1, std::memory_order_relaxed);
      counters.batched.fetch_add(batch.size(), std::memory_order_relaxed);
    }
    if (pool_ && batch.size() > 1) {
      // One pool wakeup for the whole coalesced run.
      pool_->parallel_for(
          0, batch.size(), [&](std::size_t i) { run_job(batch[i]); },
          /*grain=*/1);
    } else {
      for (auto& job : batch) run_job(job);
    }
    worker_arena_growth_[worker_index].store(
        DecodeArena::for_current_thread().growth_events(),
        std::memory_order_relaxed);
    // Answer only after the growth slot is published: a caller that calls
    // stats() the moment its future resolves must see this job's arenas.
    for (auto& job : batch) job.promise.set_value(std::move(job.response));
  }
}

void ServiceCore::run_job(Job& job) {
  std::ostringstream out;
  std::ostringstream err;
  ProcedureIO io{out, err};
  ProcedureContext context;
  context.exe = config_.exe;
  context.pool = pool_.get();
  context.core = this;
  ServiceResponse response;
  try {
    response.exit_code = job.desc->handler(job.request, context, io);
    response.status = response.exit_code == 0 ? ServiceStatus::kOk
                                              : ServiceStatus::kError;
  } catch (const std::exception& e) {
    response.exit_code = 1;
    response.status = ServiceStatus::kError;
    err << "error: " << e.what() << "\n";
  }
  response.output = out.str();
  response.log = err.str();
  Counters& counters = counters_[job.slot];
  if (response.status == ServiceStatus::kOk) {
    counters.ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters.errors.fetch_add(1, std::memory_order_relaxed);
  }
  const auto micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - job.enqueued)
          .count());
  counters.total_micros.fetch_add(micros, std::memory_order_relaxed);
  std::uint64_t seen = counters.max_micros.load(std::memory_order_relaxed);
  while (micros > seen &&
         !counters.max_micros.compare_exchange_weak(
             seen, micros, std::memory_order_relaxed)) {
  }
  job.response = std::move(response);
}

ServiceStatsSnapshot ServiceCore::stats() {
  ServiceStatsSnapshot snapshot;
  snapshot.workers = config_.workers;
  snapshot.pool_threads = pool_ ? pool_->size() : 0;
  snapshot.queue_capacity = queue_.capacity();
  snapshot.queue_depth = queue_.size();
  snapshot.batch_max = config_.batch_max;
  snapshot.rejected_unknown = rejected_unknown_.load();
  snapshot.rejected_bad_request = rejected_bad_request_.load();
  for (std::size_t i = 0; i < config_.workers; ++i) {
    snapshot.arena_growth_events += worker_arena_growth_[i].load();
  }
  if (pool_) {
    // Each inner-pool thread reports its own thread_local arena; the
    // barrier probe pins one visit per worker thread.
    std::vector<std::uint64_t> growth(pool_->size(), 0);
    pool_->for_each_worker([&](std::size_t i) {
      growth[i] = DecodeArena::for_current_thread().growth_events();
    });
    for (const auto value : growth) snapshot.arena_growth_events += value;
  }
  snapshot.procedures.reserve(table_.size());
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (table_[i].local_only) continue;
    const Counters& counters = counters_[i];
    ServiceProcedureStats row;
    row.name = std::string(table_[i].name);
    row.requests = counters.requests.load();
    row.ok = counters.ok.load();
    row.errors = counters.errors.load();
    row.shed = counters.shed.load();
    row.batches = counters.batches.load();
    row.batched = counters.batched.load();
    row.total_micros = counters.total_micros.load();
    row.max_micros = counters.max_micros.load();
    snapshot.procedures.push_back(std::move(row));
  }
  return snapshot;
}

std::string format_service_stats(const ServiceStatsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"referee-service-stats\":1,\"workers\":" << snapshot.workers
      << ",\"pool_threads\":" << snapshot.pool_threads
      << ",\"queue_capacity\":" << snapshot.queue_capacity
      << ",\"queue_depth\":" << snapshot.queue_depth
      << ",\"batch_max\":" << snapshot.batch_max
      << ",\"arena_growth_events\":" << snapshot.arena_growth_events
      << ",\"rejected_unknown\":" << snapshot.rejected_unknown
      << ",\"rejected_bad_request\":" << snapshot.rejected_bad_request
      << ",\"procedures\":[";
  for (std::size_t i = 0; i < snapshot.procedures.size(); ++i) {
    const ServiceProcedureStats& row = snapshot.procedures[i];
    if (i != 0) out << ',';
    out << "{\"name\":\"" << row.name << "\",\"requests\":" << row.requests
        << ",\"ok\":" << row.ok << ",\"errors\":" << row.errors
        << ",\"shed\":" << row.shed << ",\"batches\":" << row.batches
        << ",\"batched\":" << row.batched
        << ",\"total_micros\":" << row.total_micros
        << ",\"max_micros\":" << row.max_micros << "}";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace referee
