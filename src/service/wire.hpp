// The refereectl serve wire protocol.
//
// One frame = a 4-byte little-endian u32 payload length followed by that
// many bytes of UTF-8 JSON. Requests name a procedure from the table plus
// its flag map (all values strings, exactly the CLI's flag grammar) and,
// for graph-reading procedures, the edge-list text that the batch CLI
// would read on stdin:
//
//   {"proc":"campaign","args":{"generators":"tree","json":"1"},"input":""}
//
// Responses carry a typed status — "ok", "error", "overloaded" (admission
// control shed the request), "bad-request" (unknown flag / local-only
// procedure / malformed frame), "unknown-procedure" — plus the procedure's
// exit code and its captured output (stdout bytes) and log (stderr bytes):
//
//   {"status":"ok","exit":0,"output":"...","log":"..."}
//
// The JSON reader/writer below is deliberately rigid: it parses exactly
// these two shapes (flat objects of strings plus one integer field) and
// nothing else, so the daemon carries no JSON-library dependency and a
// malformed frame fails loudly as bad-request instead of half-parsing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/procedure.hpp"

namespace referee {

enum class ServiceStatus {
  kOk,
  kError,
  kOverloaded,
  kBadRequest,
  kUnknownProcedure,
};

/// Wire spelling of a status ("ok", "overloaded", ...).
std::string_view service_status_name(ServiceStatus status);

/// Inverse of service_status_name; throws CheckError on anything else.
ServiceStatus service_status_from_name(std::string_view name);

/// What the service answers with — for every request, shed or served.
struct ServiceResponse {
  ServiceStatus status = ServiceStatus::kOk;
  int exit_code = 0;
  std::string output;  // the procedure's stdout bytes
  std::string log;     // the procedure's stderr bytes
};

/// JSON string escaping for the two formatters ('"', '\\', control bytes).
std::string json_escape(std::string_view text);

std::string format_request(const Request& request);
std::string format_response(const ServiceResponse& response);

/// Strict parsers for exactly the shapes the formatters emit (field order
/// free, unknown fields rejected). Throw CheckError on malformed input.
Request parse_request(std::string_view json);
ServiceResponse parse_response(std::string_view json);

/// Frame cap: a response embedding a whole campaign JSON fits easily, a
/// corrupt length prefix does not get to allocate gigabytes.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Read one length-prefixed frame from `fd` into `payload`. Returns false
/// on clean EOF at a frame boundary; throws CheckError on truncation, I/O
/// errors, or an oversized length prefix.
bool read_frame(int fd, std::string& payload);

/// Write one length-prefixed frame; throws CheckError on I/O errors or an
/// oversized payload.
void write_frame(int fd, std::string_view payload);

/// A blocking Unix-domain-socket client for the daemon: connect once, then
/// call() per request. This is what `refereectl call` and the service
/// smoke tests speak.
class ServiceClient {
 public:
  /// Connects to the daemon's socket; throws CheckError when the daemon
  /// is not there.
  explicit ServiceClient(const std::string& socket_path);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// One round trip: frame the request, read the response frame. Throws
  /// CheckError when the daemon hangs up mid-call.
  ServiceResponse call(const Request& request);

 private:
  int fd_ = -1;
};

}  // namespace referee
