// refereectl serve — the Unix-domain-socket front of a ServiceCore.
//
// One listener thread (the caller of serve()) accepts connections and
// hands each to its own connection thread; a connection reads
// length-prefixed JSON request frames (service/wire.hpp), runs them
// through the core, and writes one response frame per request, in order.
// Admission control lives entirely in the core — a connection thread
// blocks only on its *own* in-flight request, while a full queue answers
// new requests instantly with kOverloaded.
//
// Shutdown is a drain, not an abort: request_shutdown() (or one byte
// written to shutdown_write_fd(), which is all a SIGTERM handler does)
// stops the accept loop, half-closes every live connection (the response
// in flight still goes out; the next read sees EOF), joins the connection
// threads, and drains the core so every admitted request completes before
// serve() returns 0.
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace referee {

class ServiceCore;

class ServiceServer {
 public:
  struct Config {
    std::string socket_path;
    ServiceCore* core = nullptr;
  };

  explicit ServiceServer(Config config);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Bind, listen, accept until shutdown is requested, then drain.
  /// Lifecycle notes go to `log` (the CLI passes stderr). Returns 0 after
  /// a clean drain, 1 when the socket could not be bound.
  int serve(std::ostream& log);

  /// Ask the accept loop to stop; safe from any thread. serve() returns
  /// after the drain completes.
  void request_shutdown();

  /// The pipe a signal handler may write one byte to — write() is
  /// async-signal-safe, which request_shutdown() (it locks nothing, but
  /// allocates no memory either) is not guaranteed to be.
  int shutdown_write_fd() const { return shutdown_pipe_[1]; }

  /// True once the socket is bound and the accept loop is running —
  /// what tests poll instead of sleeping.
  bool ready() const { return ready_.load(); }

 private:
  struct Connection {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  void handle_connection(Connection* connection);
  void reap_finished_locked();

  Config config_;
  int listen_fd_ = -1;
  int shutdown_pipe_[2] = {-1, -1};
  std::atomic<bool> ready_{false};
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace referee
