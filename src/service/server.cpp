#include "service/server.hpp"

#include <cerrno>
#include <cstring>
#include <ostream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/service_core.hpp"
#include "service/wire.hpp"
#include "support/check.hpp"

namespace referee {

ServiceServer::ServiceServer(Config config) : config_(std::move(config)) {
  REFEREE_CHECK_MSG(config_.core != nullptr, "server needs a ServiceCore");
  REFEREE_CHECK_MSG(::pipe(shutdown_pipe_) == 0,
                    std::string("cannot create shutdown pipe: ") +
                        std::strerror(errno));
}

ServiceServer::~ServiceServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : shutdown_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void ServiceServer::request_shutdown() {
  const char byte = 'q';
  while (::write(shutdown_pipe_[1], &byte, 1) < 0 && errno == EINTR) {
  }
}

void ServiceServer::reap_finished_locked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load()) {
      (*it)->thread.join();
      ::close((*it)->fd);  // the joiner owns the close: no fd reuse races
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServiceServer::handle_connection(Connection* connection) {
  std::string payload;
  for (;;) {
    try {
      if (!read_frame(connection->fd, payload)) break;  // clean EOF
    } catch (const std::exception&) {
      break;  // truncated frame or reset — nothing left to answer
    }
    ServiceResponse response;
    try {
      Request request = parse_request(payload);
      response = config_.core->call(std::move(request));
    } catch (const std::exception& e) {
      response.status = ServiceStatus::kBadRequest;
      response.exit_code = 2;
      response.log = std::string("bad request: ") + e.what() + "\n";
    }
    try {
      write_frame(connection->fd, format_response(response));
    } catch (const std::exception&) {
      break;  // peer went away mid-response
    }
  }
  connection->done.store(true);
}

int ServiceServer::serve(std::ostream& log) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    log << "cannot create socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    log << "socket path too long: " << config_.socket_path << "\n";
    return 1;
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  ::unlink(config_.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    log << "cannot bind " << config_.socket_path << ": "
        << std::strerror(errno) << "\n";
    return 1;
  }
  log << "serving on " << config_.socket_path << " ("
      << config_.core->config().workers << " worker(s), queue "
      << config_.core->config().queue_capacity << ")\n";
  ready_.store(true);

  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {shutdown_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      log << "poll failed: " << std::strerror(errno) << "\n";
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown byte
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      log << "accept failed: " << std::strerror(errno) << "\n";
      break;
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_locked();
    auto connection = std::make_unique<Connection>();
    connection->fd = client;
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { handle_connection(raw); });
    connections_.push_back(std::move(connection));
  }

  // Drain: no new connections, half-close the live ones (in-flight
  // responses still go out, the next read EOFs), finish every admitted
  // request, then report.
  ready_.store(false);
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.c_str());
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RD);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> victim;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
      victim = std::move(connections_.back());
      connections_.pop_back();
    }
    victim->thread.join();
    ::close(victim->fd);
  }
  config_.core->drain();
  log << "drained; served requests completed\n";
  return 0;
}

}  // namespace referee
