#include "service/wire.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/check.hpp"

namespace referee {

std::string_view service_status_name(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk:
      return "ok";
    case ServiceStatus::kError:
      return "error";
    case ServiceStatus::kOverloaded:
      return "overloaded";
    case ServiceStatus::kBadRequest:
      return "bad-request";
    case ServiceStatus::kUnknownProcedure:
      return "unknown-procedure";
  }
  return "error";
}

ServiceStatus service_status_from_name(std::string_view name) {
  if (name == "ok") return ServiceStatus::kOk;
  if (name == "error") return ServiceStatus::kError;
  if (name == "overloaded") return ServiceStatus::kOverloaded;
  if (name == "bad-request") return ServiceStatus::kBadRequest;
  if (name == "unknown-procedure") return ServiceStatus::kUnknownProcedure;
  throw CheckError("unknown service status: " + std::string(name));
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_request(const Request& request) {
  std::ostringstream out;
  out << "{\"proc\":\"" << json_escape(request.proc) << "\",\"args\":{";
  bool first = true;
  for (const auto& [key, value] : request.args.values) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  out << "},\"input\":\"" << json_escape(request.input) << "\"}";
  return out.str();
}

std::string format_response(const ServiceResponse& response) {
  std::ostringstream out;
  out << "{\"status\":\"" << service_status_name(response.status)
      << "\",\"exit\":" << response.exit_code << ",\"output\":\""
      << json_escape(response.output) << "\",\"log\":\""
      << json_escape(response.log) << "\"}";
  return out.str();
}

namespace {

/// Cursor over a JSON payload for the two rigid shapes the wire speaks.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw CheckError("wire JSON: " + what + " at byte " + std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of frame");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_if(char c) {
    if (pos < text.size() && peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("dangling escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos + 4 > text.size()) fail("short \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The formatters only emit \u00XX for control bytes; decode the
          // BMP generally anyway (UTF-8) so hand-written frames survive.
          if (value < 0x80) {
            out += static_cast<char>(value);
          } else if (value < 0x800) {
            out += static_cast<char>(0xC0 | (value >> 6));
            out += static_cast<char>(0x80 | (value & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (value >> 12));
            out += static_cast<char>(0x80 | ((value >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (value & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  long long parse_int() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    if (pos == start || (text[start] == '-' && pos == start + 1)) {
      fail("expected an integer");
    }
    return std::stoll(std::string(text.substr(start, pos - start)));
  }

  void expect_end() {
    skip_ws();
    if (pos != text.size()) fail("trailing bytes after JSON value");
  }
};

}  // namespace

Request parse_request(std::string_view json) {
  Cursor cur{json};
  Request request;
  cur.expect('{');
  if (!cur.consume_if('}')) {
    do {
      const std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "proc") {
        request.proc = cur.parse_string();
      } else if (key == "input") {
        request.input = cur.parse_string();
      } else if (key == "args") {
        cur.expect('{');
        if (!cur.consume_if('}')) {
          do {
            const std::string arg = cur.parse_string();
            cur.expect(':');
            request.args.values[arg] = cur.parse_string();
          } while (cur.consume_if(','));
          cur.expect('}');
        }
      } else {
        cur.fail("unknown request field \"" + key + "\"");
      }
    } while (cur.consume_if(','));
    cur.expect('}');
  }
  cur.expect_end();
  if (request.proc.empty()) throw CheckError("wire JSON: request names no proc");
  return request;
}

ServiceResponse parse_response(std::string_view json) {
  Cursor cur{json};
  ServiceResponse response;
  bool saw_status = false;
  cur.expect('{');
  if (!cur.consume_if('}')) {
    do {
      const std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "status") {
        response.status = service_status_from_name(cur.parse_string());
        saw_status = true;
      } else if (key == "exit") {
        response.exit_code = static_cast<int>(cur.parse_int());
      } else if (key == "output") {
        response.output = cur.parse_string();
      } else if (key == "log") {
        response.log = cur.parse_string();
      } else {
        cur.fail("unknown response field \"" + key + "\"");
      }
    } while (cur.consume_if(','));
    cur.expect('}');
  }
  cur.expect_end();
  REFEREE_CHECK_MSG(saw_status, "wire JSON: response carries no status");
  return response;
}

namespace {

/// Full read of `want` bytes. Returns false only on EOF before the first
/// byte when `eof_ok`; any other short read throws.
bool read_exact(int fd, char* buffer, std::size_t want, bool eof_ok) {
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::read(fd, buffer + got, want - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw CheckError("wire frame truncated (peer hung up mid-frame)");
    }
    if (errno == EINTR) continue;
    throw CheckError(std::string("wire read failed: ") + std::strerror(errno));
  }
  return true;
}

}  // namespace

bool read_frame(int fd, std::string& payload) {
  char header[4];
  if (!read_exact(fd, header, sizeof(header), /*eof_ok=*/true)) return false;
  std::uint32_t length = 0;
  for (int i = 3; i >= 0; --i) {
    length = (length << 8) | static_cast<unsigned char>(header[i]);
  }
  REFEREE_CHECK_MSG(length <= kMaxFrameBytes,
                    "wire frame length " + std::to_string(length) +
                        " exceeds the " + std::to_string(kMaxFrameBytes) +
                        "-byte cap");
  payload.resize(length);
  if (length > 0) read_exact(fd, payload.data(), length, /*eof_ok=*/false);
  return true;
}

void write_frame(int fd, std::string_view payload) {
  REFEREE_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                    "wire frame payload exceeds the cap");
  const auto length = static_cast<std::uint32_t>(payload.size());
  char header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((length >> (8 * i)) & 0xFF);
  }
  const auto write_all = [fd](const char* data, std::size_t want) {
    std::size_t sent = 0;
    while (sent < want) {
      const ssize_t n = ::write(fd, data + sent, want - sent);
      if (n >= 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      throw CheckError(std::string("wire write failed: ") +
                       std::strerror(errno));
    }
  };
  write_all(header, sizeof(header));
  write_all(payload.data(), payload.size());
}

ServiceClient::ServiceClient(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  REFEREE_CHECK_MSG(fd_ >= 0, std::string("cannot create socket: ") +
                                  std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  REFEREE_CHECK_MSG(socket_path.size() < sizeof(addr.sun_path),
                    "socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw CheckError("cannot connect to " + socket_path + ": " +
                     std::strerror(err));
  }
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServiceResponse ServiceClient::call(const Request& request) {
  write_frame(fd_, format_request(request));
  std::string payload;
  REFEREE_CHECK_MSG(read_frame(fd_, payload),
                    "daemon hung up before answering");
  return parse_response(payload);
}

}  // namespace referee
