#include "reductions/reductions.hpp"

#include <numeric>

#include "support/varint.hpp"

namespace referee {

namespace {

/// Frames a Γ-message inside a Δ-message (length prefix + payload bits), so
/// Δ can bundle the several Γ evaluations Theorems 2 and 3 require.
void write_framed(BitWriter& w, const Message& m) {
  write_delta0(w, m.bit_size());
  BitReader r = m.reader();
  while (!r.exhausted()) w.write_bit(r.read_bit());
}

Message read_framed(BitReader& r) {
  const std::uint64_t bits = read_delta0(r);
  BitWriter w;
  for (std::uint64_t i = 0; i < bits; ++i) w.write_bit(r.read_bit());
  return Message::seal(std::move(w));
}

std::vector<NodeId> with_extra(std::span<const NodeId> base,
                               std::initializer_list<NodeId> extra) {
  std::vector<NodeId> out(base.begin(), base.end());
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

/// Re-encode verification (the `verified` reduction mode): a correct
/// reconstruction h re-encodes to exactly the transcript it was decoded
/// from, because Δ's local function is deterministic in the view. A
/// mismatch therefore proves the input graph was outside the reduction's
/// class (or the transcript corrupt in a way the decode absorbed) — and
/// because the oracle messages embed full adjacency lists, a matching
/// re-encode conversely pins h to the sender's graph. Loud, never wrong.
void verify_reencode(const ReconstructionProtocol& delta, const Graph& h,
                     std::span<const Message> messages) {
  const LocalViewPack views(h);
  BitWriter scratch;
  for (Vertex v = 0; v < h.vertex_count(); ++v) {
    scratch.clear();
    delta.encode(views.view(v), scratch);
    Message reencoded;
    reencoded.assign(scratch);
    if (!(reencoded == messages[v])) {
      throw DecodeError(
          DecodeFault::kStalled,
          delta.name() +
              ": reconstruction fails re-encode verification (input "
              "outside the reduction's class)");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- squares --

SquareReduction::SquareReduction(
    std::shared_ptr<const DecisionProtocol> gamma, bool verified)
    : gamma_(std::move(gamma)), verified_(verified) {
  REFEREE_CHECK_MSG(gamma_ != nullptr, "missing Γ");
}

std::string SquareReduction::name() const {
  return "square-reduction[" + gamma_->name() + "]";
}

void SquareReduction::encode(const LocalViewRef& view, BitWriter& w) const {
  // Δ^l_n(i, N) = Γ^l_{2n}(i, N ∪ {i+n}): node i's neighbourhood in G'_{s,t}
  // is the same for every (s,t) — the crux of Algorithm 1.
  const auto lifted = make_view(
      view.id, 2 * view.n, with_extra(view.neighbor_ids, {view.id + view.n}));
  gamma_->encode(lifted, w);
}

Graph SquareReduction::reconstruct(std::uint32_t n,
                                   std::span<const Message> messages) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const std::uint32_t big = 2 * n;
  std::vector<Message> sim(big);
  for (std::uint32_t i = 0; i < n; ++i) sim[i] = messages[i];
  // Default messages of the pendant vertices j = n+1..2n: neighbourhood
  // {j - n}; they do not depend on G (Algorithm 1's inner loop).
  for (NodeId j = n + 1; j <= big; ++j) {
    sim[j - 1] = gamma_->local(make_view(j, big, {j - n}));
  }
  Graph h(n);
  for (NodeId s = 1; s <= n; ++s) {
    for (NodeId t = s + 1; t <= n; ++t) {
      const Message saved_s = sim[n + s - 1];
      const Message saved_t = sim[n + t - 1];
      sim[n + s - 1] = gamma_->local(make_view(n + s, big, {s, n + t}));
      sim[n + t - 1] = gamma_->local(make_view(n + t, big, {t, n + s}));
      if (gamma_->decide(big, sim)) {
        h.add_edge(static_cast<Vertex>(s - 1), static_cast<Vertex>(t - 1));
      }
      sim[n + s - 1] = saved_s;
      sim[n + t - 1] = saved_t;
    }
  }
  if (verified_) verify_reencode(*this, h, messages);
  return h;
}

// --------------------------------------------------------------- diameter --

DiameterReduction::DiameterReduction(
    std::shared_ptr<const DecisionProtocol> gamma, bool verified)
    : gamma_(std::move(gamma)), verified_(verified) {
  REFEREE_CHECK_MSG(gamma_ != nullptr, "missing Γ");
}

std::string DiameterReduction::name() const {
  return "diameter-reduction[" + gamma_->name() + "]";
}

void DiameterReduction::encode(const LocalViewRef& view, BitWriter& w) const {
  // The three possible neighbourhoods of node i across all gadgets G'_{s,t}
  // (Algorithm 2): plain (plus the universal n+3), as s (plus n+1), as t
  // (plus n+2). All 1-based in the paper; here ids n+1..n+3 of the lifted
  // (n+3)-vertex view.
  const std::uint32_t big = view.n + 3;
  const Message m0 = gamma_->local(
      make_view(view.id, big, with_extra(view.neighbor_ids, {view.n + 3})));
  const Message ms = gamma_->local(make_view(
      view.id, big, with_extra(view.neighbor_ids, {view.n + 1, view.n + 3})));
  const Message mt = gamma_->local(make_view(
      view.id, big, with_extra(view.neighbor_ids, {view.n + 2, view.n + 3})));
  write_framed(w, m0);
  write_framed(w, ms);
  write_framed(w, mt);
}

Graph DiameterReduction::reconstruct(std::uint32_t n,
                                     std::span<const Message> messages) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const std::uint32_t big = n + 3;
  std::vector<Message> m0(n);
  std::vector<Message> ms(n);
  std::vector<Message> mt(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    m0[i] = read_framed(r);
    ms[i] = read_framed(r);
    mt[i] = read_framed(r);
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in Δ message");
  }
  // Gadget-vertex messages. n+3's neighbourhood {1..n} is (s,t)-independent.
  std::vector<NodeId> everyone(n);
  std::iota(everyone.begin(), everyone.end(), 1u);
  const Message hub = gamma_->local(make_view(n + 3, big, everyone));

  Graph h(n);
  std::vector<Message> sim(big);
  for (NodeId s = 1; s <= n; ++s) {
    for (NodeId t = s + 1; t <= n; ++t) {
      for (std::uint32_t i = 0; i < n; ++i) sim[i] = m0[i];
      sim[s - 1] = ms[s - 1];
      sim[t - 1] = mt[t - 1];
      sim[n] = gamma_->local(make_view(n + 1, big, {s}));
      sim[n + 1] = gamma_->local(make_view(n + 2, big, {t}));
      sim[n + 2] = hub;
      if (gamma_->decide(big, sim)) {
        h.add_edge(static_cast<Vertex>(s - 1), static_cast<Vertex>(t - 1));
      }
    }
  }
  if (verified_) verify_reencode(*this, h, messages);
  return h;
}

// --------------------------------------------------------------- triangle --

TriangleReduction::TriangleReduction(
    std::shared_ptr<const DecisionProtocol> gamma, bool verified)
    : gamma_(std::move(gamma)), verified_(verified) {
  REFEREE_CHECK_MSG(gamma_ != nullptr, "missing Γ");
}

std::string TriangleReduction::name() const {
  return "triangle-reduction[" + gamma_->name() + "]";
}

void TriangleReduction::encode(const LocalViewRef& view, BitWriter& w) const {
  // §II-C: m' for nodes away from {s,t}, m'' when playing s or t (the apex
  // n+1 becomes a neighbour).
  const std::uint32_t big = view.n + 1;
  const Message plain = gamma_->local(
      make_view(view.id, big, with_extra(view.neighbor_ids, {})));
  const Message apexed = gamma_->local(
      make_view(view.id, big, with_extra(view.neighbor_ids, {view.n + 1})));
  write_framed(w, plain);
  write_framed(w, apexed);
}

Graph TriangleReduction::reconstruct(std::uint32_t n,
                                     std::span<const Message> messages) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const std::uint32_t big = n + 1;
  std::vector<Message> plain(n);
  std::vector<Message> apexed(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    plain[i] = read_framed(r);
    apexed[i] = read_framed(r);
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in Δ message");
  }
  Graph h(n);
  std::vector<Message> sim(big);
  for (NodeId s = 1; s <= n; ++s) {
    for (NodeId t = s + 1; t <= n; ++t) {
      for (std::uint32_t i = 0; i < n; ++i) sim[i] = plain[i];
      sim[s - 1] = apexed[s - 1];
      sim[t - 1] = apexed[t - 1];
      sim[n] = gamma_->local(make_view(n + 1, big, {s, t}));
      if (gamma_->decide(big, sim)) {
        h.add_edge(static_cast<Vertex>(s - 1), static_cast<Vertex>(t - 1));
      }
    }
  }
  if (verified_) verify_reencode(*this, h, messages);
  return h;
}

}  // namespace referee
