#include "reductions/reductions.hpp"

#include <numeric>
#include <utility>

#include "support/varint.hpp"

namespace referee {

namespace {

thread_local std::uint64_t g_referee_encodes = 0;

/// Frames a Γ-message inside a Δ-message (length prefix + payload bits), so
/// Δ can bundle the several Γ evaluations Theorems 2 and 3 require.
void write_framed(BitWriter& w, const Message& m) {
  write_delta0(w, m.bit_size());
  BitReader r = m.reader();
  while (!r.exhausted()) w.write_bit(r.read_bit());
}

/// Unframe into a pooled slot: one shared scratch writer, Message::assign
/// into the target's existing byte storage.
void read_framed_into(BitReader& r, BitWriter& scratch, Message& out) {
  const std::uint64_t bits = read_delta0(r);
  scratch.clear();
  for (std::uint64_t i = 0; i < bits; ++i) scratch.write_bit(r.read_bit());
  out.assign(scratch);
}

std::vector<NodeId> with_extra(std::span<const NodeId> base,
                               std::initializer_list<NodeId> extra) {
  std::vector<NodeId> out(base.begin(), base.end());
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

/// Referee-side Γ^l evaluation into a pooled message slot. The neighbour
/// buffer must already be sorted ascending (every gadget neighbourhood
/// below is constructed that way), so no make_view canonicalisation pass —
/// and no owning LocalView — is needed.
void encode_gadget(const DecisionProtocol& gamma, NodeId id, std::uint32_t n,
                   std::span<const NodeId> sorted_neighbors, BitWriter& scratch,
                   Message& out) {
  ++g_referee_encodes;
  scratch.clear();
  gamma.encode(LocalViewRef(id, n, sorted_neighbors), scratch);
  out.assign(scratch);
}

/// Re-encode verification (the `verified` reduction mode): a correct
/// reconstruction h re-encodes to exactly the transcript it was decoded
/// from, because Δ's local function is deterministic in the view. A
/// mismatch therefore proves the input graph was outside the reduction's
/// class (or the transcript corrupt in a way the decode absorbed) — and
/// because the oracle messages embed full adjacency lists, a matching
/// re-encode conversely pins h to the sender's graph. Loud, never wrong.
void verify_reencode(const ReconstructionProtocol& delta, const Graph& h,
                     std::span<const Message> messages, DecodeArena& arena) {
  const LocalViewPack views(h);
  auto writer_s = arena.scratch<BitWriter>();
  auto msg_s = arena.scratch<Message>();
  grow_to(*writer_s, 1);
  grow_to(*msg_s, 1);
  BitWriter& scratch = (*writer_s)[0];
  Message& reencoded = (*msg_s)[0];
  for (Vertex v = 0; v < h.vertex_count(); ++v) {
    scratch.clear();
    delta.encode(views.view(v), scratch);
    reencoded.assign(scratch);
    if (!(reencoded == messages[v])) {
      throw DecodeError(
          DecodeFault::kStalled,
          delta.name() +
              ": reconstruction fails re-encode verification (input "
              "outside the reduction's class)");
    }
  }
}

}  // namespace

std::uint64_t reduction_referee_encodes() { return g_referee_encodes; }
void reset_reduction_referee_encodes() { g_referee_encodes = 0; }

// ---------------------------------------------------------------- squares --

SquareReduction::SquareReduction(
    std::shared_ptr<const DecisionProtocol> gamma, bool verified)
    : gamma_(std::move(gamma)), verified_(verified) {
  REFEREE_CHECK_MSG(gamma_ != nullptr, "missing Γ");
}

std::string SquareReduction::name() const {
  return "square-reduction[" + gamma_->name() + "]";
}

void SquareReduction::encode(const LocalViewRef& view, BitWriter& w) const {
  // Δ^l_n(i, N) = Γ^l_{2n}(i, N ∪ {i+n}): node i's neighbourhood in G'_{s,t}
  // is the same for every (s,t) — the crux of Algorithm 1.
  const auto lifted = make_view(
      view.id, 2 * view.n, with_extra(view.neighbor_ids, {view.id + view.n}));
  gamma_->encode(lifted, w);
}

Graph SquareReduction::reconstruct(std::uint32_t n,
                                   std::span<const Message> messages,
                                   DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const std::uint32_t big = 2 * n;
  auto sim_s = arena.scratch<Message>();
  auto pend_s = arena.scratch<Message>();
  auto writer_s = arena.scratch<BitWriter>();
  auto nbrs_s = arena.scratch<NodeId>();
  std::vector<Message>& sim = *sim_s;
  grow_to(sim, big);
  grow_to(*pend_s, 2);
  grow_to(*writer_s, 1);
  grow_to(*nbrs_s, 2);
  BitWriter& w = (*writer_s)[0];
  NodeId* const nbrs = nbrs_s->data();
  for (std::uint32_t i = 0; i < n; ++i) sim[i] = messages[i];
  // Default messages of the pendant vertices j = n+1..2n: neighbourhood
  // {j - n}; they do not depend on G (Algorithm 1's inner loop), so this
  // vertex-keyed cache is built exactly once — n encodes.
  for (NodeId j = n + 1; j <= big; ++j) {
    nbrs[0] = j - n;
    encode_gadget(*gamma_, j, big, {nbrs, 1}, w, sim[j - 1]);
  }
  const std::span<const Message> sim_span(sim.data(), big);
  Graph h(n);
  Message& pend_of_s = (*pend_s)[0];
  Message& pend_of_t = (*pend_s)[1];
  for (NodeId s = 1; s <= n; ++s) {
    for (NodeId t = s + 1; t <= n; ++t) {
      // The two pendant views depend on the pair itself (s's pendant gains
      // the edge to t's pendant), so they cannot be cached per vertex —
      // but they are degree-2 views encoded into pooled slots, and the
      // defaults are restored by O(1) swaps rather than message copies.
      nbrs[0] = s;
      nbrs[1] = n + t;
      encode_gadget(*gamma_, n + s, big, {nbrs, 2}, w, pend_of_s);
      nbrs[0] = t;
      nbrs[1] = n + s;
      encode_gadget(*gamma_, n + t, big, {nbrs, 2}, w, pend_of_t);
      std::swap(sim[n + s - 1], pend_of_s);
      std::swap(sim[n + t - 1], pend_of_t);
      if (gamma_->decide(big, sim_span, arena)) {
        h.add_edge(static_cast<Vertex>(s - 1), static_cast<Vertex>(t - 1));
      }
      std::swap(sim[n + s - 1], pend_of_s);
      std::swap(sim[n + t - 1], pend_of_t);
    }
  }
  if (verified_) verify_reencode(*this, h, messages, arena);
  return h;
}

// --------------------------------------------------------------- diameter --

DiameterReduction::DiameterReduction(
    std::shared_ptr<const DecisionProtocol> gamma, bool verified)
    : gamma_(std::move(gamma)), verified_(verified) {
  REFEREE_CHECK_MSG(gamma_ != nullptr, "missing Γ");
}

std::string DiameterReduction::name() const {
  return "diameter-reduction[" + gamma_->name() + "]";
}

void DiameterReduction::encode(const LocalViewRef& view, BitWriter& w) const {
  // The three possible neighbourhoods of node i across all gadgets G'_{s,t}
  // (Algorithm 2): plain (plus the universal n+3), as s (plus n+1), as t
  // (plus n+2). All 1-based in the paper; here ids n+1..n+3 of the lifted
  // (n+3)-vertex view.
  const std::uint32_t big = view.n + 3;
  const Message m0 = gamma_->local(
      make_view(view.id, big, with_extra(view.neighbor_ids, {view.n + 3})));
  const Message ms = gamma_->local(make_view(
      view.id, big, with_extra(view.neighbor_ids, {view.n + 1, view.n + 3})));
  const Message mt = gamma_->local(make_view(
      view.id, big, with_extra(view.neighbor_ids, {view.n + 2, view.n + 3})));
  write_framed(w, m0);
  write_framed(w, ms);
  write_framed(w, mt);
}

Graph DiameterReduction::reconstruct(std::uint32_t n,
                                     std::span<const Message> messages,
                                     DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const std::uint32_t big = n + 3;
  // Framed sub-messages in one flat pooled block, row-per-vertex:
  // parts[3i] = m0, parts[3i+1] = m_s, parts[3i+2] = m_t.
  auto parts_s = arena.scratch<Message>();
  auto writer_s = arena.scratch<BitWriter>();
  std::vector<Message>& parts = *parts_s;
  grow_to(parts, 3 * static_cast<std::size_t>(n));
  grow_to(*writer_s, 1);
  BitWriter& w = (*writer_s)[0];
  const auto m0 = [&](std::size_t i) -> Message& { return parts[3 * i]; };
  const auto ms = [&](std::size_t i) -> Message& { return parts[3 * i + 1]; };
  const auto mt = [&](std::size_t i) -> Message& { return parts[3 * i + 2]; };
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    read_framed_into(r, w, m0(i));
    read_framed_into(r, w, ms(i));
    read_framed_into(r, w, mt(i));
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in Δ message");
  }
  // Gadget-vertex messages, all vertex-keyed and therefore cacheable:
  // left(s) = Γ^l(n+1, {s}) and right(t) = Γ^l(n+2, {t}) each depend on one
  // endpoint only, and n+3's neighbourhood {1..n} is (s,t)-independent.
  // 2n+1 encodes total, where the per-pair re-encode did n(n−1).
  auto gadget_s = arena.scratch<Message>();
  auto nbrs_s = arena.scratch<NodeId>();
  std::vector<Message>& gadget = *gadget_s;
  grow_to(gadget, 2 * static_cast<std::size_t>(n) + 1);
  const auto left = [&](NodeId s) -> Message& { return gadget[2 * (s - 1)]; };
  const auto right = [&](NodeId t) -> Message& {
    return gadget[2 * (t - 1) + 1];
  };
  Message& hub = gadget[2 * static_cast<std::size_t>(n)];
  std::vector<NodeId>& nbrs = *nbrs_s;
  grow_to(nbrs, n);
  for (NodeId v = 1; v <= n; ++v) {
    nbrs[0] = v;
    encode_gadget(*gamma_, n + 1, big, {nbrs.data(), 1}, w, left(v));
    encode_gadget(*gamma_, n + 2, big, {nbrs.data(), 1}, w, right(v));
  }
  std::iota(nbrs.begin(), nbrs.begin() + n, 1u);
  encode_gadget(*gamma_, n + 3, big, {nbrs.data(), n}, w, hub);

  Graph h(n);
  auto sim_s = arena.scratch<Message>();
  std::vector<Message>& sim = *sim_s;
  grow_to(sim, big);
  // sim starts as the all-default gadget; per pair only the four (s,t)-
  // dependent slots move — swaps against the caches, restored after the
  // decide, instead of refilling all n+3 slots per pair.
  for (std::uint32_t i = 0; i < n; ++i) sim[i] = m0(i);
  sim[n + 2] = hub;
  const std::span<const Message> sim_span(sim.data(), big);
  for (NodeId s = 1; s <= n; ++s) {
    std::swap(sim[n], left(s));
    for (NodeId t = s + 1; t <= n; ++t) {
      std::swap(sim[s - 1], ms(s - 1));
      std::swap(sim[t - 1], mt(t - 1));
      std::swap(sim[n + 1], right(t));
      if (gamma_->decide(big, sim_span, arena)) {
        h.add_edge(static_cast<Vertex>(s - 1), static_cast<Vertex>(t - 1));
      }
      std::swap(sim[n + 1], right(t));
      std::swap(sim[t - 1], mt(t - 1));
      std::swap(sim[s - 1], ms(s - 1));
    }
    std::swap(sim[n], left(s));
  }
  if (verified_) verify_reencode(*this, h, messages, arena);
  return h;
}

// --------------------------------------------------------------- triangle --

TriangleReduction::TriangleReduction(
    std::shared_ptr<const DecisionProtocol> gamma, bool verified)
    : gamma_(std::move(gamma)), verified_(verified) {
  REFEREE_CHECK_MSG(gamma_ != nullptr, "missing Γ");
}

std::string TriangleReduction::name() const {
  return "triangle-reduction[" + gamma_->name() + "]";
}

void TriangleReduction::encode(const LocalViewRef& view, BitWriter& w) const {
  // §II-C: m' for nodes away from {s,t}, m'' when playing s or t (the apex
  // n+1 becomes a neighbour).
  const std::uint32_t big = view.n + 1;
  const Message plain = gamma_->local(
      make_view(view.id, big, with_extra(view.neighbor_ids, {})));
  const Message apexed = gamma_->local(
      make_view(view.id, big, with_extra(view.neighbor_ids, {view.n + 1})));
  write_framed(w, plain);
  write_framed(w, apexed);
}

Graph TriangleReduction::reconstruct(std::uint32_t n,
                                     std::span<const Message> messages,
                                     DecodeArena& arena) const {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const std::uint32_t big = n + 1;
  // Framed sub-messages, flat pooled rows: parts[2i] = plain, [2i+1] = m''.
  auto parts_s = arena.scratch<Message>();
  auto writer_s = arena.scratch<BitWriter>();
  auto nbrs_s = arena.scratch<NodeId>();
  std::vector<Message>& parts = *parts_s;
  grow_to(parts, 2 * static_cast<std::size_t>(n));
  grow_to(*writer_s, 1);
  grow_to(*nbrs_s, 2);
  BitWriter& w = (*writer_s)[0];
  NodeId* const nbrs = nbrs_s->data();
  const auto plain = [&](std::size_t i) -> Message& { return parts[2 * i]; };
  const auto apexed = [&](std::size_t i) -> Message& {
    return parts[2 * i + 1];
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    read_framed_into(r, w, plain(i));
    read_framed_into(r, w, apexed(i));
    if (!r.exhausted()) throw DecodeError(DecodeFault::kTrailingBits,
                      "trailing bits in Δ message");
  }
  Graph h(n);
  auto sim_s = arena.scratch<Message>();
  std::vector<Message>& sim = *sim_s;
  grow_to(sim, big);
  for (std::uint32_t i = 0; i < n; ++i) sim[i] = plain(i);
  const std::span<const Message> sim_span(sim.data(), big);
  for (NodeId s = 1; s <= n; ++s) {
    for (NodeId t = s + 1; t <= n; ++t) {
      std::swap(sim[s - 1], apexed(s - 1));
      std::swap(sim[t - 1], apexed(t - 1));
      // The apex view {s,t} depends on the pair itself — encoded fresh into
      // the pooled slot (a degree-2 view; the swaps above replace what used
      // to be a full n-message refill per pair).
      nbrs[0] = s;
      nbrs[1] = t;
      encode_gadget(*gamma_, n + 1, big, {nbrs, 2}, w, sim[n]);
      if (gamma_->decide(big, sim_span, arena)) {
        h.add_edge(static_cast<Vertex>(s - 1), static_cast<Vertex>(t - 1));
      }
      std::swap(sim[t - 1], apexed(t - 1));
      std::swap(sim[s - 1], apexed(s - 1));
    }
  }
  if (verified_) verify_reencode(*this, h, messages, arena);
  return h;
}

}  // namespace referee
