#include "reductions/oracles.hpp"

#include "graph/algorithms.hpp"
#include "graph/subgraphs.hpp"
#include "support/bits.hpp"

namespace referee {

AdjacencyListOracle::AdjacencyListOracle(
    std::string name, std::function<bool(const Graph&)> predicate)
    : name_(std::move(name)), predicate_(std::move(predicate)) {
  REFEREE_CHECK_MSG(predicate_ != nullptr, "oracle needs a predicate");
}

void AdjacencyListOracle::encode(const LocalViewRef& view, BitWriter& w) const {
  const int id_bits = log_budget_bits(view.n);
  w.write_bits(view.id, id_bits);
  w.write_bits(view.degree(), id_bits);
  for (const NodeId nb : view.neighbor_ids) w.write_bits(nb, id_bits);
}

Graph AdjacencyListOracle::decode_graph(std::uint32_t n,
                                        std::span<const Message> messages) {
  Graph g;
  decode_graph_into(n, messages, g);
  return g;
}

void AdjacencyListOracle::decode_graph_into(std::uint32_t n,
                                            std::span<const Message> messages,
                                            Graph& g) {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node");
  }
  const int id_bits = log_budget_bits(n);
  g.reset(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    BitReader r = messages[i].reader();
    const auto id = static_cast<NodeId>(r.read_bits(id_bits));
    if (id != i + 1) throw DecodeError(DecodeFault::kIdMismatch,
                      "message id does not match sender");
    const std::uint64_t deg = r.read_bits(id_bits);
    for (std::uint64_t j = 0; j < deg; ++j) {
      const auto nb = static_cast<NodeId>(r.read_bits(id_bits));
      if (nb < 1 || nb > n || nb == id) {
        throw DecodeError(DecodeFault::kMalformed,
                      "neighbour id out of range");
      }
      if (nb != id) g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(nb - 1));
    }
  }
}

bool AdjacencyListOracle::decide(std::uint32_t n,
                                 std::span<const Message> messages,
                                 DecodeArena& arena) const {
  // One pooled Graph per arena: reset-and-refill instead of n fresh
  // adjacency rows per oracle query.
  auto g_s = arena.scratch<Graph>();
  grow_to(*g_s, 1);
  Graph& g = (*g_s)[0];
  decode_graph_into(n, messages, g);
  return predicate_(g);
}

std::shared_ptr<DecisionProtocol> make_square_oracle() {
  return std::make_shared<AdjacencyListOracle>(
      "square-oracle", [](const Graph& g) { return has_square(g); });
}

std::shared_ptr<DecisionProtocol> make_triangle_oracle() {
  return std::make_shared<AdjacencyListOracle>(
      "triangle-oracle", [](const Graph& g) { return has_triangle(g); });
}

std::shared_ptr<DecisionProtocol> make_diameter_oracle(std::uint32_t bound) {
  return std::make_shared<AdjacencyListOracle>(
      "diameter<=" + std::to_string(bound) + "-oracle",
      [bound](const Graph& g) {
        const auto d = diameter(g);
        return d.has_value() && *d <= bound;
      });
}

}  // namespace referee
