// Stand-in Γ protocols for exercising the §II reductions.
//
// The theorems prove no *frugal* Γ exists; to run Algorithms 1/2 (and the
// triangle analogue) as real code we plug in deliberately non-frugal oracles
// whose local function ships the full adjacency list (O(Δ log n) bits) and
// whose referee answers the property exactly. The reduction machinery is
// oblivious to Γ's internals — swapping in these oracles demonstrates the
// *simulation* part of the proofs and lets the benchmarks measure the
// message-size relationships (k(2n), 3·k(n+3), 2·k(n+1)) the paper states.
#pragma once

#include <cstdint>
#include <functional>

#include "model/protocol.hpp"

namespace referee {

/// Decision oracle: local = full adjacency list, global = predicate on the
/// decoded graph.
class AdjacencyListOracle final : public DecisionProtocol {
 public:
  AdjacencyListOracle(std::string name,
                      std::function<bool(const Graph&)> predicate);

  std::string name() const override { return name_; }
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using DecisionProtocol::decide;
  bool decide(std::uint32_t n, std::span<const Message> messages,
              DecodeArena& arena) const override;

  /// The graph encoded by an oracle transcript (exposed for tests).
  static Graph decode_graph(std::uint32_t n,
                            std::span<const Message> messages);

  /// Arena form: decode into `g` (reset to n vertices, row capacity kept).
  /// The reductions' referees call the oracle O(n²) times per reconstruct;
  /// this is what keeps each of those calls allocation-free when warm.
  static void decode_graph_into(std::uint32_t n,
                                std::span<const Message> messages, Graph& g);

 private:
  std::string name_;
  std::function<bool(const Graph&)> predicate_;
};

/// "does G contain a C4?" — the Γ of Theorem 1.
std::shared_ptr<DecisionProtocol> make_square_oracle();
/// "does G contain a triangle?" — the Γ of Theorem 3.
std::shared_ptr<DecisionProtocol> make_triangle_oracle();
/// "is diam(G) <= bound?" — the Γ of Theorem 2 (bound = 3 in the paper).
std::shared_ptr<DecisionProtocol> make_diameter_oracle(std::uint32_t bound);

}  // namespace referee
