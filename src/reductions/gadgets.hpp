// The auxiliary graphs G'_{s,t} from the impossibility proofs of §II.
//
// Each gadget turns the question "is {s,t} an edge of G?" into a property of
// G'_{s,t} that a hypothetical one-round protocol Γ could answer — that is
// the entire engine of Theorems 1, 2 and 3 (and of Figures 1 and 2, which
// are drawings of diameter_gadget and triangle_gadget respectively).
//
// Vertices here are 0-based; the new gadget vertices take indices n, n+1, …
// (the paper's n+1, n+2, … in its 1-based convention).
#pragma once

#include "graph/graph.hpp"

namespace referee {

/// Theorem 1. 2n vertices: G, a pendant i↔(n+i) for every i, plus the edge
/// {n+s, n+t}. For square-free G: G'_{s,t} contains a C4 iff {s,t} ∈ E(G).
Graph square_gadget(const Graph& g, Vertex s, Vertex t);

/// Theorem 2 / Figure 1. n+3 vertices: G, vertex n adjacent to s, vertex
/// n+1 adjacent to t, vertex n+2 adjacent to every vertex of G.
/// diam(G'_{s,t}) <= 3 iff {s,t} ∈ E(G) (otherwise it is exactly 4).
Graph diameter_gadget(const Graph& g, Vertex s, Vertex t);

/// Theorem 3 / Figure 2. n+1 vertices: G plus vertex n adjacent to s and t.
/// For triangle-free (e.g. bipartite) G: triangle iff {s,t} ∈ E(G).
Graph triangle_gadget(const Graph& g, Vertex s, Vertex t);

}  // namespace referee
