#include "reductions/gadgets.hpp"

namespace referee {

namespace {
void check_pair(const Graph& g, Vertex s, Vertex t) {
  REFEREE_CHECK_MSG(s < g.vertex_count() && t < g.vertex_count(),
                    "gadget endpoints out of range");
  REFEREE_CHECK_MSG(s != t, "gadget endpoints must differ");
}
}  // namespace

Graph square_gadget(const Graph& g, Vertex s, Vertex t) {
  check_pair(g, s, t);
  const auto n = static_cast<Vertex>(g.vertex_count());
  Graph out(2 * static_cast<std::size_t>(n));
  for (const Edge& e : g.edges()) out.add_edge(e.u, e.v);
  for (Vertex i = 0; i < n; ++i) out.add_edge(i, n + i);
  out.add_edge(n + s, n + t);
  return out;
}

Graph diameter_gadget(const Graph& g, Vertex s, Vertex t) {
  check_pair(g, s, t);
  const auto n = static_cast<Vertex>(g.vertex_count());
  Graph out(static_cast<std::size_t>(n) + 3);
  for (const Edge& e : g.edges()) out.add_edge(e.u, e.v);
  out.add_edge(s, n);
  out.add_edge(t, n + 1);
  for (Vertex v = 0; v < n; ++v) out.add_edge(v, n + 2);
  return out;
}

Graph triangle_gadget(const Graph& g, Vertex s, Vertex t) {
  check_pair(g, s, t);
  const auto n = static_cast<Vertex>(g.vertex_count());
  Graph out(static_cast<std::size_t>(n) + 1);
  for (const Edge& e : g.edges()) out.add_edge(e.u, e.v);
  out.add_edge(s, n);
  out.add_edge(t, n);
  return out;
}

}  // namespace referee
