#include "reductions/counting.hpp"

#include <cmath>

#include "graph/enumerate.hpp"
#include "support/bits.hpp"

namespace referee {

double log2_all_graphs(std::uint32_t n) {
  return static_cast<double>(n) * (n - 1) / 2.0;
}

double log2_fixed_bipartite(std::uint32_t n) {
  const double a = std::floor(n / 2.0);
  const double b = std::ceil(n / 2.0);
  return a * b;
}

double log2_square_free_exact(std::uint32_t n, ThreadPool* pool) {
  return std::log2(static_cast<double>(count_square_free_graphs(n, pool)));
}

double log2_square_free_model(std::uint32_t n) {
  return 0.5 * std::pow(static_cast<double>(n), 1.5);
}

double frugal_capacity_bits(std::uint32_t n, double c) {
  return c * static_cast<double>(n) * log_budget_bits(n);
}

bool lemma1_feasible(double log2_family, std::uint32_t n, double c) {
  return log2_family <= frugal_capacity_bits(n, c);
}

}  // namespace referee
