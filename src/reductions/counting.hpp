// Lemma 1 made quantitative: a frugal one-round protocol delivers at most
// c·n·log2(n+1) bits to the referee, so it can reconstruct at most
// 2^{c·n·log2(n+1)} graphs of size n. The impossibility proofs pit that
// capacity against families of size 2^{Θ(n^{3/2})} (square-free graphs,
// Kleitman–Winston) and 2^{Ω(n²)} (all graphs / fixed-partition bipartite
// graphs). Experiment E7 plots exactly this race.
#pragma once

#include <cstdint>

#include "support/thread_pool.hpp"

namespace referee {

/// log2(number of labelled graphs on n vertices) = C(n, 2).
double log2_all_graphs(std::uint32_t n);

/// log2(number of bipartite graphs with fixed parts {1..n/2}, {n/2+1..n})
/// = floor(n/2) * ceil(n/2) — the family of Theorem 3.
double log2_fixed_bipartite(std::uint32_t n);

/// Exact log2 of the number of square-free labelled graphs (exhaustive
/// enumeration; n <= 8).
double log2_square_free_exact(std::uint32_t n, ThreadPool* pool = nullptr);

/// The Kleitman–Winston Θ(n^{3/2}) model curve used beyond the exhaustive
/// range. Only the growth order matters to Lemma 1; the constant 1/2 matches
/// the lower-bound construction (C4-free graphs with (1/2)·n^{3/2} edges).
double log2_square_free_model(std::uint32_t n);

/// Referee-side capacity of a frugal protocol: c · n · log2(n+1) bits.
double frugal_capacity_bits(std::uint32_t n, double c);

/// Lemma 1's verdict: can a frugal protocol with per-node constant `c`
/// reconstruct a family of log2-size `log2_family` on n vertices?
bool lemma1_feasible(double log2_family, std::uint32_t n, double c);

}  // namespace referee
