// Executable versions of the reductions in Theorems 1, 2 and 3: given any
// one-round protocol Γ deciding squares / diameter <= 3 / triangles, build
// the one-round protocol Δ that reconstructs a graph family too large for
// Lemma 1 — the contradiction that proves no frugal Γ exists.
//
// These are faithful implementations of Algorithm 1 (squares), Algorithm 2
// (diameter) and the triangle construction of §II-C:
//   * Δ's local function evaluates Γ's local function on the node's view
//     *as it would appear inside the gadget* G'_{s,t} — possible because
//     the original vertices' gadget neighbourhoods do not depend on (s,t)
//     (squares), or take only 3 (diameter) or 2 (triangles) possible values,
//     all computable locally.
//   * Δ's global function simulates, for every pair (s,t), the messages of
//     the gadget-only vertices (these depend on Γ, s, t — not on G), asks
//     Γ's referee, and records {s,t} as an edge accordingly.
//
// Message-size relationships stated by the paper and measured by E4–E6:
// |Δ| = |Γ|(2n) for squares, 3·|Γ|(n+3) + framing for diameter,
// 2·|Γ|(n+1) + framing for triangles.
#pragma once

#include <memory>

#include "model/protocol.hpp"

namespace referee {

/// Theorem 1 / Algorithm 1. Δ reconstructs *square-free* graphs from any
/// square-deciding Γ.
///
/// `verified` arms re-encode verification: after reconstructing h the
/// referee re-runs Δ's local function on h and compares against the
/// received transcript, throwing DecodeError (kStalled) on mismatch. Sound
/// — a correct h always re-encodes to the transcript it came from — and it
/// turns the silent drift Δ produces on out-of-class inputs into a loud
/// refusal (the campaign runner arms it). Off by default: the unverified
/// behaviour is the paper's, and the out-of-class drift is itself under
/// test. Same flag on the other two reductions.
class SquareReduction final : public ReconstructionProtocol {
 public:
  explicit SquareReduction(std::shared_ptr<const DecisionProtocol> gamma,
                           bool verified = false);
  std::string name() const override;
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using ReconstructionProtocol::reconstruct;
  Graph reconstruct(std::uint32_t n, std::span<const Message> messages,
                    DecodeArena& arena) const override;

 private:
  std::shared_ptr<const DecisionProtocol> gamma_;
  bool verified_;
};

/// Theorem 2 / Algorithm 2. Δ reconstructs *arbitrary* graphs from any Γ
/// deciding "diameter <= 3".
class DiameterReduction final : public ReconstructionProtocol {
 public:
  explicit DiameterReduction(std::shared_ptr<const DecisionProtocol> gamma,
                             bool verified = false);
  std::string name() const override;
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using ReconstructionProtocol::reconstruct;
  Graph reconstruct(std::uint32_t n, std::span<const Message> messages,
                    DecodeArena& arena) const override;

 private:
  std::shared_ptr<const DecisionProtocol> gamma_;
  bool verified_;
};

/// Theorem 3. Δ reconstructs *triangle-free* (in the paper: bipartite)
/// graphs from any triangle-deciding Γ.
class TriangleReduction final : public ReconstructionProtocol {
 public:
  explicit TriangleReduction(std::shared_ptr<const DecisionProtocol> gamma,
                             bool verified = false);
  std::string name() const override;
  void encode(const LocalViewRef& view, BitWriter& w) const override;
  using ReconstructionProtocol::reconstruct;
  Graph reconstruct(std::uint32_t n, std::span<const Message> messages,
                    DecodeArena& arena) const override;

 private:
  std::shared_ptr<const DecisionProtocol> gamma_;
  bool verified_;
};

/// Referee-phase Γ^l evaluation counter (thread-local): the number of
/// gadget-vertex messages the reduction referees encoded during
/// reconstruct(). The diameter referee caches its gadget messages keyed by
/// vertex, so its count is 2n+1 instead of the historic n(n−1); the square
/// and triangle gadget messages depend on the (s,t) pair itself and stay
/// O(n²) encodes of O(1)-degree views (but allocation-free). Benchmarks and
/// tests reset + read this around a reconstruct call to pin the scaling.
std::uint64_t reduction_referee_encodes();
void reset_reduction_referee_encodes();

}  // namespace referee
