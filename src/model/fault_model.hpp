// Campaign-level fault models and the per-message fault journal.
//
// FaultPlan (model/simulator.hpp) started as independent per-message noise:
// bit flips and truncations, each message its own PRNG stream. Real
// deployments fail in *correlated* ways — a rack dies and every message of
// a vertex subset vanishes, a byzantine node claims another node's id, a
// retransmission replays last epoch's messages. This header defines those
// campaign-level models plus the journal that records exactly which faults
// were applied, so tests assert cause→effect ("this cell swapped payloads
// of nodes 3 and 9, therefore the decoder must report kIdMismatch") instead
// of only observing outcomes.
//
// Everything is deterministic in the plan seed: each fault family draws
// from its own stream (mix64(seed ^ family-tag)), so enabling one family
// never shifts another family's choices — the same stream-alignment
// contract FaultPlan documents for flips vs truncations.
#pragma once

#include <cstdint>
#include <vector>

namespace referee {

/// Every way the injector can corrupt a transcript. The first two are the
/// legacy independent per-message models; the middle four are the correlated
/// campaign-level models; the kAdaptive* strikes are chosen by the
/// transcript-aware adversary (model/adaptive_adversary.hpp), which reads
/// the sealed wire before deciding where to hit.
enum class FaultType {
  kBitFlip,      // flip one uniformly chosen bit of a message
  kTruncate,     // keep a uniform proper prefix (>= 1 bit)
  kDrop,         // blank all messages of a seed-chosen vertex subset
  kDuplicateId,  // byzantine: copy node u's message over node v's slot
  kPayloadSwap,  // swap the payloads of two vertices
  kStaleReplay,  // replace a message with the same node's message from a
                 // donor scenario cell (a different epoch)
  kAdaptiveBlank,       // adversary blanks a scored target slot
  kAdaptiveHeaderFlip,  // adversary flips one envelope-header bit
  kAdaptiveTruncate,    // adversary truncates into the envelope header
  kAdaptiveSwap,        // adversary swaps two scored target slots
};

constexpr const char* fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::kBitFlip: return "bit-flip";
    case FaultType::kTruncate: return "truncate";
    case FaultType::kDrop: return "drop";
    case FaultType::kDuplicateId: return "duplicate-id";
    case FaultType::kPayloadSwap: return "payload-swap";
    case FaultType::kStaleReplay: return "stale-replay";
    case FaultType::kAdaptiveBlank: return "adaptive-blank";
    case FaultType::kAdaptiveHeaderFlip: return "adaptive-header-flip";
    case FaultType::kAdaptiveTruncate: return "adaptive-truncate";
    case FaultType::kAdaptiveSwap: return "adaptive-swap";
  }
  return "unknown";
}

/// True for strikes chosen by the transcript-aware adversary.
constexpr bool is_adaptive_fault(FaultType type) {
  return type == FaultType::kAdaptiveBlank ||
         type == FaultType::kAdaptiveHeaderFlip ||
         type == FaultType::kAdaptiveTruncate ||
         type == FaultType::kAdaptiveSwap;
}

/// Correlated fault knobs, expanded deterministically per campaign cell.
/// All selections are drawn from streams derived from FaultPlan::seed.
struct CorrelatedFaults {
  /// Fraction of the vertex set whose messages are all dropped (blanked to
  /// 0 bits). Rounded to the nearest count; any positive fraction drops at
  /// least one vertex.
  double drop_fraction = 0.0;
  /// Number of byzantine duplications: distinct (src, dst) slots where
  /// dst's message is overwritten with a copy of src's — two messages then
  /// claim src's id.
  unsigned duplicate_ids = 0;
  /// Number of disjoint vertex pairs whose payloads are swapped in place.
  unsigned payload_swaps = 0;
  /// Number of vertices whose message is replaced by the same vertex's
  /// message from a donor transcript (a different scenario cell). The
  /// injector needs that donor transcript; see Simulator::inject_faults.
  unsigned stale_replays = 0;

  bool active() const {
    return drop_fraction > 0 || duplicate_ids > 0 || payload_swaps > 0 ||
           stale_replays > 0;
  }

  friend bool operator==(const CorrelatedFaults&,
                         const CorrelatedFaults&) = default;
};

/// The transcript-aware adversary's knobs. Unlike the oblivious families
/// above, the adaptive injector *reads* the sealed wire before striking:
/// it scores every slot from transcript contents (largest payload — a proxy
/// for the highest-degree sender — and epoch-boundary slots first) and
/// spends `budget` strike points lowest-score-first. Strike selection is a
/// pure function of (wire bytes, seed, budget), so adaptive cells stay as
/// reproducible as oblivious ones. See model/adaptive_adversary.hpp.
struct AdaptiveFaults {
  /// Strike points to spend. Blanks and header flips cost 1, truncations 2,
  /// swaps 3; 0 disables the adversary.
  unsigned budget = 0;

  bool active() const { return budget > 0; }

  friend bool operator==(const AdaptiveFaults&,
                         const AdaptiveFaults&) = default;
};

/// One applied fault. `detail` is type-specific:
///   kBitFlip             flipped bit index
///   kTruncate            bits kept
///   kDrop                0
///   kDuplicateId         source slot whose message now also sits at `index`
///   kPayloadSwap         partner slot (one event per pair, index < detail)
///   kStaleReplay         0 (donor slot == index by construction)
///   kAdaptiveBlank       0
///   kAdaptiveHeaderFlip  flipped header bit index (< tag+id width)
///   kAdaptiveTruncate    bits kept (inside the envelope header)
///   kAdaptiveSwap        partner slot (one event per pair, index < detail)
struct FaultEvent {
  FaultType type = FaultType::kBitFlip;
  std::size_t index = 0;
  std::uint64_t detail = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// The injector's record of which faults it applied, in application order
/// (correlated families first, then per-message flips/truncations).
struct FaultJournal {
  std::vector<FaultEvent> events;

  std::size_t count(FaultType type) const {
    std::size_t c = 0;
    for (const FaultEvent& e : events) {
      if (e.type == type) ++c;
    }
    return c;
  }

  /// Did any fault touch message slot `index`? (Swaps — payload or
  /// adaptive — touch both slots of the pair.)
  bool touched(std::size_t index) const {
    for (const FaultEvent& e : events) {
      if (e.index == index) return true;
      if ((e.type == FaultType::kPayloadSwap ||
           e.type == FaultType::kAdaptiveSwap) &&
          e.detail == index) {
        return true;
      }
    }
    return false;
  }

  /// Strikes recorded by the transcript-aware adversary.
  std::size_t adaptive_count() const {
    std::size_t c = 0;
    for (const FaultEvent& e : events) {
      if (is_adaptive_fault(e.type)) ++c;
    }
    return c;
  }

  bool empty() const { return events.empty(); }
};

}  // namespace referee
