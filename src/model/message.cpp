#include "model/message.hpp"

#include "support/check.hpp"

namespace referee {

Message Message::seal(BitWriter&& w) {
  Message m;
  m.bit_size_ = w.bit_size();
  m.bytes_ = w.take_bytes();
  return m;
}

void Message::assign(const BitWriter& w) {
  bit_size_ = w.bit_size();
  const auto& src = w.bytes();
  bytes_.assign(src.begin(), src.begin() + (bit_size_ + 7) / 8);
}

void Message::flip_bit(std::size_t index) {
  REFEREE_CHECK_MSG(index < bit_size_, "flip_bit out of range");
  bytes_[index >> 3] ^= static_cast<std::uint8_t>(1u << (index & 7));
}

void Message::truncate(std::size_t keep_bits) {
  REFEREE_CHECK_MSG(keep_bits <= bit_size_, "truncate grows message");
  bit_size_ = keep_bits;
  bytes_.resize((keep_bits + 7) / 8);
  // Zero the tail of the last byte so equality stays canonical.
  if (keep_bits % 8 != 0 && !bytes_.empty()) {
    bytes_.back() &= static_cast<std::uint8_t>((1u << (keep_bits % 8)) - 1);
  }
}

}  // namespace referee
