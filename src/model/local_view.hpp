// A node's entire knowledge in the paper's model (§I-B): its own identifier,
// the identifiers of its neighbours, and the network size n. Identifiers are
// 1-based ({1, ..., n}) exactly as in the paper; the 0-based graph layer
// converts at this boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace referee {

using NodeId = std::uint32_t;  // 1-based protocol-level identifier

struct LocalView {
  NodeId id = 0;
  std::uint32_t n = 0;
  std::vector<NodeId> neighbor_ids;  // sorted ascending, 1-based

  std::size_t degree() const { return neighbor_ids.size(); }

  friend bool operator==(const LocalView&, const LocalView&) = default;
};

/// The view node `v` (0-based) has of graph `g`.
LocalView local_view_of(const Graph& g, Vertex v);

/// Views of all n nodes, indexed by id-1.
std::vector<LocalView> local_views(const Graph& g);

/// A synthetic view for protocol functions evaluated on hypothetical
/// (id, neighbourhood) pairs — Definition 1 lets Γ^l_n be evaluated anywhere,
/// and the reduction proofs exploit exactly that.
LocalView make_view(NodeId id, std::uint32_t n, std::vector<NodeId> neighbors);

}  // namespace referee
