// A node's entire knowledge in the paper's model (§I-B): its own identifier,
// the identifiers of its neighbours, and the network size n. Identifiers are
// 1-based ({1, ..., n}) exactly as in the paper; the 0-based graph layer
// converts at this boundary.
//
// Two representations exist:
//   * LocalView     — owning (vector-backed); for synthetic views built by
//     make_view and for the reduction gadgets that fabricate hypothetical
//     neighbourhoods.
//   * LocalViewRef  — non-owning (span-backed); the hot-path currency. The
//     simulator derives one LocalViewPack per run (a single CSR-shaped
//     allocation holding every node's 1-based neighbour row) and hands out
//     LocalViewRef values with zero per-vertex copies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace referee {

using NodeId = std::uint32_t;  // 1-based protocol-level identifier

struct LocalView {
  NodeId id = 0;
  std::uint32_t n = 0;
  std::vector<NodeId> neighbor_ids;  // sorted ascending, deduped, 1-based

  std::size_t degree() const { return neighbor_ids.size(); }

  friend bool operator==(const LocalView&, const LocalView&) = default;
};

/// Borrowed view: same contract as LocalView (neighbor_ids sorted ascending,
/// deduped, 1-based) but the neighbour row is a span into storage owned by
/// someone else — a LocalViewPack, a LocalView, or a caller-managed buffer.
/// Valid only while that storage is alive; protocols must treat it as a
/// value to read from, never to retain.
struct LocalViewRef {
  NodeId id = 0;
  std::uint32_t n = 0;
  std::span<const NodeId> neighbor_ids;  // sorted ascending, 1-based

  LocalViewRef() = default;
  LocalViewRef(NodeId id_, std::uint32_t n_, std::span<const NodeId> nbrs)
      : id(id_), n(n_), neighbor_ids(nbrs) {}
  /// Implicit: every owning view is usable wherever a ref is expected.
  LocalViewRef(const LocalView& view)  // NOLINT(google-explicit-constructor)
      : id(view.id), n(view.n), neighbor_ids(view.neighbor_ids) {}

  std::size_t degree() const { return neighbor_ids.size(); }

  /// Copy into an owning LocalView (for call sites that must mutate or
  /// outlive the backing storage, e.g. the cover constructions).
  LocalView materialize() const {
    return LocalView{
        id, n, std::vector<NodeId>(neighbor_ids.begin(), neighbor_ids.end())};
  }
};

/// All n views of a graph in one flat allocation: a CSR over 1-based
/// neighbour ids. Building the pack is one pass over the graph; every
/// view(v) afterwards is O(1) and allocation-free.
class LocalViewPack {
 public:
  LocalViewPack() = default;
  explicit LocalViewPack(const Graph& g);
  /// Build straight from a CSR — the bulk-load path: CsrGraph(n, edges)
  /// canonicalizes raw edge lists, so campaign-scale inputs reach the local
  /// phase without the vector-of-vectors Graph intermediary.
  explicit LocalViewPack(const CsrGraph& g);

  std::uint32_t n() const { return n_; }
  std::size_t size() const { return n_; }

  /// The view of 0-based vertex v. Zero-copy; valid while the pack lives.
  LocalViewRef view(Vertex v) const {
    REFEREE_DCHECK(v < n_);
    return LocalViewRef(
        v + 1, n_,
        std::span<const NodeId>(ids_.data() + offsets_[v],
                                offsets_[v + 1] - offsets_[v]));
  }

 private:
  std::uint32_t n_ = 0;
  std::vector<std::size_t> offsets_;  // n+1 entries
  std::vector<NodeId> ids_;           // 2m entries, sorted per row, 1-based
};

/// The view node `v` (0-based) has of graph `g`. Allocates one vector; the
/// batched paths should prefer LocalViewPack.
LocalView local_view_of(const Graph& g, Vertex v);

/// Views of all n nodes, indexed by id-1.
std::vector<LocalView> local_views(const Graph& g);

/// A synthetic view for protocol functions evaluated on hypothetical
/// (id, neighbourhood) pairs — Definition 1 lets Γ^l_n be evaluated anywhere,
/// and the reduction proofs exploit exactly that. Canonicalizes (sorts +
/// dedupes) the neighbour list.
LocalView make_view(NodeId id, std::uint32_t n, std::vector<NodeId> neighbors);

}  // namespace referee
