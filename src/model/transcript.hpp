// Transcript persistence: the message vector of a round, serialised to a
// byte stream. A referee can capture the (single!) round on the live
// network and decode it offline, later, elsewhere — one-round protocols
// make the transcript a complete, replayable artefact.
//
// Two formats live here:
//
// RFT1 (legacy stream form, little-endian):
//   magic "RFT1", u32 n, then per message: u64 bit_size + ceil(bits/8) bytes.
//   Carries no epoch — callers must remember the scenario identity out of
//   band. Kept for the CLI's hex pipelines and old fixtures.
//
// reftrn1 (versioned sealed-transcript file, little-endian):
//   offset  size  field
//   0       8     magic "reftrn1\0"
//   8       4     version (currently 1)
//   12      4     reserved (0)
//   16      8     epoch — the sealed scenario epoch the envelopes carry
//   24      4     n — node / message count
//   28      4     reserved (0)
//   32      ...   n records: u64 bit_length + ceil(bit_length/8) bytes
//
// A reftrn1 file stores the *wire* transcript of a campaign cell — the
// sealed (and, when the cell injects faults, faulted) messages exactly as
// the referee saw them — so `refereectl transcript decode` replays the
// cell offline to the same outcome as the live pipeline. Written
// crash-safely (temp file + fsync + atomic rename) and read back through
// MmapTranscriptSource without materializing more than one message.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "model/message.hpp"

namespace referee {

struct Transcript {
  std::uint32_t n = 0;
  std::vector<Message> messages;
};

void write_transcript(std::ostream& os, const Transcript& t);
Transcript read_transcript(std::istream& is);

/// Convenience wrappers over string payloads (used by the CLI and tests).
std::string transcript_to_string(const Transcript& t);
Transcript transcript_from_string(const std::string& data);

inline constexpr char kTranscriptFileMagic[8] = {'r', 'e', 'f', 't',
                                                 'r', 'n', '1', '\0'};
inline constexpr std::uint32_t kTranscriptFileVersion = 1;
inline constexpr std::size_t kTranscriptFileHeaderBytes = 32;

/// Write a sealed transcript as a reftrn1 file: `epoch` is the scenario
/// epoch the envelopes were sealed under, `messages` one wire message per
/// node in id order. Crash-safe: temp file, fsync, atomic rename.
void write_transcript_file(const std::string& path, std::uint64_t epoch,
                           std::span<const Message> messages);

/// Read-only mmap view of a reftrn1 file. Opening validates the header
/// and walks the records once to build a byte-offset index; messages are
/// materialized lazily, one at a time, so decoding a transcript touches
/// only the pages of the message being read.
class MmapTranscriptSource {
 public:
  explicit MmapTranscriptSource(const std::string& path);
  ~MmapTranscriptSource();

  MmapTranscriptSource(MmapTranscriptSource&& other) noexcept;
  MmapTranscriptSource& operator=(MmapTranscriptSource&& other) noexcept;
  MmapTranscriptSource(const MmapTranscriptSource&) = delete;
  MmapTranscriptSource& operator=(const MmapTranscriptSource&) = delete;

  std::uint64_t epoch() const { return epoch_; }
  std::uint32_t node_count() const { return n_; }

  /// Materialize message `i` (0-based) by re-packing its payload bits.
  Message message(std::size_t i) const;

  /// All messages in id order — the shape the decode pipeline consumes.
  std::vector<Message> messages() const;

 private:
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint32_t n_ = 0;
  std::vector<std::size_t> offsets_;  // n entries: record start offsets
};

}  // namespace referee
