// Transcript persistence: the message vector of a round, serialised to a
// byte stream. A referee can capture the (single!) round on the live
// network and decode it offline, later, elsewhere — one-round protocols
// make the transcript a complete, replayable artefact.
//
// Format (little-endian):
//   magic "RFT1", u32 n, then per message: u64 bit_size + ceil(bits/8) bytes.
#pragma once

#include <iosfwd>
#include <vector>

#include "model/message.hpp"

namespace referee {

struct Transcript {
  std::uint32_t n = 0;
  std::vector<Message> messages;
};

void write_transcript(std::ostream& os, const Transcript& t);
Transcript read_transcript(std::istream& is);

/// Convenience wrappers over string payloads (used by the CLI and tests).
std::string transcript_to_string(const Transcript& t);
Transcript transcript_from_string(const std::string& data);

}  // namespace referee
