#include "model/transcript.hpp"

#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "support/atomic_file.hpp"
#include "support/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define REFEREE_HAVE_MMAP 1
#endif

namespace referee {

namespace {

constexpr char kMagic[4] = {'R', 'F', 'T', '1'};

// Shared sanity ceilings for both formats: a transcript is one message
// per node of one round, so anything past these is a corrupt length
// field, not a big input.
constexpr std::uint64_t kMaxNodes = 1u << 26;
constexpr std::uint64_t kMaxMessageBits = 1ull << 32;

template <typename T>
void write_le(std::ostream& os, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    os.put(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T read_le(std::istream& is) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = is.get();
    if (c == EOF) throw DecodeError(DecodeFault::kTruncated,
                      "transcript: truncated stream");
    value |= static_cast<T>(static_cast<unsigned char>(c)) << (8 * i);
  }
  return value;
}

}  // namespace

void write_transcript(std::ostream& os, const Transcript& t) {
  REFEREE_CHECK_MSG(t.messages.size() == t.n,
                    "transcript must hold one message per node");
  os.write(kMagic, sizeof(kMagic));
  write_le<std::uint32_t>(os, t.n);
  for (const Message& m : t.messages) {
    write_le<std::uint64_t>(os, m.bit_size());
    BitReader r = m.reader();
    // Re-pack through the reader so only canonical bits are written.
    std::size_t remaining = m.bit_size();
    while (remaining > 0) {
      const int chunk = remaining >= 8 ? 8 : static_cast<int>(remaining);
      os.put(static_cast<char>(r.read_bits(chunk)));
      remaining -= static_cast<std::size_t>(chunk);
    }
  }
}

Transcript read_transcript(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (is.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    throw DecodeError(DecodeFault::kMalformed,
                      "transcript: bad magic");
  }
  Transcript t;
  t.n = read_le<std::uint32_t>(is);
  if (t.n > (1u << 26)) throw DecodeError(DecodeFault::kMalformed,
                      "transcript: absurd node count");
  t.messages.resize(t.n);
  for (std::uint32_t i = 0; i < t.n; ++i) {
    const std::uint64_t bits = read_le<std::uint64_t>(is);
    if (bits > (1ull << 32)) throw DecodeError(DecodeFault::kMalformed,
                      "transcript: absurd message");
    BitWriter w;
    std::uint64_t remaining = bits;
    while (remaining > 0) {
      const int c = is.get();
      if (c == EOF) throw DecodeError(DecodeFault::kTruncated,
                      "transcript: truncated message");
      const int chunk = remaining >= 8 ? 8 : static_cast<int>(remaining);
      w.write_bits(static_cast<std::uint64_t>(c) &
                       ((std::uint64_t{1} << chunk) - 1),
                   chunk);
      remaining -= static_cast<std::uint64_t>(chunk);
    }
    t.messages[i] = Message::seal(std::move(w));
  }
  return t;
}

std::string transcript_to_string(const Transcript& t) {
  std::ostringstream os(std::ios::binary);
  write_transcript(os, t);
  return os.str();
}

Transcript transcript_from_string(const std::string& data) {
  std::istringstream is(data, std::ios::binary);
  return read_transcript(is);
}

namespace {

struct TranscriptFileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t epoch;
  std::uint32_t n;
  std::uint32_t reserved2;
};
static_assert(sizeof(TranscriptFileHeader) == kTranscriptFileHeaderBytes);

/// Canonical payload bytes of a message: the same 8-bit repacking the RFT1
/// stream writer uses, so both formats agree on what a message's bits
/// serialise to.
std::string message_payload(const Message& m) {
  std::string out;
  out.reserve((m.bit_size() + 7) / 8);
  BitReader r = m.reader();
  std::size_t remaining = m.bit_size();
  while (remaining > 0) {
    const int chunk = remaining >= 8 ? 8 : static_cast<int>(remaining);
    out.push_back(static_cast<char>(r.read_bits(chunk)));
    remaining -= static_cast<std::size_t>(chunk);
  }
  return out;
}

Message message_from_payload(const unsigned char* data, std::uint64_t bits) {
  BitWriter w;
  std::uint64_t remaining = bits;
  while (remaining > 0) {
    const int chunk = remaining >= 8 ? 8 : static_cast<int>(remaining);
    w.write_bits(static_cast<std::uint64_t>(*data++) &
                     ((std::uint64_t{1} << chunk) - 1),
                 chunk);
    remaining -= static_cast<std::uint64_t>(chunk);
  }
  return Message::seal(std::move(w));
}

std::uint64_t load_le64(const unsigned char* p) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return value;
}

void store_le64(unsigned char* p, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
  }
}

}  // namespace

void write_transcript_file(const std::string& path, std::uint64_t epoch,
                           std::span<const Message> messages) {
  REFEREE_CHECK_MSG(messages.size() <= kMaxNodes,
                    "transcript file: absurd node count");
  TranscriptFileHeader header{};
  std::memcpy(header.magic, kTranscriptFileMagic, sizeof(header.magic));
  header.version = kTranscriptFileVersion;
  header.epoch = epoch;
  header.n = static_cast<std::uint32_t>(messages.size());
  write_file_atomically(path, [&](std::FILE* file) {
    REFEREE_CHECK_MSG(std::fwrite(&header, sizeof(header), 1, file) == 1,
                      "short write on " + path);
    for (const Message& m : messages) {
      unsigned char bits_le[8];
      store_le64(bits_le, m.bit_size());
      REFEREE_CHECK_MSG(
          std::fwrite(bits_le, sizeof(bits_le), 1, file) == 1,
          "short write on " + path);
      const std::string payload = message_payload(m);
      if (!payload.empty()) {
        REFEREE_CHECK_MSG(std::fwrite(payload.data(), 1, payload.size(),
                                      file) == payload.size(),
                          "short write on " + path);
      }
    }
  });
}

#if REFEREE_HAVE_MMAP

MmapTranscriptSource::MmapTranscriptSource(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  REFEREE_CHECK_MSG(fd >= 0, "cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw CheckError("cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kTranscriptFileHeaderBytes) {
    ::close(fd);
    throw CheckError("transcript file too short: " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  REFEREE_CHECK_MSG(map != MAP_FAILED, "cannot mmap " + path);
  // Guard the mapping until validation passes: a throwing constructor
  // runs no destructor, so an unguarded throw would leak the mapping on
  // every corrupt-file probe.
  struct MapGuard {
    void* map;
    std::size_t bytes;
    ~MapGuard() {
      if (map != nullptr) ::munmap(map, bytes);
    }
  } guard{map, size};

  TranscriptFileHeader header{};
  std::memcpy(&header, map, sizeof(header));
  REFEREE_CHECK_MSG(std::memcmp(header.magic, kTranscriptFileMagic,
                                sizeof(header.magic)) == 0,
                    "not a reftrn1 transcript file: " + path);
  REFEREE_CHECK_MSG(header.version == kTranscriptFileVersion,
                    "unsupported transcript file version in " + path);
  REFEREE_CHECK_MSG(header.n <= kMaxNodes,
                    "transcript file: absurd node count in " + path);

  // One validating walk over the records builds the offset index; after
  // this every message() call is a bounds-checked pointer chase.
  const auto* base = static_cast<const unsigned char*>(map);
  std::vector<std::size_t> offsets;
  offsets.reserve(header.n);
  std::size_t off = kTranscriptFileHeaderBytes;
  for (std::uint32_t i = 0; i < header.n; ++i) {
    REFEREE_CHECK_MSG(off + 8 <= size,
                      "truncated transcript record in " + path);
    const std::uint64_t bits = load_le64(base + off);
    REFEREE_CHECK_MSG(bits <= kMaxMessageBits,
                      "transcript file: absurd message in " + path);
    const std::size_t payload = static_cast<std::size_t>((bits + 7) / 8);
    REFEREE_CHECK_MSG(off + 8 + payload <= size,
                      "truncated transcript record in " + path);
    offsets.push_back(off);
    off += 8 + payload;
  }
  REFEREE_CHECK_MSG(off == size,
                    "transcript file has trailing bytes: " + path);

  map_ = std::exchange(guard.map, nullptr);
  map_bytes_ = size;
  epoch_ = header.epoch;
  n_ = header.n;
  offsets_ = std::move(offsets);
}

MmapTranscriptSource::~MmapTranscriptSource() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

#else  // !REFEREE_HAVE_MMAP

MmapTranscriptSource::MmapTranscriptSource(const std::string& path) {
  throw CheckError("mmap transcript sources require a POSIX host: " + path);
}

MmapTranscriptSource::~MmapTranscriptSource() = default;

#endif

MmapTranscriptSource::MmapTranscriptSource(
    MmapTranscriptSource&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      epoch_(std::exchange(other.epoch_, 0)),
      n_(std::exchange(other.n_, 0)),
      offsets_(std::move(other.offsets_)) {
  other.offsets_.clear();
}

MmapTranscriptSource& MmapTranscriptSource::operator=(
    MmapTranscriptSource&& other) noexcept {
  if (this != &other) {
#if REFEREE_HAVE_MMAP
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
#endif
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    epoch_ = std::exchange(other.epoch_, 0);
    n_ = std::exchange(other.n_, 0);
    offsets_ = std::move(other.offsets_);
    other.offsets_.clear();
  }
  return *this;
}

Message MmapTranscriptSource::message(std::size_t i) const {
  REFEREE_CHECK_MSG(i < n_, "transcript message index out of range");
  const auto* base = static_cast<const unsigned char*>(map_);
  const std::uint64_t bits = load_le64(base + offsets_[i]);
  return message_from_payload(base + offsets_[i] + 8, bits);
}

std::vector<Message> MmapTranscriptSource::messages() const {
  std::vector<Message> out;
  out.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) out.push_back(message(i));
  return out;
}

}  // namespace referee
