#include "model/transcript.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace referee {

namespace {

constexpr char kMagic[4] = {'R', 'F', 'T', '1'};

template <typename T>
void write_le(std::ostream& os, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    os.put(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T read_le(std::istream& is) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = is.get();
    if (c == EOF) throw DecodeError(DecodeFault::kTruncated,
                      "transcript: truncated stream");
    value |= static_cast<T>(static_cast<unsigned char>(c)) << (8 * i);
  }
  return value;
}

}  // namespace

void write_transcript(std::ostream& os, const Transcript& t) {
  REFEREE_CHECK_MSG(t.messages.size() == t.n,
                    "transcript must hold one message per node");
  os.write(kMagic, sizeof(kMagic));
  write_le<std::uint32_t>(os, t.n);
  for (const Message& m : t.messages) {
    write_le<std::uint64_t>(os, m.bit_size());
    BitReader r = m.reader();
    // Re-pack through the reader so only canonical bits are written.
    std::size_t remaining = m.bit_size();
    while (remaining > 0) {
      const int chunk = remaining >= 8 ? 8 : static_cast<int>(remaining);
      os.put(static_cast<char>(r.read_bits(chunk)));
      remaining -= static_cast<std::size_t>(chunk);
    }
  }
}

Transcript read_transcript(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (is.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    throw DecodeError(DecodeFault::kMalformed,
                      "transcript: bad magic");
  }
  Transcript t;
  t.n = read_le<std::uint32_t>(is);
  if (t.n > (1u << 26)) throw DecodeError(DecodeFault::kMalformed,
                      "transcript: absurd node count");
  t.messages.resize(t.n);
  for (std::uint32_t i = 0; i < t.n; ++i) {
    const std::uint64_t bits = read_le<std::uint64_t>(is);
    if (bits > (1ull << 32)) throw DecodeError(DecodeFault::kMalformed,
                      "transcript: absurd message");
    BitWriter w;
    std::uint64_t remaining = bits;
    while (remaining > 0) {
      const int c = is.get();
      if (c == EOF) throw DecodeError(DecodeFault::kTruncated,
                      "transcript: truncated message");
      const int chunk = remaining >= 8 ? 8 : static_cast<int>(remaining);
      w.write_bits(static_cast<std::uint64_t>(c) &
                       ((std::uint64_t{1} << chunk) - 1),
                   chunk);
      remaining -= static_cast<std::uint64_t>(chunk);
    }
    t.messages[i] = Message::seal(std::move(w));
  }
  return t;
}

std::string transcript_to_string(const Transcript& t) {
  std::ostringstream os(std::ios::binary);
  write_transcript(os, t);
  return os.str();
}

Transcript transcript_from_string(const std::string& data) {
  std::istringstream is(data, std::ios::binary);
  return read_transcript(is);
}

}  // namespace referee
