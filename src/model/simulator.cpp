#include "model/simulator.hpp"

#include <algorithm>

#include "model/adaptive_adversary.hpp"
#include "model/multi_round_runner.hpp"

namespace referee {

std::vector<Message> Simulator::run_local_phase(
    const Graph& g, const LocalEncoder& protocol) const {
  const LocalViewPack views(g);
  std::vector<Message> messages;
  run_local_phase(views, protocol, messages);
  return messages;
}

void Simulator::run_local_phase(const LocalViewPack& views,
                                const LocalEncoder& protocol,
                                std::vector<Message>& out) const {
  const std::size_t n = views.size();
  out.resize(n);
  maybe_parallel_for_chunks(pool_, 0, n, [&](std::size_t lo, std::size_t hi) {
    BitWriter scratch;  // reused across the whole chunk
    for (std::size_t v = lo; v < hi; ++v) {
      scratch.clear();
      protocol.encode(views.view(static_cast<Vertex>(v)), scratch);
      out[v].assign(scratch);
    }
  });
}

Graph Simulator::run_reconstruction(const Graph& g,
                                    const ReconstructionProtocol& protocol,
                                    FrugalityReport* report) const {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto messages = run_local_phase(g, protocol);
  if (report != nullptr) *report = audit_frugality(n, messages);
  return protocol.reconstruct(n, messages);
}

bool Simulator::run_decision(const Graph& g, const DecisionProtocol& protocol,
                             FrugalityReport* report) const {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto messages = run_local_phase(g, protocol);
  if (report != nullptr) *report = audit_frugality(n, messages);
  return protocol.decide(n, messages);
}

Graph Simulator::run_multi_round(const Graph& g,
                                 const MultiRoundProtocol& protocol,
                                 MultiRoundReport* report) const {
  // Fault-free convenience form: the runner still seals/opens every round
  // (under epoch 0), so the frugality audit and round accounting are the
  // same ones a campaign cell would see.
  const LocalViewPack views(g);
  std::vector<Message> wire;
  MultiRoundRunner runner(pool_);
  MultiRoundRunOptions opts;
  opts.report = report;
  return runner.run(views, protocol, wire, DecodeArena::for_current_thread(),
                    opts);
}

namespace {

// Per-family stream tags for the correlated models. Distinct from the
// per-message streams (seed ^ (2i+1), seed ^ (2i+2)) by construction:
// every tag exceeds 2 * max message count.
constexpr std::uint64_t kDropStream = 0x64726f7000000001ull;   // "drop"
constexpr std::uint64_t kSwapStream = 0x7377617000000002ull;   // "swap"
constexpr std::uint64_t kDupStream = 0x6475706c00000003ull;    // "dupl"
constexpr std::uint64_t kStaleStream = 0x7374616c00000004ull;  // "stal"

// `want` distinct slots out of [0, n), deterministic in the family stream.
std::vector<std::uint32_t> pick_slots(std::uint64_t seed, std::uint64_t tag,
                                      std::size_t n, std::size_t want) {
  Rng rng(mix64(seed ^ tag));
  const auto k = static_cast<std::uint32_t>(std::min(want, n));
  return rng.sample_subset(static_cast<std::uint32_t>(n), k);
}

}  // namespace

FaultJournal Simulator::inject_faults(std::vector<Message>& messages,
                                      const FaultPlan& plan,
                                      std::span<const Message> stale_donor) {
  FaultJournal journal;
  if (!plan.active()) return journal;
  const std::size_t n = messages.size();
  const CorrelatedFaults& cor = plan.correlated;

  // 1. Stale replays: the chosen slots carry the donor cell's message for
  // the same vertex. The donor transcript is the caller's responsibility
  // (the campaign runner encodes the donor cell under its own epoch).
  if (cor.stale_replays > 0 && n > 0) {
    REFEREE_CHECK_MSG(stale_donor.size() == n,
                      "stale replay needs a donor transcript of equal size");
    for (const auto slot :
         pick_slots(plan.seed, kStaleStream, n, cor.stale_replays)) {
      messages[slot] = stale_donor[slot];
      journal.events.push_back(
          FaultEvent{FaultType::kStaleReplay, slot, 0});
    }
  }

  // 2. Payload swaps: disjoint pairs, sampled as one subset of 2·count
  // slots paired in sorted order.
  if (cor.payload_swaps > 0 && n >= 2) {
    const auto slots = pick_slots(plan.seed, kSwapStream, n,
                                  2 * static_cast<std::size_t>(cor.payload_swaps));
    for (std::size_t p = 0; p + 1 < slots.size(); p += 2) {
      std::swap(messages[slots[p]], messages[slots[p + 1]]);
      journal.events.push_back(
          FaultEvent{FaultType::kPayloadSwap, slots[p], slots[p + 1]});
    }
  }

  // 3. Byzantine duplicate ids: (src, dst) pairs from one subset; dst's
  // message becomes a copy of src's, so two slots claim src's id.
  if (cor.duplicate_ids > 0 && n >= 2) {
    const auto slots = pick_slots(plan.seed, kDupStream, n,
                                  2 * static_cast<std::size_t>(cor.duplicate_ids));
    for (std::size_t p = 0; p + 1 < slots.size(); p += 2) {
      messages[slots[p + 1]] = messages[slots[p]];
      journal.events.push_back(
          FaultEvent{FaultType::kDuplicateId, slots[p + 1], slots[p]});
    }
  }

  // 4. Drop a vertex subset: every selected message is blanked to 0 bits —
  // the referee waited for a message that never arrived.
  if (cor.drop_fraction > 0 && n > 0) {
    const auto want = std::max<std::size_t>(
        1, static_cast<std::size_t>(cor.drop_fraction *
                                        static_cast<double>(n) +
                                    0.5));
    for (const auto slot : pick_slots(plan.seed, kDropStream, n, want)) {
      messages[slot] = Message();
      journal.events.push_back(FaultEvent{FaultType::kDrop, slot, 0});
    }
  }

  // 5. Independent per-message noise, acting on the wire as delivered.
  for (std::size_t i = 0; i < n; ++i) {
    Message& m = messages[i];
    // Independent per-(message, fault-type) streams: whether one message is
    // hit, or one fault type fires, never shifts the draws of any other —
    // the stream-alignment contract documented on FaultPlan.
    Rng flip_rng(mix64(plan.seed ^ (2 * i + 1)));
    Rng trunc_rng(mix64(plan.seed ^ (2 * i + 2)));
    if (flip_rng.chance(plan.bit_flip_chance) && m.bit_size() > 0) {
      const std::size_t bit = flip_rng.below(m.bit_size());
      m.flip_bit(bit);
      journal.events.push_back(FaultEvent{FaultType::kBitFlip, i, bit});
    }
    if (trunc_rng.chance(plan.truncate_chance) && m.bit_size() > 1) {
      // Uniform proper prefix of >= 1 bit: 0-bit messages have no decode
      // contract, so 1-bit messages are left intact.
      const std::size_t keep = 1 + trunc_rng.below(m.bit_size() - 1);
      m.truncate(keep);
      journal.events.push_back(FaultEvent{FaultType::kTruncate, i, keep});
    }
  }

  // 6. The adaptive adversary strikes last: it reads the wire exactly as
  // the oblivious families delivered it and spends its budget on the
  // scored targets. Its journal entries append after every oblivious
  // event, preserving application order end to end.
  if (plan.adaptive.active()) {
    FaultJournal adaptive = apply_adaptive_adversary(
        messages, static_cast<std::uint32_t>(n), plan.adaptive, plan.seed);
    journal.events.insert(journal.events.end(), adaptive.events.begin(),
                          adaptive.events.end());
  }
  return journal;
}

void Simulator::inject_faults(std::vector<Message>& messages,
                              const FaultPlan& plan) {
  REFEREE_CHECK_MSG(plan.correlated.stale_replays == 0,
                    "stale replays need the donor-transcript overload");
  inject_faults(messages, plan, {});
}

}  // namespace referee
