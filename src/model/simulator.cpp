#include "model/simulator.hpp"

#include <algorithm>

namespace referee {

std::vector<Message> Simulator::run_local_phase(
    const Graph& g, const LocalEncoder& protocol) const {
  const LocalViewPack views(g);
  std::vector<Message> messages;
  run_local_phase(views, protocol, messages);
  return messages;
}

void Simulator::run_local_phase(const LocalViewPack& views,
                                const LocalEncoder& protocol,
                                std::vector<Message>& out) const {
  const std::size_t n = views.size();
  out.resize(n);
  maybe_parallel_for_chunks(pool_, 0, n, [&](std::size_t lo, std::size_t hi) {
    BitWriter scratch;  // reused across the whole chunk
    for (std::size_t v = lo; v < hi; ++v) {
      scratch.clear();
      protocol.encode(views.view(static_cast<Vertex>(v)), scratch);
      out[v].assign(scratch);
    }
  });
}

Graph Simulator::run_reconstruction(const Graph& g,
                                    const ReconstructionProtocol& protocol,
                                    FrugalityReport* report) const {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto messages = run_local_phase(g, protocol);
  if (report != nullptr) *report = audit_frugality(n, messages);
  return protocol.reconstruct(n, messages);
}

bool Simulator::run_decision(const Graph& g, const DecisionProtocol& protocol,
                             FrugalityReport* report) const {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto messages = run_local_phase(g, protocol);
  if (report != nullptr) *report = audit_frugality(n, messages);
  return protocol.decide(n, messages);
}

Graph Simulator::run_multi_round(const Graph& g,
                                 const MultiRoundProtocol& protocol,
                                 MultiRoundReport* report) const {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const LocalViewPack views(g);
  std::vector<std::vector<Message>> inbox;     // inbox[round][node]
  std::vector<Message> feedback;               // broadcasts so far
  MultiRoundReport local_report;
  for (unsigned round = 0; round < protocol.max_rounds(); ++round) {
    std::vector<Message> round_msgs(n);
    maybe_parallel_for(pool_, 0, n, [&](std::size_t v) {
      round_msgs[v] = protocol.node_message(views.view(static_cast<Vertex>(v)),
                                            round, feedback);
    });
    local_report.per_round.push_back(audit_frugality(n, round_msgs));
    local_report.max_bits =
        std::max(local_report.max_bits, local_report.per_round.back().max_bits);
    local_report.rounds_used = round + 1;
    inbox.push_back(std::move(round_msgs));
    auto outcome = protocol.referee_round(n, round, inbox);
    if (outcome.result.has_value()) {
      if (report != nullptr) *report = std::move(local_report);
      return *std::move(outcome.result);
    }
    local_report.broadcast_bits += outcome.broadcast.bit_size();
    feedback.push_back(std::move(outcome.broadcast));
  }
  throw DecodeError(protocol.name() + ": exceeded max_rounds without result");
}

void Simulator::inject_faults(std::vector<Message>& messages,
                              const FaultPlan& plan) {
  if (!plan.active()) return;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    Message& m = messages[i];
    // Independent per-(message, fault-type) streams: whether one message is
    // hit, or one fault type fires, never shifts the draws of any other —
    // the stream-alignment contract documented on FaultPlan.
    Rng flip_rng(mix64(plan.seed ^ (2 * i + 1)));
    Rng trunc_rng(mix64(plan.seed ^ (2 * i + 2)));
    if (flip_rng.chance(plan.bit_flip_chance) && m.bit_size() > 0) {
      m.flip_bit(flip_rng.below(m.bit_size()));
    }
    if (trunc_rng.chance(plan.truncate_chance) && m.bit_size() > 1) {
      // Uniform proper prefix of >= 1 bit: 0-bit messages have no decode
      // contract, so 1-bit messages are left intact.
      m.truncate(1 + trunc_rng.below(m.bit_size() - 1));
    }
  }
}

}  // namespace referee
