#include "model/simulator.hpp"

#include <algorithm>

namespace referee {

std::vector<Message> Simulator::run_local_phase(
    const Graph& g, const LocalEncoder& protocol) const {
  const std::size_t n = g.vertex_count();
  std::vector<Message> messages(n);
  maybe_parallel_for(pool_, 0, n, [&](std::size_t v) {
    messages[v] = protocol.local(local_view_of(g, static_cast<Vertex>(v)));
  });
  return messages;
}

Graph Simulator::run_reconstruction(const Graph& g,
                                    const ReconstructionProtocol& protocol,
                                    FrugalityReport* report) const {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto messages = run_local_phase(g, protocol);
  if (report != nullptr) *report = audit_frugality(n, messages);
  return protocol.reconstruct(n, messages);
}

bool Simulator::run_decision(const Graph& g, const DecisionProtocol& protocol,
                             FrugalityReport* report) const {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto messages = run_local_phase(g, protocol);
  if (report != nullptr) *report = audit_frugality(n, messages);
  return protocol.decide(n, messages);
}

Graph Simulator::run_multi_round(const Graph& g,
                                 const MultiRoundProtocol& protocol,
                                 MultiRoundReport* report) const {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const auto views = local_views(g);
  std::vector<std::vector<Message>> inbox;     // inbox[round][node]
  std::vector<Message> feedback;               // broadcasts so far
  MultiRoundReport local_report;
  for (unsigned round = 0; round < protocol.max_rounds(); ++round) {
    std::vector<Message> round_msgs(n);
    maybe_parallel_for(pool_, 0, n, [&](std::size_t v) {
      round_msgs[v] = protocol.node_message(views[v], round, feedback);
    });
    local_report.per_round.push_back(audit_frugality(n, round_msgs));
    local_report.max_bits =
        std::max(local_report.max_bits, local_report.per_round.back().max_bits);
    local_report.rounds_used = round + 1;
    inbox.push_back(std::move(round_msgs));
    auto outcome = protocol.referee_round(n, round, inbox);
    if (outcome.result.has_value()) {
      if (report != nullptr) *report = std::move(local_report);
      return *std::move(outcome.result);
    }
    local_report.broadcast_bits += outcome.broadcast.bit_size();
    feedback.push_back(std::move(outcome.broadcast));
  }
  throw DecodeError(protocol.name() + ": exceeded max_rounds without result");
}

void Simulator::inject_faults(std::vector<Message>& messages,
                              const FaultPlan& plan) {
  if (!plan.active()) return;
  Rng rng(plan.seed);
  for (Message& m : messages) {
    if (m.bit_size() > 0 && rng.chance(plan.bit_flip_chance)) {
      m.flip_bit(rng.below(m.bit_size()));
    }
    if (m.bit_size() > 0 && rng.chance(plan.truncate_chance)) {
      m.truncate(rng.below(m.bit_size()));
    }
  }
}

}  // namespace referee
