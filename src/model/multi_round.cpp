#include "model/multi_round_runner.hpp"

#include <algorithm>
#include <utility>

#include "model/envelope.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace referee {

namespace {

// Stream tag deriving per-round epochs and fault seeds from the cell's.
// Round 0 stays untouched on both axes so a 1-round cell is wire-identical
// to a single-round campaign cell sealed under the same epoch.
constexpr std::uint64_t kRoundStream = 0x726f756e64000006ull;  // "round"

}  // namespace

std::uint64_t round_epoch(std::uint64_t cell_epoch, unsigned round) {
  if (round == 0) return cell_epoch;
  return mix64(cell_epoch ^ kRoundStream ^ round);
}

std::uint64_t round_fault_seed(std::uint64_t seed, unsigned round) {
  if (round == 0) return seed;
  return mix64(seed ^ kRoundStream ^ round);
}

Graph MultiRoundRunner::run(const LocalViewPack& views,
                            const MultiRoundProtocol& protocol,
                            std::vector<Message>& wire, DecodeArena& arena,
                            const MultiRoundRunOptions& opts) const {
  const auto n = static_cast<std::uint32_t>(views.size());

  // Out-parameters are written in place, round by round, so a typed refusal
  // mid-cell still leaves the caller with the rounds executed and the
  // faults applied up to the throw — classify_cell and shrink_scenario
  // depend on that for multi-round repros.
  MultiRoundReport report_fallback;
  MultiRoundReport& report =
      opts.report != nullptr ? *opts.report : report_fallback;
  report = MultiRoundReport{};
  FaultJournal journal_fallback;
  FaultJournal& journal =
      opts.journal != nullptr ? *opts.journal : journal_fallback;
  journal.events.clear();

  std::vector<std::vector<Message>> inbox;  // inbox[round][node], payloads
  std::vector<Message> feedback;            // broadcasts so far
  for (unsigned round = 0; round < protocol.max_rounds(); ++round) {
    // Local phase: one uplink message per node, into the caller's reusable
    // wire buffer.
    wire.resize(n);
    maybe_parallel_for(pool_, 0, n, [&](std::size_t v) {
      wire[v] = protocol.node_message(views.view(static_cast<Vertex>(v)),
                                      round, feedback);
    });

    // Frugality is audited pre-seal: the budget statement is about the
    // protocol's payloads, not the envelope substrate.
    report.per_round.push_back(audit_frugality(n, wire));
    report.max_bits = std::max(report.max_bits, report.per_round.back().max_bits);
    report.rounds_used = round + 1;

    const std::uint64_t epoch = round_epoch(opts.cell_epoch, round);
    seal_transcript(epoch, n, wire);

    if (opts.faults != nullptr && opts.faults->active()) {
      FaultPlan plan = *opts.faults;
      plan.seed = round_fault_seed(opts.faults->seed, round);
      // Stale replays splice donor messages sealed under the donor cell's
      // epoch; the donor wire only exists for round 0 (and the tag check
      // refuses there, so later rounds never reach this branch anyway).
      if (round != 0) plan.correlated.stale_replays = 0;
      FaultJournal applied = Simulator::inject_faults(
          wire, plan, round == 0 ? opts.round0_donor : std::span<const Message>{});
      journal.events.insert(journal.events.end(), applied.events.begin(),
                            applied.events.end());
    }

    if (opts.capture != nullptr) (*opts.capture)(round, epoch, n, wire);

    // Open under the round epoch: any envelope violation is a typed
    // DecodeError, which propagates as this cell's loud refusal.
    inbox.emplace_back();
    open_transcript_into(epoch, n, wire, arena, inbox.back());

    auto outcome = protocol.referee_round(n, round, inbox);
    if (outcome.result.has_value()) {
      return *std::move(outcome.result);
    }
    report.broadcast_bits += outcome.broadcast.bit_size();
    feedback.push_back(std::move(outcome.broadcast));
  }
  throw DecodeError(DecodeFault::kStalled,
                    protocol.name() + ": exceeded max_rounds without result");
}

}  // namespace referee
