// Frugality accounting (§I-B): a protocol is frugal when every message fits
// in O(log n) bits. The library never *assumes* a protocol is frugal — it
// measures real message lengths and reports the constant in front of log n.
#pragma once

#include <cstdint>
#include <span>

#include "model/message.hpp"

namespace referee {

struct FrugalityReport {
  std::uint32_t n = 0;
  std::size_t max_bits = 0;     // max_v |m_v|, the paper's |Γ^l(G)|
  std::size_t total_bits = 0;   // referee-side inbound traffic
  std::size_t budget_bits = 0;  // ceil(log2(n+1)), the unit of "O(log n)"

  /// max message length expressed in log-n units: the c in c * log n.
  double constant() const {
    return budget_bits == 0
               ? 0.0
               : static_cast<double>(max_bits) / static_cast<double>(budget_bits);
  }

  /// Frugal w.r.t. an explicit constant bound.
  bool is_frugal(double max_constant) const {
    return constant() <= max_constant;
  }
};

FrugalityReport audit_frugality(std::uint32_t n,
                                std::span<const Message> messages);

}  // namespace referee
