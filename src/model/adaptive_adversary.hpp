// The transcript-aware (adaptive) fault injector.
//
// Every fault model before this one was oblivious: it corrupted slots drawn
// blindly from a seed stream. A real adversary looks first. This injector
// opens the sealed wire transcript — the exact bytes the referee is about
// to see, via an in-memory envelope or an MmapTranscriptSource — scores
// every slot from its *contents*, and spends a deterministic corruption
// budget on the most valuable targets:
//
//   * largest payload first — under every campaign protocol the payload
//     size grows with the sender's degree, so "largest payload" is the
//     wire-observable proxy for "highest-degree sender";
//   * epoch-boundary slots (the first and last message of the round) are
//     preferred at equal size — they frame the transcript, and off-by-one
//     decoders historically die there.
//
// The search shape follows the beam contexts of ltsmin's partial-order
// reduction (SNIPPETS.md, por-beam.c): one scored StrikeContext per
// candidate slot, a work list always consuming the context with the
// lowest score, each consumption spending budget. Strike kinds rotate
// through blank / header-flip / truncate / swap so a budget of a few
// points exercises several distinct envelope checks per cell.
//
// Loudness by construction: every strike the adversary can afford targets
// the *envelope*, where each corruption has a guaranteed typed refusal —
//   blank                -> kMissingMessage
//   header flip (tag)    -> kEpochMismatch
//   header flip (id)     -> kIdMismatch
//   truncate into header -> kTruncated
//   swap two slots       -> kIdMismatch
// so the zero-silent-wrong contract is testable per strike, not just per
// sweep: expected_envelope_fault() replays the envelope's check order over
// a journal and predicts the exact DecodeFault the referee must raise.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/fault_model.hpp"
#include "model/message.hpp"

namespace referee {

/// One scored candidate target — the por-beam "search context" of the
/// budgeted strike search. Lower score = struck earlier.
struct StrikeContext {
  std::size_t slot = 0;
  std::uint64_t score = 0;

  friend bool operator==(const StrikeContext&, const StrikeContext&) = default;
};

/// Score every slot of a sealed wire transcript. Pure function of the wire
/// (bit sizes and slot positions); exposed for the harness, which asserts
/// the adversary really does strike the largest payload first.
std::vector<StrikeContext> score_strike_targets(
    std::span<const Message> wire);

/// Apply the adaptive adversary to a sealed wire transcript in place.
/// `n` is the node count the envelope was sealed for (header width =
/// kEpochTagBits + log_budget_bits(n)); `seed` drives only the bit choice
/// inside a chosen header region, never target selection. Returns the
/// journal of applied strikes, in application order (lowest score first).
/// Deterministic in (wire contents, n, adv.budget, seed).
FaultJournal apply_adaptive_adversary(std::vector<Message>& wire,
                                      std::uint32_t n,
                                      const AdaptiveFaults& adv,
                                      std::uint64_t seed);

/// Predict the typed DecodeFault name ("missing-message", ...) the
/// envelope must raise for a journal of adaptive strikes, by replaying the
/// open_transcript check order: slots are checked in id order, and within
/// a slot presence before tag before id. Empty string when the journal
/// holds no adaptive events. The fault-contract harness asserts
/// ScenarioResult::detail equals this — cause→effect per strike.
std::string expected_envelope_fault(const FaultJournal& journal,
                                    std::uint32_t n);

}  // namespace referee
