#include "model/campaign.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>

#include "graph/algorithms.hpp"
#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "protocols/bounded_degree.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/forest_protocol.hpp"
#include "protocols/generalized_degeneracy.hpp"
#include "protocols/recognition.hpp"
#include "protocols/statistics.hpp"
#include "sketch/bipartiteness.hpp"
#include "sketch/connectivity.hpp"
#include "support/bits.hpp"

namespace referee {

namespace {

// Distinct stream tags so graph generation, fault injection and sketch
// randomness never share draws even though they all derive from spec.seed.
constexpr std::uint64_t kGraphStream = 0x6772617068ull;   // "graph"
constexpr std::uint64_t kFaultStream = 0x6661756c74ull;   // "fault"
constexpr std::uint64_t kSketchStream = 0x736b657463ull;  // "sketc"

void append_f(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  const int len = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  REFEREE_CHECK_MSG(len >= 0 && static_cast<std::size_t>(len) < sizeof(buf),
                    "campaign json row overflows the format buffer");
  out.append(buf, buf + len);
}

ScenarioResult run_one(const ScenarioSpec& spec, const Simulator& sim,
                       std::vector<Message>& arena) {
  ScenarioResult res;
  const Graph g = make_campaign_graph(spec);
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const LocalViewPack views(g);

  FaultPlan plan = spec.faults;
  plan.seed = mix64(spec.seed ^ kFaultStream);

  const auto run_local = [&](const LocalEncoder& enc) {
    sim.run_local_phase(views, enc, arena);
    Simulator::inject_faults(arena, plan);
    res.report = audit_frugality(n, arena);
  };

  const std::string& proto = spec.protocol;
  try {
    if (proto == "degeneracy" || proto == "generalized" ||
        proto == "forest" || proto == "bounded-degree") {
      std::unique_ptr<ReconstructionProtocol> rp;
      if (proto == "degeneracy") {
        rp = std::make_unique<DegeneracyReconstruction>(spec.k);
      } else if (proto == "generalized") {
        rp = std::make_unique<GeneralizedDegeneracyReconstruction>(spec.k);
      } else if (proto == "forest") {
        rp = std::make_unique<ForestReconstruction>();
      } else {
        rp = std::make_unique<BoundedDegreeReconstruction>(
            std::max<std::size_t>(1, g.max_degree()));
      }
      run_local(*rp);
      const Graph h = rp->reconstruct(n, arena);
      res.outcome = (h == g) ? "exact" : "silent-wrong";
    } else if (proto == "stats") {
      const DegreeStatistics stats;
      run_local(stats);
      const bool correct =
          DegreeStatistics::edge_count(n, arena) == g.edge_count() &&
          DegreeStatistics::max_degree(n, arena) == g.max_degree();
      res.outcome = correct ? "correct" : "silent-wrong";
    } else if (proto == "recognize-degeneracy") {
      const auto recog = make_degeneracy_recognizer(spec.k);
      run_local(*recog);
      const bool truth = degeneracy(g).degeneracy <= spec.k;
      res.outcome = recog->decide(n, arena) == truth ? "correct"
                                                     : "silent-wrong";
    } else if (proto == "connectivity") {
      const SketchConnectivityProtocol sc(
          SketchParams{.seed = mix64(spec.seed ^ kSketchStream),
                       .rounds = 0,
                       .copies = 3});
      run_local(sc);
      const bool truth = component_count(g) <= 1;
      res.outcome = sc.decide(n, arena) == truth ? "correct" : "silent-wrong";
    } else if (proto == "bipartite") {
      const SketchBipartitenessProtocol sb(
          SketchParams{.seed = mix64(spec.seed ^ kSketchStream),
                       .rounds = 0,
                       .copies = 3});
      run_local(sb);
      const bool truth = is_bipartite(g);
      res.outcome = sb.decide(n, arena) == truth ? "correct" : "silent-wrong";
    } else {
      throw CheckError("unknown campaign protocol: " + proto);
    }
  } catch (const DecodeError&) {
    res.outcome = "loud";
  }
  res.contract_ok = res.outcome != "silent-wrong";
  return res;
}

}  // namespace

const std::vector<std::string>& campaign_generators() {
  static const std::vector<std::string> names{
      "path",     "cycle",    "complete", "star",      "grid",
      "hypercube", "tree",    "forest",   "gnp",       "connected-gnp",
      "gnm",      "kdeg",     "kdeg-exact", "ktree",   "apollonian",
      "bipartite", "squarefree"};
  return names;
}

const std::vector<std::string>& campaign_protocols() {
  static const std::vector<std::string> names{
      "degeneracy", "generalized", "forest",       "bounded-degree",
      "stats",      "recognize-degeneracy", "connectivity", "bipartite"};
  return names;
}

Graph make_campaign_graph(const ScenarioSpec& spec) {
  Rng rng(mix64(spec.seed ^ kGraphStream));
  const std::size_t n = std::max<std::size_t>(2, spec.n);
  const unsigned k = std::max(1u, spec.k);
  const std::string& f = spec.generator;
  // Random families consume the stream directly; deterministic topologies
  // get a seed-dependent label shuffle so every grid cell is a distinct
  // labelled instance (protocols see labels, not shapes).
  if (f == "tree") return gen::random_tree(n, rng);
  if (f == "forest") return gen::random_forest(n, 0.2, rng);
  if (f == "gnp") return gen::gnp(n, spec.p, rng);
  if (f == "connected-gnp") return gen::connected_gnp(n, spec.p, rng);
  if (f == "gnm") return gen::gnm(n, 2 * n, rng);
  if (f == "kdeg") return gen::random_k_degenerate(n, k, rng);
  if (f == "kdeg-exact") {
    return gen::random_k_degenerate(n, k, rng, /*exactly_k=*/true);
  }
  if (f == "ktree") return gen::random_k_tree(n, k, rng);
  if (f == "apollonian") return gen::random_apollonian(n, rng);
  if (f == "bipartite") {
    return gen::random_bipartite(n / 2, n - n / 2, spec.p, rng);
  }
  if (f == "squarefree") return gen::random_square_free(n, 30 * n, rng);

  Graph g;
  if (f == "path") {
    g = gen::path(n);
  } else if (f == "cycle") {
    g = gen::cycle(n);
  } else if (f == "complete") {
    g = gen::complete(n);
  } else if (f == "star") {
    g = gen::star(n - 1);
  } else if (f == "grid") {
    const std::size_t rows = std::max<std::size_t>(2, n / 8);
    g = gen::grid(rows, (n + rows - 1) / rows);
  } else if (f == "hypercube") {
    g = gen::hypercube(static_cast<unsigned>(floor_log2(n)));
  } else {
    throw CheckError("unknown campaign generator: " + f);
  }
  return gen::shuffle_labels(g, rng);
}

std::vector<ScenarioSpec> expand_grid(const CampaignConfig& config) {
  std::vector<ScenarioSpec> grid;
  grid.reserve(config.generators.size() * config.sizes.size() *
               config.protocols.size() * config.seeds.size() *
               config.fault_plans.size());
  for (const auto& generator : config.generators) {
    for (const auto n : config.sizes) {
      for (const auto& protocol : config.protocols) {
        for (const auto seed : config.seeds) {
          for (const auto& plan : config.fault_plans) {
            ScenarioSpec spec;
            spec.generator = generator;
            spec.n = n;
            spec.k = config.k;
            spec.p = config.p;
            spec.protocol = protocol;
            spec.seed = seed;
            spec.faults = plan;
            grid.push_back(std::move(spec));
          }
        }
      }
    }
  }
  return grid;
}

std::vector<ScenarioResult> CampaignRunner::run(
    const std::vector<ScenarioSpec>& grid) const {
  std::vector<ScenarioResult> results(grid.size());
  const Simulator inner;  // scenarios parallelise at grid level
  maybe_parallel_for_chunks(
      pool_, 0, grid.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<Message> arena;  // reused across the chunk's scenarios
        for (std::size_t i = lo; i < hi; ++i) {
          results[i] = run_one(grid[i], inner, arena);
        }
      },
      /*serial_cutoff=*/2);
  return results;
}

std::vector<CampaignAggregate> aggregate_campaign(
    const std::vector<ScenarioSpec>& grid,
    const std::vector<ScenarioResult>& results) {
  REFEREE_CHECK_MSG(grid.size() == results.size(),
                    "grid/result size mismatch");
  std::vector<CampaignAggregate> aggs;
  std::vector<double> sums;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& spec = grid[i];
    const auto& res = results[i];
    auto it = std::find_if(aggs.begin(), aggs.end(), [&](const auto& a) {
      return a.generator == spec.generator && a.protocol == spec.protocol;
    });
    if (it == aggs.end()) {
      aggs.push_back(CampaignAggregate{spec.generator, spec.protocol});
      sums.push_back(0.0);
      it = aggs.end() - 1;
    }
    auto& agg = *it;
    auto& sum = sums[static_cast<std::size_t>(it - aggs.begin())];
    ++agg.scenarios;
    if (res.outcome == "exact" || res.outcome == "correct") ++agg.ok;
    if (res.outcome == "loud") ++agg.loud;
    if (res.outcome == "silent-wrong") ++agg.silent_wrong;
    agg.max_bits = std::max(agg.max_bits, res.report.max_bits);
    agg.max_constant = std::max(agg.max_constant, res.report.constant());
    sum += static_cast<double>(res.report.max_bits);
    agg.mean_max_bits = sum / static_cast<double>(agg.scenarios);
  }
  return aggs;
}

std::string campaign_json(const std::vector<ScenarioSpec>& grid,
                          const std::vector<ScenarioResult>& results) {
  REFEREE_CHECK_MSG(grid.size() == results.size(),
                    "grid/result size mismatch");
  std::string out;
  out.reserve(grid.size() * 220);
  out += "{\n  \"schema\": \"referee-campaign-v1\",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& s = grid[i];
    const auto& r = results[i];
    // "n" is the real vertex count the scenario ran on (families like
    // hypercube and grid round the requested size); "spec_n" is the grid
    // axis value — frugality columns must be plotted against "n".
    append_f(out,
             "    {\"i\": %zu, \"generator\": \"%s\", \"n\": %u, "
             "\"spec_n\": %zu, \"k\": %u, \"p\": %.6f, \"protocol\": \"%s\", "
             "\"seed\": %llu, \"flip\": %.6f, \"trunc\": %.6f, "
             "\"outcome\": \"%s\", \"contract_ok\": %s, "
             "\"max_bits\": %zu, \"total_bits\": %zu, "
             "\"budget_bits\": %zu, \"constant\": %.6f}%s\n",
             i, s.generator.c_str(), r.report.n, s.n, s.k, s.p,
             s.protocol.c_str(), static_cast<unsigned long long>(s.seed),
             s.faults.bit_flip_chance, s.faults.truncate_chance,
             r.outcome.c_str(), r.contract_ok ? "true" : "false",
             r.report.max_bits, r.report.total_bits, r.report.budget_bits,
             r.report.constant(), i + 1 == grid.size() ? "" : ",");
  }
  out += "  ],\n  \"aggregates\": [\n";
  const auto aggs = aggregate_campaign(grid, results);
  std::size_t total_ok = 0;
  std::size_t total_loud = 0;
  std::size_t total_silent = 0;
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const auto& a = aggs[i];
    total_ok += a.ok;
    total_loud += a.loud;
    total_silent += a.silent_wrong;
    append_f(out,
             "    {\"generator\": \"%s\", \"protocol\": \"%s\", "
             "\"scenarios\": %zu, \"ok\": %zu, \"loud\": %zu, "
             "\"silent_wrong\": %zu, \"max_bits\": %zu, "
             "\"mean_max_bits\": %.6f, \"max_constant\": %.6f}%s\n",
             a.generator.c_str(), a.protocol.c_str(), a.scenarios, a.ok,
             a.loud, a.silent_wrong, a.max_bits, a.mean_max_bits,
             a.max_constant, i + 1 == aggs.size() ? "" : ",");
  }
  append_f(out,
           "  ],\n  \"totals\": {\"scenarios\": %zu, \"ok\": %zu, "
           "\"loud\": %zu, \"silent_wrong\": %zu}\n}\n",
           grid.size(), total_ok, total_loud, total_silent);
  return out;
}

}  // namespace referee
