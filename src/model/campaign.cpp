#include "model/campaign.hpp"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>
#include <iterator>
#include <memory>

#include "graph/algorithms.hpp"
#include "graph/degeneracy.hpp"
#include "graph/generators.hpp"
#include "protocols/bounded_degree.hpp"
#include "protocols/degeneracy_protocol.hpp"
#include "protocols/forest_protocol.hpp"
#include "protocols/generalized_degeneracy.hpp"
#include "protocols/recognition.hpp"
#include "protocols/statistics.hpp"
#include "reductions/oracles.hpp"
#include "reductions/reductions.hpp"
#include "sketch/bipartiteness.hpp"
#include "sketch/connectivity.hpp"
#include "support/bits.hpp"

namespace referee {

namespace {

// Distinct stream tags so graph generation, fault injection and sketch
// randomness never share draws even though they all derive from spec.seed.
constexpr std::uint64_t kGraphStream = 0x6772617068ull;   // "graph"
constexpr std::uint64_t kFaultStream = 0x6661756c74ull;   // "fault"
constexpr std::uint64_t kSketchStream = 0x736b657463ull;  // "sketc"
constexpr std::uint64_t kEpochStream = 0x65706f6368ull;   // "epoch"
constexpr std::uint64_t kDonorStream = 0x646f6e6f72ull;   // "donor"

// Deterministic cross-platform string hash for the epoch derivation (the
// epoch must not depend on std::hash, whose value is implementation-
// defined).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void append_f(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  const int len = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  REFEREE_CHECK_MSG(len >= 0 && static_cast<std::size_t>(len) < sizeof(buf),
                    "campaign json row overflows the format buffer");
  out.append(buf, buf + len);
}

}  // namespace

std::shared_ptr<const LocalEncoder> make_campaign_protocol(
    const ScenarioSpec& spec, const Graph& g) {
  const std::string& proto = spec.protocol;
  if (proto == "degeneracy") {
    return std::make_shared<DegeneracyReconstruction>(spec.k);
  }
  if (proto == "generalized") {
    return std::make_shared<GeneralizedDegeneracyReconstruction>(spec.k);
  }
  if (proto == "forest") return std::make_shared<ForestReconstruction>();
  if (proto == "bounded-degree") {
    return std::make_shared<BoundedDegreeReconstruction>(
        std::max<std::size_t>(1, g.max_degree()));
  }
  if (proto == "stats") return std::make_shared<DegreeStatistics>();
  if (proto == "recognize-degeneracy") {
    return make_degeneracy_recognizer(spec.k);
  }
  const SketchParams sketch_params{
      .seed = mix64(spec.seed ^ kSketchStream), .rounds = 0, .copies = 3};
  if (proto == "connectivity") {
    return std::make_shared<SketchConnectivityProtocol>(sketch_params);
  }
  if (proto == "bipartite") {
    return std::make_shared<SketchBipartitenessProtocol>(sketch_params);
  }
  // Reductions run in verified mode: out-of-class inputs (a square in a
  // square-free protocol's input) must refuse loudly, not drift silently.
  if (proto == "reduce-square") {
    return std::make_shared<SquareReduction>(make_square_oracle(),
                                             /*verified=*/true);
  }
  if (proto == "reduce-triangle") {
    return std::make_shared<TriangleReduction>(make_triangle_oracle(),
                                               /*verified=*/true);
  }
  if (proto == "reduce-diameter") {
    return std::make_shared<DiameterReduction>(make_diameter_oracle(3),
                                               /*verified=*/true);
  }
  throw CheckError("unknown campaign protocol: " + proto);
}

namespace {

/// Decode the (opened) payload transcript and grade it against ground
/// truth computed directly on the graph. Throws DecodeError for loud
/// refusals; returns "exact"/"correct"/"silent-wrong" otherwise.
std::string classify_cell(const ScenarioSpec& spec, const LocalEncoder& enc,
                          const Graph& g, std::uint32_t n,
                          std::span<const Message> payloads,
                          DecodeArena& arena) {
  if (const auto* rp = dynamic_cast<const ReconstructionProtocol*>(&enc)) {
    const Graph h = rp->reconstruct(n, payloads, arena);
    return (h == g) ? "exact" : "silent-wrong";
  }
  if (spec.protocol == "stats") {
    auto degrees_s = arena.scratch<std::uint32_t>();
    DegreeStatistics::degree_sequence_into(n, payloads, *degrees_s);
    const std::span<const std::uint32_t> degrees(degrees_s->data(), n);
    const bool correct =
        DegreeStatistics::edge_count(degrees) == g.edge_count() &&
        DegreeStatistics::max_degree(degrees) == g.max_degree();
    return correct ? "correct" : "silent-wrong";
  }
  const auto* dp = dynamic_cast<const DecisionProtocol*>(&enc);
  REFEREE_CHECK_MSG(dp != nullptr, "unclassifiable campaign protocol");
  bool truth = false;
  if (spec.protocol == "recognize-degeneracy") {
    truth = degeneracy(g).degeneracy <= spec.k;
  } else if (spec.protocol == "connectivity") {
    truth = component_count(g) <= 1;
  } else if (spec.protocol == "bipartite") {
    truth = is_bipartite(g);
  } else {
    throw CheckError("no ground truth for protocol: " + spec.protocol);
  }
  return dp->decide(n, payloads, arena) == truth ? "correct" : "silent-wrong";
}

ScenarioResult run_one(const ScenarioSpec& spec, const Simulator& sim,
                       std::vector<Message>& transcript, DecodeArena& arena) {
  ScenarioResult res;
  const Graph g = make_campaign_graph(spec);
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  const LocalViewPack views(g);

  FaultPlan plan = spec.faults;
  plan.seed = mix64(spec.seed ^ kFaultStream);
  const std::uint64_t epoch = scenario_epoch(spec);

  try {
    const auto protocol = make_campaign_protocol(spec, g);
    sim.run_local_phase(views, *protocol, transcript);
    // Frugality is a statement about the protocol's payload; the envelope
    // (epoch tag + sender id, O(log n) bits) is delivery substrate and is
    // audited out.
    res.report = audit_frugality(n, transcript);
    seal_transcript(epoch, n, transcript);

    std::vector<Message> donor;
    if (plan.correlated.stale_replays > 0) {
      const ScenarioSpec dspec = stale_donor_spec(spec);
      const Graph dg = make_campaign_graph(dspec);
      donor = Simulator().run_local_phase(dg, *make_campaign_protocol(dspec, dg));
      seal_transcript(scenario_epoch(dspec),
                      static_cast<std::uint32_t>(dg.vertex_count()), donor);
    }
    res.journal = Simulator::inject_faults(transcript, plan, donor);

    auto payloads_s = arena.scratch<Message>();
    open_transcript_into(epoch, n, transcript, arena, *payloads_s);
    res.outcome = classify_cell(
        spec, *protocol, g, n,
        std::span<const Message>(payloads_s->data(), n), arena);
  } catch (const DecodeError& e) {
    res.outcome = "loud";
    res.detail = decode_fault_name(e.fault());
  }
  res.contract_ok = res.outcome != "silent-wrong";
  return res;
}

}  // namespace

const std::vector<std::string>& campaign_generators() {
  static const std::vector<std::string> names{
      "path",     "cycle",    "complete", "star",      "grid",
      "hypercube", "tree",    "forest",   "gnp",       "connected-gnp",
      "gnm",      "kdeg",     "kdeg-exact", "ktree",   "apollonian",
      "bipartite", "squarefree"};
  return names;
}

const std::vector<std::string>& campaign_protocols() {
  static const std::vector<std::string> names{
      "degeneracy", "generalized", "forest",       "bounded-degree",
      "stats",      "recognize-degeneracy", "connectivity", "bipartite",
      "reduce-square", "reduce-triangle", "reduce-diameter"};
  return names;
}

std::uint64_t scenario_epoch(const ScenarioSpec& spec) {
  std::uint64_t h = mix64(spec.seed ^ kEpochStream);
  h = mix64(h ^ fnv1a(spec.generator));
  h = mix64(h ^ fnv1a(spec.protocol));
  h = mix64(h ^ static_cast<std::uint64_t>(spec.n));
  h = mix64(h ^ spec.k);
  // Every axis that shapes the cell's transcript must feed the epoch, or a
  // replay between two cells differing only in that axis would pass the
  // envelope. p is a grid axis too (gnp/bipartite families).
  h = mix64(h ^ std::bit_cast<std::uint64_t>(spec.p));
  return h;
}

ScenarioSpec stale_donor_spec(const ScenarioSpec& spec) {
  ScenarioSpec donor = spec;
  donor.seed = mix64(spec.seed ^ kDonorStream);
  // The donor cell itself is fault-free: stale replays splice *honest*
  // messages from another epoch into this cell's transcript.
  donor.faults = FaultPlan{};
  return donor;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  const Simulator sim;
  std::vector<Message> transcript;
  return run_one(spec, sim, transcript, DecodeArena::for_current_thread());
}

ScenarioSpec shrink_scenario(
    const ScenarioSpec& spec,
    const std::function<bool(const ScenarioSpec&)>& still_fails) {
  ScenarioSpec current = spec;
  if (!still_fails(current)) return current;
  // Greedy fixpoint: each accepted step strictly shrinks (n, fault knobs,
  // seed), so the loop terminates. Candidates are tried largest-step
  // first (halving before decrementing) to keep the repro search cheap.
  bool progress = true;
  const auto attempt = [&](ScenarioSpec cand) {
    if (still_fails(cand)) {
      current = std::move(cand);
      progress = true;
      return true;
    }
    return false;
  };
  while (progress) {
    progress = false;
    if (current.n > 4) {
      ScenarioSpec cand = current;
      cand.n = std::max<std::size_t>(4, current.n / 2);
      if (cand.n != current.n) attempt(std::move(cand));
    }
    if (!progress && current.n > 4) {
      ScenarioSpec cand = current;
      cand.n = current.n - 1;
      attempt(std::move(cand));
    }
    const auto zero_field = [&](auto mutate) {
      ScenarioSpec cand = current;
      mutate(cand);
      attempt(std::move(cand));
    };
    if (current.faults.bit_flip_chance > 0) {
      zero_field([](ScenarioSpec& s) { s.faults.bit_flip_chance = 0; });
    }
    if (current.faults.truncate_chance > 0) {
      zero_field([](ScenarioSpec& s) { s.faults.truncate_chance = 0; });
    }
    CorrelatedFaults& cor = current.faults.correlated;
    if (cor.drop_fraction > 0) {
      zero_field([](ScenarioSpec& s) { s.faults.correlated.drop_fraction = 0; });
    }
    if (cor.duplicate_ids > 0) {
      zero_field([](ScenarioSpec& s) { s.faults.correlated.duplicate_ids = 0; });
      if (cor.duplicate_ids > 1) {
        zero_field([&](ScenarioSpec& s) {
          s.faults.correlated.duplicate_ids = cor.duplicate_ids / 2;
        });
      }
    }
    if (cor.payload_swaps > 0) {
      zero_field([](ScenarioSpec& s) { s.faults.correlated.payload_swaps = 0; });
      if (cor.payload_swaps > 1) {
        zero_field([&](ScenarioSpec& s) {
          s.faults.correlated.payload_swaps = cor.payload_swaps / 2;
        });
      }
    }
    if (cor.stale_replays > 0) {
      zero_field([](ScenarioSpec& s) { s.faults.correlated.stale_replays = 0; });
      if (cor.stale_replays > 1) {
        zero_field([&](ScenarioSpec& s) {
          s.faults.correlated.stale_replays = cor.stale_replays / 2;
        });
      }
    }
    if (current.seed != 1) {
      zero_field([](ScenarioSpec& s) { s.seed = 1; });
    }
  }
  return current;
}

CampaignConfig default_fault_sweep_config() {
  CampaignConfig config;
  config.generators = {"kdeg", "tree", "gnp", "apollonian"};
  config.sizes = {24};
  config.protocols = {"degeneracy", "forest", "stats", "connectivity"};
  config.seeds = {1, 2};
  config.fault_plans = {
      FaultPlan{.correlated = CorrelatedFaults{.drop_fraction = 0.25}},
      FaultPlan{.correlated = CorrelatedFaults{.duplicate_ids = 2}},
      FaultPlan{.correlated = CorrelatedFaults{.payload_swaps = 2}},
      FaultPlan{.correlated = CorrelatedFaults{.stale_replays = 2}},
  };
  return config;
}

Graph make_campaign_graph(const ScenarioSpec& spec) {
  Rng rng(mix64(spec.seed ^ kGraphStream));
  const std::size_t n = std::max<std::size_t>(2, spec.n);
  const unsigned k = std::max(1u, spec.k);
  const std::string& f = spec.generator;
  // Random families consume the stream directly; deterministic topologies
  // get a seed-dependent label shuffle so every grid cell is a distinct
  // labelled instance (protocols see labels, not shapes).
  if (f == "tree") return gen::random_tree(n, rng);
  if (f == "forest") return gen::random_forest(n, 0.2, rng);
  if (f == "gnp") return gen::gnp(n, spec.p, rng);
  if (f == "connected-gnp") return gen::connected_gnp(n, spec.p, rng);
  if (f == "gnm") return gen::gnm(n, 2 * n, rng);
  if (f == "kdeg") return gen::random_k_degenerate(n, k, rng);
  if (f == "kdeg-exact") {
    return gen::random_k_degenerate(n, k, rng, /*exactly_k=*/true);
  }
  if (f == "ktree") return gen::random_k_tree(n, k, rng);
  if (f == "apollonian") return gen::random_apollonian(n, rng);
  if (f == "bipartite") {
    return gen::random_bipartite(n / 2, n - n / 2, spec.p, rng);
  }
  if (f == "squarefree") return gen::random_square_free(n, 30 * n, rng);

  Graph g;
  if (f == "path") {
    g = gen::path(n);
  } else if (f == "cycle") {
    g = gen::cycle(n);
  } else if (f == "complete") {
    g = gen::complete(n);
  } else if (f == "star") {
    g = gen::star(n - 1);
  } else if (f == "grid") {
    const std::size_t rows = std::max<std::size_t>(2, n / 8);
    g = gen::grid(rows, (n + rows - 1) / rows);
  } else if (f == "hypercube") {
    g = gen::hypercube(static_cast<unsigned>(floor_log2(n)));
  } else {
    throw CheckError("unknown campaign generator: " + f);
  }
  return gen::shuffle_labels(g, rng);
}

std::vector<ScenarioSpec> expand_grid(const CampaignConfig& config) {
  std::vector<ScenarioSpec> grid;
  grid.reserve(config.generators.size() * config.sizes.size() *
               config.protocols.size() * config.seeds.size() *
               config.fault_plans.size());
  for (const auto& generator : config.generators) {
    for (const auto n : config.sizes) {
      for (const auto& protocol : config.protocols) {
        for (const auto seed : config.seeds) {
          for (const auto& plan : config.fault_plans) {
            ScenarioSpec spec;
            spec.generator = generator;
            spec.n = n;
            spec.k = config.k;
            spec.p = config.p;
            spec.protocol = protocol;
            spec.seed = seed;
            spec.faults = plan;
            grid.push_back(std::move(spec));
          }
        }
      }
    }
  }
  return grid;
}

std::vector<ScenarioResult> CampaignRunner::run(
    const std::vector<ScenarioSpec>& grid) const {
  std::vector<ScenarioResult> results(grid.size());
  const Simulator inner;  // scenarios parallelise at grid level
  maybe_parallel_for_chunks(
      pool_, 0, grid.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<Message> transcript;  // reused across the chunk's cells
        // Decode scratch is owned per pool thread: the thread_local arena
        // stays warm across chunks, campaigns and sweeps on that worker, so
        // after the first cells the whole global phase stops allocating.
        DecodeArena& arena = DecodeArena::for_current_thread();
        for (std::size_t i = lo; i < hi; ++i) {
          results[i] = run_one(grid[i], inner, transcript, arena);
        }
      },
      /*serial_cutoff=*/2);
  return results;
}

std::vector<CampaignAggregate> aggregate_campaign(
    const std::vector<ScenarioSpec>& grid,
    const std::vector<ScenarioResult>& results) {
  REFEREE_CHECK_MSG(grid.size() == results.size(),
                    "grid/result size mismatch");
  std::vector<CampaignAggregate> aggs;
  std::vector<double> sums;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& spec = grid[i];
    const auto& res = results[i];
    auto it = std::find_if(aggs.begin(), aggs.end(), [&](const auto& a) {
      return a.generator == spec.generator && a.protocol == spec.protocol;
    });
    if (it == aggs.end()) {
      aggs.push_back(CampaignAggregate{spec.generator, spec.protocol});
      sums.push_back(0.0);
      it = aggs.end() - 1;
    }
    auto& agg = *it;
    auto& sum = sums[static_cast<std::size_t>(it - aggs.begin())];
    ++agg.scenarios;
    if (res.outcome == "exact" || res.outcome == "correct") ++agg.ok;
    if (res.outcome == "loud") ++agg.loud;
    if (res.outcome == "silent-wrong") ++agg.silent_wrong;
    agg.max_bits = std::max(agg.max_bits, res.report.max_bits);
    agg.max_constant = std::max(agg.max_constant, res.report.constant());
    sum += static_cast<double>(res.report.max_bits);
    agg.mean_max_bits = sum / static_cast<double>(agg.scenarios);
  }
  return aggs;
}

std::string campaign_json(const std::vector<ScenarioSpec>& grid,
                          const std::vector<ScenarioResult>& results) {
  REFEREE_CHECK_MSG(grid.size() == results.size(),
                    "grid/result size mismatch");
  // The fault taxonomy: every model the injector knows, its scope, the
  // spec field that arms it, and the check that makes it loud. Driven by
  // the FaultType enum (names via fault_type_name, detectors via
  // decode_fault_name) so the report cannot drift from the injector; kept
  // in the JSON so a failing cell's record is self-describing.
  struct TaxonomyRow {
    FaultType type;
    const char* scope;
    const char* field;
    DecodeFault detector;       // the typed fault the model must surface as
    const char* detector_note;  // "" when the typed name says it all
  };
  static constexpr TaxonomyRow kTaxonomy[] = {
      {FaultType::kBitFlip, "message", "flip", DecodeFault::kInconsistent,
       "payload checks (power sums, framing, fingerprints) on certifying "
       "decoders; flips landing in the envelope header surface as "
       "epoch-mismatch or id-mismatch instead"},
      {FaultType::kTruncate, "message", "trunc", DecodeFault::kTruncated,
       "bit-level framing (read past end), whether the cut hits header or "
       "payload"},
      {FaultType::kDrop, "campaign", "drop", DecodeFault::kMissingMessage,
       ""},
      {FaultType::kDuplicateId, "campaign", "dup", DecodeFault::kIdMismatch,
       ""},
      {FaultType::kPayloadSwap, "campaign", "swap", DecodeFault::kIdMismatch,
       ""},
      {FaultType::kStaleReplay, "campaign", "stale",
       DecodeFault::kEpochMismatch, ""},
  };
  std::string out;
  out.reserve(grid.size() * 330);
  out += "{\n  \"schema\": \"referee-campaign-v2\",\n";
  out += "  \"fault_taxonomy\": [\n";
  for (std::size_t i = 0; i < std::size(kTaxonomy); ++i) {
    const TaxonomyRow& row = kTaxonomy[i];
    append_f(out,
             "    {\"type\": \"%s\", \"scope\": \"%s\", \"field\": \"%s\", "
             "\"detector\": \"%s\"%s%s%s}%s\n",
             fault_type_name(row.type), row.scope, row.field,
             decode_fault_name(row.detector),
             row.detector_note[0] != '\0' ? ", \"note\": \"" : "",
             row.detector_note,
             row.detector_note[0] != '\0' ? "\"" : "",
             i + 1 == std::size(kTaxonomy) ? "" : ",");
  }
  out += "  ],\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& s = grid[i];
    const auto& r = results[i];
    const auto& cor = s.faults.correlated;
    // "n" is the real vertex count the scenario ran on (families like
    // hypercube and grid round the requested size); "spec_n" is the grid
    // axis value — frugality columns must be plotted against "n".
    append_f(out,
             "    {\"i\": %zu, \"generator\": \"%s\", \"n\": %u, "
             "\"spec_n\": %zu, \"k\": %u, \"p\": %.6f, \"protocol\": \"%s\", "
             "\"seed\": %llu, \"flip\": %.6f, \"trunc\": %.6f, "
             "\"drop\": %.6f, \"dup\": %u, \"swap\": %u, \"stale\": %u, "
             "\"outcome\": \"%s\", \"detail\": \"%s\", \"contract_ok\": %s, "
             "\"applied\": {\"flip\": %zu, \"trunc\": %zu, \"drop\": %zu, "
             "\"dup\": %zu, \"swap\": %zu, \"stale\": %zu}, "
             "\"max_bits\": %zu, \"total_bits\": %zu, "
             "\"budget_bits\": %zu, \"constant\": %.6f}%s\n",
             i, s.generator.c_str(), r.report.n, s.n, s.k, s.p,
             s.protocol.c_str(), static_cast<unsigned long long>(s.seed),
             s.faults.bit_flip_chance, s.faults.truncate_chance,
             cor.drop_fraction, cor.duplicate_ids, cor.payload_swaps,
             cor.stale_replays, r.outcome.c_str(), r.detail.c_str(),
             r.contract_ok ? "true" : "false",
             r.journal.count(FaultType::kBitFlip),
             r.journal.count(FaultType::kTruncate),
             r.journal.count(FaultType::kDrop),
             r.journal.count(FaultType::kDuplicateId),
             r.journal.count(FaultType::kPayloadSwap),
             r.journal.count(FaultType::kStaleReplay),
             r.report.max_bits, r.report.total_bits, r.report.budget_bits,
             r.report.constant(), i + 1 == grid.size() ? "" : ",");
  }
  out += "  ],\n  \"aggregates\": [\n";
  const auto aggs = aggregate_campaign(grid, results);
  std::size_t total_ok = 0;
  std::size_t total_loud = 0;
  std::size_t total_silent = 0;
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const auto& a = aggs[i];
    total_ok += a.ok;
    total_loud += a.loud;
    total_silent += a.silent_wrong;
    append_f(out,
             "    {\"generator\": \"%s\", \"protocol\": \"%s\", "
             "\"scenarios\": %zu, \"ok\": %zu, \"loud\": %zu, "
             "\"silent_wrong\": %zu, \"max_bits\": %zu, "
             "\"mean_max_bits\": %.6f, \"max_constant\": %.6f}%s\n",
             a.generator.c_str(), a.protocol.c_str(), a.scenarios, a.ok,
             a.loud, a.silent_wrong, a.max_bits, a.mean_max_bits,
             a.max_constant, i + 1 == aggs.size() ? "" : ",");
  }
  append_f(out,
           "  ],\n  \"totals\": {\"scenarios\": %zu, \"ok\": %zu, "
           "\"loud\": %zu, \"silent_wrong\": %zu}\n}\n",
           grid.size(), total_ok, total_loud, total_silent);
  return out;
}

}  // namespace referee
