// The bitstring a node ships to the referee.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitstream.hpp"

namespace referee {

class Message {
 public:
  Message() = default;

  /// Seal the bits accumulated in `w` into a message (w is consumed).
  static Message seal(BitWriter&& w);

  /// Copy the bits accumulated in `w` into this message, reusing the
  /// message's existing byte storage when its capacity suffices. The writer
  /// is left untouched (clear() it to reuse). This is the arena-friendly
  /// path: a per-thread scratch writer plus assign() makes re-encoding a
  /// message vector allocation-free in steady state.
  void assign(const BitWriter& w);

  std::size_t bit_size() const { return bit_size_; }
  bool empty() const { return bit_size_ == 0; }

  BitReader reader() const { return BitReader(bytes_, bit_size_); }

  /// Failure injection: flip bit `index` in place.
  void flip_bit(std::size_t index);
  /// Failure injection: drop all bits from `keep_bits` on.
  void truncate(std::size_t keep_bits);

  friend bool operator==(const Message&, const Message&) = default;

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_size_ = 0;
};

}  // namespace referee
