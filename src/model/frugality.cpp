#include "model/frugality.hpp"

#include <algorithm>

#include "support/bits.hpp"

namespace referee {

FrugalityReport audit_frugality(std::uint32_t n,
                                std::span<const Message> messages) {
  FrugalityReport report;
  report.n = n;
  report.budget_bits = static_cast<std::size_t>(log_budget_bits(n));
  for (const Message& m : messages) {
    report.max_bits = std::max(report.max_bits, m.bit_size());
    report.total_bits += m.bit_size();
  }
  return report;
}

}  // namespace referee
