// One-round protocols, Definition 1 of the paper.
//
// A protocol is a pair (Γ^l_n, Γ^g_n): a *local function* mapping a node's
// view to a message, and a *global function* the referee applies to the
// message vector. The local function must be evaluable on arbitrary
// (id, neighbourhood) pairs — not just the ones realised by the input graph —
// because the reduction technique of §II simulates it on the gadget graphs
// G'_{s,t}. The interface below exposes exactly that.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "model/local_view.hpp"
#include "model/message.hpp"
#include "support/arena.hpp"

namespace referee {

/// The local half Γ^l of a one-round protocol.
///
/// Implementations override `encode`, which appends the message bits for a
/// (borrowed) view to a caller-supplied BitWriter. The writer-passing form
/// is what lets the simulator reuse one scratch writer per worker thread
/// across an entire shard of the local phase instead of allocating a fresh
/// buffer per vertex.
class LocalEncoder {
 public:
  virtual ~LocalEncoder() = default;

  virtual std::string name() const = 0;

  /// Γ^l_n evaluated on (view.id, view.neighbor_ids) for graphs of size
  /// view.n. Must be a pure function of the view; must only append to `w`
  /// (the writer may already hold unrelated framing bits).
  virtual void encode(const LocalViewRef& view, BitWriter& w) const = 0;

  /// Convenience: encode into a fresh writer and seal the result. Owning
  /// LocalView arguments convert implicitly.
  Message local(const LocalViewRef& view) const {
    BitWriter w;
    encode(view, w);
    return Message::seal(std::move(w));
  }
};

/// A protocol whose referee outputs the adjacency structure of G.
/// Reconstruction throws DecodeError when the message vector is not
/// consistent with any graph in the protocol's class (never silently
/// returns a wrong graph).
///
/// The referee signature threads a DecodeArena: every implementation draws
/// its decode scratch (power-sum tables, candidate sets, framed
/// sub-messages) from the arena, so a caller that keeps one arena per
/// worker thread — the campaign runner — decodes with zero steady-state
/// heap allocations. The two-argument overload serves call sites that do
/// not manage arenas by borrowing the calling thread's.
class ReconstructionProtocol : public LocalEncoder {
 public:
  virtual Graph reconstruct(std::uint32_t n, std::span<const Message> messages,
                            DecodeArena& arena) const = 0;

  Graph reconstruct(std::uint32_t n, std::span<const Message> messages) const {
    return reconstruct(n, messages, DecodeArena::for_current_thread());
  }
};

/// A protocol whose referee answers a yes/no question about G. Arena
/// threading as in ReconstructionProtocol.
class DecisionProtocol : public LocalEncoder {
 public:
  virtual bool decide(std::uint32_t n, std::span<const Message> messages,
                      DecodeArena& arena) const = 0;

  bool decide(std::uint32_t n, std::span<const Message> messages) const {
    return decide(n, messages, DecodeArena::for_current_thread());
  }
};

}  // namespace referee
