// Transcript envelope: the integrity header that turns correlated faults
// into loud failures.
//
// The paper's referee either reconstructs correctly from the one-round
// messages or must fail loudly — and against *correlated* faults the
// payload alone cannot guarantee that. A payload swapped between two
// vertices, a byzantine copy of another node's message, or a well-formed
// message replayed from a different scenario cell can be internally
// consistent and information-theoretically indistinguishable from honest
// traffic. The standard systems defence is an envelope: each wire message
// carries
//
//   [epoch tag : kEpochTagBits][sender id : log_budget_bits(n)][payload]
//
// where the epoch is a per-scenario nonce (the campaign derives it from the
// cell identity). open_transcript verifies count, presence, tag and id for
// every slot and strips the header; each violation is a *typed*
// DecodeError, so the adversarial harness can assert cause→effect:
//   dropped vertex      -> kMissingMessage
//   stale replay        -> kEpochMismatch
//   duplicate id / swap -> kIdMismatch
//   truncated header    -> kTruncated
//
// The envelope costs kEpochTagBits + ceil(log2(n+1)) bits per message —
// O(log n), so a frugal protocol stays frugal. Frugality *audits* run on
// the payload before sealing: the budget statement is about the protocol,
// the envelope is the delivery substrate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/message.hpp"
#include "support/arena.hpp"

namespace referee {

/// Width of the per-scenario epoch tag on the wire.
constexpr int kEpochTagBits = 24;

/// The wire tag for an epoch nonce (mixed and masked to kEpochTagBits).
std::uint64_t epoch_tag(std::uint64_t epoch);

/// Wrap one payload: [tag][id][payload bits].
Message seal_message(std::uint64_t epoch, std::uint32_t id, std::uint32_t n,
                     const Message& payload);

/// Seal a whole local-phase transcript in place; slot i carries id i+1.
void seal_transcript(std::uint64_t epoch, std::uint32_t n,
                     std::vector<Message>& messages);

/// Verify and strip every envelope; returns the payload transcript.
/// Throws typed DecodeError on any violation (see header comment).
std::vector<Message> open_transcript(std::uint64_t epoch, std::uint32_t n,
                                     std::span<const Message> messages);

/// Arena form: payloads land in the first n slots of `out` (grow-only
/// pooled storage, byte buffers reused) — the campaign cell pipeline's
/// zero-allocation open.
void open_transcript_into(std::uint64_t epoch, std::uint32_t n,
                          std::span<const Message> messages,
                          DecodeArena& arena, std::vector<Message>& out);

}  // namespace referee
