// Multi-round referee protocols — the scaffolding for the paper's final
// open question ("investigate properties that can(not) be decided by a
// frugal protocol with fixed number of rounds", §IV).
//
// The model follows §I-B: in each round every node may send one message to
// the referee and receive one back. We restrict the referee's downlink to a
// broadcast (the same message to every node), which is weaker than the model
// allows — protocols built here are therefore valid in the paper's model.
// Frugality is audited per round: a T-round protocol is frugal when every
// message of every round fits in O(log n) bits.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "model/frugality.hpp"
#include "model/protocol.hpp"

namespace referee {

class MultiRoundProtocol {
 public:
  virtual ~MultiRoundProtocol() = default;

  virtual std::string name() const = 0;

  /// Hard cap on rounds; the simulator aborts (DecodeError) past it.
  virtual unsigned max_rounds() const = 0;

  /// Node side of round `round` (0-based): a pure function of the view and
  /// the referee's broadcasts from rounds 0..round-1.
  virtual Message node_message(const LocalViewRef& view, unsigned round,
                               std::span<const Message> feedback) const = 0;

  /// Referee side after collecting round `round`'s messages.
  /// `inbox[r][i]` is node i+1's message in round r (r <= round).
  struct RoundOutcome {
    /// Set when the protocol has finished; the simulator returns it.
    std::optional<Graph> result;
    /// Otherwise: broadcast to every node before the next round.
    Message broadcast;
  };
  virtual RoundOutcome referee_round(
      std::uint32_t n, unsigned round,
      const std::vector<std::vector<Message>>& inbox) const = 0;
};

/// Transcript statistics for a multi-round run.
struct MultiRoundReport {
  unsigned rounds_used = 0;
  /// Per-round uplink audit (node -> referee).
  std::vector<FrugalityReport> per_round;
  /// Largest uplink message across all rounds.
  std::size_t max_bits = 0;
  /// Total downlink (broadcast) bits.
  std::size_t broadcast_bits = 0;
};

}  // namespace referee
