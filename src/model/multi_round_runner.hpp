// MultiRoundRunner: multi-round protocols on the campaign substrate.
//
// Simulator::run_multi_round used to hand raw node messages straight to
// the referee — no envelope, no faults, no capture. This runner puts every
// round through the same wire discipline as a one-round campaign cell:
//
//   encode round r  →  audit frugality (pre-seal)  →  seal under the
//   round's epoch  →  inject faults (per-round seed)  →  capture  →
//   open (typed DecodeError on any violation)  →  referee_round
//
// Per-round epochs make cross-round replays detectable: a round-0 message
// replayed into round 2 fails the tag check exactly like a cross-cell
// stale replay. Round 0 seals under the cell epoch itself, so a multi-round
// cell's first-round transcript stays replayable by the same single-round
// tooling (`refereectl transcript decode`, replay_scenario); later rounds
// derive their epochs from it.
//
// The runner is the arena-side twin of the campaign cell pipeline: the
// caller owns the wire buffer and the DecodeArena and reuses both across
// cells, so a warm worker re-running multi-round cells does not grow the
// arena. Only the inbox rows (one small vector per executed round, required
// by the MultiRoundProtocol interface) allocate per run.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "model/multi_round.hpp"
#include "model/simulator.hpp"
#include "support/arena.hpp"

namespace referee {

/// The envelope epoch of round `round` in a cell sealed under
/// `cell_epoch`. Round 0 is the cell epoch itself; later rounds mix in the
/// round index, so every round of every cell is its own replay domain.
std::uint64_t round_epoch(std::uint64_t cell_epoch, unsigned round);

/// The fault-plan seed for round `round`: round 0 keeps the plan's seed
/// (a 1-round cell corrupts exactly like a single-round cell), later
/// rounds re-derive so identical wire shapes do not repeat corruption.
std::uint64_t round_fault_seed(std::uint64_t seed, unsigned round);

/// Capture hook: fires once per executed round with the sealed — and,
/// when the cell injects faults, faulted — wire exactly as the referee is
/// about to open it. The single-round TranscriptSink with a round index.
using RoundTranscriptSink = std::function<void(
    unsigned round, std::uint64_t epoch, std::uint32_t n,
    std::span<const Message> wire)>;

struct MultiRoundRunOptions {
  std::uint64_t cell_epoch = 0;
  /// Faults applied to every round's sealed wire (null → fault-free).
  /// Stale replays splice the donor below into round 0 only: a donor
  /// message is sealed under the donor cell's epoch, so round 0's open
  /// refuses and later rounds are unreachable under such plans.
  const FaultPlan* faults = nullptr;
  std::span<const Message> round0_donor;
  /// Out-parameters survive a loud refusal: on DecodeError they hold the
  /// rounds executed and faults applied up to the throw.
  MultiRoundReport* report = nullptr;
  FaultJournal* journal = nullptr;
  const RoundTranscriptSink* capture = nullptr;
};

class MultiRoundRunner {
 public:
  /// `pool` may be null (sequential node phase). Not owned.
  explicit MultiRoundRunner(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Execute `protocol` to completion. `wire` is the caller's reusable
  /// round buffer (the campaign backend's transcript vector); `arena`
  /// supplies all decode scratch. Throws typed DecodeError when a round's
  /// open refuses or the protocol exceeds max_rounds() (kStalled).
  Graph run(const LocalViewPack& views, const MultiRoundProtocol& protocol,
            std::vector<Message>& wire, DecodeArena& arena,
            const MultiRoundRunOptions& opts = {}) const;

 private:
  ThreadPool* pool_;
};

}  // namespace referee
