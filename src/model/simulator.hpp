// Executes one-round protocols over an interconnection network.
//
// This is the substrate substitution described in DESIGN.md §2: the paper's
// abstract network becomes an in-process simulation. The simulator
//   1. derives every node's LocalView from the graph,
//   2. evaluates the protocol's local function at every node (optionally in
//      parallel — the local phase is embarrassingly parallel),
//   3. delivers the message vector to the referee (the global function),
//   4. accounts message sizes for the frugality audit.
// One round of an asynchronous network is modelled faithfully: the referee
// waits for exactly one message per node and sees nothing else (§I-B).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "model/fault_model.hpp"
#include "model/frugality.hpp"
#include "model/multi_round.hpp"
#include "model/protocol.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"

namespace referee {

/// Fault injection applied between the local and global phase: independent
/// per-message noise (flips, truncations) plus the correlated campaign-level
/// models of model/fault_model.hpp.
///
/// Determinism contract: each (message index, fault type) pair and each
/// correlated fault family draws from its own PRNG stream derived from
/// `seed`, and every probability gate consumes exactly one draw.
/// Consequently a run with bit_flip_chance=0 is stream-aligned with one at
/// bit_flip_chance=0.01 — the truncation outcomes are identical — and
/// enabling a correlated family never shifts any other family's choices,
/// which is what makes fault-ablation baselines comparable.
struct FaultPlan {
  /// Probability that any given message has one uniformly chosen bit flipped.
  double bit_flip_chance = 0.0;
  /// Probability that any given message is truncated to a uniform proper
  /// prefix of at least 1 bit (a 0-bit message has no defined decode
  /// semantics, so the injector only manufactures one by *dropping* a
  /// vertex; 1-bit messages are left intact).
  double truncate_chance = 0.0;
  /// Correlated campaign-level faults (drop subset, duplicate ids, payload
  /// swaps, stale replays), expanded deterministically from `seed`.
  CorrelatedFaults correlated;
  /// The transcript-aware adversary (model/adaptive_adversary.hpp): runs
  /// after every oblivious family — the last hop before the referee — and
  /// picks its targets by reading the corrupted wire as delivered. Assumes
  /// the transcript is sealed (its strikes aim at the envelope header), so
  /// only enveloped pipelines (the campaign) should enable it.
  AdaptiveFaults adaptive;
  std::uint64_t seed = 1;

  bool active() const {
    return bit_flip_chance > 0 || truncate_chance > 0 || correlated.active() ||
           adaptive.active();
  }
};

class Simulator {
 public:
  /// `pool` may be null (sequential local phase). Not owned.
  explicit Simulator(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// The worker pool this simulator parallelizes over (may be null). Lets
  /// cell runners hand the same pool to a MultiRoundRunner.
  ThreadPool* pool() const { return pool_; }

  /// Local phase only: message vector indexed by id-1.
  std::vector<Message> run_local_phase(const Graph& g,
                                       const LocalEncoder& protocol) const;

  /// Zero-copy local phase over a prebuilt view pack, writing into `out`
  /// (resized to n). Each worker chunk reuses one scratch BitWriter and
  /// assigns into the existing Message buffers, so re-running scenarios over
  /// the same `out` vector is allocation-free in steady state — the
  /// campaign runner's inner loop.
  void run_local_phase(const LocalViewPack& views, const LocalEncoder& protocol,
                       std::vector<Message>& out) const;

  /// Full run of a reconstruction protocol. `report`, if non-null, receives
  /// the frugality audit of the transcript.
  Graph run_reconstruction(const Graph& g,
                           const ReconstructionProtocol& protocol,
                           FrugalityReport* report = nullptr) const;

  /// Full run of a decision protocol.
  bool run_decision(const Graph& g, const DecisionProtocol& protocol,
                    FrugalityReport* report = nullptr) const;

  /// Executes a multi-round protocol to completion (§IV's fixed-rounds
  /// setting). Throws DecodeError if the protocol exceeds max_rounds()
  /// without producing a result.
  Graph run_multi_round(const Graph& g, const MultiRoundProtocol& protocol,
                        MultiRoundReport* report = nullptr) const;

  /// Applies `plan` to a transcript in place (deterministic in plan.seed)
  /// and journals every applied fault. Correlated families are applied
  /// first (stale replays, payload swaps, duplicate ids, drops — in that
  /// order), then the independent per-message flips/truncations act on the
  /// wire as delivered, then the transcript-aware adaptive adversary reads
  /// the result and spends its budget. `stale_donor`, required iff
  /// plan.correlated.stale_replays > 0, is the sealed transcript of the
  /// donor scenario cell (same length as `messages`); replayed slots take
  /// the donor message of the same vertex.
  static FaultJournal inject_faults(std::vector<Message>& messages,
                                    const FaultPlan& plan,
                                    std::span<const Message> stale_donor);

  /// Journal-discarding convenience for plans without stale replays.
  static void inject_faults(std::vector<Message>& messages,
                            const FaultPlan& plan);

 private:
  ThreadPool* pool_;
};

}  // namespace referee
