#include "model/adaptive_adversary.hpp"

#include <algorithm>

#include "model/envelope.hpp"
#include "support/bits.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace referee {

namespace {

// Stream tag for the adversary's only random choices (which header bit to
// flip, where to cut a truncation). Target *selection* never consumes
// randomness — it is a pure function of the wire — so the adaptive family
// keeps the stream-alignment contract with every oblivious family.
constexpr std::uint64_t kAdaptiveStream = 0x6164617074000005ull;  // "adapt"

// Strike kinds rotate through the ranked targets in this order; the cost
// of a strike is deducted from AdaptiveFaults::budget.
enum class StrikeKind { kBlank, kHeaderFlip, kTruncate, kSwap };

constexpr unsigned strike_cost(StrikeKind kind) {
  switch (kind) {
    case StrikeKind::kBlank: return 1;
    case StrikeKind::kHeaderFlip: return 1;
    case StrikeKind::kTruncate: return 2;
    case StrikeKind::kSwap: return 3;
  }
  return 1;
}

}  // namespace

std::vector<StrikeContext> score_strike_targets(
    std::span<const Message> wire) {
  std::vector<StrikeContext> contexts;
  contexts.reserve(wire.size());
  std::size_t max_bits = 0;
  for (const Message& m : wire) max_bits = std::max(max_bits, m.bit_size());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    // Lower score = struck earlier. The dominant term prefers the largest
    // payload (the wire-observable proxy for the highest-degree sender);
    // the additive term prefers the epoch-boundary slots — the first and
    // last message of the round — among equal sizes.
    const bool boundary = i == 0 || i + 1 == wire.size();
    StrikeContext ctx;
    ctx.slot = i;
    ctx.score = 4 * static_cast<std::uint64_t>(max_bits - wire[i].bit_size()) +
                (boundary ? 0 : 2);
    contexts.push_back(ctx);
  }
  // The beam discipline: always work on the context with the lowest score;
  // ties resolve to the lower slot so the ranking is total and
  // platform-independent.
  std::sort(contexts.begin(), contexts.end(),
            [](const StrikeContext& a, const StrikeContext& b) {
              return a.score != b.score ? a.score < b.score : a.slot < b.slot;
            });
  return contexts;
}

FaultJournal apply_adaptive_adversary(std::vector<Message>& wire,
                                      std::uint32_t n,
                                      const AdaptiveFaults& adv,
                                      std::uint64_t seed) {
  FaultJournal journal;
  if (!adv.active() || wire.empty()) return journal;
  const auto contexts = score_strike_targets(wire);
  const std::size_t header_bits =
      static_cast<std::size_t>(kEpochTagBits) + log_budget_bits(n);

  std::vector<bool> struck(wire.size(), false);
  unsigned budget = adv.budget;
  std::size_t kind_cursor = 0;  // rotates blank / flip / truncate / swap

  const auto blank = [&](std::size_t slot) {
    wire[slot] = Message();
    journal.events.push_back(FaultEvent{FaultType::kAdaptiveBlank, slot, 0});
  };

  for (std::size_t rank = 0; rank < contexts.size() && budget > 0; ++rank) {
    const std::size_t slot = contexts[rank].slot;
    if (struck[slot]) continue;  // a swap already consumed this slot
    auto kind = static_cast<StrikeKind>(kind_cursor % 4);
    ++kind_cursor;
    // Strikes that need an intact envelope header degrade to a blank when
    // the slot cannot support them (message already shorter than the
    // header) or the budget cannot afford them — a blank costs 1 and is
    // always loud, so the adversary never wastes a point silently.
    if (budget < strike_cost(kind) ||
        (kind != StrikeKind::kBlank && wire[slot].bit_size() < header_bits)) {
      kind = StrikeKind::kBlank;
    }
    struck[slot] = true;
    Rng rng(mix64(seed ^ kAdaptiveStream ^ slot));
    switch (kind) {
      case StrikeKind::kBlank:
        blank(slot);
        break;
      case StrikeKind::kHeaderFlip: {
        // A flip in the tag region forges the epoch; in the id region it
        // forges the sender. Either way the exact-width header field no
        // longer matches, so the typed refusal is decidable from the bit
        // index alone (see expected_envelope_fault).
        const std::size_t bit = rng.below(header_bits);
        wire[slot].flip_bit(bit);
        journal.events.push_back(
            FaultEvent{FaultType::kAdaptiveHeaderFlip, slot, bit});
        break;
      }
      case StrikeKind::kTruncate: {
        // Keep a nonzero prefix strictly inside the header, so the tag or
        // id read is guaranteed to run off the end (kTruncated).
        const std::size_t keep = 1 + rng.below(header_bits - 1);
        wire[slot].truncate(keep);
        journal.events.push_back(
            FaultEvent{FaultType::kAdaptiveTruncate, slot, keep});
        break;
      }
      case StrikeKind::kSwap: {
        // Partner: the next unstruck context in score order. Identical
        // wire messages would make the swap a silent no-op (possible only
        // when an oblivious duplication already equalized them), so those
        // partners are skipped.
        std::size_t partner = wire.size();
        for (std::size_t r = rank + 1; r < contexts.size(); ++r) {
          const std::size_t cand = contexts[r].slot;
          if (!struck[cand] && !(wire[cand] == wire[slot])) {
            partner = cand;
            break;
          }
        }
        if (partner == wire.size()) {
          kind = StrikeKind::kBlank;  // charged as the blank it became
          blank(slot);
          break;
        }
        struck[partner] = true;
        std::swap(wire[slot], wire[partner]);
        journal.events.push_back(FaultEvent{FaultType::kAdaptiveSwap,
                                            std::min(slot, partner),
                                            std::max(slot, partner)});
        break;
      }
    }
    budget -= strike_cost(kind);
  }
  return journal;
}

std::string expected_envelope_fault(const FaultJournal& journal,
                                    std::uint32_t n) {
  // open_transcript checks slots in id order; the lowest struck slot
  // decides the refusal. Within a slot the check order is presence, then
  // epoch tag, then sender id — which is exactly what each strike kind
  // maps onto below.
  (void)n;
  std::size_t best_slot = static_cast<std::size_t>(-1);
  std::string fault;
  for (const FaultEvent& e : journal.events) {
    if (!is_adaptive_fault(e.type)) continue;
    const std::size_t slot = e.index;  // swaps store index < detail
    if (slot >= best_slot) continue;
    best_slot = slot;
    switch (e.type) {
      case FaultType::kAdaptiveBlank:
        fault = decode_fault_name(DecodeFault::kMissingMessage);
        break;
      case FaultType::kAdaptiveTruncate:
        fault = decode_fault_name(DecodeFault::kTruncated);
        break;
      case FaultType::kAdaptiveHeaderFlip:
        fault = e.detail < static_cast<std::uint64_t>(kEpochTagBits)
                    ? decode_fault_name(DecodeFault::kEpochMismatch)
                    : decode_fault_name(DecodeFault::kIdMismatch);
        break;
      case FaultType::kAdaptiveSwap:
        fault = decode_fault_name(DecodeFault::kIdMismatch);
        break;
      default:
        break;
    }
  }
  return fault;
}

}  // namespace referee
