#include "model/envelope.hpp"

#include <algorithm>
#include <string>

#include "support/bits.hpp"
#include "support/random.hpp"

namespace referee {

namespace {

// Copy the remainder of `r` into `w` in 64-bit chunks.
void copy_bits(BitReader& r, BitWriter& w) {
  while (!r.exhausted()) {
    const int chunk = static_cast<int>(
        std::min<std::size_t>(64, r.remaining()));
    w.write_bits(r.read_bits(chunk), chunk);
  }
}

}  // namespace

std::uint64_t epoch_tag(std::uint64_t epoch) {
  return mix64(epoch ^ 0x656e76656c6f7065ull) &
         ((std::uint64_t{1} << kEpochTagBits) - 1);
}

Message seal_message(std::uint64_t epoch, std::uint32_t id, std::uint32_t n,
                     const Message& payload) {
  BitWriter w;
  w.write_bits(epoch_tag(epoch), kEpochTagBits);
  w.write_bits(id, log_budget_bits(n));
  BitReader r = payload.reader();
  copy_bits(r, w);
  return Message::seal(std::move(w));
}

void seal_transcript(std::uint64_t epoch, std::uint32_t n,
                     std::vector<Message>& messages) {
  for (std::size_t i = 0; i < messages.size(); ++i) {
    messages[i] = seal_message(epoch, static_cast<std::uint32_t>(i + 1), n,
                               messages[i]);
  }
}

std::vector<Message> open_transcript(std::uint64_t epoch, std::uint32_t n,
                                     std::span<const Message> messages) {
  std::vector<Message> payloads;
  open_transcript_into(epoch, n, messages, DecodeArena::for_current_thread(),
                       payloads);
  return payloads;
}

void open_transcript_into(std::uint64_t epoch, std::uint32_t n,
                          std::span<const Message> messages,
                          DecodeArena& arena, std::vector<Message>& out) {
  if (messages.size() != n) {
    throw DecodeError(DecodeFault::kCountMismatch,
                      "expected one message per node, got " +
                          std::to_string(messages.size()) + " of " +
                          std::to_string(n));
  }
  const int id_bits = log_budget_bits(n);
  const std::uint64_t tag = epoch_tag(epoch);
  grow_to(out, n);
  auto writer_s = arena.scratch<BitWriter>();
  grow_to(*writer_s, 1);
  BitWriter& w = (*writer_s)[0];
  for (std::uint32_t i = 0; i < n; ++i) {
    if (messages[i].empty()) {
      throw DecodeError(DecodeFault::kMissingMessage,
                        "node " + std::to_string(i + 1) +
                            ": message dropped (0 bits on the wire)");
    }
    BitReader r = messages[i].reader();
    // A truncation into the header surfaces as kTruncated via BitReader.
    const std::uint64_t got_tag = r.read_bits(kEpochTagBits);
    if (got_tag != tag) {
      throw DecodeError(DecodeFault::kEpochMismatch,
                        "node " + std::to_string(i + 1) +
                            ": envelope tag from a different scenario "
                            "(stale or cross-cell replay)");
    }
    const std::uint64_t got_id = r.read_bits(id_bits);
    if (got_id != i + 1) {
      throw DecodeError(DecodeFault::kIdMismatch,
                        "slot " + std::to_string(i + 1) +
                            " carries a message claiming id " +
                            std::to_string(got_id) +
                            " (duplicate or swapped payload)");
    }
    w.clear();
    copy_bits(r, w);
    out[i].assign(w);
  }
}

}  // namespace referee
