#include "model/local_view.hpp"

#include <algorithm>

namespace referee {

LocalViewPack::LocalViewPack(const Graph& g)
    : n_(static_cast<std::uint32_t>(g.vertex_count())) {
  offsets_.assign(n_ + 1, 0);
  for (Vertex v = 0; v < n_; ++v) offsets_[v + 1] = offsets_[v] + g.degree(v);
  ids_.resize(offsets_[n_]);
  for (Vertex v = 0; v < n_; ++v) {
    std::size_t at = offsets_[v];
    for (const Vertex w : g.neighbors(v)) ids_[at++] = w + 1;
    // The graph layer canonicalizes adjacency (sorted, deduped) at edge
    // insertion; the pack inherits that contract. Verify in debug builds —
    // every protocol's wire format depends on it.
    REFEREE_DCHECK(std::is_sorted(ids_.begin() + offsets_[v],
                                  ids_.begin() + offsets_[v + 1]));
    REFEREE_DCHECK(std::adjacent_find(ids_.begin() + offsets_[v],
                                      ids_.begin() + offsets_[v + 1]) ==
                   ids_.begin() + offsets_[v + 1]);
  }
}

LocalViewPack::LocalViewPack(const CsrGraph& g)
    : n_(static_cast<std::uint32_t>(g.vertex_count())) {
  offsets_.assign(n_ + 1, 0);
  for (Vertex v = 0; v < n_; ++v) offsets_[v + 1] = offsets_[v] + g.degree(v);
  ids_.resize(offsets_[n_]);
  for (Vertex v = 0; v < n_; ++v) {
    std::size_t at = offsets_[v];
    for (const Vertex w : g.neighbors(v)) ids_[at++] = w + 1;
    // CsrGraph canonicalizes (sorted, deduped, no self-loops) at
    // construction; the pack inherits that contract.
    REFEREE_DCHECK(std::is_sorted(ids_.begin() + offsets_[v],
                                  ids_.begin() + offsets_[v + 1]));
  }
}

LocalView local_view_of(const Graph& g, Vertex v) {
  REFEREE_CHECK_MSG(v < g.vertex_count(), "vertex out of range");
  LocalView view;
  view.id = v + 1;
  view.n = static_cast<std::uint32_t>(g.vertex_count());
  view.neighbor_ids.reserve(g.degree(v));
  for (const Vertex w : g.neighbors(v)) view.neighbor_ids.push_back(w + 1);
  return view;
}

std::vector<LocalView> local_views(const Graph& g) {
  std::vector<LocalView> views;
  views.reserve(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    views.push_back(local_view_of(g, v));
  }
  return views;
}

LocalView make_view(NodeId id, std::uint32_t n, std::vector<NodeId> neighbors) {
  REFEREE_CHECK_MSG(id >= 1 && id <= n, "id out of range");
  std::sort(neighbors.begin(), neighbors.end());
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  for (const NodeId w : neighbors) {
    REFEREE_CHECK_MSG(w >= 1 && w <= n && w != id, "bad neighbour id");
  }
  return LocalView{id, n, std::move(neighbors)};
}

}  // namespace referee
