// Compatibility umbrella for the campaign subsystem.
//
// The campaign monolith that used to live here was split into the
// plan/execute/aggregate pipeline under src/campaign/:
//   campaign/scenario.hpp   cells: ScenarioSpec → ScenarioResult
//   campaign/plan.hpp       grid expansion, stable cell ids, shard slicing
//   campaign/backend.hpp    execution: ThreadPoolBackend, CampaignError
//   campaign/subprocess.hpp execution: multi-process shard-and-merge
//   campaign/report.hpp     aggregation: mergeable byte-stable v3 JSON
// This header keeps old call sites compiling: it re-exports the split
// headers and preserves CampaignRunner as a thin wrapper over
// ThreadPoolBackend's detail path. New code should include the campaign/
// headers directly and talk to CampaignBackend.
#pragma once

#include "campaign/backend.hpp"
#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/scenario.hpp"

namespace referee {

/// Legacy entry point: run a grid on the in-process backend and hand back
/// raw per-cell results. Equivalent to
/// ThreadPoolBackend(pool).run_cells(CampaignPlan::adopt(grid)).
class CampaignRunner {
 public:
  explicit CampaignRunner(ThreadPool* pool = nullptr) : backend_(pool) {}

  /// Run every scenario; results are indexed like `grid` regardless of
  /// scheduling.
  std::vector<ScenarioResult> run(const std::vector<ScenarioSpec>& grid) const {
    return backend_.run_cells(CampaignPlan::adopt(grid));
  }

 private:
  ThreadPoolBackend backend_;
};

}  // namespace referee
