// Campaign runner: batched scenario grids over the referee model.
//
// The ROADMAP's "as many scenarios as you can imagine" workload: a campaign
// is the cartesian grid (graph family × size × protocol × seed × fault
// plan). Every cell generates its graph, runs the one-round pipeline
// (zero-copy local phase → fault injection → referee decode), classifies
// the outcome against ground truth computed directly on the graph, and
// audits frugality. Scenarios are independent, so the runner shards the
// grid over a ThreadPool; each worker chunk reuses one message arena, so
// steady-state campaign throughput allocates almost nothing per scenario.
//
// Everything is deterministic in the specs: the same grid produces the
// same results (and byte-identical JSON) no matter how it is sharded.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/envelope.hpp"
#include "model/fault_model.hpp"
#include "model/frugality.hpp"
#include "model/simulator.hpp"
#include "support/thread_pool.hpp"

namespace referee {

/// One cell of a campaign grid.
struct ScenarioSpec {
  std::string generator = "kdeg";  // see campaign_generators()
  std::size_t n = 32;
  unsigned k = 3;    // degeneracy bound / protocol parameter
  double p = 0.1;    // edge probability, where the family takes one
  std::string protocol = "degeneracy";  // see campaign_protocols()
  std::uint64_t seed = 1;               // graph randomness
  FaultPlan faults;                     // message corruption, if any
};

/// Outcome of one scenario. `outcome` is one of:
///   "exact"        reconstruction returned the input graph
///   "correct"      decision/statistic matched ground truth
///   "loud"         the decoder refused (DecodeError) — contract respected
///   "silent-wrong" decode succeeded but disagreed with ground truth
/// `contract_ok` is false only for "silent-wrong": a referee may fail, but
/// never silently lie. For "loud" outcomes, `detail` names the DecodeFault
/// that tripped (see decode_fault_name), so sweeps can assert cause→effect
/// against `journal`, the injector's record of applied faults.
struct ScenarioResult {
  std::string outcome;
  bool contract_ok = true;
  std::string detail;
  FaultJournal journal;
  FrugalityReport report;
};

/// Per-(generator, protocol) aggregation plus overall frugality extremes.
struct CampaignAggregate {
  std::string generator;
  std::string protocol;
  std::size_t scenarios = 0;
  std::size_t ok = 0;            // exact or correct
  std::size_t loud = 0;          // refused loudly
  std::size_t silent_wrong = 0;  // contract violations
  std::size_t max_bits = 0;      // max over scenarios of per-node max
  double mean_max_bits = 0.0;    // mean over scenarios of per-node max
  double max_constant = 0.0;     // worst c in c·log2(n+1)
};

/// Axes of a campaign grid; expand_grid takes the cartesian product.
struct CampaignConfig {
  std::vector<std::string> generators{"kdeg", "tree", "gnp", "apollonian"};
  std::vector<std::size_t> sizes{24, 48};
  std::vector<std::string> protocols{"degeneracy", "forest", "stats",
                                     "connectivity"};
  std::vector<std::uint64_t> seeds{1, 2, 3, 4};
  /// Fault plans are applied verbatim except the seed: each scenario's
  /// fault stream is re-derived from its own seed so grids stay
  /// reproducible cell-by-cell.
  std::vector<FaultPlan> fault_plans{FaultPlan{}};
  unsigned k = 3;
  double p = 0.1;
};

/// Families / protocols the campaign knows how to instantiate by name.
const std::vector<std::string>& campaign_generators();
const std::vector<std::string>& campaign_protocols();

/// The cartesian product of the config's axes, in deterministic order
/// (generator-major, fault-plan-minor).
std::vector<ScenarioSpec> expand_grid(const CampaignConfig& config);

/// Generate the input graph of a scenario (deterministic in the spec).
Graph make_campaign_graph(const ScenarioSpec& spec);

/// The protocol instance a scenario runs, deterministic in (spec, graph):
/// building it twice — or building the donor cell's encoder for a stale
/// replay — always yields the same wire format. Reductions come back in
/// verified mode (re-encode verification). Exposed for the golden-
/// transcript fixtures and the fault-contract harness.
std::shared_ptr<const LocalEncoder> make_campaign_protocol(
    const ScenarioSpec& spec, const Graph& g);

/// The per-scenario envelope nonce: a deterministic hash of the cell
/// identity (generator, protocol, n, k, p, seed — every axis that shapes
/// the transcript). Two cells differing in any of those fields get
/// different epochs, which is what makes stale replays from another cell
/// detectable (DecodeFault::kEpochMismatch).
std::uint64_t scenario_epoch(const ScenarioSpec& spec);

/// The donor cell a stale replay steals messages from: the same cell with
/// a re-derived seed (hence a different graph and a different epoch).
ScenarioSpec stale_donor_spec(const ScenarioSpec& spec);

/// Run a single cell end to end (local phase → envelope → fault injection
/// → open → decode → classify). This is exactly what CampaignRunner does
/// per grid cell; exposed for the fault-contract harness and the shrinker.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Greedily shrink a failing cell to a minimal repro: while `still_fails`
/// holds, shrink n, zero out fault families one at a time, halve fault
/// counts and reset the seed. Deterministic; returns the smallest spec
/// found (the input itself if `still_fails(spec)` is already false).
ScenarioSpec shrink_scenario(
    const ScenarioSpec& spec,
    const std::function<bool(const ScenarioSpec&)>& still_fails);

/// The adversarial fault sweep the harness and CI run by default: 128
/// cells, every cell under exactly one correlated fault model. Under this
/// grid every decoder must answer correctly or throw a typed DecodeError —
/// zero silent-wrong cells, byte-identical JSON across thread counts.
CampaignConfig default_fault_sweep_config();

class CampaignRunner {
 public:
  /// `pool` may be null (sequential). Not owned. Scenario-level sharding:
  /// each scenario runs its local phase sequentially, the grid runs in
  /// parallel — the right granularity once scenarios outnumber cores.
  explicit CampaignRunner(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Run every scenario; results are indexed like `grid` regardless of
  /// scheduling.
  std::vector<ScenarioResult> run(const std::vector<ScenarioSpec>& grid) const;

 private:
  ThreadPool* pool_;
};

/// Aggregate results by (generator, protocol), in first-seen grid order.
std::vector<CampaignAggregate> aggregate_campaign(
    const std::vector<ScenarioSpec>& grid,
    const std::vector<ScenarioResult>& results);

/// Deterministic JSON report (schema referee-campaign-v1): per-scenario
/// rows plus aggregates. Byte-identical across runs and shardings of the
/// same grid.
std::string campaign_json(const std::vector<ScenarioSpec>& grid,
                          const std::vector<ScenarioResult>& results);

}  // namespace referee
