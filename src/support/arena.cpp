#include "support/arena.hpp"

#include <atomic>

namespace referee {

namespace detail {

std::size_t arena_next_type_index() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

DecodeArena& DecodeArena::for_current_thread() {
  static thread_local DecodeArena arena;
  return arena;
}

}  // namespace referee
