// Bit-granular message serialisation.
//
// Protocol messages in the referee model are *bitstrings*: frugality is a
// statement about the number of bits each node ships to the referee, so the
// library materialises every message through BitWriter/BitReader rather than
// counting abstract "words".
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace referee {

/// Append-only bit sink. Bits are packed LSB-first into bytes.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low `nbits` bits of `value` (LSB first). nbits in [0, 64].
  void write_bits(std::uint64_t value, int nbits);

  /// Append a single bit.
  void write_bit(bool bit) { write_bits(bit ? 1u : 0u, 1); }

  /// Number of bits written so far.
  std::size_t bit_size() const { return bit_count_; }

  /// The packed payload; the final byte may be partially used.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// Move the payload out, keeping the exact bit count separately.
  std::vector<std::uint8_t> take_bytes() { return std::move(bytes_); }

  void clear() {
    bytes_.clear();
    bit_count_ = 0;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

/// Sequential reader over a bitstring produced by BitWriter.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t bit_size)
      : data_(data), bit_size_(bit_size) {}

  explicit BitReader(const std::vector<std::uint8_t>& bytes,
                     std::size_t bit_size)
      : BitReader(bytes.data(), bit_size) {}

  /// Read `nbits` bits (LSB-first). Throws DecodeError past end of stream.
  std::uint64_t read_bits(int nbits);

  bool read_bit() { return read_bits(1) != 0; }

  std::size_t position() const { return pos_; }
  std::size_t bit_size() const { return bit_size_; }
  std::size_t remaining() const { return bit_size_ - pos_; }
  bool exhausted() const { return pos_ >= bit_size_; }

 private:
  const std::uint8_t* data_;
  std::size_t bit_size_;
  std::size_t pos_ = 0;
};

}  // namespace referee
