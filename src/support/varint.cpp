#include "support/varint.hpp"

#include "support/bits.hpp"
#include "support/check.hpp"

namespace referee {

void write_elias_gamma(BitWriter& w, std::uint64_t v) {
  REFEREE_CHECK_MSG(v >= 1, "elias gamma encodes positive integers");
  const int len = floor_log2(v);  // number of bits after the leading 1
  for (int i = 0; i < len; ++i) w.write_bit(false);
  w.write_bit(true);
  // low `len` bits of v, MSB-first for canonical gamma.
  for (int i = len - 1; i >= 0; --i) w.write_bit(((v >> i) & 1u) != 0);
}

std::uint64_t read_elias_gamma(BitReader& r) {
  int len = 0;
  while (!r.read_bit()) {
    ++len;
    if (len > 64) throw DecodeError(DecodeFault::kMalformed,
                      "elias gamma: run too long");
  }
  std::uint64_t v = 1;
  for (int i = 0; i < len; ++i) v = (v << 1) | (r.read_bit() ? 1u : 0u);
  return v;
}

void write_elias_delta(BitWriter& w, std::uint64_t v) {
  REFEREE_CHECK_MSG(v >= 1, "elias delta encodes positive integers");
  const int len = floor_log2(v);
  write_elias_gamma(w, static_cast<std::uint64_t>(len) + 1);
  for (int i = len - 1; i >= 0; --i) w.write_bit(((v >> i) & 1u) != 0);
}

std::uint64_t read_elias_delta(BitReader& r) {
  const std::uint64_t len1 = read_elias_gamma(r);
  if (len1 == 0 || len1 > 64) throw DecodeError(DecodeFault::kMalformed,
                      "elias delta: bad length");
  const int len = static_cast<int>(len1 - 1);
  std::uint64_t v = 1;
  for (int i = 0; i < len; ++i) v = (v << 1) | (r.read_bit() ? 1u : 0u);
  return v;
}

int elias_gamma_bits(std::uint64_t v) {
  REFEREE_CHECK(v >= 1);
  return 2 * floor_log2(v) + 1;
}

int elias_delta_bits(std::uint64_t v) {
  REFEREE_CHECK(v >= 1);
  const int len = floor_log2(v);
  return elias_gamma_bits(static_cast<std::uint64_t>(len) + 1) + len;
}

}  // namespace referee
