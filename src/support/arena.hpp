// Per-thread scratch arena for the referee's global (decode) phase.
//
// The campaign runner hammers `reconstruct()` across hundreds of cells per
// sweep; PR 2 made the *local* phase allocation-free (LocalViewPack +
// Message::assign), which left decode as the allocation hot spot: BigUInt
// power-sum temporaries, candidate/root vectors, framed sub-messages. A
// DecodeArena is a registry of typed vector pools: a decode path checks a
// `std::vector<T>` out, uses it as bump storage, and returns it with its
// capacity (and, for element types like BigUInt or Message, the elements'
// own heap blocks) intact. After a warm-up pass every checkout is satisfied
// from the pool and a steady-state campaign cell performs zero decode-path
// heap allocations — a property the arena *instruments* (growth_events) so
// tests can assert it rather than trust it.
//
// Contracts:
//   * Checked-out vectors carry stale contents from their previous use.
//     Callers of trivial element types may clear(); callers of non-trivial
//     element types (BigUInt, Message) should grow_to() and overwrite in
//     place so element capacity survives the round trip.
//   * An arena is single-threaded. Cross-thread use is a data race; use
//     for_current_thread() or one arena per worker.
//   * Scratch handles obey stack discipline (RAII locals), so the pool is
//     balanced at every decode boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <typeinfo>
#include <vector>

namespace referee {

class DecodeArena;

namespace detail {
/// Monotonic id per distinct scratch element type (process-wide).
std::size_t arena_next_type_index();

template <class T>
std::size_t arena_type_index() {
  static const std::size_t index = arena_next_type_index();
  return index;
}
}  // namespace detail

/// RAII checkout of a pooled std::vector<T>. Returns the vector to its pool
/// on destruction, recording capacity growth in the arena's stats.
template <class T>
class ArenaScratch {
 public:
  ArenaScratch(ArenaScratch&& other) noexcept
      : arena_(other.arena_),
        vec_(std::move(other.vec_)),
        checkout_capacity_(other.checkout_capacity_) {
    other.arena_ = nullptr;
  }
  ArenaScratch(const ArenaScratch&) = delete;
  ArenaScratch& operator=(const ArenaScratch&) = delete;
  ArenaScratch& operator=(ArenaScratch&&) = delete;
  ~ArenaScratch();

  std::vector<T>& operator*() const { return *vec_; }
  std::vector<T>* operator->() const { return vec_.get(); }
  std::vector<T>& get() const { return *vec_; }

 private:
  friend class DecodeArena;
  ArenaScratch(DecodeArena* arena, std::unique_ptr<std::vector<T>> vec)
      : arena_(arena), vec_(std::move(vec)), checkout_capacity_(vec_->capacity()) {}

  DecodeArena* arena_;
  std::unique_ptr<std::vector<T>> vec_;
  std::size_t checkout_capacity_;
};

/// Grow-only resize: never shrinks, so element capacity (and, for non-trivial
/// elements, their heap blocks) survives reuse. The arena idiom for sizing a
/// scratch vector.
template <class T>
void grow_to(std::vector<T>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

class DecodeArena {
 public:
  DecodeArena() = default;
  DecodeArena(const DecodeArena&) = delete;
  DecodeArena& operator=(const DecodeArena&) = delete;

  /// Check a vector<T> out of the pool (largest capacity first, so a warm
  /// pool satisfies the largest request without growing). Creates one when
  /// the pool is dry — a growth event. Set REFEREE_ARENA_TRACE=1 to print
  /// every growth event with its element type — the way to find which
  /// scratch role broke a zero-growth warm-sweep pin.
  template <class T>
  ArenaScratch<T> scratch() {
    auto& pool = pool_for<T>();
    ++stats_.checkouts;
    if (pool.free_list.empty()) {
      ++stats_.growth_events;
      if (std::getenv("REFEREE_ARENA_TRACE") != nullptr) {
        std::fprintf(stderr, "[arena] dry type=%zu (%s)\n",
                     detail::arena_type_index<T>(), typeid(T).name());
      }
      return ArenaScratch<T>(this, std::make_unique<std::vector<T>>());
    }
    // Largest-capacity-first keeps the pass-2 growth count at zero even when
    // checkout order differs from the order vectors were returned in.
    std::size_t best = 0;
    for (std::size_t i = 1; i < pool.free_list.size(); ++i) {
      if (pool.free_list[i]->capacity() > pool.free_list[best]->capacity()) {
        best = i;
      }
    }
    auto vec = std::move(pool.free_list[best]);
    pool.free_list[best] = std::move(pool.free_list.back());
    pool.free_list.pop_back();
    return ArenaScratch<T>(this, std::move(vec));
  }

  struct Stats {
    /// Total scratch checkouts served (warm or cold).
    std::uint64_t checkouts = 0;
    /// Pool misses + capacity-growth round trips: the allocation counter a
    /// steady-state decode must hold constant.
    std::uint64_t growth_events = 0;
    /// Bytes of vector capacity currently owned by the arena's pools
    /// (element-internal heap, e.g. BigUInt limbs, not included).
    std::uint64_t bytes_reserved = 0;
  };
  const Stats& stats() const { return stats_; }
  std::uint64_t growth_events() const { return stats_.growth_events; }

  /// The calling thread's arena (thread_local). The default plumbing for
  /// call sites that do not manage arenas explicitly; pool workers keep
  /// theirs warm across an entire campaign.
  static DecodeArena& for_current_thread();

 private:
  template <class T>
  friend class ArenaScratch;

  struct PoolBase {
    virtual ~PoolBase() = default;
  };
  template <class T>
  struct Pool final : PoolBase {
    std::vector<std::unique_ptr<std::vector<T>>> free_list;
  };

  template <class T>
  Pool<T>& pool_for() {
    const std::size_t index = detail::arena_type_index<T>();
    if (index >= pools_.size()) pools_.resize(index + 1);
    if (!pools_[index]) pools_[index] = std::make_unique<Pool<T>>();
    return static_cast<Pool<T>&>(*pools_[index]);
  }

  template <class T>
  void give_back(std::unique_ptr<std::vector<T>> vec,
                 std::size_t checkout_capacity) {
    const std::size_t cap = vec->capacity();
    if (cap > checkout_capacity) {
      ++stats_.growth_events;
      stats_.bytes_reserved += (cap - checkout_capacity) * sizeof(T);
      if (std::getenv("REFEREE_ARENA_TRACE") != nullptr) {
        std::fprintf(stderr, "[arena] grow type=%zu (%s) %zu -> %zu\n",
                     detail::arena_type_index<T>(), typeid(T).name(),
                     checkout_capacity, cap);
      }
    }
    pool_for<T>().free_list.push_back(std::move(vec));
  }

  std::vector<std::unique_ptr<PoolBase>> pools_;
  Stats stats_;
};

template <class T>
ArenaScratch<T>::~ArenaScratch() {
  if (arena_ != nullptr && vec_ != nullptr) {
    arena_->give_back(std::move(vec_), checkout_capacity_);
  }
}

}  // namespace referee
