// Runtime-dispatched SIMD kernels for the measured decode hot paths.
//
// Three kernels cover what profiling the benches showed actually matters:
// 64-bit power sums (the degeneracy encoder/decoder fast path), OneSparse
// triple merges (the Borůvka inner loop of the sketch referees), and the
// counting-sort prefix sums (sketch grouping + CSR sealing). Everything
// else stays scalar on purpose — e.g. elementary_from_power_sums_into is a
// serial chain of BigInt carries with no lane parallelism to exploit.
//
// Contract: the vector and scalar paths are BIT-IDENTICAL, not just
// approximately equal. All three kernels only reassociate wrapping uint64
// additions (fully associative/commutative) or keep per-lane exact
// arithmetic, so a transcript decodes to the same bytes whichever path ran.
// tests/test_simd.cpp pins this, and CI builds once with
// -DREFEREE_FORCE_SCALAR=ON to keep the fallback honest.
//
// Dispatch: active_kernels() picks AVX2 when the CPU has it, unless the
// REFEREE_FORCE_SCALAR environment variable is set (to anything but "0")
// or the REFEREE_FORCE_SCALAR compile definition removed the vector path
// entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace referee::simd {

/// Largest k the vectorized power-sum kernel handles before falling back to
/// scalar (protocol k is small; 8 covers every caller with headroom).
inline constexpr unsigned kMaxVectorPowers = 8;

/// 2^61 - 1, the fingerprint field modulus. Mirrors modp::kP — support/
/// cannot depend on sketch/, so the value is restated here and the equality
/// is pinned by tests/test_simd.cpp.
inline constexpr std::uint64_t kFingerprintMod =
    (std::uint64_t{1} << 61) - 1;

struct Kernels {
  const char* name;

  /// out[p] = Σ_i ids[i]^(p+1) for p in [0, k), wrapping uint64 arithmetic.
  /// Overwrites out[0..k). The caller guarantees the true sums fit 64 bits
  /// (power_sums_fit_u64) when exactness matters.
  void (*power_sums_u64)(const std::uint32_t* ids, std::size_t count,
                         unsigned k, std::uint64_t* out);

  /// Pairwise merge of `triples` OneSparse cells laid out flat as
  /// {weight_sum, index_sum, fingerprint} int64 triples: the first two of
  /// each triple get a wrapping add, the third a mod-(2^61-1) add (operands
  /// <= kFingerprintMod).
  void (*merge_onesparse)(std::int64_t* dst, const std::int64_t* src,
                          std::size_t triples);

  /// In-place inclusive prefix sum over count uint64 values. Scalar in
  /// every kernel table so far: the AVX2 in-register scan measured slower
  /// than the serial add chain at 64-bit width (see simd.cpp), so the slot
  /// exists for the dispatch seam, not because vectors won here.
  void (*prefix_sum_u64)(std::uint64_t* data, std::size_t count);
};

/// The always-compiled scalar reference implementations.
const Kernels& scalar_kernels();

/// The dispatched implementations (decided once per process).
const Kernels& active_kernels();

/// Prefix sums over size_t offset arrays (counting sorts, CSR sealing).
/// Routed through the kernel only where size_t is literally uint64_t; the
/// reinterpret_cast is then an identity cast.
inline void prefix_sum_sizes(std::size_t* data, std::size_t count) {
  if constexpr (std::is_same_v<std::size_t, std::uint64_t>) {
    active_kernels().prefix_sum_u64(reinterpret_cast<std::uint64_t*>(data),
                                    count);
  } else {
    for (std::size_t i = 1; i < count; ++i) data[i] += data[i - 1];
  }
}

}  // namespace referee::simd
