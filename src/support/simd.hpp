// Runtime-dispatched SIMD kernels for the measured decode hot paths.
//
// Four kernels cover what profiling the benches showed actually matters:
// 64-bit power sums (the degeneracy encoder/decoder fast path), OneSparse
// triple merges (the Borůvka inner loop of the sketch referees), the
// counting-sort prefix sums (sketch grouping + CSR sealing), and the
// lane-batched Newton identities (frontier-batched peeling decodes
// independent same-degree vertices, so the serial BigInt carry chain of
// one decode becomes four fixed-width chains running across AVX2 lanes).
//
// Contract: the vector and scalar paths are BIT-IDENTICAL, not just
// approximately equal. All three kernels only reassociate wrapping uint64
// additions (fully associative/commutative) or keep per-lane exact
// arithmetic, so a transcript decodes to the same bytes whichever path ran.
// tests/test_simd.cpp pins this, and CI builds once with
// -DREFEREE_FORCE_SCALAR=ON to keep the fallback honest.
//
// Dispatch: active_kernels() picks AVX2 when the CPU has it, unless the
// REFEREE_FORCE_SCALAR environment variable is set (to anything but "0")
// or the REFEREE_FORCE_SCALAR compile definition removed the vector path
// entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace referee::simd {

/// Largest k the vectorized power-sum kernel handles before falling back to
/// scalar (protocol k is small; 8 covers every caller with headroom).
inline constexpr unsigned kMaxVectorPowers = 8;

/// 2^61 - 1, the fingerprint field modulus. Mirrors modp::kP — support/
/// cannot depend on sketch/, so the value is restated here and the equality
/// is pinned by tests/test_simd.cpp.
inline constexpr std::uint64_t kFingerprintMod =
    (std::uint64_t{1} << 61) - 1;

/// Independent decodes processed per batched-Newton call — one per AVX2
/// 64-bit lane.
inline constexpr std::size_t kNewtonLanes = 4;

/// Largest fixed limb width the batched Newton kernel supports (256-bit
/// two's-complement values). Callers size the width from the degree/id
/// bound (numth/newton.hpp: newton_batch_width) and fall back to the
/// BigInt path past this.
inline constexpr std::size_t kNewtonMaxLimbs = 4;

struct Kernels {
  const char* name;

  /// out[p] = Σ_i ids[i]^(p+1) for p in [0, k), wrapping uint64 arithmetic.
  /// Overwrites out[0..k). The caller guarantees the true sums fit 64 bits
  /// (power_sums_fit_u64) when exactness matters.
  void (*power_sums_u64)(const std::uint32_t* ids, std::size_t count,
                         unsigned k, std::uint64_t* out);

  /// Pairwise merge of `triples` OneSparse cells laid out flat as
  /// {weight_sum, index_sum, fingerprint} int64 triples: the first two of
  /// each triple get a wrapping add, the third a mod-(2^61-1) add (operands
  /// <= kFingerprintMod).
  void (*merge_onesparse)(std::int64_t* dst, const std::int64_t* src,
                          std::size_t triples);

  /// Lane-batched Newton's identities: kNewtonLanes independent degree-d
  /// power-sum → elementary-symmetric conversions over fixed-width
  /// two's-complement values in structure-of-arrays layout. `sums` holds
  /// p_1..p_d and `elem` receives e_1..e_d; value v's limb w of lane l
  /// (little-endian limbs) sits at flat index (v*width + w)*kNewtonLanes + l,
  /// so one (value, limb) row is kNewtonLanes contiguous uint64 — a single
  /// AVX2 vector. All arithmetic wraps mod 2^(64*width), which is exact
  /// two's-complement arithmetic whenever the caller sized `width` to bound
  /// every intermediate (newton_batch_width does). width <= kNewtonMaxLimbs.
  /// Returns a bitmask of lanes that hit an inexact division by the step
  /// index (corrupt power sums); a faulted lane's elem values are
  /// unspecified and the caller must rerun that lane through the exact
  /// BigInt path for the serial fault.
  unsigned (*newton_batch)(const std::uint64_t* sums, unsigned d,
                           std::size_t width, std::uint64_t* elem);

  /// In-place inclusive prefix sum over count uint64 values. Scalar in
  /// every kernel table so far: the AVX2 in-register scan measured slower
  /// than the serial add chain at 64-bit width (see simd.cpp), so the slot
  /// exists for the dispatch seam, not because vectors won here.
  void (*prefix_sum_u64)(std::uint64_t* data, std::size_t count);
};

/// The always-compiled scalar reference implementations.
const Kernels& scalar_kernels();

/// The dispatched implementations (decided once per process).
const Kernels& active_kernels();

/// Prefix sums over size_t offset arrays (counting sorts, CSR sealing).
/// Routed through the kernel only where size_t is literally uint64_t; the
/// reinterpret_cast is then an identity cast.
inline void prefix_sum_sizes(std::size_t* data, std::size_t count) {
  if constexpr (std::is_same_v<std::size_t, std::uint64_t>) {
    active_kernels().prefix_sum_u64(reinterpret_cast<std::uint64_t*>(data),
                                    count);
  } else {
    for (std::size_t i = 1; i < count; ++i) data[i] += data[i - 1];
  }
}

}  // namespace referee::simd
