// Fixed-capacity MPMC queue with shed-on-full admission semantics.
//
// The referee service (src/service/) needs the opposite of an unbounded
// task queue: when producers outrun consumers the queue must refuse new
// work *immediately* — try_push returns false and the caller sheds the
// request with a typed kOverloaded refusal — instead of queueing without
// bound and turning overload into unbounded latency. The shape follows the
// fixed server/client queues of the RPC endpoint idiom (SNIPPETS.md
// Snippet 1): capacity is chosen once, at construction, and is the whole
// admission-control policy.
//
// Concurrency: a mutex + condition variable protect a deque — deliberately
// boring so the queue is correct under TSan without atomics heroics.
// Multiple producers and multiple consumers are supported; close() wakes
// every blocked consumer and makes further pushes fail, so shutdown never
// hangs a worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace referee {

template <class T>
class BoundedQueue {
 public:
  /// Capacity is clamped to at least 1: a zero-capacity queue would shed
  /// everything, which is never what a caller means.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Admission control: enqueue `value` unless the queue is full or
  /// closed. Never blocks — a false return is the signal to shed, and the
  /// value is only moved from on success, so a shed caller still owns it
  /// (the service must answer a rejected job's promise).
  bool try_push(T&& value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  bool try_push(const T& value) {
    T copy(value);
    return try_push(std::move(copy));
  }

  /// Block until an item arrives or the queue is closed *and* drained;
  /// nullopt means "no more work, ever" — the consumer's exit signal.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    return value;
  }

  /// Non-blocking pop: nullopt when the queue is momentarily empty.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    return value;
  }

  /// Pop the head only if `pred(head)` holds — the service batcher's
  /// coalescing primitive: it drains the contiguous run of batchable
  /// requests at the head without reordering anything behind them.
  template <class Pred>
  std::optional<T> try_pop_if(const Pred& pred) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty() || !pred(items_.front())) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    return value;
  }

  /// No further pushes succeed; blocked consumers drain the remaining
  /// items and then observe nullopt. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace referee
