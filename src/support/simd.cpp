#include "support/simd.hpp"

#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(REFEREE_FORCE_SCALAR)
#define REFEREE_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define REFEREE_SIMD_HAVE_AVX2 0
#endif

namespace referee::simd {
namespace {

void power_sums_u64_scalar(const std::uint32_t* ids, std::size_t count,
                           unsigned k, std::uint64_t* out) {
  for (unsigned p = 0; p < k; ++p) out[p] = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t power = 1;
    for (unsigned p = 0; p < k; ++p) {
      power *= ids[i];
      out[p] += power;
    }
  }
}

void merge_onesparse_scalar(std::int64_t* dst, const std::int64_t* src,
                            std::size_t triples) {
  for (std::size_t t = 0; t < triples; ++t, dst += 3, src += 3) {
    // Wrapping adds via uint64 — same bits as OneSparse's signed +=.
    dst[0] = static_cast<std::int64_t>(static_cast<std::uint64_t>(dst[0]) +
                                       static_cast<std::uint64_t>(src[0]));
    dst[1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(dst[1]) +
                                       static_cast<std::uint64_t>(src[1]));
    const std::uint64_t f = static_cast<std::uint64_t>(dst[2]) +
                            static_cast<std::uint64_t>(src[2]);
    dst[2] = static_cast<std::int64_t>(f >= kFingerprintMod
                                           ? f - kFingerprintMod
                                           : f);
  }
}

void prefix_sum_u64_scalar(std::uint64_t* data, std::size_t count) {
  for (std::size_t i = 1; i < count; ++i) data[i] += data[i - 1];
}

// --- lane-batched Newton helpers -----------------------------------------
//
// Fixed-width two's-complement arithmetic on little-endian uint64 limbs.
// Everything wraps mod 2^(64*width); the caller sized width so the true
// values fit, which makes wrapping arithmetic exact (signs included — two's
// complement is just the mod-2^(64W) residue, so add/sub/mul need no sign
// handling at all; only the division extracts the sign).

// In-place two's-complement negate.
void negate_limbs(std::uint64_t* limbs, std::size_t width) {
  std::uint64_t carry = 1;
  for (std::size_t w = 0; w < width; ++w) {
    const std::uint64_t s = ~limbs[w] + carry;
    carry = s < carry ? 1 : 0;
    limbs[w] = s;
  }
}

// Exact in-place signed division by the Newton step index; false when the
// remainder is non-zero (corrupt power sums — the fault the BigInt path
// reports as DecodeError).
bool div_exact_limbs(std::uint64_t* limbs, std::size_t width,
                     std::uint64_t divisor) {
  const bool neg = (limbs[width - 1] >> 63) != 0;
  if (neg) negate_limbs(limbs, width);
  unsigned __int128 rem = 0;
  for (std::size_t w = width; w-- > 0;) {
    const unsigned __int128 cur = (rem << 64) | limbs[w];
    limbs[w] = static_cast<std::uint64_t>(cur / divisor);
    rem = cur % divisor;
  }
  if (rem != 0) return false;
  if (neg) negate_limbs(limbs, width);
  return true;
}

// out = a * b truncated to width limbs (exact mod 2^(64*width)) via a
// 192-bit column accumulator — three carries cover width <= 4 partials per
// column with headroom.
void mul_trunc_limbs(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t width, std::uint64_t* out) {
  std::uint64_t c0 = 0, c1 = 0, c2 = 0;
  for (std::size_t rw = 0; rw < width; ++rw) {
    for (std::size_t x = 0; x <= rw; ++x) {
      const unsigned __int128 p =
          static_cast<unsigned __int128>(a[x]) * b[rw - x];
      const auto plo = static_cast<std::uint64_t>(p);
      const auto phi = static_cast<std::uint64_t>(p >> 64);
      c0 += plo;
      const std::uint64_t carry = c0 < plo ? 1u : 0u;
      c1 += phi;
      std::uint64_t carry2 = c1 < phi ? 1u : 0u;
      c1 += carry;
      carry2 += c1 < carry ? 1u : 0u;
      c2 += carry2;
    }
    out[rw] = c0;
    c0 = c1;
    c1 = c2;
    c2 = 0;
  }
}

void add_limbs(std::uint64_t* acc, const std::uint64_t* t, std::size_t width) {
  std::uint64_t carry = 0;
  for (std::size_t w = 0; w < width; ++w) {
    std::uint64_t s = acc[w] + t[w];
    const std::uint64_t c = s < t[w] ? 1u : 0u;
    s += carry;
    carry = c | (s < carry ? 1u : 0u);
    acc[w] = s;
  }
}

void sub_limbs(std::uint64_t* acc, const std::uint64_t* t, std::size_t width) {
  std::uint64_t borrow = 0;
  for (std::size_t w = 0; w < width; ++w) {
    const std::uint64_t d1 = acc[w] - t[w];
    const std::uint64_t b = acc[w] < t[w] ? 1u : 0u;
    const std::uint64_t d2 = d1 - borrow;
    acc[w] = d2;
    borrow = b | (d1 < borrow ? 1u : 0u);
  }
}

unsigned newton_batch_scalar(const std::uint64_t* sums, unsigned d,
                             std::size_t width, std::uint64_t* elem) {
  const auto at = [width](std::size_t value, std::size_t w,
                          std::size_t lane) {
    return (value * width + w) * kNewtonLanes + lane;
  };
  std::uint64_t one[kNewtonMaxLimbs] = {1};
  std::uint64_t a[kNewtonMaxLimbs];
  std::uint64_t b[kNewtonMaxLimbs];
  std::uint64_t acc[kNewtonMaxLimbs];
  std::uint64_t term[kNewtonMaxLimbs];
  unsigned faults = 0;
  for (std::size_t lane = 0; lane < kNewtonLanes; ++lane) {
    for (unsigned i = 1; i <= d; ++i) {
      for (std::size_t w = 0; w < width; ++w) acc[w] = 0;
      for (unsigned j = 1; j <= i; ++j) {
        for (std::size_t w = 0; w < width; ++w) {
          a[w] = i - j == 0 ? one[w] : elem[at(i - j - 1, w, lane)];
          b[w] = sums[at(j - 1, w, lane)];
        }
        mul_trunc_limbs(a, b, width, term);
        if (j % 2 == 0) {
          sub_limbs(acc, term, width);
        } else {
          add_limbs(acc, term, width);
        }
      }
      if (!div_exact_limbs(acc, width, i)) {
        faults |= 1u << lane;
        break;
      }
      for (std::size_t w = 0; w < width; ++w) {
        elem[at(i - 1, w, lane)] = acc[w];
      }
    }
  }
  return faults;
}

constexpr Kernels kScalar{"scalar", power_sums_u64_scalar,
                          merge_onesparse_scalar, newton_batch_scalar,
                          prefix_sum_u64_scalar};

#if REFEREE_SIMD_HAVE_AVX2

/// Low 64 bits of a * b where every b lane is < 2^32 (our node ids), so the
/// high-b cross term vanishes: a*b = lo32(a)*b + (hi32(a)*b << 32).
__attribute__((target("avx2"))) inline __m256i mul_u64_by_u32(__m256i a,
                                                              __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

__attribute__((target("avx2"))) void power_sums_u64_avx2(
    const std::uint32_t* ids, std::size_t count, unsigned k,
    std::uint64_t* out) {
  if (k == 0) return;
  if (k > kMaxVectorPowers) {
    power_sums_u64_scalar(ids, count, k, out);
    return;
  }
  __m256i acc[kMaxVectorPowers];
  for (unsigned p = 0; p < k; ++p) acc[p] = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i id =
        _mm256_set_epi64x(ids[i + 3], ids[i + 2], ids[i + 1], ids[i]);
    __m256i power = id;
    acc[0] = _mm256_add_epi64(acc[0], power);
    for (unsigned p = 1; p < k; ++p) {
      power = mul_u64_by_u32(power, id);
      acc[p] = _mm256_add_epi64(acc[p], power);
    }
  }
  // Wrapping uint64 addition is associative and commutative, so per-lane
  // partials + horizontal fold + scalar tail give exactly the scalar bits.
  for (unsigned p = 0; p < k; ++p) {
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[p]);
    out[p] = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  }
  for (; i < count; ++i) {
    std::uint64_t power = 1;
    for (unsigned p = 0; p < k; ++p) {
      power *= ids[i];
      out[p] += power;
    }
  }
}

__attribute__((target("avx2"))) void merge_onesparse_avx2(
    std::int64_t* dst, const std::int64_t* src, std::size_t triples) {
  const __m256i mod =
      _mm256_set1_epi64x(static_cast<long long>(kFingerprintMod));
  const __m256i mod_minus_1 =
      _mm256_set1_epi64x(static_cast<long long>(kFingerprintMod - 1));
  // Four triples = 12 u64 = three vectors; fingerprints sit at flat indices
  // 2, 5, 8 and 11 (_mm256_set_epi64x lists lanes high to low).
  const __m256i masks[3] = {
      _mm256_set_epi64x(0, -1, 0, 0),
      _mm256_set_epi64x(0, 0, -1, 0),
      _mm256_set_epi64x(-1, 0, 0, -1),
  };
  std::size_t t = 0;
  for (; t + 4 <= triples; t += 4, dst += 12, src += 12) {
    for (int v = 0; v < 3; ++v) {
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + 4 * v));
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 4 * v));
      const __m256i sum = _mm256_add_epi64(d, s);
      // Fingerprint lanes hold values <= kFingerprintMod, so their sum is
      // below 2^62 and stays positive under the signed compare.
      const __m256i over = _mm256_cmpgt_epi64(sum, mod_minus_1);
      const __m256i reduced =
          _mm256_sub_epi64(sum, _mm256_and_si256(over, mod));
      const __m256i blended = _mm256_blendv_epi8(sum, reduced, masks[v]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4 * v), blended);
    }
  }
  merge_onesparse_scalar(dst, src, triples - t);
}

// Unsigned 64-bit a < b per lane (AVX2 only has signed compares; biasing
// both operands by 2^63 turns the unsigned order into the signed one).
__attribute__((target("avx2"))) inline __m256i u64_lt(__m256i a, __m256i b) {
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                            _mm256_xor_si256(a, bias));
}

// All-ones/zero compare mask -> 0/1 carry.
__attribute__((target("avx2"))) inline __m256i mask_to_one(__m256i m) {
  return _mm256_srli_epi64(m, 63);
}

// Full 64x64 -> 128 product per lane from four 32x32 partials
// (_mm256_mul_epu32 multiplies the low 32 bits of each 64-bit lane).
__attribute__((target("avx2"))) inline void mul_64x64(__m256i x, __m256i y,
                                                      __m256i* lo,
                                                      __m256i* hi) {
  const __m256i lomask = _mm256_set1_epi64x(0xffffffffll);
  const __m256i xh = _mm256_srli_epi64(x, 32);
  const __m256i yh = _mm256_srli_epi64(y, 32);
  const __m256i t = _mm256_mul_epu32(x, y);  // xl*yl
  const __m256i u =
      _mm256_add_epi64(_mm256_mul_epu32(xh, y), _mm256_srli_epi64(t, 32));
  const __m256i v =
      _mm256_add_epi64(_mm256_mul_epu32(x, yh), _mm256_and_si256(u, lomask));
  *lo = _mm256_or_si256(_mm256_and_si256(t, lomask), _mm256_slli_epi64(v, 32));
  *hi = _mm256_add_epi64(
      _mm256_mul_epu32(xh, yh),
      _mm256_add_epi64(_mm256_srli_epi64(u, 32), _mm256_srli_epi64(v, 32)));
}

// term = a * b truncated to width limbs, all four lanes at once. A null
// a_base means the implicit e_0 = 1 operand. Same 192-bit column
// accumulator as the scalar path, vectorized across lanes — the bits are
// identical because every operation is exact wrapping integer arithmetic.
__attribute__((target("avx2"))) inline void mul_trunc_rows(
    const std::uint64_t* a_base, const std::uint64_t* b_base,
    std::size_t width, __m256i* term) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one0 = _mm256_set1_epi64x(1);
  __m256i c0 = zero;
  __m256i c1 = zero;
  __m256i c2 = zero;
  for (std::size_t rw = 0; rw < width; ++rw) {
    for (std::size_t x = 0; x <= rw; ++x) {
      const __m256i av =
          a_base == nullptr
              ? (x == 0 ? one0 : zero)
              : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                    a_base + x * kNewtonLanes));
      const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          b_base + (rw - x) * kNewtonLanes));
      __m256i plo;
      __m256i phi;
      mul_64x64(av, bv, &plo, &phi);
      __m256i s = _mm256_add_epi64(c0, plo);
      const __m256i carry = mask_to_one(u64_lt(s, plo));
      c0 = s;
      s = _mm256_add_epi64(c1, phi);
      __m256i carry2 = mask_to_one(u64_lt(s, phi));
      const __m256i s2 = _mm256_add_epi64(s, carry);
      carry2 = _mm256_or_si256(carry2, mask_to_one(u64_lt(s2, carry)));
      c1 = s2;
      c2 = _mm256_add_epi64(c2, carry2);
    }
    term[rw] = c0;
    c0 = c1;
    c1 = c2;
    c2 = zero;
  }
}

// acc +=/-= term across width limbs with lane-local carry/borrow chains.
__attribute__((target("avx2"))) inline void add_rows(__m256i* acc,
                                                     const __m256i* term,
                                                     std::size_t width) {
  __m256i carry = _mm256_setzero_si256();
  for (std::size_t w = 0; w < width; ++w) {
    __m256i s = _mm256_add_epi64(acc[w], term[w]);
    const __m256i c = u64_lt(s, term[w]);
    s = _mm256_add_epi64(s, carry);
    carry = mask_to_one(_mm256_or_si256(c, u64_lt(s, carry)));
    acc[w] = s;
  }
}

__attribute__((target("avx2"))) inline void sub_rows(__m256i* acc,
                                                     const __m256i* term,
                                                     std::size_t width) {
  __m256i borrow = _mm256_setzero_si256();
  for (std::size_t w = 0; w < width; ++w) {
    const __m256i d1 = _mm256_sub_epi64(acc[w], term[w]);
    const __m256i b = u64_lt(acc[w], term[w]);
    const __m256i d2 = _mm256_sub_epi64(d1, borrow);
    borrow = mask_to_one(_mm256_or_si256(b, u64_lt(d1, borrow)));
    acc[w] = d2;
  }
}

__attribute__((target("avx2"))) unsigned newton_batch_avx2(
    const std::uint64_t* sums, unsigned d, std::size_t width,
    std::uint64_t* elem) {
  __m256i acc[kNewtonMaxLimbs];
  __m256i term[kNewtonMaxLimbs];
  alignas(32) std::uint64_t cols[kNewtonMaxLimbs][kNewtonLanes];
  std::uint64_t lane_val[kNewtonMaxLimbs];
  unsigned faults = 0;
  for (unsigned i = 1; i <= d; ++i) {
    for (std::size_t w = 0; w < width; ++w) acc[w] = _mm256_setzero_si256();
    for (unsigned j = 1; j <= i; ++j) {
      const std::uint64_t* a_base =
          i - j == 0
              ? nullptr
              : elem + static_cast<std::size_t>(i - j - 1) * width *
                           kNewtonLanes;
      const std::uint64_t* b_base =
          sums + static_cast<std::size_t>(j - 1) * width * kNewtonLanes;
      mul_trunc_rows(a_base, b_base, width, term);
      if (j % 2 == 0) {
        sub_rows(acc, term, width);
      } else {
        add_rows(acc, term, width);
      }
    }
    // The division by i stays scalar per lane: it is one short remainder
    // chain per step, and a faulted lane needs its own verdict anyway.
    for (std::size_t w = 0; w < width; ++w) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(cols[w]), acc[w]);
    }
    for (std::size_t lane = 0; lane < kNewtonLanes; ++lane) {
      if ((faults >> lane) & 1u) continue;  // garbage already; skip the work
      for (std::size_t w = 0; w < width; ++w) lane_val[w] = cols[w][lane];
      if (!div_exact_limbs(lane_val, width, i)) {
        faults |= 1u << lane;
        continue;
      }
      for (std::size_t w = 0; w < width; ++w) cols[w][lane] = lane_val[w];
    }
    for (std::size_t w = 0; w < width; ++w) {
      // elem is caller scratch with no 32-byte alignment guarantee.
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(
                              elem + (static_cast<std::size_t>(i - 1) * width +
                                      w) *
                                  kNewtonLanes),
                          _mm256_load_si256(
                              reinterpret_cast<const __m256i*>(cols[w])));
    }
  }
  return faults;
}

// The prefix-sum slot stays scalar even in the AVX2 table: a 64-bit
// in-register scan (permute4x64 + blend shifts, carry broadcast) was
// benchmarked 1.3–2.3x SLOWER than the serial add chain — the cross-lane
// permute latency loses to the one-add-per-cycle dependency chain at this
// element width. Measured, not assumed; see bench_simd_kernels.
constexpr Kernels kAvx2{"avx2", power_sums_u64_avx2, merge_onesparse_avx2,
                        newton_batch_avx2, prefix_sum_u64_scalar};

#endif  // REFEREE_SIMD_HAVE_AVX2

const Kernels& pick_kernels() {
  const char* force = std::getenv("REFEREE_FORCE_SCALAR");
  const bool forced =
      force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0');
  if (forced) return kScalar;
#if REFEREE_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return kAvx2;
#endif
  return kScalar;
}

}  // namespace

const Kernels& scalar_kernels() { return kScalar; }

const Kernels& active_kernels() {
  static const Kernels& chosen = pick_kernels();
  return chosen;
}

}  // namespace referee::simd
