#include "support/simd.hpp"

#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(REFEREE_FORCE_SCALAR)
#define REFEREE_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define REFEREE_SIMD_HAVE_AVX2 0
#endif

namespace referee::simd {
namespace {

void power_sums_u64_scalar(const std::uint32_t* ids, std::size_t count,
                           unsigned k, std::uint64_t* out) {
  for (unsigned p = 0; p < k; ++p) out[p] = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t power = 1;
    for (unsigned p = 0; p < k; ++p) {
      power *= ids[i];
      out[p] += power;
    }
  }
}

void merge_onesparse_scalar(std::int64_t* dst, const std::int64_t* src,
                            std::size_t triples) {
  for (std::size_t t = 0; t < triples; ++t, dst += 3, src += 3) {
    // Wrapping adds via uint64 — same bits as OneSparse's signed +=.
    dst[0] = static_cast<std::int64_t>(static_cast<std::uint64_t>(dst[0]) +
                                       static_cast<std::uint64_t>(src[0]));
    dst[1] = static_cast<std::int64_t>(static_cast<std::uint64_t>(dst[1]) +
                                       static_cast<std::uint64_t>(src[1]));
    const std::uint64_t f = static_cast<std::uint64_t>(dst[2]) +
                            static_cast<std::uint64_t>(src[2]);
    dst[2] = static_cast<std::int64_t>(f >= kFingerprintMod
                                           ? f - kFingerprintMod
                                           : f);
  }
}

void prefix_sum_u64_scalar(std::uint64_t* data, std::size_t count) {
  for (std::size_t i = 1; i < count; ++i) data[i] += data[i - 1];
}

constexpr Kernels kScalar{"scalar", power_sums_u64_scalar,
                          merge_onesparse_scalar, prefix_sum_u64_scalar};

#if REFEREE_SIMD_HAVE_AVX2

/// Low 64 bits of a * b where every b lane is < 2^32 (our node ids), so the
/// high-b cross term vanishes: a*b = lo32(a)*b + (hi32(a)*b << 32).
__attribute__((target("avx2"))) inline __m256i mul_u64_by_u32(__m256i a,
                                                              __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

__attribute__((target("avx2"))) void power_sums_u64_avx2(
    const std::uint32_t* ids, std::size_t count, unsigned k,
    std::uint64_t* out) {
  if (k == 0) return;
  if (k > kMaxVectorPowers) {
    power_sums_u64_scalar(ids, count, k, out);
    return;
  }
  __m256i acc[kMaxVectorPowers];
  for (unsigned p = 0; p < k; ++p) acc[p] = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i id =
        _mm256_set_epi64x(ids[i + 3], ids[i + 2], ids[i + 1], ids[i]);
    __m256i power = id;
    acc[0] = _mm256_add_epi64(acc[0], power);
    for (unsigned p = 1; p < k; ++p) {
      power = mul_u64_by_u32(power, id);
      acc[p] = _mm256_add_epi64(acc[p], power);
    }
  }
  // Wrapping uint64 addition is associative and commutative, so per-lane
  // partials + horizontal fold + scalar tail give exactly the scalar bits.
  for (unsigned p = 0; p < k; ++p) {
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[p]);
    out[p] = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  }
  for (; i < count; ++i) {
    std::uint64_t power = 1;
    for (unsigned p = 0; p < k; ++p) {
      power *= ids[i];
      out[p] += power;
    }
  }
}

__attribute__((target("avx2"))) void merge_onesparse_avx2(
    std::int64_t* dst, const std::int64_t* src, std::size_t triples) {
  const __m256i mod =
      _mm256_set1_epi64x(static_cast<long long>(kFingerprintMod));
  const __m256i mod_minus_1 =
      _mm256_set1_epi64x(static_cast<long long>(kFingerprintMod - 1));
  // Four triples = 12 u64 = three vectors; fingerprints sit at flat indices
  // 2, 5, 8 and 11 (_mm256_set_epi64x lists lanes high to low).
  const __m256i masks[3] = {
      _mm256_set_epi64x(0, -1, 0, 0),
      _mm256_set_epi64x(0, 0, -1, 0),
      _mm256_set_epi64x(-1, 0, 0, -1),
  };
  std::size_t t = 0;
  for (; t + 4 <= triples; t += 4, dst += 12, src += 12) {
    for (int v = 0; v < 3; ++v) {
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + 4 * v));
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 4 * v));
      const __m256i sum = _mm256_add_epi64(d, s);
      // Fingerprint lanes hold values <= kFingerprintMod, so their sum is
      // below 2^62 and stays positive under the signed compare.
      const __m256i over = _mm256_cmpgt_epi64(sum, mod_minus_1);
      const __m256i reduced =
          _mm256_sub_epi64(sum, _mm256_and_si256(over, mod));
      const __m256i blended = _mm256_blendv_epi8(sum, reduced, masks[v]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4 * v), blended);
    }
  }
  merge_onesparse_scalar(dst, src, triples - t);
}

// The prefix-sum slot stays scalar even in the AVX2 table: a 64-bit
// in-register scan (permute4x64 + blend shifts, carry broadcast) was
// benchmarked 1.3–2.3x SLOWER than the serial add chain — the cross-lane
// permute latency loses to the one-add-per-cycle dependency chain at this
// element width. Measured, not assumed; see bench_simd_kernels.
constexpr Kernels kAvx2{"avx2", power_sums_u64_avx2, merge_onesparse_avx2,
                        prefix_sum_u64_scalar};

#endif  // REFEREE_SIMD_HAVE_AVX2

const Kernels& pick_kernels() {
  const char* force = std::getenv("REFEREE_FORCE_SCALAR");
  const bool forced =
      force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0');
  if (forced) return kScalar;
#if REFEREE_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return kAvx2;
#endif
  return kScalar;
}

}  // namespace

const Kernels& scalar_kernels() { return kScalar; }

const Kernels& active_kernels() {
  static const Kernels& chosen = pick_kernels();
  return chosen;
}

}  // namespace referee::simd
