// Crash-safe file publication: write-to-temp, fsync, atomic rename.
//
// Every binary artifact this library persists (refgrph1 edge files,
// reftrn1 sealed transcripts) must never be observable half-written: a
// killed `refereectl graph pack` must not leave a truncated file whose
// first 32 bytes still parse as a valid-looking header. The standard fix
// is the temp-file dance — stream into `<path>.tmp.<pid>`, flush and
// fsync the data, then rename(2) over the destination, which POSIX makes
// atomic on one filesystem. Readers therefore see either the old file,
// no file, or the complete new file; never a prefix.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

namespace referee {

/// Stream a file's contents via `writer` (called once with the open FILE*)
/// and publish it at `path` atomically. The writer must CHECK its own
/// fwrite return values for early corruption detection; this helper
/// additionally verifies flush/fsync/rename and throws CheckError on any
/// failure, removing the temp file on every error path.
void write_file_atomically(const std::string& path,
                           const std::function<void(std::FILE*)>& writer);

}  // namespace referee
