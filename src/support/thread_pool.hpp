// Minimal work-stealing-free thread pool with a blocking parallel_for.
//
// The referee model's local phase is embarrassingly parallel (one message per
// node, no shared state); this pool shards index ranges over worker threads.
// Determinism note: workers write into disjoint output slots, so results are
// bit-identical to the sequential run regardless of scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace referee {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  /// Apply `body(i)` for i in [begin, end), sharded into `grain`-sized
  /// chunks across the pool. Blocks until complete. Exceptions thrown by
  /// `body` are captured — the first one (in wall-clock order) is rethrown
  /// on the caller with its original type, remaining unstarted chunks are
  /// abandoned, and the pool itself stays healthy for the next call.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// Chunk-granular variant: `body(lo, hi)` is called once per chunk with
  /// lo < hi. This is the arena-reuse hook — a body can set up per-chunk
  /// scratch state (a BitWriter, an Rng, a decode buffer) once and reuse it
  /// across the whole chunk instead of paying per-index setup. Same
  /// exception contract as parallel_for: first error rethrown typed,
  /// unstarted chunks abandoned, no hang and no terminate().
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t grain = 0);

  /// Run `fn(worker_index)` exactly once on every worker thread and block
  /// until all have finished. The tasks rendezvous at an internal barrier,
  /// which is what pins one task per worker: a pool thread runs one task
  /// at a time, so `size()` simultaneously-resident tasks occupy distinct
  /// workers. This is the service layer's probe for per-worker
  /// thread_local state (warm DecodeArena stats); it queues behind any
  /// in-flight work rather than interrupting it. Concurrent probes are
  /// serialized internally — two interleaved barriers could otherwise
  /// split the workers between them and deadlock.
  void for_each_worker(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex probe_mutex_;  // serializes for_each_worker barriers
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Convenience: run body over [begin,end) either on `pool` (if non-null and
/// the range is large enough to amortise dispatch) or inline.
void maybe_parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)>& body,
                        std::size_t serial_cutoff = 256);

/// The intra-cell worker pool for the thread that is currently executing a
/// campaign cell (or a bare reconstruct): referees consult this to shard
/// their transcript parse and frontier decodes. Null means "stay serial" —
/// the default, and what grid-level sharding uses when cells already
/// saturate the machine. The pool MUST be distinct from the pool whose
/// worker set the scope: a worker blocking in parallel_for on its own pool
/// can deadlock when every sibling is similarly blocked. One shared
/// intra-cell pool across many grid workers is fine (concurrent
/// parallel_for calls from different caller threads are supported).
ThreadPool* cell_pool();

/// RAII installer for cell_pool() on the current thread. Scopes nest; each
/// restores the previous pool on destruction.
class CellPoolScope {
 public:
  explicit CellPoolScope(ThreadPool* pool);
  ~CellPoolScope();

  CellPoolScope(const CellPoolScope&) = delete;
  CellPoolScope& operator=(const CellPoolScope&) = delete;

 private:
  ThreadPool* prev_;
};

/// Lowest-index error reduction for deterministic parallel loops whose
/// serial counterpart throws at the first failing index: workers record
/// (index, exception) pairs and only the smallest index survives, so the
/// rethrown fault is the serial loop's fault regardless of scheduling.
class LowestIndexFault {
 public:
  /// Keep `error` if `index` beats the current minimum. Thread-safe.
  void record(std::size_t index, std::exception_ptr error);

  /// Accessors take the mutex too, so they are safe even if polled while
  /// workers are still record()ing (the usual call site is after the
  /// parallel loop has joined, where the lock is uncontended).
  bool any() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return error_ != nullptr;
  }
  std::size_t index() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_;
  }

  /// Rethrow the recorded minimum-index exception, if any.
  void rethrow_if_any() const;

 private:
  mutable std::mutex mutex_;
  std::size_t index_ = static_cast<std::size_t>(-1);
  std::exception_ptr error_;
};

/// Run `body(i)` over [begin, end) — on `pool` when non-null and the range
/// clears `serial_cutoff`, inline otherwise — catching each index's
/// exception into `faults` instead of letting it unwind. Every index runs
/// (no early abandon: a later fault must not shadow an earlier index that
/// had not started yet), so after the loop `faults.rethrow_if_any()` raises
/// exactly the serial loop's first fault. Bodies must confine their side
/// effects to per-index slots for that equivalence to hold.
void parallel_for_collecting(ThreadPool* pool, std::size_t begin,
                             std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             LowestIndexFault& faults,
                             std::size_t serial_cutoff = 256);

/// Chunked analogue of maybe_parallel_for: the sequential fallback is a
/// single body(begin, end) call, so per-chunk scratch state is set up once.
void maybe_parallel_for_chunks(
    ThreadPool* pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t serial_cutoff = 256);

}  // namespace referee
