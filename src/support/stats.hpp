// Small statistics helpers used by the benchmark harness to turn raw series
// into the fitted constants the experiment write-ups report (e.g. the slope
// of message bits against log2 n in E1).
#pragma once

#include <cmath>
#include <cstddef>

#include "support/check.hpp"

namespace referee {

/// Welford online mean/variance.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min_seen() const { return min_; }
  double max_seen() const { return max_; }

  void add_tracked(double x) {
    add(x);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Ordinary least squares y = intercept + slope * x.
class LinearFit {
 public:
  void add(double x, double y) {
    ++count_;
    sum_x_ += x;
    sum_y_ += y;
    sum_xx_ += x * x;
    sum_xy_ += x * y;
    sum_yy_ += y * y;
  }

  std::size_t count() const { return count_; }

  double slope() const {
    REFEREE_CHECK_MSG(count_ >= 2, "need two points for a fit");
    const double n = static_cast<double>(count_);
    const double denom = n * sum_xx_ - sum_x_ * sum_x_;
    REFEREE_CHECK_MSG(denom != 0.0, "degenerate x values");
    return (n * sum_xy_ - sum_x_ * sum_y_) / denom;
  }

  double intercept() const {
    const double n = static_cast<double>(count_);
    return (sum_y_ - slope() * sum_x_) / n;
  }

  /// Pearson r² of the fit.
  double r_squared() const {
    const double n = static_cast<double>(count_);
    const double sxx = n * sum_xx_ - sum_x_ * sum_x_;
    const double syy = n * sum_yy_ - sum_y_ * sum_y_;
    const double sxy = n * sum_xy_ - sum_x_ * sum_y_;
    if (sxx == 0 || syy == 0) return 1.0;
    return (sxy * sxy) / (sxx * syy);
  }

 private:
  std::size_t count_ = 0;
  double sum_x_ = 0;
  double sum_y_ = 0;
  double sum_xx_ = 0;
  double sum_xy_ = 0;
  double sum_yy_ = 0;
};

}  // namespace referee
