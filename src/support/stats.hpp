// Small statistics helpers used by the benchmark harness to turn raw series
// into the fitted constants the experiment write-ups report (e.g. the slope
// of message bits against log2 n in E1).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "support/check.hpp"

namespace referee {

/// Welford online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Smallest/largest value seen so far; NaN when nothing was added (an
  /// empty stat has no extrema — returning a ±1e300 sentinel here once let
  /// report columns print it as if it were data).
  double min_seen() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max_seen() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }

  /// Historic alias from when min/max tracking was opt-in; add() now always
  /// tracks, so the two are equivalent.
  void add_tracked(double x) { add(x); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Ordinary least squares y = intercept + slope * x.
class LinearFit {
 public:
  void add(double x, double y) {
    ++count_;
    sum_x_ += x;
    sum_y_ += y;
    sum_xx_ += x * x;
    sum_xy_ += x * y;
    sum_yy_ += y * y;
  }

  std::size_t count() const { return count_; }

  double slope() const {
    REFEREE_CHECK_MSG(count_ >= 2, "need two points for a fit");
    const double n = static_cast<double>(count_);
    const double denom = n * sum_xx_ - sum_x_ * sum_x_;
    REFEREE_CHECK_MSG(denom != 0.0, "degenerate x values");
    return (n * sum_xy_ - sum_x_ * sum_y_) / denom;
  }

  double intercept() const {
    REFEREE_CHECK_MSG(count_ >= 2, "need two points for a fit");
    const double n = static_cast<double>(count_);
    return (sum_y_ - slope() * sum_x_) / n;
  }

  /// Pearson r² of the fit.
  double r_squared() const {
    REFEREE_CHECK_MSG(count_ >= 2, "need two points for a fit");
    const double n = static_cast<double>(count_);
    const double sxx = n * sum_xx_ - sum_x_ * sum_x_;
    const double syy = n * sum_yy_ - sum_y_ * sum_y_;
    const double sxy = n * sum_xy_ - sum_x_ * sum_y_;
    if (sxx == 0 || syy == 0) return 1.0;
    return (sxy * sxy) / (sxx * syy);
  }

 private:
  std::size_t count_ = 0;
  double sum_x_ = 0;
  double sum_y_ = 0;
  double sum_xx_ = 0;
  double sum_xy_ = 0;
  double sum_yy_ = 0;
};

}  // namespace referee
