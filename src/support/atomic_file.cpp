#include "support/atomic_file.hpp"

#include <cstdio>
#include <cstring>

#include "support/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define REFEREE_HAVE_FSYNC 1
#endif

namespace referee {

void write_file_atomically(const std::string& path,
                           const std::function<void(std::FILE*)>& writer) {
  // The temp file lives next to the destination (same directory, hence
  // same filesystem) so the final rename is the atomic one-filesystem
  // case, and a unique pid suffix keeps concurrent writers of different
  // destinations from colliding.
#if REFEREE_HAVE_FSYNC
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
  const std::string tmp = path + ".tmp";
#endif
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  REFEREE_CHECK_MSG(file != nullptr, "cannot open " + tmp + " for writing");
  try {
    writer(file);
    REFEREE_CHECK_MSG(std::fflush(file) == 0, "short write on " + tmp);
#if REFEREE_HAVE_FSYNC
    // Data must be durable *before* the rename publishes the name: a
    // crash between rename and writeback would otherwise resurrect the
    // truncated-file failure mode the temp dance exists to kill.
    REFEREE_CHECK_MSG(::fsync(::fileno(file)) == 0, "fsync failed on " + tmp);
#endif
    REFEREE_CHECK_MSG(std::fclose(file) == 0, "close failed on " + tmp);
    file = nullptr;
    REFEREE_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                      "cannot rename " + tmp + " to " + path);
  } catch (...) {
    if (file != nullptr) std::fclose(file);
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace referee
