#include "support/random.hpp"

#include <algorithm>
#include <unordered_set>

namespace referee {

std::uint64_t Rng::below(std::uint64_t bound) {
  REFEREE_CHECK_MSG(bound >= 1, "empty range");
  // Rejection sampling on the top bits to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  REFEREE_CHECK_MSG(lo <= hi, "inverted range");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  // Always consumes exactly one draw, including for p <= 0 and p >= 1 —
  // otherwise seed-reproducible experiments drift out of stream alignment
  // the moment a probability parameter hits an endpoint (a p=0 baseline
  // would consume fewer draws than the p=0.01 run it is compared against).
  const double u = uniform01();
  return u < p;  // u ∈ [0,1): false for p <= 0, true for p >= 1
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<std::uint32_t> Rng::sample_subset(std::uint32_t n,
                                              std::uint32_t k) {
  REFEREE_CHECK_MSG(k <= n, "subset larger than ground set");
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (static_cast<std::uint64_t>(k) * 3 >= n) {
    // Dense case: partial Fisher-Yates over the whole ground set.
    std::vector<std::uint32_t> pool(n);
    for (std::uint32_t i = 0; i < n; ++i) pool[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + below(n - i);
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
  } else {
    // Sparse case: rejection into a hash set.
    std::unordered_set<std::uint32_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      const auto v = static_cast<std::uint32_t>(below(n));
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace referee
